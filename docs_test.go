package repro

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches [text](target) links; images share the same target
// syntax, so they are covered too.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinks fails on broken relative links in every tracked markdown
// file: each non-URL, non-anchor target must exist on disk relative to
// the file that references it. CI's docs job runs this before the heavy
// test jobs (see .github/workflows/ci.yml).
func TestDocLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found — link checker is scanning the wrong root")
	}

	for _, md := range mdFiles {
		raw, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		inFence := false
		for _, line := range strings.Split(string(raw), "\n") {
			// Skip fenced code blocks: protocol examples contain )-heavy
			// text that is not a link.
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") ||
					strings.HasPrefix(target, "mailto:") ||
					strings.HasPrefix(target, "#") {
					continue
				}
				target, _, _ = strings.Cut(target, "#")
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(md), target)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken relative link %q (resolved %s)", md, m[1], resolved)
				}
			}
		}
	}
}
