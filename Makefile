GO ?= go

.PHONY: check build vet test race bench bench-sweep bench-race bench-compare fuzz e2e e2e-recover e2e-failover e2e-interactive e2e-chaos scenario-matrix lint docs clean-data

check: build vet race

# lint is the fast CI gate: gofmt drift fails loudly, then go vet.
lint:
	@drift=$$(gofmt -l .); if [ -n "$$drift" ]; then \
		echo "gofmt drift in:"; echo "$$drift"; exit 1; fi
	$(GO) vet ./...

# docs checks every tracked markdown file for broken relative links.
docs:
	$(GO) test -run '^TestDocLinks$$' .

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 0.5s .

# bench-sweep runs the standard sccserve/sccload scenario sweep and
# writes one merged JSON artifact (the checked-in BENCH_<pr>.json
# trajectory files); see scripts/bench_sweep.sh.
BENCH_OUT ?= BENCH.json
bench-sweep:
	bash scripts/bench_sweep.sh $(BENCH_OUT)

# bench-compare is the machine-checked regression gate: diff a fresh
# sweep artifact (BENCH_OUT) against the newest checked-in
# BENCH_<pr>.json per scenario — warn at 5%, fail at 15% p99 regression
# or throughput drop. BENCH_BASE pins a specific baseline.
BENCH_BASE ?=
bench-compare:
	$(GO) run ./scripts -new $(BENCH_OUT) $(if $(BENCH_BASE),-base $(BENCH_BASE))

# bench-race is the CI guard that the instrumented hot path stays
# race-clean under benchmark load: one pass of the pipelined benchmark
# with the race detector on.
bench-race:
	$(GO) test -race -run '^$$' -bench 'BenchmarkPipelined' -benchtime 1x .

fuzz:
	$(GO) test ./internal/server -run '^$$' -fuzz '^FuzzDispatch$$' -fuzztime 30s
	$(GO) test ./internal/server/opts -run '^$$' -fuzz '^FuzzParseToken$$' -fuzztime 30s
	$(GO) test ./internal/obs -run '^$$' -fuzz '^FuzzParseTrace$$' -fuzztime 30s

# scenario-matrix runs the full workload × value-function grid against
# live in-process servers (internal/scenario via sccload -matrix): every
# cell boots its own topology, is audited for conservation + the
# acked-commit ledger, and the merged scc-scenario/v1 artifact lands in
# SCENARIO_OUT. Tier-1 tests keep a 2-cell smoke grid; this is the
# nightly-sized run.
SCENARIO_OUT ?= SCENARIO.json
scenario-matrix:
	$(GO) run ./cmd/sccload -matrix full -matrix-out $(SCENARIO_OUT)

e2e:
	$(GO) test ./internal/server -race -count=2

# e2e-recover SIGKILLs a durable sccserve after a load has been
# acknowledged and asserts the restart recovers every acknowledged
# commit (conservation + recovered_index); see scripts/e2e_recover.sh.
e2e-recover:
	bash scripts/e2e_recover.sh

# e2e-failover SIGKILLs the primary of a clustered primary+replica pair
# mid-load and asserts the replica promotes itself under a higher
# fencing epoch, the load rides the ERR not-primary redirects with no
# acked commit lost, and a restarted old primary fences itself; see
# scripts/e2e_failover.sh.
e2e-failover:
	bash scripts/e2e_failover.sh

# e2e-chaos injects faults (kill -9 mid-cross-shard-commit loops, fsync
# errors, stalled replica apply via the SCC_FAULT_* env hooks) and
# audits crash-atomicity of cross-shard commits, sync-gated verdicts +
# fail-stop, and barrier-consistent replica reads; see
# scripts/e2e_chaos.sh.
e2e-chaos:
	bash scripts/e2e_chaos.sh

# e2e-interactive drives interactive TXN sessions (think time, pipelined
# sessions, mixed with one-shot traffic) against a live sccserve and
# checks sccload's conservation + lost-update invariants; see
# scripts/e2e_interactive.sh.
e2e-interactive:
	bash scripts/e2e_interactive.sh

# clean-data removes the local durability directory the README quickstart
# uses, so repeated local runs start cold instead of accreting state.
clean-data:
	rm -rf ./data
