GO ?= go

.PHONY: check build vet test race bench fuzz e2e lint docs

check: build vet race

# lint is the fast CI gate: gofmt drift fails loudly, then go vet.
lint:
	@drift=$$(gofmt -l .); if [ -n "$$drift" ]; then \
		echo "gofmt drift in:"; echo "$$drift"; exit 1; fi
	$(GO) vet ./...

# docs checks every tracked markdown file for broken relative links.
docs:
	$(GO) test -run '^TestDocLinks$$' .

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 0.5s .

fuzz:
	$(GO) test ./internal/server -run '^$$' -fuzz '^FuzzDispatch$$' -fuzztime 30s

e2e:
	$(GO) test ./internal/server -race -count=2
