GO ?= go

.PHONY: check build vet test race bench fuzz e2e

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 0.5s .

fuzz:
	$(GO) test ./internal/server -run '^$$' -fuzz '^FuzzDispatch$$' -fuzztime 30s

e2e:
	$(GO) test ./internal/server -race -count=2
