// Quickstart: the live SCC engine in five minutes.
//
// Opens the goroutine-shadow key-value store, runs concurrent transactions
// against a hot key, and shows the SCC counters: conflicts are resolved by
// promoting speculative shadows, not by restarting losers after the fact.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/engine"
)

func itob(v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

func btoi(b []byte) int64 {
	if len(b) != 8 {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}

func main() {
	store := engine.Open(engine.Config{Mode: engine.SCC2S})
	defer store.Close()

	// Seed two accounts.
	must(store.Update(func(tx *engine.Tx) error {
		if err := tx.Set("alice", itob(100)); err != nil {
			return err
		}
		return tx.Set("bob", itob(100))
	}))

	// 64 concurrent transfers alice -> bob and back. Transactions are
	// deterministic closures: the engine may run each one as several
	// speculative shadows and keeps exactly one outcome.
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		amount := int64(i%7 + 1)
		from, to := "alice", "bob"
		if i%2 == 1 {
			from, to = to, from
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			must(store.Update(func(tx *engine.Tx) error {
				fb, err := tx.Get(from)
				if err != nil {
					return err
				}
				tb, err := tx.Get(to)
				if err != nil {
					return err
				}
				if err := tx.Set(from, itob(btoi(fb)-amount)); err != nil {
					return err
				}
				return tx.Set(to, itob(btoi(tb)+amount))
			}))
		}()
	}
	wg.Wait()

	a, _ := store.Get("alice")
	b, _ := store.Get("bob")
	fmt.Printf("alice = %d, bob = %d, total = %d (conserved: %v)\n",
		btoi(a), btoi(b), btoi(a)+btoi(b), btoi(a)+btoi(b) == 200)

	// Force a visible conflict: reader starts first, writer commits in the
	// middle, the reader's speculative shadow finishes the job.
	readerAt := make(chan struct{})
	writerDone := make(chan struct{})
	readerErr := make(chan error, 1)
	first := true
	go func() {
		readerErr <- store.Update(func(tx *engine.Tx) error {
			v, err := tx.Get("alice")
			if err != nil {
				return err
			}
			if first {
				first = false
				close(readerAt) // let the writer overtake us
				<-writerDone
			}
			return tx.Set("audit", v)
		})
	}()
	<-readerAt
	must(store.Update(func(tx *engine.Tx) error {
		v, err := tx.Get("alice")
		if err != nil {
			return err
		}
		return tx.Set("alice", itob(btoi(v)+1000))
	}))
	close(writerDone)
	must(<-readerErr)
	audit, _ := store.Get("audit")
	fmt.Printf("audit snapshot of alice = %d (taken AFTER the +1000 deposit: the\n"+
		"reader's optimistic run died, its shadow woke on the deposit's commit)\n", btoi(audit))

	st := store.Stats()
	fmt.Printf("commits=%d optimistic-aborts=%d shadow-forks=%d promotions=%d restarts=%d\n",
		st.Commits, st.Aborts, st.Forks, st.Promotions, st.Restarts)
	fmt.Println("promotions are conflicts SCC finished from a speculative shadow instead of a restart")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
