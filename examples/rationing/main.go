// Redundancy rationing: Sec. 2.1's "value of k reflects the transaction's
// urgency and criticalness" made concrete.
//
// A mixed workload has a small class of critical transactions and a bulk
// of routine ones. Giving everyone a big shadow budget (SCC-kS(4),
// SCC-CB) buys timeliness with a lot of redundant work; giving everyone
// the minimum (SCC-2S) is cheap but value-blind. SCC-AK rations: 4
// shadows for the critical class, 2 for the rest — and keeps nearly all
// of the uniform-big-budget system value while forking far fewer shadows.
//
//	go run ./examples/rationing
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rtdbs"
	"repro/internal/workload"
)

func main() {
	type variant struct {
		name string
		mk   func() rtdbs.CCM
	}
	variants := []variant{
		{"SCC-2S (k=2 for all)", func() rtdbs.CCM { return core.NewTwoShadow() }},
		{"SCC-kS(4) (k=4 for all)", func() rtdbs.CCM { return core.NewKS(4, core.LBFO) }},
		{"SCC-AK (4 critical / 2 routine)", func() rtdbs.CCM {
			return core.NewAdaptive(core.ValueRationedK(200, 4, 2), core.LBFO)
		}},
		{"SCC-CB (unbounded)", func() rtdbs.CCM { return core.NewCB() }},
	}

	const rate = 125.0
	fmt.Printf("two-class workload at %.0f txn/s (10%% critical, 90%% routine)\n\n", rate)
	fmt.Printf("%-34s %12s %14s %12s\n", "variant", "sys value", "shadow forks", "restarts")
	for _, v := range variants {
		var val, forks, restarts float64
		const seeds = 2
		for seed := int64(1); seed <= seeds; seed++ {
			res := rtdbs.Run(rtdbs.Config{
				Workload: workload.TwoClass(rate, seed),
				Target:   1000, Warmup: 100, MaxActive: 4000,
			}, v.mk())
			val += res.Metrics.SystemValuePct()
			forks += float64(res.Metrics.ShadowForks)
			restarts += float64(res.Metrics.Restarts)
		}
		fmt.Printf("%-34s %11.1f%% %14.0f %12.0f\n", v.name, val/seeds, forks/seeds, restarts/seeds)
	}
	fmt.Println("\nSCC-AK grants the large budget to only a tenth of the transactions,")
	fmt.Println("yet lands within noise of the uniform k=4 system value: redundancy")
	fmt.Println("is a budget to be rationed by criticalness, not a dial to max out.")
}
