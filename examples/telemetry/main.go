// Telemetry hub: soft real-time ingest under contention.
//
// A plant-monitoring database ingests sensor batches with soft deadlines:
// each batch reads calibration pages and updates rolling aggregates, and a
// late batch is not dropped — operators still want it — but it delays the
// downstream control loop (tardiness is the pain metric, the paper's
// Fig. 13 setting).
//
// The example sweeps ingest rates and prints the missed-deadline ratio and
// average tardiness under 2PL-PA, OCC-BC, WAIT-50 and SCC-2S, reproducing
// the paper's baseline ranking on a domain-shaped workload: blocking
// collapses first, restarts waste the prefix work, and speculation keeps
// both in check.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/rtdbs"
	"repro/internal/workload"
)

func hub(rate float64, seed int64) workload.Config {
	wl := workload.Baseline(rate, seed)
	wl.DBPages = 600 // calibration + aggregate pages
	wl.Classes[0].Name = "sensor-batch"
	wl.Classes[0].NumOps = 12
	wl.Classes[0].WriteProb = 0.35 // aggregates are updated in place
	wl.Classes[0].SlackFactor = 1.8
	return wl
}

func main() {
	protos := []string{"SCC-2S", "OCC-BC", "WAIT-50", "2PL-PA"}
	fmt.Println("telemetry hub: missed ratio %% / avg tardiness (ms) by ingest rate")
	fmt.Printf("%-8s", "rate")
	for _, p := range protos {
		fmt.Printf(" %18s", p)
	}
	fmt.Println()
	for _, rate := range []float64{30, 60, 90, 120} {
		fmt.Printf("%-8.0f", rate)
		for _, proto := range protos {
			res := rtdbs.Run(rtdbs.Config{
				Workload: hub(rate, 1), Target: 800, Warmup: 80, MaxActive: 3000,
			}, harness.Protocol(proto).New())
			cell := fmt.Sprintf("%.1f%% / %.0fms",
				res.Metrics.MissedRatio(), 1000*res.Metrics.AvgTardiness())
			if res.Truncated {
				cell += "†"
			}
			fmt.Printf(" %18s", cell)
		}
		fmt.Println()
	}
	fmt.Println("† saturated: the protocol cannot sustain this ingest rate")
	fmt.Println("\nSCC-2S keeps a blocked twin of every batch at its first conflict;")
	fmt.Println("when a conflicting batch commits, the twin resumes from that point")
	fmt.Println("instead of redoing the whole batch (promotions, not restarts).")
}
