// Trading desk: why value-cognizant scheduling matters.
//
// A real-time trading database processes two transaction classes against
// the same position and reference tables:
//
//   - order executions: long, tight deadlines, high value when on time,
//     steep penalties when late (a missed fill costs real money);
//   - risk re-valuations: short housekeeping updates, low value, shallow
//     penalties.
//
// This is exactly the paper's Fig. 14(b) setting. The example simulates
// the desk at increasing order rates and compares value-blind SCC-2S with
// value-cognizant SCC-VW (and the OCC-BC baseline): SCC-VW defers commits
// of low-value housekeeping when doing so lets a high-value fill make its
// deadline.
//
//	go run ./examples/trading
package main

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/rtdbs"
	"repro/internal/workload"
)

// desk builds the two-class trading workload over an 800-page book.
func desk(rate float64, seed int64) workload.Config {
	return workload.Config{
		DBPages:     800,
		ArrivalRate: rate,
		Seed:        seed,
		Classes: []model.Class{
			{
				Name:            "order-execution",
				NumOps:          20,    // cross several books and positions
				WriteProb:       0.35,  // fills update positions
				MeanOpTime:      0.015, // 15 ms per page
				ExecJitter:      0.2,
				SlackFactor:     1.4, // tight: fill or miss the market
				Value:           500,
				PenaltyPerSlack: 2.5, // stale fills go negative fast
				Frequency:       0.15,
			},
			{
				Name:            "risk-revaluation",
				NumOps:          10,
				WriteProb:       0.3,
				MeanOpTime:      0.015,
				ExecJitter:      0.2,
				SlackFactor:     2.5,
				Value:           40,
				PenaltyPerSlack: 0.4,
				Frequency:       0.85,
			},
		},
	}
}

func main() {
	fmt.Println("trading desk: system value (% of max) by order arrival rate")
	fmt.Printf("%-8s %12s %12s %12s\n", "rate", "SCC-VW", "SCC-2S", "OCC-BC")
	for _, rate := range []float64{30, 60, 90, 120} {
		row := []string{}
		for _, proto := range []string{"SCC-VW", "SCC-2S", "OCC-BC"} {
			var sum float64
			const seeds = 2
			for seed := int64(1); seed <= seeds; seed++ {
				res := rtdbs.Run(rtdbs.Config{
					Workload: desk(rate, seed), Target: 800, Warmup: 80, MaxActive: 4000,
				}, harness.Protocol(proto).New())
				sum += res.Metrics.SystemValuePct()
			}
			row = append(row, fmt.Sprintf("%11.1f%%", sum/seeds))
		}
		fmt.Printf("%-8.0f %12s %12s %12s\n", rate, row[0], row[1], row[2])
	}
	fmt.Println("\nSCC-VW weighs each conflicting transaction's value function before")
	fmt.Println("committing a finished transaction; with heterogeneous classes that")
	fmt.Println("prioritizes order executions over housekeeping (paper Fig. 14b).")
}
