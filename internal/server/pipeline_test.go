// End-to-end tests of the pipelined transport: the multiplexing client,
// the Batch API, and — the strongest check in the file — a replay of a
// concurrent pipelined run through internal/history, asserting the
// observed GET/UPD results form a conflict-serializable execution. The
// history checker is an oracle independent of the engine's own
// validation, so a protocol bug that commits a non-serializable schedule
// fails the test even though every individual response looked fine.
package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/history"
	"repro/internal/model"
	"repro/internal/server/client"
	"repro/internal/shard"
)

// TestMuxBasics drives every verb through the multiplexing client.
func TestMuxBasics(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 4})
	m, err := client.DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if err := m.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := m.Put("a", 41); err != nil {
		t.Fatal(err)
	}
	if n, err := m.Add("a", 1); err != nil || n != 42 {
		t.Fatalf("Add = %d, %v", n, err)
	}
	if n, ok, err := m.Get("a"); err != nil || !ok || n != 42 {
		t.Fatalf("Get = %d, %v, %v", n, ok, err)
	}
	res, err := m.Update([]client.Op{
		{Key: "x", Delta: 10, Write: true},
		{Key: "a"},
		{Key: "y", Delta: -10, Write: true},
	}, client.TxOpts{Value: 5, Deadline: time.Second})
	if err != nil || len(res) != 2 || res[0] != 10 || res[1] != -10 {
		t.Fatalf("Update = %v, %v", res, err)
	}
	if sum, err := m.Sum("x", "y"); err != nil || sum != 0 {
		t.Fatalf("Sum = %d, %v", sum, err)
	}
	if st, err := m.Stats(); err != nil || st["shards"] != "4" {
		t.Fatalf("Stats = %v, %v", st, err)
	}

	// Batch: good and bad entries mixed; slots line up with requests.
	// Entries of one batch execute concurrently (no intra-batch order),
	// so the good entries touch independent keys.
	outs := m.Batch([]client.UpdateReq{
		{Ops: []client.Op{{Key: "b1", Delta: 1, Write: true}}},
		{Ops: []client.Op{{Key: "bad key", Delta: 1, Write: true}}}, // invalid key
		{Ops: []client.Op{{Key: "b2", Delta: 2, Write: true}}},
		{},
	})
	if outs[0].Err != nil || outs[0].Results[0] != 1 {
		t.Errorf("batch[0] = %+v", outs[0])
	}
	if outs[1].Err == nil {
		t.Error("batch[1] invalid key not rejected")
	}
	if outs[2].Err != nil || outs[2].Results[0] != 2 {
		t.Errorf("batch[2] = %+v", outs[2])
	}
	if outs[3].Err == nil {
		t.Error("batch[3] empty ops not rejected")
	}
}

// TestMuxConcurrent hammers one Mux from many goroutines: per-goroutine
// counters must never lose an update even though all requests multiplex
// over a single connection.
func TestMuxConcurrent(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 8})
	m, err := client.DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const workers, iters = 16, 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := fmt.Sprintf("mc%d", w)
			for i := 1; i <= iters; i++ {
				n, err := m.Add(key, 1)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if n != int64(i) {
					t.Errorf("worker %d: Add #%d = %d", w, i, n)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestMuxOversizedDiagnostic: a request line past the server's 1MB bound
// kills the connection, and the Mux must surface the server's diagnostic
// — not a generic "malformed response" — to every affected caller.
func TestMuxOversizedDiagnostic(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 2})
	m, err := client.DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	hugeKey := strings.Repeat("k", 2<<20)
	_, err = m.Update([]client.Op{{Key: hugeKey, Delta: 1, Write: true}}, client.TxOpts{})
	if err == nil || !strings.Contains(err.Error(), "exceeds 1MB") {
		t.Fatalf("err = %v, want the server's oversized-line diagnostic", err)
	}
	// The connection is dead; later calls fail fast with the same cause.
	if err := m.Ping(); err == nil {
		t.Fatal("Ping succeeded on a dead mux")
	}
}

// TestCrossShedOverWire forces a cross-shard validation failure on a
// transaction whose value function has by then crossed zero, and asserts
// the retry is shed — SHED on the wire, cross_shed in STATS — instead of
// blindly re-executed. The interleaving is engineered, not raced: a View
// latch on the write key's shard wedges the transaction mid-execution
// (after it has read the hot key, before it can read the write key), a
// fast-path ADD then invalidates the read, and releasing the latch lets
// the transaction run into validation failure with an expired value
// function.
func TestCrossShedOverWire(t *testing.T) {
	srv, addr := startServer(t, Config{Shards: 8, Mode: engine.SCC2S})
	store := srv.Store()

	// hotKey is the read dependency; sinkKey, on a different shard, is
	// the write — the shard split is what routes the transaction through
	// updateCross.
	hotKey := "xs-hot"
	sinkKey := ""
	for i := 0; i < 10000 && sinkKey == ""; i++ {
		k := fmt.Sprintf("xs-sink%d", i)
		if store.ShardOf(k) != store.ShardOf(hotKey) {
			sinkKey = k
		}
	}

	latched := make(chan struct{})
	release := make(chan struct{})
	viewDone := make(chan error, 1)
	go func() {
		viewDone <- store.View([]string{sinkKey}, func(shard.Tx) error {
			close(latched)
			<-release
			return nil
		})
	}()
	<-latched

	m, err := client.DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	updErr := make(chan error, 1)
	go func() {
		// Zero-crossing ~1ms after arrival: admission passes (the value
		// is still live on arrival), but any retry after the engineered
		// stall is far past it.
		_, err := m.Update([]client.Op{
			{Key: hotKey},
			{Key: sinkKey, Delta: 1, Write: true},
		}, client.TxOpts{Value: 1e-6, Deadline: time.Millisecond, Gradient: 1e9})
		updErr <- err
	}()

	// Let the transaction read hotKey and park on the latched shard; its
	// progress to that point is a handful of map reads, so 100ms is
	// orders of magnitude of slack even under the race detector.
	time.Sleep(100 * time.Millisecond)
	if err := store.Update([]string{hotKey}, func(tx shard.Tx) error {
		return tx.Set(hotKey, []byte("1"))
	}); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := <-viewDone; err != nil {
		t.Fatal(err)
	}

	if err := <-updErr; err != client.ErrShed {
		t.Fatalf("cross-shard retry err = %v, want ErrShed", err)
	}
	st := store.Stats()
	if st.CrossRestarts == 0 {
		t.Error("no cross-shard restart recorded")
	}
	if got := srv.crossShed.Load(); got != 1 {
		t.Errorf("crossShed = %d, want 1", got)
	}
	// The counter the operator sees must agree.
	stats, err := m.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["cross_shed"] != "1" {
		t.Errorf("STATS cross_shed = %q, want 1", stats["cross_shed"])
	}
}

// pobs is one committed pipelined transaction's observation: the returned
// (post-increment) values of its two write ops.
type pobs struct {
	gval int64 // global sequencer key value — doubles as version order
	hkey int   // which hot key this transaction also wrote
	hval int64
}

// TestPipelinedSerializableHistory replays a concurrent pipelined run
// through the internal/history oracle. Every transaction read-modify-
// writes a global sequencer key g (so the version order of g totally
// orders all commits — that order is the replay sequence) plus one of a
// few hot keys. Because every key's value is a strictly increasing
// cumulative sum, each returned value identifies exactly which committed
// transaction produced the value that was read — which is all the
// history checker needs to rebuild read-version observations and assert
// conflict-serializability. Concurrent plain GETs on the sequencer key
// additionally assert monotonic reads per connection.
func TestPipelinedSerializableHistory(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"per-commit", Config{Shards: 8, Mode: engine.SCC2S}},
		{"group-commit", Config{
			Shards:      8,
			Mode:        engine.SCC2S,
			GroupCommit: engine.GroupCommit{Enabled: true, Window: 200 * time.Microsecond, MaxBatch: 16},
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, addr := startServer(t, tc.cfg)
			const (
				clients   = 8
				perClient = 40
				window    = 8 // in-flight transactions per connection
				hotKeys   = 4
				gKey      = "seq"
			)

			results := make([][]pobs, clients)
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					m, err := client.DialMux(addr)
					if err != nil {
						t.Error(err)
						return
					}
					defer m.Close()
					for done := 0; done < perClient; done += window {
						n := min(window, perClient-done)
						reqs := make([]client.UpdateReq, n)
						hks := make([]int, n)
						for j := range reqs {
							hk := (c*7 + done + j*3) % hotKeys
							hks[j] = hk
							reqs[j] = client.UpdateReq{Ops: []client.Op{
								{Key: gKey, Delta: 1, Write: true},
								{Key: fmt.Sprintf("hot%d", hk), Delta: 1, Write: true},
							}}
						}
						for j, o := range m.Batch(reqs) {
							if o.Err != nil {
								t.Errorf("client %d: %v", c, o.Err)
								return
							}
							if len(o.Results) != 2 {
								t.Errorf("client %d: results %v", c, o.Results)
								return
							}
							results[c] = append(results[c], pobs{gval: o.Results[0], hkey: hks[j], hval: o.Results[1]})
						}
					}
				}(c)
			}

			// Monotonic-reads checker: plain GETs on the sequencer key
			// from one connection must observe non-decreasing values.
			stop := make(chan struct{})
			checkerDone := make(chan error, 1)
			go func() {
				m, err := client.DialMux(addr)
				if err != nil {
					checkerDone <- err
					return
				}
				defer m.Close()
				var last int64
				for {
					select {
					case <-stop:
						checkerDone <- nil
						return
					default:
					}
					n, _, err := m.Get(gKey)
					if err != nil {
						checkerDone <- err
						return
					}
					if n < last {
						checkerDone <- fmt.Errorf("monotonic reads violated: %d after %d", n, last)
						return
					}
					last = n
				}
			}()

			wg.Wait()
			close(stop)
			if err := <-checkerDone; err != nil {
				t.Fatal(err)
			}

			// Rebuild the history. Pages: 0 = g, 1+k = hot key k. Writer
			// maps recover, for every observed pre-value, the transaction
			// that produced it (version 0 = initial state).
			var all []pobs
			for _, r := range results {
				all = append(all, r...)
			}
			if len(all) != clients*perClient {
				t.Fatalf("collected %d commits, want %d", len(all), clients*perClient)
			}
			gPage := model.PageID(0)
			hPage := func(k int) model.PageID { return model.PageID(1 + k) }
			gWriter := make(map[int64]model.TxnID, len(all))
			hWriter := make(map[int]map[int64]model.TxnID, hotKeys)
			for i, o := range all {
				id := model.TxnID(i + 1)
				if _, dup := gWriter[o.gval]; dup {
					t.Fatalf("duplicate sequencer value %d: lost update on the wire", o.gval)
				}
				gWriter[o.gval] = id
				if hWriter[o.hkey] == nil {
					hWriter[o.hkey] = make(map[int64]model.TxnID)
				}
				if _, dup := hWriter[o.hkey][o.hval]; dup {
					t.Fatalf("duplicate hot%d value %d: lost update on the wire", o.hkey, o.hval)
				}
				hWriter[o.hkey][o.hval] = id
			}
			version := func(m map[int64]model.TxnID, preVal int64, what string) model.TxnID {
				if preVal == 0 {
					return 0
				}
				id, ok := m[preVal]
				if !ok {
					t.Fatalf("%s: observed pre-value %d produced by no committed transaction", what, preVal)
				}
				return id
			}
			var rec history.Recorder
			for i, o := range all {
				id := model.TxnID(i + 1)
				rec.Add(history.CommitRecord{
					ID:  id,
					Seq: int(o.gval), // the sequencer's version order IS the commit order
					Reads: []model.ReadObs{
						{Page: gPage, Version: version(gWriter, o.gval-1, "seq")},
						{Page: hPage(o.hkey), Version: version(hWriter[o.hkey], o.hval-1, fmt.Sprintf("hot%d", o.hkey))},
					},
					Writes: []model.PageID{gPage, hPage(o.hkey)},
				})
			}
			if err := rec.Check(); err != nil {
				t.Fatalf("pipelined execution not serializable: %v", err)
			}
		})
	}
}
