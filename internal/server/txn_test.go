// Tests of the interactive transaction sessions (TXN wire verbs and the
// Go client's Txn/Do API): protocol conformance, the acceptance check
// that SCC speculation really spans client round trips (a shadow forked
// and promoted between TXN R and TXN COMMIT), single-shard-to-cross-
// shard fallback, value-cognizant session reaping, replica behavior,
// and a history-oracle serializability replay of concurrent interactive
// transactions.
package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/history"
	"repro/internal/model"
	"repro/internal/repl"
	"repro/internal/server/client"
)

// validWireTxnID reports whether id is a well-formed TXN wire id with
// the expected numeric sequence: "<seq>-" followed by 16 lowercase hex
// digits of capability token.
func validWireTxnID(id string, wantSeq int) bool {
	num, token, ok := strings.Cut(id, "-")
	if !ok || num != fmt.Sprint(wantSeq) || len(token) != 16 {
		return false
	}
	for _, c := range token {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// TestTxnProtocolConformance drives the TXN state machine over a raw
// connection: happy paths (including two interleaved sessions on one
// connection), the whole error surface, and the post-finish rules (ops
// after abort, double commit).
func TestTxnProtocolConformance(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 4})
	rc := dialRaw(t, addr)

	exact := func(in, want string) {
		t.Helper()
		rc.send(in)
		if got := rc.recv(); got != want {
			t.Errorf("%-40q -> %q, want %q", in, got, want)
		}
	}
	// begin starts a session and returns its wire id, checking that the
	// id is "<seq>-<token>": the numeric table key (sequential from 1 on
	// a fresh server) plus a 16-hex-digit capability token.
	begin := func(args string, wantSeq int) string {
		t.Helper()
		line := "TXN BEGIN"
		if args != "" {
			line += " " + args
		}
		rc.send(line)
		got := rc.recv()
		id, ok := strings.CutPrefix(got, "OK ")
		if !ok || !validWireTxnID(id, wantSeq) {
			t.Fatalf("%q -> %q, want OK %d-<16 hex>", line, got, wantSeq)
		}
		return id
	}

	// Two sessions interleaved on one connection.
	id1 := begin("", 1)
	id2 := begin("v=2 dl=50", 2)
	exact("TXN R "+id1+" a", "OK 0") // missing key reads 0
	exact("TXN W "+id1+" a 5", "OK 5")
	exact("TXN W "+id2+" b =7", "OK 7") // blind write
	exact("TXN R "+id2+" b", "OK 7")    // read-your-writes
	exact("GET a", "NIL")               // uncommitted writes are invisible
	exact("GET b", "NIL")
	exact("TXN R "+id2+" a", "OK 0") // isolation: 1's uncommitted write invisible to 2
	exact("TXN COMMIT "+id1, "OK 5")
	exact("GET a", "OK 5")
	exact("TXN COMMIT "+id2, "OK 7")
	exact("GET b", "OK 7")

	// Finished sessions are gone; their ids draw no-such-txn.
	exact("TXN COMMIT "+id1, "ERR no such txn "+id1)
	exact("TXN R "+id2+" a", "ERR no such txn "+id2)

	// ABORT discards everything.
	id3 := begin("", 3)
	exact("TXN W "+id3+" gone 9", "OK 9")
	exact("TXN ABORT "+id3, "OK")
	exact("GET gone", "NIL")
	exact("TXN W "+id3+" gone 9", "ERR no such txn "+id3)

	// An empty transaction commits trivially.
	id4 := begin("", 4)
	exact("TXN COMMIT "+id4, "OK")

	// TXN works identically under REQ framing (single-line replies).
	rc.send("REQ q1 TXN BEGIN")
	got := rc.recv()
	id5, ok := strings.CutPrefix(got, "RES q1 OK ")
	if !ok || !validWireTxnID(id5, 5) {
		t.Fatalf("REQ-framed BEGIN -> %q", got)
	}
	rc.send("REQ q2 TXN COMMIT " + id5)
	if got := rc.recv(); got != "RES q2 OK" {
		t.Errorf("REQ-framed COMMIT -> %q", got)
	}

	// Error surface. Session 6 exists for the argument checks; probes
	// that reach past the session lookup must present its full wire id
	// (the bare numeric prefix is no longer a credential).
	id6 := begin("", 6)
	for in, want := range map[string]string{
		"TXN":                          "ERR usage: TXN BEGIN|R|W|COMMIT|ABORT ...",
		"TXN R":                        "ERR usage: TXN R <id> ...",
		"TXN R abc k":                  "ERR bad txn id abc",
		"TXN R 99 k":                   "ERR no such txn 99",
		"TXN R 6 k":                    "ERR no such txn 6", // live id without its token
		"TXN R 6-deadbeefdeadbeef k":   "ERR no such txn 6-deadbeefdeadbeef",
		"TXN R " + id6:                 "ERR usage: TXN R <id> <key>",
		"TXN R " + id6 + " a:b":        "ERR bad key a:b",
		"TXN W " + id6 + " k":          "ERR usage: TXN W <id> <key> <delta|=val>",
		"TXN W " + id6 + " k 1.5":      "ERR bad delta 1.5",
		"TXN W " + id6 + " k =":        "ERR bad delta =",
		"TXN W " + id6 + " a:b 1":      "ERR bad key a:b",
		"TXN COMMIT " + id6 + " extra": "ERR usage: TXN COMMIT <id>",
		"TXN ABORT " + id6 + " extra":  "ERR usage: TXN ABORT <id>",
		"TXN NOSUCH " + id6:            "ERR unknown TXN subverb NOSUCH",
		"TXN BEGIN v=NaN":              "ERR bad v=",
		"TXN BEGIN dl=1e309":           "ERR bad dl=",
		"TXN BEGIN grad=-Inf":          "ERR bad grad=",
		"TXN BEGIN hello":              "ERR bad token hello",
	} {
		rc.send(in)
		if got := rc.recv(); got != want {
			t.Errorf("%-24q -> %q, want %q", in, got, want)
		}
	}
	exact("TXN ABORT "+id6, "OK")

	// The connection survived the whole barrage.
	exact("PING", "OK pong")
}

// TestTxnSpeculationAcrossRoundTrips is the acceptance check for the
// session redesign: an interactive transaction begun over TCP observes
// SCC speculation across its round trips. Session A reads x; a
// conflicting one-shot write commits between A's round trips, aborting
// A's optimistic shadow and forking a speculative shadow parked at the
// read; A's next op and COMMIT are then served by the promoted shadow,
// which observed the fresh value — no from-scratch client-visible
// restart, exactly the paper's Sec. 2 mechanism.
func TestTxnSpeculationAcrossRoundTrips(t *testing.T) {
	srv, addr := startServer(t, Config{Shards: 1, Mode: engine.SCC2S})
	a, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	tx, err := a.Begin(client.TxOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// A's live optimistic shadow reads x = 0 and records the version.
	if n, err := tx.Get("x"); err != nil || n != 0 {
		t.Fatalf("Get(x) = %d, %v", n, err)
	}

	// B commits a conflicting write while A is "thinking". B's Set forks
	// a speculative shadow for A (Write Rule), parked at A's read of x;
	// B's commit then aborts A's optimistic shadow and opens the gate.
	if _, err := b.Update([]client.Op{{Key: "x", Delta: 5, Write: true}}, client.TxOpts{}); err != nil {
		t.Fatal(err)
	}
	st := srv.Store().Stats()
	if st.Engine.Forks < 1 {
		t.Fatalf("no speculative shadow forked for the parked session (forks=%d)", st.Engine.Forks)
	}
	if st.Engine.Aborts < 1 {
		t.Fatalf("optimistic shadow not aborted by the conflicting commit (aborts=%d)", st.Engine.Aborts)
	}

	// A's next round trip is served by the woken speculative shadow,
	// which re-read the fresh x=5.
	if n, err := tx.Add("x", 1); err != nil || n != 6 {
		t.Fatalf("Add(x,1) = %d, %v (want 6: the shadow observed the fresh value)", n, err)
	}
	res, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] != 6 {
		t.Fatalf("Commit results = %v, want [6]", res)
	}
	st = srv.Store().Stats()
	if st.Engine.Promotions < 1 {
		t.Fatalf("the transaction did not commit through a promoted shadow (promotions=%d)", st.Engine.Promotions)
	}
	if n, ok, err := a.Get("x"); err != nil || !ok || n != 6 {
		t.Fatalf("final x = %d, %v, %v", n, ok, err)
	}
}

// TestTxnCrossShardFallback: a session whose ops outgrow the bound shard
// falls back to deferred cross-shard execution transparently — results
// stay coherent, COMMIT goes through the cross-shard path, and the
// balanced deltas conserve.
func TestTxnCrossShardFallback(t *testing.T) {
	srv, addr := startServer(t, Config{Shards: 8})
	store := srv.Store()
	k1 := "fb-a"
	k2 := ""
	for i := 0; i < 10000 && k2 == ""; i++ {
		k := fmt.Sprintf("fb-b%d", i)
		if store.ShardOf(k) != store.ShardOf(k1) {
			k2 = k
		}
	}
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	tx, err := c.Begin(client.TxOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := tx.Add(k1, 3); err != nil || n != 3 {
		t.Fatalf("Add(%s) = %d, %v", k1, n, err)
	}
	// k2 routes off the bound shard: live -> deferred fallback.
	if n, err := tx.Add(k2, -3); err != nil || n != -3 {
		t.Fatalf("Add(%s) = %d, %v", k2, n, err)
	}
	// Read-your-writes survives the fallback.
	if n, err := tx.Get(k1); err != nil || n != 3 {
		t.Fatalf("Get(%s) after fallback = %d, %v", k1, n, err)
	}
	res, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0] != 3 || res[1] != -3 {
		t.Fatalf("Commit results = %v, want [3 -3]", res)
	}
	if sum, err := c.Sum(k1, k2); err != nil || sum != 0 {
		t.Fatalf("Sum = %d, %v", sum, err)
	}
	if st := store.Stats(); st.CrossCommits < 1 {
		t.Errorf("fallback commit did not use the cross-shard path (cross=%d)", st.CrossCommits)
	}
}

// TestTxnReap: a session whose value function crosses zero while it sits
// idle is shed by the reaper — later verbs on it answer SHED, the slot
// is returned, and txn_reaped counts it.
func TestTxnReap(t *testing.T) {
	srv, addr := startServer(t, Config{
		Shards: 2,
		Txn:    TxnConfig{ReapEvery: time.Millisecond, MaxIdle: -1},
	})
	rc := dialRaw(t, addr)

	// Zero-crossing ~1ms after BEGIN.
	rc.send("TXN BEGIN v=1e-6 dl=1 grad=1e9")
	got := rc.recv()
	id, ok := strings.CutPrefix(got, "OK ")
	if !ok || !validWireTxnID(id, 1) {
		t.Fatalf("BEGIN -> %q", got)
	}
	rc.send("TXN W " + id + " r-x 5")
	if got := rc.recv(); got != "OK 5" {
		t.Fatalf("W -> %q", got)
	}

	deadline := time.Now().Add(5 * time.Second)
	for srv.txnReaped.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never reaped past its zero-crossing")
		}
		time.Sleep(time.Millisecond)
	}
	// SHED is answered by numeric tombstone — even without the token, so
	// a client that lost the reply still learns its session's fate.
	for _, verb := range []string{"TXN R " + id + " r-x", "TXN W " + id + " r-x 1", "TXN COMMIT " + id, "TXN ABORT " + id, "TXN COMMIT 1"} {
		rc.send(verb)
		if got := rc.recv(); got != "SHED" {
			t.Errorf("%q on reaped session -> %q, want SHED", verb, got)
		}
	}
	// Nothing committed; the write is gone.
	rc.send("GET r-x")
	if got := rc.recv(); got != "NIL" {
		t.Errorf("GET after reap -> %q", got)
	}
	rc.send("STATS")
	if got := rc.recv(); !strings.Contains(got, "txn_reaped=1") || !strings.Contains(got, "txn_active=0") {
		t.Errorf("STATS after reap = %q", got)
	}
	// The reaped session's admission slot was returned: new work admits.
	rc.send("TXN BEGIN")
	got = rc.recv()
	id2, ok := strings.CutPrefix(got, "OK ")
	if !ok || !validWireTxnID(id2, 2) {
		t.Errorf("BEGIN after reap -> %q", got)
	}
	rc.send("TXN ABORT " + id2)
	rc.recv()
}

// TestTxnIdleReap: the idle cap reaps an abandoned session even though
// its value function never declines.
func TestTxnIdleReap(t *testing.T) {
	srv, addr := startServer(t, Config{
		Shards: 2,
		Txn:    TxnConfig{ReapEvery: time.Millisecond, MaxIdle: 20 * time.Millisecond},
	})
	rc := dialRaw(t, addr)
	rc.send("TXN BEGIN") // no deadline: only the idle cap can reap it
	got := rc.recv()
	id, ok := strings.CutPrefix(got, "OK ")
	if !ok || !validWireTxnID(id, 1) {
		t.Fatalf("BEGIN -> %q", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.txnReaped.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle session never reaped")
		}
		time.Sleep(time.Millisecond)
	}
	rc.send("TXN COMMIT " + id)
	if got := rc.recv(); got != "SHED" {
		t.Errorf("COMMIT on idle-reaped session -> %q, want SHED", got)
	}
}

// TestTxnSessionTokenAuth: the wire id BEGIN returns carries a random
// capability token, and it — not the guessable numeric prefix — is the
// credential. A second connection can operate on the session only by
// presenting the full id; a forged or missing token is indistinguishable
// from a session that never existed.
func TestTxnSessionTokenAuth(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 2})
	a := dialRaw(t, addr)
	b := dialRaw(t, addr)

	a.send("TXN BEGIN")
	got := a.recv()
	id, ok := strings.CutPrefix(got, "OK ")
	if !ok || !validWireTxnID(id, 1) {
		t.Fatalf("BEGIN -> %q", got)
	}
	a.send("TXN W " + id + " ta-k 5")
	if got := a.recv(); got != "OK 5" {
		t.Fatalf("W -> %q", got)
	}

	// Another connection guessing the numeric id — with no token, a
	// forged token, or a truncated one — is turned away.
	num, token, _ := strings.Cut(id, "-")
	for _, forged := range []string{num, num + "-0000000000000000", num + "-" + token[:15]} {
		b.send("TXN R " + forged + " ta-k")
		if got := b.recv(); got != "ERR no such txn "+forged {
			t.Errorf("forged id %q -> %q, want ERR no such txn", forged, got)
		}
	}
	// The uncommitted write stayed invisible and uncommitted.
	b.send("GET ta-k")
	if got := b.recv(); got != "NIL" {
		t.Errorf("GET during forgery attempts -> %q", got)
	}

	// The full wire id is a capability: a different connection holding it
	// operates the session (sessions are not connection-bound).
	b.send("TXN R " + id + " ta-k")
	if got := b.recv(); got != "OK 5" {
		t.Errorf("token-bearing cross-connection read -> %q, want OK 5", got)
	}
	b.send("TXN COMMIT " + id)
	if got := b.recv(); got != "OK 5" {
		t.Errorf("token-bearing cross-connection commit -> %q, want OK 5", got)
	}
	a.send("GET ta-k")
	if got := a.recv(); got != "OK 5" {
		t.Errorf("GET after commit -> %q", got)
	}
}

// TestTxnReplica: sessions on a read replica are read-only and priced by
// the lag gate at BEGIN — a session whose value function would cross
// zero before the replica's estimated catch-up is shed at the door.
func TestTxnReplica(t *testing.T) {
	// A tight lag budget so manufactured lag actually sheds.
	gate := repl.NewLagGate(4, 10*time.Millisecond, time.Millisecond)
	pri, priAddr, _, repAddr, r := startReplicaPairGated(t, 4, gate, 0)

	// Seed the primary and let the replica catch up.
	pc, err := client.Dial(priAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if err := pc.Put("rt-k", 42); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, pri, r)

	c, err := client.Dial(repAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tx, err := c.Begin(client.TxOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := tx.Get("rt-k"); err != nil || n != 42 {
		t.Fatalf("replica Get = %d, %v", n, err)
	}
	if _, err := tx.Add("rt-k", 1); err == nil || !strings.Contains(err.Error(), "read-only replica") {
		t.Fatalf("replica write err = %v, want read-only replica", err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatalf("read-only commit: %v", err)
	}

	// Manufacture hopeless lag: BEGIN with a tight value function sheds.
	gate.ObserveHead(0, 1_000_000)
	_, err = c.Begin(client.TxOpts{Value: 1e-6, Deadline: time.Millisecond, Gradient: 1e9})
	if !errors.Is(err, client.ErrShed) {
		t.Fatalf("lagging BEGIN err = %v, want ErrShed", err)
	}
	// A patient session (no deadline) is still served from the snapshot.
	tx2, err := c.Begin(client.TxOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := tx2.Get("rt-k"); err != nil || n != 42 {
		t.Fatalf("patient replica Get = %d, %v", n, err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
}

// TestTxnClientDo: the Do retry loop mirrors Store.Update — fn runs
// inside a session, a clean return commits, an error aborts.
func TestTxnClientDo(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 4})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Do(client.TxOpts{Value: 2}, func(tx *client.Txn) error {
		if _, err := tx.Add("do-a", 10); err != nil {
			return err
		}
		_, err := tx.Add("do-b", -10)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if sum, err := c.Sum("do-a", "do-b"); err != nil || sum != 0 {
		t.Fatalf("Sum = %d, %v", sum, err)
	}
	if n, ok, _ := c.Get("do-a"); !ok || n != 10 {
		t.Fatalf("do-a = %d, %v", n, ok)
	}

	// fn error aborts: nothing committed.
	boom := errors.New("boom")
	if err := c.Do(client.TxOpts{}, func(tx *client.Txn) error {
		if _, err := tx.Add("do-c", 1); err != nil {
			return err
		}
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("Do err = %v, want boom", err)
	}
	if _, ok, _ := c.Get("do-c"); ok {
		t.Fatal("aborted Do leaked a write")
	}

	// fn may commit explicitly to observe results; Do honors the verdict.
	var res []int64
	if err := c.Do(client.TxOpts{}, func(tx *client.Txn) error {
		if _, err := tx.Add("do-d", 7); err != nil {
			return err
		}
		var err error
		res, err = tx.Commit()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] != 7 {
		t.Fatalf("explicit commit results = %v", res)
	}
}

// TestTxnCtxDeadlineMapsToReap: a context deadline given to BeginContext
// becomes the session's dl= on the wire, so the server's reaper sheds
// the session once the caller's deadline (plus the default post-deadline
// decline) has consumed its value — client- and server-side deadlines
// agree without the caller saying anything twice.
func TestTxnCtxDeadlineMapsToReap(t *testing.T) {
	srv, addr := startServer(t, Config{
		Shards: 2,
		Txn:    TxnConfig{ReapEvery: time.Millisecond, MaxIdle: -1},
	})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.BeginContext(ctx, client.TxOpts{}); err != nil {
		t.Fatal(err)
	}
	// Value 1, deadline ~20ms, default gradient => zero-crossing ~40ms.
	deadline := time.Now().Add(5 * time.Second)
	for srv.txnReaped.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ctx-deadline session never reaped: dl= was not mapped")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTxnInteractiveSerializableHistory replays concurrent interactive
// transactions through the history oracle, exactly like the pipelined
// one-shot test but with every transaction spanning three round trips
// (BEGIN, two writes, COMMIT) and many sessions interleaved per
// connection. Commit results are the committed execution's values, so
// the same cumulative-sum trick rebuilds read versions.
func TestTxnInteractiveSerializableHistory(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 8, Mode: engine.SCC2S})
	const (
		clients    = 4
		perSession = 2 // concurrent sessions per connection
		perWorker  = 15
		hotKeys    = 4
		gKey       = "txnseq"
	)

	var mu sync.Mutex
	var all []pobs
	var wg sync.WaitGroup
	for cI := 0; cI < clients; cI++ {
		m, err := client.DialMux(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		for sI := 0; sI < perSession; sI++ {
			wg.Add(1)
			go func(cI, sI int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					hk := (cI*11 + sI*5 + i*3) % hotKeys
					var res []int64
					err := m.Do(client.TxOpts{Value: 1, Deadline: 10 * time.Second}, func(tx *client.Txn) error {
						if _, err := tx.Add(gKey, 1); err != nil {
							return err
						}
						if _, err := tx.Add(fmt.Sprintf("txnhot%d", hk), 1); err != nil {
							return err
						}
						var err error
						res, err = tx.Commit()
						return err
					})
					if err != nil {
						t.Errorf("worker %d.%d: %v", cI, sI, err)
						return
					}
					if len(res) != 2 {
						t.Errorf("worker %d.%d: results %v", cI, sI, res)
						return
					}
					mu.Lock()
					all = append(all, pobs{gval: res[0], hkey: hk, hval: res[1]})
					mu.Unlock()
				}
			}(cI, sI)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	want := clients * perSession * perWorker
	if len(all) != want {
		t.Fatalf("collected %d commits, want %d", len(all), want)
	}
	gPage := model.PageID(0)
	hPage := func(k int) model.PageID { return model.PageID(1 + k) }
	gWriter := make(map[int64]model.TxnID, len(all))
	hWriter := make(map[int]map[int64]model.TxnID, hotKeys)
	for i, o := range all {
		id := model.TxnID(i + 1)
		if _, dup := gWriter[o.gval]; dup {
			t.Fatalf("duplicate sequencer value %d: lost update", o.gval)
		}
		gWriter[o.gval] = id
		if hWriter[o.hkey] == nil {
			hWriter[o.hkey] = make(map[int64]model.TxnID)
		}
		if _, dup := hWriter[o.hkey][o.hval]; dup {
			t.Fatalf("duplicate hot%d value %d: lost update", o.hkey, o.hval)
		}
		hWriter[o.hkey][o.hval] = id
	}
	version := func(m map[int64]model.TxnID, preVal int64, what string) model.TxnID {
		if preVal == 0 {
			return 0
		}
		id, ok := m[preVal]
		if !ok {
			t.Fatalf("%s: observed pre-value %d produced by no committed transaction", what, preVal)
		}
		return id
	}
	var rec history.Recorder
	for i, o := range all {
		id := model.TxnID(i + 1)
		rec.Add(history.CommitRecord{
			ID:  id,
			Seq: int(o.gval),
			Reads: []model.ReadObs{
				{Page: gPage, Version: version(gWriter, o.gval-1, "txnseq")},
				{Page: hPage(o.hkey), Version: version(hWriter[o.hkey], o.hval-1, fmt.Sprintf("txnhot%d", o.hkey))},
			},
			Writes: []model.PageID{gPage, hPage(o.hkey)},
		})
	}
	if err := rec.Check(); err != nil {
		t.Fatalf("interactive execution not serializable: %v", err)
	}
}

// TestCloseUnblocksSessions: Server.Close must not deadlock behind open
// sessions — a BEGIN queued behind session-held admission slots and an
// op parked on a live session are both unblocked by the teardown order
// (admission closed, sessions aborted, then handlers awaited).
func TestCloseUnblocksSessions(t *testing.T) {
	srv, addr := startServer(t, Config{
		Shards:    2,
		Admission: AdmissionConfig{MaxConcurrent: 1},
		Txn:       TxnConfig{MaxIdle: -1}, // no idle cap: only Close can unwedge
	})
	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	// Session 1 takes the only admission slot and binds a live engine
	// transaction, then sits idle.
	tx, err := c1.Begin(client.TxOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Add("cu-k", 1); err != nil {
		t.Fatal(err)
	}
	// A second BEGIN queues behind the held slot.
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	beginDone := make(chan error, 1)
	go func() {
		_, err := c2.Begin(client.TxOpts{})
		beginDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the BEGIN reach the queue

	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Server.Close deadlocked behind open sessions")
	}
	select {
	case err := <-beginDone:
		if !errors.Is(err, client.ErrShed) && err == nil {
			t.Errorf("queued BEGIN at shutdown = %v, want shed or connection error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued BEGIN never unblocked")
	}
}

// TestUPDMatchesTxn: the legacy one-shot UPD and an equivalent
// interactive session produce identical results — they share one
// executor. (Exact UPD reply bytes are pinned by the main conformance
// suite; this checks end-to-end equivalence of the two surfaces.)
func TestUPDMatchesTxn(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 4})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	updRes, err := c.Update([]client.Op{
		{Key: "eq-a", Delta: 4, Write: true},
		{Key: "eq-b"},
		{Key: "eq-c", Delta: -4, Write: true},
	}, client.TxOpts{Value: 3, Deadline: time.Second})
	if err != nil {
		t.Fatal(err)
	}

	tx, err := c.Begin(client.TxOpts{Value: 3, Deadline: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Add("eq2-a", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Get("eq2-b"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Add("eq2-c", -4); err != nil {
		t.Fatal(err)
	}
	txnRes, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if len(updRes) != len(txnRes) || updRes[0] != txnRes[0] || updRes[1] != txnRes[1] {
		t.Fatalf("UPD results %v != TXN results %v", updRes, txnRes)
	}
}
