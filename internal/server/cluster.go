// Cluster integration: fencing epochs on the commit path, the promotion
// and demotion transitions, and the TOPO/PLACE verbs. The cluster
// package owns topology decisions (leases, elections, placement plans);
// this file is where those decisions meet the engine — the fenced
// commit-log sink that turns a deposed primary's verdicts into errors,
// and the replica-to-primary handoff that rebases the replication feed
// onto the applied prefix.
package server

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/obs/flight"
	"repro/internal/repl"
)

// errFenced is the commit-sync failure a deposed node's in-flight
// commits surface: the write may be installed in local memory, but the
// verdict becomes ERR — installed but never acknowledged, exactly the
// WAL-failure contract — so nothing a zombie primary accepts after
// deposition is ever acked as durable.
type errFenced struct {
	installed uint64 // fencing epoch the sink was installed under
	current   uint64 // fencing epoch the cluster has moved to
	primary   string
}

func (e *errFenced) Error() string {
	return fmt.Sprintf("fenced: epoch %d deposed by %d (primary %s)", e.installed, e.current, primaryToken(e.primary))
}

// fencedLog wraps a clustered primary's per-shard replication log with
// the fencing check, implementing CommitSyncer so the engine consults
// the cluster state once per commit batch — after install, before any
// verdict. Appends pass through untouched (they run under the store
// latch and must stay fast); the fence is enforced where it matters,
// at the acknowledgement boundary.
type fencedLog struct {
	log   *repl.Log
	state *cluster.State
	epoch uint64 // fencing epoch this sink was installed under
	fl    *flight.Recorder
	shard int
}

func (f *fencedLog) Append(writes map[string][]byte) { f.log.Append(writes) }

func (f *fencedLog) AppendCross(writes map[string][]byte, value float64, epoch uint64, shards []int) {
	f.log.AppendCross(writes, value, epoch, shards)
}

func (f *fencedLog) LastEpoch() uint64 { return f.log.LastEpoch() }

// Sync is the fence: it fails when the cluster moved past the fencing
// epoch this sink was installed under (or the node stopped being
// primary), converting every verdict of the batch to an error.
func (f *fencedLog) Sync() error {
	epoch, role, primary := f.state.Snapshot()
	if role == cluster.RolePrimary && epoch == f.epoch {
		return nil
	}
	f.fl.Server().Record(flight.EvFenceReject, 0, f.shard, f.epoch)
	return &errFenced{installed: f.epoch, current: epoch, primary: primary}
}

// primaryToken renders a primary address for ERR not-primary replies:
// "-" when unknown, so the reply always has the same field count.
func primaryToken(addr string) string {
	if addr == "" {
		return "-"
	}
	return addr
}

// notPrimary is the redirect reply a clustered non-primary answers to
// writes (and a fenced node answers to replication verbs): clients
// follow the address; "-" means the new primary is not yet known.
func (s *Server) notPrimary() string {
	return "ERR not-primary " + primaryToken(s.cluster.Primary())
}

// fenceWrite is the entry fence: every write on a clustered node checks
// it before touching admission. Non-nil means the caller must return
// the redirect reply instead of executing.
func (s *Server) fenceWrite(id uint64) (string, bool) {
	cs := s.cluster
	if cs == nil || cs.IsPrimary() {
		return "", false
	}
	s.flight.Server().Record(flight.EvFenceReject, id, -1, cs.Epoch())
	return s.notPrimary(), true
}

// fencedReplVerb reports whether a replication-serving verb (REPL, ACK,
// SNAP, HEAD) must be refused because this node is a deposed primary:
// its logs are frozen history a joiner must not bootstrap from.
func (s *Server) fencedReplVerb() (string, bool) {
	if cs := s.cluster; cs != nil && cs.Role() == cluster.RoleFenced {
		return s.notPrimary(), true
	}
	return "", false
}

// Promote turns this replica server into the primary under the given
// fencing epoch — the PROMOTE protocol's server half. rep is the
// replication stream to tear down (nil if already stopped). The steps
// are ordered so no window accepts unfenced writes:
//
//  1. stop the apply stream (the barrier queue has already delivered
//     every complete epoch; incomplete trailing epochs are discarded —
//     they were never applied, so the store is a clean prefix),
//  2. claim the state (writes arriving now pass the entry fence but
//     commit through the fenced sink installed next — until it is
//     installed the old gate still rejects them),
//  3. rebase a fresh replication feed at the applied indices and epoch
//     watermarks, so downstream joiners resume the primary numbering,
//  4. install the fenced commit-log sinks under the new epoch,
//  5. lift the lag gate and publish the feed.
func (s *Server) Promote(rep *repl.Replica, epoch uint64) error {
	cs := s.cluster
	if cs == nil {
		return fmt.Errorf("server: not clustered")
	}
	if s.durable != nil {
		// Promotion installs the in-memory fenced sinks, which would
		// silently replace the WAL sink — refuse rather than drop
		// durability; the monitor keeps this node a replica.
		return fmt.Errorf("server: promoting a durable replica is not supported (WAL sink would be replaced)")
	}
	var applied, marks []uint64
	if rep != nil {
		rep.Close()
		applied = rep.Applied()
		marks = rep.Watermarks()
	}
	if err := cs.BecomePrimary(epoch); err != nil {
		return err
	}
	shards := s.store.NumShards()
	feed := s.Feed()
	if feed == nil {
		feed = repl.NewFeed(shards, s.epochs)
		if s.retain > 0 {
			feed.SetRetention(s.retain)
		}
		var maxMark uint64
		for i := 0; i < shards; i++ {
			var base, mark uint64
			if i < len(applied) {
				base = applied[i]
			}
			if i < len(marks) {
				mark = marks[i]
			}
			if mark > maxMark {
				maxMark = mark
			}
			feed.Log(i).ResetBase(base, mark)
		}
		// New commits must stamp epochs above everything replicated
		// history used, or the apply barrier downstream would conflate
		// old and new cross-shard commits.
		s.epochs.Observe(maxMark)
	}
	for i := 0; i < shards; i++ {
		s.store.Shard(i).SetCommitLog(&fencedLog{
			log: feed.Log(i), state: cs, epoch: epoch, fl: s.flight, shard: i,
		})
	}
	s.feedP.Store(feed)
	s.gateP.Store(nil)
	s.flight.Server().Record(flight.EvPromote, 0, -1, epoch)
	return nil
}

// Demote records a deposed primary's fencing into the flight ring. The
// cluster state has already flipped to RoleFenced (the Node's Observe
// did it atomically with discovering the higher epoch); from that
// instant every in-flight commit fails at the fenced sink and every new
// write bounces at the entry fence — this is bookkeeping, not the
// fence itself.
func (s *Server) Demote(epoch uint64, primary string) {
	s.flight.Server().Record(flight.EvDemote, 0, -1, epoch)
}

// handleTopo serves the TOPO verb: one k=v line describing this node's
// topology view, the discovery surface replicas' lease probes, clients'
// redirect logic, and operators all share.
func (s *Server) handleTopo() string {
	cs := s.cluster
	if cs == nil {
		return "ERR not clustered"
	}
	epoch, role, primary := cs.Snapshot()
	watermark, applied := cs.Progress()
	if feed := s.Feed(); feed != nil && role == cluster.RolePrimary {
		// A primary's catch-up position is its own feed.
		watermark = feed.EpochWatermark()
		var sum uint64
		for _, h := range feed.Heads() {
			sum += h
		}
		applied = sum
	}
	return cluster.TopoReply{
		Role:      role.String(),
		Epoch:     epoch,
		Primary:   primary,
		Self:      cs.Self(),
		Watermark: watermark,
		Applied:   applied,
	}.Format()
}

// handlePlace serves the PLACE verb: plan value-cognizant shard moves
// from the durability layer's per-shard pending-value accounting and
// apply them to the epoch-fenced assignment table. The reply lists the
// applied moves, most valuable first:
//
//	OK <n> [<shard>|<from>|<to>|<value> ...]
//
// Placement needs the pending-value signal, which only the checkpoint
// scheduler maintains — so like CKPT, PLACE requires durability.
func (s *Server) handlePlace() string {
	cs := s.cluster
	if cs == nil {
		return "ERR not clustered"
	}
	if s.durable == nil {
		return "ERR durability disabled"
	}
	if !cs.IsPrimary() {
		return s.notPrimary()
	}
	assign, _ := s.assign.Table()
	moves := cluster.PlanPlacement(s.durable.PendingValues(), assign, cs.Members())
	epoch := cs.Epoch()
	var b strings.Builder
	applied := 0
	for _, m := range moves {
		if err := s.assign.Apply(m, epoch); err != nil {
			continue
		}
		applied++
		fmt.Fprintf(&b, " %d|%s|%s|%s", m.Shard, m.From, m.To, strconv.FormatFloat(m.Value, 'g', -1, 64))
	}
	return "OK " + strconv.Itoa(applied) + b.String()
}
