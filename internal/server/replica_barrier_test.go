// Replica cross-shard apply barrier: a cross-shard commit must become
// visible on a replica all-shards-at-once. The test hammers balanced
// two-shard transfers into the primary while a poller on the replica
// continuously audits the invariant the barrier guarantees — the sum of
// the transfer keys never moves. Before the barrier, each shard's log
// applied independently and the poller caught half-applied transfers.
package server

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server/client"
)

func TestReplicaCrossShardAtomicVisibility(t *testing.T) {
	pri, priAddr, _, repAddr, r, _ := startReplicaPair(t, 4)

	store := pri.Store()
	k0 := "bar-a"
	k1 := ""
	for i := 0; i < 10000 && k1 == ""; i++ {
		k := fmt.Sprintf("bar-b%d", i)
		if store.ShardOf(k) != store.ShardOf(k0) {
			k1 = k
		}
	}
	pc, err := client.Dial(priAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	rc, err := client.Dial(repAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	// Seed both keys and let the replica see the baseline.
	if err := pc.Put(k0, 100); err != nil {
		t.Fatal(err)
	}
	if err := pc.Put(k1, 100); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, pri, r)
	if sum, err := rc.Sum(k0, k1); err != nil || sum != 200 {
		t.Fatalf("replica baseline sum = %d, %v", sum, err)
	}

	// The auditor: every replica SUM taken while transfers stream in
	// must read the conserved total — a cross-shard commit half-applied
	// on the replica would break it.
	stop := make(chan struct{})
	auditDone := make(chan struct{})
	var audits atomic.Int64
	go func() {
		defer close(auditDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			sum, err := rc.Sum(k0, k1)
			if err != nil {
				t.Errorf("replica SUM: %v", err)
				return
			}
			if sum != 200 {
				t.Errorf("replica SUM = %d mid-replication, want 200 (cross-shard commit visible on one shard only)", sum)
				return
			}
			audits.Add(1)
		}
	}()

	const transfers = 150
	for i := 0; i < transfers; i++ {
		amount := int64(1 + i%7)
		res, err := pc.Update([]client.Op{
			{Key: k0, Delta: -amount, Write: true},
			{Key: k1, Delta: amount, Write: true},
		}, client.TxOpts{Value: 1, Deadline: 10 * time.Second})
		if err != nil {
			t.Fatalf("transfer %d: %v", i, err)
		}
		if len(res) != 2 || res[0]+res[1] != 200 {
			t.Fatalf("transfer %d results %v, want balanced", i, res)
		}
	}
	waitCaughtUp(t, pri, r)
	close(stop)
	<-auditDone
	if t.Failed() {
		return
	}
	if audits.Load() == 0 {
		t.Fatal("auditor never sampled the replica; the test degenerated")
	}

	// Converged: replica and primary agree exactly.
	pSum, err := pc.Sum(k0, k1)
	if err != nil {
		t.Fatal(err)
	}
	rSum, err := rc.Sum(k0, k1)
	if err != nil {
		t.Fatal(err)
	}
	if pSum != 200 || rSum != 200 {
		t.Fatalf("converged sums primary=%d replica=%d, want 200", pSum, rSum)
	}
	for _, k := range []string{k0, k1} {
		pv, pok, _ := pc.Get(k)
		rv, rok, _ := rc.Get(k)
		if !pok || !rok || pv != rv {
			t.Fatalf("%s diverged: primary=%d(%v) replica=%d(%v)", k, pv, pok, rv, rok)
		}
	}
}
