// Value-cognizant admission control. The paper's Sec. 3 machinery decides
// which transaction deserves the CPU when conflicts resolve; the same
// expected-value calculus applies one layer up, at the door: when the
// server is saturated, the waiting transaction with the highest expected
// value EV_u(x) = V_u(x) * EF_u(x) (Def. 7) is dispatched first, and a
// waiter whose value function has crossed zero (Def. 2's penalty decline
// has consumed its whole value) is shed — running it can no longer add
// value, only steal capacity from transactions that still can.

package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/server/opts"
	"repro/internal/value"
)

// ErrShed is returned by Acquire when a transaction is refused admission:
// either its value function already crossed zero, or it was evicted from a
// full queue as the lowest-expected-value waiter.
var ErrShed = errors.New("server: admission shed")

// ErrTenantShed is the admission refusal for a request whose tenant is
// over its rolling admitted-value budget. It wraps ErrShed — every
// existing errors.Is(err, ErrShed) site treats it as a shed — while
// letting the server attribute the loss to the budget, not the queue.
var ErrTenantShed = fmt.Errorf("%w: tenant over value budget", ErrShed)

// AdmissionConfig configures the admission queue.
type AdmissionConfig struct {
	// MaxConcurrent is the number of transactions allowed in the engine at
	// once (default 64).
	MaxConcurrent int
	// MaxQueue bounds the waiting room; a full queue evicts the
	// lowest-expected-value waiter (default 1024).
	MaxQueue int
	// InitOpTime seeds the per-operation service-time estimate in seconds
	// (default 200µs). The estimate is refined online from observed
	// completions — the live analogue of class statistics "obtained
	// off-line from the previous history of the system" (Sec. 3.2).
	InitOpTime float64
	// RelSigma is the relative standard deviation assumed for execution
	// times (default 0.2, the workload model's jitter).
	RelSigma float64
	// TenantBudget caps the value each tenant (the tenant= wire token)
	// may have admitted per second, measured over a rolling TenantWindow.
	// A tenant over its budget is shed exactly where zero-crossed waiters
	// are shed — at the door and in every dispatch sweep — so a hog
	// tenant saturates its own budget instead of the whole queue. 0
	// disables budgets; untagged requests are never budget-shed.
	TenantBudget float64
	// TenantWindow is the rolling-budget window (default 1s).
	TenantWindow time.Duration
}

func (c *AdmissionConfig) defaults() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 64
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 1024
	}
	if c.InitOpTime <= 0 {
		c.InitOpTime = 200e-6
	}
	if c.RelSigma <= 0 {
		c.RelSigma = 0.2
	}
	if c.TenantWindow <= 0 {
		c.TenantWindow = time.Second
	}
}

// AdmissionStats are cumulative admission counters. Admitted counts
// grants, including re-grants to readmitted cross-shard retries;
// Readmits counts retry re-entries (whether re-granted or shed); Shed
// includes readmission sheds. Front-door sheds are therefore Shed minus
// the server's cross_shed counter, and front-door grants are
// Admitted - (Readmits - cross_shed).
type AdmissionStats struct {
	Admitted   int64
	Shed       int64
	TenantShed int64   // subset of Shed caused by tenant budgets
	Readmits   int64   // Readmit calls (cross-shard retries re-entering the queue)
	Depth      int     // current queue depth
	InFlight   int     // currently admitted
	Tenants    int     // tenant budget meters currently tracked
	OpTime     float64 // current per-op service-time estimate (seconds)
}

type waiter struct {
	f      value.Fn
	d      value.ExecDist
	grant  chan error
	tenant string
	score  float64 // Def. 7 expected value, refreshed each dispatch sweep
}

// tenantBuckets subdivides the rolling budget window; a coarse ring is
// enough — the budget is a rate cap, not an accounting ledger.
const tenantBuckets = 10

// tenantMeter tracks one tenant's admitted value over the rolling
// window as a ring of window/tenantBuckets-wide buckets.
type tenantMeter struct {
	buckets [tenantBuckets]float64
	last    int64 // absolute bucket index the ring is positioned at
}

// advance zeroes buckets between the meter's position and bucket.
func (m *tenantMeter) advance(bucket int64) {
	step := bucket - m.last
	if step <= 0 {
		return
	}
	if step > tenantBuckets {
		step = tenantBuckets
	}
	for i := int64(1); i <= step; i++ {
		m.buckets[(m.last+i)%tenantBuckets] = 0
	}
	m.last = bucket
}

// total returns the admitted value over the window.
func (m *tenantMeter) total() float64 {
	sum := 0.0
	for _, b := range m.buckets {
		sum += b
	}
	return sum
}

// Admission is the value-cognizant admission queue.
type Admission struct {
	cfg   AdmissionConfig
	epoch time.Time

	mu         sync.Mutex
	closed     bool
	slots      int
	waiters    []*waiter
	opTime     float64 // EWMA of per-op service time, seconds
	admitted   int64
	shed       int64
	tenantShed int64
	readmits   int64
	tenants    map[string]*tenantMeter
}

// NewAdmission returns an admission queue with all slots free.
func NewAdmission(cfg AdmissionConfig) *Admission {
	cfg.defaults()
	return &Admission{
		cfg:    cfg,
		epoch:  time.Now(),
		slots:  cfg.MaxConcurrent,
		opTime: cfg.InitOpTime,
	}
}

// now returns seconds since the queue's epoch — the absolute time base the
// value functions are expressed in.
func (a *Admission) now() float64 { return time.Since(a.epoch).Seconds() }

// FnFor builds a Def. 2 value function for a request arriving now: value v
// until the deadline (relative, seconds; <= 0 means none), then declining
// at gradient per second. A zero gradient with a deadline defaults to
// losing the full value one relative deadline past it — the "45 degrees"
// convention of the workload model. The semantics live in opts.T.Fn, the
// one codec every value-carrying path shares; this wrapper just anchors
// it to the queue's clock.
func (a *Admission) FnFor(v, deadline, gradient float64) value.Fn {
	return a.FnOf(opts.T{
		Value:    v,
		Deadline: opts.ClampDuration(deadline * float64(time.Second)),
		Gradient: gradient,
	})
}

// FnOf anchors parsed wire options to the queue's clock.
func (a *Admission) FnOf(o opts.T) value.Fn { return o.Fn(a.now()) }

// distFor builds the Def. 3 execution-time distribution for a request of
// numOps operations from the current service-time estimate.
func (a *Admission) distFor(numOps int) value.ExecDist {
	if numOps <= 0 {
		numOps = 1
	}
	mean := float64(numOps) * a.opTime
	return value.ExecDist{Mean: mean, Sigma: a.cfg.RelSigma * mean}
}

// score is the Def. 7 expected value of dispatching w now: its value
// function evaluated one mean execution time ahead, weighted by the
// probability a fresh shadow finishes by then.
func (a *Admission) score(w *waiter, now float64) float64 {
	sh := []value.ShadowState{{Executed: 0, Adoption: 1}}
	return value.ExpectedValue(w.f, w.d, sh, now, w.d.Mean)
}

// Close sheds every queued waiter and makes all future Acquire/Readmit
// calls fail with ErrShed. A closing server calls it before waiting out
// its connection handlers: a handler parked in the queue behind slots
// that only session teardown would free must not stall shutdown.
func (a *Admission) Close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.closed = true
	for _, w := range a.waiters {
		a.shed++
		w.grant <- ErrShed
	}
	a.waiters = nil
}

// meterLocked returns tenant's budget meter advanced to now, creating
// it on first sight. Meters are client-named map entries; past a
// generous cap, drained meters (nothing admitted in the current window)
// are swept so an adversarial name stream cannot grow the map without
// also spending budget. Caller holds a.mu.
func (a *Admission) meterLocked(tenant string, now float64) *tenantMeter {
	if a.tenants == nil {
		a.tenants = make(map[string]*tenantMeter)
	}
	bucket := int64(now / (a.cfg.TenantWindow.Seconds() / tenantBuckets))
	m := a.tenants[tenant]
	if m == nil {
		if len(a.tenants) >= 4096 {
			for name, other := range a.tenants {
				other.advance(bucket)
				if other.total() == 0 {
					delete(a.tenants, name)
				}
			}
		}
		m = &tenantMeter{last: bucket}
		a.tenants[tenant] = m
	}
	m.advance(bucket)
	return m
}

// overBudgetLocked reports whether tenant has already admitted its
// budgeted value for the current rolling window. Caller holds a.mu.
func (a *Admission) overBudgetLocked(tenant string, now float64) bool {
	if a.cfg.TenantBudget <= 0 || tenant == "" {
		return false
	}
	return a.meterLocked(tenant, now).total() >= a.cfg.TenantBudget*a.cfg.TenantWindow.Seconds()
}

// chargeLocked records v admitted value against tenant's budget.
// Caller holds a.mu.
func (a *Admission) chargeLocked(tenant string, now, v float64) {
	if a.cfg.TenantBudget <= 0 || tenant == "" {
		return
	}
	m := a.meterLocked(tenant, now)
	m.buckets[m.last%tenantBuckets] += v
}

// Acquire blocks until the transaction is admitted or shed. numOps sizes
// the execution-time estimate; f orders the wait and decides shedding.
func (a *Admission) Acquire(f value.Fn, numOps int) error {
	return a.AcquireTenant(f, numOps, "")
}

// AcquireTenant is Acquire with the request attributed to a tenant
// budget: a tenant over its rolling admitted-value budget is refused
// with ErrTenantShed at the same decision points where zero-crossed
// value functions are shed. The admitted value V(now) is charged to the
// budget at grant time.
func (a *Admission) AcquireTenant(f value.Fn, numOps int, tenant string) error {
	a.mu.Lock()
	if a.closed {
		a.shed++
		a.mu.Unlock()
		return ErrShed
	}
	now := a.now()
	if f.At(now) <= 0 {
		a.shed++
		a.mu.Unlock()
		return ErrShed
	}
	if a.overBudgetLocked(tenant, now) {
		a.shed++
		a.tenantShed++
		a.mu.Unlock()
		return ErrTenantShed
	}
	if a.slots > 0 && len(a.waiters) == 0 {
		a.slots--
		a.admitted++
		a.chargeLocked(tenant, now, f.At(now))
		a.mu.Unlock()
		return nil
	}
	w := a.enqueueLocked(f, numOps, tenant)
	a.mu.Unlock()
	if w == nil {
		return ErrShed
	}
	return <-w.grant
}

// enqueueLocked appends a waiter, applying the value-cognizant overflow
// policy: a full queue evicts the lowest-expected-value waiter, which may
// be the newcomer itself (nil return). Caller holds a.mu.
func (a *Admission) enqueueLocked(f value.Fn, numOps int, tenant string) *waiter {
	now := a.now()
	w := &waiter{f: f, d: a.distFor(numOps), grant: make(chan error, 1), tenant: tenant}
	if len(a.waiters) >= a.cfg.MaxQueue {
		evict, evictScore := -1, a.score(w, now)
		for i, other := range a.waiters {
			if sc := a.score(other, now); sc < evictScore {
				evict, evictScore = i, sc
			}
		}
		a.shed++
		if evict < 0 {
			return nil
		}
		victim := a.waiters[evict]
		a.waiters = append(a.waiters[:evict], a.waiters[evict+1:]...)
		victim.grant <- ErrShed
	}
	a.waiters = append(a.waiters, w)
	return w
}

// Readmit yields the caller's admission slot and immediately re-queues
// for a fresh grant. Cross-shard retries use it so a restarted
// transaction re-competes for capacity by expected value — the queue
// dispatches the highest-EV waiter first and sheds the caller outright
// once its value function has crossed zero — instead of retrying while
// still holding the slot it was first admitted on. The caller is
// enqueued before the slot is freed, all under one lock hold, so it
// competes for its own freed slot in the same expected-value sweep as
// every parked waiter — surrendering first would hand the slot to a
// lower-EV waiter unconditionally. On ErrShed the slot has already been
// surrendered; the caller must not Release again. Readmission is
// tenant-blind: the transaction's value was charged to its tenant's
// budget at first admission, and shedding a half-executed cross-shard
// retry over a budget it already paid would only waste the work.
func (a *Admission) Readmit(f value.Fn, numOps int) error {
	a.mu.Lock()
	a.readmits++
	var w *waiter
	if a.closed || f.At(a.now()) <= 0 {
		a.shed++
	} else {
		w = a.enqueueLocked(f, numOps, "")
	}
	a.slots++
	a.dispatchLocked()
	a.mu.Unlock()
	if w == nil {
		return ErrShed
	}
	return <-w.grant
}

// Release returns a slot and reports the observed service time, refining
// the per-op estimate. It then dispatches waiters: sheds everything past
// its zero-crossing and grants slots in decreasing expected value.
func (a *Admission) Release(elapsed time.Duration, numOps int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if numOps > 0 && elapsed > 0 {
		const alpha = 0.05
		perOp := elapsed.Seconds() / float64(numOps)
		a.opTime = (1-alpha)*a.opTime + alpha*perOp
	}
	a.slots++
	a.dispatchLocked()
}

// dispatchLocked grants free slots to the highest-expected-value waiters,
// shedding waiters whose value functions crossed zero. Each waiter is
// scored once per dispatch (not once per freed slot), so draining a deep
// queue costs O(depth log depth) under the lock. Caller holds a.mu.
func (a *Admission) dispatchLocked() {
	if a.slots == 0 || len(a.waiters) == 0 {
		return
	}
	now := a.now()
	kept := a.waiters[:0]
	for _, w := range a.waiters {
		if w.f.At(now) <= 0 {
			a.shed++
			w.grant <- ErrShed
			continue
		}
		// Over-budget tenants are shed first, at the zero-crossing
		// sweep: their waiters leave the queue before anything is
		// granted, so a hog's backlog cannot crowd the sort.
		if a.overBudgetLocked(w.tenant, now) {
			a.shed++
			a.tenantShed++
			w.grant <- ErrTenantShed
			continue
		}
		w.score = a.score(w, now)
		kept = append(kept, w)
	}
	a.waiters = kept
	sort.SliceStable(a.waiters, func(i, j int) bool {
		return a.waiters[i].score > a.waiters[j].score
	})
	for a.slots > 0 && len(a.waiters) > 0 {
		w := a.waiters[0]
		a.waiters = a.waiters[1:]
		a.slots--
		a.admitted++
		a.chargeLocked(w.tenant, now, w.f.At(now))
		w.grant <- nil
	}
}

// Stats returns a snapshot of the counters.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		Admitted:   a.admitted,
		Shed:       a.shed,
		TenantShed: a.tenantShed,
		Readmits:   a.readmits,
		Depth:      len(a.waiters),
		InFlight:   a.cfg.MaxConcurrent - a.slots,
		Tenants:    len(a.tenants),
		OpTime:     a.opTime,
	}
}
