// End-to-end durability and snapshot-bootstrap tests: crash recovery
// through a real server (data directory reopened by a second instance),
// the CKPT verb and its STATS counters, and the SNAP joiner path —
// including the equivalence oracle of satellite 4: a replica bootstrapped
// via SNAP converges to exactly the state of one that replayed the log
// from index 1.
package server

import (
	"fmt"
	"net"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/durable"
	obspkg "repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/server/client"
)

// startDurableServer starts a server with a data directory. Unlike
// startServer it does not register cleanup: crash-recovery tests close
// (or abandon) servers mid-test themselves.
func startDurableServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(lis)
	return s, lis.Addr().String()
}

// driveMixedLoad writes single-shard and cross-shard transactions and
// returns the expected key set.
func driveMixedLoad(t *testing.T, addr string, rounds int) []string {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	keys := make([]string, 24)
	for i := range keys {
		keys[i] = fmt.Sprintf("dk%d", i)
	}
	for round := 0; round < rounds; round++ {
		for i, k := range keys {
			if _, err := c.Add(k, int64(i+round)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i+1 < len(keys); i += 2 {
			if _, err := c.Update([]client.Op{
				{Key: keys[i], Delta: -3, Write: true},
				{Key: keys[i+1], Delta: 3, Write: true},
			}, client.TxOpts{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return keys
}

// snapshotKeys reads every key through a fresh client.
func snapshotKeys(t *testing.T, addr string, keys []string) map[string]int64 {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out := make(map[string]int64, len(keys))
	for _, k := range keys {
		n, _, err := c.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		out[k] = n
	}
	return out
}

// TestServerCrashRecovery: a primary with a data directory is closed and
// a second instance reopened over the same directory recovers every
// acknowledged commit, reports recovered_index, and keeps serving (and
// logging) new commits above the recovered history.
func TestServerCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Shards:  4,
		Repl:    ReplOptions{Primary: true},
		Durable: durable.Options{Dir: dir},
	}
	s1, addr1 := startDurableServer(t, cfg)
	keys := driveMixedLoad(t, addr1, 10)
	want := snapshotKeys(t, addr1, keys)
	heads := s1.Feed().Heads()
	var total uint64
	for _, h := range heads {
		total += h
	}
	s1.Close()

	s2, addr2 := startDurableServer(t, cfg)
	defer s2.Close()
	if got := snapshotKeys(t, addr2, keys); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("recovered state %v, want %v", got, want)
	}
	if rec := s2.Durable().RecoveredIndex(); rec != total {
		t.Fatalf("recovered_index = %d, want %d", rec, total)
	}
	for i, h := range s2.Feed().Heads() {
		if h != heads[i] {
			t.Fatalf("shard %d log head after restart = %d, want %d", i, h, heads[i])
		}
	}
	// STATS reports the durability counters, including recovered_index.
	rc := dialRaw(t, addr2)
	rc.send("STATS")
	st := rc.recv()
	if !strings.Contains(st, fmt.Sprintf("recovered_index=%d", total)) {
		t.Fatalf("STATS %q lacks recovered_index=%d", st, total)
	}
	if !strings.Contains(st, "wal_appends=") || !strings.Contains(st, "ckpt_count=") {
		t.Fatalf("STATS %q lacks durability counters", st)
	}
	// New commits append above the recovered history.
	c, err := client.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Add(keys[0], 1); err != nil {
		t.Fatal(err)
	}
}

// TestCKPTVerbAndRecoveryFromCheckpoint: the CKPT verb captures every
// dirty shard; a restart recovers from checkpoint + WAL suffix; the
// in-memory log is trimmed below the checkpoint (no subscribers), so a
// plain replay-from-1 joiner is refused while a SNAP joiner succeeds.
func TestCKPTVerbAndRecoveryFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Shards:  2,
		Repl:    ReplOptions{Primary: true},
		Durable: durable.Options{Dir: dir},
	}
	s1, addr1 := startDurableServer(t, cfg)
	keys := driveMixedLoad(t, addr1, 6)

	rc := dialRaw(t, addr1)
	rc.send("CKPT")
	if got := rc.recv(); got != "OK 2" {
		t.Fatalf("CKPT = %q, want OK 2 (both shards dirty)", got)
	}
	rc.send("STATS")
	if st := rc.recv(); !strings.Contains(st, "ckpt_count=2") {
		t.Fatalf("STATS %q lacks ckpt_count=2", st)
	}
	// With no subscribers, the checkpoint floor trims the whole log.
	for i := 0; i < 2; i++ {
		if base, head := s1.Feed().Log(i).Base(), s1.Feed().Log(i).Head(); base != head {
			t.Fatalf("shard %d log base %d != head %d after CKPT with no subscribers", i, base, head)
		}
	}
	rc.send("STATS")
	if st := rc.recv(); !strings.Contains(st, "log_trimmed=") || strings.Contains(st, "log_trimmed=0") {
		t.Fatalf("STATS %q lacks nonzero log_trimmed", st)
	}

	// A replay-from-1 subscriber is refused with a SNAP pointer...
	sub := dialRaw(t, addr1)
	sub.send("REPL 0 1")
	if got := sub.recv(); !strings.HasPrefix(got, "ERR log trimmed") || !strings.Contains(got, "SNAP") {
		t.Fatalf("REPL 0 1 on trimmed log = %q, want ERR log trimmed ... SNAP", got)
	}
	// ...and a SNAP bootstrap succeeds despite the trimmed history.
	want := snapshotKeys(t, addr1, keys)
	repCfg := Config{Shards: 2}
	rep, repAddr := startServer(t, repCfg)
	r, err := repl.StartReplica(repl.ReplicaConfig{
		Primary:  addr1,
		Store:    rep.Store(),
		Snapshot: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := snapshotKeys(t, repAddr, keys); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("SNAP-bootstrapped replica state %v, want %v", got, want)
	}
	// Post-checkpoint commits land in the WAL and survive a restart.
	more := driveMixedLoad(t, addr1, 2)
	want = snapshotKeys(t, addr1, more)
	s1.Close()

	s2, addr2 := startDurableServer(t, cfg)
	defer s2.Close()
	if got := snapshotKeys(t, addr2, more); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("post-checkpoint recovery state %v, want %v", got, want)
	}
}

// TestSnapBootstrapEquivalence is satellite 4's oracle: one replica
// replays the primary's log from index 1, another joins later via SNAP;
// both must converge to identical stores, and the SNAP joiner must never
// have requested records below its snapshot index.
func TestSnapBootstrapEquivalence(t *testing.T) {
	pri, priAddr := startServer(t, Config{Shards: 4, Repl: ReplOptions{Primary: true}})
	keys := driveMixedLoad(t, priAddr, 8)

	// Replica A: full replay from index 1 (the PR 3 path).
	repA, addrA := startServer(t, Config{Shards: 4})
	rA, err := repl.StartReplica(repl.ReplicaConfig{Primary: priAddr, Store: repA.Store()})
	if err != nil {
		t.Fatal(err)
	}
	defer rA.Close()

	// More load lands after A subscribed, before B joins.
	driveMixedLoad(t, priAddr, 4)

	// Replica B: SNAP bootstrap, subscribed only above the snapshot.
	repB, addrB := startServer(t, Config{Shards: 4})
	rB, err := repl.StartReplica(repl.ReplicaConfig{Primary: priAddr, Store: repB.Store(), Snapshot: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rB.Close()

	// B's applied positions start at its snapshot indices — strictly
	// positive on every shard the load touched — and never regress.
	snapIdx := rB.Applied()

	// Final writes both replicas must stream.
	driveMixedLoad(t, priAddr, 2)
	waitCaughtUp(t, pri, rA)
	waitCaughtUp(t, pri, rB)

	stateA := snapshotKeys(t, addrA, keys)
	stateB := snapshotKeys(t, addrB, keys)
	statePri := snapshotKeys(t, priAddr, keys)
	if fmt.Sprint(stateA) != fmt.Sprint(statePri) {
		t.Fatalf("replay replica %v != primary %v", stateA, statePri)
	}
	if fmt.Sprint(stateB) != fmt.Sprint(statePri) {
		t.Fatalf("SNAP replica %v != primary %v", stateB, statePri)
	}

	// The log-replay oracle: independently replaying the primary's full
	// log reproduces what both replicas serve (indices dense from 1).
	replay := make(map[string]string)
	for i := 0; i < pri.Feed().Shards(); i++ {
		recs, _, err := pri.Feed().Log(i).From(1, 0)
		if err != nil {
			t.Fatal(err)
		}
		next := uint64(1)
		for _, rec := range recs {
			if rec.Index != next {
				t.Fatalf("shard %d log not dense at %d", i, rec.Index)
			}
			next++
			for k, v := range rec.Writes {
				replay[k] = string(v)
			}
		}
	}
	for _, k := range keys {
		if replay[k] != strconv.FormatInt(stateB[k], 10) {
			t.Fatalf("oracle replay of %s = %s, SNAP replica serves %d", k, replay[k], stateB[k])
		}
	}

	// Acceptance: the SNAP joiner's first requested record per shard was
	// snapIdx+1 — its applied index can never have been observed below
	// the snapshot, and the snapshot covered the pre-join load.
	var totalSnap uint64
	for i, idx := range snapIdx {
		totalSnap += idx
		if final := rB.Applied()[i]; final < idx {
			t.Fatalf("shard %d applied regressed below snapshot: %d < %d", i, final, idx)
		}
	}
	if totalSnap == 0 {
		t.Fatal("SNAP bootstrap installed nothing; equivalence test degenerated to full replay")
	}
}

// TestSnapVerbErrors pins the SNAP/CKPT error surface.
func TestSnapVerbErrors(t *testing.T) {
	_, priAddr := startServer(t, Config{Shards: 2, Repl: ReplOptions{Primary: true}})
	rc := dialRaw(t, priAddr)
	for in, wantPrefix := range map[string]string{
		"SNAP":         "ERR usage: SNAP",
		"SNAP x":       "ERR bad shard",
		"SNAP 9":       "ERR bad shard",
		"CKPT":         "ERR durability disabled",
		"REQ 1 SNAP 0": "RES 1 ERR SNAP requires bare framing",
	} {
		rc.send(in)
		if got := rc.recv(); !strings.HasPrefix(got, wantPrefix) {
			t.Errorf("%q -> %q, want prefix %q", in, got, wantPrefix)
		}
	}
	// SNAP of an empty shard: a bare header (shard, head index, commit
	// epoch, pair count), zero pairs, no SNAPKV lines (the next reply
	// arrives immediately after).
	rc.send("SNAP 0")
	if got := rc.recv(); got != "OK 0 0 0 0" {
		t.Errorf("SNAP of empty shard = %q, want OK 0 0 0 0", got)
	}
	rc.send("PING")
	if got := rc.recv(); got != "OK pong" {
		t.Errorf("connection unusable after empty SNAP: %q", got)
	}

	_, plainAddr := startServer(t, Config{Shards: 2})
	pc := dialRaw(t, plainAddr)
	pc.send("SNAP 0")
	if got := pc.recv(); got != "ERR not a replication primary" {
		t.Errorf("SNAP on non-primary -> %q", got)
	}
}

// TestRetentionTrimsWithoutDurability is satellite 1 end-to-end: a pure
// in-memory primary with a retention floor trims below the min acked
// index as its replica acks, without any data directory.
func TestRetentionTrimsWithoutDurability(t *testing.T) {
	pri, priAddr := startServer(t, Config{Shards: 1, Repl: ReplOptions{Primary: true, Retain: 4}})
	rep, _ := startServer(t, Config{Shards: 1})
	r, err := repl.StartReplica(repl.ReplicaConfig{Primary: priAddr, Store: rep.Store()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	c, err := client.Dial(priAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 64
	for i := 0; i < n; i++ {
		if _, err := c.Add("rk", 1); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, pri, r)
	log := pri.Feed().Log(0)
	deadline := time.Now().Add(10 * time.Second)
	for log.Base() < n-4 {
		if time.Now().After(deadline) {
			t.Fatalf("retention trim never caught up: base=%d head=%d trimmed=%d", log.Base(), log.Head(), log.Trimmed())
		}
		// Acks race the check; one more commit re-runs auto-trim.
		if _, err := c.Add("rk", 0); err != nil {
			t.Fatal(err)
		}
		waitCaughtUp(t, pri, r)
		time.Sleep(time.Millisecond)
	}
	if log.Trimmed() == 0 {
		t.Fatal("log_trimmed stayed 0 despite retention and acks")
	}
}

// newTestReplicaMetrics builds a ReplicaMetrics set on a throwaway
// registry so resume tests can assert which bootstrap path ran.
func newTestReplicaMetrics() *repl.ReplicaMetrics {
	reg := obspkg.NewRegistry()
	return &repl.ReplicaMetrics{
		ApplySeconds: reg.NsHistogram("test_repl_apply_seconds", "test"),
		ApplyBatch:   reg.Histogram("test_repl_apply_batch", "test", 0, 12, 1),
		Resumes:      reg.Counter("test_repl_resumes", "test"),
		Snapshots:    reg.Counter("test_repl_snapshots", "test"),
	}
}

// TestDurableReplicaResumesWithoutReSnap is the regression test for the
// restart bug: a durable replica recorded its own commit-log indices, but
// a snapshot installs as ONE local record, so local and primary numbering
// diverge and every restart re-SNAPped every shard. With ResumePath the
// replica persists the primary's indices and a restart must resume the
// stream — zero snapshot fetches — and still converge.
func TestDurableReplicaResumesWithoutReSnap(t *testing.T) {
	priDir, repDir := t.TempDir(), t.TempDir()
	priCfg := Config{
		Shards:  4,
		Repl:    ReplOptions{Primary: true},
		Durable: durable.Options{Dir: priDir},
	}
	pri, priAddr := startDurableServer(t, priCfg)
	defer pri.Close()
	keys := driveMixedLoad(t, priAddr, 6)

	repCfg := Config{Shards: 4, Durable: durable.Options{Dir: repDir}}
	resume := filepath.Join(repDir, "resume")
	rep1, _ := startDurableServer(t, repCfg)
	m1 := newTestReplicaMetrics()
	r1, err := repl.StartReplica(repl.ReplicaConfig{
		Primary:    priAddr,
		Store:      rep1.Store(),
		Snapshot:   true,
		ResumePath: resume,
		Metrics:    m1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// First start over an empty directory: snapshot bootstrap, no resume.
	if m1.Snapshots.Value() == 0 || m1.Resumes.Value() != 0 {
		t.Fatalf("fresh start: snapshots=%d resumes=%d, want snapshots>0 resumes=0",
			m1.Snapshots.Value(), m1.Resumes.Value())
	}
	waitCaughtUp(t, pri, r1)
	r1.Close()
	rep1.Close()

	// The primary moves on while the replica is down.
	driveMixedLoad(t, priAddr, 3)

	// Restart over the same directory: the stream must resume from the
	// persisted primary offsets, with no snapshot fetch at all.
	rep2, repAddr2 := startDurableServer(t, repCfg)
	defer rep2.Close()
	m2 := newTestReplicaMetrics()
	r2, err := repl.StartReplica(repl.ReplicaConfig{
		Primary:    priAddr,
		Store:      rep2.Store(),
		Snapshot:   true,
		ResumePath: resume,
		Metrics:    m2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if m2.Resumes.Value() == 0 {
		t.Fatal("restart did not resume from persisted offsets")
	}
	if n := m2.Snapshots.Value(); n != 0 {
		t.Fatalf("restart fetched %d shard snapshots, want 0 (the re-SNAP bug)", n)
	}
	waitCaughtUp(t, pri, r2)
	want := snapshotKeys(t, priAddr, keys)
	if got := snapshotKeys(t, repAddr2, keys); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("resumed replica state %v, want %v", got, want)
	}
}

// TestDurableReplicaResumeFallsBackToSnapshot: when the primary has
// trimmed its log past the persisted resume point, the resumed
// subscription is refused and StartReplica must fall back to a fresh
// snapshot bootstrap instead of failing.
func TestDurableReplicaResumeFallsBackToSnapshot(t *testing.T) {
	priDir, repDir := t.TempDir(), t.TempDir()
	pri, priAddr := startDurableServer(t, Config{
		Shards:  2,
		Repl:    ReplOptions{Primary: true},
		Durable: durable.Options{Dir: priDir},
	})
	defer pri.Close()
	keys := driveMixedLoad(t, priAddr, 4)

	repCfg := Config{Shards: 2, Durable: durable.Options{Dir: repDir}}
	resume := filepath.Join(repDir, "resume")
	rep1, _ := startDurableServer(t, repCfg)
	r1, err := repl.StartReplica(repl.ReplicaConfig{
		Primary:    priAddr,
		Store:      rep1.Store(),
		Snapshot:   true,
		ResumePath: resume,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, pri, r1)
	r1.Close()
	rep1.Close()

	// With the replica gone, more load plus a checkpoint trims the whole
	// log: the persisted resume point now asks for discarded records.
	driveMixedLoad(t, priAddr, 2)
	rc := dialRaw(t, priAddr)
	rc.send("CKPT")
	if got := rc.recv(); !strings.HasPrefix(got, "OK") {
		t.Fatalf("CKPT = %q", got)
	}

	rep2, repAddr2 := startDurableServer(t, repCfg)
	defer rep2.Close()
	m := newTestReplicaMetrics()
	r2, err := repl.StartReplica(repl.ReplicaConfig{
		Primary:    priAddr,
		Store:      rep2.Store(),
		Snapshot:   true,
		ResumePath: resume,
		Metrics:    m,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if m.Snapshots.Value() == 0 {
		t.Fatal("trimmed-log restart did not fall back to snapshot bootstrap")
	}
	waitCaughtUp(t, pri, r2)
	want := snapshotKeys(t, priAddr, keys)
	if got := snapshotKeys(t, repAddr2, keys); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("fallback replica state %v, want %v", got, want)
	}
}
