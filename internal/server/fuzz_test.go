package server

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzDispatch throws arbitrary request lines at the wire parser and the
// verb handlers behind it (dispatch/handleUPD argument parsing included).
// The server must never panic and must answer every line with exactly one
// well-formed response: OK..., NIL, SHED, or ERR... — nothing else, no
// embedded newlines. Seed corpus lives in testdata/fuzz/FuzzDispatch.
func FuzzDispatch(f *testing.F) {
	for _, seed := range []string{
		"PING",
		"GET a",
		"PUT a 5",
		"ADD a -3",
		"UPD v=2 dl=50 grad=0.1 r:a w:b:7",
		"UPD w:a:1 w:b:-1",
		"SUM a b c",
		"STATS",
		"REQ 1 PING",
		"UPD v=NaN w:a:1",
		"UPD dl=1e309 w:a:1",
		"UPD w::1 r: q:x:1",
		"PUT a 99999999999999999999",
		"GET \x00\xff",
		"UPD v= dl= grad= w:a:",
		"TXN BEGIN v=2 dl=50 grad=0.1",
		"TXN R 1 a",
		"TXN W 1 a 5",
		"TXN W 1 a =7",
		"TXN COMMIT 1",
		"TXN ABORT 2",
		"TXN BEGIN hello",
		"TXN W abc a 1",
		"TXN R 99999999999999999999 a",
	} {
		f.Add(seed)
	}
	s := New(Config{Shards: 2, Admission: AdmissionConfig{MaxConcurrent: 4, MaxQueue: 8}})
	f.Cleanup(s.Close)
	f.Fuzz(func(t *testing.T, line string) {
		// The transport hands dispatch whitespace-split tokens of one
		// line; embedded newlines would be separate lines on the wire.
		if strings.ContainsAny(line, "\n\r") {
			t.Skip()
		}
		// Sessions a previous input left open must not accumulate: each
		// holds an admission slot, and a fuzzer minting them faster than
		// the reaper runs would wedge BEGIN in the admission queue.
		defer func() {
			for _, ss := range s.sessions.snapshot() {
				s.txnAbort(ss)
			}
		}()
		resp := s.dispatchLine(line)
		if strings.ContainsAny(resp, "\n\r") {
			t.Fatalf("response embeds a line break: %q -> %q", line, resp)
		}
		switch {
		case strings.HasPrefix(resp, "OK"), resp == "NIL", resp == "SHED",
			strings.HasPrefix(resp, "ERR"):
		default:
			t.Fatalf("malformed response kind: %q -> %q", line, resp)
		}
		if utf8.ValidString(line) && !utf8.ValidString(resp) {
			t.Fatalf("valid input produced invalid UTF-8 response: %q -> %q", line, resp)
		}
	})
}
