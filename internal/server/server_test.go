package server

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/server/client"
)

// startServer spins up a server on a loopback port and returns it with a
// dialable address.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s := New(cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(lis)
	t.Cleanup(s.Close)
	return s, lis.Addr().String()
}

func TestProtocol(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 4})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get("missing"); err != nil || ok {
		t.Fatalf("Get(missing) = ok=%v err=%v", ok, err)
	}
	if err := c.Put("a", 41); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Add("a", 1); err != nil || n != 42 {
		t.Fatalf("Add = %d, %v", n, err)
	}
	if n, ok, err := c.Get("a"); err != nil || !ok || n != 42 {
		t.Fatalf("Get(a) = %d, %v, %v", n, ok, err)
	}

	// A multi-key transaction spanning shards.
	res, err := c.Update([]client.Op{
		{Key: "x", Delta: 10, Write: true},
		{Key: "a"}, // read dependency
		{Key: "y", Delta: -10, Write: true},
	}, client.TxOpts{Value: 5, Deadline: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0] != 10 || res[1] != -10 {
		t.Fatalf("Update results = %v", res)
	}
	if sum, err := c.Sum("x", "y"); err != nil || sum != 0 {
		t.Fatalf("Sum = %d, %v", sum, err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["shards"] != "4" {
		t.Errorf("stats shards = %q", st["shards"])
	}
	if st["commits"] == "0" || st["commits"] == "" {
		t.Errorf("stats commits = %q", st["commits"])
	}
}

func TestProtocolErrors(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 2})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 256)
	send := func(line string) string {
		if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
			t.Fatal(err)
		}
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		return string(buf[:n])
	}
	for _, tc := range []struct{ in, wantPrefix string }{
		{"BOGUS", "ERR"},
		{"GET", "ERR"},
		{"PUT a notanumber", "ERR"},
		{"UPD", "ERR"},
		{"UPD w:a", "ERR"},
		{"UPD q:a:1", "ERR"},
		{"SUM", "ERR"},
		{"PING", "OK"},
	} {
		if got := send(tc.in); len(got) < 2 || got[:2] != tc.wantPrefix[:2] {
			t.Errorf("%q -> %q, want %s...", tc.in, got, tc.wantPrefix)
		}
	}
}

func TestShedOverWire(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 2})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A microscopic deadline with an absurd gradient puts the value
	// function's zero-crossing ~1µs after arrival; network round-trip
	// latency alone exceeds that, so admission sees an expired request.
	_, err = c.Update([]client.Op{{Key: "k", Delta: 1, Write: true}},
		client.TxOpts{Value: 1e-9, Deadline: time.Microsecond, Gradient: 1e12})
	if err == nil {
		t.Skip("request beat the zero-crossing; timing too fast to shed")
	}
	if err != client.ErrShed {
		t.Fatalf("err = %v, want ErrShed", err)
	}
}

// TestE2EConservation is the headline end-to-end test: 64 concurrent TCP
// clients transfer value between 128 accounts hash-spread over 16 shards
// while a checker continuously snapshots the total with SUM. Every
// intermediate snapshot and the final total must equal the seeded amount —
// a lost update, torn cross-shard commit, or non-serializable read would
// break conservation.
func TestE2EConservation(t *testing.T) {
	srv, addr := startServer(t, Config{
		Shards: 16,
		Mode:   engine.SCC2S,
		Admission: AdmissionConfig{
			MaxConcurrent: 32,
			MaxQueue:      4096,
		},
	})

	const (
		clients   = 64
		accounts  = 128
		transfers = 40
		initial   = 1000
	)
	keys := make([]string, accounts)
	for i := range keys {
		keys[i] = fmt.Sprintf("acct%d", i)
	}

	seed, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if err := seed.Put(k, initial); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	checkerDone := make(chan error, 1)
	go func() {
		c, err := client.Dial(addr)
		if err != nil {
			checkerDone <- err
			return
		}
		defer c.Close()
		checks := 0
		for {
			select {
			case <-stop:
				checkerDone <- nil
				return
			default:
			}
			got, err := c.Sum(keys...)
			if err != nil {
				checkerDone <- err
				return
			}
			if got != accounts*initial {
				checkerDone <- fmt.Errorf("mid-flight conservation violated after %d checks: sum = %d, want %d",
					checks, got, accounts*initial)
				return
			}
			checks++
		}
	}()

	var wg sync.WaitGroup
	var committed atomic.Int64
	errs := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < transfers; i++ {
				from := keys[(w*7+i*13)%accounts]
				to := keys[(w*11+i*17+1)%accounts]
				if from == to {
					to = keys[(w*11+i*17+2)%accounts]
				}
				amt := int64(1 + (w+i)%5)
				_, err := c.Update([]client.Op{
					{Key: from, Delta: -amt, Write: true},
					{Key: to, Delta: amt, Write: true},
				}, client.TxOpts{Value: float64(amt)})
				if err != nil {
					errs <- fmt.Errorf("client %d transfer %d: %w", w, i, err)
					return
				}
				committed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if err := <-checkerDone; err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	if got := committed.Load(); got != clients*transfers {
		t.Fatalf("committed %d of %d transfers", got, clients*transfers)
	}
	total, err := seed.Sum(keys...)
	if err != nil {
		t.Fatal(err)
	}
	if total != accounts*initial {
		t.Fatalf("final sum = %d, want %d", total, accounts*initial)
	}
	st := srv.Store().Stats()
	if st.CrossCommits == 0 {
		t.Error("no cross-shard commits: transfers never spanned shards")
	}
	if st.FastPath == 0 {
		t.Error("no fast-path commits: seeding should be single-shard")
	}
	t.Logf("stats: %+v", st)
}

// TestE2EModeComparison runs the same high-contention fixed-size workload
// against an SCC-2S server and an OCC-BC server and asserts SCC-2S commits
// at least as many transactions. Both runs are closed-loop with a fixed op
// budget and no deadlines, so every transaction eventually commits unless
// its retry budget exhausts — which under high contention hits the
// restart-only OCC-BC first.
func TestE2EModeComparison(t *testing.T) {
	run := func(mode engine.Mode) int64 {
		srv, addr := startServer(t, Config{
			Shards:    8,
			Mode:      mode,
			Admission: AdmissionConfig{MaxConcurrent: 64, MaxQueue: 4096},
		})
		const (
			clients = 64
			ops     = 20
			hotKeys = 4
		)
		var wg sync.WaitGroup
		var committed atomic.Int64
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c, err := client.Dial(addr)
				if err != nil {
					t.Error(err)
					return
				}
				defer c.Close()
				for i := 0; i < ops; i++ {
					key := fmt.Sprintf("hot%d", (w+i)%hotKeys)
					if _, err := c.Add(key, 1); err == nil {
						committed.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
		got := committed.Load()
		t.Logf("%v: %d committed, store stats %+v", mode, got, srv.Store().Stats())
		return got
	}
	scc := run(engine.SCC2S)
	occ := run(engine.OCCBC)
	if scc < occ {
		t.Errorf("SCC-2S committed %d < OCC-BC %d on the high-contention mix", scc, occ)
	}
}
