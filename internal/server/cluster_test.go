// Cluster fencing and failover tests: the deterministic deposed-epoch
// proofs (entry fence and commit-sync fence), the TOPO/PLACE verb
// surfaces, and an in-process replica-to-primary promotion over a live
// replication stream.
package server

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/repl"
	"repro/internal/server/client"
	"repro/internal/shard"
)

// clusteredPrimary starts an in-memory clustered primary claiming
// fencing epoch 1.
func clusteredPrimary(t *testing.T, shards int, peers []string) (*Server, string, *cluster.State) {
	t.Helper()
	cs := cluster.NewState("127.0.0.1:0", peers)
	if err := cs.BecomePrimary(1); err != nil {
		t.Fatal(err)
	}
	srv, addr := startServer(t, Config{Shards: shards, Repl: ReplOptions{Primary: true}, Cluster: cs})
	return srv, addr, cs
}

// TestDeposedEpochWriteNeverAcked is the fencing invariant's
// deterministic proof, layer by layer:
//
//  1. entry fence — after deposition every new write draws the
//     not-primary redirect and installs nothing;
//  2. commit-sync fence — a commit already past the entry fence when
//     deposition lands (the zombie-primary window) installs through the
//     engine but its verdict is converted to an error at the
//     commit-sync boundary, so it is never acknowledged.
//
// Together: a write under a deposed fencing epoch can never install
// silently or be acked durable.
func TestDeposedEpochWriteNeverAcked(t *testing.T) {
	srv, addr, cs := clusteredPrimary(t, 2, nil)

	// While primary, writes commit normally.
	if got := srv.dispatchLine("ADD fencekey 7"); got != "OK 7" {
		t.Fatalf("write on live primary = %q", got)
	}

	// Depose: a peer claims epoch 2.
	if !cs.Observe(2, "10.0.0.9:7070") {
		t.Fatal("Observe(2) must depose the primary")
	}

	// Layer 1: the entry fence. The write is refused with a redirect
	// before admission; nothing installs.
	got := srv.dispatchLine("ADD fencekey 1")
	if got != "ERR not-primary 10.0.0.9:7070" {
		t.Fatalf("write on deposed node = %q, want ERR not-primary 10.0.0.9:7070", got)
	}
	if got := srv.dispatchLine("GET fencekey"); got != "OK 7" {
		t.Fatalf("fenced write mutated state: GET = %q, want OK 7", got)
	}
	// TXN writes hit the same fence.
	begin := srv.dispatchLine("TXN BEGIN")
	id := strings.TrimPrefix(begin, "OK ")
	if got := srv.dispatchLine("TXN W " + id + " fencekey 1"); got != "ERR not-primary 10.0.0.9:7070" {
		t.Fatalf("TXN W on deposed node = %q", got)
	}

	// Layer 2: the commit-sync fence. Drive a commit directly through
	// the store — the deterministic stand-in for a request that passed
	// the entry fence before deposition landed. The install goes
	// through, but the fenced sink fails Sync, so the verdict is a
	// *engine.SyncError: installed, never acknowledged — exactly the
	// failed-WAL-sync contract.
	_, err := srv.Store().UpdateTracedResult(1.0, []string{"fencekey"}, func(int) error { return nil }, nil,
		func(tx shard.Tx) error { return tx.Set("fencekey", []byte("99")) })
	if err == nil {
		t.Fatal("zombie commit was acknowledged")
	}
	var se *engine.SyncError
	if !errors.As(err, &se) {
		t.Fatalf("zombie commit error = %v (%T), want *engine.SyncError", err, err)
	}
	if !strings.Contains(err.Error(), "fenced") {
		t.Fatalf("zombie commit error %q does not name the fence", err)
	}

	// The fenced node's replication surface is frozen too.
	for _, verb := range []string{"HEAD", "SNAP 0", "REPL 0 1", "ACK 0 1"} {
		rc := dialRaw(t, addr)
		rc.send(verb)
		if got := rc.recv(); got != "ERR not-primary 10.0.0.9:7070" {
			t.Errorf("%s on fenced node = %q, want ERR not-primary", verb, got)
		}
	}
}

// TestTopoVerb pins the TOPO surface: ERR off-cluster, a parseable
// k=v reply on members, and role/epoch tracking across deposition.
func TestTopoVerb(t *testing.T) {
	plain, _ := startServer(t, Config{Shards: 2})
	if got := plain.dispatchLine("TOPO"); got != "ERR not clustered" {
		t.Fatalf("TOPO off-cluster = %q", got)
	}

	srv, addr, cs := clusteredPrimary(t, 2, []string{"10.0.0.9:7070"})
	srv.dispatchLine("ADD topokey 1")
	rep, err := cluster.ParseTopoReply(srv.dispatchLine("TOPO"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Role != "primary" || rep.Epoch != 1 || rep.Self != "127.0.0.1:0" || rep.Primary != "127.0.0.1:0" {
		t.Fatalf("TOPO on primary = %+v", rep)
	}
	if rep.Applied == 0 {
		t.Fatal("primary TOPO must report its feed position as applied")
	}

	cs.Observe(2, "10.0.0.9:7070")
	rep, err = cluster.ParseTopoReply(srv.dispatchLine("TOPO"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Role != "fenced" || rep.Epoch != 2 || rep.Primary != "10.0.0.9:7070" {
		t.Fatalf("TOPO after deposition = %+v", rep)
	}

	// TOPO is single-line, so REQ framing is allowed.
	rc := dialRaw(t, addr)
	rc.send("REQ 7 TOPO")
	if got := rc.recv(); !strings.HasPrefix(got, "RES 7 OK role=fenced") {
		t.Fatalf("framed TOPO = %q", got)
	}
}

// TestPlaceVerb pins the PLACE surface: ERR off-cluster, ERR without
// durability (no pending-value signal), and a value-ranked,
// epoch-fenced plan on a durable clustered primary.
func TestPlaceVerb(t *testing.T) {
	plain, _ := startServer(t, Config{Shards: 2})
	if got := plain.dispatchLine("PLACE"); got != "ERR not clustered" {
		t.Fatalf("PLACE off-cluster = %q", got)
	}

	mem, _, _ := clusteredPrimary(t, 2, []string{"10.0.0.9:7070"})
	if got := mem.dispatchLine("PLACE"); got != "ERR durability disabled" {
		t.Fatalf("PLACE without durability = %q", got)
	}

	cs := cluster.NewState("127.0.0.1:0", []string{"10.0.0.9:7070"})
	if err := cs.BecomePrimary(1); err != nil {
		t.Fatal(err)
	}
	srv, _ := startServer(t, Config{
		Shards:  2,
		Repl:    ReplOptions{Primary: true},
		Cluster: cs,
		Durable: durable.Options{Dir: t.TempDir()},
	})
	// Accrue pending value on the local shards, then plan: with a
	// zero-loaded peer every loaded shard is a candidate move.
	for i := 0; i < 16; i++ {
		if got := srv.dispatchLine(fmt.Sprintf("ADD pk%d 1", i)); !strings.HasPrefix(got, "OK") {
			t.Fatalf("seed write = %q", got)
		}
	}
	got := srv.dispatchLine("PLACE")
	if !strings.HasPrefix(got, "OK ") {
		t.Fatalf("PLACE on durable clustered primary = %q", got)
	}
	fields := strings.Fields(got)
	if fields[1] == "0" {
		t.Fatalf("PLACE planned no moves against an empty peer: %q", got)
	}
	for _, mv := range fields[2:] {
		if !strings.Contains(mv, "|127.0.0.1:0|10.0.0.9:7070|") {
			t.Fatalf("move %q does not go self -> peer", mv)
		}
	}

	// A deposed node cannot plan.
	cs.Observe(2, "10.0.0.9:7070")
	if got := srv.dispatchLine("PLACE"); got != "ERR not-primary 10.0.0.9:7070" {
		t.Fatalf("PLACE on deposed node = %q", got)
	}
}

// TestPromoteTakesOver wires a real primary/replica pair, kills the
// primary, promotes the replica in-process (the server half the cluster
// Node drives), and checks the full handoff: replicated state retained,
// gate lifted, writes accepted under the new fencing epoch, feed
// rebased at the replica's applied indices, and the TOPO/HEAD surfaces
// flipped to the primary shape.
func TestPromoteTakesOver(t *testing.T) {
	gate := repl.NewLagGate(4, time.Hour, time.Millisecond)
	pri, priAddr := startServer(t, Config{Shards: 4, Repl: ReplOptions{Primary: true}})
	cs := cluster.NewState("127.0.0.1:0", nil)
	cs.SetReplica(priAddr)
	rep, repAddr := startServer(t, Config{Shards: 4, Repl: ReplOptions{Gate: gate}, Cluster: cs})
	r, err := repl.StartReplica(repl.ReplicaConfig{Primary: priAddr, Store: rep.Store(), Gate: gate})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	c, err := client.Dial(priAddr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := c.Add(fmt.Sprintf("ck%d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// A cross-shard transfer so the epoch watermark is nonzero.
	if _, err := c.Update([]client.Op{
		{Key: "ck0", Delta: -1, Write: true},
		{Key: "ck1", Delta: 1, Write: true},
	}, client.TxOpts{}); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, pri, r)
	c.Close()
	priHeads := pri.Feed().Heads()
	pri.Close()

	// Writes on the replica bounce with a redirect before promotion.
	if got := rep.dispatchLine("ADD ck0 1"); got != "ERR not-primary "+priAddr {
		t.Fatalf("pre-promotion write = %q", got)
	}

	if err := rep.Promote(r, 2); err != nil {
		t.Fatal(err)
	}

	// Role, epoch, and primary flipped.
	topo, err := cluster.ParseTopoReply(rep.dispatchLine("TOPO"))
	if err != nil {
		t.Fatal(err)
	}
	if topo.Role != "primary" || topo.Epoch != 2 {
		t.Fatalf("post-promotion TOPO = %+v", topo)
	}

	// Replicated state retained, gate lifted, writes accepted.
	rc, err := client.Dial(repAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if n, ok, err := rc.Get("ck5"); err != nil || !ok || n != 5 {
		t.Fatalf("promoted Get(ck5) = %d, %v, %v; want 5", n, ok, err)
	}
	if n, err := rc.Add("ck5", 10); err != nil || n != 15 {
		t.Fatalf("promoted Add(ck5, 10) = %d, %v; want 15", n, err)
	}

	// The new feed resumes the old primary's numbering: heads start at
	// the replica's applied indices, not at zero.
	newHeads := rep.Feed().Heads()
	for i, h := range newHeads {
		if h < priHeads[i] {
			t.Fatalf("promoted head[%d] = %d regressed below old primary's %d", i, h, priHeads[i])
		}
	}

	// HEAD serves the primary grammar now, and a fresh replica can
	// bootstrap off the promoted node above the rebased base.
	raw := dialRaw(t, repAddr)
	raw.send("HEAD")
	if got := raw.recv(); !strings.HasPrefix(got, "OK ") || len(strings.Fields(got)) != 6 {
		t.Fatalf("HEAD on promoted node = %q, want OK <watermark> + 4 heads", got)
	}
	gate2 := repl.NewLagGate(4, time.Hour, time.Millisecond)
	rep2, _ := startServer(t, Config{Shards: 4, Repl: ReplOptions{Gate: gate2}})
	r2, err := repl.StartReplica(repl.ReplicaConfig{Primary: repAddr, Store: rep2.Store(), Gate: gate2, Snapshot: true})
	if err != nil {
		t.Fatalf("joining the promoted primary: %v", err)
	}
	defer r2.Close()
	waitCaughtUp(t, rep, r2)
	if v, ok := rep2.Store().Get("ck5"); !ok || string(v) != "15" {
		t.Fatalf("second-generation replica ck5 = %q, %v; want 15", v, ok)
	}
}

// TestSyncAcksDegradesWithoutSubscriber proves a semi-sync primary with
// no tracking replica does not stall: WaitAcked degrades to async
// immediately and the write acks.
func TestSyncAcksDegradesWithoutSubscriber(t *testing.T) {
	srv, _ := startServer(t, Config{Shards: 2, Repl: ReplOptions{Primary: true, SyncAcks: true, SyncTimeout: 30 * time.Second}})
	done := make(chan string, 1)
	go func() { done <- srv.dispatchLine("ADD sk 1") }()
	select {
	case got := <-done:
		if got != "OK 1" {
			t.Fatalf("semi-sync lone write = %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("semi-sync write stalled with no subscriber")
	}
}
