// End-to-end replication tests: a primary and a replica server wired by
// a live REPL/ACK stream over loopback TCP, plus deterministic tests of
// the replica's lag accounting that inject state instead of sleeping.
package server

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/repl"
	"repro/internal/server/client"
	"repro/internal/shard"
)

// startReplicaPair starts a primary and a read replica connected by a
// replication stream. The replica's lag budget is generous enough that
// nothing sheds unless a test manipulates the gate.
func startReplicaPair(t *testing.T, shards int) (pri *Server, priAddr string, rep *Server, repAddr string, r *repl.Replica, gate *repl.LagGate) {
	gate = repl.NewLagGate(shards, time.Hour, time.Millisecond)
	pri, priAddr, rep, repAddr, r = startReplicaPairGated(t, shards, gate, 0)
	return pri, priAddr, rep, repAddr, r, gate
}

// startReplicaPairGated is startReplicaPair with an injected gate and
// head-poll interval.
func startReplicaPairGated(t *testing.T, shards int, gate *repl.LagGate, headEvery time.Duration) (pri *Server, priAddr string, rep *Server, repAddr string, r *repl.Replica) {
	t.Helper()
	pri, priAddr = startServer(t, Config{Shards: shards, Repl: ReplOptions{Primary: true}})
	rep, repAddr = startServer(t, Config{Shards: shards, Repl: ReplOptions{Gate: gate}})
	var err error
	r, err = repl.StartReplica(repl.ReplicaConfig{
		Primary:      priAddr,
		Store:        rep.Store(),
		Gate:         gate,
		HeadInterval: headEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return pri, priAddr, rep, repAddr, r
}

// waitCaughtUp blocks until the replica has applied every record the
// primary's feed holds (the feed must be quiescent by then).
func waitCaughtUp(t *testing.T, pri *Server, r *repl.Replica) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		heads := pri.Feed().Heads()
		applied := r.Applied()
		done := true
		for i := range heads {
			if applied[i] < heads[i] {
				done = false
				break
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up: heads=%v applied=%v", heads, applied)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReplicationConverges drives a mixed (single- and cross-shard)
// write load into the primary and checks full convergence: every key
// agrees byte-for-byte, SUM agrees, an independent replay of the shipped
// log reproduces the replica's state, and ack bookkeeping is sane.
func TestReplicationConverges(t *testing.T) {
	pri, priAddr, _, repAddr, r, _ := startReplicaPair(t, 4)
	c, err := client.Dial(priAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	keys := make([]string, 32)
	for i := range keys {
		keys[i] = fmt.Sprintf("rk%d", i)
	}
	for round := 0; round < 20; round++ {
		for i, k := range keys {
			if _, err := c.Add(k, int64(i+round)); err != nil {
				t.Fatal(err)
			}
		}
		// Cross-shard transfers between neighbours keep the total fixed
		// and force the cross-shard commit path into the log.
		for i := 0; i+1 < len(keys); i += 2 {
			_, err := c.Update([]client.Op{
				{Key: keys[i], Delta: -1, Write: true},
				{Key: keys[i+1], Delta: 1, Write: true},
			}, client.TxOpts{})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	waitCaughtUp(t, pri, r)

	rc, err := client.Dial(repAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	// Key-by-key agreement, and an aggregate snapshot.
	var priSum, repSum int64
	for _, k := range keys {
		pv, pok, err := c.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		rv, rok, err := rc.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if pok != rok || pv != rv {
			t.Fatalf("key %s: primary %d(%v) replica %d(%v)", k, pv, pok, rv, rok)
		}
	}
	if priSum, err = c.Sum(keys...); err != nil {
		t.Fatal(err)
	}
	if repSum, err = rc.Sum(keys...); err != nil {
		t.Fatal(err)
	}
	if priSum != repSum {
		t.Fatalf("SUM disagrees: primary %d, replica %d", priSum, repSum)
	}

	// Consistency oracle: replay the shipped log independently and check
	// the replayed state matches what the replica serves.
	replay := make(map[string]string)
	var records uint64
	for i := 0; i < pri.Feed().Shards(); i++ {
		recs, _, _ := pri.Feed().Log(i).From(1, 0)
		records += uint64(len(recs))
		next := uint64(1)
		for _, rec := range recs {
			if rec.Index != next {
				t.Fatalf("shard %d log not dense: record %d at position %d", i, rec.Index, next)
			}
			next++
			for k, v := range rec.Writes {
				replay[k] = string(v)
			}
		}
	}
	for _, k := range keys {
		rv, _, err := rc.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if replay[k] != strconv.FormatInt(rv, 10) {
			t.Fatalf("oracle replay of %s = %s, replica serves %d", k, replay[k], rv)
		}
	}

	// Ack bookkeeping: acks never lead applies, and the replica's STATS
	// report the full applied stream with zero lag.
	applied, acked := r.Applied(), r.Acked()
	var appliedTotal uint64
	for i := range applied {
		if acked[i] > applied[i] {
			t.Fatalf("shard %d acked %d beyond applied %d", i, acked[i], applied[i])
		}
		appliedTotal += applied[i]
	}
	if appliedTotal != records {
		t.Fatalf("replica applied %d records, primary logged %d", appliedTotal, records)
	}
	st, err := rc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["repl_applied"] != strconv.FormatUint(records, 10) {
		t.Fatalf("replica repl_applied=%s, want %d", st["repl_applied"], records)
	}
	if st["repl_lag"] != "0" {
		t.Fatalf("replica repl_lag=%s, want 0", st["repl_lag"])
	}
	pst, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// One connection carries all shard subscriptions: exactly one
	// subscriber, however many shards it subscribed.
	if pst["repl_subs"] != "1" {
		t.Fatalf("primary repl_subs=%s, want 1", pst["repl_subs"])
	}
}

// TestReplicaLagAccounting holds a replica behind a lag budget
// deterministically (state injected, no timing): reads whose value
// functions would cross zero before catch-up draw SHED and increment
// repl_shed, value-bearing reads survive, and a served read always
// reflects at least the acked log prefix.
func TestReplicaLagAccounting(t *testing.T) {
	// 10ms budget, 1ms per record.
	gate := repl.NewLagGate(4, 10*time.Millisecond, time.Millisecond)
	rep, repAddr := startServer(t, Config{Shards: 4, Repl: ReplOptions{Gate: gate}})

	// Ship five records for key x by hand, acking each: the replica's
	// snapshot must always reflect the acked prefix.
	shardOfX := rep.Store().ShardOf("x")
	rc := dialRaw(t, repAddr)
	for i := 1; i <= 5; i++ {
		err := rep.Store().ApplyReplicated(shardOfX, []map[string][]byte{
			{"x": []byte(strconv.Itoa(i))},
		})
		if err != nil {
			t.Fatal(err)
		}
		gate.ObserveApplied(shardOfX, uint64(i), time.Millisecond, 1)
		// acked == applied == i; a read served now must be >= record i.
		rc.send("GET x")
		if got := rc.recv(); got != "OK "+strconv.Itoa(i) {
			t.Fatalf("after ack %d: GET x = %q, want OK %d (read older than acked index)", i, got, i)
		}
	}

	// Fall behind: the primary is 10000 records ahead -> ~10s catch-up,
	// far past the 10ms budget.
	gate.ObserveHead(shardOfX, 10005)

	// A tight read (zero-crossing ~0.2s away) cannot outlive catch-up: SHED.
	rc.send("UPD v=1 dl=100 r:x")
	if got := rc.recv(); got != "SHED" {
		t.Fatalf("doomed read on lagging replica = %q, want SHED", got)
	}
	// A long-lived read is still worth serving stale.
	rc.send("UPD v=5 dl=3600000 r:x")
	if got := rc.recv(); got != "OK" {
		t.Fatalf("valuable read on lagging replica = %q, want OK", got)
	}
	// Writes never belong on a replica.
	rc.send("PUT x 99")
	if got := rc.recv(); got != "ERR read-only replica" {
		t.Fatalf("write on replica = %q", got)
	}
	rc.send("ADD x 1")
	if got := rc.recv(); got != "ERR read-only replica" {
		t.Fatalf("ADD on replica = %q", got)
	}

	rc.send("STATS")
	st := rc.recv()
	if !strings.Contains(st, "repl_shed=1") {
		t.Fatalf("STATS %q does not report repl_shed=1", st)
	}
	if !strings.Contains(st, "repl_lag=10000") {
		t.Fatalf("STATS %q does not report repl_lag=10000", st)
	}
}

// TestLagShedOnLivePath proves lag shedding works end-to-end, not just
// with injected state: the replica's apply loop is stalled (a parked
// View holds the shard's commit latch), the primary keeps committing,
// and the replica's HEAD poller — its only honest view of the backlog,
// since the stalled stream is read exactly as late as the lag being
// measured — must grow the gate's lag until a tight-deadline read sheds.
func TestLagShedOnLivePath(t *testing.T) {
	// 10ms budget, 1ms/record estimate; heads polled every 2ms. No
	// record is applied before the stall lifts, so the 1ms estimate is
	// not refined away by fast early applies.
	gate := repl.NewLagGate(1, 10*time.Millisecond, time.Millisecond)
	_, priAddr, rep, repAddr, r := startReplicaPairGated(t, 1, gate, 2*time.Millisecond)

	// Stall the replica's applies: a View holds the shard latch until
	// released, so ApplyReplicated blocks behind it.
	viewHeld := make(chan struct{})
	release := make(chan struct{})
	go rep.Store().View([]string{"k"}, func(shard.Tx) error {
		close(viewHeld)
		<-release
		return nil
	})
	<-viewHeld

	c, err := client.Dial(priAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const backlog = 2000
	for i := 0; i < backlog; i++ {
		if _, err := c.Add("k", 1); err != nil {
			t.Fatal(err)
		}
	}

	// The poller must surface the backlog even though the stream is stuck.
	deadline := time.Now().Add(10 * time.Second)
	for gate.LagRecords() < backlog/2 {
		if time.Now().After(deadline) {
			t.Fatalf("head poller never surfaced the backlog: lag=%d", gate.LagRecords())
		}
		time.Sleep(time.Millisecond)
	}

	// ~2s estimated catch-up >> 10ms budget: a read whose value crosses
	// zero in ~0.2s sheds at the gate, before ever touching the store
	// (whose latch the stall holds — an admitted read would block here).
	rc := dialRaw(t, repAddr)
	rc.send("UPD v=1 dl=100 r:k")
	if got := rc.recv(); got != "SHED" {
		t.Fatalf("tight read on live lagging replica = %q, want SHED", got)
	}

	// Release the stall: the replica drains and tight reads serve again.
	close(release)
	for gate.LagRecords() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("replica never drained: lag=%d", gate.LagRecords())
		}
		time.Sleep(time.Millisecond)
	}
	_ = r // stream stays live throughout; pair cleanup closes it
	rc.send("UPD v=1 dl=100 r:k")
	if got := rc.recv(); got != "OK" {
		t.Fatalf("tight read on drained replica = %q, want OK", got)
	}
}

// TestReplicaFailover: losing the primary ends the stream but not the
// replica — it keeps serving its last consistent snapshot.
func TestReplicaFailover(t *testing.T) {
	pri, priAddr, _, repAddr, r, _ := startReplicaPair(t, 2)
	c, err := client.Dial(priAddr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("stable", 7); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, pri, r)
	c.Close()
	pri.Close()

	select {
	case <-r.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("replication stream did not end after primary close")
	}
	if r.Err() == nil {
		t.Fatal("stream end after primary loss reported no error")
	}
	rc, err := client.Dial(repAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if n, ok, err := rc.Get("stable"); err != nil || !ok || n != 7 {
		t.Fatalf("frozen replica Get(stable) = %d, %v, %v; want 7", n, ok, err)
	}
}

// TestReplVerbErrors pins the REPL/ACK error surface.
func TestReplVerbErrors(t *testing.T) {
	_, priAddr := startServer(t, Config{Shards: 2, Repl: ReplOptions{Primary: true}})
	rc := dialRaw(t, priAddr)
	for in, wantPrefix := range map[string]string{
		"ACK 0 1":        "ERR ACK before REPL",
		"REPL":           "ERR usage: REPL",
		"REPL x 1":       "ERR bad shard",
		"REPL 9 1":       "ERR bad shard",
		"REPL 0 0":       "ERR bad index",
		"REPL 0 x":       "ERR bad index",
		"ACK 0":          "ERR usage: ACK",
		"REQ 1 REPL 0 1": "RES 1 ERR REPL requires bare framing",
		"REQ 2 ACK 0 1":  "RES 2 ERR ACK requires bare framing",
	} {
		rc.send(in)
		if got := rc.recv(); !strings.HasPrefix(got, wantPrefix) {
			t.Errorf("%q -> %q, want prefix %q", in, got, wantPrefix)
		}
	}

	// HEAD reports the epoch watermark then per-shard log heads on a
	// primary: OK <watermark> <h0> <h1> for two shards.
	rc.send("PUT headkey 1")
	rc.recv()
	rc.send("HEAD")
	if got := rc.recv(); !strings.HasPrefix(got, "OK ") || len(strings.Fields(got)) != 4 {
		t.Errorf("HEAD on 2-shard primary -> %q, want OK <watermark> <h0> <h1>", got)
	}

	// A non-primary has no feed to subscribe to or report heads for, and
	// a replica pointed at it must fail at startup, not serve emptiness.
	plain, plainAddr := startServer(t, Config{Shards: 2})
	pc := dialRaw(t, plainAddr)
	for _, in := range []string{"REPL 0 1", "HEAD"} {
		pc.send(in)
		if got := pc.recv(); got != "ERR not a replication primary" {
			t.Errorf("%q on non-primary -> %q", in, got)
		}
	}
	if _, err := repl.StartReplica(repl.ReplicaConfig{
		Primary: plainAddr,
		Store:   plain.Store(), // any same-shard-count store works here
	}); err == nil || !strings.Contains(err.Error(), "refused subscription") {
		t.Errorf("StartReplica against non-primary = %v, want refused-subscription error", err)
	}
}
