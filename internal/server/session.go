// Interactive transaction sessions: the server side of the TXN wire
// verbs. A session is an open transaction whose operations arrive one
// client round trip at a time — the unit of the API is the transaction,
// not the verb — and whose SCC machinery stays live between round
// trips: a single-shard session binds an open engine transaction whose
// optimistic and speculative shadows park, fork, and get promoted while
// the client thinks (the paper's Sec. 2 mechanism, finally reachable
// over the wire). Sessions are value-cognizant end to end: BEGIN
// carries a Def. 2 value function, enters the admission queue like any
// transaction, and a reaper sheds idle sessions whose value function
// has crossed zero (txn_reaped in STATS) — parked speculative state for
// worthless work is pure capacity theft.
//
// Execution modes. A fresh session is idle. Its first operation binds
// it to the owning shard's engine as a live interactive transaction
// (sessLive): a session goroutine runs the engine's closure protocol,
// but the "closure" replays the session's append-only op log and then
// parks waiting for more ops, so one logical transaction spans many
// round trips. The engine may run that closure several times
// concurrently (optimistic shadow + speculative shadow + restarts);
// each execution keeps its own cursor into the shared log, and the
// first execution to produce op i's result delivers it to the client —
// results are therefore *speculative* until COMMIT, whose reply carries
// the committed execution's write results (exactly UPD's reply shape).
//
// An operation that routes off the bound shard aborts the live
// transaction and falls the session back to deferred mode
// (sessDeferred): reads are served speculatively from committed state
// plus a private overlay, and COMMIT replays the whole op log through
// the same admitted executor one-shot UPDs use — cross-shard
// validation, value-cognizant retry readmission, and all. Replica
// sessions (read-only, lag-gated at BEGIN) always run deferred.
// docs/PROTOCOL.md states the state machine normatively;
// docs/ARCHITECTURE.md places sessions in the system.
package server

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/server/opts"
	"repro/internal/shard"
	"repro/internal/value"
)

// TxnConfig configures interactive transaction sessions.
type TxnConfig struct {
	// MaxIdle reaps a session that has seen no operation for this long
	// even while its value function is still positive — a dead client's
	// leaked session must not pin an admission slot and speculative
	// engine state forever. Default 30s; negative disables the idle cap
	// (zero-crossing reaping still runs).
	MaxIdle time.Duration
	// ReapEvery is the reaper's scan interval (default 25ms).
	ReapEvery time.Duration
}

func (c *TxnConfig) defaults() {
	if c.MaxIdle == 0 {
		c.MaxIdle = 30 * time.Second
	}
	if c.ReapEvery <= 0 {
		c.ReapEvery = 25 * time.Millisecond
	}
}

// errTxnAborted is the session closure's "stop executing" sentinel: the
// session was aborted by the client, reaped, or the server is closing.
var errTxnAborted = errors.New("server: txn session aborted")

type sessMode int

const (
	sessIdle     sessMode = iota // no operations yet
	sessLive     sessMode = iota // live engine transaction on the bound shard
	sessDeferred                 // speculative overlay; execution deferred to COMMIT
	sessFailed                   // live transaction died with a terminal error
)

type sessFin int

const (
	finNone   sessFin = iota
	finCommit         // COMMIT received; executions finish and validate
	finAbort          // client ABORT or server shutdown
	finReap           // value-cognizant reaper shed the session
)

// session is one interactive transaction.
type session struct {
	id uint64
	// token is the session's capability: a random value minted at BEGIN
	// and returned as part of the wire id ("<id>-<token>"). Every later
	// verb must present it — a numeric id alone (guessed, or left over
	// from another client's session) does not resolve, so one connection
	// cannot drive another's transaction by enumerating ids.
	token string
	srv   *Server
	f     value.Fn   // Def. 2 value function fixed at BEGIN
	val   float64    // f at BEGIN: the engine-facing transaction value
	tr    *obs.Trace // lifecycle trace (nil unless BEGIN carried trace=1)

	mu        sync.Mutex
	cond      *sync.Cond
	mode      sessMode
	fin       sessFin
	ops       []op             // append-only op log, replayed by every execution
	res       []int64          // speculative per-op results
	delivered []bool           // res[i] has been produced (first execution wins)
	overlay   map[string]int64 // deferred-mode read-your-writes view
	lastOp    time.Time        // BEGIN or latest op arrival, for idle reaping
	failErr   error            // terminal live-path error (mode == sessFailed)

	// Live-path rendezvous: liveDone is closed when the session
	// goroutine's engine call returned; on a committed transaction
	// liveRes holds the committed execution's write results.
	liveDone      chan struct{}
	liveRes       []int64
	liveCommitted bool
}

// sessionTable owns the server's sessions: id allocation, lookup, the
// value-cognizant reaper, and bounded tombstones so operations on a
// reaped session answer SHED instead of a confusing "no such txn".
type sessionTable struct {
	srv *Server
	cfg TxnConfig

	mu       sync.Mutex
	sessions map[uint64]*session
	nextID   uint64
	reaped   map[uint64]struct{}
	reapRing []uint64 // tombstone eviction order (oldest first)

	wake chan struct{} // signaled when the table goes non-empty
	stop chan struct{}
	done chan struct{}
}

// maxTombstones bounds the reaped-session tombstone set; past it the
// oldest tombstones fall back to the generic no-such-txn error.
const maxTombstones = 4096

func newSessionTable(srv *Server, cfg TxnConfig) *sessionTable {
	cfg.defaults()
	st := &sessionTable{
		srv:      srv,
		cfg:      cfg,
		sessions: make(map[uint64]*session),
		reaped:   make(map[uint64]struct{}),
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go st.reapLoop()
	return st
}

// add registers a new session whose BEGIN already holds an admission slot.
func (st *sessionTable) add(f value.Fn, val float64, tr *obs.Trace) *session {
	ss := &session{
		srv:     st.srv,
		f:       f,
		val:     val,
		tr:      tr,
		overlay: make(map[string]int64),
		lastOp:  time.Now(),
	}
	ss.cond = sync.NewCond(&ss.mu)
	ss.token = newSessionToken()
	st.mu.Lock()
	st.nextID++
	ss.id = st.nextID
	st.sessions[ss.id] = ss
	first := len(st.sessions) == 1
	st.mu.Unlock()
	if first {
		select {
		case st.wake <- struct{}{}:
		default:
		}
	}
	return ss
}

// get looks a session up; reaped reports a tombstoned (value-shed) id.
func (st *sessionTable) get(id uint64) (ss *session, reaped bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.reaped[id]; ok {
		return nil, true
	}
	return st.sessions[id], false
}

// remove drops a finished session, optionally leaving a tombstone.
func (st *sessionTable) remove(id uint64, tombstone bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.sessions, id)
	if !tombstone {
		return
	}
	st.reaped[id] = struct{}{}
	st.reapRing = append(st.reapRing, id)
	for len(st.reapRing) > maxTombstones {
		delete(st.reaped, st.reapRing[0])
		st.reapRing = st.reapRing[1:]
	}
}

// active returns the number of open sessions.
func (st *sessionTable) active() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sessions)
}

func (st *sessionTable) snapshot() []*session {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*session, 0, len(st.sessions))
	for _, ss := range st.sessions {
		out = append(out, ss)
	}
	return out
}

// reapLoop sheds sessions whose value functions have crossed zero —
// Sec. 3's zero-crossing rule applied to parked interactive state — and
// sessions idle past the configured cap. The actual teardown is
// asynchronous: unwinding a live engine transaction can block on a
// conflicting transaction's resolution, and one wedged session must not
// stall the sweep.
func (st *sessionTable) reapLoop() {
	defer close(st.done)
	timer := time.NewTimer(st.cfg.ReapEvery)
	defer timer.Stop()
	for {
		// Park entirely while no sessions exist: an idle (or
		// one-shot-only) server must not pay a periodic wakeup for a
		// feature it is not using.
		if st.active() == 0 {
			select {
			case <-st.stop:
				return
			case <-st.wake:
			}
		}
		timer.Reset(st.cfg.ReapEvery)
		select {
		case <-st.stop:
			return
		case <-timer.C:
		}
		now := st.srv.adm.now()
		for _, ss := range st.snapshot() {
			ss.mu.Lock()
			expired := ss.fin == finNone && ss.f.At(now) <= 0
			idle := ss.fin == finNone && st.cfg.MaxIdle > 0 && time.Since(ss.lastOp) > st.cfg.MaxIdle
			if !expired && !idle {
				ss.mu.Unlock()
				continue
			}
			ss.fin = finReap
			ss.cond.Broadcast()
			ld := ss.liveDone
			ss.mu.Unlock()
			// The session realizes nothing, so its whole submitted value
			// is lost to the reap — counting only the residual would leak
			// the decayed part out of the conservation invariant.
			st.srv.met.lostValue(obs.LossReap, clampValue(ss.val))
			ss.tr.Event(obs.StageReap)
			ss.tr.Flush()
			go func(ss *session, ld chan struct{}) {
				if ld != nil {
					<-ld // let the engine transaction unwind first
				}
				st.srv.adm.Release(0, 0)
				st.remove(ss.id, true)
				st.srv.txnReaped.Add(1)
			}(ss, ld)
		}
	}
}

// close stops the reaper and aborts every remaining session, waiting for
// live engine transactions to unwind so the store can close under a
// quiesced engine. Signaling and waiting are separate phases: a session
// mid-commit can be parked in the engine's value deferment on ANOTHER
// session's resolution, so waiting for it before the other session has
// been aborted would deadlock the teardown.
func (st *sessionTable) close() {
	close(st.stop)
	<-st.done
	sessions := st.snapshot()
	for _, ss := range sessions {
		ss.mu.Lock()
		if ss.fin == finNone {
			ss.fin = finAbort
			ss.cond.Broadcast()
		}
		ss.mu.Unlock()
	}
	for _, ss := range sessions {
		ss.mu.Lock()
		ld := ss.liveDone
		ss.mu.Unlock()
		if ld != nil {
			<-ld
		}
		st.remove(ss.id, false)
	}
}

// runLive is the session goroutine: it binds the session to firstKey's
// shard as one engine transaction whose closure is the session's op-log
// replay loop (liveFn), and records the outcome. A declared-key
// violation is not an error but a mode change: the op log has outgrown
// the bound shard, so the session falls back to deferred cross-shard
// execution and re-serves the log speculatively.
func (ss *session) runLive(firstKey string) {
	res, err := ss.srv.store.UpdateTracedResult(ss.val, []string{firstKey}, nil, ss.tr, ss.liveFn)
	ss.mu.Lock()
	switch {
	case err == nil:
		ss.liveRes, _ = res.([]int64)
		ss.liveCommitted = true
	case errors.Is(err, shard.ErrKeyNotDeclared):
		ss.tr.Event(obs.StageDeferred)
		ss.mode = sessDeferred
		ss.replaySpecLocked()
	case errors.Is(err, errTxnAborted):
		// Client abort, reap, or shutdown: nothing to record.
	default:
		ss.mode = sessFailed
		ss.failErr = err
	}
	ss.cond.Broadcast()
	ss.mu.Unlock()
	close(ss.liveDone)
}

// liveFn is one execution of the session's transaction. The engine may
// run it several times concurrently (optimistic + speculative shadows,
// restarts); each execution replays the op log from the start with its
// own cursor, parks when it outruns the log, and finishes only when the
// client's verdict arrives. A speculative shadow re-running this
// closure naturally parks at its conflict gate inside tx.Get — the
// paper's Blocking Rule, here suspended across client round trips.
func (ss *session) liveFn(tx shard.Tx) error {
	var results []int64
	for i := 0; ; i++ {
		ss.mu.Lock()
		for len(ss.ops) <= i && ss.fin == finNone {
			ss.cond.Wait()
		}
		if len(ss.ops) <= i {
			// The log is exhausted and a verdict is in: commit stashes
			// this execution's results (the committed execution's stash
			// is what COMMIT replies with); anything else stops it.
			fin := ss.fin
			ss.mu.Unlock()
			if fin == finCommit {
				tx.Stash(results)
				return nil
			}
			return errTxnAborted
		}
		o := ss.ops[i]
		ss.mu.Unlock()
		n, err := applyOp(tx, o)
		if err != nil {
			return err
		}
		if o.write {
			results = append(results, n)
		}
		ss.deliverLive(i, n)
	}
}

// deliverLive publishes op i's result if no execution beat this one to it.
func (ss *session) deliverLive(i int, n int64) {
	ss.mu.Lock()
	if !ss.delivered[i] {
		ss.delivered[i] = true
		ss.res[i] = n
		ss.cond.Broadcast()
	}
	ss.mu.Unlock()
}

// applySpecLocked applies op i to the deferred-mode speculative view
// (committed state + private overlay) and returns its result, delivering
// it if still undelivered. Caller holds ss.mu.
func (ss *session) applySpecLocked(i int) int64 {
	o := ss.ops[i]
	cur := func(key string) int64 {
		if v, ok := ss.overlay[key]; ok {
			return v
		}
		v, _ := ss.srv.store.Get(key)
		return parseNum(v)
	}
	var n int64
	switch {
	case !o.write:
		n = cur(o.key)
	case o.set:
		n = o.delta
		ss.overlay[o.key] = n
	default:
		n = cur(o.key) + o.delta
		ss.overlay[o.key] = n
	}
	if !ss.delivered[i] {
		ss.delivered[i] = true
		ss.res[i] = n
	}
	return n
}

// replaySpecLocked rebuilds the speculative overlay from the whole op
// log after a fall-back to deferred mode. Results the client already saw
// keep their delivered values (they were speculative then and remain
// so); undelivered ops get overlay-derived results. Caller holds ss.mu.
func (ss *session) replaySpecLocked() {
	ss.overlay = make(map[string]int64)
	for i := range ss.ops {
		ss.applySpecLocked(i)
	}
	ss.cond.Broadcast()
}

// txnBegin admits and registers a new session. The value function is
// fixed here; on a replica the lag gate prices the whole session before
// the admission queue sees it.
func (s *Server) txnBegin(o opts.T) string {
	f := s.adm.FnOf(o)
	// Sessions sample into the flight recorder like one-shot requests:
	// trace=1 always records, untraced sessions record 1-in-FlightSample
	// (the rest carry a nil trace), the trace= reply stays opt-in.
	id := s.reqID.Add(1)
	var tr *obs.Trace
	if o.Trace || id%s.flightSample == 0 {
		tr = obs.NewRecordedTrace(time.Now(), s.flight.Server(), id, o.Trace)
		defer tr.Flush()
	}
	if o.Trace {
		s.met.traces.Inc()
	}
	v0 := clampValue(f.At(s.adm.now()))
	s.met.submitted.Add(v0)
	if gate := s.replGate(); gate != nil {
		if err := gate.Admit(f, s.adm.now()); err != nil {
			s.met.lostValue(obs.LossReplicaLag, v0)
			s.flight.Admission().Record(flight.EvReplShed, id, -1, 0)
			return "SHED"
		}
	}
	tr.EventOff(obs.StageEnqueue, 0)
	admitStart := time.Now()
	// The slot estimate for an interactive transaction is a guess (the
	// op list does not exist yet); 2 ops is the workload's short-txn
	// shape. The estimate only orders the wait, it reserves nothing.
	if err := s.adm.AcquireTenant(f, 2, o.Tenant); err != nil {
		if errors.Is(err, ErrTenantShed) {
			s.met.lostValue(obs.LossTenantBudget, v0)
		} else {
			s.met.lostValue(obs.LossAdmissionShed, v0)
		}
		s.flight.Admission().Record(obs.StageShed, id, -1, 0)
		return "SHED"
	}
	admitEnd := time.Now()
	s.met.admitWait.Observe(int64(admitEnd.Sub(admitStart)))
	tr.EventAt(obs.StageAdmit, admitEnd)
	ss := s.sessions.add(f, f.At(s.adm.now()), tr)
	s.txnBegun.Add(1)
	return "OK " + ss.wireID()
}

// wireID renders the session's composite wire id: the numeric table key
// joined to the capability token. Space-free, so it rides the BEGIN
// reply's single-token body; '-' never appears in the numeric part, so
// the split-off is unambiguous.
func (ss *session) wireID() string {
	return strconv.FormatUint(ss.id, 10) + "-" + ss.token
}

// newSessionToken mints a session capability: 8 bytes from crypto/rand,
// hex-encoded. Unguessable is the point; 64 bits is plenty for ids that
// live seconds and die with the session table.
func newSessionToken() string {
	b := make([]byte, 8)
	rand.Read(b)
	return hex.EncodeToString(b)
}

// txnOp appends one R/W operation to the session and answers with its
// (speculative) result. In live mode the result comes from whichever
// engine execution reaches the op first — which can mean waiting for a
// parked speculative shadow to be released by a conflicting
// transaction's resolution, the Blocking Rule surfacing as client
// latency. In deferred mode the result is computed inline from the
// overlay view.
func (s *Server) txnOp(ss *session, o op) string {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	switch ss.fin {
	case finReap:
		return "SHED"
	case finCommit, finAbort:
		return "ERR txn " + strconv.FormatUint(ss.id, 10) + " is finishing"
	}
	if o.write && s.cluster != nil && !s.cluster.IsPrimary() {
		// Cluster entry fence for interactive sessions: same redirect as
		// the one-shot verbs, so clients re-run the transaction against
		// the current primary.
		return s.notPrimary()
	}
	if s.replGate() != nil && o.write {
		return "ERR read-only replica"
	}
	if ss.mode == sessFailed {
		return "ERR " + ss.failErr.Error()
	}
	i := len(ss.ops)
	ss.ops = append(ss.ops, o)
	ss.res = append(ss.res, 0)
	ss.delivered = append(ss.delivered, false)
	ss.lastOp = time.Now()
	if ss.mode == sessIdle {
		if s.replGate() != nil {
			// Replica sessions never bind a live engine transaction:
			// they are read-only and validate at COMMIT against the
			// replicated state.
			ss.mode = sessDeferred
		} else {
			ss.mode = sessLive
			ss.liveDone = make(chan struct{})
			go ss.runLive(o.key)
		}
	}
	if ss.mode == sessDeferred {
		return "OK " + strconv.FormatInt(ss.applySpecLocked(i), 10)
	}
	ss.cond.Broadcast()
	for !ss.delivered[i] && ss.mode == sessLive && ss.fin == finNone {
		ss.cond.Wait()
	}
	switch {
	case ss.delivered[i]:
		return "OK " + strconv.FormatInt(ss.res[i], 10)
	case ss.mode == sessFailed:
		return "ERR " + ss.failErr.Error()
	case ss.fin == finReap:
		return "SHED"
	default:
		return "ERR txn " + strconv.FormatUint(ss.id, 10) + " is finishing"
	}
}

// txnCommit finishes the session with a commit verdict and replies in
// UPD's shape: OK plus the committed execution's write results in op
// order. Live sessions hand the verdict to the parked executions and
// await the engine's outcome; deferred sessions replay their op log
// through the same admitted executor one-shot verbs use.
func (s *Server) txnCommit(ss *session) string {
	ss.mu.Lock()
	switch ss.fin {
	case finReap:
		ss.mu.Unlock()
		return "SHED"
	case finCommit, finAbort:
		ss.mu.Unlock()
		return "ERR txn " + strconv.FormatUint(ss.id, 10) + " is finishing"
	}
	ss.fin = finCommit
	ss.cond.Broadcast()
	mode := ss.mode
	ld := ss.liveDone
	ss.mu.Unlock()

	var reply string
	if mode == sessLive {
		<-ld
		ss.mu.Lock()
		mode = ss.mode // rebind or failure may have happened meanwhile
		switch {
		case ss.liveCommitted:
			reply = okResults(ss.liveRes)
		case mode == sessFailed:
			reply = txnCommitErr(ss.failErr)
		}
		ss.mu.Unlock()
	}
	released := false
	if reply == "" {
		switch mode {
		case sessIdle:
			// An empty transaction commits trivially.
			reply = "OK"
		case sessDeferred:
			ss.mu.Lock()
			ops := ss.ops
			ss.mu.Unlock()
			// The deferred replay is pure engine service time (no think
			// time in it), so unlike the live path it feeds the
			// admission estimate and the latency sample like a one-shot.
			start := time.Now()
			out := s.execAdmitted(ss.f, ops, ss.tr)
			elapsed := time.Since(start)
			if out.holding {
				s.adm.Release(elapsed-out.readmitWait, len(ops))
			}
			released = true
			s.latMu.Lock()
			s.lat.Add(elapsed.Seconds())
			s.latMu.Unlock()
			if out.err != nil {
				reply = txnCommitErr(out.err)
			} else {
				reply = okResults(out.results)
			}
		case sessFailed:
			reply = txnCommitErr(ss.failErr)
		default:
			reply = "ERR txn aborted"
		}
	}
	if !released {
		// Live sessions free their slot without refining the
		// service-time estimate: the engine work was interleaved with
		// client think time, which is not service time.
		s.adm.Release(0, 0)
	}
	s.sessions.remove(ss.id, false)
	ss.mu.Lock()
	nOps := len(ss.ops)
	ss.mu.Unlock()
	s.met.sessionOps.Observe(int64(nOps))
	if len(reply) >= 2 && reply[:2] == "OK" {
		s.txnCommitted.Add(1)
		vEnd := clampValue(ss.f.At(s.adm.now()))
		s.met.realized.Add(vEnd)
		s.met.lostValue(obs.LossExecution, clampValue(ss.val)-vEnd)
		ss.tr.Event(obs.StageCommit)
		if ss.tr.Retained() {
			reply += " trace=" + ss.tr.String()
		}
	} else {
		s.txnAborted.Add(1)
		ss.tr.Event(obs.StageAbort)
		s.met.lostValue(commitLossReason(reply), clampValue(ss.val))
	}
	ss.tr.Flush()
	return reply
}

// commitLossReason classifies a failed TXN COMMIT reply for the
// lost-value meter: cross-shard sheds, exhausted conflict budgets, and
// everything else.
func commitLossReason(reply string) string {
	switch {
	case reply == "SHED":
		return obs.LossCrossShed
	case strings.HasPrefix(reply, "ERR conflict"):
		return obs.LossConflictAbort
	default:
		return obs.LossError
	}
}

// txnCommitErr renders a commit failure, marking retryable conflicts
// (attempt budgets exhausted under contention) distinctly so clients can
// re-run the transaction, mirroring Store.Update's internal retry.
func txnCommitErr(err error) string {
	if errors.Is(err, ErrShed) {
		return "SHED"
	}
	var ea *engine.AttemptsError
	var sa *shard.AttemptsError
	if errors.As(err, &ea) || errors.As(err, &sa) {
		return "ERR conflict: " + err.Error()
	}
	return "ERR " + err.Error()
}

// txnAbort finishes the session with an abort verdict.
func (s *Server) txnAbort(ss *session) string {
	ss.mu.Lock()
	switch ss.fin {
	case finReap:
		ss.mu.Unlock()
		return "SHED"
	case finCommit, finAbort:
		ss.mu.Unlock()
		return "ERR txn " + strconv.FormatUint(ss.id, 10) + " is finishing"
	}
	ss.fin = finAbort
	ss.cond.Broadcast()
	ld := ss.liveDone
	nOps := len(ss.ops)
	ss.mu.Unlock()
	if ld != nil {
		<-ld
	}
	s.adm.Release(0, 0)
	s.sessions.remove(ss.id, false)
	s.txnAborted.Add(1)
	s.met.sessionOps.Observe(int64(nOps))
	s.met.lostValue(obs.LossClientAbort, clampValue(ss.val))
	ss.tr.Event(obs.StageAbort)
	ss.tr.Flush()
	return "OK"
}
