// Server-side telemetry: one obs.Registry per Server, exposed over the
// wire by the METRICS verb (Prometheus text exposition 0.0.4) and, via
// Server.Metrics, by an operator HTTP endpoint (cmd/sccserve
// -metrics-addr). Two kinds of series coexist:
//
//   - Native instruments — latency histograms, lost-value counters —
//     updated on the hot path. Each observation is one or two uncontended
//     atomic adds; the histograms use power-of-two buckets so no floating
//     point ever runs per request.
//   - Derived series — commit, fork, promotion, admission counters — are
//     func-backed bridges sampled from the existing Stats structs at
//     exposition time, so the hot path is never billed twice for a number
//     STATS already maintains.
//
// The value accounting is conservation-shaped, after the paper's Def. 2:
// every valued request contributes its submit-time value to
// scc_value_submitted_total; at the verdict the surviving value (the
// value function evaluated at verdict time, clamped at zero) goes to
// scc_value_realized_total if it committed, and everything not realized
// goes to scc_value_lost_total{reason} attributed to the stage that
// caused the loss. submitted == realized + sum(lost) over any quiescent
// interval, which is what makes the meter trustworthy.
package server

import (
	"runtime"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/repl"
)

// metricVerbs are the dispatch verbs that get their own
// scc_request_seconds series; anything else shares "other", so a typo
// storm cannot mint unbounded label values.
var metricVerbs = []string{
	"PING", "GET", "PUT", "ADD", "UPD", "SUM", "STATS", "HEAD", "CKPT", "TXN",
	"TOPO", "PLACE",
}

// serverMetrics owns the registry and the pre-resolved hot-path series.
type serverMetrics struct {
	reg *obs.Registry

	verbSeconds map[string]*obs.Histogram // per-verb request latency
	otherVerb   *obs.Histogram

	stage      *obs.HistogramVec // scc_stage_seconds{stage=...}
	admitWait  *obs.Histogram    // stage="admission_wait"
	sessionOps *obs.Histogram    // ops per interactive session

	batchSize     *obs.Histogram // commits per group-commit flush
	conflictScans *obs.Counter

	submitted    *obs.FloatCounter
	realized     *obs.FloatCounter
	lost         *obs.FloatCounterVec
	lostByReason map[string]*obs.FloatCounter
	traces       *obs.Counter
}

func newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		stage: reg.NsHistogramVec("scc_stage_seconds",
			"Time spent in one transaction lifecycle stage.", "stage"),
		sessionOps: reg.Histogram("scc_txn_session_ops",
			"Operations per interactive TXN session at its verdict.", 0, 10, 1),
		batchSize: reg.Histogram("scc_commit_batch_size",
			"Commits processed per commit-latch acquisition.", 0, 10, 1),
		conflictScans: reg.Counter("scc_conflict_key_scans_total",
			"Key comparisons performed by the engine's Read/Write Rule conflict scans."),
		submitted: reg.FloatCounter("scc_value_submitted_total",
			"Sum of Def. 2 value-function values at transaction submit."),
		realized: reg.FloatCounter("scc_value_realized_total",
			"Sum of value-function values at commit (clamped at zero)."),
		lost: reg.FloatCounterVec("scc_value_lost_total",
			"Submitted value not realized, attributed to the lifecycle stage that lost it.", "reason"),
		traces: reg.Counter("scc_traces_total",
			"Requests that asked for a trace= lifecycle timeline."),
	}
	verbs := reg.NsHistogramVec("scc_request_seconds",
		"Wire request latency by verb (dispatch to reply).", "verb")
	m.verbSeconds = make(map[string]*obs.Histogram, len(metricVerbs))
	for _, v := range metricVerbs {
		m.verbSeconds[v] = verbs.With(strings.ToLower(v))
	}
	m.otherVerb = verbs.With("other")
	m.admitWait = m.stage.With("admission_wait")
	m.lostByReason = make(map[string]*obs.FloatCounter)
	for _, r := range []string{
		obs.LossExecution, obs.LossSession, obs.LossAdmissionShed,
		obs.LossCrossShed, obs.LossConflictAbort, obs.LossClientAbort,
		obs.LossReap, obs.LossError, obs.LossReplicaLag, obs.LossWALError,
		obs.LossTenantBudget,
	} {
		m.lostByReason[r] = m.lost.With(r)
	}
	return m
}

// engineMetrics builds the instrument set internal/engine observes into;
// the flush and park stages share scc_stage_seconds with the server's own
// stages so one family carries the whole lifecycle.
func (m *serverMetrics) engineMetrics() *engine.Metrics {
	return &engine.Metrics{
		BatchSize:     m.batchSize,
		FlushSeconds:  m.stage.With("commit_flush"),
		ParkSeconds:   m.stage.With("park"),
		ConflictScans: m.conflictScans,
	}
}

// lostValue attributes v of lost value to reason (no-op for v <= 0).
func (m *serverMetrics) lostValue(reason string, v float64) {
	if c, ok := m.lostByReason[reason]; ok {
		c.Add(v)
		return
	}
	m.lost.With(reason).Add(v)
}

// observeVerb records one dispatch round trip.
func (m *serverMetrics) observeVerb(verb string, d time.Duration) {
	h, ok := m.verbSeconds[verb]
	if !ok {
		h = m.otherVerb
	}
	h.Observe(int64(d))
}

// registerDerived bridges the server's existing counters into the
// registry as func-backed series. Registration order is exposition
// order. Called once from Open, after the server's subsystems exist;
// exposition samples them live, so METRICS and STATS can never disagree
// about what a counter is, only about when it was read.
func (s *Server) registerDerived() {
	reg := s.met.reg
	reg.GaugeFunc("scc_shards", "Partition count of the backing store.",
		func() float64 { return float64(s.store.NumShards()) })
	reg.CounterFunc("scc_requests_total", "Wire requests dispatched (the STATS reqs counter).",
		func() float64 { return float64(s.requests.Load()) })
	reg.CounterFunc("scc_flight_events_total", "Events recorded by the always-on flight recorder.",
		func() float64 { return float64(s.flight.Seq()) })

	// Go runtime health, sampled at exposition time only (ReadMemStats
	// stops the world briefly — never on the request path).
	reg.GaugeFunc("scc_go_goroutines", "Live goroutines in the server process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("scc_go_heap_inuse_bytes", "Bytes of heap memory in use (runtime.MemStats.HeapInuse).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapInuse)
		})
	reg.CounterFunc("scc_go_gc_total", "Completed garbage-collection cycles.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})

	reg.CounterFunc("scc_commits_total", "Committed transactions across all shards.",
		func() float64 { return float64(s.store.Stats().TotalCommits()) })
	reg.CounterFunc("scc_commits_fast_total", "Single-shard fast-path commits.",
		func() float64 { return float64(s.store.Stats().FastPath) })
	reg.CounterFunc("scc_commits_cross_total", "Cross-shard two-phase commits.",
		func() float64 { return float64(s.store.Stats().CrossCommits) })
	reg.CounterFunc("scc_cross_restarts_total", "Cross-shard validation restarts.",
		func() float64 { return float64(s.store.Stats().CrossRestarts) })
	reg.CounterFunc("scc_cross_shed_total", "Cross-shard retries shed past their value zero-crossing.",
		func() float64 { return float64(s.crossShed.Load()) })
	reg.CounterFunc("scc_cross_batches_total", "Cross-shard commit batches.",
		func() float64 { return float64(s.store.Stats().CrossBatches) })
	reg.CounterFunc("scc_aborts_total", "Engine transaction aborts.",
		func() float64 { return float64(s.store.Stats().Engine.Aborts) })
	reg.CounterFunc("scc_restarts_total", "Engine transaction restarts.",
		func() float64 { return float64(s.store.Stats().Engine.Restarts) })
	reg.CounterFunc("scc_forks_total", "Speculative shadows forked (SCC Conflict Rule).",
		func() float64 { return float64(s.store.Stats().Engine.Forks) })
	reg.CounterFunc("scc_promotions_total", "Speculative shadows promoted at commit.",
		func() float64 { return float64(s.store.Stats().Engine.Promotions) })
	reg.CounterFunc("scc_deferrals_total", "Commits deferred by the value-cognizant Commit Rule.",
		func() float64 { return float64(s.store.Stats().Engine.Deferrals) })
	reg.CounterFunc("scc_commit_batches_total", "Group-commit flushes.",
		func() float64 { return float64(s.store.Stats().Engine.CommitBatches) })
	reg.CounterFunc("scc_views_total", "Read-only snapshot transactions.",
		func() float64 { return float64(s.store.Stats().Views) })

	reg.CounterFunc("scc_admission_admitted_total", "Admission grants, including readmitted retries.",
		func() float64 { return float64(s.adm.Stats().Admitted) })
	reg.CounterFunc("scc_admission_shed_total", "Transactions refused admission (zero-crossed or evicted).",
		func() float64 { return float64(s.adm.Stats().Shed) })
	reg.CounterFunc("scc_admission_tenant_shed_total", "Admission sheds caused by per-tenant value budgets.",
		func() float64 { return float64(s.adm.Stats().TenantShed) })
	reg.CounterFunc("scc_admission_readmits_total", "Cross-shard retries re-entering the admission queue.",
		func() float64 { return float64(s.adm.Stats().Readmits) })
	reg.GaugeFunc("scc_admission_queue_depth", "Waiters queued for admission.",
		func() float64 { return float64(s.adm.Stats().Depth) })
	reg.GaugeFunc("scc_admission_inflight", "Admitted transactions currently holding slots.",
		func() float64 { return float64(s.adm.Stats().InFlight) })
	reg.GaugeFunc("scc_admission_op_time_seconds", "Online per-operation service-time estimate.",
		func() float64 { return s.adm.Stats().OpTime })

	reg.GaugeFunc("scc_txn_active", "Open interactive TXN sessions.",
		func() float64 { return float64(s.sessions.active()) })
	reg.CounterFunc("scc_txn_begun_total", "TXN sessions begun.",
		func() float64 { return float64(s.txnBegun.Load()) })
	reg.CounterFunc("scc_txn_committed_total", "TXN sessions committed.",
		func() float64 { return float64(s.txnCommitted.Load()) })
	reg.CounterFunc("scc_txn_aborted_total", "TXN sessions aborted.",
		func() float64 { return float64(s.txnAborted.Load()) })
	reg.CounterFunc("scc_txn_reaped_total", "TXN sessions reaped by the value-cognizant reaper.",
		func() float64 { return float64(s.txnReaped.Load()) })

	// Promotion can mint a feed (and retire the gate) after registration,
	// so clustered servers register both families unconditionally and the
	// closures read through the atomic accessors, answering zero while
	// the role doesn't apply.
	if s.Feed() != nil || s.cluster != nil {
		reg.GaugeFunc("scc_repl_subscribers", "Live replication subscriptions.",
			func() float64 {
				if feed := s.Feed(); feed != nil {
					return float64(feed.Subscribers())
				}
				return 0
			})
		reg.GaugeFunc("scc_repl_max_lag_records", "Largest subscriber lag in log records.",
			func() float64 {
				if feed := s.Feed(); feed != nil {
					return float64(feed.MaxLag())
				}
				return 0
			})
		reg.CounterFunc("scc_log_trimmed_total", "Commit-log records trimmed below retention/checkpoint floors.",
			func() float64 {
				if feed := s.Feed(); feed != nil {
					return float64(feed.Trimmed())
				}
				return 0
			})
	}
	if s.replGate() != nil {
		reg.GaugeFunc("scc_repl_applied_records", "Replica: log records applied locally.",
			func() float64 {
				if gate := s.replGate(); gate != nil {
					return float64(gate.Applied())
				}
				return 0
			})
		reg.GaugeFunc("scc_repl_lag_records", "Replica: records the primary is ahead.",
			func() float64 {
				if gate := s.replGate(); gate != nil {
					return float64(gate.LagRecords())
				}
				return 0
			})
		reg.CounterFunc("scc_repl_shed_total", "Replica: reads shed for lag-priced value loss.",
			func() float64 {
				if gate := s.replGate(); gate != nil {
					return float64(gate.Shed())
				}
				return 0
			})
	}
	if s.cluster != nil {
		reg.GaugeFunc("scc_cluster_epoch", "Current fencing epoch of this cluster member.",
			func() float64 { return float64(s.cluster.Epoch()) })
		reg.GaugeFunc("scc_cluster_primary", "1 when this node is the cluster primary, else 0.",
			func() float64 {
				if s.cluster.IsPrimary() {
					return 1
				}
				return 0
			})
		reg.CounterFunc("scc_repl_sync_degraded_total", "Semi-sync ack waits that timed out (commit acked anyway).",
			func() float64 { return float64(s.syncDegraded.Load()) })
	}
	if s.durable != nil {
		reg.CounterFunc("scc_wal_appends_total", "Records appended to the per-shard WALs.",
			func() float64 { return float64(s.durable.Stats().WALAppends) })
		reg.CounterFunc("scc_wal_fsyncs_total", "WAL fsync batches.",
			func() float64 { return float64(s.durable.Stats().WALFsyncs) })
		reg.CounterFunc("scc_checkpoints_total", "Shard checkpoints taken.",
			func() float64 { return float64(s.durable.Stats().Checkpoints) })
		reg.GaugeFunc("scc_recovered_index", "Committed records recovered at the last boot.",
			func() float64 { return float64(s.durable.Stats().RecoveredIndex) })
		reg.CounterFunc("scc_durable_errors_total", "Durability-layer errors (WAL or checkpoint failures).",
			func() float64 { return float64(s.durable.Stats().Errors) })
		reg.CounterFunc("scc_wal_intents_total", "Cross-shard intent records appended to the per-shard WALs.",
			func() float64 { return float64(s.durable.Stats().Intents) })
		reg.CounterFunc("scc_recovery_reconciled_total", "Undecided cross-shard epochs discarded by recovery reconciliation at the last boot.",
			func() float64 { return float64(s.durable.Stats().Reconciled) })
	}
}

// NewReplicaMetrics registers the replication client's instruments in
// reg and returns the set repl.StartReplica observes into. cmd/sccserve
// calls this with the serving Server's registry so a replica process
// exposes its apply path next to its serving metrics.
func NewReplicaMetrics(reg *obs.Registry) *repl.ReplicaMetrics {
	return &repl.ReplicaMetrics{
		ApplySeconds: reg.NsHistogram("scc_repl_apply_seconds",
			"Replica: one applied batch's latch hold plus local commit-log sync."),
		ApplyBatch: reg.Histogram("scc_repl_apply_batch",
			"Replica: records installed per latch hold.", 0, 10, 1),
		Resumes: reg.Counter("scc_repl_resumes_total",
			"Replica: shard subscriptions resumed from persisted primary offsets."),
		Snapshots: reg.Counter("scc_repl_snapshots_total",
			"Replica: shard snapshot bootstraps fetched via SNAP."),
	}
}

// Metrics exposes the server's telemetry registry (the METRICS verb's
// source; operator binaries mount it on an HTTP endpoint).
func (s *Server) Metrics() *obs.Registry { return s.met.reg }
