// The pipelined transport. A Mux shares one TCP connection between any
// number of goroutines: every request is sent as "REQ <id> <verb> ..."
// without waiting for earlier responses, and a reader goroutine matches
// each "RES <id> ..." line back to its caller. Against a server on the
// same protocol this removes the round trip per request that dominates
// Client throughput — requests stream, responses stream back, and the
// Batch API amortizes even the write syscalls across a whole burst.

package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by Mux calls after Close.
var ErrClosed = errors.New("client: mux closed")

// Mux is a concurrent, pipelined protocol client. All methods are safe
// for concurrent use from any number of goroutines; requests multiplex
// onto one connection in flight order and responses are correlated by id,
// so slow requests never head-of-line block fast ones issued after them.
type Mux struct {
	conn net.Conn

	wmu     sync.Mutex // serializes writes to the connection
	w       *bufio.Writer
	writers atomic.Int32 // requests between write intent and flush decision

	mu      sync.Mutex
	pending map[uint64]chan resp
	nextID  uint64
	err     error         // first connection-level failure, sticky
	done    chan struct{} // closed when err is set
}

// resp is one routed response: its body and arrival time (stamped in the
// read loop, so per-request latency stays meaningful even when responses
// are collected later, as Batch does).
type resp struct {
	body string
	at   time.Time
}

// DialMux connects a pipelined client to a sccserve instance.
func DialMux(addr string) (*Mux, error) {
	return DialMuxContext(context.Background(), addr)
}

// DialMuxTimeout is DialMux bounded by a connect timeout.
func DialMuxTimeout(addr string, timeout time.Duration) (*Mux, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return DialMuxContext(ctx, addr)
}

// DialMuxContext is DialMux governed by ctx: the connect is abandoned
// when ctx expires or is canceled.
func DialMuxContext(ctx context.Context, addr string) (*Mux, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	m := &Mux{
		conn:    conn,
		w:       bufio.NewWriter(conn),
		pending: make(map[uint64]chan resp),
		done:    make(chan struct{}),
	}
	go m.readLoop()
	return m, nil
}

// Close tears down the connection; in-flight and future calls return
// ErrClosed (or the earlier connection error if one already occurred).
func (m *Mux) Close() error {
	m.fail(ErrClosed)
	return m.conn.Close()
}

// fail records the first connection-level error, wakes every waiter, and
// drops the pending table. Later calls keep the first error.
func (m *Mux) fail(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return
	}
	m.err = err
	m.pending = nil
	close(m.done)
}

// readLoop routes RES lines to their waiting callers until the
// connection dies or desyncs.
func (m *Mux) readLoop() {
	r := bufio.NewReaderSize(m.conn, 64*1024)
	for {
		raw, err := r.ReadString('\n')
		if err != nil {
			m.fail(fmt.Errorf("client: connection lost: %w", err))
			m.conn.Close()
			return
		}
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		now := time.Now()
		id, body, ok := splitRes(line)
		if !ok {
			// A bare (un-framed) line on a pipelined connection is a
			// connection-level server diagnostic — e.g. the oversized-line
			// error sent just before a close. Surface it as the failure
			// instead of burying it under "malformed response".
			if strings.HasPrefix(line, "ERR") {
				m.fail(errors.New("client: server closed the stream: " +
					strings.TrimSpace(strings.TrimPrefix(line, "ERR"))))
			} else {
				m.fail(fmt.Errorf("client: malformed pipelined response %q", line))
			}
			m.conn.Close()
			return
		}
		m.mu.Lock()
		ch := m.pending[id]
		delete(m.pending, id)
		m.mu.Unlock()
		if ch == nil {
			// A RES for an id we never sent (or already completed)
			// means the streams have desynced; nothing on this
			// connection can be trusted any more.
			m.fail(fmt.Errorf("client: response for unknown request id %d", id))
			m.conn.Close()
			return
		}
		ch <- resp{body: body, at: now}
	}
}

// splitRes parses "RES <id> <body...>".
func splitRes(line string) (uint64, string, bool) {
	rest, ok := strings.CutPrefix(line, "RES ")
	if !ok {
		return 0, "", false
	}
	i := strings.IndexByte(rest, ' ')
	if i <= 0 {
		return 0, "", false
	}
	id, err := strconv.ParseUint(rest[:i], 10, 64)
	if err != nil {
		return 0, "", false
	}
	return id, strings.TrimSpace(rest[i+1:]), true
}

// register allocates a request id and its response channel.
func (m *Mux) register() (uint64, chan resp, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return 0, nil, m.err
	}
	m.nextID++
	ch := make(chan resp, 1)
	m.pending[m.nextID] = ch
	return m.nextID, ch, nil
}

// await blocks for the response routed to ch, preferring a delivered
// response over a racing connection failure. (Kept distinct from
// awaitCtx: this is the pipelined hot path, and the context arm's extra
// select case is measurable under high request rates.)
func (m *Mux) await(ch chan resp) (resp, error) {
	select {
	case r := <-ch:
		return r, nil
	case <-m.done:
		select {
		case r := <-ch:
			return r, nil
		default:
		}
		m.mu.Lock()
		defer m.mu.Unlock()
		return resp{}, m.err
	}
}

// awaitCtx is await bounded by ctx. An abandoned request stays
// registered: its response channel is buffered, so the read loop's late
// delivery neither blocks nor desyncs the stream — the reply is simply
// discarded when it arrives.
func (m *Mux) awaitCtx(ctx context.Context, ch chan resp) (resp, error) {
	select {
	case r := <-ch:
		return r, nil
	case <-ctx.Done():
		return resp{}, ctx.Err()
	case <-m.done:
		select {
		case r := <-ch:
			return r, nil
		default:
		}
		m.mu.Lock()
		defer m.mu.Unlock()
		return resp{}, m.err
	}
}

// do issues one pipelined request and waits for its response. It
// satisfies the doer interface, so Mux serves every protocol verb through
// the same implementations as Client.
//
// Flushes coalesce across concurrent callers: each caller announces its
// write intent before taking the write lock, and only the caller that
// observes no later intent flushes. A caller that skips the flush is
// covered by a later one — the chain always terminates at the last
// concurrent writer — so a burst of goroutines shares one syscall while
// a lone request still flushes immediately.
func (m *Mux) do(line string) (string, error) {
	id, ch, err := m.register()
	if err != nil {
		return "", err
	}
	if err := m.send(id, line); err != nil {
		return "", err
	}
	r, err := m.await(ch)
	return r.body, err
}

// doCtx is do bounded by ctx's deadline or cancelation. The wait is
// abandoned, not the request: the server still executes it, and the late
// response is discarded by the read loop.
func (m *Mux) doCtx(ctx context.Context, line string) (string, error) {
	if ctx.Done() == nil {
		return m.do(line) // no deadline and not cancelable: the hot path
	}
	if err := ctx.Err(); err != nil {
		return "", err
	}
	id, ch, err := m.register()
	if err != nil {
		return "", err
	}
	if err := m.send(id, line); err != nil {
		return "", err
	}
	r, err := m.awaitCtx(ctx, ch)
	return r.body, err
}

// send writes one framed request, coalescing flushes across concurrent
// callers (see the do comment).
func (m *Mux) send(id uint64, line string) error {
	m.writers.Add(1)
	m.wmu.Lock()
	_, err := fmt.Fprintf(m.w, "REQ %d %s\n", id, line)
	last := m.writers.Add(-1) == 0
	if err == nil && last {
		err = m.w.Flush()
	}
	m.wmu.Unlock()
	if err != nil {
		m.fail(fmt.Errorf("client: write failed: %w", err))
		return err
	}
	return nil
}

// Ping checks liveness.
func (m *Mux) Ping() error { return ping(m) }

// Get reads a committed value; ok is false for a missing key.
func (m *Mux) Get(key string) (int64, bool, error) { return get(m, key) }

// Put sets key to n.
func (m *Mux) Put(key string, n int64) error { return put(m, key, n) }

// Add atomically adds delta to key and returns the new value.
func (m *Mux) Add(key string, delta int64) (int64, error) { return add(m, key, delta) }

// Sum returns the total of the given keys as one consistent cross-shard
// snapshot.
func (m *Mux) Sum(keys ...string) (int64, error) { return sum(m, keys) }

// Update executes ops as one serializable transaction and returns the new
// value of each write op, in op order.
func (m *Mux) Update(ops []Op, opts TxOpts) ([]int64, error) {
	return update(context.Background(), m, ops, opts)
}

// UpdateContext is Update with a per-call deadline (see
// Client.UpdateContext for the dl= mapping).
func (m *Mux) UpdateContext(ctx context.Context, ops []Op, opts TxOpts) ([]int64, error) {
	return update(ctx, m, ops, opts)
}

// Stats fetches the server's counters as a string map.
func (m *Mux) Stats() (map[string]string, error) { return statsCall(m) }

// UpdateReq is one transactional update of a Batch.
type UpdateReq struct {
	Ops  []Op
	Opts TxOpts
}

// UpdateResult is the outcome of one Batch entry.
type UpdateResult struct {
	Results []int64 // new value of each write op, in op order
	Err     error
	// Trace is the lifecycle trace the verdict carried ("" unless the
	// entry's TxOpts.Trace was set and it committed): "stage:ns" pairs,
	// comma-separated, offsets from submit.
	Trace string
	// Elapsed is the entry's own request/response time: from this
	// entry's write into the burst to the arrival of its RES line
	// (stamped in the read loop, not when the caller got around to
	// collecting it) — so later batch entries are not charged for the
	// serialization of earlier ones. Zero when the entry failed before
	// reaching the wire.
	Elapsed time.Duration
}

// Batch streams every update in one write burst — a single flush for the
// whole slice — then collects all responses. Slot i of the result
// corresponds to reqs[i]; one failing entry (bad key, SHED, conflict
// error) does not abort the others. The server dispatches pipelined
// requests concurrently, so entries of one batch execute in no
// particular order relative to each other — each is individually
// serializable, but entries with data dependencies between them belong
// in one entry's op list, not in separate entries. This is the
// lowest-overhead way to drive the server: n transactions cost one
// writev-sized syscall out and however few reads the kernel coalesces
// back.
func (m *Mux) Batch(reqs []UpdateReq) []UpdateResult {
	out := make([]UpdateResult, len(reqs))
	type inflight struct {
		ch     chan resp
		writes int
		sent   time.Time
	}
	pend := make([]inflight, len(reqs))

	m.wmu.Lock()
	var werr error
	for i, r := range reqs {
		line, writes, err := updateLine(r.Ops, r.Opts)
		if err != nil {
			out[i].Err = err
			continue
		}
		if werr != nil {
			out[i].Err = werr
			continue
		}
		id, ch, err := m.register()
		if err != nil {
			out[i].Err = err
			continue
		}
		sent := time.Now()
		if _, err := fmt.Fprintf(m.w, "REQ %d %s\n", id, line); err != nil {
			werr = err
			out[i].Err = err
			continue
		}
		pend[i] = inflight{ch: ch, writes: writes, sent: sent}
	}
	if werr == nil {
		werr = m.w.Flush()
	}
	m.wmu.Unlock()
	if werr != nil {
		// Registered-but-unsent (or torn) requests resolve through the
		// failure path: fail wakes every await below.
		m.fail(fmt.Errorf("client: write failed: %w", werr))
	}

	for i := range pend {
		if pend[i].ch == nil {
			continue
		}
		r, err := m.await(pend[i].ch)
		if err != nil {
			out[i].Err = err
			continue
		}
		out[i].Elapsed = r.at.Sub(pend[i].sent)
		body, err := parse(r.body)
		if err != nil {
			out[i].Err = err
			continue
		}
		body, out[i].Trace = cutTrace(body)
		out[i].Results, out[i].Err = parseUpdateResults(body, pend[i].writes)
	}
	return out
}
