// Package client is the Go client for the sccserve wire protocol
// (internal/server): a blocking, connection-per-client API mirroring the
// protocol verbs. A Client is safe for concurrent use; requests are
// serialized on the single connection, so concurrent load wants one
// Client per goroutine.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrShed is returned when the server refuses a transaction at admission
// (value function past its zero-crossing, or evicted from a full queue).
var ErrShed = errors.New("client: transaction shed by admission control")

// Client is one protocol connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a sccserve instance.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		r:    bufio.NewReader(conn),
		w:    bufio.NewWriter(conn),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// do sends one request line and reads one response line. It satisfies the
// doer interface shared with Mux, so both transports reuse the same verb
// implementations.
func (c *Client) do(line string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.WriteString(line + "\n"); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(resp), nil
}

// doer abstracts one request/response exchange: Client performs a
// blocking round trip, Mux a pipelined one.
type doer interface {
	do(line string) (string, error)
}

// parse splits a response into its kind and payload, surfacing protocol
// errors and sheds as Go errors.
func parse(resp string) (string, error) {
	switch {
	case resp == "SHED":
		return "", ErrShed
	case strings.HasPrefix(resp, "ERR"):
		return "", errors.New("client: server error: " + strings.TrimSpace(strings.TrimPrefix(resp, "ERR")))
	case resp == "OK":
		return "", nil
	case strings.HasPrefix(resp, "OK "):
		return resp[3:], nil
	case resp == "NIL":
		return "", nil
	default:
		return "", fmt.Errorf("client: malformed response %q", resp)
	}
}

func checkKey(key string) error {
	if key == "" || strings.ContainsAny(key, " :\n") {
		return fmt.Errorf("client: invalid key %q", key)
	}
	return nil
}

// Ping checks liveness.
func (c *Client) Ping() error { return ping(c) }

// Get reads a committed value; ok is false for a missing key.
func (c *Client) Get(key string) (n int64, ok bool, err error) { return get(c, key) }

// Put sets key to n.
func (c *Client) Put(key string, n int64) error { return put(c, key, n) }

// Add atomically adds delta to key and returns the new value.
func (c *Client) Add(key string, delta int64) (int64, error) { return add(c, key, delta) }

// Sum returns the total of the given keys as one consistent cross-shard
// snapshot.
func (c *Client) Sum(keys ...string) (int64, error) { return sum(c, keys) }

func ping(d doer) error {
	resp, err := d.do("PING")
	if err != nil {
		return err
	}
	_, err = parse(resp)
	return err
}

func get(d doer, key string) (int64, bool, error) {
	if err := checkKey(key); err != nil {
		return 0, false, err
	}
	resp, err := d.do("GET " + key)
	if err != nil {
		return 0, false, err
	}
	if resp == "NIL" {
		return 0, false, nil
	}
	body, err := parse(resp)
	if err != nil {
		return 0, false, err
	}
	n, err := strconv.ParseInt(body, 10, 64)
	return n, err == nil, err
}

func put(d doer, key string, n int64) error {
	if err := checkKey(key); err != nil {
		return err
	}
	resp, err := d.do(fmt.Sprintf("PUT %s %d", key, n))
	if err != nil {
		return err
	}
	_, err = parse(resp)
	return err
}

func add(d doer, key string, delta int64) (int64, error) {
	if err := checkKey(key); err != nil {
		return 0, err
	}
	resp, err := d.do(fmt.Sprintf("ADD %s %d", key, delta))
	if err != nil {
		return 0, err
	}
	body, err := parse(resp)
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(body, 10, 64)
}

func sum(d doer, keys []string) (int64, error) {
	for _, k := range keys {
		if err := checkKey(k); err != nil {
			return 0, err
		}
	}
	resp, err := d.do("SUM " + strings.Join(keys, " "))
	if err != nil {
		return 0, err
	}
	body, err := parse(resp)
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(body, 10, 64)
}

// Op is one operation of a transactional update: a read dependency
// (Write false) or a read-modify-write adding Delta (Write true).
type Op struct {
	Key   string
	Delta int64
	Write bool
}

// TxOpts carries the request's Def. 2 value function for admission
// ordering and load shedding. The zero value means "worth 1, no deadline".
type TxOpts struct {
	Value    float64       // value added if committed by the deadline
	Deadline time.Duration // relative soft deadline (0 = none)
	Gradient float64       // value lost per second past it (0 = V/Deadline)
}

// updateLine renders ops and opts as one UPD request line, returning the
// number of write results the response must carry.
func updateLine(ops []Op, opts TxOpts) (line string, writes int, err error) {
	if len(ops) == 0 {
		return "", 0, errors.New("client: no ops")
	}
	var b strings.Builder
	b.WriteString("UPD")
	if opts.Value > 0 {
		fmt.Fprintf(&b, " v=%g", opts.Value)
	}
	if opts.Deadline > 0 {
		fmt.Fprintf(&b, " dl=%g", float64(opts.Deadline.Microseconds())/1000)
	}
	if opts.Gradient > 0 {
		fmt.Fprintf(&b, " grad=%g", opts.Gradient)
	}
	for _, o := range ops {
		if err := checkKey(o.Key); err != nil {
			return "", 0, err
		}
		if o.Write {
			fmt.Fprintf(&b, " w:%s:%d", o.Key, o.Delta)
			writes++
		} else {
			b.WriteString(" r:" + o.Key)
		}
	}
	return b.String(), writes, nil
}

// parseUpdateResults decodes the body of a successful UPD response into
// the new value of each write op, in op order.
func parseUpdateResults(body string, writes int) ([]int64, error) {
	if body == "" {
		if writes == 0 {
			return nil, nil
		}
		return nil, fmt.Errorf("client: expected %d results, got none", writes)
	}
	fields := strings.Fields(body)
	if len(fields) != writes {
		return nil, fmt.Errorf("client: expected %d results, got %d", writes, len(fields))
	}
	out := make([]int64, len(fields))
	for i, f := range fields {
		n, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("client: malformed result %q", f)
		}
		out[i] = n
	}
	return out, nil
}

// Update executes ops as one serializable transaction and returns the new
// value of each write op, in op order.
func (c *Client) Update(ops []Op, opts TxOpts) ([]int64, error) { return update(c, ops, opts) }

func update(d doer, ops []Op, opts TxOpts) ([]int64, error) {
	line, writes, err := updateLine(ops, opts)
	if err != nil {
		return nil, err
	}
	resp, err := d.do(line)
	if err != nil {
		return nil, err
	}
	body, err := parse(resp)
	if err != nil {
		return nil, err
	}
	return parseUpdateResults(body, writes)
}

// Stats fetches the server's counters as a string map.
func (c *Client) Stats() (map[string]string, error) { return statsCall(c) }

func statsCall(d doer) (map[string]string, error) {
	resp, err := d.do("STATS")
	if err != nil {
		return nil, err
	}
	body, err := parse(resp)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for _, f := range strings.Fields(body) {
		if i := strings.IndexByte(f, '='); i > 0 {
			out[f[:i]] = f[i+1:]
		}
	}
	return out, nil
}
