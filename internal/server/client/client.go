// Package client is the Go client for the sccserve wire protocol
// (internal/server): a blocking, connection-per-client API mirroring the
// protocol verbs. A Client is safe for concurrent use; requests are
// serialized on the single connection, so concurrent load wants one
// Client per goroutine.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/server/opts"
)

// ErrShed is returned when the server refuses a transaction at admission
// (value function past its zero-crossing, or evicted from a full queue),
// and when an interactive transaction session was reaped server-side.
var ErrShed = errors.New("client: transaction shed by admission control")

// NotPrimaryError is returned when a clustered node refuses a write (or a
// replication verb) because it is not the primary. Addr is the address the
// node believes is primary, or "" when it does not know one — e.g. a
// freshly fenced node mid-election. Callers that follow failover redirect
// to Addr (or re-discover the topology when it is empty).
type NotPrimaryError struct {
	Addr string
}

func (e *NotPrimaryError) Error() string {
	if e.Addr == "" {
		return "client: not primary (no known primary)"
	}
	return "client: not primary, redirect to " + e.Addr
}

// Client is one protocol connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	err  error // first round-trip failure; the stream is desynced after it
}

// Dial connects to a sccserve instance.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr)
}

// DialTimeout is Dial bounded by a connect timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return DialContext(ctx, addr)
}

// DialContext is Dial governed by ctx: the connect is abandoned when ctx
// expires or is canceled.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		r:    bufio.NewReader(conn),
		w:    bufio.NewWriter(conn),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// do sends one request line and reads one response line. Together with
// doCtx it satisfies the doer interface shared with Mux, so both
// transports reuse the same verb implementations.
func (c *Client) do(line string) (string, error) {
	return c.doCtx(context.Background(), line)
}

// doCtx is do with a per-call deadline and cancelation: ctx's deadline
// is applied to the connection for the round trip, and canceling ctx
// interrupts an in-flight one. A failed, timed-out, or canceled
// exchange leaves the request/response stream desynced (the reply may
// still arrive and would be mistaken for the next call's), so the first
// failure is sticky and every later call returns it.
func (c *Client) doCtx(ctx context.Context, line string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return "", c.err
	}
	if err := ctx.Err(); err != nil {
		return "", err
	}
	if done := ctx.Done(); done != nil {
		if dl, ok := ctx.Deadline(); ok {
			c.conn.SetDeadline(dl)
		}
		// Cancelation interrupts the blocking I/O by expiring the
		// connection deadline under it. The watcher is joined before the
		// deadline resets so a late fire cannot poison the next call.
		stop := make(chan struct{})
		watchDone := make(chan struct{})
		go func() {
			defer close(watchDone)
			select {
			case <-done:
				c.conn.SetDeadline(time.Unix(1, 0))
			case <-stop:
			}
		}()
		defer func() {
			close(stop)
			<-watchDone
			c.conn.SetDeadline(time.Time{})
		}()
	}
	resp, err := c.exchangeLocked(line)
	if err != nil {
		c.err = fmt.Errorf("client: connection desynced: %w", err)
		if ctxErr := ctx.Err(); ctxErr != nil {
			// Surface the caller's deadline/cancelation, not the
			// i/o-timeout artifact it was implemented with.
			return "", ctxErr
		}
		return "", err
	}
	return resp, nil
}

func (c *Client) exchangeLocked(line string) (string, error) {
	if _, err := c.w.WriteString(line + "\n"); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(resp), nil
}

// doer abstracts one request/response exchange: Client performs a
// blocking round trip, Mux a pipelined one. Every verb implementation is
// written against it once and served by both transports.
type doer interface {
	do(line string) (string, error)
	doCtx(ctx context.Context, line string) (string, error)
}

// parse splits a response into its kind and payload, surfacing protocol
// errors and sheds as Go errors.
func parse(resp string) (string, error) {
	switch {
	case resp == "SHED":
		return "", ErrShed
	case strings.HasPrefix(resp, "ERR not-primary"):
		addr := strings.TrimSpace(strings.TrimPrefix(resp, "ERR not-primary"))
		if addr == "-" {
			addr = ""
		}
		return "", &NotPrimaryError{Addr: addr}
	case strings.HasPrefix(resp, "ERR"):
		return "", errors.New("client: server error: " + strings.TrimSpace(strings.TrimPrefix(resp, "ERR")))
	case resp == "OK":
		return "", nil
	case strings.HasPrefix(resp, "OK "):
		return resp[3:], nil
	case resp == "NIL":
		return "", nil
	default:
		return "", fmt.Errorf("client: malformed response %q", resp)
	}
}

func checkKey(key string) error {
	if key == "" || strings.ContainsAny(key, " :\n") {
		return fmt.Errorf("client: invalid key %q", key)
	}
	return nil
}

// Ping checks liveness.
func (c *Client) Ping() error { return ping(c) }

// Get reads a committed value; ok is false for a missing key.
func (c *Client) Get(key string) (n int64, ok bool, err error) { return get(c, key) }

// Put sets key to n.
func (c *Client) Put(key string, n int64) error { return put(c, key, n) }

// Add atomically adds delta to key and returns the new value.
func (c *Client) Add(key string, delta int64) (int64, error) { return add(c, key, delta) }

// Sum returns the total of the given keys as one consistent cross-shard
// snapshot.
func (c *Client) Sum(keys ...string) (int64, error) { return sum(c, keys) }

func ping(d doer) error {
	resp, err := d.do("PING")
	if err != nil {
		return err
	}
	_, err = parse(resp)
	return err
}

func get(d doer, key string) (int64, bool, error) {
	if err := checkKey(key); err != nil {
		return 0, false, err
	}
	resp, err := d.do("GET " + key)
	if err != nil {
		return 0, false, err
	}
	if resp == "NIL" {
		return 0, false, nil
	}
	body, err := parse(resp)
	if err != nil {
		return 0, false, err
	}
	n, err := strconv.ParseInt(body, 10, 64)
	return n, err == nil, err
}

func put(d doer, key string, n int64) error {
	if err := checkKey(key); err != nil {
		return err
	}
	resp, err := d.do(fmt.Sprintf("PUT %s %d", key, n))
	if err != nil {
		return err
	}
	_, err = parse(resp)
	return err
}

func add(d doer, key string, delta int64) (int64, error) {
	if err := checkKey(key); err != nil {
		return 0, err
	}
	resp, err := d.do(fmt.Sprintf("ADD %s %d", key, delta))
	if err != nil {
		return 0, err
	}
	body, err := parse(resp)
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(body, 10, 64)
}

func sum(d doer, keys []string) (int64, error) {
	for _, k := range keys {
		if err := checkKey(k); err != nil {
			return 0, err
		}
	}
	resp, err := d.do("SUM " + strings.Join(keys, " "))
	if err != nil {
		return 0, err
	}
	body, err := parse(resp)
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(body, 10, 64)
}

// Op is one operation of a transactional update: a read dependency
// (Write false) or a read-modify-write adding Delta (Write true).
type Op struct {
	Key   string
	Delta int64
	Write bool
}

// TxOpts carries the request's Def. 2 value function for admission
// ordering and load shedding. The zero value means "worth 1, no deadline".
type TxOpts struct {
	Value    float64       // value added if committed by the deadline
	Deadline time.Duration // relative soft deadline (0 = none)
	Gradient float64       // value lost per second past it (0 = V/Deadline)
	// Family selects the post-deadline value shape (the vf= token): the
	// zero value is the linear decline; opts.FamilyCliff/Step/Renewal
	// choose the scenario matrix's soft-deadline families.
	Family opts.Family
	// Tenant attributes the request to a server-side admission value
	// budget (the tenant= token); empty means unattributed.
	Tenant string
	// Trace asks the server for a lifecycle trace: the verdict reply's
	// trace= token ("stage:ns,..." offsets from submit) is surfaced by
	// UpdateTraced and Txn.Trace.
	Trace bool
}

// wire renders the options through the shared codec (internal/server/opts)
// — the same encoder the server's parser is tested against.
func (o TxOpts) wire() opts.T {
	return opts.T{Value: o.Value, Deadline: o.Deadline, Gradient: o.Gradient,
		Family: o.Family, Tenant: o.Tenant, Trace: o.Trace}
}

// cutTrace splits a verdict reply body's trailing trace= token (present
// only when the request asked for one) from the result fields.
func cutTrace(body string) (rest, trace string) {
	i := strings.LastIndexByte(body, ' ')
	if tr, ok := strings.CutPrefix(body[i+1:], "trace="); ok {
		if i < 0 {
			return "", tr
		}
		return body[:i], tr
	}
	return body, ""
}

// withCtxDeadline maps a caller's context deadline onto the request's
// value function when no explicit deadline was given, so client- and
// server-side deadlines agree: the server sheds (or reaps) the work at
// the same moment the caller stops waiting for it.
func (o TxOpts) withCtxDeadline(ctx context.Context) TxOpts {
	if o.Deadline > 0 {
		return o
	}
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 {
			o.Deadline = rem
		}
	}
	return o
}

// updateLine renders ops and opts as one UPD request line, returning the
// number of write results the response must carry.
func updateLine(ops []Op, o TxOpts) (line string, writes int, err error) {
	if len(ops) == 0 {
		return "", 0, errors.New("client: no ops")
	}
	var b strings.Builder
	b.WriteString("UPD")
	o.wire().Encode(&b)
	for _, o := range ops {
		if err := checkKey(o.Key); err != nil {
			return "", 0, err
		}
		if o.Write {
			fmt.Fprintf(&b, " w:%s:%d", o.Key, o.Delta)
			writes++
		} else {
			b.WriteString(" r:" + o.Key)
		}
	}
	return b.String(), writes, nil
}

// parseUpdateResults decodes the body of a successful UPD response into
// the new value of each write op, in op order.
func parseUpdateResults(body string, writes int) ([]int64, error) {
	if body == "" {
		if writes == 0 {
			return nil, nil
		}
		return nil, fmt.Errorf("client: expected %d results, got none", writes)
	}
	fields := strings.Fields(body)
	if len(fields) != writes {
		return nil, fmt.Errorf("client: expected %d results, got %d", writes, len(fields))
	}
	out := make([]int64, len(fields))
	for i, f := range fields {
		n, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("client: malformed result %q", f)
		}
		out[i] = n
	}
	return out, nil
}

// Update executes ops as one serializable transaction and returns the new
// value of each write op, in op order.
func (c *Client) Update(ops []Op, opts TxOpts) ([]int64, error) {
	return update(context.Background(), c, ops, opts)
}

// UpdateContext is Update with a per-call deadline: the context's
// deadline bounds the round trip client-side and, when opts carries no
// explicit deadline, becomes the request's dl= so the server stops
// spending capacity on it at the same moment the caller stops waiting.
func (c *Client) UpdateContext(ctx context.Context, ops []Op, opts TxOpts) ([]int64, error) {
	return update(ctx, c, ops, opts)
}

func update(ctx context.Context, d doer, ops []Op, opts TxOpts) ([]int64, error) {
	res, _, err := updateTraced(ctx, d, ops, opts)
	return res, err
}

func updateTraced(ctx context.Context, d doer, ops []Op, opts TxOpts) ([]int64, string, error) {
	line, writes, err := updateLine(ops, opts.withCtxDeadline(ctx))
	if err != nil {
		return nil, "", err
	}
	resp, err := d.doCtx(ctx, line)
	if err != nil {
		return nil, "", err
	}
	body, err := parse(resp)
	if err != nil {
		return nil, "", err
	}
	body, trace := cutTrace(body)
	res, err := parseUpdateResults(body, writes)
	return res, trace, err
}

// UpdateTraced is Update with lifecycle tracing forced on: it also
// returns the server's trace= stage timeline ("stage:ns,..." offsets
// from submit; see docs/PROTOCOL.md, "Lifecycle traces").
func (c *Client) UpdateTraced(ops []Op, opts TxOpts) ([]int64, string, error) {
	opts.Trace = true
	return updateTraced(context.Background(), c, ops, opts)
}

// Stats fetches the server's counters as a string map.
func (c *Client) Stats() (map[string]string, error) { return statsCall(c) }

// Metrics fetches the server's telemetry registry as Prometheus text
// exposition (the METRICS verb: "OK <nlines>" then that many exposition
// lines). The verb is bare-framing only, so it exists on Client, not Mux.
func (c *Client) Metrics() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return "", c.err
	}
	resp, err := c.exchangeLocked("METRICS")
	if err != nil {
		c.err = fmt.Errorf("client: connection desynced: %w", err)
		return "", err
	}
	body, err := parse(resp)
	if err != nil {
		return "", err
	}
	n, err := strconv.Atoi(body)
	if err != nil || n < 0 {
		return "", fmt.Errorf("client: malformed METRICS header %q", resp)
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		line, err := c.r.ReadString('\n')
		if err != nil {
			c.err = fmt.Errorf("client: connection desynced: %w", err)
			return "", err
		}
		b.WriteString(line)
	}
	return b.String(), nil
}

// Events fetches up to max flight-recorder events (the EVENTS verb:
// "OK <nlines>" then that many event lines, oldest first; max <= 0 asks
// for the server's full retained window). Like METRICS it is
// bare-framing only, so it exists on Client, not Mux.
func (c *Client) Events(max int) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil, c.err
	}
	req := "EVENTS"
	if max > 0 {
		req += " " + strconv.Itoa(max)
	}
	resp, err := c.exchangeLocked(req)
	if err != nil {
		c.err = fmt.Errorf("client: connection desynced: %w", err)
		return nil, err
	}
	body, err := parse(resp)
	if err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(body)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("client: malformed EVENTS header %q", resp)
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		line, err := c.r.ReadString('\n')
		if err != nil {
			c.err = fmt.Errorf("client: connection desynced: %w", err)
			return nil, err
		}
		out = append(out, strings.TrimSpace(line))
	}
	return out, nil
}

func statsCall(d doer) (map[string]string, error) {
	resp, err := d.do("STATS")
	if err != nil {
		return nil, err
	}
	body, err := parse(resp)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for _, f := range strings.Fields(body) {
		if i := strings.IndexByte(f, '='); i > 0 {
			out[f[:i]] = f[i+1:]
		}
	}
	return out, nil
}
