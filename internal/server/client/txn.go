// Interactive transactions over the TXN wire verbs. A Txn is one
// server-side session: operations issued through it execute inside an
// open transaction on the server — with the engine's SCC speculation
// live between round trips — and take effect atomically at Commit.
// Client.Do / Mux.Do wrap the begin/run/commit cycle in a retry loop
// that mirrors engine.Store.Update, so embedded-engine and network
// callers share one API shape:
//
//	err := c.Do(client.TxOpts{Value: 5, Deadline: time.Second}, func(tx *client.Txn) error {
//	        bal, err := tx.Get("acct")
//	        if err != nil {
//	                return err
//	        }
//	        if bal < 10 {
//	                return errors.New("insufficient")
//	        }
//	        _, err = tx.Add("acct", -10)
//	        return err
//	})
//
// Mid-transaction read results are SPECULATIVE: under SCC the committed
// execution may have observed fresher values than the ones delivered
// while the transaction was open (a promoted shadow re-reads). Writes
// are deltas or absolute sets, so replays are value-safe; Commit's
// returned results are the committed execution's. Like Store.Update
// closures, a Do function may run several times and must not rely on
// side effects of a run that did not commit.
package client

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrConflict is returned by Txn.Commit (and retried by Do) when the
// server gave up on the transaction under contention — its attempt
// budget was exhausted. The transaction did not commit; re-running it is
// the correct response.
var ErrConflict = errors.New("client: transaction conflict")

// ErrTxnFinished is returned by operations on a Txn after Commit or
// Abort was called on it.
var ErrTxnFinished = errors.New("client: transaction already finished")

// Txn is an open interactive transaction session. A Txn is not safe for
// concurrent use; pipelining across transactions comes from running many
// Txns over one Mux, not from racing one Txn.
type Txn struct {
	d     doer
	ctx   context.Context
	id    string
	fin   bool
	trace string
}

// ID returns the server-assigned session id.
func (t *Txn) ID() string { return t.id }

// Trace returns the lifecycle trace the commit reply carried ("" unless
// the session was begun with TxOpts.Trace and committed): "stage:ns"
// pairs, comma-separated, offsets from BEGIN.
func (t *Txn) Trace() string { return t.trace }

// Begin opens an interactive transaction session carrying opts' value
// function: it competes in the server's admission queue like any
// transaction and is reaped server-side once its value crosses zero.
func (c *Client) Begin(opts TxOpts) (*Txn, error) {
	return begin(context.Background(), c, opts)
}

// BeginContext is Begin with ctx governing every round trip of the
// session; ctx's deadline maps onto the session's dl= when opts carries
// no explicit deadline, so the server reaps the session at the same
// moment the caller stops waiting.
func (c *Client) BeginContext(ctx context.Context, opts TxOpts) (*Txn, error) {
	return begin(ctx, c, opts)
}

// Begin opens an interactive transaction session (see Client.Begin).
// Many Txns may run concurrently over one Mux: their TXN ops pipeline
// on the shared connection.
func (m *Mux) Begin(opts TxOpts) (*Txn, error) {
	return begin(context.Background(), m, opts)
}

// BeginContext is Begin with ctx governing the session (see
// Client.BeginContext).
func (m *Mux) BeginContext(ctx context.Context, opts TxOpts) (*Txn, error) {
	return begin(ctx, m, opts)
}

func begin(ctx context.Context, d doer, o TxOpts) (*Txn, error) {
	var b strings.Builder
	b.WriteString("TXN BEGIN")
	o.withCtxDeadline(ctx).wire().Encode(&b)
	resp, err := d.doCtx(ctx, b.String())
	if err != nil {
		return nil, err
	}
	body, err := parse(resp)
	if err != nil {
		return nil, err
	}
	if body == "" || strings.ContainsRune(body, ' ') {
		return nil, fmt.Errorf("client: malformed TXN BEGIN reply %q", resp)
	}
	return &Txn{d: d, ctx: ctx, id: body}, nil
}

// op issues one session verb and parses the single-integer reply.
func (t *Txn) op(line string) (int64, error) {
	if t.fin {
		return 0, ErrTxnFinished
	}
	resp, err := t.d.doCtx(t.ctx, line)
	if err != nil {
		return 0, err
	}
	body, err := parse(resp)
	if err != nil {
		return 0, err
	}
	if body == "" {
		return 0, nil
	}
	return strconv.ParseInt(body, 10, 64)
}

// Get reads key inside the transaction. Missing keys read as 0. The
// result is speculative until Commit (see the package comment).
func (t *Txn) Get(key string) (int64, error) {
	if err := checkKey(key); err != nil {
		return 0, err
	}
	return t.op("TXN R " + t.id + " " + key)
}

// Add read-modify-writes key by delta and returns the (speculative) new
// value; the committed value is in Commit's results.
func (t *Txn) Add(key string, delta int64) (int64, error) {
	if err := checkKey(key); err != nil {
		return 0, err
	}
	return t.op(fmt.Sprintf("TXN W %s %s %d", t.id, key, delta))
}

// Set blind-writes key to n (no read dependency — it never conflicts).
func (t *Txn) Set(key string, n int64) error {
	if err := checkKey(key); err != nil {
		return err
	}
	_, err := t.op(fmt.Sprintf("TXN W %s %s =%d", t.id, key, n))
	return err
}

// Commit finishes the transaction and returns the committed execution's
// write results, in op order. A contention give-up surfaces as
// ErrConflict (wrapped); the transaction did not commit and may be
// retried from Begin — which is exactly what Do automates.
func (t *Txn) Commit() ([]int64, error) {
	if t.fin {
		return nil, ErrTxnFinished
	}
	t.fin = true
	resp, err := t.d.doCtx(t.ctx, "TXN COMMIT "+t.id)
	if err != nil {
		return nil, err
	}
	if msg, ok := strings.CutPrefix(resp, "ERR conflict: "); ok {
		return nil, fmt.Errorf("%w: %s", ErrConflict, msg)
	}
	body, err := parse(resp)
	if err != nil {
		return nil, err
	}
	body, t.trace = cutTrace(body)
	if body == "" {
		return nil, nil
	}
	fields := strings.Fields(body)
	out := make([]int64, len(fields))
	for i, f := range fields {
		n, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("client: malformed commit result %q", f)
		}
		out[i] = n
	}
	return out, nil
}

// Abort discards the transaction.
func (t *Txn) Abort() error {
	if t.fin {
		return ErrTxnFinished
	}
	t.fin = true
	resp, err := t.d.doCtx(t.ctx, "TXN ABORT "+t.id)
	if err != nil {
		return err
	}
	_, err = parse(resp)
	return err
}

// maxDoAttempts bounds Do's begin/run/commit retries on ErrConflict.
const maxDoAttempts = 4

// Do runs fn inside an interactive transaction and commits it, retrying
// the whole cycle on contention give-ups — the network mirror of
// engine.Store.Update. fn may therefore run several times: like an
// engine closure it must tolerate re-execution and must not rely on the
// side effects of a run that did not commit. A non-conflict error from
// fn aborts the transaction and is returned as-is; ErrShed is terminal
// (the work's value is gone — retrying cannot restore it).
func (c *Client) Do(opts TxOpts, fn func(*Txn) error) error {
	return doTxn(context.Background(), c, opts, fn)
}

// DoContext is Do governed by ctx (deadline mapping as in BeginContext).
func (c *Client) DoContext(ctx context.Context, opts TxOpts, fn func(*Txn) error) error {
	return doTxn(ctx, c, opts, fn)
}

// Do runs fn inside an interactive transaction over the pipelined
// transport (see Client.Do).
func (m *Mux) Do(opts TxOpts, fn func(*Txn) error) error {
	return doTxn(context.Background(), m, opts, fn)
}

// DoContext is Do governed by ctx (see Client.DoContext).
func (m *Mux) DoContext(ctx context.Context, opts TxOpts, fn func(*Txn) error) error {
	return doTxn(ctx, m, opts, fn)
}

func doTxn(ctx context.Context, d doer, o TxOpts, fn func(*Txn) error) error {
	var last error
	for attempt := 0; attempt < maxDoAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		tx, err := begin(ctx, d, o)
		if err != nil {
			return err
		}
		if err := fn(tx); err != nil {
			if !tx.fin {
				tx.Abort() // best effort; the reaper covers a failed abort
			}
			if errors.Is(err, ErrConflict) {
				last = err
				continue
			}
			return err
		}
		if tx.fin {
			// fn committed or aborted explicitly; its verdict stands.
			return nil
		}
		if _, err := tx.Commit(); err != nil {
			if errors.Is(err, ErrConflict) {
				last = err
				continue
			}
			return err
		}
		return nil
	}
	return last
}
