package server

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/value"
)

func TestAdmissionFastPath(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 2})
	f := a.FnFor(1, 0, 0)
	if err := a.Acquire(f, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(f, 1); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Admitted != 2 || st.InFlight != 2 || st.Depth != 0 {
		t.Errorf("stats = %+v", st)
	}
	a.Release(time.Millisecond, 1)
	if st := a.Stats(); st.InFlight != 1 {
		t.Errorf("after release InFlight = %d", st.InFlight)
	}
}

func TestAdmissionShedsExpired(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1})
	// A value function already past its zero-crossing: deadline in the
	// past and a gradient that consumed the whole value.
	f := value.Fn{V: 1, Deadline: -10, Gradient: 1}
	if err := a.Acquire(f, 1); !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if st := a.Stats(); st.Shed != 1 {
		t.Errorf("shed = %d, want 1", st.Shed)
	}
}

func TestAdmissionOrdersByExpectedValue(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1})
	if err := a.Acquire(a.FnFor(1, 0, 0), 1); err != nil {
		t.Fatal(err)
	}

	// Two waiters: low value enqueued first, high value second.
	type result struct {
		name string
		err  error
	}
	results := make(chan result, 2)
	var wg sync.WaitGroup
	start := func(name string, v float64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := a.Acquire(a.FnFor(v, 10, 0), 1)
			results <- result{name, err}
			if err == nil {
				a.Release(time.Millisecond, 1)
			}
		}()
	}
	start("low", 1)
	// Let "low" reach the queue first.
	waitDepth(t, a, 1)
	start("high", 100)
	waitDepth(t, a, 2)

	a.Release(time.Millisecond, 1)
	first := <-results
	if first.err != nil {
		t.Fatal(first.err)
	}
	if first.name != "high" {
		t.Errorf("dispatched %q first, want the high-value waiter", first.name)
	}
	second := <-results
	if second.err != nil {
		t.Fatal(second.err)
	}
	wg.Wait()
}

func TestAdmissionQueueOverflowEvictsLowestValue(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 1})
	if err := a.Acquire(a.FnFor(1, 0, 0), 1); err != nil {
		t.Fatal(err)
	}
	lowDone := make(chan error, 1)
	go func() { lowDone <- a.Acquire(a.FnFor(1, 10, 0), 1) }()
	waitDepth(t, a, 1)
	// Queue is full; a higher-value arrival evicts the parked low-value
	// waiter.
	highDone := make(chan error, 1)
	go func() { highDone <- a.Acquire(a.FnFor(100, 10, 0), 1) }()
	if err := <-lowDone; !errors.Is(err, ErrShed) {
		t.Fatalf("low waiter: err = %v, want ErrShed", err)
	}
	a.Release(time.Millisecond, 1)
	if err := <-highDone; err != nil {
		t.Fatalf("high waiter: %v", err)
	}
}

func TestReadmitShedsExpired(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 2})
	f := a.FnFor(1, 0, 0)
	if err := a.Acquire(f, 1); err != nil {
		t.Fatal(err)
	}
	// A cross-shard retry whose value function has crossed zero: the
	// slot must come back even though the caller is refused.
	expired := value.Fn{V: 1, Deadline: -10, Gradient: 1}
	if err := a.Readmit(expired, 1); !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if st := a.Stats(); st.InFlight != 0 {
		t.Errorf("InFlight = %d after shed readmit, want 0 (slot surrendered)", st.InFlight)
	}
}

func TestReadmitKeepsLiveTransaction(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1})
	f := a.FnFor(5, 0, 0)
	if err := a.Acquire(f, 1); err != nil {
		t.Fatal(err)
	}
	// With the only slot held by the caller itself, Readmit must hand
	// the freed slot straight back — no deadlock, still in flight.
	if err := a.Readmit(f, 1); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.InFlight != 1 {
		t.Errorf("InFlight = %d after readmit, want 1", st.InFlight)
	}
	a.Release(time.Millisecond, 1)
}

func TestReadmitCompetesByExpectedValue(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1})
	if err := a.Acquire(a.FnFor(10, 10, 0), 1); err != nil {
		t.Fatal(err)
	}
	lowDone := make(chan error, 1)
	go func() { lowDone <- a.Acquire(a.FnFor(1, 10, 0), 1) }()
	waitDepth(t, a, 1)

	// The retrying transaction outvalues the parked waiter, so it must
	// win its own freed slot in the same sweep — not hand it to the
	// low-value waiter and queue behind it.
	if err := a.Readmit(a.FnFor(100, 10, 0), 1); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-lowDone:
		t.Fatalf("low-value waiter was dispatched over the high-value readmit (err=%v)", err)
	default:
	}
	a.Release(time.Millisecond, 1)
	if err := <-lowDone; err != nil {
		t.Fatal(err)
	}
	a.Release(time.Millisecond, 1)
}

func waitDepth(t *testing.T, a *Admission, depth int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().Depth < depth {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d", depth)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionOpTimeLearning(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1, InitOpTime: 1e-3})
	for i := 0; i < 200; i++ {
		if err := a.Acquire(a.FnFor(1, 0, 0), 4); err != nil {
			t.Fatal(err)
		}
		a.Release(8*time.Millisecond, 4) // 2ms per op observed
	}
	got := a.Stats().OpTime
	if got < 1.5e-3 || got > 2.5e-3 {
		t.Errorf("op-time estimate = %v, want ~2ms", got)
	}
}

func TestTenantBudgetShedsHogAtDoor(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 64, TenantBudget: 10})
	// Two admits of value 5 fill the hog's 10/sec budget exactly.
	for i := 0; i < 2; i++ {
		if err := a.AcquireTenant(a.FnFor(5, 10, 0), 1, "hog"); err != nil {
			t.Fatal(err)
		}
	}
	err := a.AcquireTenant(a.FnFor(5, 10, 0), 1, "hog")
	if !errors.Is(err, ErrTenantShed) {
		t.Fatalf("over-budget acquire = %v, want ErrTenantShed", err)
	}
	if !errors.Is(err, ErrShed) {
		t.Fatal("ErrTenantShed must wrap ErrShed")
	}
	// A light tenant and untagged requests are unaffected.
	if err := a.AcquireTenant(a.FnFor(5, 10, 0), 1, "light"); err != nil {
		t.Fatalf("light tenant shed alongside the hog: %v", err)
	}
	if err := a.Acquire(a.FnFor(5, 10, 0), 1); err != nil {
		t.Fatalf("untagged request budget-shed: %v", err)
	}
	st := a.Stats()
	if st.TenantShed != 1 || st.Shed != 1 {
		t.Errorf("stats = %+v, want TenantShed 1", st)
	}
	if st.Tenants != 2 {
		t.Errorf("tracked tenants = %d, want 2", st.Tenants)
	}
}

func TestTenantBudgetRollsOver(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 4, TenantBudget: 5, TenantWindow: 50 * time.Millisecond})
	if err := a.AcquireTenant(a.FnFor(5, 10, 0), 1, "t"); err != nil {
		t.Fatal(err)
	}
	if err := a.AcquireTenant(a.FnFor(5, 10, 0), 1, "t"); !errors.Is(err, ErrTenantShed) {
		t.Fatalf("budget not enforced: %v", err)
	}
	// The window rolls; the tenant earns fresh budget.
	time.Sleep(120 * time.Millisecond)
	if err := a.AcquireTenant(a.FnFor(5, 10, 0), 1, "t"); err != nil {
		t.Fatalf("budget did not roll over: %v", err)
	}
}

func TestTenantBudgetShedsParkedWaiters(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1, TenantBudget: 5})
	if err := a.Acquire(a.FnFor(1, 0, 0), 1); err != nil {
		t.Fatal(err)
	}
	// Two hog waiters park behind the held slot, both under budget at
	// enqueue time. The high-value one is granted first (and its charge
	// blows the budget); the next dispatch sweep must shed the other.
	lowDone := make(chan error, 1)
	go func() { lowDone <- a.AcquireTenant(a.FnFor(3, 10, 0), 1, "hog") }()
	waitDepth(t, a, 1)
	highDone := make(chan error, 1)
	go func() { highDone <- a.AcquireTenant(a.FnFor(100, 10, 0), 1, "hog") }()
	waitDepth(t, a, 2)

	a.Release(time.Millisecond, 1)
	if err := <-highDone; err != nil {
		t.Fatalf("high-value hog waiter = %v, want grant", err)
	}
	a.Release(time.Millisecond, 1)
	if err := <-lowDone; !errors.Is(err, ErrTenantShed) {
		t.Fatalf("parked over-budget waiter = %v, want ErrTenantShed", err)
	}
	if st := a.Stats(); st.TenantShed != 1 {
		t.Errorf("TenantShed = %d, want 1", st.TenantShed)
	}
}
