// Flight-recorder surfaces: EVENTS wire framing, the always-on feed
// (events appear without trace=1), and event-name doc conformance —
// every name the recorder can emit is normative in docs/PROTOCOL.md and
// every documented name is one the code can emit.
package server

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	obspkg "repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/server/client"
)

// canonicalEventNames is the full vocabulary the flight recorder emits:
// lifecycle stages (fed through traces) plus the durability, recovery,
// and replication events recorded directly.
func canonicalEventNames() []string {
	return []string{
		obspkg.StageEnqueue, obspkg.StageAdmit, obspkg.StageFork, obspkg.StagePark,
		obspkg.StageResume, obspkg.StagePromotion, obspkg.StageRestart, obspkg.StageDefer,
		obspkg.StageDeferred, obspkg.StageInstall, obspkg.StageCommit, obspkg.StageAbort,
		obspkg.StageShed, obspkg.StageReap,
		flight.EvFsync, flight.EvFsyncError, flight.EvWalError, flight.EvIntent,
		flight.EvDecision, flight.EvCheckpoint, flight.EvReconcileDiscard,
		flight.EvReplApply, flight.EvReplShed,
		flight.EvPromote, flight.EvDemote, flight.EvFenceReject,
	}
}

// TestEventsWireFraming exercises the verb raw: bare EVENTS answers
// OK <n> plus exactly n parsable event lines and leaves the connection
// usable; a cap caps it; bad args and REQ framing are refused.
func TestEventsWireFraming(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 2, FlightSample: 1})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	// Traffic with no trace=1 anywhere: the recorder is always on.
	for i := 0; i < 8; i++ {
		if _, err := c.Add(fmt.Sprintf("f%d", i), 1); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	readLine := func() string {
		t.Helper()
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimRight(line, "\r\n")
	}

	fmt.Fprintf(conn, "EVENTS\n")
	header := readLine()
	var n int
	if _, err := fmt.Sscanf(header, "OK %d", &n); err != nil || n <= 0 {
		t.Fatalf("EVENTS header = %q (always-on recorder should have events)", header)
	}
	for i := 0; i < n; i++ {
		line := readLine()
		fields := strings.Fields(line)
		if len(fields) != 7 || !strings.HasPrefix(fields[4], "txn=") ||
			!strings.HasPrefix(fields[5], "shard=") || !strings.HasPrefix(fields[6], "epoch=") {
			t.Fatalf("malformed event line %q", line)
		}
	}
	fmt.Fprintf(conn, "PING\n")
	if got := readLine(); got != "OK pong" {
		t.Fatalf("connection desynced after EVENTS: PING -> %q", got)
	}

	fmt.Fprintf(conn, "EVENTS 3\n")
	header = readLine()
	if _, err := fmt.Sscanf(header, "OK %d", &n); err != nil || n <= 0 || n > 3 {
		t.Fatalf("EVENTS 3 header = %q, want OK n with 0 < n <= 3", header)
	}
	for i := 0; i < n; i++ {
		readLine()
	}

	fmt.Fprintf(conn, "EVENTS nope\n")
	if got := readLine(); !strings.HasPrefix(got, "ERR ") {
		t.Fatalf("EVENTS nope -> %q, want ERR", got)
	}
	fmt.Fprintf(conn, "REQ 9 EVENTS\n")
	if got := readLine(); !strings.HasPrefix(got, "RES 9 ERR EVENTS requires bare framing") {
		t.Fatalf("REQ-framed EVENTS -> %q", got)
	}
}

// TestClientEvents drives the verb through the Go client and checks the
// events cover the request lifecycle without any trace= opt-in.
func TestClientEvents(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 2, FlightSample: 1})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Update([]client.Op{{Key: "ce", Delta: 1, Write: true}},
		client.TxOpts{Value: 1, Deadline: time.Minute}); err != nil {
		t.Fatal(err)
	}
	lines, err := c.Events(0)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	for _, stage := range []string{obspkg.StageAdmit, obspkg.StageInstall, obspkg.StageCommit} {
		if !strings.Contains(joined, " "+stage+" ") {
			t.Errorf("always-on event journal is missing stage %q:\n%s", stage, joined)
		}
	}
	capped, err := c.Events(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) > 2 {
		t.Errorf("Events(2) returned %d lines", len(capped))
	}
}

// TestFlightSampling pins the lifecycle sampling contract: with the
// default 1-in-N rate a single untraced request records no stage
// stamps, a trace=1 request always records regardless of its sample
// slot, and N untraced requests land at least one full lifecycle in
// the ring.
func TestFlightSampling(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 2})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	update := func(traced bool) {
		t.Helper()
		o := client.TxOpts{Value: 1, Deadline: time.Minute, Trace: traced}
		if _, err := c.Update([]client.Op{{Key: "fs", Delta: 1, Write: true}}, o); err != nil {
			t.Fatal(err)
		}
	}
	stageLines := func() int {
		t.Helper()
		lines, err := c.Events(0)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, l := range lines {
			if strings.Contains(l, " "+obspkg.StageCommit+" ") {
				n++
			}
		}
		return n
	}

	update(false) // request id 1: not on the default sample grid
	if got := stageLines(); got != 0 {
		t.Fatalf("single untraced request recorded %d commit stamps, want 0 (sampled out)", got)
	}
	update(true) // trace=1 bypasses sampling
	if got := stageLines(); got != 1 {
		t.Fatalf("traced request recorded %d commit stamps, want exactly 1", got)
	}
	for i := 0; i < defaultFlightSample; i++ {
		update(false) // one of these ids is ≡ 0 mod the sample rate
	}
	if got := stageLines(); got != 2 {
		t.Fatalf("%d untraced requests recorded %d commit stamps, want exactly 2 (one sampled)",
			defaultFlightSample, got)
	}
}

// TestEventNameConformance cross-checks the event vocabulary against
// docs/PROTOCOL.md's event-name table in both directions.
func TestEventNameConformance(t *testing.T) {
	doc, err := os.ReadFile("../../docs/PROTOCOL.md")
	if err != nil {
		t.Fatal(err)
	}
	_, section, found := strings.Cut(string(doc), "### Event names")
	if !found {
		t.Fatal("docs/PROTOCOL.md lost its Event names section")
	}
	if i := strings.Index(section, "\n#"); i >= 0 { // next heading of any level
		section = section[:i]
	}
	fieldNames := map[string]bool{"seq": true, "txn": true, "shard": true, "epoch": true}
	documented := make(map[string]bool)
	for _, m := range regexp.MustCompile("`([a-z][a-z0-9_]*)`").FindAllStringSubmatch(section, -1) {
		if !fieldNames[m[1]] { // event-line field names, not event names
			documented[m[1]] = true
		}
	}
	known := make(map[string]bool)
	for _, name := range canonicalEventNames() {
		known[name] = true
		if !documented[name] {
			t.Errorf("event %q can be emitted but is absent from the Event names table", name)
		}
	}
	for name := range documented {
		if !known[name] {
			t.Errorf("Event names table documents %q, which nothing emits", name)
		}
	}
}
