// Protocol conformance suite: drives the wire protocol over a raw TCP
// connection — every verb, malformed input, oversized lines, and the
// REQ/RES pipelined framing mixed with legacy framing on one connection.
package server

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strings"
	"testing"
	"time"
)

// rawConn is a line-oriented test connection.
type rawConn struct {
	t *testing.T
	c net.Conn
	r *bufio.Reader
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &rawConn{t: t, c: c, r: bufio.NewReader(c)}
}

func (rc *rawConn) send(line string) {
	rc.t.Helper()
	if _, err := fmt.Fprintf(rc.c, "%s\n", line); err != nil {
		rc.t.Fatal(err)
	}
}

func (rc *rawConn) recv() string {
	rc.t.Helper()
	rc.c.SetReadDeadline(time.Now().Add(10 * time.Second))
	resp, err := rc.r.ReadString('\n')
	if err != nil {
		rc.t.Fatalf("read: %v", err)
	}
	return strings.TrimSpace(resp)
}

// TestProtocolConformance covers every verb's happy path and the error
// surface, with exact responses where the protocol pins them down.
func TestProtocolConformance(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 4})
	rc := dialRaw(t, addr)

	exact := func(in, want string) {
		t.Helper()
		rc.send(in)
		if got := rc.recv(); got != want {
			t.Errorf("%-40q -> %q, want %q", in, got, want)
		}
	}
	prefix := func(in, want string) {
		t.Helper()
		rc.send(in)
		if got := rc.recv(); !strings.HasPrefix(got, want) {
			t.Errorf("%-40q -> %q, want prefix %q", in, got, want)
		}
	}

	// Happy paths, every verb.
	exact("PING", "OK pong")
	exact("ping", "OK pong") // verbs are case-insensitive
	exact("  PING  ", "OK pong")
	exact("GET nope", "NIL")
	exact("PUT a 5", "OK 5")
	exact("GET a", "OK 5")
	exact("ADD a 2", "OK 7")
	exact("ADD neg -3", "OK -3")
	exact("UPD w:a:3", "OK 10")
	exact("UPD r:a w:b:1", "OK 1")
	exact("UPD v=2 dl=50 grad=0.1 w:a:0", "OK 10")
	exact("UPD v=2 dl=50 w:a:0 w:b:0", "OK 10 1")
	exact("SUM a b", "OK 11")
	exact("SUM a a", "OK 20") // duplicate keys count twice
	prefix("STATS", "OK shards=4 ")

	// Malformed input: every arm of the error surface.
	for _, bad := range []string{
		"BOGUS",
		"GET",
		"GET a b",
		"PUT a",
		"PUT a notanumber",
		"PUT a 5 6",
		"ADD a",
		"ADD a x",
		"UPD",
		"UPD v=1",          // value but no ops
		"UPD v=x w:a:1",    // bad float
		"UPD v=NaN w:a:1",  // non-finite value
		"UPD v=+Inf w:a:1", // non-finite value
		"UPD dl=NaN w:a:1",
		"UPD grad=Inf w:a:1",
		"UPD r:",    // empty read key
		"UPD w:a",   // write without delta
		"UPD w::1",  // empty write key
		"UPD w:a:",  // empty delta
		"UPD w:a:x", // bad delta
		"UPD q:a:1", // unknown op tag
		"UPD hello", // bare token
		"SUM",
		// Keys containing ':' are illegal on every verb: they would make
		// w: ops and the replication LOG encoding ambiguous.
		"GET a:b",
		"PUT a:b 1",
		"ADD a:b 1",
		"SUM ok a:b",
		"UPD r:a:b",
		"UPD w:a:b:1",
	} {
		rc.send(bad)
		if got := rc.recv(); !strings.HasPrefix(got, "ERR") {
			t.Errorf("%-30q -> %q, want ERR...", bad, got)
		}
	}

	// The connection survived the entire error barrage.
	exact("PING", "OK pong")
}

// TestPipelinedFraming exercises REQ/RES framing: id echo (including
// non-numeric ids — the server treats ids as opaque tokens), concurrent
// dispatch, framing errors, and REQ nested inside REQ.
func TestPipelinedFraming(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 4})
	rc := dialRaw(t, addr)

	// A burst of pipelined requests sent without reading; responses are
	// correlated by id, order unspecified.
	rc.send("REQ 1 PUT p 10")
	rc.send("REQ 2 ADD q 4")
	rc.send("REQ zebra PING")
	rc.send("REQ 4 GET missing")
	got := map[string]bool{}
	for i := 0; i < 4; i++ {
		got[rc.recv()] = true
	}
	for _, want := range []string{
		"RES 1 OK 10",
		"RES 2 OK 4",
		"RES zebra OK pong",
		"RES 4 NIL",
	} {
		if !got[want] {
			t.Errorf("missing response %q in %v", want, keysOf(got))
		}
	}

	// Framing errors.
	rc.send("REQ")
	if resp := rc.recv(); !strings.HasPrefix(resp, "ERR usage: REQ") {
		t.Errorf("bare REQ -> %q", resp)
	}
	rc.send("REQ 9")
	if resp := rc.recv(); resp != "RES 9 ERR missing verb" {
		t.Errorf("REQ 9 -> %q", resp)
	}
	rc.send("REQ 10 NOSUCH x")
	if resp := rc.recv(); resp != "RES 10 ERR unknown verb NOSUCH" {
		t.Errorf("REQ 10 NOSUCH -> %q", resp)
	}
	// REQ does not nest: the inner REQ is an unknown verb, not a frame.
	rc.send("REQ 11 REQ 12 PING")
	if resp := rc.recv(); resp != "RES 11 ERR unknown verb REQ" {
		t.Errorf("nested REQ -> %q", resp)
	}
}

// TestMixedFraming interleaves legacy and pipelined requests on one
// connection: legacy responses stay in order among themselves, pipelined
// responses correlate by id, and the multiset of responses is exact.
func TestMixedFraming(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 4})
	rc := dialRaw(t, addr)

	rc.send("PUT m 1")
	rc.send("REQ a ADD m 1")
	rc.send("PING")
	rc.send("REQ b PING")
	rc.send("SUM m")

	var legacy []string
	got := map[string]bool{}
	for i := 0; i < 5; i++ {
		resp := rc.recv()
		if strings.HasPrefix(resp, "RES ") {
			got[resp] = true
		} else {
			legacy = append(legacy, resp)
		}
	}
	// Legacy responses, in order: PUT, PING, SUM. The ADD commits at
	// some point between its send and its RES, so SUM sees 1 or 2.
	if len(legacy) != 3 || legacy[0] != "OK 1" || legacy[1] != "OK pong" ||
		(legacy[2] != "OK 1" && legacy[2] != "OK 2") {
		t.Errorf("legacy responses = %v", legacy)
	}
	if !got["RES a OK 2"] {
		t.Errorf("pipelined responses = %v, want RES a OK 2", keysOf(got))
	}
	if !got["RES b OK pong"] {
		t.Errorf("pipelined responses = %v, want RES b OK pong", keysOf(got))
	}
}

// TestOversizedLine: a request line past the 1MB scanner bound draws a
// diagnostic and a close, and pipelined requests already in flight still
// get their responses first.
func TestOversizedLine(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 2})
	rc := dialRaw(t, addr)

	rc.send("REQ 1 PUT big 1")
	// The write error is ignored: the server stops reading mid-line once
	// the scanner bound trips and may close the connection while this
	// write is still draining.
	huge := strings.Repeat("x", 2<<20)
	rc.c.Write([]byte("GET " + huge + "\n"))

	sawDiag, sawRes := false, false
	for {
		rc.c.SetReadDeadline(time.Now().Add(10 * time.Second))
		resp, err := rc.r.ReadString('\n')
		if err != nil {
			break // server closed the connection after the diagnostic
		}
		switch strings.TrimSpace(resp) {
		case "ERR request line exceeds 1MB":
			sawDiag = true
		case "RES 1 OK 1":
			sawRes = true
		}
	}
	if !sawDiag {
		t.Error("no oversized-line diagnostic before close")
	}
	if !sawRes {
		t.Error("in-flight pipelined response lost on oversized-line close")
	}
}

func keysOf(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
