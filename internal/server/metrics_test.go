// Telemetry tests: exposition format, the value-conservation ledger,
// METRICS wire framing, lifecycle traces, doc conformance, and a
// concurrency stress run for the registry (raced by `make e2e`).
package server

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/durable"
	"repro/internal/engine"
	obspkg "repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/server/client"
)

// parseExposition maps every sample line of a Prometheus text exposition
// to its value, keyed by the full series name including labels.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed exposition value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestMetricsExposition drives real traffic and checks the exposition's
// shape plus the value-conservation invariant: submitted value equals
// realized value plus the sum of every lost row.
func TestMetricsExposition(t *testing.T) {
	srv, addr := startServer(t, Config{
		Shards:      4,
		Mode:        engine.SCC2S,
		GroupCommit: engine.GroupCommit{Enabled: true, Window: 100 * time.Microsecond, MaxBatch: 16},
	})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Committed one-shots, one of them traced.
	for i := 0; i < 20; i++ {
		ops := []client.Op{
			{Key: fmt.Sprintf("m%d", i%5), Delta: 1, Write: true},
			{Key: fmt.Sprintf("m%d", (i+1)%5), Delta: -1, Write: true},
		}
		opts := client.TxOpts{Value: 2, Deadline: time.Minute}
		if i == 0 {
			if _, tr, err := c.UpdateTraced(ops, opts); err != nil || tr == "" {
				t.Fatalf("UpdateTraced = trace %q, %v", tr, err)
			}
		} else if _, err := c.Update(ops, opts); err != nil {
			t.Fatal(err)
		}
	}
	// A client abort books its session value as client_abort loss.
	tx, err := c.Begin(client.TxOpts{Value: 3, Deadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Add("m0", 1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}

	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(text, "# HELP ") {
		t.Fatalf("exposition does not open with # HELP: %q", text[:min(len(text), 80)])
	}
	samples := parseExposition(t, text)

	// Histograms end at +Inf and carry _sum/_count.
	for _, h := range []string{"scc_request_seconds", "scc_stage_seconds"} {
		if !strings.Contains(text, h+`_bucket{`) {
			t.Errorf("%s has no bucket series", h)
		}
		if !strings.Contains(text, `le="+Inf"`) {
			t.Errorf("exposition has no +Inf bucket")
		}
	}
	infRe := regexp.MustCompile(`scc_request_seconds_bucket\{verb="upd",le="\+Inf"\} (\d+)`)
	cntRe := regexp.MustCompile(`scc_request_seconds_count\{verb="upd"\} (\d+)`)
	im, cm := infRe.FindStringSubmatch(text), cntRe.FindStringSubmatch(text)
	if im == nil || cm == nil || im[1] != cm[1] {
		t.Errorf("upd +Inf bucket and _count disagree: %v vs %v", im, cm)
	}

	if samples["scc_requests_total"] == 0 || samples["scc_commits_total"] == 0 {
		t.Errorf("derived counters flat: reqs=%v commits=%v",
			samples["scc_requests_total"], samples["scc_commits_total"])
	}
	if samples["scc_traces_total"] != 1 {
		t.Errorf("scc_traces_total = %v, want 1", samples["scc_traces_total"])
	}
	if n := samples[`scc_value_lost_total{reason="client_abort"}`]; n != 3 {
		t.Errorf("client_abort loss = %v, want the aborted session's value 3", n)
	}

	// Conservation: submitted == realized + sum(lost) on a quiescent server.
	var lost float64
	for series, v := range samples {
		if strings.HasPrefix(series, "scc_value_lost_total{") {
			lost += v
		}
	}
	sub, real := samples["scc_value_submitted_total"], samples["scc_value_realized_total"]
	if sub == 0 {
		t.Fatal("no value submitted")
	}
	if diff := math.Abs(sub - (real + lost)); diff > 1e-6*sub {
		t.Errorf("value leak: submitted %v != realized %v + lost %v (diff %v)", sub, real, lost, diff)
	}

	// STATS and METRICS sample the same counters.
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["commits"] != strconv.Itoa(int(samples["scc_commits_total"])) {
		t.Errorf("STATS commits=%s disagrees with scc_commits_total=%v", st["commits"], samples["scc_commits_total"])
	}
	_ = srv
}

// TestMetricsWireFraming exercises the verb's framing rules raw: bare
// METRICS answers OK <n> plus exactly n lines and leaves the connection
// usable; REQ-framed METRICS is refused.
func TestMetricsWireFraming(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 2})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	readLine := func() string {
		t.Helper()
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimRight(line, "\r\n")
	}

	fmt.Fprintf(conn, "METRICS\n")
	header := readLine()
	var n int
	if _, err := fmt.Sscanf(header, "OK %d", &n); err != nil || n <= 0 {
		t.Fatalf("METRICS header = %q", header)
	}
	last := ""
	for i := 0; i < n; i++ {
		last = readLine()
	}
	if !strings.HasPrefix(last, "scc_") && !strings.HasPrefix(last, "#") {
		t.Fatalf("last exposition line looks wrong: %q", last)
	}
	fmt.Fprintf(conn, "PING\n")
	if got := readLine(); got != "OK pong" {
		t.Fatalf("connection desynced after METRICS: PING -> %q", got)
	}
	fmt.Fprintf(conn, "REQ 7 METRICS\n")
	if got := readLine(); !strings.HasPrefix(got, "RES 7 ERR METRICS requires bare framing") {
		t.Fatalf("REQ-framed METRICS -> %q", got)
	}
}

// TestTraceLifecyclePromotion is the acceptance test for session
// tracing: the TestTxnSpeculationAcrossRoundTrips scenario run with
// trace=1 must return a timeline whose park precedes its promotion —
// the Blocking Rule visible from the client.
func TestTraceLifecyclePromotion(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 1, Mode: engine.SCC2S})
	a, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	tx, err := a.Begin(client.TxOpts{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Get("x"); err != nil {
		t.Fatal(err)
	}
	// B's conflicting commit forks a speculative shadow for A and parks
	// it at A's read (Write Rule + Blocking Rule).
	if _, err := b.Update([]client.Op{{Key: "x", Delta: 5, Write: true}}, client.TxOpts{}); err != nil {
		t.Fatal(err)
	}
	if n, err := tx.Add("x", 1); err != nil || n != 6 {
		t.Fatalf("Add(x,1) = %d, %v", n, err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	events := obspkg.ParseTrace(tx.Trace())
	if events == nil {
		t.Fatalf("commit reply carried no parsable trace (%q)", tx.Trace())
	}
	idx := func(stage string) int {
		for i, e := range events {
			if e.Stage == stage {
				return i
			}
		}
		return -1
	}
	for _, stage := range []string{obspkg.StageEnqueue, obspkg.StageAdmit, obspkg.StagePark,
		obspkg.StagePromotion, obspkg.StageInstall, obspkg.StageCommit} {
		if idx(stage) < 0 {
			t.Errorf("trace %q is missing stage %q", tx.Trace(), stage)
		}
	}
	if p, pr := idx(obspkg.StagePark), idx(obspkg.StagePromotion); p >= 0 && pr >= 0 && p > pr {
		t.Errorf("park after promotion in %q", tx.Trace())
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Errorf("trace offsets not monotone: %q", tx.Trace())
		}
	}
}

// TestMetricsConformance cross-checks the telemetry surface against
// docs/PROTOCOL.md in both directions: every registered metric family is
// documented, every documented family exists, every STATS key a server
// can emit is documented, and every documented STATS key is emitted by
// some server role.
func TestMetricsConformance(t *testing.T) {
	doc, err := os.ReadFile("../../docs/PROTOCOL.md")
	if err != nil {
		t.Fatal(err)
	}

	// The four server roles whose registries together cover every family.
	primary, _ := startServer(t, Config{Shards: 2, Repl: ReplOptions{Primary: true}})
	dsrv, _ := startServer(t, Config{Shards: 2, Durable: durable.Options{Dir: t.TempDir()}})
	gsrv, _ := startServer(t, Config{Shards: 2, Repl: ReplOptions{Gate: repl.NewLagGate(2, 50*time.Millisecond, 0)}})
	NewReplicaMetrics(gsrv.Metrics()) // the replica apply-path instruments
	cstate := cluster.NewState("127.0.0.1:0", nil)
	if err := cstate.BecomePrimary(1); err != nil {
		t.Fatal(err)
	}
	csrv, _ := startServer(t, Config{Shards: 2, Repl: ReplOptions{Primary: true, SyncAcks: true}, Cluster: cstate})

	registered := make(map[string]bool)
	for _, s := range []*Server{primary, dsrv, gsrv, csrv} {
		for _, name := range s.Metrics().Names() {
			registered[name] = true
		}
	}

	documented := make(map[string]bool)
	for _, m := range regexp.MustCompile(`scc_[a-z_]*[a-z]`).FindAllString(string(doc), -1) {
		documented[m] = true
	}
	for name := range registered {
		if !documented[name] {
			t.Errorf("metric family %s is registered but absent from docs/PROTOCOL.md", name)
		}
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("docs/PROTOCOL.md documents %s, which no server role registers", name)
		}
	}

	// STATS keys, both directions. The doc's key vocabulary is every
	// backticked snake_case token in the "## STATS keys" section.
	_, statsDoc, found := strings.Cut(string(doc), "## STATS keys")
	if !found {
		t.Fatal("docs/PROTOCOL.md lost its STATS keys section")
	}
	docKeys := make(map[string]bool)
	for _, m := range regexp.MustCompile("`([a-z][a-z0-9_]*)`").FindAllStringSubmatch(statsDoc, -1) {
		if m[1] == "sccserve" { // prose mention, not a key
			continue
		}
		docKeys[m[1]] = true
	}
	emitted := make(map[string]bool)
	for _, s := range []*Server{primary, dsrv, gsrv, csrv} {
		for _, kv := range strings.Fields(strings.TrimPrefix(s.statsLine(), "OK ")) {
			k, _, ok := strings.Cut(kv, "=")
			if !ok {
				t.Fatalf("malformed STATS token %q", kv)
			}
			emitted[k] = true
		}
	}
	for k := range emitted {
		if !docKeys[k] {
			t.Errorf("STATS emits %s, which docs/PROTOCOL.md does not document", k)
		}
	}
	for k := range docKeys {
		if !emitted[k] {
			t.Errorf("docs/PROTOCOL.md documents STATS key %s, which no server role emits", k)
		}
	}
}

// TestMetricsConcurrentStress hammers the registry from many
// connections — mixed verbs, traced updates, METRICS scrapes, direct
// expositions — so `make e2e` (-race -count=2) can catch unsynchronized
// instrument access.
func TestMetricsConcurrentStress(t *testing.T) {
	srv, addr := startServer(t, Config{
		Shards:      4,
		GroupCommit: engine.GroupCommit{Enabled: true, Window: 50 * time.Microsecond, MaxBatch: 8},
	})
	const workers, iters = 8, 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			key := fmt.Sprintf("s%d", w%3)
			for i := 0; i < iters; i++ {
				switch i % 5 {
				case 0:
					ops := []client.Op{{Key: key, Delta: 1, Write: true}}
					if i%2 == 0 {
						_, _, err = c.UpdateTraced(ops, client.TxOpts{Value: 1, Deadline: time.Minute})
					} else {
						_, err = c.Update(ops, client.TxOpts{})
					}
				case 1:
					_, err = c.Add(key, 1)
				case 2:
					_, _, err = c.Get(key)
				case 3:
					_, err = c.Stats()
				case 4:
					_, err = c.Metrics()
				}
				if err != nil {
					t.Errorf("worker %d op %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				srv.Metrics().Expose(io.Discard)
			}
		}
	}()
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	var buf strings.Builder
	srv.Metrics().Expose(&buf)
	samples := parseExposition(t, buf.String())
	if samples["scc_requests_total"] < workers*iters {
		t.Errorf("scc_requests_total = %v, want >= %d", samples["scc_requests_total"], workers*iters)
	}
}
