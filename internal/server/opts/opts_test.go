package opts

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestParseTokenRoundTrip(t *testing.T) {
	in := T{Value: 2.5, Deadline: 50 * time.Millisecond, Gradient: 0.125}
	var b strings.Builder
	in.Encode(&b)
	var out T
	for _, tok := range strings.Fields(b.String()) {
		ok, err := out.ParseToken(tok)
		if !ok || err != nil {
			t.Fatalf("ParseToken(%q) = %v, %v", tok, ok, err)
		}
	}
	if out.Value != in.Value || out.Deadline != in.Deadline || out.Gradient != in.Gradient {
		t.Fatalf("round trip %+v -> %q -> %+v", in, b.String(), out)
	}
}

func TestParseTokenRejectsNonFinite(t *testing.T) {
	for tok, want := range map[string]error{
		"v=NaN":     ErrBadValue,
		"v=+Inf":    ErrBadValue,
		"v=":        ErrBadValue,
		"v=x":       ErrBadValue,
		"dl=NaN":    ErrBadDeadline,
		"dl=1e309":  ErrBadDeadline,
		"dl=":       ErrBadDeadline,
		"grad=Inf":  ErrBadGradient,
		"grad=-Inf": ErrBadGradient,
		"grad=":     ErrBadGradient,
	} {
		var o T
		ok, err := o.ParseToken(tok)
		if !ok || err != want {
			t.Errorf("ParseToken(%q) = %v, %v; want true, %v", tok, ok, err, want)
		}
	}
}

func TestParseTokenClampsExtremeDeadlines(t *testing.T) {
	// A positive sub-nanosecond deadline stays a deadline (the float to
	// Duration conversion would truncate it to "none").
	var o T
	if ok, err := o.ParseToken("dl=0.0000001"); !ok || err != nil {
		t.Fatalf("ParseToken = %v, %v", ok, err)
	}
	if o.Deadline <= 0 {
		t.Fatalf("sub-ns deadline truncated to %v, want > 0", o.Deadline)
	}
	// A deadline past Duration's range saturates far-future instead of
	// overflowing negative.
	if ok, err := o.ParseToken("dl=1e15"); !ok || err != nil {
		t.Fatalf("ParseToken = %v, %v", ok, err)
	}
	if o.Deadline != math.MaxInt64 {
		t.Fatalf("huge deadline = %v, want saturation", o.Deadline)
	}
	// Negative stays negative: Fn treats it as "no deadline", matching
	// the historical float parser.
	if ok, err := o.ParseToken("dl=-5"); !ok || err != nil {
		t.Fatalf("ParseToken = %v, %v", ok, err)
	}
	if o.Deadline >= 0 {
		t.Fatalf("negative deadline = %v, want < 0", o.Deadline)
	}
}

func TestParseTokenIgnoresNonOptions(t *testing.T) {
	for _, tok := range []string{"r:a", "w:a:1", "value=3", "V=3", "", "vv=1"} {
		var o T
		if ok, err := o.ParseToken(tok); ok || err != nil {
			t.Errorf("ParseToken(%q) = %v, %v; want false, nil", tok, ok, err)
		}
	}
}

func TestEncodeTinyDeadlineNeverZero(t *testing.T) {
	var b strings.Builder
	T{Deadline: 500 * time.Nanosecond}.Encode(&b)
	if b.String() == " dl=0" || b.String() == "" {
		t.Fatalf("sub-microsecond deadline encoded as %q", b.String())
	}
	var o T
	for _, tok := range strings.Fields(b.String()) {
		if ok, err := o.ParseToken(tok); !ok || err != nil {
			t.Fatalf("ParseToken(%q) = %v, %v", tok, ok, err)
		}
	}
	if o.Deadline <= 0 {
		t.Fatalf("tiny deadline round-tripped to %v, want > 0", o.Deadline)
	}
}

func TestEncodeOmitsZeroFields(t *testing.T) {
	var b strings.Builder
	T{}.Encode(&b)
	if b.String() != "" {
		t.Fatalf("zero T encoded to %q, want empty", b.String())
	}
	b.Reset()
	T{Value: 3}.Encode(&b)
	if b.String() != " v=3" {
		t.Fatalf("T{Value:3} encoded to %q", b.String())
	}
}

func TestParseFamilyAndTenant(t *testing.T) {
	// Accepted families round-trip through Encode.
	for _, tok := range []string{"vf=cliff", "vf=step:0.5", "vf=step:0", "vf=step:1", "vf=renew:1", "vf=renew:16"} {
		var o T
		if ok, err := o.ParseToken(tok); !ok || err != nil {
			t.Fatalf("ParseToken(%q) = %v, %v", tok, ok, err)
		}
		var b strings.Builder
		o.Encode(&b)
		if got := strings.TrimPrefix(b.String(), " "); got != tok {
			t.Errorf("Encode(%q) = %q", tok, got)
		}
	}
	// vf=linear parses as the zero family and encodes to nothing.
	var o T
	if ok, err := o.ParseToken("vf=linear"); !ok || err != nil {
		t.Fatalf("vf=linear: %v, %v", ok, err)
	}
	if o.Family != (Family{}) {
		t.Fatalf("vf=linear parsed to %+v", o.Family)
	}
	// Rejections: unknown kinds, non-finite or non-monotone shapes,
	// stray arguments.
	for _, tok := range []string{
		"vf=", "vf=ramp", "vf=cliff:1", "vf=linear:0", "vf=step", "vf=step:",
		"vf=step:NaN", "vf=step:Inf", "vf=step:-0.1", "vf=step:1.1",
		"vf=renew", "vf=renew:", "vf=renew:0", "vf=renew:17", "vf=renew:1.5", "vf=renew:x",
	} {
		var o T
		if ok, err := o.ParseToken(tok); !ok || err != ErrBadFamily {
			t.Errorf("ParseToken(%q) = %v, %v; want true, ErrBadFamily", tok, ok, err)
		}
	}
	// Tenants: names are printable-ASCII tokens without ':' or spaces.
	for _, tok := range []string{"tenant=acme", "tenant=a", "tenant=Team-7_x.y"} {
		var o T
		if ok, err := o.ParseToken(tok); !ok || err != nil {
			t.Errorf("ParseToken(%q) = %v, %v", tok, ok, err)
		}
	}
	for _, tok := range []string{
		"tenant=", "tenant=a:b", "tenant=a b", "tenant=\x01", "tenant=" + strings.Repeat("x", 65),
	} {
		var o T
		if ok, err := o.ParseToken(tok); !ok || err != ErrBadTenant {
			t.Errorf("ParseToken(%q) = %v, %v; want true, ErrBadTenant", tok, ok, err)
		}
	}
}

func TestFnFamilies(t *testing.T) {
	const now = 100.0
	// Cliff: full value to the deadline, zero after.
	f := T{Value: 8, Deadline: time.Second, Family: Family{Kind: FamilyCliff}}.Fn(now)
	if f.At(now+1) != 8 || f.At(now+1.01) != 0 || f.ZeroCrossing() != now+1 {
		t.Fatalf("cliff Fn: At(dl)=%v At(dl+)=%v zc=%v", f.At(now+1), f.At(now+1.01), f.ZeroCrossing())
	}
	// Step: one relative-deadline window at the fraction.
	f = T{Value: 8, Deadline: time.Second, Family: Family{Kind: FamilyStep, StepFrac: 0.25}}.Fn(now)
	if f.At(now+1.5) != 2 || f.At(now+2.5) != 0 {
		t.Fatalf("step Fn: At(mid)=%v At(past)=%v", f.At(now+1.5), f.At(now+2.5))
	}
	if f.ZeroCrossing() != now+2 {
		t.Fatalf("step zero-crossing = %v, want %v", f.ZeroCrossing(), now+2)
	}
	// Renewal: halving windows of one relative deadline each.
	f = T{Value: 8, Deadline: time.Second, Family: Family{Kind: FamilyRenewal, Renewals: 2}}.Fn(now)
	if f.At(now+1.5) != 4 || f.At(now+2.5) != 2 || f.At(now+3.5) != 0 {
		t.Fatalf("renewal Fn: %v %v %v", f.At(now+1.5), f.At(now+2.5), f.At(now+3.5))
	}
	// A family without a deadline degrades to the no-deadline default.
	f = T{Value: 8, Family: Family{Kind: FamilyCliff}}.Fn(now)
	if f.At(now+3600) != 8 {
		t.Fatal("family without deadline must not decline")
	}
}

func TestFnDefaults(t *testing.T) {
	const now = 10.0
	// Zero options: worth 1, effectively no deadline.
	f := T{}.Fn(now)
	if f.V != 1 || f.Gradient != 0 {
		t.Fatalf("zero-opts Fn = %+v", f)
	}
	if f.At(now+3600) != 1 {
		t.Fatal("no-deadline value declined within an hour")
	}
	if !math.IsInf(f.ZeroCrossing(), 1) {
		t.Fatal("no-deadline value function has a finite zero-crossing")
	}
	// Deadline without gradient: 45-degrees convention, zero at 2*dl.
	f = T{Value: 4, Deadline: 2 * time.Second}.Fn(now)
	if f.Deadline != now+2 || f.Gradient != 2 {
		t.Fatalf("45-degree Fn = %+v", f)
	}
	if got := f.ZeroCrossing(); math.Abs(got-(now+4)) > 1e-9 {
		t.Fatalf("zero-crossing = %v, want %v", got, now+4)
	}
	// Explicit gradient wins.
	f = T{Value: 4, Deadline: time.Second, Gradient: 1}.Fn(now)
	if f.Gradient != 1 {
		t.Fatalf("explicit gradient Fn = %+v", f)
	}
}
