// Package opts is the canonical codec for the wire protocol's value-
// function options. Every valued verb — UPD, TXN BEGIN — carries the
// same tokens (`v=<f>` worth, `dl=<ms>` relative soft deadline,
// `grad=<g>` penalty gradient, paper Def. 2, plus `vf=<family>`
// post-deadline shape and `tenant=<name>` budget attribution), and
// before this package
// each of server.go, client.go, and the admission path grew its own
// parser or encoder for them. Now there is exactly one: the server
// parses tokens with ParseToken (the single place non-finite floats are
// rejected), the client renders them with Encode, and the admission
// queue and the replica lag gate both obtain the resulting value.Fn
// through Fn. docs/PROTOCOL.md specifies the tokens normatively.
package opts

import (
	"errors"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/value"
)

// Errors returned by ParseToken, one per malformed option token. The
// texts are part of the wire protocol: the server prefixes them with
// "ERR " verbatim, and the conformance suite pins them.
var (
	ErrBadValue    = errors.New("bad v=")
	ErrBadDeadline = errors.New("bad dl=")
	ErrBadGradient = errors.New("bad grad=")
	ErrBadFamily   = errors.New("bad vf=")
	ErrBadTenant   = errors.New("bad tenant=")
	ErrBadTrace    = errors.New("bad trace=")
)

// Value-family kinds for Family.Kind, the vf= token's first field.
const (
	FamilyLinear  = "linear"
	FamilyCliff   = "cliff"
	FamilyStep    = "step"
	FamilyRenewal = "renew"
)

// Family selects the post-deadline shape of a request's value function
// (the vf= token): "" or FamilyLinear is the Def. 2 linear decline,
// FamilyCliff drops to zero at the deadline, FamilyStep keeps StepFrac
// of the value for one relative deadline then drops to zero, and
// FamilyRenewal halves the value each relative deadline for Renewals
// windows. ParseFamily is the single place shapes are validated: every
// accepted family is monotone non-increasing past the deadline.
type Family struct {
	Kind     string
	StepFrac float64 // FamilyStep: fraction of the value retained, in [0, 1]
	Renewals int     // FamilyRenewal: number of half-value windows, in 1..16
}

// maxRenewals bounds the renewal chain: 2^-17 of the value is noise, and
// an unbounded n would let a client stretch its shed horizon (Renewals *
// relative deadline) arbitrarily far.
const maxRenewals = 16

// ParseFamily parses a vf= token payload ("linear", "cliff",
// "step:<frac>", "renew:<n>"). It is the one place value-function shapes
// are validated — non-finite fields and shapes that would not be
// monotone non-increasing after the deadline (step fractions above 1,
// renewal counts outside 1..16) are rejected with ErrBadFamily.
func ParseFamily(s string) (Family, error) {
	kind, arg, hasArg := strings.Cut(s, ":")
	switch kind {
	case FamilyLinear:
		if hasArg {
			return Family{}, ErrBadFamily
		}
		return Family{}, nil
	case FamilyCliff:
		if hasArg {
			return Family{}, ErrBadFamily
		}
		return Family{Kind: FamilyCliff}, nil
	case FamilyStep:
		frac, err := parseFinite(arg)
		if !hasArg || err != nil || frac < 0 || frac > 1 {
			return Family{}, ErrBadFamily
		}
		return Family{Kind: FamilyStep, StepFrac: frac}, nil
	case FamilyRenewal:
		n, err := strconv.Atoi(arg)
		if !hasArg || err != nil || n < 1 || n > maxRenewals {
			return Family{}, ErrBadFamily
		}
		return Family{Kind: FamilyRenewal, Renewals: n}, nil
	}
	return Family{}, ErrBadFamily
}

// maxTenantLen bounds the tenant= token; tenant names index server-side
// budget meters, so an unbounded name would be an unbounded-cardinality
// map key chosen by the client. (The meter map is still client-
// influenced; the budget sweeper discards idle meters.)
const maxTenantLen = 64

// ValidTenant reports whether s is a well-formed tenant name: non-empty,
// at most 64 bytes, printable ASCII with no space (token-splitting) and
// no ':' (reserved, mirroring the key syntax).
func ValidTenant(s string) bool {
	if len(s) == 0 || len(s) > maxTenantLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		if c := s[i]; c <= ' ' || c > '~' || c == ':' {
			return false
		}
	}
	return true
}

// T carries one request's value-function options in client-facing units:
// worth if committed by the deadline, the relative soft deadline, and
// the value lost per second past it. The zero value means "worth 1, no
// deadline" (the protocol's defaults, applied by Fn).
type T struct {
	Value    float64
	Deadline time.Duration
	Gradient float64
	// Family is the vf= post-deadline shape; the zero value is the
	// linear decline.
	Family Family
	// Tenant attributes the request to a named tenant for per-tenant
	// admission value budgets; empty means unattributed.
	Tenant string
	// Trace requests a lifecycle trace: the final verdict reply carries a
	// trace= token with the transaction's stage timeline (docs/PROTOCOL.md,
	// "Lifecycle traces").
	Trace bool
}

// ParseToken consumes one option token into o. It reports whether tok
// was an option token at all (v=/dl=/grad=/vf=/tenant=/trace= prefixed);
// a recognized token that fails to parse — including any non-finite
// float and any non-monotone-after-deadline shape — returns the matching
// ErrBad* error. This is the only place the protocol validates
// value-function options.
func (o *T) ParseToken(tok string) (bool, error) {
	switch {
	case strings.HasPrefix(tok, "v="):
		f, err := parseFinite(tok[2:])
		if err != nil {
			return true, ErrBadValue
		}
		o.Value = f
		return true, nil
	case strings.HasPrefix(tok, "dl="):
		ms, err := parseFinite(tok[3:])
		if err != nil {
			return true, ErrBadDeadline
		}
		o.Deadline = ClampDuration(ms * float64(time.Millisecond))
		return true, nil
	case strings.HasPrefix(tok, "grad="):
		g, err := parseFinite(tok[5:])
		if err != nil {
			return true, ErrBadGradient
		}
		o.Gradient = g
		return true, nil
	case strings.HasPrefix(tok, "vf="):
		fam, err := ParseFamily(tok[3:])
		if err != nil {
			return true, ErrBadFamily
		}
		o.Family = fam
		return true, nil
	case strings.HasPrefix(tok, "tenant="):
		name := tok[7:]
		if !ValidTenant(name) {
			return true, ErrBadTenant
		}
		o.Tenant = name
		return true, nil
	case strings.HasPrefix(tok, "trace="):
		switch tok[6:] {
		case "1":
			o.Trace = true
		case "0":
			o.Trace = false
		default:
			return true, ErrBadTrace
		}
		return true, nil
	}
	return false, nil
}

// ClampDuration converts a float nanosecond count to a Duration without
// the conversion's lies: a positive sub-nanosecond value stays a (tiny)
// positive duration instead of becoming zero ("none"), and a value past
// Duration's range saturates far-future instead of overflowing negative.
// Every float-to-deadline path (wire dl=, Admission.FnFor seconds) must
// go through it.
func ClampDuration(ns float64) time.Duration {
	switch {
	case ns >= math.MaxInt64:
		return math.MaxInt64
	case ns > 0 && ns < 1:
		return 1
	}
	return time.Duration(ns)
}

func parseFinite(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, errors.New("non-finite")
	}
	return f, nil
}

// Encode appends the canonical wire tokens for o to b, each preceded by
// one space; zero (or negative) fields are omitted, matching the
// protocol's defaults. The deadline is rendered in milliseconds with %g,
// exactly what ParseToken reads back.
func (o T) Encode(b *strings.Builder) {
	if o.Value > 0 {
		b.WriteString(" v=")
		b.WriteString(strconv.FormatFloat(o.Value, 'g', -1, 64))
	}
	if o.Deadline > 0 {
		b.WriteString(" dl=")
		// Microsecond-multiple deadlines render exactly as before; a
		// deadline with sub-microsecond precision falls back to the
		// nanosecond-exact form so a tiny positive deadline never
		// encodes as "dl=0" (= none) — the mirror of ParseToken's clamp.
		var ms float64
		if o.Deadline%time.Microsecond == 0 {
			ms = float64(o.Deadline.Microseconds()) / 1000
		} else {
			ms = float64(o.Deadline.Nanoseconds()) / 1e6
		}
		b.WriteString(strconv.FormatFloat(ms, 'g', -1, 64))
	}
	if o.Gradient > 0 {
		b.WriteString(" grad=")
		b.WriteString(strconv.FormatFloat(o.Gradient, 'g', -1, 64))
	}
	switch o.Family.Kind {
	case "", FamilyLinear:
	case FamilyStep:
		b.WriteString(" vf=step:")
		b.WriteString(strconv.FormatFloat(o.Family.StepFrac, 'g', -1, 64))
	case FamilyRenewal:
		b.WriteString(" vf=renew:")
		b.WriteString(strconv.Itoa(o.Family.Renewals))
	default:
		b.WriteString(" vf=")
		b.WriteString(o.Family.Kind)
	}
	if o.Tenant != "" {
		b.WriteString(" tenant=")
		b.WriteString(o.Tenant)
	}
	if o.Trace {
		b.WriteString(" trace=1")
	}
}

// Fn builds the value function for a request arriving at absolute time
// now (seconds in the caller's clock base): worth Value (default 1)
// until now+Deadline, then declining per the vf= family. The default
// family is the Def. 2 linear decline at Gradient per second; a deadline
// with no gradient defaults to losing the full value one relative
// deadline past it — the workload model's "45 degrees" convention. The
// step and renewal families use the same convention for their window
// width: one relative deadline. No deadline means effectively never
// declining (a one-year horizon) regardless of family — a shape needs a
// deadline to hang off.
func (o T) Fn(now float64) value.Fn {
	v := o.Value
	if v <= 0 {
		v = 1
	}
	dl := o.Deadline.Seconds()
	if dl <= 0 {
		return value.Fn{V: v, Deadline: now + 365*24*3600, Gradient: 0}
	}
	f := value.Fn{V: v, Deadline: now + dl}
	switch o.Family.Kind {
	case FamilyCliff:
		f.Shape = value.ShapeCliff
	case FamilyStep:
		f.Shape = value.ShapeStep
		f.Window = dl
		f.StepFrac = o.Family.StepFrac
	case FamilyRenewal:
		f.Shape = value.ShapeRenewal
		f.Window = dl
		f.Renewals = o.Family.Renewals
	default:
		grad := o.Gradient
		if grad <= 0 {
			grad = v / dl
		}
		f.Gradient = grad
	}
	return f
}
