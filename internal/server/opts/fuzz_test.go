package opts

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseToken drives arbitrary tokens through the codec and checks
// the invariants every accepted token must satisfy: all parsed fields
// are finite, the resulting value function is monotone non-increasing
// past its deadline (the contract ParseFamily enforces for vf= shapes),
// and Encode∘ParseToken is idempotent — re-encoding a parsed-back T
// reproduces the same wire bytes, so the client and server can never
// drift on what a token means.
func FuzzParseToken(f *testing.F) {
	for _, seed := range []string{
		"v=2.5", "v=NaN", "v=-1", "dl=50", "dl=1e15", "dl=-5", "dl=0.0000001",
		"grad=0.125", "grad=Inf", "trace=1", "trace=2",
		"vf=linear", "vf=cliff", "vf=step:0.5", "vf=step:1.1", "vf=step:NaN",
		"vf=renew:3", "vf=renew:0", "vf=renew:17", "vf=ramp", "vf=cliff:1",
		"tenant=acme", "tenant=a:b", "tenant=", "vv=1", "r:a", "w:a:1", "",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, tok string) {
		var o T
		ok, err := o.ParseToken(tok)
		if !ok {
			if err != nil {
				t.Fatalf("unrecognized token %q returned error %v", tok, err)
			}
			return
		}
		if err != nil {
			if o != (T{}) {
				t.Fatalf("rejected token %q mutated options to %+v", tok, o)
			}
			return
		}
		// Accepted: every numeric field must be finite.
		for _, v := range []float64{o.Value, o.Gradient, o.Family.StepFrac} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted token %q carries non-finite field: %+v", tok, o)
			}
		}
		// The value function must be monotone non-increasing past the
		// deadline and worthless from its zero-crossing on.
		fn := o.Fn(0)
		prev := math.Inf(1)
		rel := fn.Deadline
		if rel <= 0 || rel > 10 {
			rel = 10
		}
		for i := 0; i <= 64; i++ {
			at := fn.Deadline + float64(i)*rel/2
			v := fn.At(at)
			if math.IsNaN(v) {
				t.Fatalf("token %q: At(%v) is NaN", tok, at)
			}
			if v > prev {
				t.Fatalf("token %q: value increases past deadline at %v (%v > %v)", tok, at, v, prev)
			}
			prev = v
		}
		// (With a relative tolerance: the linear decline's zero-crossing
		// division rounds, leaving an O(V*ulp) residue at huge deadlines.)
		if zc := fn.ZeroCrossing(); !math.IsInf(zc, 1) {
			if v := fn.At(zc + 1e-6); v > math.Abs(fn.V)*1e-12 {
				t.Fatalf("token %q: worth %v past zero-crossing %v", tok, v, zc)
			}
		}
		// Idempotence: encode, parse it all back, encode again.
		var b1 strings.Builder
		o.Encode(&b1)
		var o2 T
		for _, tk := range strings.Fields(b1.String()) {
			if ok, err := o2.ParseToken(tk); !ok || err != nil {
				t.Fatalf("token %q: re-parse of encoded %q failed: %v, %v", tok, tk, ok, err)
			}
		}
		var b2 strings.Builder
		o2.Encode(&b2)
		if b1.String() != b2.String() {
			t.Fatalf("token %q: encode not idempotent: %q vs %q", tok, b1.String(), b2.String())
		}
	})
}
