// Package server fronts a sharded SCC engine (internal/shard) with a TCP
// line protocol and a value-cognizant admission queue. Requests carry the
// paper's Def. 2 value functions; when the engine is saturated, waiters
// are dispatched by Def. 7 expected value and shed past their
// zero-crossing, and cross-shard retries re-enter the same queue. The
// protocol is line-oriented (PING/GET/PUT/ADD/UPD/SUM/STATS), optionally
// wrapped in pipelined REQ/RES framing with concurrent dispatch per
// connection, and extended with REPL/ACK commit-log subscriptions for
// replication: a primary streams each shard's total commit order
// (internal/repl) to replicas, which apply it through the engine's
// ApplyLocked path and serve lag-gated snapshot reads.
//
// The normative wire specification — verb grammar, error-reply rules,
// oversized-line handling, framing interleaving, and the replication
// stream — lives in docs/PROTOCOL.md; docs/ARCHITECTURE.md maps this
// package's place in the system.
package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/repl"
	"repro/internal/server/opts"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/value"
)

// Config configures a Server.
type Config struct {
	// Shards is the partition count of the backing store (default 16).
	Shards int
	// Mode selects the per-shard concurrency control protocol.
	Mode engine.Mode
	// Admission configures the value-cognizant admission queue.
	Admission AdmissionConfig
	// GroupCommit coalesces per-shard commit latch acquisitions across
	// concurrent connections (disabled unless Enabled is set).
	GroupCommit engine.GroupCommit
	// PipelineDepth caps concurrently dispatched REQ-framed requests per
	// connection (default 128). Past the cap the connection's reader
	// stalls — TCP backpressure, not an error.
	PipelineDepth int
	// Repl configures replication roles (docs/PROTOCOL.md, "Replication").
	Repl ReplOptions
	// Cluster, when non-nil, makes the server a member of a failover
	// cluster (internal/cluster): writes are fenced by the state's
	// fencing epoch and role, the TOPO/PLACE verbs come alive, and the
	// server can be promoted from replica to primary at runtime. The
	// state's role and epoch must be set (BecomePrimary/SetReplica)
	// before Open so the initial commit-log sinks carry the right fence.
	Cluster *cluster.State
	// Txn configures interactive transaction sessions (the TXN verbs):
	// idle cap and reaper cadence. See session.go.
	Txn TxnConfig
	// Durable enables crash durability (internal/durable) when Dir is
	// set: per-shard WALs fed at the commit boundary, checkpoints, and
	// recovery of the data directory at startup — construction then goes
	// through Open, which can fail on unreadable or corrupt directories.
	Durable durable.Options
	// FlightSample thins the flight recorder's lifecycle feed: one in
	// every FlightSample untraced requests/sessions (deterministic, by
	// request id) records its stage stamps into the server ring. trace=1
	// requests always record, and durability, recovery, replication, and
	// admission-shed events are always recorded regardless — sampling
	// only applies to per-stage stamps of untraced requests. 0 uses the
	// default (8); 1 records every request.
	FlightSample int
}

// defaultFlightSample is the lifecycle sampling rate when
// Config.FlightSample is unset: one in eight untraced requests stamps
// its stages into the flight ring. Dense enough that the ring always
// holds recent full lifecycles, sparse enough that the median request
// pays nothing for the always-on journal.
const defaultFlightSample = 8

// ReplOptions selects a server's replication role. Both may be set: a
// primary-and-replica server relays its applied stream downstream
// (chained replication).
type ReplOptions struct {
	// Primary keeps a per-shard commit log and serves REPL/ACK
	// subscriptions from replicas.
	Primary bool
	// Gate marks the server a read replica: writes are rejected, and
	// read-only transactions carrying value functions are shed when the
	// gate estimates their value would cross zero before the replica
	// catches up (repl_shed in STATS). The gate is fed by the
	// repl.Replica streaming into this server's store.
	Gate *repl.LagGate
	// Retain, when nonzero, bounds each in-memory commit log: records
	// acked by every tracking subscriber are trimmed once the log holds
	// more than Retain newer ones (with no subscribers, the newest
	// Retain records are simply kept). Trimmed history is served to
	// joiners via SNAP bootstrap instead of replay-from-1. Zero means
	// no retention bound: on an in-memory server the log then grows
	// unboundedly (the PR 3 behavior); on a durable server checkpoints
	// still trim below min(checkpoint index, min acked), so replay-from-1
	// joiners need a retention bound or SNAP.
	Retain uint64
	// SyncAcks makes a primary semi-synchronous: each committed write
	// waits (bounded by SyncTimeout) for at least one tracking replica
	// to acknowledge the shard's log head before the OK is sent, so an
	// acknowledged commit survives the primary's death once any replica
	// runs. On a shard no subscriber has ever tracked the wait degrades
	// to asynchronous immediately (a lone primary must not stall); once
	// a shard has been tracked, a vanished subscriber waits out
	// SyncTimeout instead — a dying replica connection must not
	// instantly open an unreplicated-ack window. A timeout degrades —
	// the commit is still acknowledged, and repl_sync_degraded counts
	// the lapse.
	SyncAcks bool
	// SyncTimeout bounds each SyncAcks wait (default 5s).
	SyncTimeout time.Duration
}

// Server serves a sharded store over TCP.
type Server struct {
	store         *shard.Store
	adm           *Admission
	pipelineDepth int
	epochs        *engine.Epochs // the store's global commit-epoch counter
	// feedP/gateP hold the replication roles behind atomic pointers
	// because promotion swaps them at runtime: a clustered replica
	// starts with a gate and no feed, and Promote publishes a feed and
	// retires the gate while requests are in flight. Read through
	// Feed()/replGate(); never cache across a blocking wait.
	feedP        atomic.Pointer[repl.Feed]    // non-nil on replication primaries
	gateP        atomic.Pointer[repl.LagGate] // non-nil on read replicas
	cluster      *cluster.State               // non-nil on cluster members
	assign       *cluster.Assignment          // shard-ownership table (clustered only)
	retain       uint64                       // Repl.Retain, reused by promotion's fresh feed
	syncAcks     bool
	syncTimeout  time.Duration
	syncDegraded atomic.Int64     // SyncAcks waits that timed out (commit acked anyway)
	durable      *durable.Manager // non-nil with a data directory
	met          *serverMetrics   // telemetry registry (metrics.go), always non-nil
	flight       *flight.Recorder // always-on black-box event journal, always non-nil
	flightSample uint64           // lifecycle stamps for 1-in-N untraced requests
	reqID        atomic.Uint64    // request/session ids tagging flight events

	// mu guards connection lifecycle only; per-request counters use
	// their own synchronization so requests never serialize on it.
	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	latMu     sync.Mutex
	lat       *stats.Sample
	requests  atomic.Int64
	crossShed atomic.Int64 // cross-shard retries shed past their zero-crossing

	// Interactive transaction sessions (session.go).
	sessions     *sessionTable
	txnBegun     atomic.Int64
	txnCommitted atomic.Int64
	txnAborted   atomic.Int64
	txnReaped    atomic.Int64

	wg sync.WaitGroup
}

// New returns a server over a fresh sharded store. It cannot fail for
// in-memory configurations; a Config with durability enabled can, so it
// must go through Open — New panics on it to make the misuse loud.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic("server.New with durability must be server.Open: " + err.Error())
	}
	return s
}

// Open builds a server over a fresh sharded store, recovering it from
// cfg.Durable.Dir first when durability is enabled. The wiring order is
// what makes recovery clean: the store opens with no commit logs, the
// durability manager replays checkpoint + WAL suffix through ApplyLocked
// (nothing re-logs), and only then is each shard's commit-log sink
// installed — with the replication feed's log bases reset to the
// recovered indices, so a replica subscribed above the base streams
// seamlessly across a primary restart.
func Open(cfg Config) (*Server, error) {
	if cfg.PipelineDepth <= 0 {
		cfg.PipelineDepth = 128
	}
	if cfg.Shards <= 0 {
		// Resolve the shard count here with shard.Open's own default, so
		// the replication feed is sized to the store it logs.
		cfg.Shards = shard.DefaultShards
	}
	if cfg.FlightSample <= 0 {
		cfg.FlightSample = defaultFlightSample
	}
	met := newServerMetrics()
	// The flight recorder exists before any subsystem so every layer —
	// durability recovery included — records into it from its first
	// event. It is always on: each ring is a fixed-size pointer-free
	// buffer whose writers pay one atomic add and one uncontended mutex
	// hold, cheap enough to leave running under benchmark load.
	fl := flight.New(cfg.Shards, 0)
	// One global commit-epoch counter spans the store, the replication
	// feed, and durable recovery: every commit-log record everywhere is
	// stamped from it, so a cross-shard commit's records carry one epoch
	// on every shard they touch — the identity replicas and recovery use
	// to treat them as an atomic set.
	epochs := &engine.Epochs{}
	store := shard.Open(shard.Config{
		Shards: cfg.Shards,
		Epochs: epochs,
		Engine: engine.Config{Mode: cfg.Mode, GroupCommit: cfg.GroupCommit, Metrics: met.engineMetrics()},
	})
	var feed *repl.Feed
	if cfg.Repl.Primary {
		feed = repl.NewFeed(cfg.Shards, epochs)
		if cfg.Repl.Retain > 0 {
			feed.SetRetention(cfg.Repl.Retain)
		}
	}
	var man *durable.Manager
	if cfg.Durable.Dir != "" {
		cfg.Durable.Metrics = &durable.Metrics{
			FsyncSeconds:      met.stage.With("wal_fsync"),
			CheckpointSeconds: met.stage.With("checkpoint"),
		}
		cfg.Durable.Flight = fl
		var err error
		man, err = durable.Open(cfg.Durable, store, feed)
		if err != nil {
			store.Close()
			return nil, err
		}
	} else if feed != nil {
		for i := 0; i < cfg.Shards; i++ {
			if cfg.Cluster != nil && cfg.Cluster.IsPrimary() {
				// Clustered in-memory primary: the commit-log sink is the
				// fencing wrapper, so the engine's per-batch Sync consults
				// the cluster state before any verdict is delivered — a
				// deposed primary's commits install but never ack. A
				// clustered *replica* keeps the plain sink (its apply path
				// re-logs and syncs every batch, which must keep passing);
				// Promote swaps in the fenced sinks at takeover.
				store.Shard(i).SetCommitLog(&fencedLog{
					log: feed.Log(i), state: cfg.Cluster,
					epoch: cfg.Cluster.Epoch(), fl: fl, shard: i,
				})
			} else {
				store.Shard(i).SetCommitLog(feed.Log(i))
			}
		}
	}
	if cfg.Repl.SyncTimeout <= 0 {
		cfg.Repl.SyncTimeout = 5 * time.Second
	}
	srv := &Server{
		store:         store,
		adm:           NewAdmission(cfg.Admission),
		pipelineDepth: cfg.PipelineDepth,
		epochs:        epochs,
		cluster:       cfg.Cluster,
		retain:        cfg.Repl.Retain,
		syncAcks:      cfg.Repl.SyncAcks,
		syncTimeout:   cfg.Repl.SyncTimeout,
		durable:       man,
		met:           met,
		flight:        fl,
		flightSample:  uint64(cfg.FlightSample),
		conns:         make(map[net.Conn]struct{}),
		lat:           stats.NewSample(4096, 1),
	}
	srv.feedP.Store(feed)
	srv.gateP.Store(cfg.Repl.Gate)
	if cfg.Cluster != nil {
		srv.assign = cluster.NewAssignment(cfg.Shards, cfg.Cluster.Self())
	}
	srv.sessions = newSessionTable(srv, cfg.Txn)
	srv.registerDerived()
	return srv, nil
}

// Feed exposes the primary's replication feed: non-nil when the server
// was opened with Repl.Primary or has since been promoted.
func (s *Server) Feed() *repl.Feed { return s.feedP.Load() }

// replGate returns the replica lag gate, nil once the node is promoted
// (or was never a replica).
func (s *Server) replGate() *repl.LagGate { return s.gateP.Load() }

// Cluster exposes the node's cluster state (nil unless clustered).
func (s *Server) Cluster() *cluster.State { return s.cluster }

// Durable exposes the durability manager (nil without a data directory).
func (s *Server) Durable() *durable.Manager { return s.durable }

// Store exposes the backing sharded store (stats inspection, seeding).
func (s *Server) Store() *shard.Store { return s.store }

// Admission exposes the admission queue.
func (s *Server) Admission() *Admission { return s.adm }

// Flight exposes the always-on flight recorder (EVENTS verb source;
// operator binaries dump it on fault signals and serve /debug/events).
func (s *Server) Flight() *flight.Recorder { return s.flight }

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Serve accepts connections on lis until Close. Each connection is served
// by its own goroutine, requests on it strictly in order.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return errors.New("server: closed")
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Addr returns the listening address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// Close stops accepting, closes every connection, and closes the store.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.lis != nil {
		s.lis.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	// Teardown order matters for liveness: connection handlers can be
	// parked inside a session operation (waiting on a shadow gated by
	// another session) or queued in admission behind slots that open
	// sessions hold — waiting for the handlers first would deadlock.
	// Closing admission sheds every queued waiter; aborting the sessions
	// (reaper stopped first) unwinds their live engine transactions and
	// wakes parked operation handlers; only then are the handlers
	// awaited and the store closed under a quiesced engine.
	s.adm.Close()
	s.sessions.close()
	s.wg.Wait()
	s.store.Close()
	if s.durable != nil {
		// After the store drains: the final WAL sync in Close covers
		// every acknowledged commit.
		s.durable.Close()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	// All responses funnel through one writer goroutine, which batches:
	// it writes every response already queued, then flushes once — under
	// pipelined load many responses share one syscall. On a write error
	// it keeps draining (discarding) so workers never block on a dead
	// connection.
	out := make(chan string, 4*s.pipelineDepth)
	wdone := make(chan struct{})
	var connDead atomic.Bool
	go func() {
		defer close(wdone)
		w := bufio.NewWriter(conn)
		dead := false
		// A connection that cannot carry responses must not keep
		// executing requests: the dead flag stops the reader loop even
		// for lines already sitting in its scanner buffer, and closing
		// the connection unblocks a reader parked in a Read syscall.
		// The writer itself keeps draining (discarding) so workers
		// never block on the channel.
		die := func() {
			dead = true
			connDead.Store(true)
			conn.Close()
		}
		for line := range out {
			for {
				if !dead {
					if _, err := w.WriteString(line); err != nil {
						die()
					} else if _, err := w.WriteString("\n"); err != nil {
						die()
					}
				}
				select {
				case next, ok := <-out:
					if !ok {
						if !dead {
							w.Flush()
						}
						return
					}
					line = next
					continue
				default:
				}
				break
			}
			if !dead && w.Flush() != nil {
				die()
			}
		}
	}()

	// Pipelined (REQ-framed) requests dispatch concurrently on a lazily
	// grown per-connection worker pool, bounded by the pipeline depth;
	// bare requests run inline so they stay strictly ordered among
	// themselves. Workers are pooled rather than spawned per request
	// because dispatch call chains run deep (admission -> shard -> engine
	// -> commit): a fresh goroutine pays stack growth on every request
	// (runtime.newstack dominated hot profiles), a pooled one pays it
	// once per connection. An unbuffered job channel gives the same
	// backpressure the old per-request semaphore did: with every worker
	// busy, the reader blocks. stop ends this connection's replication
	// feeders; sub is its lazily created ack-tracking subscription.
	var reqJobs chan reqJob
	nWorkers := 0
	var workers sync.WaitGroup
	stop := make(chan struct{})
	var sub *repl.Sub
	defer func() {
		if sub != nil {
			sub.Close()
		}
	}()

	r := bufio.NewScanner(conn)
	r.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for r.Scan() {
		if connDead.Load() {
			break
		}
		fields := strings.Fields(r.Text())
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "REQ":
			switch {
			case len(fields) < 2:
				out <- "ERR usage: REQ <id> <verb> [args...]"
			case len(fields) == 2:
				out <- "RES " + fields[1] + " ERR missing verb"
			default:
				job := reqJob{id: fields[1], fields: fields[2:]}
				if reqJobs == nil {
					reqJobs = make(chan reqJob)
				}
				select {
				case reqJobs <- job:
				default:
					// No idle worker: grow the pool up to the depth cap,
					// then block (TCP backpressure, not an error).
					if nWorkers < s.pipelineDepth {
						nWorkers++
						workers.Add(1)
						go func() {
							defer workers.Done()
							for j := range reqJobs {
								out <- "RES " + j.id + " " + s.dispatch(j.fields)
							}
						}()
					}
					reqJobs <- job
				}
			}
		case "REPL", "ACK":
			// Replication verbs are connection-stateful (they turn the
			// connection into a push stream), so they are handled here,
			// not in dispatch.
			s.handleRepl(strings.ToUpper(fields[0]), fields[1:], &sub, out, stop, &workers)
		case "SNAP":
			// SNAP's reply spans several lines (header + SNAPKV batches),
			// so like REPL it needs bare framing; a joiner issues its
			// SNAPs before subscribing, keeping the stream unambiguous.
			s.handleSnap(fields[1:], &sub, out)
		case "METRICS":
			// Prometheus text exposition spans many lines, so like SNAP it
			// is bare-framing only: "OK <nlines>" then exactly that many
			// exposition lines.
			s.handleMetrics(out)
		case "EVENTS":
			// The flight recorder's merged event snapshot spans many
			// lines, so like METRICS it is bare-framing only.
			s.handleEvents(fields[1:], out)
		default:
			out <- s.dispatch(fields)
		}
	}
	tooLong := errors.Is(r.Err(), bufio.ErrTooLong)
	close(stop)
	if reqJobs != nil {
		close(reqJobs)
	}
	workers.Wait()
	if tooLong {
		// The connection cannot be resynced mid-line, but the client
		// deserves a diagnostic before the close instead of a bare EOF.
		out <- "ERR request line exceeds 1MB"
	}
	close(out)
	<-wdone
}

// handleRepl serves the connection-stateful replication verbs. REPL
// subscribes the connection to one shard's commit log: the reply carries
// the shard and its current head, then a feeder goroutine pushes every
// record from the requested index as LOG lines through the connection's
// response writer (interleaving freely with other responses — LOG lines
// are push traffic, not replies). ACK records the replica's applied
// position for the primary's lag accounting. Feeders stop when the
// connection's reader loop ends (stop) and are awaited like REQ workers.
func (s *Server) handleRepl(verb string, args []string, sub **repl.Sub, out chan<- string, stop <-chan struct{}, workers *sync.WaitGroup) {
	if reply, fenced := s.fencedReplVerb(); fenced {
		// A deposed primary's logs are frozen history: a joiner must not
		// bootstrap from them, and the zombie's own replicas must
		// re-point at the new primary.
		out <- reply
		return
	}
	feed := s.Feed()
	if feed == nil {
		out <- "ERR not a replication primary"
		return
	}
	shardIdx, index, err := parseReplArgs(verb, args, feed.Shards())
	if err != nil {
		out <- "ERR " + err.Error()
		return
	}
	if verb == "ACK" {
		if *sub == nil {
			out <- "ERR ACK before REPL"
			return
		}
		(*sub).Ack(shardIdx, index)
		out <- "OK"
		return
	}
	if *sub == nil {
		*sub = feed.Subscribe()
	}
	// Track before the trimmed-base check: tracking pins the shard's trim
	// floor at this subscriber's acked index, so a base observed to be
	// below the requested start cannot advance past it afterwards.
	(*sub).Track(shardIdx)
	log := feed.Log(shardIdx)
	if base := log.Base(); index <= base {
		out <- fmt.Sprintf("ERR log trimmed through %d; SNAP %d to bootstrap, then REPL above it", base, shardIdx)
		return
	}
	out <- fmt.Sprintf("OK %d %d", shardIdx, log.Head())
	workers.Add(1)
	go func() {
		defer workers.Done()
		next := index
		for {
			recs, wake, err := log.From(next, 256)
			if err != nil {
				// Trimmed past a tracked, streaming subscriber — possible
				// only if it never acked while the retention window slid
				// by. The stream cannot resync; tell it to re-bootstrap.
				out <- fmt.Sprintf("ERR log trimmed through %d; SNAP %d to bootstrap, then REPL above it", log.Base(), shardIdx)
				return
			}
			if len(recs) == 0 {
				select {
				case <-wake:
					continue
				case <-stop:
					return
				}
			}
			for _, rec := range recs {
				select {
				case out <- repl.EncodeLog(shardIdx, rec):
				case <-stop:
					return
				}
				next = rec.Index + 1
			}
		}
	}()
}

// snapBatch is how many key:value pairs one SNAPKV line carries — small
// enough that a line stays far under the 1MB request bound for the
// integer values this protocol stores, large enough to amortize framing.
const snapBatch = 256

// handleSnap serves SNAP <shard>: an atomic snapshot of one shard's
// committed state paired with the commit-log index it corresponds to.
// The shard is latched for the copy (appends happen under the same
// latch, so the head read is exact), then released before any line is
// written. Reply: "OK <shard> <index> <npairs>" followed by
// ceil(npairs/256) SNAPKV lines. A joining replica installs the pairs,
// then subscribes with REPL <shard> <index+1> — never touching log
// records at or below the snapshot index, trimmed or not.
//
// On a durable primary the published log head can trail the installed
// state by the current commit batch (records ship only after their WAL
// sync), so a snapshot may already contain the effects of records just
// above <index>. That is harmless: log writes carry absolute values,
// so the replica re-applying them is idempotent.
func (s *Server) handleSnap(args []string, sub **repl.Sub, out chan<- string) {
	if reply, fenced := s.fencedReplVerb(); fenced {
		out <- reply
		return
	}
	feed := s.Feed()
	if feed == nil {
		out <- "ERR not a replication primary"
		return
	}
	if len(args) != 1 {
		out <- "ERR usage: SNAP <shard>"
		return
	}
	shardIdx, err := strconv.Atoi(args[0])
	if err != nil || shardIdx < 0 || shardIdx >= feed.Shards() {
		out <- fmt.Sprintf("ERR bad shard %q (have %d shards)", args[0], feed.Shards())
		return
	}
	if *sub == nil {
		*sub = feed.Subscribe()
	}
	eng := s.store.Shard(shardIdx)
	log := feed.Log(shardIdx)
	var pairs []string
	eng.LockCommit()
	head := log.Head()
	// The epoch watermark is read under the same latch as the head, so
	// the pair is one consistent cut: every commit with epoch <= it —
	// cross-shard commits included — is folded into the snapshot, and the
	// joiner's apply barrier can treat the watermark as proof when the
	// stream later delivers only the other participants' parts.
	epoch := log.LastEpoch()
	// Pin the shard's trim floor at the snapshot index before the latch
	// drops: the joiner is about to REPL from head+1, and without a
	// tracked subscription a background checkpoint could trim past head
	// in the SNAP-to-REPL window and refuse the very subscription this
	// snapshot exists to seed. The floor is released when the
	// connection (and with it the Sub) goes away.
	(*sub).Track(shardIdx)
	(*sub).Ack(shardIdx, head)
	eng.RangeLocked(func(k string, v []byte) bool {
		pairs = append(pairs, k+":"+string(v))
		return true
	})
	eng.UnlockCommit()
	// Nothing leaves the server before it is durable: the captured state
	// can include commits whose WAL sync is still pending (they were
	// installed under the latch we just held), so force the sync now —
	// after it, every record the snapshot reflects is on stable storage
	// and the disown-and-reissue hazard sync-before-ship guards against
	// cannot pass through SNAP either. (A broken WAL makes this a no-op;
	// the server is about to fail-stop anyway.)
	eng.SyncCommitLog()
	out <- fmt.Sprintf("OK %d %d %d %d", shardIdx, head, epoch, len(pairs))
	for len(pairs) > 0 {
		n := min(snapBatch, len(pairs))
		out <- fmt.Sprintf("SNAPKV %d %s", shardIdx, strings.Join(pairs[:n], " "))
		pairs = pairs[n:]
	}
}

// handleMetrics serves the METRICS verb: the server's whole telemetry
// registry in Prometheus text exposition format 0.0.4, framed for the
// line protocol as "OK <nlines>" followed by exactly nlines exposition
// lines. STATS is untouched: its k=v line stays the stable,
// byte-conservative surface, METRICS the complete one.
func (s *Server) handleMetrics(out chan<- string) {
	s.requests.Add(1)
	var buf bytes.Buffer
	s.met.reg.Expose(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	out <- "OK " + strconv.Itoa(len(lines))
	for _, ln := range lines {
		out <- ln
	}
}

// handleEvents serves the EVENTS verb: the flight recorder's rings
// merged into one sequence-ordered snapshot, framed for the line
// protocol as "OK <n>" followed by exactly n event lines (the dump
// line format, docs/PROTOCOL.md "Flight recorder"). An optional
// argument caps the reply at the newest that many events.
func (s *Server) handleEvents(args []string, out chan<- string) {
	s.requests.Add(1)
	max := 0
	if len(args) > 1 {
		out <- "ERR usage: EVENTS [n]"
		return
	}
	if len(args) == 1 {
		n, err := strconv.Atoi(args[0])
		if err != nil || n <= 0 {
			out <- "ERR bad event cap " + args[0]
			return
		}
		max = n
	}
	events := s.flight.Snapshot(max)
	out <- "OK " + strconv.Itoa(len(events))
	for _, e := range events {
		out <- e.Line()
	}
}

// parseReplArgs validates "<shard> <index>" for REPL (from-index) and ACK
// (applied-index).
func parseReplArgs(verb string, args []string, shards int) (int, uint64, error) {
	if len(args) != 2 {
		if verb == "REPL" {
			return 0, 0, errors.New("usage: REPL <shard> <from>")
		}
		return 0, 0, errors.New("usage: ACK <shard> <index>")
	}
	shardIdx, err := strconv.Atoi(args[0])
	if err != nil || shardIdx < 0 || shardIdx >= shards {
		return 0, 0, fmt.Errorf("bad shard %q (have %d shards)", args[0], shards)
	}
	index, err := strconv.ParseUint(args[1], 10, 64)
	if err != nil || (verb == "REPL" && index == 0) {
		return 0, 0, fmt.Errorf("bad index %q", args[1])
	}
	return shardIdx, index, nil
}

// reqJob is one REQ-framed request handed to a connection's worker pool.
type reqJob struct {
	id     string
	fields []string
}

// op is one parsed transactional operation, shared by the one-shot
// verbs (PUT/ADD/UPD) and interactive TXN sessions: a read dependency
// (write false), a read-modify-write adding delta (write true), or a
// blind overwrite to delta (write and set — PUT and `TXN W ... =<val>`,
// which skip the read entirely: an empty read set always validates).
type op struct {
	key   string
	delta int64
	write bool
	set   bool
}

// dispatchLine parses and serves one raw request line. It is the
// single-string entry point the fuzzer drives; serveConn splits fields
// itself.
func (s *Server) dispatchLine(line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty request"
	}
	return s.dispatch(fields)
}

func (s *Server) dispatch(fields []string) string {
	verb := strings.ToUpper(fields[0])
	start := time.Now()
	resp := s.dispatchVerb(verb, fields[1:])
	s.met.observeVerb(verb, time.Since(start))
	return resp
}

func (s *Server) dispatchVerb(verb string, args []string) string {
	s.requests.Add(1)
	switch verb {
	case "PING":
		return "OK pong"
	case "GET":
		if len(args) != 1 {
			return "ERR usage: GET <key>"
		}
		if !validKey(args[0]) {
			return "ERR bad key " + args[0]
		}
		v, ok := s.store.Get(args[0])
		if !ok {
			return "NIL"
		}
		return "OK " + string(v)
	case "PUT":
		if len(args) != 2 {
			return "ERR usage: PUT <key> <n>"
		}
		if !validKey(args[0]) {
			return "ERR bad key " + args[0]
		}
		n, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return "ERR bad number"
		}
		return s.runUpdate(opts.T{}, []op{{key: args[0], delta: n, write: true, set: true}})
	case "ADD":
		if len(args) != 2 {
			return "ERR usage: ADD <key> <delta>"
		}
		if !validKey(args[0]) {
			return "ERR bad key " + args[0]
		}
		n, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return "ERR bad number"
		}
		return s.runUpdate(opts.T{}, []op{{key: args[0], delta: n, write: true}})
	case "UPD":
		return s.handleUPD(args)
	case "TXN":
		return s.handleTXN(args)
	case "SUM":
		if len(args) == 0 {
			return "ERR usage: SUM <key>..."
		}
		for _, k := range args {
			if !validKey(k) {
				return "ERR bad key " + k
			}
		}
		var total int64
		err := s.store.View(args, func(tx shard.Tx) error {
			for _, k := range args {
				v, err := tx.Get(k)
				if err != nil {
					return err
				}
				total += parseNum(v)
			}
			return nil
		})
		if err != nil {
			return "ERR " + err.Error()
		}
		return "OK " + strconv.FormatInt(total, 10)
	case "STATS":
		return s.statsLine()
	case "HEAD":
		// Per-shard commit-log heads prefixed by the feed's epoch
		// watermark, cheap enough to poll: replicas use it out-of-band to
		// keep their lag estimate honest even while the replication
		// stream itself is backpressured, and cluster lease probes read
		// the watermark for caught-up-ness without a REPL subscription.
		if reply, fenced := s.fencedReplVerb(); fenced {
			return reply
		}
		feed := s.Feed()
		if feed == nil {
			return "ERR not a replication primary"
		}
		var b strings.Builder
		b.WriteString("OK ")
		b.WriteString(strconv.FormatUint(feed.EpochWatermark(), 10))
		for _, h := range feed.Heads() {
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(h, 10))
		}
		return b.String()
	case "TOPO":
		// Topology discovery: role, fencing epoch, best-known primary,
		// and catch-up position as one k=v line (cluster.TopoReply).
		return s.handleTopo()
	case "PLACE":
		// Value-cognizant placement planning over the live pending-value
		// accounting; epoch-fenced application (cluster.Assignment).
		return s.handlePlace()
	case "CKPT":
		// Operator-triggered checkpoint: capture every shard with records
		// since its last checkpoint, highest pending-value first, and
		// trim WAL segments + in-memory log below the new floors. The
		// reply reports how many shards were captured.
		if s.durable == nil {
			return "ERR durability disabled"
		}
		order, err := s.durable.CheckpointAll()
		if err != nil {
			return "ERR checkpoint: " + err.Error()
		}
		return "OK " + strconv.Itoa(len(order))
	case "REPL", "ACK", "SNAP", "METRICS", "EVENTS":
		// Bare REPL/ACK/SNAP/METRICS/EVENTS are intercepted by serveConn;
		// reaching dispatch means REQ framing (or the fuzzer), where a
		// push stream or multi-line reply cannot be correlated.
		return "ERR " + verb + " requires bare framing on a dedicated connection"
	default:
		return "ERR unknown verb " + verb
	}
}

func (s *Server) handleUPD(args []string) string {
	var o opts.T
	var ops []op
	for _, a := range args {
		if isOpt, err := o.ParseToken(a); isOpt {
			if err != nil {
				return "ERR " + err.Error()
			}
			continue
		}
		switch {
		case strings.HasPrefix(a, "r:"):
			key := a[2:]
			if key == "" {
				return "ERR empty key"
			}
			if !validKey(key) {
				return "ERR bad key " + key
			}
			ops = append(ops, op{key: key})
		case strings.HasPrefix(a, "w:"):
			rest := a[2:]
			i := strings.LastIndexByte(rest, ':')
			if i <= 0 {
				return "ERR bad op " + a
			}
			if !validKey(rest[:i]) {
				return "ERR bad key " + rest[:i]
			}
			n, err := strconv.ParseInt(rest[i+1:], 10, 64)
			if err != nil {
				return "ERR bad delta in " + a
			}
			ops = append(ops, op{key: rest[:i], delta: n, write: true})
		default:
			return "ERR bad token " + a
		}
	}
	if len(ops) == 0 {
		return "ERR no ops"
	}
	return s.runUpdate(o, ops)
}

// handleTXN routes the interactive-session verbs (session.go). Every
// TXN request is one line with one reply, so sessions work identically
// under bare and REQ framing — and because sessions live in a
// server-global table keyed by id, a session may even be driven from
// several connections (though one at a time is the sane shape).
func (s *Server) handleTXN(args []string) string {
	if len(args) == 0 {
		return "ERR usage: TXN BEGIN|R|W|COMMIT|ABORT ..."
	}
	sub := strings.ToUpper(args[0])
	rest := args[1:]
	if sub == "BEGIN" {
		var o opts.T
		for _, tok := range rest {
			isOpt, err := o.ParseToken(tok)
			if err != nil {
				return "ERR " + err.Error()
			}
			if !isOpt {
				return "ERR bad token " + tok
			}
		}
		return s.txnBegin(o)
	}
	if len(rest) == 0 {
		return "ERR usage: TXN " + sub + " <id> ..."
	}
	// The wire id is "<id>-<token>": the numeric table key plus the
	// capability token BEGIN minted. The split tolerates a missing token
	// so the reaped-tombstone check still answers SHED by numeric prefix,
	// but a live session only resolves when the token matches — and a
	// mismatch is indistinguishable from a session that never existed.
	numStr, token, _ := strings.Cut(rest[0], "-")
	id, err := strconv.ParseUint(numStr, 10, 64)
	if err != nil {
		return "ERR bad txn id " + rest[0]
	}
	ss, reaped := s.sessions.get(id)
	if reaped {
		// The reaper shed this session at its value zero-crossing (or
		// idle cap); every later verb on it answers SHED, matching the
		// admission queue's verdict for worthless work.
		return "SHED"
	}
	if ss == nil || ss.token != token {
		return "ERR no such txn " + rest[0]
	}
	switch sub {
	case "R":
		if len(rest) != 2 {
			return "ERR usage: TXN R <id> <key>"
		}
		if !validKey(rest[1]) {
			return "ERR bad key " + rest[1]
		}
		return s.txnOp(ss, op{key: rest[1]})
	case "W":
		if len(rest) != 3 {
			return "ERR usage: TXN W <id> <key> <delta|=val>"
		}
		if !validKey(rest[1]) {
			return "ERR bad key " + rest[1]
		}
		o := op{key: rest[1], write: true}
		tok := rest[2]
		if strings.HasPrefix(tok, "=") {
			o.set = true
			tok = tok[1:]
		}
		n, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return "ERR bad delta " + rest[2]
		}
		o.delta = n
		return s.txnOp(ss, o)
	case "COMMIT":
		if len(rest) != 1 {
			return "ERR usage: TXN COMMIT <id>"
		}
		return s.txnCommit(ss)
	case "ABORT":
		if len(rest) != 1 {
			return "ERR usage: TXN ABORT <id>"
		}
		return s.txnAbort(ss)
	default:
		return "ERR unknown TXN subverb " + sub
	}
}

// runUpdate admits, executes, and answers one one-shot transactional
// update (PUT/ADD/UPD) — the legacy verbs, routed through the same
// admitted executor interactive session commits use. Value accounting
// (metrics.go) brackets the whole path: the submit-time value enters
// scc_value_submitted_total here, and every exit attributes what was
// realized and what was lost, so the conservation invariant holds.
func (s *Server) runUpdate(o opts.T, ops []op) string {
	f := s.adm.FnOf(o)
	// trace=1 requests always record their lifecycle into the flight
	// recorder's server ring; untraced requests record a deterministic
	// 1-in-FlightSample slice (by request id) so the black box always
	// holds recent full lifecycles at near-zero per-request cost. The
	// rest carry a nil trace — every stamp is a no-op branch. The trace=
	// reply token stays opt-in (retain only when asked).
	id := s.reqID.Add(1)
	var tr *obs.Trace
	if o.Trace || id%s.flightSample == 0 {
		tr = obs.NewRecordedTrace(time.Now(), s.flight.Server(), id, o.Trace)
		defer tr.Flush()
	}
	if o.Trace {
		s.met.traces.Inc()
	}
	v0 := clampValue(f.At(s.adm.now()))
	s.met.submitted.Add(v0)
	hasWrite := false
	for _, o := range ops {
		if o.write {
			hasWrite = true
			break
		}
	}
	if hasWrite && s.cluster != nil {
		// Cluster entry fence: a write on a non-primary is refused with
		// a redirect before it touches admission — clients follow the
		// address to the current primary.
		if reply, fenced := s.fenceWrite(id); fenced {
			s.met.lostValue(obs.LossError, v0)
			return reply
		}
	}
	if gate := s.replGate(); gate != nil {
		// Read replica: writes are rejected, and a read-only transaction
		// is shed when its value function would cross zero before the
		// replica's estimated catch-up — a stale read it could never
		// deliver while it still carries value.
		if hasWrite {
			s.met.lostValue(obs.LossError, v0)
			return "ERR read-only replica"
		}
		if err := gate.Admit(f, s.adm.now()); err != nil {
			s.met.lostValue(obs.LossReplicaLag, v0)
			s.flight.Admission().Record(flight.EvReplShed, id, -1, 0)
			return "SHED"
		}
	}
	// The enqueue stamp is the submit instant — the trace's own start,
	// no clock read needed.
	tr.EventOff(obs.StageEnqueue, 0)
	admitStart := time.Now()
	if err := s.adm.AcquireTenant(f, len(ops), o.Tenant); err != nil {
		if errors.Is(err, ErrTenantShed) {
			s.met.lostValue(obs.LossTenantBudget, v0)
		} else {
			s.met.lostValue(obs.LossAdmissionShed, v0)
		}
		s.flight.Admission().Record(obs.StageShed, id, -1, 0)
		return "SHED"
	}
	start := time.Now()
	s.met.admitWait.Observe(int64(start.Sub(admitStart)))
	tr.EventAt(obs.StageAdmit, start)
	out := s.execAdmitted(f, ops, tr)
	elapsed := time.Since(start)
	if out.holding {
		// Queue time spent in readmissions is not service time: feeding
		// it into the per-op estimate would make admission increasingly
		// pessimistic exactly when the server is loaded.
		s.adm.Release(elapsed-out.readmitWait, len(ops))
	}
	s.latMu.Lock()
	s.lat.Add(elapsed.Seconds())
	s.latMu.Unlock()
	if out.err != nil {
		if errors.Is(out.err, ErrShed) {
			s.met.lostValue(obs.LossCrossShed, v0)
			s.flight.Admission().Record(obs.StageShed, id, -1, 0)
			return "SHED"
		}
		s.met.lostValue(lossReason(out.err), v0)
		return "ERR " + out.err.Error()
	}
	vEnd := clampValue(f.At(s.adm.now()))
	s.met.realized.Add(vEnd)
	s.met.lostValue(obs.LossExecution, v0-vEnd)
	tr.Event(obs.StageCommit)
	reply := okResults(out.results)
	if tr.Retained() {
		reply += " trace=" + tr.String()
	}
	return reply
}

// clampValue floors a value-function sample at zero: a request past its
// zero-crossing has no value left to account, not negative value.
func clampValue(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// lossReason maps a failed execution's error to the lost-value reason:
// exhausted conflict-retry budgets are conflict losses, a failed WAL
// sync (the verdict converted to ERR because the batch never became
// durable) is a wal_error loss, anything else (bad keys, closed store)
// is an error loss.
func lossReason(err error) string {
	var ea *engine.AttemptsError
	var sa *shard.AttemptsError
	if errors.As(err, &ea) || errors.As(err, &sa) {
		return obs.LossConflictAbort
	}
	var se *engine.SyncError
	if errors.As(err, &se) {
		return obs.LossWALError
	}
	return obs.LossError
}

// execOutcome is one admitted transaction execution's result.
type execOutcome struct {
	results []int64 // new value of each write op, in op order
	err     error
	holding bool // the admission slot is still held by the caller
	// readmitWait is queue time spent re-entering admission on
	// cross-shard retries — the caller subtracts it from its service-time
	// measurement (queueing is not service).
	readmitWait time.Duration
}

// execAdmitted executes ops as one serializable transaction under an
// already-held admission slot: the single engine-facing commit path for
// every path that commits client work — one-shot verbs and interactive
// TXN COMMIT alike. Cross-shard validation failures surrender the slot
// and re-enter the admission queue by expected value (Readmit), where a
// transaction whose value function crossed zero is shed (cross_shed).
// tr, when non-nil, receives the engine-side lifecycle events (fork,
// park, promotion, install) of the execution.
func (s *Server) execAdmitted(f value.Fn, ops []op, tr *obs.Trace) execOutcome {
	out := execOutcome{holding: true}
	keys := make([]string, len(ops))
	for i, o := range ops {
		keys[i] = o.key
	}
	// The transaction value the engine's commit deferment sees is the
	// request's current value.
	txValue := f.At(s.adm.now())
	gate := func(int) error {
		t0 := time.Now()
		if err := s.adm.Readmit(f, len(ops)); err != nil {
			out.holding = false
			s.crossShed.Add(1)
			return err
		}
		out.readmitWait += time.Since(t0)
		return nil
	}
	// The closure may run several times concurrently (engine shadows), so
	// it must not mutate captured state: each execution builds a fresh
	// result slice and stashes it; the committed execution's stash wins.
	res, err := s.store.UpdateTracedResult(txValue, keys, gate, tr, func(tx shard.Tx) error {
		results := make([]int64, 0, len(ops))
		for _, o := range ops {
			n, err := applyOp(tx, o)
			if err != nil {
				return err
			}
			if o.write {
				results = append(results, n)
			}
		}
		tx.Stash(results)
		return nil
	})
	if err != nil {
		out.err = err
		return out
	}
	if cs := s.cluster; cs != nil && !cs.IsPrimary() {
		// Deposition landed mid-commit. The in-memory fenced sink already
		// fails such batches at Sync, but a durable primary's WAL sink
		// cannot be wrapped — this re-check closes that path too: the
		// write may be installed locally, the verdict is still an error,
		// so nothing a deposed node accepted is ever acknowledged.
		epoch, _, primary := cs.Snapshot()
		s.flight.Server().Record(flight.EvFenceReject, 0, -1, epoch)
		out.err = &errFenced{installed: epoch, current: epoch, primary: primary}
		return out
	}
	if s.syncAcks {
		if feed := s.Feed(); feed != nil {
			// Semi-sync: wait for one tracking replica to ack each written
			// shard's log head (which covers this commit's record) before
			// the OK leaves. The wait is replication latency, not engine
			// service — fold it into readmitWait so the admission queue's
			// per-op estimate stays about the engine.
			t0 := time.Now()
			seen := make(map[int]bool, len(ops))
			for _, o := range ops {
				if !o.write || seen[s.store.ShardOf(o.key)] {
					continue
				}
				si := s.store.ShardOf(o.key)
				seen[si] = true
				if err := feed.WaitAcked(si, feed.Log(si).Head(), s.syncTimeout); err != nil {
					// Degrade to async rather than fail a commit that is
					// locally durable: the lapse is counted, the OK stands.
					s.syncDegraded.Add(1)
				}
			}
			out.readmitWait += time.Since(t0)
		}
	}
	out.results, _ = res.([]int64)
	return out
}

// applyOp executes one operation against a transactional view and
// returns the value it produced: the observed value for reads, the new
// value for writes. Blind writes (set) skip the read — an empty read
// set always validates.
func applyOp(tx shard.Tx, o op) (int64, error) {
	if !o.write {
		v, err := tx.Get(o.key)
		if err != nil {
			return 0, err
		}
		return parseNum(v), nil
	}
	n := o.delta
	if !o.set {
		cur, err := tx.Get(o.key)
		if err != nil {
			return 0, err
		}
		n += parseNum(cur)
	}
	if err := tx.Set(o.key, []byte(strconv.FormatInt(n, 10))); err != nil {
		return 0, err
	}
	return n, nil
}

// okResults renders a committed transaction's reply: OK plus the new
// value of each write op, in op order.
func okResults(results []int64) string {
	var b strings.Builder
	b.WriteString("OK")
	for _, n := range results {
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(n, 10))
	}
	return b.String()
}

func (s *Server) statsLine() string {
	st := s.store.Stats()
	ad := s.adm.Stats()
	reqs := s.requests.Load()
	s.latMu.Lock()
	qs := s.lat.Percentiles(50, 99)
	s.latMu.Unlock()
	p50, p99 := qs[0], qs[1]
	// An idle server has no latency observations; report zeros rather
	// than NaN-poisoning parsers of the k=v line.
	if math.IsNaN(p50) {
		p50, p99 = 0, 0
	}
	line := fmt.Sprintf(
		"OK shards=%d reqs=%d commits=%d fast=%d cross=%d cross_restarts=%d cross_shed=%d cross_batches=%d "+
			"aborts=%d restarts=%d forks=%d promotions=%d deferrals=%d commit_batches=%d views=%d "+
			"admitted=%d shed=%d tenant_shed=%d readmits=%d depth=%d inflight=%d op_time_us=%.1f p50_us=%.0f p99_us=%.0f",
		s.store.NumShards(), reqs, st.TotalCommits(), st.FastPath, st.CrossCommits,
		st.CrossRestarts, s.crossShed.Load(), st.CrossBatches, st.Engine.Aborts, st.Engine.Restarts, st.Engine.Forks,
		st.Engine.Promotions, st.Engine.Deferrals, st.Engine.CommitBatches, st.Views,
		ad.Admitted, ad.Shed, ad.TenantShed, ad.Readmits, ad.Depth, ad.InFlight, ad.OpTime*1e6,
		p50*1e6, p99*1e6)
	line += fmt.Sprintf(" txn_active=%d txn_begun=%d txn_committed=%d txn_aborted=%d txn_reaped=%d",
		s.sessions.active(), s.txnBegun.Load(), s.txnCommitted.Load(),
		s.txnAborted.Load(), s.txnReaped.Load())
	// Replication keys appear only in the role that owns them; a chained
	// primary-and-replica reports the replica-side repl_lag (last key
	// wins in k=v parsers).
	if feed := s.Feed(); feed != nil {
		line += fmt.Sprintf(" repl_subs=%d repl_lag=%d log_trimmed=%d",
			feed.Subscribers(), feed.MaxLag(), feed.Trimmed())
		if s.syncAcks {
			line += fmt.Sprintf(" repl_sync_degraded=%d", s.syncDegraded.Load())
		}
	}
	if gate := s.replGate(); gate != nil {
		line += fmt.Sprintf(" repl_applied=%d repl_lag=%d repl_shed=%d",
			gate.Applied(), gate.LagRecords(), gate.Shed())
	}
	if cs := s.cluster; cs != nil {
		epoch, role, _ := cs.Snapshot()
		line += fmt.Sprintf(" cluster_epoch=%d cluster_role=%s", epoch, role)
	}
	if s.durable != nil {
		d := s.durable.Stats()
		line += fmt.Sprintf(" wal_appends=%d wal_fsyncs=%d ckpt_count=%d recovered_index=%d dur_errors=%d dur_intents=%d dur_reconciled=%d",
			d.WALAppends, d.WALFsyncs, d.Checkpoints, d.RecoveredIndex, d.Errors,
			d.Intents, d.Reconciled)
	}
	return line
}

// validKey enforces the protocol's key lexical rule: non-empty and free
// of ':' (tokenization already excludes spaces and newlines). A ':' in a
// key would make w:<key>:<delta> ops and the replication LOG pair
// encoding ambiguous, silently diverging replicas — so it is rejected at
// the door, on every verb.
func validKey(k string) bool {
	return k != "" && !strings.ContainsRune(k, ':')
}

// parseNum decodes an ASCII-decimal value; missing or malformed values
// read as 0 (fresh keys start at zero).
func parseNum(v []byte) int64 {
	if len(v) == 0 {
		return 0
	}
	n, err := strconv.ParseInt(string(v), 10, 64)
	if err != nil {
		return 0
	}
	return n
}
