// Package server fronts a sharded SCC engine (internal/shard) with a TCP
// line protocol and a value-cognizant admission queue. One request per
// line, one response line per request:
//
//	PING                               -> OK pong
//	GET <key>                          -> OK <n> | NIL
//	PUT <key> <n>                      -> OK <n> | SHED | ERR <msg>
//	ADD <key> <delta>                  -> OK <new> | SHED | ERR <msg>
//	UPD [v=<f>] [dl=<ms>] [grad=<g>] <op>... -> OK <new>... | SHED | ERR <msg>
//	SUM <key>...                       -> OK <total> | ERR <msg>
//	STATS                              -> OK k=v ...
//
// A UPD op is r:<key> (a read the transaction depends on) or
// w:<key>:<delta> (read-modify-write adding delta). The whole op list
// executes as one serializable transaction: on one shard it runs natively
// under SCC (speculative shadows and all); across shards it commits
// atomically via the deterministic-order cross-shard protocol. v/dl/grad
// describe the request's Def. 2 value function for admission ordering,
// load shedding, and the engine's value-cognizant commit deferment. A
// cross-shard transaction that fails validation re-enters the admission
// queue before every retry: it is shed once its value function crosses
// zero (counted as cross_shed in STATS) and otherwise re-dispatched by
// expected value, so retries are value-cognizant too.
// SUM reads its keys as one consistent cross-shard snapshot.
//
// # Pipelined framing
//
// Any request may instead be wrapped in REQ framing:
//
//	REQ <id> <verb> [args...]          -> RES <id> <response>
//
// where <id> is an arbitrary space-free client token echoed back
// verbatim. Pipelined requests on one connection are dispatched
// concurrently (up to Config.PipelineDepth in flight) and their RES lines
// may arrive in any order — the id is the correlation. Bare (legacy)
// requests keep their strict semantics: each is processed to completion,
// in arrival order relative to other bare requests, before the next line
// is read. The two framings mix freely on one connection.
//
// Values are signed 64-bit integers in ASCII decimal; keys are any
// space-free tokens not containing ':'.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/shard"
	"repro/internal/stats"
)

// Config configures a Server.
type Config struct {
	// Shards is the partition count of the backing store (default 16).
	Shards int
	// Mode selects the per-shard concurrency control protocol.
	Mode engine.Mode
	// Admission configures the value-cognizant admission queue.
	Admission AdmissionConfig
	// GroupCommit coalesces per-shard commit latch acquisitions across
	// concurrent connections (disabled unless Enabled is set).
	GroupCommit engine.GroupCommit
	// PipelineDepth caps concurrently dispatched REQ-framed requests per
	// connection (default 128). Past the cap the connection's reader
	// stalls — TCP backpressure, not an error.
	PipelineDepth int
}

// Server serves a sharded store over TCP.
type Server struct {
	store         *shard.Store
	adm           *Admission
	pipelineDepth int

	// mu guards connection lifecycle only; per-request counters use
	// their own synchronization so requests never serialize on it.
	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	latMu     sync.Mutex
	lat       *stats.Sample
	requests  atomic.Int64
	crossShed atomic.Int64 // cross-shard retries shed past their zero-crossing

	wg sync.WaitGroup
}

// New returns a server over a fresh sharded store.
func New(cfg Config) *Server {
	if cfg.PipelineDepth <= 0 {
		cfg.PipelineDepth = 128
	}
	return &Server{
		store: shard.Open(shard.Config{
			Shards: cfg.Shards,
			Engine: engine.Config{Mode: cfg.Mode, GroupCommit: cfg.GroupCommit},
		}),
		adm:           NewAdmission(cfg.Admission),
		pipelineDepth: cfg.PipelineDepth,
		conns:         make(map[net.Conn]struct{}),
		lat:           stats.NewSample(4096, 1),
	}
}

// Store exposes the backing sharded store (stats inspection, seeding).
func (s *Server) Store() *shard.Store { return s.store }

// Admission exposes the admission queue.
func (s *Server) Admission() *Admission { return s.adm }

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Serve accepts connections on lis until Close. Each connection is served
// by its own goroutine, requests on it strictly in order.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return errors.New("server: closed")
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Addr returns the listening address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// Close stops accepting, closes every connection, and closes the store.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.lis != nil {
		s.lis.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.store.Close()
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	// All responses funnel through one writer goroutine, which batches:
	// it writes every response already queued, then flushes once — under
	// pipelined load many responses share one syscall. On a write error
	// it keeps draining (discarding) so workers never block on a dead
	// connection.
	out := make(chan string, 4*s.pipelineDepth)
	wdone := make(chan struct{})
	var connDead atomic.Bool
	go func() {
		defer close(wdone)
		w := bufio.NewWriter(conn)
		dead := false
		// A connection that cannot carry responses must not keep
		// executing requests: the dead flag stops the reader loop even
		// for lines already sitting in its scanner buffer, and closing
		// the connection unblocks a reader parked in a Read syscall.
		// The writer itself keeps draining (discarding) so workers
		// never block on the channel.
		die := func() {
			dead = true
			connDead.Store(true)
			conn.Close()
		}
		for line := range out {
			for {
				if !dead {
					if _, err := w.WriteString(line); err != nil {
						die()
					} else if _, err := w.WriteString("\n"); err != nil {
						die()
					}
				}
				select {
				case next, ok := <-out:
					if !ok {
						if !dead {
							w.Flush()
						}
						return
					}
					line = next
					continue
				default:
				}
				break
			}
			if !dead && w.Flush() != nil {
				die()
			}
		}
	}()

	// Pipelined (REQ-framed) requests dispatch concurrently, bounded by
	// the pipeline depth; bare requests run inline so they stay strictly
	// ordered among themselves.
	sem := make(chan struct{}, s.pipelineDepth)
	var workers sync.WaitGroup

	r := bufio.NewScanner(conn)
	r.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for r.Scan() {
		if connDead.Load() {
			break
		}
		fields := strings.Fields(r.Text())
		if len(fields) == 0 {
			continue
		}
		if strings.ToUpper(fields[0]) == "REQ" {
			switch {
			case len(fields) < 2:
				out <- "ERR usage: REQ <id> <verb> [args...]"
			case len(fields) == 2:
				out <- "RES " + fields[1] + " ERR missing verb"
			default:
				id, rest := fields[1], fields[2:]
				sem <- struct{}{}
				workers.Add(1)
				go func() {
					defer workers.Done()
					defer func() { <-sem }()
					out <- "RES " + id + " " + s.dispatch(rest)
				}()
			}
			continue
		}
		out <- s.dispatch(fields)
	}
	tooLong := errors.Is(r.Err(), bufio.ErrTooLong)
	workers.Wait()
	if tooLong {
		// The connection cannot be resynced mid-line, but the client
		// deserves a diagnostic before the close instead of a bare EOF.
		out <- "ERR request line exceeds 1MB"
	}
	close(out)
	<-wdone
}

// op is one parsed UPD operation.
type op struct {
	key   string
	delta int64
	write bool
}

// dispatchLine parses and serves one raw request line. It is the
// single-string entry point the fuzzer drives; serveConn splits fields
// itself.
func (s *Server) dispatchLine(line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty request"
	}
	return s.dispatch(fields)
}

func (s *Server) dispatch(fields []string) string {
	s.requests.Add(1)
	verb := strings.ToUpper(fields[0])
	args := fields[1:]
	switch verb {
	case "PING":
		return "OK pong"
	case "GET":
		if len(args) != 1 {
			return "ERR usage: GET <key>"
		}
		v, ok := s.store.Get(args[0])
		if !ok {
			return "NIL"
		}
		return "OK " + string(v)
	case "PUT":
		if len(args) != 2 {
			return "ERR usage: PUT <key> <n>"
		}
		n, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return "ERR bad number"
		}
		return s.runUpdate(0, 0, 0, []op{{key: args[0], delta: n, write: true}}, true)
	case "ADD":
		if len(args) != 2 {
			return "ERR usage: ADD <key> <delta>"
		}
		n, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return "ERR bad number"
		}
		return s.runUpdate(0, 0, 0, []op{{key: args[0], delta: n, write: true}}, false)
	case "UPD":
		return s.handleUPD(args)
	case "SUM":
		if len(args) == 0 {
			return "ERR usage: SUM <key>..."
		}
		var total int64
		err := s.store.View(args, func(tx shard.Tx) error {
			for _, k := range args {
				v, err := tx.Get(k)
				if err != nil {
					return err
				}
				total += parseNum(v)
			}
			return nil
		})
		if err != nil {
			return "ERR " + err.Error()
		}
		return "OK " + strconv.FormatInt(total, 10)
	case "STATS":
		return s.statsLine()
	default:
		return "ERR unknown verb " + verb
	}
}

func (s *Server) handleUPD(args []string) string {
	var v, dl, grad float64
	var ops []op
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "v="):
			f, err := strconv.ParseFloat(a[2:], 64)
			if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
				return "ERR bad v="
			}
			v = f
		case strings.HasPrefix(a, "dl="):
			ms, err := strconv.ParseFloat(a[3:], 64)
			if err != nil || math.IsNaN(ms) || math.IsInf(ms, 0) {
				return "ERR bad dl="
			}
			dl = ms / 1000
		case strings.HasPrefix(a, "grad="):
			g, err := strconv.ParseFloat(a[5:], 64)
			if err != nil || math.IsNaN(g) || math.IsInf(g, 0) {
				return "ERR bad grad="
			}
			grad = g
		case strings.HasPrefix(a, "r:"):
			key := a[2:]
			if key == "" {
				return "ERR empty key"
			}
			ops = append(ops, op{key: key})
		case strings.HasPrefix(a, "w:"):
			rest := a[2:]
			i := strings.LastIndexByte(rest, ':')
			if i <= 0 {
				return "ERR bad op " + a
			}
			n, err := strconv.ParseInt(rest[i+1:], 10, 64)
			if err != nil {
				return "ERR bad delta in " + a
			}
			ops = append(ops, op{key: rest[:i], delta: n, write: true})
		default:
			return "ERR bad token " + a
		}
	}
	if len(ops) == 0 {
		return "ERR no ops"
	}
	return s.runUpdate(v, dl, grad, ops, false)
}

// runUpdate admits, executes, and answers one transactional update.
// overwrite makes writes PUT semantics (set to delta) instead of ADD.
func (s *Server) runUpdate(v, dl, grad float64, ops []op, overwrite bool) string {
	f := s.adm.FnFor(v, dl, grad)
	if err := s.adm.Acquire(f, len(ops)); err != nil {
		return "SHED"
	}
	start := time.Now()
	holding := true
	var readmitWait time.Duration
	defer func() {
		elapsed := time.Since(start)
		if holding {
			// Queue time spent in readmissions is not service time: feeding
			// it into the per-op estimate would make admission increasingly
			// pessimistic exactly when the server is loaded.
			s.adm.Release(elapsed-readmitWait, len(ops))
		}
		s.latMu.Lock()
		s.lat.Add(elapsed.Seconds())
		s.latMu.Unlock()
	}()

	keys := make([]string, len(ops))
	for i, o := range ops {
		keys[i] = o.key
	}
	// The transaction value the engine's commit deferment sees is the
	// request's current value.
	txValue := f.At(s.adm.now())
	// Value-cognizant cross-shard deferment: a multi-shard transaction
	// that failed validation surrenders its slot and re-queues through
	// the admission queue, which re-dispatches it by expected value or
	// sheds it once its value function has crossed zero — retries compete
	// for capacity exactly like fresh arrivals instead of burning slots
	// on doomed work.
	gate := func(int) error {
		t0 := time.Now()
		if err := s.adm.Readmit(f, len(ops)); err != nil {
			holding = false
			s.crossShed.Add(1)
			return err
		}
		readmitWait += time.Since(t0)
		return nil
	}
	// The closure may run several times concurrently (engine shadows), so
	// it must not mutate captured state: each execution builds a fresh
	// result slice and stashes it; the committed execution's stash wins.
	res, err := s.store.UpdateGatedResult(txValue, keys, gate, func(tx shard.Tx) error {
		results := make([]int64, 0, len(ops))
		for _, o := range ops {
			if !o.write {
				if _, err := tx.Get(o.key); err != nil {
					return err
				}
				continue
			}
			n := o.delta
			if !overwrite {
				// Read-modify-write; PUT skips the read entirely — a
				// blind write has an empty read set, always validates,
				// and never conflicts.
				cur, err := tx.Get(o.key)
				if err != nil {
					return err
				}
				n += parseNum(cur)
			}
			if err := tx.Set(o.key, []byte(strconv.FormatInt(n, 10))); err != nil {
				return err
			}
			results = append(results, n)
		}
		tx.Stash(results)
		return nil
	})
	if err != nil {
		if errors.Is(err, ErrShed) {
			return "SHED"
		}
		return "ERR " + err.Error()
	}
	var b strings.Builder
	b.WriteString("OK")
	if results, ok := res.([]int64); ok {
		for _, n := range results {
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(n, 10))
		}
	}
	return b.String()
}

func (s *Server) statsLine() string {
	st := s.store.Stats()
	ad := s.adm.Stats()
	reqs := s.requests.Load()
	s.latMu.Lock()
	qs := s.lat.Percentiles(50, 99)
	s.latMu.Unlock()
	p50, p99 := qs[0], qs[1]
	// An idle server has no latency observations; report zeros rather
	// than NaN-poisoning parsers of the k=v line.
	if math.IsNaN(p50) {
		p50, p99 = 0, 0
	}
	return fmt.Sprintf(
		"OK shards=%d reqs=%d commits=%d fast=%d cross=%d cross_restarts=%d cross_shed=%d "+
			"aborts=%d restarts=%d forks=%d promotions=%d deferrals=%d commit_batches=%d views=%d "+
			"admitted=%d shed=%d readmits=%d depth=%d inflight=%d op_time_us=%.1f p50_us=%.0f p99_us=%.0f",
		s.store.NumShards(), reqs, st.TotalCommits(), st.FastPath, st.CrossCommits,
		st.CrossRestarts, s.crossShed.Load(), st.Engine.Aborts, st.Engine.Restarts, st.Engine.Forks,
		st.Engine.Promotions, st.Engine.Deferrals, st.Engine.CommitBatches, st.Views,
		ad.Admitted, ad.Shed, ad.Readmits, ad.Depth, ad.InFlight, ad.OpTime*1e6,
		p50*1e6, p99*1e6)
}

// parseNum decodes an ASCII-decimal value; missing or malformed values
// read as 0 (fresh keys start at zero).
func parseNum(v []byte) int64 {
	if len(v) == 0 {
		return 0
	}
	n, err := strconv.ParseInt(string(v), 10, 64)
	if err != nil {
		return 0
	}
	return n
}
