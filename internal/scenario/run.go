package scenario

import (
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	clusterpkg "repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/history"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/server/opts"
	"repro/internal/workload"
)

// cluster is one booted cell topology: the address load is driven at,
// the address audits read from (the replica, when there is one), and
// everything that must be torn down afterwards.
type cluster struct {
	pri     *server.Server
	addr    string
	rep     *server.Server
	repAddr string
	replica *repl.Replica
	dir     string

	// Failover-cell machinery: the replica's lease monitor, the instant
	// the primary was killed, the measured kill-to-promotion latency
	// (delivered once via promoted), and the redirects workers followed.
	node      *clusterpkg.Node
	killNano  atomic.Int64
	promoted  chan time.Duration
	redirects atomic.Int64
}

// auditAddr is where post-run audits read: the replica when the cell has
// one — auditing replicated state is the point of the role — else the
// primary.
func (cl *cluster) auditAddr() string {
	if cl.repAddr != "" {
		return cl.repAddr
	}
	return cl.addr
}

func (cl *cluster) close() {
	if cl.node != nil {
		// Stop the failover monitor first so no promotion races teardown.
		cl.node.Close()
	}
	if cl.replica != nil {
		cl.replica.Close()
	}
	if cl.rep != nil {
		cl.rep.Close()
	}
	if cl.pri != nil {
		cl.pri.Close()
	}
	if cl.dir != "" {
		os.RemoveAll(cl.dir)
	}
}

// serve starts a server on a fresh loopback listener and returns its
// address. Serve's error is dropped: it reports the listener closing at
// teardown.
func serve(s *server.Server) string {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic("scenario: loopback listen: " + err.Error())
	}
	go s.Serve(lis)
	return lis.Addr().String()
}

// bootCluster builds the cell's server topology. All roles share one
// engine configuration (8 shards, SCC-2S, group commit) so rows differ
// by the axis under test, not by incidental tuning.
func bootCluster(c Cell) (*cluster, error) {
	cfg := server.Config{
		Shards: 8,
		Mode:   engine.SCC2S,
		Admission: server.AdmissionConfig{
			MaxConcurrent: 32,
			MaxQueue:      4096,
			TenantBudget:  c.TenantBudget,
		},
		GroupCommit: engine.GroupCommit{Enabled: true, Window: 100 * time.Microsecond, MaxBatch: 64},
	}
	cl := &cluster{}
	switch c.Role {
	case RolePrimary:
		cl.pri = server.New(cfg)
		cl.addr = serve(cl.pri)
	case RoleDurable:
		dir, err := os.MkdirTemp("", "scc-scenario-")
		if err != nil {
			return nil, err
		}
		cl.dir = dir
		cfg.Durable = durable.Options{Dir: dir, Fsync: durable.FsyncGroup, CkptEvery: 1024}
		srv, err := server.Open(cfg)
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("cell %q: durable open: %w", c.Name, err)
		}
		cl.pri = srv
		cl.addr = serve(cl.pri)
	case RolePrimaryReplica:
		pcfg := cfg
		pcfg.Repl = server.ReplOptions{Primary: true}
		cl.pri = server.New(pcfg)
		cl.addr = serve(cl.pri)
		gate := repl.NewLagGate(cfg.Shards, 50*time.Millisecond, 0)
		rcfg := server.Config{Shards: cfg.Shards, Mode: cfg.Mode, Repl: server.ReplOptions{Gate: gate}}
		cl.rep = server.New(rcfg)
		cl.repAddr = serve(cl.rep)
		rep, err := repl.StartReplica(repl.ReplicaConfig{
			Primary: cl.addr,
			Store:   cl.rep.Store(),
			Gate:    gate,
		})
		if err != nil {
			cl.close()
			return nil, fmt.Errorf("cell %q: replica: %w", c.Name, err)
		}
		cl.replica = rep
	case RoleFailover:
		if err := bootFailover(c, cfg, cl); err != nil {
			cl.close()
			return nil, err
		}
	default:
		return nil, fmt.Errorf("cell %q: unknown role %q", c.Name, c.Role)
	}
	return cl, nil
}

// waitCaughtUp polls until the replica has applied every record the
// primary's feed holds, so audits read a complete copy.
func (cl *cluster) waitCaughtUp(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		heads := cl.pri.Feed().Heads()
		applied := cl.replica.Applied()
		ok := len(applied) == len(heads)
		for i := 0; ok && i < len(heads); i++ {
			ok = applied[i] >= heads[i]
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica never caught up: heads %v applied %v", heads, applied)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Key layout. Page keys carry the balanced deltas the conservation audit
// sums; one ledger counter per worker counts acked commits.
func pageKey(p model.PageID) string { return "p" + strconv.Itoa(int(p)) }
func counterKey(w, s int) string    { return fmt.Sprintf("cnt.%d.%d", w, s) }
func hotKeyName(k int) string       { return "ohot" + strconv.Itoa(k) }

const oracleSeqKey = "oseq"

// pobs is one oracle commit observation: the post-increment sequencer
// and hot-key values returned by the commit.
type pobs struct {
	gval int64
	hkey int
	hval int64
}

// pageOps renders one generated transaction as wire ops: reads stay
// reads, writes carry alternating ±delta so each transaction's net
// effect on the page keyspace is zero (an odd write count parks a zero
// delta on the last write), and a trailing +1 on the worker's ledger
// counter records the ack.
func pageOps(tx *model.Txn, w, s int) []client.Op {
	writes := 0
	for _, o := range tx.Ops {
		if o.Write {
			writes++
		}
	}
	ops := make([]client.Op, 0, len(tx.Ops)+1)
	sign := int64(1)
	wi := 0
	for _, o := range tx.Ops {
		op := client.Op{Key: pageKey(o.Page)}
		if o.Write {
			wi++
			d := sign * 3
			sign = -sign
			if wi == writes && writes%2 == 1 {
				d = 0
			}
			op.Write, op.Delta = true, d
		}
		ops = append(ops, op)
	}
	return append(ops, client.Op{Key: counterKey(w, s), Delta: 1, Write: true})
}

// realizedValue re-evaluates the request's value function at its
// observed latency — the client-side Def. 7 account, family-aware
// because it goes through the same opts.T → value.Fn mapping the server
// admission uses.
func realizedValue(o client.TxOpts, elapsed time.Duration) float64 {
	w := opts.T{Value: o.Value, Deadline: o.Deadline, Gradient: o.Gradient, Family: o.Family}
	v := w.Fn(0).At(elapsed.Seconds())
	if v < 0 {
		return 0
	}
	return v
}

// traceSampleEvery asks every nth transaction per worker for a
// server-side lifecycle trace; the sampled timelines become the row's
// per-stage latency attribution at negligible load cost.
const traceSampleEvery = 20

// workerResult accumulates one driver goroutine's client-side account.
type workerResult struct {
	requests, committed, shed, errs int64
	submitted, realized             float64
	lats                            []float64 // committed latencies, ms
	perTenant                       map[string]*TenantRow
	ledger                          map[string]int64     // counter key -> acked commits
	stages                          map[string][]float64 // stage -> sampled offsets, ms
}

func newWorkerResult() *workerResult {
	return &workerResult{perTenant: map[string]*TenantRow{}, ledger: map[string]int64{},
		stages: map[string][]float64{}}
}

// accountTrace folds one sampled trace= timeline into the per-stage
// offset samples. Malformed or empty tokens parse to nil and are dropped.
func (r *workerResult) accountTrace(token string) {
	for _, ev := range obs.ParseTrace(token) {
		r.stages[ev.Stage] = append(r.stages[ev.Stage], float64(ev.At)/float64(time.Millisecond))
	}
}

func (r *workerResult) account(o client.TxOpts, cnt string, err error, elapsed time.Duration) {
	r.requests++
	r.submitted += o.Value
	var tr *TenantRow
	if o.Tenant != "" {
		tr = r.perTenant[o.Tenant]
		if tr == nil {
			tr = &TenantRow{Name: o.Tenant}
			r.perTenant[o.Tenant] = tr
		}
		tr.Requests++
	}
	switch {
	case err == nil:
		r.committed++
		r.ledger[cnt]++
		v := realizedValue(o, elapsed)
		r.realized += v
		r.lats = append(r.lats, float64(elapsed)/float64(time.Millisecond))
		if tr != nil {
			tr.Committed++
			tr.ValueRealized += v
		}
	case errors.Is(err, client.ErrShed):
		r.shed++
		if tr != nil {
			tr.Shed++
		}
	default:
		r.errs++
	}
}

func (r *workerResult) merge(o *workerResult) {
	r.requests += o.requests
	r.committed += o.committed
	r.shed += o.shed
	r.errs += o.errs
	r.submitted += o.submitted
	r.realized += o.realized
	r.lats = append(r.lats, o.lats...)
	for k, v := range o.ledger {
		r.ledger[k] += v
	}
	for stage, samples := range o.stages {
		r.stages[stage] = append(r.stages[stage], samples...)
	}
	for name, t := range o.perTenant {
		agg := r.perTenant[name]
		if agg == nil {
			agg = &TenantRow{Name: name}
			r.perTenant[name] = agg
		}
		agg.Requests += t.Requests
		agg.Committed += t.Committed
		agg.Shed += t.Shed
		agg.ValueRealized += t.ValueRealized
	}
}

// Run boots the cell's topology, drives it for the cell duration, audits
// the store, and returns the cell's Row. Audit failures are reported in
// the Row's flags, not as errors; an error means the harness itself
// could not run the cell.
func Run(c Cell) (Row, error) {
	c = c.withDefaults()
	if err := c.validate(); err != nil {
		return Row{}, err
	}
	fam, err := c.family()
	if err != nil {
		return Row{}, err
	}
	cl, err := bootCluster(c)
	if err != nil {
		return Row{}, err
	}
	defer cl.close()

	var agg *workerResult
	var oracleErr error
	hasOracle := false
	start := time.Now()
	switch {
	case c.Oracle:
		agg, oracleErr, err = driveOracle(c, cl)
		hasOracle = true
	case c.Role == RoleFailover:
		agg, err = driveFailover(c, cl, fam)
	default:
		agg, err = driveLoad(c, cl, fam)
	}
	if err != nil {
		return Row{}, err
	}
	elapsed := time.Since(start)

	row := Row{
		Cell:        c.Name,
		Skew:        skewLabel(c.Skew),
		Family:      familyLabel(c.Family),
		Session:     sessionLabel(c.Interactive),
		Role:        c.Role,
		DurationSec: elapsed.Seconds(),
		Clients:     c.Clients,
		Requests:    agg.requests,
		Committed:   agg.committed,
		Shed:        agg.shed,
		Errors:      agg.errs,
	}
	if elapsed > 0 {
		row.ThroughputTPS = float64(agg.committed) / elapsed.Seconds()
	}
	row.P50Ms, row.P99Ms = quantiles(agg.lats)
	row.ValueSubmitted = agg.submitted
	row.ValueRealized = agg.realized
	if agg.submitted > 0 {
		row.ValueRatio = agg.realized / agg.submitted
	}
	for _, name := range sortedTenants(agg.perTenant) {
		row.Tenants = append(row.Tenants, *agg.perTenant[name])
	}
	if len(agg.stages) > 0 {
		row.Stages = make(map[string]StageRow, len(agg.stages))
		for stage, samples := range agg.stages {
			p50, p99 := quantiles(samples)
			row.Stages[stage] = StageRow{N: len(samples), P50Ms: p50, P99Ms: p99}
		}
	}

	if cl.replica != nil && c.Role != RoleFailover {
		// Failover cells skip the catch-up barrier: the primary is dead
		// and the replica already promoted past it; log records the kill
		// cut off mid-flight were never acknowledged.
		if err := cl.waitCaughtUp(10 * time.Second); err != nil {
			return Row{}, fmt.Errorf("cell %q: %w", c.Name, err)
		}
	}
	if hasOracle {
		ok := oracleErr == nil
		row.OracleOK = &ok
		// The oracle driver's conservation/ledger analogues are encoded
		// in its own invariants (no lost sequencer updates, a contiguous
		// acked run); driveOracle folded them into oracleErr, so the
		// flags track the same verdict.
		row.ConservationOK = ok
		row.LedgerOK = ok
	} else {
		aud, err := client.Dial(cl.auditAddr())
		if err != nil {
			return Row{}, fmt.Errorf("cell %q: audit dial: %w", c.Name, err)
		}
		defer aud.Close()
		row.ConservationOK, err = auditConservation(aud, c.Keys)
		if err != nil {
			return Row{}, fmt.Errorf("cell %q: conservation audit: %w", c.Name, err)
		}
		// Failover cells audit the ledger with >= instead of ==: a retry
		// whose first attempt committed but lost its ack to the kill
		// double-lands legitimately. A counter below its acked count is
		// still a lost acked commit and still fails.
		row.LedgerOK, err = auditLedger(aud, agg.ledger, c.Role == RoleFailover)
		if err != nil {
			return Row{}, fmt.Errorf("cell %q: ledger audit: %w", c.Name, err)
		}
	}

	statsAddr := cl.addr
	if c.Role == RoleFailover {
		// The original primary is dead; the promoted replica reports.
		statsAddr = cl.repAddr
	}
	stats, err := serverStats(statsAddr)
	if err != nil {
		return Row{}, fmt.Errorf("cell %q: stats: %w", c.Name, err)
	}
	row.Server = stats
	if ts, ok := stats["tenant_shed"]; ok {
		row.TenantShed, _ = strconv.ParseInt(ts, 10, 64)
	}
	if c.Role == RoleFailover {
		row.PromoteMs = float64(cl.promoteLatency()) / float64(time.Millisecond)
		row.Redirects = cl.redirects.Load()
	}
	return row, nil
}

func familyLabel(f string) string {
	if f == "" {
		return "linear"
	}
	return f
}

func sessionLabel(interactive bool) string {
	if interactive {
		return "interactive"
	}
	return "oneshot"
}

func sortedTenants(m map[string]*TenantRow) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// quantiles returns the p50 and p99 of the sample (ms).
func quantiles(lats []float64) (p50, p99 float64) {
	if len(lats) == 0 {
		return 0, 0
	}
	s := append([]float64(nil), lats...)
	sort.Float64s(s)
	at := func(q float64) float64 {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	return at(0.50), at(0.99)
}

// driveLoad runs the cell's closed load: Clients connections, each
// either streaming Sessions-sized pipelined Batch bursts (one-shot) or
// running Sessions concurrent interactive TXN sessions with think time.
func driveLoad(c Cell, cl *cluster, fam opts.Family) (*workerResult, error) {
	deadline := time.Now().Add(c.Duration)
	results := make([]*workerResult, c.Clients)
	errs := make([]error, c.Clients)
	var wg sync.WaitGroup
	for w := 0; w < c.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m, err := client.DialMux(cl.addr)
			if err != nil {
				errs[w] = err
				return
			}
			defer m.Close()
			if c.Interactive {
				results[w], errs[w] = driveInteractive(c, m, fam, w, deadline)
			} else {
				results[w], errs[w] = driveOneShot(c, m, fam, w, deadline)
			}
		}(w)
	}
	wg.Wait()
	agg := newWorkerResult()
	for w := 0; w < c.Clients; w++ {
		if errs[w] != nil {
			return nil, fmt.Errorf("cell %q: worker %d: %w", c.Name, w, errs[w])
		}
		agg.merge(results[w])
	}
	return agg, nil
}

func driveOneShot(c Cell, m *client.Mux, fam opts.Family, w int, deadline time.Time) (*workerResult, error) {
	gen := workload.NewGenerator(c.workloadConfig(c.Seed + int64(w)*7919))
	pick := dist.NewRNG(c.Seed*1_000_003 + int64(w))
	r := newWorkerResult()
	reqs := make([]client.UpdateReq, 0, c.Sessions)
	seq := 0
	for time.Now().Before(deadline) {
		reqs = reqs[:0]
		for i := 0; i < c.Sessions; i++ {
			tx := gen.Next()
			seq++
			reqs = append(reqs, client.UpdateReq{
				Ops: pageOps(tx, w, 0),
				Opts: client.TxOpts{
					Value:    tx.Class.Value,
					Deadline: c.Deadline,
					Family:   fam,
					Tenant:   c.pickTenant(pick),
					Trace:    seq%traceSampleEvery == 0,
				},
			})
		}
		for i, out := range m.Batch(reqs) {
			r.account(reqs[i].Opts, counterKey(w, 0), out.Err, out.Elapsed)
			if out.Trace != "" {
				r.accountTrace(out.Trace)
			}
		}
	}
	return r, nil
}

func driveInteractive(c Cell, m *client.Mux, fam opts.Family, w int, deadline time.Time) (*workerResult, error) {
	results := make([]*workerResult, c.Sessions)
	var wg sync.WaitGroup
	for s := 0; s < c.Sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			gen := workload.NewGenerator(c.workloadConfig(c.Seed + int64(w)*7919 + int64(s)*104_729))
			pick := dist.NewRNG(c.Seed*1_000_003 + int64(w)*257 + int64(s))
			r := newWorkerResult()
			cnt := counterKey(w, s)
			seq := 0
			for time.Now().Before(deadline) {
				tx := gen.Next()
				ops := pageOps(tx, w, s)
				seq++
				o := client.TxOpts{
					Value:    tx.Class.Value,
					Deadline: c.Deadline,
					Family:   fam,
					Tenant:   c.pickTenant(pick),
					Trace:    seq%traceSampleEvery == 0,
				}
				t0 := time.Now()
				var trace string
				err := m.Do(o, func(t *client.Txn) error {
					for _, op := range ops {
						if th := gen.NextThink(); th > 0 {
							time.Sleep(time.Duration(th * float64(time.Second)))
						}
						var err error
						if op.Write {
							_, err = t.Add(op.Key, op.Delta)
						} else {
							_, err = t.Get(op.Key)
						}
						if err != nil {
							return err
						}
					}
					_, err := t.Commit()
					trace = t.Trace()
					return err
				})
				r.account(o, cnt, err, time.Since(t0))
				if trace != "" {
					r.accountTrace(trace)
				}
			}
			results[s] = r
		}(s)
	}
	wg.Wait()
	agg := newWorkerResult()
	for _, r := range results {
		agg.merge(r)
	}
	return agg, nil
}

// driveOracle runs the high-contention serializability cell: every
// session increments the shared sequencer and one Zipf-hot key inside an
// interactive transaction, and the commit results are replayed through
// the history oracle. The returned oracleErr carries the first violated
// invariant (lost update, phantom ack, or a conflict-graph cycle).
func driveOracle(c Cell, cl *cluster) (*workerResult, error, error) {
	const hotKeys = 8
	theta := c.Skew.Theta
	if c.Skew.Kind != workload.KeyZipf {
		theta = 0.99
	}
	var mu sync.Mutex
	var all []pobs
	deadline := time.Now().Add(c.Duration)
	results := make([]*workerResult, c.Clients)
	errs := make([]error, c.Clients)
	var wg sync.WaitGroup
	for w := 0; w < c.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m, err := client.DialMux(cl.addr)
			if err != nil {
				errs[w] = err
				return
			}
			defer m.Close()
			wr := make([]*workerResult, c.Sessions)
			var swg sync.WaitGroup
			for s := 0; s < c.Sessions; s++ {
				swg.Add(1)
				go func(s int) {
					defer swg.Done()
					z := dist.NewRNG(c.Seed+int64(w)*7919+int64(s)*104_729).Zipf(hotKeys, theta)
					gen := workload.NewGenerator(c.workloadConfig(c.Seed + int64(w)*31 + int64(s)))
					r := newWorkerResult()
					o := client.TxOpts{Value: 1, Deadline: c.Deadline}
					for time.Now().Before(deadline) {
						hk := z.Next()
						var res []int64
						t0 := time.Now()
						err := m.Do(o, func(t *client.Txn) error {
							if _, err := t.Add(oracleSeqKey, 1); err != nil {
								return err
							}
							if th := gen.NextThink(); th > 0 {
								time.Sleep(time.Duration(th * float64(time.Second)))
							}
							if _, err := t.Add(hotKeyName(hk), 1); err != nil {
								return err
							}
							var err error
							res, err = t.Commit()
							return err
						})
						r.account(o, counterKey(w, s), err, time.Since(t0))
						if err == nil && len(res) == 2 {
							mu.Lock()
							all = append(all, pobs{gval: res[0], hkey: hk, hval: res[1]})
							mu.Unlock()
						}
					}
					wr[s] = r
				}(s)
			}
			swg.Wait()
			agg := newWorkerResult()
			for _, r := range wr {
				agg.merge(r)
			}
			results[w] = agg
		}(w)
	}
	wg.Wait()
	agg := newWorkerResult()
	for w := 0; w < c.Clients; w++ {
		if errs[w] != nil {
			return nil, nil, fmt.Errorf("cell %q: worker %d: %w", c.Name, w, errs[w])
		}
		agg.merge(results[w])
	}
	return agg, checkOracle(all, agg.committed), nil
}

// checkOracle rebuilds read versions from the cumulative-sum results
// (the pattern of internal/server's interactive history test) and runs
// the conflict-graph check. The sequencer doubles as the acked-commit
// ledger: the observed values must be exactly {1..committed}, each once.
func checkOracle(all []pobs, committed int64) error {
	if int64(len(all)) != committed {
		return fmt.Errorf("oracle: %d commit observations for %d acks", len(all), committed)
	}
	if len(all) == 0 {
		return errors.New("oracle: no commits observed")
	}
	gPage := model.PageID(0)
	hPage := func(k int) model.PageID { return model.PageID(1 + k) }
	gWriter := make(map[int64]model.TxnID, len(all))
	hWriter := make(map[int]map[int64]model.TxnID)
	for i, o := range all {
		id := model.TxnID(i + 1)
		if o.gval < 1 || o.gval > int64(len(all)) {
			return fmt.Errorf("oracle: sequencer value %d outside acked run 1..%d", o.gval, len(all))
		}
		if _, dup := gWriter[o.gval]; dup {
			return fmt.Errorf("oracle: duplicate sequencer value %d (lost update)", o.gval)
		}
		gWriter[o.gval] = id
		if hWriter[o.hkey] == nil {
			hWriter[o.hkey] = make(map[int64]model.TxnID)
		}
		if _, dup := hWriter[o.hkey][o.hval]; dup {
			return fmt.Errorf("oracle: duplicate hot%d value %d (lost update)", o.hkey, o.hval)
		}
		hWriter[o.hkey][o.hval] = id
	}
	version := func(m map[int64]model.TxnID, preVal int64, what string) (model.TxnID, error) {
		if preVal == 0 {
			return 0, nil
		}
		id, ok := m[preVal]
		if !ok {
			return 0, fmt.Errorf("oracle: %s pre-value %d produced by no committed transaction", what, preVal)
		}
		return id, nil
	}
	var rec history.Recorder
	for i, o := range all {
		gv, err := version(gWriter, o.gval-1, oracleSeqKey)
		if err != nil {
			return err
		}
		hv, err := version(hWriter[o.hkey], o.hval-1, hotKeyName(o.hkey))
		if err != nil {
			return err
		}
		rec.Add(history.CommitRecord{
			ID:  model.TxnID(i + 1),
			Seq: int(o.gval),
			Reads: []model.ReadObs{
				{Page: gPage, Version: gv},
				{Page: hPage(o.hkey), Version: hv},
			},
			Writes: []model.PageID{gPage, hPage(o.hkey)},
		})
	}
	return rec.Check()
}

// auditConservation sums the page keyspace (in SUM-verb chunks): every
// committed transaction's deltas were balanced, so any nonzero total is
// a torn or double-applied write.
func auditConservation(aud *client.Client, keys int) (bool, error) {
	total := int64(0)
	const chunk = 64
	for lo := 0; lo < keys; lo += chunk {
		hi := lo + chunk
		if hi > keys {
			hi = keys
		}
		ks := make([]string, 0, chunk)
		for p := lo; p < hi; p++ {
			ks = append(ks, pageKey(model.PageID(p)))
		}
		s, err := aud.Sum(ks...)
		if err != nil {
			return false, err
		}
		total += s
	}
	return total == 0, nil
}

// auditLedger re-reads every worker's commit counter: the stored count
// must equal the client's acked commits — no lost acks, no phantom
// acks. With atLeast the check relaxes to >=, the failover contract: a
// counter above its acked count is a commit whose ack the kill
// swallowed before the client retried, while a counter below it is a
// lost acknowledged commit either way.
func auditLedger(aud *client.Client, ledger map[string]int64, atLeast bool) (bool, error) {
	for key, want := range ledger {
		got, _, err := aud.Get(key)
		if err != nil {
			return false, err
		}
		if got < want || (!atLeast && got != want) {
			return false, nil
		}
	}
	return true, nil
}

// serverStats fetches the primary's STATS map.
func serverStats(addr string) (map[string]string, error) {
	c, err := client.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Stats()
}

// RunGrid runs every cell of the named preset sequentially and assembles
// the scc-scenario/v1 artifact. cellDuration, when positive, overrides
// each cell's load duration (the smoke-vs-nightly knob). logf, when
// non-nil, receives one progress line per cell.
func RunGrid(preset string, cellDuration time.Duration, logf func(format string, args ...any)) (Artifact, error) {
	cells, err := Grid(preset)
	if err != nil {
		return Artifact{}, err
	}
	art := Artifact{Schema: SchemaV1, Preset: preset, CPUs: runtime.GOMAXPROCS(0)}
	if art.CPUs == 1 && logf != nil {
		logf("scenario: GOMAXPROCS=1 — single-core run, latencies and throughput are not comparable to multi-core artifacts")
	}
	for _, c := range cells {
		if cellDuration > 0 {
			c.Duration = cellDuration
		}
		row, err := Run(c)
		if err != nil {
			return Artifact{}, err
		}
		if logf != nil {
			logf("scenario: cell %-20s committed=%d shed=%d tps=%.0f p99=%.2fms value=%.2f conservation=%v ledger=%v",
				row.Cell, row.Committed, row.Shed, row.ThroughputTPS, row.P99Ms, row.ValueRatio,
				row.ConservationOK, row.LedgerOK)
		}
		art.Cells = append(art.Cells, row)
	}
	return art, nil
}
