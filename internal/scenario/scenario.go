// Package scenario drives the live server through a declarative matrix
// of workload × value-function cells — the CCBench-style counterpart to
// the simulator's figure sweeps. Each cell boots a fresh server in the
// role it names (primary, durable, or primary+replica), runs a
// fixed-duration closed load whose key skew, session shape, think time,
// and value-function family come from the cell spec, then audits the
// store: every transaction's page deltas are balanced so conservation
// demands the keyspace sums to zero, and every acked commit bumped a
// per-worker ledger counter the audit re-reads. One cell emits one Row;
// a grid of cells emits one scc-scenario/v1 Artifact.
//
// The harness deliberately reuses the production stack end to end: keys
// are drawn by internal/workload generators, options ride the
// internal/server/opts token codec through the real client, and the
// server under test listens on a real TCP loopback socket — nothing is
// stubbed.
package scenario

import (
	"fmt"
	"time"

	"repro/internal/dist"
	"repro/internal/server/opts"
	"repro/internal/workload"
)

// SchemaV1 names the artifact schema emitted by grids.
const SchemaV1 = "scc-scenario/v1"

// Server roles a cell can boot.
const (
	RolePrimary        = "primary"
	RoleDurable        = "durable"
	RolePrimaryReplica = "primary+replica"
	// RoleFailover boots a clustered primary+replica pair with a
	// lease-based failover monitor on the replica, kills the primary at
	// half the cell duration, and keeps driving: workers follow the ERR
	// not-primary redirects onto the promoted replica, the row records
	// the kill-to-promotion latency, and the ledger audit runs in its
	// >= form (retries may double-land; lost acked commits still fail).
	RoleFailover = "primary+replica+failover"
)

// Tenant is one admission-budget tenant in a cell's traffic mix: Weight
// is the share of requests tagged tenant=Name (weights are normalized
// over the cell's tenant list; requests beyond the list are untagged).
type Tenant struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
}

// Cell is one point of the scenario matrix. The zero value of most
// fields means "the default"; withDefaults fills them in.
type Cell struct {
	Name string
	// Mix selects the class mix: "" or "base" is the paper's one-class
	// baseline, "two" is the Fig. 14(b) long/short value mix.
	Mix string
	// Skew is the key distribution (workload.KeyUniform/KeyZipf/KeyHot).
	Skew workload.KeyDist
	// Family is the value-function family in wire vf= syntax: "" or
	// "linear", "cliff", "step:<frac>", "renew:<n>". It is validated by
	// opts.ParseFamily — the same single gate the server uses.
	Family string
	// Interactive drives each transaction as a TXN session (BEGIN, one
	// round trip per op with think time between ops, COMMIT) instead of
	// a pipelined one-shot UPD.
	Interactive bool
	// Think is the per-op client think time (interactive cells only).
	Think workload.ThinkTime
	// Role is the server topology: RolePrimary (default), RoleDurable
	// (WAL + checkpoints in a temp dir), or RolePrimaryReplica (load on
	// the primary, audits on the caught-up replica).
	Role string
	// Tenants tags traffic for per-tenant admission budgets;
	// TenantBudget is the server's per-tenant value/sec budget (0 = off).
	Tenants      []Tenant
	TenantBudget float64
	// Oracle replays the cell's committed history through the
	// serializability oracle (internal/history) instead of the
	// conservation audit: sessions increment a shared sequencer and a
	// Zipfian hot key, and the commit results must form an acyclic
	// conflict graph.
	Oracle bool

	Clients  int           // client connections (one mux each)
	Sessions int           // pipelined batch size, or interactive sessions per client
	Keys     int           // keyspace size (workload DBPages)
	Deadline time.Duration // per-transaction soft deadline
	Duration time.Duration // wall-clock load duration
	Seed     int64
}

// withDefaults fills zero fields with the matrix defaults.
func (c Cell) withDefaults() Cell {
	if c.Mix == "" {
		c.Mix = "base"
	}
	if c.Role == "" {
		c.Role = RolePrimary
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Sessions <= 0 {
		if c.Interactive {
			c.Sessions = 4
		} else {
			c.Sessions = 8
		}
	}
	if c.Keys <= 0 {
		c.Keys = 128
	}
	if c.Deadline <= 0 {
		c.Deadline = 500 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Role == RoleFailover && c.Duration < 2*time.Second {
		// The kill lands at Duration/2 and the post-kill half must cover
		// lease expiry, election, and catch-up; shorter cells (e.g. a
		// grid-wide -cell-duration override) would measure only noise.
		c.Duration = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// family parses the cell's Family through the shared codec; "" means
// linear (the zero opts.Family).
func (c Cell) family() (opts.Family, error) {
	if c.Family == "" {
		return opts.Family{}, nil
	}
	f, err := opts.ParseFamily(c.Family)
	if err != nil {
		return opts.Family{}, fmt.Errorf("cell %q: %w", c.Name, err)
	}
	if f.Kind == opts.FamilyLinear {
		return opts.Family{}, nil
	}
	return f, nil
}

// validate rejects cells the harness cannot run. Workload parameters are
// validated by workload.Config.Validate at generator build time.
func (c Cell) validate() error {
	switch c.Role {
	case RolePrimary, RoleDurable, RolePrimaryReplica:
	case RoleFailover:
		if c.Interactive || c.Oracle {
			return fmt.Errorf("cell %q: failover cells drive one-shot loads only", c.Name)
		}
	default:
		return fmt.Errorf("cell %q: unknown role %q", c.Name, c.Role)
	}
	if _, err := c.family(); err != nil {
		return err
	}
	for _, t := range c.Tenants {
		if !opts.ValidTenant(t.Name) {
			return fmt.Errorf("cell %q: bad tenant name %q", c.Name, t.Name)
		}
		if t.Weight <= 0 {
			return fmt.Errorf("cell %q: tenant %q weight %v", c.Name, t.Name, t.Weight)
		}
	}
	if c.Oracle && !c.Interactive {
		return fmt.Errorf("cell %q: oracle cells must be interactive", c.Name)
	}
	return c.workloadConfig(c.Seed).Validate()
}

// workloadConfig builds the cell's generator configuration for one
// worker seed. Interactive cells trim transactions to 4 ops so a session
// with think time finishes well inside its deadline.
func (c Cell) workloadConfig(seed int64) workload.Config {
	var cfg workload.Config
	if c.Mix == "two" {
		cfg = workload.TwoClass(1000, seed)
	} else {
		cfg = workload.Baseline(1000, seed)
	}
	cfg.DBPages = c.Keys
	cfg.Keys = c.Skew
	cfg.Think = c.Think
	for i := range cfg.Classes {
		if c.Interactive && cfg.Classes[i].NumOps > 4 {
			cfg.Classes[i].NumOps = 4
		}
		if cfg.Classes[i].NumOps > c.Keys {
			cfg.Classes[i].NumOps = c.Keys
		}
		cfg.Classes[i].ValueFamily = c.Family
	}
	return cfg
}

// pickTenant draws a tenant tag for one request by normalized weight.
func (c Cell) pickTenant(r *dist.RNG) string {
	if len(c.Tenants) == 0 {
		return ""
	}
	total := 0.0
	for _, t := range c.Tenants {
		total += t.Weight
	}
	u := r.Float64() * total
	for _, t := range c.Tenants {
		if u < t.Weight {
			return t.Name
		}
		u -= t.Weight
	}
	return c.Tenants[len(c.Tenants)-1].Name
}

// skewLabel renders the cell's key distribution for the artifact row.
func skewLabel(k workload.KeyDist) string {
	switch k.Kind {
	case workload.KeyZipf:
		return fmt.Sprintf("zipf:%.2f", k.Theta)
	case workload.KeyHot:
		return fmt.Sprintf("hot:%d:%.2f", k.HotKeys, k.HotFrac)
	default:
		return "uniform"
	}
}

// StageRow is one lifecycle stage's latency contribution within a cell,
// aggregated over the cell's sampled traces (every traceSampleEvery-th
// committed transaction asks for trace=1): N samples, p50/p99 of the
// stage's offset from submit in milliseconds.
type StageRow struct {
	N     int     `json:"n"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// TenantRow is one tenant's slice of a cell's outcome, as seen from the
// client side (sheds here are replies to this tenant's tagged requests).
type TenantRow struct {
	Name          string  `json:"name"`
	Requests      int64   `json:"requests"`
	Committed     int64   `json:"committed"`
	Shed          int64   `json:"shed"`
	ValueRealized float64 `json:"value_realized"`
}

// Row is one cell's emitted result.
type Row struct {
	Cell        string  `json:"cell"`
	Skew        string  `json:"skew"`
	Family      string  `json:"family"`
	Session     string  `json:"session"` // "oneshot" | "interactive"
	Role        string  `json:"role"`
	DurationSec float64 `json:"duration_sec"`
	Clients     int     `json:"clients"`

	Requests   int64 `json:"requests"`
	Committed  int64 `json:"committed"`
	Shed       int64 `json:"shed"`
	Errors     int64 `json:"errors"`
	TenantShed int64 `json:"tenant_shed"`

	ThroughputTPS float64 `json:"throughput_tps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`

	// ValueSubmitted is the sum of V over every submitted transaction;
	// ValueRealized re-evaluates each committed transaction's value
	// function at its observed client-side latency (family-aware), so
	// ValueRatio is the realized-vs-submitted fraction of Def. 7 value.
	ValueSubmitted float64 `json:"value_submitted"`
	ValueRealized  float64 `json:"value_realized"`
	ValueRatio     float64 `json:"value_ratio"`

	ConservationOK bool  `json:"conservation_ok"`
	LedgerOK       bool  `json:"ledger_ok"`
	OracleOK       *bool `json:"oracle_ok,omitempty"`

	// Failover cells: latency from the primary's kill to the replica's
	// successful promotion, and the ERR not-primary redirects workers
	// followed while chasing the new primary.
	PromoteMs float64 `json:"promote_ms,omitempty"`
	Redirects int64   `json:"redirects,omitempty"`

	Tenants []TenantRow       `json:"tenants,omitempty"`
	Server  map[string]string `json:"server_stats,omitempty"`

	// Stages attributes latency to server-side lifecycle stages from
	// sampled trace= timelines (stage name -> offset quantiles).
	Stages map[string]StageRow `json:"stages,omitempty"`
}

// Artifact is the scc-scenario/v1 JSON document: one grid run.
type Artifact struct {
	Schema string `json:"schema"`
	Preset string `json:"preset"`
	CPUs   int    `json:"cpus"`
	Cells  []Row  `json:"cells"`
}

// Presets lists the named grids.
func Presets() []string { return []string{"smoke", "full"} }

// Grid returns the named cell grid.
//
// "smoke" is the two-cell tier-1 grid (one one-shot uniform cell, one
// interactive Zipfian cell) kept fast enough for go test ./...; "full"
// is the nightly matrix: the 3×3 skew × family core plus renewal,
// think-time, durable, replica, tenant-fairness, oracle, and failover
// cells.
func Grid(preset string) ([]Cell, error) {
	switch preset {
	case "smoke":
		return []Cell{
			{Name: "smoke-uniform-linear", Duration: 400 * time.Millisecond},
			{
				Name:        "smoke-zipf99-cliff",
				Skew:        workload.KeyDist{Kind: workload.KeyZipf, Theta: 0.99},
				Family:      "cliff",
				Interactive: true,
				Duration:    400 * time.Millisecond,
			},
		}, nil
	case "full":
		skews := []struct {
			tag string
			k   workload.KeyDist
		}{
			{"u", workload.KeyDist{}},
			{"z80", workload.KeyDist{Kind: workload.KeyZipf, Theta: 0.80}},
			{"z99", workload.KeyDist{Kind: workload.KeyZipf, Theta: 0.99}},
		}
		families := []string{"linear", "cliff", "step:0.5"}
		var cells []Cell
		for _, s := range skews {
			for _, f := range families {
				cells = append(cells, Cell{
					Name:   s.tag + "-" + f,
					Skew:   s.k,
					Family: f,
				})
			}
		}
		cells = append(cells,
			Cell{
				Name:   "hot-renewal",
				Skew:   workload.KeyDist{Kind: workload.KeyHot, HotKeys: 16, HotFrac: 0.8},
				Family: "renew:4",
			},
			Cell{
				Name:        "interactive-think",
				Mix:         "two",
				Skew:        workload.KeyDist{Kind: workload.KeyZipf, Theta: 0.90},
				Interactive: true,
				Think:       workload.ThinkTime{Kind: workload.ThinkExp, Mean: 0.002},
			},
			Cell{
				Name:   "durable-linear",
				Role:   RoleDurable,
				Skew:   workload.KeyDist{Kind: workload.KeyZipf, Theta: 0.80},
				Family: "linear",
			},
			Cell{
				Name:   "replica-step",
				Role:   RolePrimaryReplica,
				Family: "step:0.5",
			},
			Cell{
				Name:         "tenants-fair",
				Skew:         workload.KeyDist{Kind: workload.KeyZipf, Theta: 0.80},
				Tenants:      []Tenant{{Name: "hog", Weight: 0.9}, {Name: "light", Weight: 0.1}},
				TenantBudget: 2000,
			},
			Cell{
				Name:        "oracle-z99",
				Skew:        workload.KeyDist{Kind: workload.KeyZipf, Theta: 0.99},
				Interactive: true,
				Oracle:      true,
				Deadline:    10 * time.Second,
			},
			Cell{
				Name:     "failover-z90",
				Role:     RoleFailover,
				Skew:     workload.KeyDist{Kind: workload.KeyZipf, Theta: 0.90},
				Deadline: 5 * time.Second,
				Duration: 3 * time.Second,
			},
		)
		return cells, nil
	}
	return nil, fmt.Errorf("scenario: unknown preset %q (want one of %v)", preset, Presets())
}
