// The failover cell: a clustered primary+replica pair whose primary is
// killed at half the cell duration. The replica's lease monitor detects
// the death, elects itself, and promotes under fencing epoch 2; the
// cell's workers meanwhile follow ERR not-primary redirects onto the
// new primary exactly like sccload's failover pool. The row reports the
// measured kill-to-promotion latency and the redirects followed, and
// the usual audits run against the promoted node — conservation exact,
// the acked-commit ledger in its >= form.
package scenario

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	clusterpkg "repro/internal/cluster"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/server/opts"
	"repro/internal/workload"
)

// failoverLease is the cell's lease: short enough that the post-kill
// half of the cell covers expiry, election, and promotion many times
// over, long enough that loopback probe jitter cannot expire it early.
const failoverLease = 100 * time.Millisecond

// listenLoopback reserves a loopback listener up front, so both nodes'
// advertised cluster addresses are known before either server opens
// (the fenced commit-log sinks bind to the state at Open).
func listenLoopback() (net.Listener, string, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	return lis, lis.Addr().String(), nil
}

// bootFailover builds the clustered pair into cl: a primary at epoch 1
// and a replica whose lease monitor will take over when the primary
// dies. Only the replica runs a Node — the primary's zombie detection
// is pointless here, it is killed outright.
func bootFailover(c Cell, cfg server.Config, cl *cluster) error {
	plis, paddr, err := listenLoopback()
	if err != nil {
		return fmt.Errorf("cell %q: %w", c.Name, err)
	}
	rlis, raddr, err := listenLoopback()
	if err != nil {
		plis.Close()
		return fmt.Errorf("cell %q: %w", c.Name, err)
	}

	pstate := clusterpkg.NewState(paddr, []string{raddr})
	if err := pstate.BecomePrimary(1); err != nil {
		plis.Close()
		rlis.Close()
		return fmt.Errorf("cell %q: %w", c.Name, err)
	}
	pcfg := cfg
	// Semi-synchronous acks are what make the post-failover ledger hold:
	// the primary acknowledges a commit only after the replica acked its
	// log records, so nothing the clients booked as committed can be
	// missing from the promoted node.
	pcfg.Repl = server.ReplOptions{Primary: true, SyncAcks: true, SyncTimeout: 2 * time.Second}
	pcfg.Cluster = pstate
	cl.pri = server.New(pcfg)
	cl.addr = paddr
	go cl.pri.Serve(plis)

	gate := repl.NewLagGate(cfg.Shards, 50*time.Millisecond, 0)
	rstate := clusterpkg.NewState(raddr, []string{paddr})
	rstate.SetReplica(paddr)
	rcfg := cfg
	rcfg.Repl = server.ReplOptions{Gate: gate}
	rcfg.Cluster = rstate
	cl.rep = server.New(rcfg)
	cl.repAddr = raddr
	go cl.rep.Serve(rlis)

	rep, err := repl.StartReplica(repl.ReplicaConfig{
		Primary: paddr,
		Store:   cl.rep.Store(),
		Gate:    gate,
	})
	if err != nil {
		return fmt.Errorf("cell %q: replica: %w", c.Name, err)
	}
	cl.replica = rep
	rstate.SetProgress(func() (uint64, uint64) {
		var mark, sum uint64
		for _, m := range rep.Watermarks() {
			if m > mark {
				mark = m
			}
		}
		for _, a := range rep.Applied() {
			sum += a
		}
		return mark, sum
	})

	cl.promoted = make(chan time.Duration, 1)
	cl.node = clusterpkg.NewNode(clusterpkg.Config{
		State: rstate,
		Lease: failoverLease,
		Hooks: clusterpkg.Hooks{
			Promote: func(epoch uint64) error {
				if err := cl.rep.Promote(rep, epoch); err != nil {
					return err
				}
				if k := cl.killNano.Load(); k != 0 {
					select {
					case cl.promoted <- time.Since(time.Unix(0, k)):
					default:
					}
				}
				return nil
			},
		},
	})
	cl.node.Start()
	return nil
}

// promoteLatency returns the recorded kill-to-promotion latency (zero
// if the promotion never landed — driveFailover fails the cell first).
func (cl *cluster) promoteLatency() time.Duration {
	select {
	case d := <-cl.promoted:
		// Re-buffer so Run's row assembly can read it again.
		cl.promoted <- d
		return d
	default:
		return 0
	}
}

// driveFailover runs the cell's closed one-shot load with the kill
// timer armed at Duration/2. Each worker is a blocking client that
// chases the primary: not-primary replies re-point it at the named
// member, dead connections rotate it, and only the final outcome of
// each transaction is booked.
func driveFailover(c Cell, cl *cluster, fam opts.Family) (*workerResult, error) {
	deadline := time.Now().Add(c.Duration)
	kill := time.AfterFunc(c.Duration/2, func() {
		cl.killNano.Store(time.Now().UnixNano())
		cl.pri.Close()
	})
	defer kill.Stop()

	results := make([]*workerResult, c.Clients)
	var wg sync.WaitGroup
	for w := 0; w < c.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := workload.NewGenerator(c.workloadConfig(c.Seed + int64(w)*7919))
			r := newWorkerResult()
			addrs := []string{cl.addr, cl.repAddr}
			cur := 0
			var cli *client.Client
			defer func() {
				if cli != nil {
					cli.Close()
				}
			}()
			rotate := func() {
				if cli != nil {
					cli.Close()
					cli = nil
				}
				cur = (cur + 1) % len(addrs)
			}
			for time.Now().Before(deadline) {
				tx := gen.Next()
				ops := pageOps(tx, w, 0)
				o := client.TxOpts{Value: tx.Class.Value, Deadline: c.Deadline, Family: fam}
				t0 := time.Now()
				// attempted guards the booking below: if the deadline
				// expires before the retry loop sends anything, there is
				// no outcome to account — booking the zero-value nil err
				// as a commit would corrupt the acked-commit ledger with
				// a transaction that never left the client.
				var err error
				attempted := false
				for time.Now().Before(deadline) {
					attempted = true
					if cli == nil {
						cli, err = client.DialTimeout(addrs[cur], time.Second)
						if err != nil {
							cli = nil
							rotate()
							time.Sleep(5 * time.Millisecond)
							continue
						}
					}
					_, err = cli.Update(ops, o)
					if err == nil || errors.Is(err, client.ErrShed) {
						break
					}
					var np *client.NotPrimaryError
					if errors.As(err, &np) {
						cl.redirects.Add(1)
						cli.Close()
						cli = nil
						if np.Addr == "" {
							cur = (cur + 1) % len(addrs)
						} else {
							found := false
							for i, a := range addrs {
								if a == np.Addr {
									cur, found = i, true
									break
								}
							}
							if !found {
								addrs = append(addrs, np.Addr)
								cur = len(addrs) - 1
							}
						}
					} else {
						rotate()
					}
					time.Sleep(5 * time.Millisecond)
				}
				if !attempted {
					break
				}
				r.account(o, counterKey(w, 0), err, time.Since(t0))
			}
			results[w] = r
		}(w)
	}
	wg.Wait()

	agg := newWorkerResult()
	for _, r := range results {
		agg.merge(r)
	}
	// The cell is meaningless if the takeover never happened: the kill
	// fired at Duration/2, so by now the promotion is minutes of leases
	// overdue. Give the monitor one more grace period, then fail loudly.
	select {
	case d := <-cl.promoted:
		cl.promoted <- d
	case <-time.After(5 * time.Second):
		return nil, fmt.Errorf("cell %q: primary killed but the replica never promoted", c.Name)
	}
	return agg, nil
}
