package scenario

import (
	"testing"
	"time"

	"repro/internal/workload"
)

// TestGridPresetsValidate keeps every preset cell well-formed without
// paying to run the nightly grid: names unique, workload/family/tenant
// parameters accepted by the same validation Run uses.
func TestGridPresetsValidate(t *testing.T) {
	for _, preset := range Presets() {
		cells, err := Grid(preset)
		if err != nil {
			t.Fatalf("Grid(%q): %v", preset, err)
		}
		if len(cells) == 0 {
			t.Fatalf("Grid(%q): empty", preset)
		}
		seen := map[string]bool{}
		for _, c := range cells {
			if c.Name == "" || seen[c.Name] {
				t.Errorf("Grid(%q): missing or duplicate cell name %q", preset, c.Name)
			}
			seen[c.Name] = true
			if err := c.withDefaults().validate(); err != nil {
				t.Errorf("Grid(%q): cell %q: %v", preset, c.Name, err)
			}
		}
	}
	if _, err := Grid("no-such-preset"); err == nil {
		t.Error("Grid accepted an unknown preset")
	}
}

// TestSmokeGrid runs the tier-1 two-cell grid against live servers: one
// one-shot uniform cell and one interactive Zipfian cliff cell, each
// audited for conservation and the acked-commit ledger.
func TestSmokeGrid(t *testing.T) {
	art, err := RunGrid("smoke", 400*time.Millisecond, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if art.Schema != SchemaV1 {
		t.Fatalf("schema %q, want %q", art.Schema, SchemaV1)
	}
	if art.CPUs < 1 {
		t.Fatalf("cpus %d", art.CPUs)
	}
	if len(art.Cells) != 2 {
		t.Fatalf("smoke grid emitted %d rows, want 2", len(art.Cells))
	}
	for _, row := range art.Cells {
		if row.Committed == 0 {
			t.Errorf("cell %q: no commits", row.Cell)
		}
		if row.Errors != 0 {
			t.Errorf("cell %q: %d errors", row.Cell, row.Errors)
		}
		if !row.ConservationOK {
			t.Errorf("cell %q: conservation audit failed", row.Cell)
		}
		if !row.LedgerOK {
			t.Errorf("cell %q: acked-commit ledger audit failed", row.Cell)
		}
		if row.ValueRealized <= 0 || row.ValueRatio <= 0 || row.ValueRatio > 1 {
			t.Errorf("cell %q: value realized %.2f ratio %.3f", row.Cell, row.ValueRealized, row.ValueRatio)
		}
	}
}

// TestTenantFairness is the end-to-end budget-fairness check: a hog
// tenant carrying 90% of the traffic against a light tenant at 10%,
// both over a tight per-tenant budget. The budget must shed the hog
// (tenant_shed > 0) while the light tenant still realizes value — a hog
// cannot starve a light tenant to zero.
func TestTenantFairness(t *testing.T) {
	row, err := Run(Cell{
		Name:         "fairness",
		Skew:         workload.KeyDist{Kind: workload.KeyZipf, Theta: 0.80},
		Tenants:      []Tenant{{Name: "hog", Weight: 0.9}, {Name: "light", Weight: 0.1}},
		TenantBudget: 500,
		Duration:     1200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !row.ConservationOK || !row.LedgerOK {
		t.Fatalf("audits failed: conservation=%v ledger=%v", row.ConservationOK, row.LedgerOK)
	}
	if row.TenantShed == 0 {
		t.Fatal("server reported no tenant-budget sheds; budget never engaged")
	}
	byName := map[string]TenantRow{}
	for _, tr := range row.Tenants {
		byName[tr.Name] = tr
	}
	hog, light := byName["hog"], byName["light"]
	if hog.Requests == 0 || light.Requests == 0 {
		t.Fatalf("tenant traffic missing: hog=%+v light=%+v", hog, light)
	}
	if hog.Shed == 0 {
		t.Errorf("hog tenant was never shed: %+v", hog)
	}
	if light.Committed == 0 || light.ValueRealized <= 0 {
		t.Errorf("light tenant starved: %+v", light)
	}
}

// TestFailoverCell runs the primary+replica+failover cell: the primary
// is killed at half the duration, the replica's lease monitor promotes
// it, the workers ride the redirects, and the row carries the measured
// promotion latency with both audits green.
func TestFailoverCell(t *testing.T) {
	row, err := Run(Cell{
		Name:     "failover",
		Role:     RoleFailover,
		Skew:     workload.KeyDist{Kind: workload.KeyZipf, Theta: 0.90},
		Deadline: 5 * time.Second,
		Duration: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if row.Committed == 0 {
		t.Fatal("failover cell committed nothing")
	}
	if !row.ConservationOK {
		t.Error("conservation audit failed across the failover")
	}
	if !row.LedgerOK {
		t.Error("acked-commit ledger audit failed across the failover")
	}
	if row.PromoteMs <= 0 {
		t.Errorf("promotion latency %.2fms, want > 0", row.PromoteMs)
	}
	if row.Redirects == 0 {
		t.Error("no redirects followed; the workers never chased the new primary")
	}
}

// TestOracleCell replays a high-contention interactive Zipfian cell
// (θ=0.99 over a small hot set) through the serializability oracle
// against the live server.
func TestOracleCell(t *testing.T) {
	row, err := Run(Cell{
		Name:        "oracle",
		Skew:        workload.KeyDist{Kind: workload.KeyZipf, Theta: 0.99},
		Interactive: true,
		Oracle:      true,
		Deadline:    10 * time.Second,
		Duration:    800 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if row.OracleOK == nil || !*row.OracleOK {
		t.Fatal("oracle verdict missing or failed")
	}
	if row.Committed == 0 {
		t.Fatal("oracle cell committed nothing")
	}
	if row.Errors != 0 {
		t.Fatalf("oracle cell saw %d errors", row.Errors)
	}
}
