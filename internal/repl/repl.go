// Package repl replicates a sharded SCC store: the engine's commit hook
// (engine.Config.CommitLog) appends every installed write set to a
// per-shard Log, a Feed bundles the logs of one primary and tracks
// subscriber progress, and a Replica streams the logs over the wire
// protocol's REPL/ACK verbs (see docs/PROTOCOL.md) into a local store via
// the ApplyLocked path. Replica reads are value-cognizant: a LagGate sheds
// read-only transactions whose value function would cross zero before the
// replica's estimated catch-up, the replication analogue of the paper's
// zero-crossing load shedding. docs/ARCHITECTURE.md places the package in
// the overall data flow.
//
// Logs are trimmable: records below a trim point are dropped from memory
// (the durability layer, internal/durable, keeps them on disk), and a
// subscriber asking for a trimmed index is refused with ErrCompacted —
// it bootstraps from a snapshot (the SNAP verb) instead of replaying
// from index 1. Trimming advances to
// min(acked floor, durability floor, head − retention): never past what
// a tracking subscriber still owes, never past the newest checkpoint,
// and always keeping the retention window for briefly-absent
// subscribers to resume without a snapshot.
package repl

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
)

// ErrCompacted is returned by Log.From when the requested index has been
// trimmed away. The subscriber cannot replay from there; it must
// bootstrap from a snapshot and resume above the log's Base.
var ErrCompacted = errors.New("repl: log trimmed below requested index")

// unbounded marks an absent floor (no tracking subscriber, no
// checkpoint): it never constrains a min().
const unbounded = ^uint64(0)

// Record is one committed transaction's write set on one shard, at Index
// (1-based) in that shard's total commit order. Records applied in Index
// order reproduce the primary shard's committed state and per-key
// versions exactly.
//
// Epoch is the global commit epoch stamped on the record (0 only from
// legacy sinks with no epoch source); within one shard's log, epochs are
// strictly increasing. Shards is nil for a standalone commit; for a
// cross-shard commit it lists every participant shard (ascending), and
// each participant's log carries a record with the SAME epoch — the
// replica apply barrier uses this to make the commit visible on all
// shards at once.
type Record struct {
	Index  uint64
	Epoch  uint64
	Shards []int
	Writes map[string][]byte
}

// Cross reports whether the record is one shard's part of a multi-shard
// commit (and therefore subject to the replica apply barrier).
func (r Record) Cross() bool { return len(r.Shards) > 1 }

// Log is the ordered commit log of one shard. Append implements
// engine.CommitLog: the engine calls it under the shard's commit latch,
// so append order is the shard's version order.
type Log struct {
	epochs *engine.Epochs // stamps standalone appends; nil = epoch 0 (legacy sinks)

	mu        sync.Mutex
	base      uint64 // highest trimmed-away index; recs[0].Index == base+1
	lastEpoch uint64 // epoch of the newest record ever appended (survives trims)
	recs      []Record
	wake      chan struct{} // closed and replaced on every append

	retain   uint64 // auto-trim keeps at least this many newest records (0 = keep all)
	ackFloor uint64 // min acked index over tracking subscribers (unbounded if none)
	durFloor uint64 // newest checkpoint index (unbounded without durability)
	autoTrim bool   // retention or a durability floor has been configured
	trimmed  int64  // records dropped by trimming, cumulative
	resliced int    // trimmed records whose backing memory is still pinned
}

// NewLog returns an empty log stamping epochs from epochs (nil leaves
// every record at epoch 0 — acceptable only for tests and legacy sinks).
func NewLog(epochs *engine.Epochs) *Log {
	return &Log{epochs: epochs, wake: make(chan struct{}), ackFloor: unbounded, durFloor: unbounded}
}

// Append records one installed write set and wakes blocked readers. The
// map is retained, not copied; the engine guarantees committed write sets
// are never mutated afterwards. The record's epoch is allocated here —
// Append runs under the shard's commit latch, so per-shard epoch order
// matches log order.
func (l *Log) Append(writes map[string][]byte) {
	var epoch uint64
	if l.epochs != nil {
		epoch = l.epochs.Next()
	}
	l.AppendStamped(writes, epoch, nil)
}

// AppendCross implements engine.CrossCommitLog for in-memory sinks: with
// no WAL there is no decision record to gate on, so the record ships
// immediately with its pre-allocated epoch and participant set. (The
// value is accepted for interface compatibility; an in-memory log has no
// pending-value accounting.)
func (l *Log) AppendCross(writes map[string][]byte, value float64, epoch uint64, shards []int) {
	l.AppendStamped(writes, epoch, shards)
}

// AppendStamped records one write set with a pre-assigned epoch and (for
// cross-shard commits) participant set — the publication path durable
// sinks use after the fsync that makes the record safe to ship.
func (l *Log) AppendStamped(writes map[string][]byte, epoch uint64, shards []int) {
	l.mu.Lock()
	l.recs = append(l.recs, Record{
		Index:  l.base + uint64(len(l.recs)) + 1,
		Epoch:  epoch,
		Shards: shards,
		Writes: writes,
	})
	if epoch > l.lastEpoch {
		l.lastEpoch = epoch
	}
	close(l.wake)
	l.wake = make(chan struct{})
	l.maybeTrimLocked()
	l.mu.Unlock()
}

// LastEpoch returns the epoch of the newest record ever appended (or the
// epoch restored by ResetBase). SNAP reply headers carry it so a
// bootstrapping replica can seed its apply-barrier bookkeeping.
func (l *Log) LastEpoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastEpoch
}

// Head returns the index of the newest record (the trim base when empty,
// 0 when never written).
func (l *Log) Head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + uint64(len(l.recs))
}

// Base returns the highest trimmed-away index: records with Index <= Base
// are gone from memory and can only be recovered from a snapshot.
func (l *Log) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// ResetBase starts an empty log at base with lastEpoch restored to
// epoch: the next Append gets index base+1. Recovery uses it so a
// restarted primary's log resumes at its recovered commit index (and
// epoch) instead of restarting from 1. It is a boot-time operation:
// calling it on a log that holds records panics.
func (l *Log) ResetBase(base, epoch uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.recs) > 0 {
		panic("repl: ResetBase on a non-empty log")
	}
	l.base = base
	l.lastEpoch = epoch
}

// From returns up to max records with Index >= from, plus a channel that
// is closed on the next append — the blocking handle for tailing readers:
// when the returned slice is empty and err is nil, wait on the channel
// and retry. A from at or below the trim base draws ErrCompacted: those
// records are gone, the reader must snapshot-bootstrap instead.
func (l *Log) From(from uint64, max int) ([]Record, <-chan struct{}, error) {
	if from == 0 {
		from = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	wake := l.wake
	if from <= l.base {
		return nil, wake, ErrCompacted
	}
	if from > l.base+uint64(len(l.recs)) {
		return nil, wake, nil
	}
	recs := l.recs[from-l.base-1:]
	if max > 0 && len(recs) > max {
		recs = recs[:max]
	}
	return recs, wake, nil
}

// TrimBelow drops every record with Index <= idx (clamped to the head)
// and returns how many were dropped. The records' memory is released;
// readers below the new base get ErrCompacted.
func (l *Log) TrimBelow(idx uint64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.trimBelowLocked(idx)
}

func (l *Log) trimBelowLocked(idx uint64) int {
	head := l.base + uint64(len(l.recs))
	if idx > head {
		idx = head
	}
	if idx <= l.base {
		return 0
	}
	n := int(idx - l.base)
	// Reslice now (O(1) — at steady state auto-trim drops one record per
	// append, and copying the whole retention window each time would be
	// an O(retain) tax per commit under the shard latch), but compact
	// with a real copy once the pinned prefix outgrows the live tail:
	// a bare reslice keeps every trimmed record's write set alive in the
	// backing array, so unbounded reslicing would defeat trimming.
	l.recs = l.recs[n:]
	l.resliced += n
	if l.resliced > 1024 && l.resliced >= len(l.recs) {
		kept := make([]Record, len(l.recs))
		copy(kept, l.recs)
		l.recs = kept
		l.resliced = 0
	}
	l.base = idx
	l.trimmed += int64(n)
	return n
}

// SetRetention enables retention-bounded auto-trim: every append trims
// the log to min(acked floor, durability floor, head − retain). Zero
// keeps auto-trim driven by the durability floor alone (or fully off if
// none is ever set).
func (l *Log) SetRetention(retain uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.retain = retain
	if retain > 0 {
		l.autoTrim = true
	}
	l.maybeTrimLocked()
}

// SetAckFloor updates the min-acked-subscriber floor (unbounded-max when
// no subscriber tracks this shard). The Feed maintains it.
func (l *Log) SetAckFloor(idx uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ackFloor = idx
	l.maybeTrimLocked()
}

// SetDurableFloor records the newest checkpoint index: auto-trim never
// advances past it, and its presence alone enables auto-trim (with
// durability, in-memory records below min(checkpoint, min acked) serve
// no one — recovery replays from disk, joiners bootstrap via SNAP).
func (l *Log) SetDurableFloor(idx uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.durFloor = idx
	l.autoTrim = true
	l.maybeTrimLocked()
}

// maybeTrimLocked applies the auto-trim policy. Caller holds l.mu.
func (l *Log) maybeTrimLocked() {
	if !l.autoTrim {
		return
	}
	limit := l.ackFloor
	if l.durFloor < limit {
		limit = l.durFloor
	}
	if l.retain > 0 {
		head := l.base + uint64(len(l.recs))
		keepTo := uint64(0)
		if head > l.retain {
			keepTo = head - l.retain
		}
		if keepTo < limit {
			limit = keepTo
		}
	} else if limit == unbounded {
		// Durability floor configured but no retention and no acked
		// floor yet: nothing bounds the trim meaningfully.
		return
	}
	l.trimBelowLocked(limit)
}

// Trimmed returns how many records trimming has dropped so far.
func (l *Log) Trimmed() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.trimmed
}

// Feed bundles the per-shard commit logs of one primary and tracks the
// ack progress of its subscribers (replicas).
type Feed struct {
	logs []*Log

	mu          sync.Mutex
	subs        map[*Sub]struct{}
	everTracked []bool        // shards some subscriber has tracked at least once
	ackWake     chan struct{} // closed and replaced on every ack-state change
}

// NewFeed returns a feed with one empty log per shard, all stamping
// commit epochs from the shared epochs counter (nil leaves records at
// epoch 0; pass the store's counter on any real primary).
func NewFeed(shards int, epochs *engine.Epochs) *Feed {
	f := &Feed{
		logs:        make([]*Log, shards),
		subs:        make(map[*Sub]struct{}),
		everTracked: make([]bool, shards),
		ackWake:     make(chan struct{}),
	}
	for i := range f.logs {
		f.logs[i] = NewLog(epochs)
	}
	return f
}

// Shards returns the number of per-shard logs.
func (f *Feed) Shards() int { return len(f.logs) }

// Log returns shard's commit log. It satisfies engine.CommitLog, so it
// plugs directly into shard.Config.CommitLogFor.
func (f *Feed) Log(shard int) *Log { return f.logs[shard] }

// SetRetention configures retention-bounded auto-trim on every log.
func (f *Feed) SetRetention(retain uint64) {
	for _, l := range f.logs {
		l.SetRetention(retain)
	}
}

// Heads returns every shard's newest log index.
func (f *Feed) Heads() []uint64 {
	out := make([]uint64, len(f.logs))
	for i, l := range f.logs {
		out[i] = l.Head()
	}
	return out
}

// EpochWatermark returns the highest commit epoch any shard log has
// recorded — the head token of HEAD replies. Lease and caught-up-ness
// decisions (cluster failover) read it without a REPL subscription.
func (f *Feed) EpochWatermark() uint64 {
	var max uint64
	for _, l := range f.logs {
		if e := l.LastEpoch(); e > max {
			max = e
		}
	}
	return max
}

// Trimmed returns the total records trimmed across all shard logs — the
// primary's log_trimmed stat.
func (f *Feed) Trimmed() int64 {
	var n int64
	for _, l := range f.logs {
		n += l.Trimmed()
	}
	return n
}

// AckFloor returns the minimum acked index over subscribers tracking
// shard, or the unbounded max when none tracks it — the safe trim limit
// from the subscriber side.
func (f *Feed) AckFloor(shard int) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ackFloorLocked(shard)
}

func (f *Feed) ackFloorLocked(shard int) uint64 {
	floor := uint64(unbounded)
	for s := range f.subs {
		s.mu.Lock()
		if s.tracked[shard] && s.acked[shard] < floor {
			floor = s.acked[shard]
		}
		s.mu.Unlock()
	}
	return floor
}

// refloor recomputes shard's ack floor and pushes it into the log, which
// may auto-trim. Called whenever a subscriber's state changes. The
// compute and the apply happen under one f.mu hold: two racing refloors
// could otherwise apply out of order and install a stale high floor — a
// new subscriber's Track(=floor 0) overwritten by an older Ack's
// floor — trimming records the new subscriber is about to stream.
func (f *Feed) refloor(shard int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.logs[shard].SetAckFloor(f.ackFloorLocked(shard))
	// Ack state changed: wake WaitAcked callers blocked on subscriber
	// progress (a broadcast — each re-checks its own condition).
	close(f.ackWake)
	f.ackWake = make(chan struct{})
}

// maxAckedLocked returns the HIGHEST acked index over subscribers
// tracking shard and how many track it. Where the trim floor needs the
// minimum (nothing a subscriber still owes may be dropped), semi-sync
// ack gating needs the maximum: a commit is replicated once at least
// one replica holds it. Caller holds f.mu.
func (f *Feed) maxAckedLocked(shard int) (uint64, int) {
	var best uint64
	tracking := 0
	for s := range f.subs {
		s.mu.Lock()
		if s.tracked[shard] {
			tracking++
			if s.acked[shard] > best {
				best = s.acked[shard]
			}
		}
		s.mu.Unlock()
	}
	return best, tracking
}

// WaitAcked blocks until at least one subscriber tracking shard has
// acked its log through index, or the timeout expires. It is the
// semi-synchronous replication gate: a primary calls it after a commit
// installs and before the verdict is acknowledged, so an OK implies the
// write survives the primary's death. A shard that has never had a
// tracking subscriber returns immediately — a primary running alone (or
// freshly promoted, before any replica re-follows) degrades to
// asynchronous acks rather than stalling every write; the at-least-one
// semantics pair with most-caught-up promotion, which elects exactly a
// replica that holds the acked prefix. A shard whose subscriber
// *vanished*, though, waits out the timeout: a dying replica connection
// must not instantly open an unreplicated-ack window (the caller counts
// the eventual timeout as a degrade) — by then a client whose
// connection died with the failover has already treated the commit as
// unacknowledged.
func (f *Feed) WaitAcked(shard int, index uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		f.mu.Lock()
		best, tracking := f.maxAckedLocked(shard)
		ever := f.everTracked[shard]
		wake := f.ackWake
		f.mu.Unlock()
		if tracking > 0 && best >= index {
			return nil
		}
		if tracking == 0 && !ever {
			return nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return fmt.Errorf("repl: shard %d record %d not acked by any replica within %s (best %d)",
				shard, index, timeout, best)
		}
		t := time.NewTimer(remain)
		select {
		case <-wake:
			t.Stop()
		case <-t.C:
			return fmt.Errorf("repl: shard %d record %d not acked by any replica within %s (best %d)",
				shard, index, timeout, best)
		}
	}
}

// Subscribe registers a replica connection for ack tracking. Mark each
// shard the connection actually subscribes with Track — lag is accounted
// only over tracked shards, since a partial subscriber owes no progress
// on shards it never asked for. Close the returned Sub when the
// connection goes away.
func (f *Feed) Subscribe() *Sub {
	s := &Sub{
		feed:    f,
		acked:   make([]uint64, len(f.logs)),
		tracked: make([]bool, len(f.logs)),
	}
	f.mu.Lock()
	f.subs[s] = struct{}{}
	f.mu.Unlock()
	return s
}

// Subscribers returns the number of live subscriptions.
func (f *Feed) Subscribers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs)
}

// MaxLag returns, over all live subscribers, the largest total number of
// unacked records (sum over the subscriber's tracked shards of head
// minus acked index) — the primary's repl_lag stat. Zero with no
// subscribers.
func (f *Feed) MaxLag() uint64 {
	heads := f.Heads()
	f.mu.Lock()
	defer f.mu.Unlock()
	var worst uint64
	for s := range f.subs {
		var lag uint64
		s.mu.Lock()
		for i, h := range heads {
			if !s.tracked[i] {
				continue
			}
			if a := s.acked[i]; h > a {
				lag += h - a
			}
		}
		s.mu.Unlock()
		if lag > worst {
			worst = lag
		}
	}
	return worst
}

// Sub is one subscriber's ack state.
type Sub struct {
	feed    *Feed
	mu      sync.Mutex
	acked   []uint64
	tracked []bool // shards this subscriber actually REPL-subscribed
}

// Track marks shard as subscribed, entering it into lag accounting and
// pinning the shard's trim floor at this subscriber's acked index (0
// until its first ack) so the records it is about to stream cannot be
// trimmed out from under it.
func (s *Sub) Track(shard int) {
	if shard < 0 || shard >= len(s.tracked) {
		return
	}
	s.mu.Lock()
	s.tracked[shard] = true
	s.mu.Unlock()
	s.feed.mu.Lock()
	s.feed.everTracked[shard] = true
	s.feed.mu.Unlock()
	s.feed.refloor(shard)
}

// Ack records that the subscriber has applied shard's log through index.
// Acks are monotone; a stale ack is ignored. Out-of-range shards are
// ignored (the server validates before calling). An advancing ack may
// raise the shard's trim floor.
func (s *Sub) Ack(shard int, index uint64) {
	if shard < 0 || shard >= len(s.acked) {
		return
	}
	s.mu.Lock()
	advanced := index > s.acked[shard]
	if advanced {
		s.acked[shard] = index
	}
	s.mu.Unlock()
	if advanced {
		s.feed.refloor(shard)
	}
}

// Acked returns the acked index per shard.
func (s *Sub) Acked() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, len(s.acked))
	copy(out, s.acked)
	return out
}

// Close unregisters the subscriber from its feed and releases the trim
// floors it held.
func (s *Sub) Close() {
	s.feed.mu.Lock()
	delete(s.feed.subs, s)
	s.feed.mu.Unlock()
	s.mu.Lock()
	tracked := make([]bool, len(s.tracked))
	copy(tracked, s.tracked)
	s.mu.Unlock()
	for shard, on := range tracked {
		if on {
			s.feed.refloor(shard)
		}
	}
}
