// Package repl replicates a sharded SCC store: the engine's commit hook
// (engine.Config.CommitLog) appends every installed write set to a
// per-shard Log, a Feed bundles the logs of one primary and tracks
// subscriber progress, and a Replica streams the logs over the wire
// protocol's REPL/ACK verbs (see docs/PROTOCOL.md) into a local store via
// the ApplyLocked path. Replica reads are value-cognizant: a LagGate sheds
// read-only transactions whose value function would cross zero before the
// replica's estimated catch-up, the replication analogue of the paper's
// zero-crossing load shedding. docs/ARCHITECTURE.md places the package in
// the overall data flow.
package repl

import (
	"sync"
)

// Record is one committed transaction's write set on one shard, at Index
// (1-based) in that shard's total commit order. Records applied in Index
// order reproduce the primary shard's committed state and per-key
// versions exactly.
type Record struct {
	Index  uint64
	Writes map[string][]byte
}

// Log is the ordered commit log of one shard. Append implements
// engine.CommitLog: the engine calls it under the shard's commit latch,
// so append order is the shard's version order.
type Log struct {
	mu   sync.Mutex
	recs []Record
	wake chan struct{} // closed and replaced on every append
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{wake: make(chan struct{})} }

// Append records one installed write set and wakes blocked readers. The
// map is retained, not copied; the engine guarantees committed write sets
// are never mutated afterwards.
func (l *Log) Append(writes map[string][]byte) {
	l.mu.Lock()
	l.recs = append(l.recs, Record{Index: uint64(len(l.recs)) + 1, Writes: writes})
	close(l.wake)
	l.wake = make(chan struct{})
	l.mu.Unlock()
}

// Head returns the index of the newest record (0 when empty).
func (l *Log) Head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return uint64(len(l.recs))
}

// From returns up to max records with Index >= from, plus a channel that
// is closed on the next append — the blocking handle for tailing readers:
// when the returned slice is empty, wait on the channel and retry.
func (l *Log) From(from uint64, max int) ([]Record, <-chan struct{}) {
	if from == 0 {
		from = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	wake := l.wake
	if from > uint64(len(l.recs)) {
		return nil, wake
	}
	recs := l.recs[from-1:]
	if max > 0 && len(recs) > max {
		recs = recs[:max]
	}
	return recs, wake
}

// Feed bundles the per-shard commit logs of one primary and tracks the
// ack progress of its subscribers (replicas).
type Feed struct {
	logs []*Log

	mu   sync.Mutex
	subs map[*Sub]struct{}
}

// NewFeed returns a feed with one empty log per shard.
func NewFeed(shards int) *Feed {
	f := &Feed{
		logs: make([]*Log, shards),
		subs: make(map[*Sub]struct{}),
	}
	for i := range f.logs {
		f.logs[i] = NewLog()
	}
	return f
}

// Shards returns the number of per-shard logs.
func (f *Feed) Shards() int { return len(f.logs) }

// Log returns shard's commit log. It satisfies engine.CommitLog, so it
// plugs directly into shard.Config.CommitLogFor.
func (f *Feed) Log(shard int) *Log { return f.logs[shard] }

// Heads returns every shard's newest log index.
func (f *Feed) Heads() []uint64 {
	out := make([]uint64, len(f.logs))
	for i, l := range f.logs {
		out[i] = l.Head()
	}
	return out
}

// Subscribe registers a replica connection for ack tracking. Mark each
// shard the connection actually subscribes with Track — lag is accounted
// only over tracked shards, since a partial subscriber owes no progress
// on shards it never asked for. Close the returned Sub when the
// connection goes away.
func (f *Feed) Subscribe() *Sub {
	s := &Sub{
		feed:    f,
		acked:   make([]uint64, len(f.logs)),
		tracked: make([]bool, len(f.logs)),
	}
	f.mu.Lock()
	f.subs[s] = struct{}{}
	f.mu.Unlock()
	return s
}

// Subscribers returns the number of live subscriptions.
func (f *Feed) Subscribers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs)
}

// MaxLag returns, over all live subscribers, the largest total number of
// unacked records (sum over the subscriber's tracked shards of head
// minus acked index) — the primary's repl_lag stat. Zero with no
// subscribers.
func (f *Feed) MaxLag() uint64 {
	heads := f.Heads()
	f.mu.Lock()
	defer f.mu.Unlock()
	var worst uint64
	for s := range f.subs {
		var lag uint64
		s.mu.Lock()
		for i, h := range heads {
			if !s.tracked[i] {
				continue
			}
			if a := s.acked[i]; h > a {
				lag += h - a
			}
		}
		s.mu.Unlock()
		if lag > worst {
			worst = lag
		}
	}
	return worst
}

// Sub is one subscriber's ack state.
type Sub struct {
	feed    *Feed
	mu      sync.Mutex
	acked   []uint64
	tracked []bool // shards this subscriber actually REPL-subscribed
}

// Track marks shard as subscribed, entering it into lag accounting.
func (s *Sub) Track(shard int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if shard >= 0 && shard < len(s.tracked) {
		s.tracked[shard] = true
	}
}

// Ack records that the subscriber has applied shard's log through index.
// Acks are monotone; a stale ack is ignored. Out-of-range shards are
// ignored (the server validates before calling).
func (s *Sub) Ack(shard int, index uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if shard < 0 || shard >= len(s.acked) {
		return
	}
	if index > s.acked[shard] {
		s.acked[shard] = index
	}
}

// Acked returns the acked index per shard.
func (s *Sub) Acked() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, len(s.acked))
	copy(out, s.acked)
	return out
}

// Close unregisters the subscriber from its feed.
func (s *Sub) Close() {
	s.feed.mu.Lock()
	delete(s.feed.subs, s)
	s.feed.mu.Unlock()
}
