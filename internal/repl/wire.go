// Wire encoding of replication records. A commit record travels as one
// pushed line on a subscribed connection:
//
//	LOG <shard> <index> <key>:<value> ...
//
// Keys never contain ':' (a protocol invariant of the serving layer), so
// the first ':' of each pair is the separator. Values must be space- and
// newline-free tokens; every value the serving layer writes is an ASCII
// decimal integer, which qualifies. See docs/PROTOCOL.md for the
// normative rules.

package repl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// EncodeLog renders one record as a LOG line (no trailing newline). Pairs
// are emitted in sorted key order so the encoding is deterministic.
func EncodeLog(shard int, r Record) string {
	keys := make([]string, 0, len(r.Writes))
	for k := range r.Writes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "LOG %d %d", shard, r.Index)
	for _, k := range keys {
		b.WriteByte(' ')
		b.WriteString(k)
		b.WriteByte(':')
		b.Write(r.Writes[k])
	}
	return b.String()
}

// ParseLog decodes the fields of a LOG line after the verb. It is the
// inverse of EncodeLog.
func ParseLog(fields []string) (shard int, r Record, err error) {
	if len(fields) < 3 {
		return 0, Record{}, fmt.Errorf("repl: short LOG line (%d fields)", len(fields))
	}
	shard, err = strconv.Atoi(fields[0])
	if err != nil || shard < 0 {
		return 0, Record{}, fmt.Errorf("repl: bad LOG shard %q", fields[0])
	}
	r.Index, err = strconv.ParseUint(fields[1], 10, 64)
	if err != nil || r.Index == 0 {
		return 0, Record{}, fmt.Errorf("repl: bad LOG index %q", fields[1])
	}
	r.Writes = make(map[string][]byte, len(fields)-2)
	for _, pair := range fields[2:] {
		k, v, err := ParsePair(pair)
		if err != nil {
			return 0, Record{}, fmt.Errorf("repl: bad LOG pair %q", pair)
		}
		r.Writes[k] = v
	}
	return shard, r, nil
}

// ParsePair decodes one <key>:<value> token — the encoding LOG records
// and SNAPKV snapshot lines share. The first ':' separates (keys never
// contain one); both consumers must use this single decoder so a future
// change to the pair syntax cannot apply to one path and not the other.
func ParsePair(pair string) (string, []byte, error) {
	k, v, ok := strings.Cut(pair, ":")
	if !ok || k == "" {
		return "", nil, fmt.Errorf("repl: bad pair %q", pair)
	}
	return k, []byte(v), nil
}
