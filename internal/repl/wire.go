// Wire encoding of replication records. A commit record travels as one
// pushed line on a subscribed connection:
//
//	LOG <shard> <index> <epoch>[@<s0>,<s1>,...] <key>:<value> ...
//
// The third field is the record's commit epoch; a cross-shard commit
// additionally carries its participant shard set after '@' (ascending,
// comma-separated), which the replica's apply barrier matches by epoch
// across shards. Keys never contain ':' (a protocol invariant of the
// serving layer), so the first ':' of each pair is the separator. Values
// must be space- and newline-free tokens; every value the serving layer
// writes is an ASCII decimal integer, which qualifies. See
// docs/PROTOCOL.md for the normative rules.

package repl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// EncodeLog renders one record as a LOG line (no trailing newline). Pairs
// are emitted in sorted key order so the encoding is deterministic.
func EncodeLog(shard int, r Record) string {
	keys := make([]string, 0, len(r.Writes))
	for k := range r.Writes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "LOG %d %d %d", shard, r.Index, r.Epoch)
	for i, s := range r.Shards {
		if i == 0 {
			b.WriteByte('@')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(s))
	}
	for _, k := range keys {
		b.WriteByte(' ')
		b.WriteString(k)
		b.WriteByte(':')
		b.Write(r.Writes[k])
	}
	return b.String()
}

// ParseLog decodes the fields of a LOG line after the verb. It is the
// inverse of EncodeLog.
func ParseLog(fields []string) (shard int, r Record, err error) {
	if len(fields) < 4 {
		return 0, Record{}, fmt.Errorf("repl: short LOG line (%d fields)", len(fields))
	}
	shard, err = strconv.Atoi(fields[0])
	if err != nil || shard < 0 {
		return 0, Record{}, fmt.Errorf("repl: bad LOG shard %q", fields[0])
	}
	r.Index, err = strconv.ParseUint(fields[1], 10, 64)
	if err != nil || r.Index == 0 {
		return 0, Record{}, fmt.Errorf("repl: bad LOG index %q", fields[1])
	}
	r.Epoch, r.Shards, err = parseEpochSpec(fields[2])
	if err != nil {
		return 0, Record{}, err
	}
	r.Writes = make(map[string][]byte, len(fields)-3)
	for _, pair := range fields[3:] {
		k, v, err := ParsePair(pair)
		if err != nil {
			return 0, Record{}, fmt.Errorf("repl: bad LOG pair %q", pair)
		}
		r.Writes[k] = v
	}
	return shard, r, nil
}

// parseEpochSpec decodes the LOG line's epoch token:
// "<epoch>" (standalone) or "<epoch>@<s0>,<s1>,..." (cross-shard, with
// the full ascending participant set).
func parseEpochSpec(tok string) (uint64, []int, error) {
	spec, rest, cross := strings.Cut(tok, "@")
	epoch, err := strconv.ParseUint(spec, 10, 64)
	if err != nil {
		return 0, nil, fmt.Errorf("repl: bad LOG epoch %q", tok)
	}
	if !cross {
		return epoch, nil, nil
	}
	parts := strings.Split(rest, ",")
	if len(parts) < 2 || epoch == 0 {
		return 0, nil, fmt.Errorf("repl: bad LOG epoch spec %q", tok)
	}
	shards := make([]int, len(parts))
	prev := -1
	for i, p := range parts {
		s, err := strconv.Atoi(p)
		if err != nil || s < 0 || s <= prev {
			return 0, nil, fmt.Errorf("repl: bad LOG epoch spec %q", tok)
		}
		shards[i] = s
		prev = s
	}
	return epoch, shards, nil
}

// ParsePair decodes one <key>:<value> token — the encoding LOG records
// and SNAPKV snapshot lines share. The first ':' separates (keys never
// contain one); both consumers must use this single decoder so a future
// change to the pair syntax cannot apply to one path and not the other.
func ParsePair(pair string) (string, []byte, error) {
	k, v, ok := strings.Cut(pair, ":")
	if !ok || k == "" {
		return "", nil, fmt.Errorf("repl: bad pair %q", pair)
	}
	return k, []byte(v), nil
}
