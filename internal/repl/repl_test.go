package repl

import (
	"testing"
	"time"

	"repro/internal/value"
)

func wr(k, v string) map[string][]byte { return map[string][]byte{k: []byte(v)} }

func TestLogAppendFromHead(t *testing.T) {
	l := NewLog(nil)
	if l.Head() != 0 {
		t.Fatalf("fresh log head = %d, want 0", l.Head())
	}
	recs, wake, err := l.From(1, 0)
	if err != nil || len(recs) != 0 {
		t.Fatalf("fresh log From(1) = %d records, %v; want 0, nil", len(recs), err)
	}
	l.Append(wr("a", "1"))
	select {
	case <-wake:
	default:
		t.Fatal("append did not close the wake channel")
	}
	l.Append(wr("b", "2"))
	l.Append(wr("c", "3"))
	if l.Head() != 3 {
		t.Fatalf("head = %d, want 3", l.Head())
	}
	recs, _, _ = l.From(2, 0)
	if len(recs) != 2 || recs[0].Index != 2 || recs[1].Index != 3 {
		t.Fatalf("From(2) = %+v, want indices 2,3", recs)
	}
	if recs, _, _ := l.From(1, 2); len(recs) != 2 || recs[0].Index != 1 {
		t.Fatalf("From(1, max 2) = %+v, want indices 1,2", recs)
	}
	if recs, _, _ := l.From(4, 0); len(recs) != 0 {
		t.Fatalf("From(4) past head = %+v, want empty", recs)
	}
}

// TestLogTrim pins explicit trimming: records below the trim point are
// gone (readers get ErrCompacted), indices above it are untouched, and
// Head/Base/Trimmed account for the drop.
func TestLogTrim(t *testing.T) {
	l := NewLog(nil)
	for i := 1; i <= 5; i++ {
		l.Append(wr("k", "v"))
	}
	if n := l.TrimBelow(3); n != 3 {
		t.Fatalf("TrimBelow(3) dropped %d, want 3", n)
	}
	if l.Base() != 3 || l.Head() != 5 || l.Trimmed() != 3 {
		t.Fatalf("after trim: base=%d head=%d trimmed=%d, want 3/5/3", l.Base(), l.Head(), l.Trimmed())
	}
	if _, _, err := l.From(2, 0); err != ErrCompacted {
		t.Fatalf("From below base = %v, want ErrCompacted", err)
	}
	recs, _, err := l.From(4, 0)
	if err != nil || len(recs) != 2 || recs[0].Index != 4 {
		t.Fatalf("From(4) after trim = %+v, %v; want indices 4,5", recs, err)
	}
	// Trimming past the head clamps; re-trimming below base is a no-op.
	if n := l.TrimBelow(99); n != 2 {
		t.Fatalf("TrimBelow(99) dropped %d, want 2 (clamped to head)", n)
	}
	if n := l.TrimBelow(1); n != 0 {
		t.Fatalf("TrimBelow below base dropped %d, want 0", n)
	}
	// Appends continue above the trimmed head.
	l.Append(wr("k", "v6"))
	if l.Head() != 6 {
		t.Fatalf("head after post-trim append = %d, want 6", l.Head())
	}
	if recs, _, _ := l.From(6, 0); len(recs) != 1 || recs[0].Index != 6 {
		t.Fatalf("From(6) = %+v, want index 6", recs)
	}
}

// TestLogResetBase pins the recovery boot path: an empty log reset to a
// base resumes numbering above it.
func TestLogResetBase(t *testing.T) {
	l := NewLog(nil)
	l.ResetBase(42, 0)
	if l.Head() != 42 || l.Base() != 42 {
		t.Fatalf("reset log head=%d base=%d, want 42/42", l.Head(), l.Base())
	}
	l.Append(wr("k", "v"))
	recs, _, err := l.From(43, 0)
	if err != nil || len(recs) != 1 || recs[0].Index != 43 {
		t.Fatalf("first append after ResetBase(42) = %+v, %v; want index 43", recs, err)
	}
	if _, _, err := l.From(1, 0); err != ErrCompacted {
		t.Fatalf("From(1) on reset log = %v, want ErrCompacted", err)
	}
}

// TestLogRetentionAutoTrim pins the satellite policy: with a retention
// floor set, the log trims itself below min(acked floor, head-retain)
// even with no durability layer, and never past what a tracking
// subscriber still owes.
func TestLogRetentionAutoTrim(t *testing.T) {
	f := NewFeed(1, nil)
	l := f.Log(0)
	l.SetRetention(2)

	// No subscribers: retention alone bounds the log.
	for i := 0; i < 10; i++ {
		l.Append(wr("k", "v"))
	}
	if l.Base() != 8 || l.Head() != 10 {
		t.Fatalf("retention trim: base=%d head=%d, want 8/10", l.Base(), l.Head())
	}

	// A tracking subscriber with no acks pins the floor: no further trim.
	s := f.Subscribe()
	s.Track(0)
	for i := 0; i < 5; i++ {
		l.Append(wr("k", "v"))
	}
	if l.Base() != 8 {
		t.Fatalf("trim advanced past an unacked subscriber: base=%d, want 8", l.Base())
	}

	// Acks release records up to min(acked, head-retain).
	s.Ack(0, 12)
	if l.Base() != 12 {
		t.Fatalf("base after ack 12 = %d, want 12", l.Base())
	}
	s.Ack(0, 15)
	if l.Base() != 13 { // head 15, retain 2
		t.Fatalf("base after full ack = %d, want 13 (retention keeps 2)", l.Base())
	}

	// Closing the subscriber releases its floor.
	l.Append(wr("k", "v")) // head 16
	s.Close()
	l.Append(wr("k", "v")) // head 17; auto-trim to 15
	if l.Base() != 15 {
		t.Fatalf("base after subscriber close = %d, want 15", l.Base())
	}
}

// TestLogDurableFloorTrim pins the tentpole policy: with durability, the
// log trims below min(checkpoint index, min acked) with no retention
// flag needed.
func TestLogDurableFloorTrim(t *testing.T) {
	f := NewFeed(1, nil)
	l := f.Log(0)
	for i := 0; i < 10; i++ {
		l.Append(wr("k", "v"))
	}
	s := f.Subscribe()
	s.Track(0)
	s.Ack(0, 6)
	// No floor set yet: nothing trims.
	if l.Base() != 0 {
		t.Fatalf("base before durable floor = %d, want 0", l.Base())
	}
	// Checkpoint at 4 < acked 6: trim to 4.
	l.SetDurableFloor(4)
	if l.Base() != 4 {
		t.Fatalf("base after ckpt 4 = %d, want 4", l.Base())
	}
	// Checkpoint at 9 > acked 6: trim held at the ack floor.
	l.SetDurableFloor(9)
	if l.Base() != 6 {
		t.Fatalf("base after ckpt 9 = %d, want 6 (min acked)", l.Base())
	}
	s.Ack(0, 10)
	if l.Base() != 9 {
		t.Fatalf("base after ack 10 = %d, want 9 (checkpoint floor)", l.Base())
	}
}

func TestFeedAckLag(t *testing.T) {
	f := NewFeed(2, nil)
	f.Log(0).Append(wr("a", "1"))
	f.Log(0).Append(wr("a", "2"))
	f.Log(1).Append(wr("b", "1"))
	if f.MaxLag() != 0 {
		t.Fatalf("lag with no subscribers = %d, want 0", f.MaxLag())
	}
	s1 := f.Subscribe()
	s2 := f.Subscribe()
	if f.Subscribers() != 2 {
		t.Fatalf("subscribers = %d, want 2", f.Subscribers())
	}
	s1.Track(0)
	s1.Track(1)
	s2.Track(0)
	s2.Track(1)
	// s1 fully acked; s2 acked only shard 0's first record: lag 1+1.
	s1.Ack(0, 2)
	s1.Ack(1, 1)
	s2.Ack(0, 1)
	if got := f.MaxLag(); got != 2 {
		t.Fatalf("MaxLag = %d, want 2 (s2: one unacked per shard)", got)
	}
	// A partial subscriber owes nothing on shards it never asked for.
	s3 := f.Subscribe()
	s3.Track(0)
	s3.Ack(0, 2)
	var partialWant uint64 = 2 // still s2's lag, not s3 charged for shard 1
	if got := f.MaxLag(); got != partialWant {
		t.Fatalf("MaxLag with partial subscriber = %d, want %d", got, partialWant)
	}
	s3.Close()
	// Stale and out-of-range acks are ignored.
	s2.Ack(0, 0)
	s2.Ack(99, 5)
	if a := s2.Acked(); a[0] != 1 || a[1] != 0 {
		t.Fatalf("s2 acked = %v, want [1 0]", a)
	}
	s2.Close()
	if got := f.MaxLag(); got != 0 {
		t.Fatalf("MaxLag after laggard unsubscribed = %d, want 0", got)
	}
}

func TestWireRoundTrip(t *testing.T) {
	rec := Record{Index: 7, Epoch: 19, Writes: map[string][]byte{
		"k1":      []byte("42"),
		"a.b":     []byte("-3"),
		"cnt9.01": []byte("100"),
	}}
	// Deterministic encoding: sorted key order.
	if line := EncodeLog(3, rec); line != "LOG 3 7 19 a.b:-3 cnt9.01:100 k1:42" {
		t.Fatalf("EncodeLog = %q", line)
	}
	fields := []string{"3", "7", "19", "a.b:-3", "cnt9.01:100", "k1:42"}
	shard, got, err := ParseLog(fields)
	if err != nil {
		t.Fatal(err)
	}
	if shard != 3 || got.Index != 7 || got.Epoch != 19 || got.Cross() || len(got.Writes) != 3 ||
		string(got.Writes["a.b"]) != "-3" || string(got.Writes["k1"]) != "42" {
		t.Fatalf("ParseLog = shard %d, %+v", shard, got)
	}
	for _, bad := range [][]string{
		{},
		{"3"},
		{"3", "7"},
		{"3", "7", "0"},
		{"x", "7", "0", "a:1"},
		{"-1", "7", "0", "a:1"},
		{"3", "0", "0", "a:1"},
		{"3", "x", "0", "a:1"},
		{"3", "7", "x", "a:1"},
		{"3", "7", "0", "nocolon"},
		{"3", "7", "0", ":empty"},
	} {
		if _, _, err := ParseLog(bad); err == nil {
			t.Errorf("ParseLog(%v) accepted malformed input", bad)
		}
	}
}

// TestWireCrossEpochSpec pins the cross-shard epoch spec: the epoch field
// carries the full ascending participant set after '@', and malformed
// specs (short sets, unordered sets, epoch zero) are rejected rather than
// silently read as standalone records — a replica that missed the
// participant set would skip the apply barrier and tear the commit.
func TestWireCrossEpochSpec(t *testing.T) {
	rec := Record{Index: 4, Epoch: 9, Shards: []int{1, 3}, Writes: map[string][]byte{
		"a": []byte("1"),
		"b": []byte("-1"),
	}}
	line := EncodeLog(1, rec)
	if line != "LOG 1 4 9@1,3 a:1 b:-1" {
		t.Fatalf("EncodeLog cross = %q", line)
	}
	shard, got, err := ParseLog([]string{"1", "4", "9@1,3", "a:1", "b:-1"})
	if err != nil {
		t.Fatal(err)
	}
	if shard != 1 || got.Epoch != 9 || !got.Cross() ||
		len(got.Shards) != 2 || got.Shards[0] != 1 || got.Shards[1] != 3 {
		t.Fatalf("ParseLog cross = shard %d, %+v", shard, got)
	}
	for _, bad := range []string{
		"9@",      // empty participant set
		"9@1",     // a one-shard "cross" commit is not cross
		"9@3,1",   // participants must ascend
		"9@1,1",   // duplicates are not a set
		"9@1,x",   // non-numeric participant
		"9@-1,3",  // negative shard
		"0@1,3",   // epoch zero cannot be cross
		"x@1,3",   // non-numeric epoch
		"9@1,3,3", // trailing duplicate
	} {
		if _, _, err := ParseLog([]string{"1", "4", bad, "a:1"}); err == nil {
			t.Errorf("ParseLog accepted malformed epoch spec %q", bad)
		}
	}
}

// TestLagGateDeterministic pins the lag-shedding rule without clocks or
// sleeps: every time input is explicit.
func TestLagGateDeterministic(t *testing.T) {
	// Budget 10ms, 1ms per record: 1000 unapplied records = 1s catch-up.
	g := NewLagGate(2, 10*time.Millisecond, time.Millisecond)
	tight := value.Fn{V: 1, Deadline: 0.1, Gradient: 10}   // crosses zero at t=0.2
	loose := value.Fn{V: 1, Deadline: 3600, Gradient: 0.1} // crosses zero in an hour

	// Caught up: everything admitted, even past-deadline work.
	if err := g.Admit(tight, 0); err != nil {
		t.Fatalf("caught-up gate shed a read: %v", err)
	}

	g.ObserveHead(0, 1000)
	if g.LagRecords() != 1000 {
		t.Fatalf("lag = %d, want 1000", g.LagRecords())
	}
	if got := g.CatchUp(); got < 0.9 || got > 1.1 {
		t.Fatalf("catch-up estimate = %gs, want ~1s", got)
	}
	// The tight read's value function crosses zero at 0.2s < 1s catch-up.
	if err := g.Admit(tight, 0); err != ErrLagging {
		t.Fatalf("lagging gate admitted a doomed read: %v", err)
	}
	if g.Shed() != 1 {
		t.Fatalf("shed = %d, want 1", g.Shed())
	}
	// The loose read still carries value after catch-up: served stale.
	if err := g.Admit(loose, 0); err != nil {
		t.Fatalf("lagging gate shed a still-valuable read: %v", err)
	}

	// Catch up: applied reaches the head, lag and shedding stop. The
	// apply timing refines the per-record estimate instead of the seed.
	g.ObserveApplied(0, 1000, time.Second, 1000)
	if g.LagRecords() != 0 {
		t.Fatalf("lag after catch-up = %d, want 0", g.LagRecords())
	}
	if err := g.Admit(tight, 0); err != nil {
		t.Fatalf("caught-up gate shed: %v", err)
	}
	if g.Shed() != 1 {
		t.Fatalf("shed after catch-up = %d, want 1 still", g.Shed())
	}

	// ObserveApplied past the seen head drags seen along (a replica can
	// apply records the gate never saw a head announcement for).
	g.ObserveApplied(1, 5, 0, 0)
	if g.LagRecords() != 0 {
		t.Fatalf("lag after silent apply = %d, want 0", g.LagRecords())
	}
}
