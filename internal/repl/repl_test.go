package repl

import (
	"testing"
	"time"

	"repro/internal/value"
)

func wr(k, v string) map[string][]byte { return map[string][]byte{k: []byte(v)} }

func TestLogAppendFromHead(t *testing.T) {
	l := NewLog()
	if l.Head() != 0 {
		t.Fatalf("fresh log head = %d, want 0", l.Head())
	}
	recs, wake := l.From(1, 0)
	if len(recs) != 0 {
		t.Fatalf("fresh log From(1) = %d records, want 0", len(recs))
	}
	l.Append(wr("a", "1"))
	select {
	case <-wake:
	default:
		t.Fatal("append did not close the wake channel")
	}
	l.Append(wr("b", "2"))
	l.Append(wr("c", "3"))
	if l.Head() != 3 {
		t.Fatalf("head = %d, want 3", l.Head())
	}
	recs, _ = l.From(2, 0)
	if len(recs) != 2 || recs[0].Index != 2 || recs[1].Index != 3 {
		t.Fatalf("From(2) = %+v, want indices 2,3", recs)
	}
	if recs, _ := l.From(1, 2); len(recs) != 2 || recs[0].Index != 1 {
		t.Fatalf("From(1, max 2) = %+v, want indices 1,2", recs)
	}
	if recs, _ := l.From(4, 0); len(recs) != 0 {
		t.Fatalf("From(4) past head = %+v, want empty", recs)
	}
}

func TestFeedAckLag(t *testing.T) {
	f := NewFeed(2)
	f.Log(0).Append(wr("a", "1"))
	f.Log(0).Append(wr("a", "2"))
	f.Log(1).Append(wr("b", "1"))
	if f.MaxLag() != 0 {
		t.Fatalf("lag with no subscribers = %d, want 0", f.MaxLag())
	}
	s1 := f.Subscribe()
	s2 := f.Subscribe()
	if f.Subscribers() != 2 {
		t.Fatalf("subscribers = %d, want 2", f.Subscribers())
	}
	s1.Track(0)
	s1.Track(1)
	s2.Track(0)
	s2.Track(1)
	// s1 fully acked; s2 acked only shard 0's first record: lag 1+1.
	s1.Ack(0, 2)
	s1.Ack(1, 1)
	s2.Ack(0, 1)
	if got := f.MaxLag(); got != 2 {
		t.Fatalf("MaxLag = %d, want 2 (s2: one unacked per shard)", got)
	}
	// A partial subscriber owes nothing on shards it never asked for.
	s3 := f.Subscribe()
	s3.Track(0)
	s3.Ack(0, 2)
	var partialWant uint64 = 2 // still s2's lag, not s3 charged for shard 1
	if got := f.MaxLag(); got != partialWant {
		t.Fatalf("MaxLag with partial subscriber = %d, want %d", got, partialWant)
	}
	s3.Close()
	// Stale and out-of-range acks are ignored.
	s2.Ack(0, 0)
	s2.Ack(99, 5)
	if a := s2.Acked(); a[0] != 1 || a[1] != 0 {
		t.Fatalf("s2 acked = %v, want [1 0]", a)
	}
	s2.Close()
	if got := f.MaxLag(); got != 0 {
		t.Fatalf("MaxLag after laggard unsubscribed = %d, want 0", got)
	}
}

func TestWireRoundTrip(t *testing.T) {
	rec := Record{Index: 7, Writes: map[string][]byte{
		"k1":      []byte("42"),
		"a.b":     []byte("-3"),
		"cnt9.01": []byte("100"),
	}}
	// Deterministic encoding: sorted key order.
	if line := EncodeLog(3, rec); line != "LOG 3 7 a.b:-3 cnt9.01:100 k1:42" {
		t.Fatalf("EncodeLog = %q", line)
	}
	fields := []string{"3", "7", "a.b:-3", "cnt9.01:100", "k1:42"}
	shard, got, err := ParseLog(fields)
	if err != nil {
		t.Fatal(err)
	}
	if shard != 3 || got.Index != 7 || len(got.Writes) != 3 ||
		string(got.Writes["a.b"]) != "-3" || string(got.Writes["k1"]) != "42" {
		t.Fatalf("ParseLog = shard %d, %+v", shard, got)
	}
	for _, bad := range [][]string{
		{},
		{"3"},
		{"3", "7"},
		{"x", "7", "a:1"},
		{"-1", "7", "a:1"},
		{"3", "0", "a:1"},
		{"3", "x", "a:1"},
		{"3", "7", "nocolon"},
		{"3", "7", ":empty"},
	} {
		if _, _, err := ParseLog(bad); err == nil {
			t.Errorf("ParseLog(%v) accepted malformed input", bad)
		}
	}
}

// TestLagGateDeterministic pins the lag-shedding rule without clocks or
// sleeps: every time input is explicit.
func TestLagGateDeterministic(t *testing.T) {
	// Budget 10ms, 1ms per record: 1000 unapplied records = 1s catch-up.
	g := NewLagGate(2, 10*time.Millisecond, time.Millisecond)
	tight := value.Fn{V: 1, Deadline: 0.1, Gradient: 10}   // crosses zero at t=0.2
	loose := value.Fn{V: 1, Deadline: 3600, Gradient: 0.1} // crosses zero in an hour

	// Caught up: everything admitted, even past-deadline work.
	if err := g.Admit(tight, 0); err != nil {
		t.Fatalf("caught-up gate shed a read: %v", err)
	}

	g.ObserveHead(0, 1000)
	if g.LagRecords() != 1000 {
		t.Fatalf("lag = %d, want 1000", g.LagRecords())
	}
	if got := g.CatchUp(); got < 0.9 || got > 1.1 {
		t.Fatalf("catch-up estimate = %gs, want ~1s", got)
	}
	// The tight read's value function crosses zero at 0.2s < 1s catch-up.
	if err := g.Admit(tight, 0); err != ErrLagging {
		t.Fatalf("lagging gate admitted a doomed read: %v", err)
	}
	if g.Shed() != 1 {
		t.Fatalf("shed = %d, want 1", g.Shed())
	}
	// The loose read still carries value after catch-up: served stale.
	if err := g.Admit(loose, 0); err != nil {
		t.Fatalf("lagging gate shed a still-valuable read: %v", err)
	}

	// Catch up: applied reaches the head, lag and shedding stop. The
	// apply timing refines the per-record estimate instead of the seed.
	g.ObserveApplied(0, 1000, time.Second, 1000)
	if g.LagRecords() != 0 {
		t.Fatalf("lag after catch-up = %d, want 0", g.LagRecords())
	}
	if err := g.Admit(tight, 0); err != nil {
		t.Fatalf("caught-up gate shed: %v", err)
	}
	if g.Shed() != 1 {
		t.Fatalf("shed after catch-up = %d, want 1 still", g.Shed())
	}

	// ObserveApplied past the seen head drags seen along (a replica can
	// apply records the gate never saw a head announcement for).
	g.ObserveApplied(1, 5, 0, 0)
	if g.LagRecords() != 0 {
		t.Fatalf("lag after silent apply = %d, want 0", g.LagRecords())
	}
}
