// Value-cognizant replica read admission. A stale replica read is just
// another speculative execution: serving it is betting that its result is
// still worth something once the client acts on it. The LagGate prices
// that bet with the paper's value functions — a read-only transaction
// whose value function would cross zero before the replica's estimated
// catch-up can no longer add value, so it is shed (Sec. 3's zero-crossing
// rule lifted to replication lag).

package repl

import (
	"errors"
	"sync"
	"time"

	"repro/internal/value"
)

// ErrLagging is returned by LagGate.Admit for a read shed on replica lag.
var ErrLagging = errors.New("repl: replica lag sheds read past its zero-crossing")

// LagGate tracks a replica's per-shard replication progress and decides,
// per read-only transaction, whether serving it now can still add value.
// All methods are safe for concurrent use. Time inputs are explicit
// (seconds, the caller's clock base), so tests are deterministic.
type LagGate struct {
	budget float64 // estimated catch-up seconds tolerated without shedding

	mu      sync.Mutex
	seen    []uint64 // highest log index known to exist, per shard
	applied []uint64 // highest log index applied, per shard
	perRec  float64  // EWMA seconds to apply one record
	shed    int64
}

// NewLagGate returns a gate for a replica of shards partitions. budget is
// the estimated catch-up time tolerated before value-based shedding
// starts; initPerRec seeds the per-record apply-time estimate (default
// 20µs when <= 0).
func NewLagGate(shards int, budget time.Duration, initPerRec time.Duration) *LagGate {
	if initPerRec <= 0 {
		initPerRec = 20 * time.Microsecond
	}
	return &LagGate{
		budget:  budget.Seconds(),
		seen:    make([]uint64, shards),
		applied: make([]uint64, shards),
		perRec:  initPerRec.Seconds(),
	}
}

// ObserveHead records that shard's primary log extends at least to head.
func (g *LagGate) ObserveHead(shard int, head uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if shard < 0 || shard >= len(g.seen) {
		return
	}
	if head > g.seen[shard] {
		g.seen[shard] = head
	}
}

// ObserveApplied records that shard's log has been applied through index;
// took is the wall time spent applying n records, refining the per-record
// estimate (pass 0, 0 to skip refinement).
func (g *LagGate) ObserveApplied(shard int, index uint64, took time.Duration, n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if shard < 0 || shard >= len(g.applied) {
		return
	}
	if index > g.applied[shard] {
		g.applied[shard] = index
	}
	if index > g.seen[shard] {
		g.seen[shard] = index
	}
	if n > 0 && took > 0 {
		const alpha = 0.1
		g.perRec = (1-alpha)*g.perRec + alpha*took.Seconds()/float64(n)
	}
}

// LagRecords returns the total number of known-but-unapplied records.
func (g *LagGate) LagRecords() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.lagLocked()
}

func (g *LagGate) lagLocked() uint64 {
	var lag uint64
	for i, s := range g.seen {
		if a := g.applied[i]; s > a {
			lag += s - a
		}
	}
	return lag
}

// Applied returns the total number of applied records across shards.
func (g *LagGate) Applied() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	var n uint64
	for _, a := range g.applied {
		n += a
	}
	return n
}

// CatchUp estimates the seconds until the replica has applied everything
// it knows about, from the current lag and per-record apply estimate.
func (g *LagGate) CatchUp() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return float64(g.lagLocked()) * g.perRec
}

// Admit decides whether a read-only transaction with value function f may
// be served from the replica's current snapshot at time now (seconds, in
// f's clock base). Within the lag budget every read is served. Past it, a
// read is shed — counted in Shed — iff its value function crosses zero
// before the estimated catch-up: its result could never be delivered from
// fresh-enough state while it still carries value.
func (g *LagGate) Admit(f value.Fn, now float64) error {
	catch := g.CatchUp()
	if catch <= g.budget {
		return nil
	}
	if f.At(now+catch) <= 0 {
		g.mu.Lock()
		g.shed++
		g.mu.Unlock()
		return ErrLagging
	}
	return nil
}

// Shed returns the number of reads shed on lag.
func (g *LagGate) Shed() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.shed
}
