// The replica side of log shipping: dial the primary, subscribe every
// shard with REPL, apply the pushed LOG records through the store's
// ApplyLocked path in index order, and report progress with ACK. Records
// are applied in batches — consecutive records already buffered on the
// connection are grouped per shard and installed under one commit-latch
// hold — so a catching-up replica pays one latch acquisition per batch,
// the same coalescing shape as the primary's group commit.
//
// Cross-shard commits are gated by an apply barrier: a record stamped
// with a multi-shard epoch is held in its shard's pending queue until
// every participant shard's part of the same epoch is next in line (or
// already applied, per the resumed epoch watermark), then all parts are
// installed under one hold of all the participants' latches via
// ApplyReplicatedCross. A reader of the replica therefore never observes
// a cross-shard commit half-applied — it becomes visible on the replica
// all-shards-at-once, exactly as it committed on the primary.

package repl

import (
	"bufio"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/shard"
)

// ReplicaConfig configures a replication client.
type ReplicaConfig struct {
	// Primary is the primary server's address.
	Primary string
	// Store is the local store the stream applies into. It must have the
	// same shard count as the primary (verified at subscribe time).
	Store *shard.Store
	// Gate, when non-nil, is kept current with the stream's head and
	// apply progress so replica reads can be lag-gated.
	Gate *LagGate
	// MaxBatch caps records applied under one latch hold (default 256).
	MaxBatch int
	// HeadInterval is how often the replica polls the primary's log
	// heads on a separate control connection (default 25ms; only with a
	// Gate). The stream alone cannot carry this honestly: a backpressured
	// replica reads the stream late by exactly the lag being measured,
	// while the poll connection stays idle and current.
	HeadInterval time.Duration
	// Snapshot bootstraps the replica via the SNAP verb: each shard's
	// current state is fetched atomically at its recorded commit-log
	// index and installed in one batch, then the log is subscribed from
	// the next index. Required when the primary has trimmed its log
	// (retention, checkpoints), and cheaper than replay-from-1 against
	// any long-running primary. Off, the replica replays from index 1 —
	// which the primary refuses once trimmed.
	Snapshot bool
	// ResumePath, when non-empty, persists the PRIMARY's per-shard
	// applied log indices to this file after each applied batch and
	// resumes the subscription from them at the next start, skipping the
	// snapshot bootstrap. The local store's own commit-log indices are
	// useless for this — a snapshot installs as one local record, so
	// local and primary numbering diverge — which is exactly the bug that
	// made a durable replica re-SNAP every shard on restart. The file is
	// written non-synced (tmp+rename): a stale offset only re-applies
	// records, which is safe because log records carry absolute values.
	// If the primary has trimmed its log past a resume point, StartReplica
	// falls back to a fresh snapshot bootstrap automatically.
	ResumePath string
	// Metrics, when non-nil, receives apply-path observations. All
	// fields must be populated.
	Metrics *ReplicaMetrics
	// Flight, when non-nil, receives one event per apply batch — the
	// replica half of the cross-node causal timeline: the event carries
	// the batch's newest commit epoch, so a merged flight dump joins it
	// to the primary's intent/decision events for the same epoch.
	Flight *flight.Ring
}

// ReplicaMetrics are the replica's instruments, registered by the
// operator binary (sccserve) in its obs registry.
type ReplicaMetrics struct {
	// ApplySeconds observes each batch install (latch hold + local
	// commit-log sync).
	ApplySeconds *obs.Histogram
	// ApplyBatch observes records installed per latch hold — the
	// replica-side coalescing win.
	ApplyBatch *obs.Histogram
	// Resumes counts subscriptions resumed from persisted primary
	// offsets; Snapshots counts shard snapshot bootstraps. A restarting
	// durable replica should grow Resumes, not Snapshots.
	Resumes   *obs.Counter
	Snapshots *obs.Counter
}

// Replica is a live replication client. Create one with StartReplica.
type Replica struct {
	conn       net.Conn
	store      *shard.Store
	gate       *LagGate
	maxBatch   int
	w          *bufio.Writer
	resumePath string
	met        *ReplicaMetrics
	flight     *flight.Ring

	mu        sync.Mutex
	applied   []uint64
	acked     []uint64
	lastEpoch []uint64 // per-shard commit-epoch watermark (wire epochs)
	err       error
	closed    bool
	done      chan struct{}

	// Apply-barrier state, touched only by the run goroutine (and the
	// handshake before it starts): per-shard queues of received-but-
	// unapplied records, and the next wire index each shard expects.
	pending [][]Record
	nextIdx []uint64
}

// faultApplyDelay stalls the replica's apply loop before each install —
// a chaos hook (SCC_FAULT_APPLY_DELAY_MS) that widens the window in
// which a half-shipped cross-shard commit would be visible on a replica
// without the apply barrier.
var faultApplyDelay = func() time.Duration {
	if v := os.Getenv("SCC_FAULT_APPLY_DELAY_MS"); v != "" {
		if ms, err := strconv.Atoi(v); err == nil && ms > 0 {
			return time.Duration(ms) * time.Millisecond
		}
	}
	return 0
}()

// StartReplica connects to the primary, verifies the shard counts match,
// subscribes every shard — from persisted primary offsets when
// ResumePath holds them, from a snapshot bootstrap or index 1 otherwise
// — and waits for every subscription to be confirmed (so a non-primary
// target fails here, at startup), then starts the apply loop. A resumed
// subscription the primary refuses (log trimmed past the resume point)
// falls back to a fresh snapshot bootstrap before giving up. The stream
// runs until Close or a connection error; Done/Err report the end.
func StartReplica(cfg ReplicaConfig) (*Replica, error) {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.HeadInterval <= 0 {
		cfg.HeadInterval = 25 * time.Millisecond
	}
	r := &Replica{
		store:      cfg.Store,
		gate:       cfg.Gate,
		maxBatch:   cfg.MaxBatch,
		resumePath: cfg.ResumePath,
		met:        cfg.Metrics,
		flight:     cfg.Flight,
		applied:    make([]uint64, cfg.Store.NumShards()),
		acked:      make([]uint64, cfg.Store.NumShards()),
		lastEpoch:  make([]uint64, cfg.Store.NumShards()),
		pending:    make([][]Record, cfg.Store.NumShards()),
		nextIdx:    make([]uint64, cfg.Store.NumShards()),
		done:       make(chan struct{}),
	}
	resumed := false
	if cfg.ResumePath != "" {
		if offs, epochs := loadOffsets(cfg.ResumePath, cfg.Store.NumShards()); offs != nil {
			copy(r.applied, offs)
			copy(r.lastEpoch, epochs)
			resumed = true
		}
	}
	br, pre, err := r.connect(cfg.Primary, cfg.Snapshot && !resumed)
	if err != nil && resumed && cfg.Snapshot && errors.As(err, new(*refusedError)) {
		// The primary trimmed its log past the resume point. The persisted
		// offsets are durable truth about what was applied, but the
		// primary can no longer serve the suffix — start over from a
		// snapshot on a fresh connection (SNAP must precede REPL).
		slog.Warn("repl: resume refused by primary; falling back to snapshot bootstrap",
			"err", err)
		for i := range r.applied {
			r.applied[i] = 0
			r.acked[i] = 0
			r.lastEpoch[i] = 0
		}
		br, pre, err = r.connect(cfg.Primary, true)
	}
	if err != nil {
		return nil, err
	}
	for i := range r.nextIdx {
		r.nextIdx[i] = r.applied[i] + 1
	}
	if resumed && r.met != nil {
		r.met.Resumes.Add(int64(cfg.Store.NumShards()))
	}
	go r.run(br, pre)
	if r.gate != nil {
		go r.pollHeads(cfg.Primary, cfg.HeadInterval)
	}
	return r, nil
}

// connect dials the primary and runs the subscription handshake,
// leaving r.conn/r.w bound to the new connection. On error the
// connection is closed.
func (r *Replica) connect(primary string, snapshot bool) (*bufio.Reader, map[int][]Record, error) {
	conn, err := net.Dial("tcp", primary)
	if err != nil {
		return nil, nil, err
	}
	r.conn = conn
	r.w = bufio.NewWriter(conn)
	br := bufio.NewReaderSize(conn, 256*1024)
	pre, err := r.handshake(br, snapshot)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	return br, pre, nil
}

// refusedError marks a subscription the primary rejected with an ERR
// reply — the "log trimmed" case a resumed replica must recover from by
// re-bootstrapping, as opposed to transport failures, which must not
// silently discard persisted progress.
type refusedError struct{ line string }

func (e *refusedError) Error() string { return "repl: primary refused subscription: " + e.line }

// loadOffsets reads persisted per-shard primary indices and commit-epoch
// watermarks ("v2 <idx>@<epoch> ..."); nil means no usable file (absent,
// malformed, v1, or written for another shard count — all treated as "no
// resume", never as an error). The epochs let a resumed replica release
// the apply barrier for a cross-shard commit whose part on some shard
// was already applied before the restart: that shard resubscribes past
// the record, so its part never arrives again, and only the watermark
// proves it was installed.
func loadOffsets(path string, shards int) ([]uint64, []uint64) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil
	}
	fields := strings.Fields(string(b))
	if len(fields) != shards+1 || fields[0] != "v2" {
		return nil, nil
	}
	idxs := make([]uint64, shards)
	epochs := make([]uint64, shards)
	for i, f := range fields[1:] {
		is, es, ok := strings.Cut(f, "@")
		if !ok {
			return nil, nil
		}
		if idxs[i], err = strconv.ParseUint(is, 10, 64); err != nil {
			return nil, nil
		}
		if epochs[i], err = strconv.ParseUint(es, 10, 64); err != nil {
			return nil, nil
		}
	}
	return idxs, epochs
}

// saveOffsets persists the primary's applied indices with an atomic
// tmp+rename, no fsync: losing the newest write costs a re-apply of a
// few records (idempotent — records carry absolute values), while a
// torn file would cost a full re-bootstrap.
func (r *Replica) saveOffsets() {
	if r.resumePath == "" {
		return
	}
	var b strings.Builder
	b.WriteString("v2")
	r.mu.Lock()
	for i, idx := range r.applied {
		fmt.Fprintf(&b, " %d@%d", idx, r.lastEpoch[i])
	}
	r.mu.Unlock()
	b.WriteByte('\n')
	tmp := r.resumePath + ".tmp"
	if err := os.WriteFile(tmp, []byte(b.String()), 0o644); err != nil {
		return
	}
	os.Rename(tmp, r.resumePath)
}

// handshake checks the primary's shard count via STATS, optionally
// snapshot-bootstraps every shard (SNAP), subscribes every shard from
// just above its installed position, and reads until each subscription
// is confirmed (OK <shard> <head>). LOG pushes of already-confirmed
// shards may interleave with later confirmations; they are buffered and
// returned for the run loop to apply first. Any ERR reply — e.g. "not a
// replication primary", or "log trimmed" for a non-snapshot replica
// joining a trimmed log — fails the handshake, so a misdirected replica
// dies at startup instead of serving an empty snapshot.
func (r *Replica) handshake(br *bufio.Reader, snapshot bool) (map[int][]Record, error) {
	if _, err := fmt.Fprintf(r.w, "STATS\n"); err != nil {
		return nil, err
	}
	if err := r.w.Flush(); err != nil {
		return nil, err
	}
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("repl: primary handshake: %w", err)
	}
	shards := -1
	for _, f := range strings.Fields(strings.TrimSpace(line)) {
		if v, ok := strings.CutPrefix(f, "shards="); ok {
			shards, err = strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("repl: bad shards= in primary STATS: %q", v)
			}
		}
	}
	if shards < 0 {
		return nil, fmt.Errorf("repl: primary STATS reply carries no shard count: %q", strings.TrimSpace(line))
	}
	if shards != r.store.NumShards() {
		return nil, fmt.Errorf("repl: shard count mismatch: primary has %d, replica has %d", shards, r.store.NumShards())
	}
	if snapshot {
		if err := r.bootstrap(br, shards); err != nil {
			return nil, err
		}
	}
	for i := 0; i < shards; i++ {
		if _, err := fmt.Fprintf(r.w, "REPL %d %d\n", i, r.appliedIdx(i)+1); err != nil {
			return nil, err
		}
	}
	if err := r.w.Flush(); err != nil {
		return nil, err
	}
	pre := make(map[int][]Record)
	confirmed := 0
	for confirmed < shards {
		raw, err := br.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("repl: subscribe: %w", err)
		}
		line := strings.TrimSpace(raw)
		if strings.HasPrefix(line, "ERR") {
			return nil, &refusedError{line: line}
		}
		if fields := strings.Fields(line); len(fields) == 3 && fields[0] == "OK" {
			confirmed++
		}
		if err := r.consume(line, pre); err != nil {
			return nil, err
		}
	}
	// Announce the bootstrapped positions: the primary's lag accounting
	// and trim floors should start from the snapshot indices, not from
	// zero. (ACK is only legal after a REPL created the subscription.)
	acked := false
	for i := 0; i < shards; i++ {
		if a := r.appliedIdx(i); a > 0 {
			if _, err := fmt.Fprintf(r.w, "ACK %d %d\n", i, a); err != nil {
				return nil, err
			}
			r.mu.Lock()
			r.acked[i] = a
			r.mu.Unlock()
			acked = true
		}
	}
	if acked {
		if err := r.w.Flush(); err != nil {
			return nil, err
		}
	}
	return pre, nil
}

// bootstrap fetches and installs every shard's SNAP snapshot. Replies
// are strictly ordered (nothing is subscribed yet, so no pushes
// interleave): per shard, an "OK <shard> <index> <epoch> <n>" header,
// then the n pairs across SNAPKV lines. The header's epoch is the
// shard's commit-epoch watermark at the snapshot cut: every commit with
// epoch <= it (cross-shard ones included) is folded into the snapshot,
// which seeds the apply barrier's resumed-epoch escape. The snapshot is
// installed through the same ApplyReplicated path as streamed records —
// one batch, native commit visibility, and (on a durable or chaining
// replica) one record in the local commit log.
func (r *Replica) bootstrap(br *bufio.Reader, shards int) error {
	for i := 0; i < shards; i++ {
		if _, err := fmt.Fprintf(r.w, "SNAP %d\n", i); err != nil {
			return err
		}
	}
	if err := r.w.Flush(); err != nil {
		return err
	}
	for i := 0; i < shards; i++ {
		raw, err := br.ReadString('\n')
		if err != nil {
			return fmt.Errorf("repl: snapshot: %w", err)
		}
		fields := strings.Fields(strings.TrimSpace(raw))
		if len(fields) != 5 || fields[0] != "OK" {
			return fmt.Errorf("repl: primary refused snapshot: %s", strings.TrimSpace(raw))
		}
		head, err1 := strconv.ParseUint(fields[2], 10, 64)
		epoch, err3 := strconv.ParseUint(fields[3], 10, 64)
		n, err2 := strconv.Atoi(fields[4])
		if fields[1] != strconv.Itoa(i) || err1 != nil || err2 != nil || err3 != nil || n < 0 {
			return fmt.Errorf("repl: malformed snapshot header %q", strings.TrimSpace(raw))
		}
		writes := make(map[string][]byte, n)
		for got := 0; got < n; {
			raw, err := br.ReadString('\n')
			if err != nil {
				return fmt.Errorf("repl: snapshot body: %w", err)
			}
			kvf := strings.Fields(strings.TrimSpace(raw))
			if len(kvf) < 3 || kvf[0] != "SNAPKV" || kvf[1] != strconv.Itoa(i) {
				return fmt.Errorf("repl: unexpected line in snapshot body: %q", strings.TrimSpace(raw))
			}
			for _, pair := range kvf[2:] {
				k, v, err := ParsePair(pair)
				if err != nil {
					return fmt.Errorf("repl: bad snapshot pair %q", pair)
				}
				writes[k] = v
				got++
			}
		}
		if len(writes) > 0 {
			if err := r.store.ApplyReplicated(i, []map[string][]byte{writes}); err != nil {
				return err
			}
		}
		r.mu.Lock()
		r.applied[i] = head
		r.lastEpoch[i] = epoch
		r.mu.Unlock()
		if r.met != nil {
			r.met.Snapshots.Inc()
		}
		if r.gate != nil {
			r.gate.ObserveApplied(i, head, 0, 0)
		}
	}
	// Record the bootstrap positions immediately: a replica restarted
	// before any stream traffic should still resume, not re-SNAP.
	r.saveOffsets()
	return nil
}

// pollHeads keeps the lag gate's view of the primary's log heads current
// on a dedicated control connection. The replication stream cannot carry
// this signal honestly — a lagging replica reads the stream exactly as
// late as the lag being measured — so heads are polled out-of-band. Poll
// failures are non-fatal: the stream still drives applies, the gate just
// stops learning about new backlog.
func (r *Replica) pollHeads(addr string, every time.Duration) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return
	}
	defer conn.Close()
	go func() {
		<-r.done
		conn.Close() // unblock a read parked in the poll loop
	}()
	br := bufio.NewReader(conn)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-t.C:
		}
		if _, err := fmt.Fprintf(conn, "HEAD\n"); err != nil {
			return
		}
		raw, err := br.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(raw))
		// HEAD replies carry the primary's epoch watermark first, then
		// the per-shard heads: "OK <epoch-watermark> <head0> <head1> ..."
		// (docs/PROTOCOL.md, "Replication"). The gate wants the heads;
		// the watermark serves lease/promotion decisions elsewhere.
		if len(fields) < 2 || fields[0] != "OK" {
			continue
		}
		for i, f := range fields[2:] {
			if h, err := strconv.ParseUint(f, 10, 64); err == nil {
				r.gate.ObserveHead(i, h)
			}
		}
	}
}

// run is the apply loop: drain whatever lines the connection has buffered
// (blocking for the first), apply the LOG records per shard under one
// latch hold each, then ACK the new positions. batch starts with the
// records the handshake buffered.
func (r *Replica) run(br *bufio.Reader, batch map[int][]Record) {
	defer close(r.done)
	if err := r.apply(batch); err != nil {
		r.fail(err)
		return
	}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			r.fail(fmt.Errorf("repl: stream lost: %w", err))
			return
		}
		for {
			if err := r.consume(strings.TrimSpace(line), batch); err != nil {
				r.fail(err)
				return
			}
			if br.Buffered() == 0 || r.batchLen(batch) >= r.maxBatch {
				break
			}
			line, err = br.ReadString('\n')
			if err != nil {
				r.fail(fmt.Errorf("repl: stream lost: %w", err))
				return
			}
		}
		if err := r.apply(batch); err != nil {
			r.fail(err)
			return
		}
	}
}

func (r *Replica) batchLen(batch map[int][]Record) int {
	n := 0
	for _, recs := range batch {
		n += len(recs)
	}
	return n
}

// consume routes one received line: LOG records accumulate into batch,
// subscription confirmations update the gate's head, bare OKs (ack
// replies) are discarded, anything else is a stream error.
func (r *Replica) consume(line string, batch map[int][]Record) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	switch fields[0] {
	case "LOG":
		shardIdx, rec, err := ParseLog(fields[1:])
		if err != nil {
			return err
		}
		if shardIdx >= r.store.NumShards() {
			return fmt.Errorf("repl: LOG for unknown shard %d", shardIdx)
		}
		if r.gate != nil {
			r.gate.ObserveHead(shardIdx, rec.Index)
		}
		batch[shardIdx] = append(batch[shardIdx], rec)
		return nil
	case "OK":
		if len(fields) == 3 {
			// Subscription confirmation: OK <shard> <head>.
			shardIdx, err1 := strconv.Atoi(fields[1])
			head, err2 := strconv.ParseUint(fields[2], 10, 64)
			if err1 == nil && err2 == nil && r.gate != nil {
				r.gate.ObserveHead(shardIdx, head)
			}
		}
		return nil
	default:
		return fmt.Errorf("repl: unexpected line on replication stream: %q", line)
	}
}

// apply moves the gathered records into the per-shard pending queues
// (verifying index contiguity), then drains every queue as far as the
// apply barrier allows: standalone prefixes install in one latch hold
// per shard, and a cross-shard record at a queue head installs — all
// parts under one multi-latch hold — only once every participant's part
// is also at its head or already applied (resumed epoch watermark).
// Parts of a cross commit whose partners haven't streamed in yet stay
// queued, un-acked and invisible, until they have. New positions are
// acknowledged after the drain.
func (r *Replica) apply(batch map[int][]Record) error {
	for shardIdx, recs := range batch {
		for _, rec := range recs {
			if rec.Index != r.nextIdx[shardIdx] {
				return fmt.Errorf("repl: shard %d log gap: got index %d, want %d",
					shardIdx, rec.Index, r.nextIdx[shardIdx])
			}
			r.pending[shardIdx] = append(r.pending[shardIdx], rec)
			r.nextIdx[shardIdx]++
		}
		delete(batch, shardIdx)
	}
	appliedAny := false
	before := r.Applied()
	for {
		progressed := false
		for shardIdx := range r.pending {
			n, err := r.drainShard(shardIdx)
			if err != nil {
				return err
			}
			if n {
				progressed, appliedAny = true, true
			}
		}
		if !progressed {
			break
		}
	}
	after := r.Applied()
	for shardIdx := range after {
		if after[shardIdx] == before[shardIdx] {
			continue
		}
		if _, err := fmt.Fprintf(r.w, "ACK %d %d\n", shardIdx, after[shardIdx]); err != nil {
			return fmt.Errorf("repl: ack: %w", err)
		}
		r.mu.Lock()
		r.acked[shardIdx] = after[shardIdx]
		r.mu.Unlock()
	}
	// One offsets write per apply round, after the batch's local commit-
	// log sync inside ApplyReplicated: the file can trail durable state
	// (safe re-apply) but never lead it.
	if appliedAny {
		r.saveOffsets()
	}
	return r.w.Flush()
}

// drainShard makes one pass over shardIdx's pending queue: install the
// standalone prefix, then at most one barrier-released cross commit.
// Reports whether anything was applied.
func (r *Replica) drainShard(shardIdx int) (bool, error) {
	q := r.pending[shardIdx]
	n := 0
	for n < len(q) && !q[n].Cross() {
		n++
	}
	applied := false
	if n > 0 {
		writes := make([]map[string][]byte, n)
		for i, rec := range q[:n] {
			writes[i] = rec.Writes
		}
		if err := r.install(func() error {
			return r.store.ApplyReplicated(shardIdx, writes)
		}, n, []int{shardIdx}, []Record{q[n-1]}); err != nil {
			return false, err
		}
		q = q[n:]
		r.pending[shardIdx] = q
		applied = true
	}
	if len(q) == 0 || !r.barrierOpen(q[0]) {
		return applied, nil
	}
	// Every participant's part is in position: gather them (skipping
	// shards whose resumed watermark proves the part is already in) and
	// install the commit all-shards-at-once.
	head := q[0]
	parts := make(map[int]map[string][]byte, len(head.Shards))
	members := make([]int, 0, len(head.Shards))
	heads := make([]Record, 0, len(head.Shards))
	for _, p := range head.Shards {
		if r.epochOf(p) >= head.Epoch {
			continue
		}
		parts[p] = r.pending[p][0].Writes
		members = append(members, p)
		heads = append(heads, r.pending[p][0])
	}
	install := func() error { return r.store.ApplyReplicatedCross(parts) }
	if len(parts) == 1 {
		// Every other participant already holds its part (resumed past
		// it); what's left is an ordinary single-shard install.
		install = func() error {
			return r.store.ApplyReplicated(members[0], []map[string][]byte{parts[members[0]]})
		}
	}
	if err := r.install(install, len(members), members, heads); err != nil {
		return false, err
	}
	for _, p := range members {
		r.pending[p] = r.pending[p][1:]
	}
	return true, nil
}

// barrierOpen reports whether a cross-shard record at a queue head may
// install: every participant's part of the same epoch must be at its own
// queue head, or that shard's watermark must already cover the epoch
// (its part was applied before a resume). No deadlock hides here:
// per-shard log order matches per-shard epoch order, so a participant
// whose head is a different, older cross epoch can always make progress
// first — this shard's part of that older epoch is necessarily already
// applied.
func (r *Replica) barrierOpen(head Record) bool {
	for _, p := range head.Shards {
		if p < 0 || p >= len(r.pending) {
			return false
		}
		if r.epochOf(p) >= head.Epoch {
			continue
		}
		if len(r.pending[p]) > 0 && r.pending[p][0].Epoch == head.Epoch {
			continue
		}
		return false
	}
	return true
}

// install runs one store install (with the chaos apply-delay stall),
// observes its metrics, and advances applied/epoch bookkeeping for every
// shard whose record it covered.
func (r *Replica) install(fn func() error, nrecs int, shards []int, last []Record) error {
	if faultApplyDelay > 0 {
		time.Sleep(faultApplyDelay)
	}
	t0 := time.Now()
	if err := fn(); err != nil {
		return err
	}
	took := time.Since(t0)
	if r.met != nil {
		r.met.ApplySeconds.Observe(int64(took))
		r.met.ApplyBatch.Observe(int64(nrecs))
	}
	// One flight event per batch, stamped with its newest epoch (the
	// epoch is the cross-node join key; txn carries the batch size).
	if len(last) > 0 {
		newest := last[len(last)-1]
		r.flight.Record(flight.EvReplApply, uint64(nrecs), shards[0], newest.Epoch)
	}
	perShard := nrecs
	if len(shards) > 1 {
		perShard = 1 // a cross install lands one record on each shard
	}
	for i, shardIdx := range shards {
		rec := last[i]
		r.mu.Lock()
		r.applied[shardIdx] = rec.Index
		if rec.Epoch > r.lastEpoch[shardIdx] {
			r.lastEpoch[shardIdx] = rec.Epoch
		}
		r.mu.Unlock()
		if r.gate != nil {
			r.gate.ObserveApplied(shardIdx, rec.Index, took, perShard)
		}
	}
	return nil
}

func (r *Replica) epochOf(shard int) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastEpoch[shard]
}

func (r *Replica) appliedIdx(shard int) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied[shard]
}

// Applied returns the applied log index per shard.
func (r *Replica) Applied() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]uint64, len(r.applied))
	copy(out, r.applied)
	return out
}

// Watermarks returns the per-shard commit-epoch watermark: the newest
// wire epoch applied on each shard (seeded by snapshot bootstrap or a
// resume file). Promotion uses it to reset the new primary's log epochs
// and to raise the global epoch counter past everything replicated.
func (r *Replica) Watermarks() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]uint64, len(r.lastEpoch))
	copy(out, r.lastEpoch)
	return out
}

// Acked returns the acked log index per shard; acks trail applies, never
// lead them.
func (r *Replica) Acked() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]uint64, len(r.acked))
	copy(out, r.acked)
	return out
}

func (r *Replica) fail(err error) {
	r.mu.Lock()
	if r.err == nil && !r.closed {
		r.err = err
	}
	r.mu.Unlock()
	r.conn.Close()
}

// Err returns the stream-ending error (nil while the stream is live;
// check after Done is closed).
func (r *Replica) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Done is closed when the replication stream ends.
func (r *Replica) Done() <-chan struct{} { return r.done }

// Close tears down the stream. The local store keeps serving: a replica
// that loses its primary degrades to a frozen-but-consistent snapshot.
func (r *Replica) Close() error {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	err := r.conn.Close()
	<-r.done
	return err
}
