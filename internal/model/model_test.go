package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func baseClass() *Class {
	return &Class{
		Name: "base", NumOps: 16, WriteProb: 0.25,
		MeanOpTime: 0.015, ExecJitter: 0.2, SlackFactor: 2,
		Value: 100, PenaltyPerSlack: 1, Frequency: 1,
	}
}

func mkTxn(id TxnID, arrival, deadline sim.Time) *Txn {
	return &Txn{
		ID: id, Class: baseClass(), Arrival: arrival, Deadline: deadline,
		Ops:    []Op{{Page: 1}, {Page: 2, Write: true}},
		OpTime: 0.015,
	}
}

func TestMeanExec(t *testing.T) {
	c := baseClass()
	if got, want := c.MeanExec(), 0.24; math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanExec = %v, want %v", got, want)
	}
}

func TestValueFunction(t *testing.T) {
	tx := mkTxn(1, 0, 0.48) // relative deadline 0.48s, v=100, full loss per 0.48s
	if v := tx.Value(0); v != 100 {
		t.Fatalf("value at arrival = %v, want 100", v)
	}
	if v := tx.Value(0.48); v != 100 {
		t.Fatalf("value at deadline = %v, want 100", v)
	}
	if v := tx.Value(0.96); math.Abs(v) > 1e-9 {
		t.Fatalf("value one relative-deadline late = %v, want 0", v)
	}
	if v := tx.Value(1.44); math.Abs(v+100) > 1e-9 {
		t.Fatalf("value two relative-deadlines late = %v, want -100", v)
	}
}

func TestValueZeroGradientClass(t *testing.T) {
	tx := mkTxn(1, 0, 0.48)
	tx.Class = &Class{Value: 50, PenaltyPerSlack: 0}
	if v := tx.Value(100); v != 50 {
		t.Fatalf("non-critical transaction lost value: %v", v)
	}
}

func TestPenaltyGradientDegenerateDeadline(t *testing.T) {
	tx := mkTxn(1, 5, 5) // zero relative deadline
	if g := tx.PenaltyGradient(); g != 0 {
		t.Fatalf("gradient with zero relative deadline = %v, want 0", g)
	}
}

func TestHigherPriorityEDF(t *testing.T) {
	a := mkTxn(1, 0, 10)
	b := mkTxn(2, 0, 20)
	if !a.HigherPriority(b) || b.HigherPriority(a) {
		t.Fatal("EDF: earlier deadline must win")
	}
	// Tie on deadline: earlier arrival wins.
	c := mkTxn(3, 1, 10)
	if !a.HigherPriority(c) || c.HigherPriority(a) {
		t.Fatal("deadline tie must break by arrival")
	}
	// Full tie: lower ID wins; order must be total.
	d := mkTxn(4, 0, 10)
	if !a.HigherPriority(d) || d.HigherPriority(a) {
		t.Fatal("full tie must break by ID")
	}
	if a.HigherPriority(a) {
		t.Fatal("priority must be irreflexive")
	}
}

func TestPriorityIsTotalOrder(t *testing.T) {
	f := func(d1, d2 uint16, id1, id2 uint8) bool {
		a := mkTxn(TxnID(id1), 0, sim.Time(d1))
		b := mkTxn(TxnID(id2), 0, sim.Time(d2))
		if a.ID == b.ID && a.Deadline == b.Deadline {
			return !a.HigherPriority(b) && !b.HigherPriority(a)
		}
		return a.HigherPriority(b) != b.HigherPriority(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccessLogBasics(t *testing.T) {
	l := NewAccessLog()
	l.AddRead(5, 0, 0)
	l.AddRead(7, 2, 3)
	l.AddWrite(9, 1)
	l.AddWrite(9, 4) // duplicate write keeps first index
	if got := l.FirstReadIndex(5); got != 0 {
		t.Fatalf("FirstReadIndex(5) = %d", got)
	}
	if got := l.FirstReadIndex(99); got != -1 {
		t.Fatalf("FirstReadIndex(absent) = %d, want -1", got)
	}
	if !l.Wrote(9) || l.Wrote(5) {
		t.Fatal("write set wrong")
	}
	if !l.ReadPage(7) || l.ReadPage(9) {
		t.Fatal("read set wrong")
	}
	if got := len(l.WritePages()); got != 1 {
		t.Fatalf("WritePages len = %d, want 1 (dedup)", got)
	}
	if got := len(l.Reads()); got != 2 {
		t.Fatalf("Reads len = %d", got)
	}
}

func TestAccessLogEarlierReadWins(t *testing.T) {
	l := NewAccessLog()
	l.AddRead(5, 8, 0)
	l.AddRead(5, 3, 0)
	if got := l.FirstReadIndex(5); got != 3 {
		t.Fatalf("FirstReadIndex = %d, want earliest 3", got)
	}
}

func TestPrefix(t *testing.T) {
	l := NewAccessLog()
	l.AddRead(1, 0, 0)
	l.AddRead(2, 1, 0)
	l.AddWrite(3, 2)
	l.AddRead(4, 3, 7)
	p := l.Prefix(2)
	if !p.ReadPage(1) || !p.ReadPage(2) {
		t.Fatal("prefix dropped early reads")
	}
	if p.Wrote(3) || p.ReadPage(4) {
		t.Fatal("prefix kept accesses at or past the cut")
	}
	// Original unchanged.
	if !l.Wrote(3) {
		t.Fatal("Prefix mutated the donor log")
	}
}

func TestPrefixZero(t *testing.T) {
	l := NewAccessLog()
	l.AddRead(1, 0, 0)
	p := l.Prefix(0)
	if len(p.Reads()) != 0 || len(p.WritePages()) != 0 {
		t.Fatal("Prefix(0) must be empty")
	}
}

func TestFirstReadOfAny(t *testing.T) {
	l := NewAccessLog()
	l.AddRead(1, 4, 0)
	l.AddRead(2, 2, 0)
	l.AddRead(3, 6, 0)
	if got := l.FirstReadOfAny([]PageID{3, 2}); got != 2 {
		t.Fatalf("FirstReadOfAny = %d, want 2", got)
	}
	if got := l.FirstReadOfAny([]PageID{9, 10}); got != -1 {
		t.Fatalf("FirstReadOfAny(miss) = %d, want -1", got)
	}
	if got := l.FirstReadOfAny(nil); got != -1 {
		t.Fatalf("FirstReadOfAny(nil) = %d, want -1", got)
	}
}

// Property: Prefix(k) contains exactly the reads with OpIndex < k.
func TestPrefixProperty(t *testing.T) {
	f := func(idxs []uint8, cut uint8) bool {
		l := NewAccessLog()
		for i, raw := range idxs {
			l.AddRead(PageID(i), int(raw), 0)
		}
		p := l.Prefix(int(cut))
		want := 0
		for _, raw := range idxs {
			if int(raw) < int(cut) {
				want++
			}
		}
		return len(p.Reads()) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	if s := (Op{Page: 3}).String(); s != "R3" {
		t.Fatalf("read op String = %q", s)
	}
	if s := (Op{Page: 4, Write: true}).String(); s != "W4" {
		t.Fatalf("write op String = %q", s)
	}
}

func TestExecTime(t *testing.T) {
	tx := mkTxn(1, 0, 1)
	if got := tx.ExecTime(); math.Abs(got-0.03) > 1e-12 {
		t.Fatalf("ExecTime = %v, want 0.03", got)
	}
	if got := tx.EstExecTime(); math.Abs(got-0.24) > 1e-12 {
		t.Fatalf("EstExecTime = %v, want class mean 0.24", got)
	}
}
