// Package model defines the transaction model shared by every concurrency
// control protocol in this repository: page-level operations, transaction
// classes with real-time attributes, and the read/write set bookkeeping the
// paper's SCC rules are defined over.
package model

import (
	"fmt"

	"repro/internal/sim"
)

// PageID identifies a page of the simulated database.
type PageID int

// TxnID identifies a logical transaction. Restarts and shadow promotions
// preserve the TxnID; only the executing shadow changes.
type TxnID int

// Op is a single page access. The paper's model is deferred-update: reads
// observe the last committed version, writes go to a private workspace and
// are installed at commit.
type Op struct {
	Page  PageID
	Write bool
}

func (o Op) String() string {
	if o.Write {
		return fmt.Sprintf("W%d", o.Page)
	}
	return fmt.Sprintf("R%d", o.Page)
}

// Class groups transactions with the same run-time characteristics
// (Sec. 3.2 "we classify transactions in different classes according to
// their run-time characteristics").
type Class struct {
	Name string

	// NumOps is the number of page accesses (baseline: 16).
	NumOps int
	// WriteProb is the probability an access is a write (baseline: 0.25).
	WriteProb float64
	// MeanOpTime is the average service time of one access in seconds
	// (CPU + disk under infinite resources).
	MeanOpTime float64
	// ExecJitter is the relative stddev of a transaction's private
	// execution-rate factor, drawn once at arrival. It makes actual
	// execution times differ from the class mean, which is what gives the
	// finish-probability machinery of SCC-DC something to predict.
	ExecJitter float64
	// SlackFactor sets the deadline: D = A + SlackFactor * MeanExec
	// (baseline: 2).
	SlackFactor float64

	// Value is v_u of Def. 2: the value added if the transaction commits
	// by its deadline.
	Value float64
	// PenaltyPerSlack is the penalty gradient (tan alpha of Def. 1)
	// expressed per relative-deadline unit: the absolute gradient for a
	// transaction is PenaltyPerSlack * Value / (D - A) per second, so a
	// transaction with PenaltyPerSlack = 1 loses its entire value one
	// relative deadline past D. This keeps "45 degrees" meaningful across
	// classes with different execution lengths.
	PenaltyPerSlack float64

	// Frequency is the fraction of the arrival stream from this class.
	Frequency float64

	// ValueFamily optionally selects a post-deadline value shape beyond
	// the Def. 2 linear decline, in the wire codec's vf= syntax: "" or
	// "linear" (default), "cliff", "step:<frac>", "renew:<n>". The
	// simulator's protocols ignore it — Value/PenaltyGradient stay the
	// linear model — but live-server drivers (internal/scenario,
	// cmd/sccload) forward it on the wire, where internal/server/opts
	// validates it.
	ValueFamily string
}

// MeanExec returns the class's average total execution time E_Cu.
func (c *Class) MeanExec() float64 {
	return float64(c.NumOps) * c.MeanOpTime
}

// Txn is one logical transaction instance.
type Txn struct {
	ID      TxnID
	Class   *Class
	Arrival sim.Time
	// Deadline is the soft deadline D_u. Late transactions still run to
	// completion; they just accrue tardiness and value penalties.
	Deadline sim.Time
	// Ops is the fixed access list. A restart re-executes the same list.
	Ops []Op
	// OpTime is this transaction's actual per-op service time (the class
	// mean scaled by a private jitter factor). The scheduler does not see
	// it; value-cognizant protocols work from class statistics.
	OpTime float64
}

// ExecTime returns the actual total service demand of the transaction.
func (t *Txn) ExecTime() float64 { return float64(len(t.Ops)) * t.OpTime }

// EstExecTime returns the class-mean execution time, the estimate
// available to deadline assignment and to SCC-DC/VW.
func (t *Txn) EstExecTime() float64 { return t.Class.MeanExec() }

// RelDeadline returns D - A, the relative deadline.
func (t *Txn) RelDeadline() float64 { return float64(t.Deadline - t.Arrival) }

// PenaltyGradient returns the absolute penalty gradient tan(alpha_u) in
// value per second (Def. 1), derived from the class parameters.
func (t *Txn) PenaltyGradient() float64 {
	rd := t.RelDeadline()
	if rd <= 0 {
		return 0
	}
	return t.Class.PenaltyPerSlack * t.Class.Value / rd
}

// Value returns V_u(t) per Def. 2: the full value up to the deadline, then
// a linear decline at the penalty gradient (it may go negative).
func (t *Txn) Value(at sim.Time) float64 {
	if at <= t.Deadline {
		return t.Class.Value
	}
	return t.Class.Value - float64(at-t.Deadline)*t.PenaltyGradient()
}

// HigherPriority reports whether t has strictly higher EDF priority than o
// (earlier deadline; ties broken by earlier arrival, then lower ID, so the
// order is total and deterministic).
func (t *Txn) HigherPriority(o *Txn) bool {
	if t.Deadline != o.Deadline {
		return t.Deadline < o.Deadline
	}
	if t.Arrival != o.Arrival {
		return t.Arrival < o.Arrival
	}
	return t.ID < o.ID
}

// ReadObs records one executed read: which page, at which op index, and
// which committed version was observed (the TxnID of the last committed
// writer, 0 for the initial version). The version is what the
// serializability guard checks at commit time.
type ReadObs struct {
	Page    PageID
	OpIndex int
	Version TxnID
}

// AccessLog is the executed-prefix bookkeeping of one shadow: the paper's
// ReadSet(T_i_r) with read order, plus WriteSet(T_i_r).
type AccessLog struct {
	reads      []ReadObs
	firstRead  map[PageID]int // page -> earliest op index read
	writes     map[PageID]int // page -> earliest op index written
	writeOrder []PageID
}

// NewAccessLog returns an empty log.
func NewAccessLog() *AccessLog {
	return &AccessLog{
		firstRead: make(map[PageID]int),
		writes:    make(map[PageID]int),
	}
}

// AddRead records a read observation.
func (l *AccessLog) AddRead(p PageID, opIdx int, ver TxnID) {
	l.reads = append(l.reads, ReadObs{Page: p, OpIndex: opIdx, Version: ver})
	if old, ok := l.firstRead[p]; !ok || opIdx < old {
		l.firstRead[p] = opIdx
	}
}

// AddWrite records a write.
func (l *AccessLog) AddWrite(p PageID, opIdx int) {
	if _, ok := l.writes[p]; !ok {
		l.writes[p] = opIdx
		l.writeOrder = append(l.writeOrder, p)
	}
}

// Reads returns the read observations in execution order.
func (l *AccessLog) Reads() []ReadObs { return l.reads }

// FirstReadIndex returns the earliest op index at which page p was read,
// or -1 if it was not read.
func (l *AccessLog) FirstReadIndex(p PageID) int {
	if i, ok := l.firstRead[p]; ok {
		return i
	}
	return -1
}

// Wrote reports whether page p is in the write set.
func (l *AccessLog) Wrote(p PageID) bool {
	_, ok := l.writes[p]
	return ok
}

// WritePages returns the write set in first-write order.
func (l *AccessLog) WritePages() []PageID { return l.writeOrder }

// ReadPages reports whether page p is in the read set.
func (l *AccessLog) ReadPage(p PageID) bool {
	_, ok := l.firstRead[p]
	return ok
}

// Prefix returns a copy of the log truncated to ops with index < upto.
// This is the fork operation of the paper's Read/Write rules: a new shadow
// inherits exactly the donor's accesses before the block point.
func (l *AccessLog) Prefix(upto int) *AccessLog {
	n := NewAccessLog()
	for _, r := range l.reads {
		if r.OpIndex < upto {
			n.AddRead(r.Page, r.OpIndex, r.Version)
		}
	}
	for _, p := range l.writeOrder {
		if idx := l.writes[p]; idx < upto {
			n.AddWrite(p, idx)
		}
	}
	return n
}

// FirstReadOfAny returns the earliest op index at which the log read any of
// the given pages, or -1 if none was read. This is the block-point /
// validity computation used by the Commit Rule: a shadow is invalidated by
// the commit of T_u iff it read a page in WriteSet(T_u).
func (l *AccessLog) FirstReadOfAny(pages []PageID) int {
	best := -1
	for _, p := range pages {
		if i, ok := l.firstRead[p]; ok && (best == -1 || i < best) {
			best = i
		}
	}
	return best
}
