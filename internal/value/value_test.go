package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFnShape(t *testing.T) {
	f := Fn{V: 100, Deadline: 10, Gradient: 5}
	if got := f.At(0); got != 100 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := f.At(10); got != 100 {
		t.Fatalf("At(deadline) = %v", got)
	}
	if got := f.At(12); got != 90 {
		t.Fatalf("At(deadline+2) = %v, want 90", got)
	}
	if got := f.At(40); got != -50 {
		t.Fatalf("value must go negative: %v", got)
	}
}

func TestShapedFamilies(t *testing.T) {
	cliff := Fn{V: 100, Deadline: 10, Shape: ShapeCliff}
	if cliff.At(10) != 100 || cliff.At(10.001) != 0 {
		t.Fatalf("cliff: At(10)=%v At(10.001)=%v", cliff.At(10), cliff.At(10.001))
	}
	if got := cliff.ZeroCrossing(); got != 10 {
		t.Fatalf("cliff ZeroCrossing = %v, want 10", got)
	}

	step := Fn{V: 100, Deadline: 10, Shape: ShapeStep, Window: 5, StepFrac: 0.4}
	if step.At(9) != 100 || step.At(12) != 40 || step.At(16) != 0 {
		t.Fatalf("step: At(9)=%v At(12)=%v At(16)=%v", step.At(9), step.At(12), step.At(16))
	}
	if got := step.ZeroCrossing(); got != 15 {
		t.Fatalf("step ZeroCrossing = %v, want 15", got)
	}
	// A zero-fraction step degenerates to a cliff.
	zstep := Fn{V: 100, Deadline: 10, Shape: ShapeStep, Window: 5, StepFrac: 0}
	if got := zstep.ZeroCrossing(); got != 10 {
		t.Fatalf("zero-frac step ZeroCrossing = %v, want 10", got)
	}

	ren := Fn{V: 100, Deadline: 10, Shape: ShapeRenewal, Window: 2, Renewals: 3}
	for _, c := range []struct{ t, want float64 }{
		{9, 100}, {10, 100}, {11, 50}, {12.5, 25}, {14.5, 12.5}, {16.5, 0}, {100, 0},
	} {
		if got := ren.At(c.t); got != c.want {
			t.Fatalf("renewal At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if got := ren.ZeroCrossing(); got != 16 {
		t.Fatalf("renewal ZeroCrossing = %v, want 16", got)
	}
}

// Property: every shape is monotone non-increasing past the deadline and
// non-positive from its zero-crossing onward.
func TestShapedFamiliesMonotone(t *testing.T) {
	fns := []Fn{
		{V: 7, Deadline: 1, Gradient: 3},
		{V: 7, Deadline: 1, Shape: ShapeCliff},
		{V: 7, Deadline: 1, Shape: ShapeStep, Window: 0.5, StepFrac: 0.9},
		{V: 7, Deadline: 1, Shape: ShapeRenewal, Window: 0.25, Renewals: 8},
	}
	for i, f := range fns {
		prev := math.Inf(1)
		for x := 1.0; x < 5; x += 0.01 {
			v := f.At(x)
			if v > prev+1e-12 {
				t.Fatalf("fn %d increases at t=%v: %v > %v", i, x, v, prev)
			}
			prev = v
		}
		zc := f.ZeroCrossing()
		if math.IsInf(zc, 1) {
			continue
		}
		for _, dt := range []float64{1e-9, 0.1, 10} {
			if v := f.At(zc + dt); v > 0 {
				t.Fatalf("fn %d still worth %v past its zero-crossing %v", i, v, zc)
			}
		}
	}
}

func TestZeroCrossing(t *testing.T) {
	f := Fn{V: 100, Deadline: 10, Gradient: 5}
	if got := f.ZeroCrossing(); got != 30 {
		t.Fatalf("ZeroCrossing = %v, want 30", got)
	}
	nc := Fn{V: 100, Deadline: 10, Gradient: 0}
	if !math.IsInf(nc.ZeroCrossing(), 1) {
		t.Fatal("non-critical transaction must never cross zero")
	}
}

func TestSurvivalMonotone(t *testing.T) {
	d := ExecDist{Mean: 0.24, Sigma: 0.05, Min: 0.1}
	prev := 1.0
	for x := 0.0; x < 1.0; x += 0.01 {
		s := d.Survival(x)
		if s < 0 || s > 1 {
			t.Fatalf("Survival(%v) = %v out of [0,1]", x, s)
		}
		if s > prev+1e-12 {
			t.Fatalf("Survival not monotone at %v: %v > %v", x, s, prev)
		}
		prev = s
	}
	if d.Survival(0) != 1 {
		t.Fatal("Survival below Min must be 1")
	}
}

func TestSurvivalDegenerate(t *testing.T) {
	d := ExecDist{Mean: 0.5, Sigma: 0, Min: 0.1}
	if d.Survival(0.4) != 1 || d.Survival(0.6) != 0 {
		t.Fatal("deterministic distribution survival wrong")
	}
}

func TestFinishByBasics(t *testing.T) {
	d := ExecDist{Mean: 0.24, Sigma: 0.05, Min: 0.05}
	if got := d.FinishBy(0.1, -1); got != 0 {
		t.Fatalf("FinishBy negative dt = %v, want 0", got)
	}
	if got := d.FinishBy(0.1, 0); got != 0 {
		t.Fatalf("FinishBy zero dt = %v, want 0", got)
	}
	// Conditional probability approaches 1 far in the future.
	if got := d.FinishBy(0.1, 10); math.Abs(got-1) > 1e-9 {
		t.Fatalf("FinishBy long dt = %v, want ~1", got)
	}
	// Conditioning: having survived past the mean raises the chance of
	// finishing in the next instant relative to a fresh transaction? Not
	// necessarily for a normal; but the value must stay a probability.
	for tau := 0.0; tau < 0.6; tau += 0.05 {
		for dt := 0.0; dt < 0.6; dt += 0.05 {
			p := d.FinishBy(tau, dt)
			if p < -1e-12 || p > 1+1e-12 {
				t.Fatalf("FinishBy(%v,%v) = %v not a probability", tau, dt, p)
			}
		}
	}
}

func TestFinishByOutlived(t *testing.T) {
	d := ExecDist{Mean: 0.24, Sigma: 0.01, Min: 0.05}
	// tau far beyond the distribution: survival ~ 0, must return 1.
	if got := d.FinishBy(5, 0.001); got != 1 {
		t.Fatalf("outlived FinishBy = %v, want 1", got)
	}
}

// Property: FinishBy is nondecreasing in dt for fixed tau.
func TestFinishByMonotoneInDt(t *testing.T) {
	d := ExecDist{Mean: 0.24, Sigma: 0.06, Min: 0.02}
	f := func(tauRaw, aRaw, bRaw uint16) bool {
		tau := float64(tauRaw) / 65535 * 0.5
		a := float64(aRaw) / 65535 * 0.5
		b := float64(bRaw) / 65535 * 0.5
		if a > b {
			a, b = b, a
		}
		return d.FinishBy(tau, a) <= d.FinishBy(tau, b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTailHorizon(t *testing.T) {
	d := ExecDist{Mean: 0.24, Sigma: 0.05, Min: 0.05}
	h := d.TailHorizon(0.01)
	if s := d.Survival(h); s > 0.0101 {
		t.Fatalf("Survival at horizon = %v, want <= eps", s)
	}
	if h < d.Mean {
		t.Fatalf("horizon %v below mean %v", h, d.Mean)
	}
	det := ExecDist{Mean: 0.3, Sigma: 0, Min: 0.1}
	if got := det.TailHorizon(0.01); got != 0.3 {
		t.Fatalf("deterministic horizon = %v, want mean", got)
	}
}

func TestExpectedFinish(t *testing.T) {
	d := ExecDist{Mean: 0.24, Sigma: 0.05, Min: 0.05}
	shadows := []ShadowState{
		{Finished: true, Adoption: 0.6},
		{Executed: 0.1, Adoption: 0.4},
	}
	ef0 := ExpectedFinish(d, shadows, 0)
	if math.Abs(ef0-0.6) > 1e-12 {
		t.Fatalf("EF(0) = %v, want finished shadow's adoption 0.6", ef0)
	}
	efBig := ExpectedFinish(d, shadows, 100)
	if math.Abs(efBig-1.0) > 1e-9 {
		t.Fatalf("EF(inf) = %v, want ~1", efBig)
	}
	// Monotone in dt.
	prev := 0.0
	for dt := 0.0; dt < 1; dt += 0.02 {
		ef := ExpectedFinish(d, shadows, dt)
		if ef < prev-1e-12 {
			t.Fatalf("EF not monotone at dt=%v", dt)
		}
		prev = ef
	}
}

func TestExpectedFinishClamped(t *testing.T) {
	d := ExecDist{Mean: 0.1, Sigma: 0.01, Min: 0.01}
	// Over-full adoption mass (callers may pass slightly >1 totals from
	// fixed-point iteration); EF must clamp at 1.
	shadows := []ShadowState{
		{Finished: true, Adoption: 0.7},
		{Finished: true, Adoption: 0.7},
	}
	if got := ExpectedFinish(d, shadows, 1); got != 1 {
		t.Fatalf("EF = %v, want clamped 1", got)
	}
}

func TestExpectedValue(t *testing.T) {
	d := ExecDist{Mean: 0.2, Sigma: 0.02, Min: 0.05}
	f := Fn{V: 100, Deadline: 1, Gradient: 50}
	shadows := []ShadowState{{Finished: true, Adoption: 1}}
	if got := ExpectedValue(f, d, shadows, 0, 0.5); got != 100 {
		t.Fatalf("EV before deadline = %v, want 100", got)
	}
	if got := ExpectedValue(f, d, shadows, 0, 2); got != 50 {
		t.Fatalf("EV past deadline = %v, want 50", got)
	}
}

func TestAdoptionNoConflicts(t *testing.T) {
	pOpt, pSpec := Adoption(100, nil, nil)
	if pOpt != 1 || len(pSpec) != 0 {
		t.Fatalf("no conflicts: pOpt = %v, want 1", pOpt)
	}
}

func TestAdoptionFormula(t *testing.T) {
	// V_u = 100, conflicts with values 100 and 50, both with P_o = 1.
	pOpt, pSpec := Adoption(100, []float64{100, 50}, []float64{1, 1})
	if math.Abs(pOpt-100.0/250.0) > 1e-12 {
		t.Fatalf("pOpt = %v, want 0.4", pOpt)
	}
	if math.Abs(pSpec[0]-0.4) > 1e-12 || math.Abs(pSpec[1]-0.2) > 1e-12 {
		t.Fatalf("pSpec = %v, want [0.4 0.2]", pSpec)
	}
	sum := pOpt
	for _, p := range pSpec {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("adoption probabilities sum to %v, want 1", sum)
	}
}

func TestAdoptionNegativeValuesClamped(t *testing.T) {
	pOpt, pSpec := Adoption(-50, []float64{-10, 100}, []float64{1, 1})
	if pOpt < 0 || pOpt > 1 {
		t.Fatalf("pOpt = %v not a probability", pOpt)
	}
	for _, p := range pSpec {
		if p < 0 || p > 1 {
			t.Fatalf("pSpec = %v not probabilities", pSpec)
		}
	}
	// The only positive-value participant should dominate.
	if pSpec[1] < 0.99 {
		t.Fatalf("positive-value conflict should dominate: %v", pSpec)
	}
}

// Property: adoption probabilities are in [0,1] and sum to <= 1 + eps for
// arbitrary non-negative inputs.
func TestAdoptionProperty(t *testing.T) {
	f := func(vuRaw uint16, vcRaw, pcRaw []uint16) bool {
		n := len(vcRaw)
		if len(pcRaw) < n {
			n = len(pcRaw)
		}
		vu := float64(vuRaw)
		vc := make([]float64, n)
		pc := make([]float64, n)
		for i := 0; i < n; i++ {
			vc[i] = float64(vcRaw[i])
			pc[i] = float64(pcRaw[i]) / 65535
		}
		pOpt, pSpec := Adoption(vu, vc, pc)
		sum := pOpt
		if pOpt < 0 || pOpt > 1 {
			return false
		}
		for _, p := range pSpec {
			if p < 0 || p > 1 {
				return false
			}
			sum += p
		}
		return sum <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
