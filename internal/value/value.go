// Package value implements the value-cognizant machinery of Sec. 3 of the
// paper: value functions with penalty gradients (Defs. 1-2), per-class
// execution-time distributions and finish probabilities (Defs. 3-4), and
// the expected-finish / expected-value functions (Defs. 6-7) that SCC-DC's
// Termination Rule evaluates.
package value

import (
	"math"

	"repro/internal/dist"
)

// Shape selects a value function's post-deadline behavior. The zero
// value is the paper's Def. 2 linear decline; the other shapes are the
// soft-deadline families of the scenario matrix. Every shape is constant
// V before the deadline and monotone non-increasing after it — the
// invariant the wire codec (internal/server/opts) enforces, and what
// keeps ZeroCrossing meaningful as a shed horizon.
type Shape int

const (
	// ShapeLinear declines at Gradient per second past the deadline
	// (Def. 2; may go negative, like model.Txn.Value).
	ShapeLinear Shape = iota
	// ShapeCliff drops to zero immediately past the deadline (a hard
	// firm-deadline transaction: late work is worthless).
	ShapeCliff
	// ShapeStep retains V*StepFrac for one Window past the deadline,
	// then drops to zero (a grace period at reduced worth).
	ShapeStep
	// ShapeRenewal halves the value each Window past the deadline —
	// window k is worth V/2^(k+1) — for Renewals windows, then zero
	// (a deadline-renewal chain of ever-cheaper extensions).
	ShapeRenewal
)

// Fn is a Def. 2 value function: constant value v until the deadline,
// then a shape-dependent decline (linear at the penalty gradient by
// default).
type Fn struct {
	V        float64 // value when committed on time
	Deadline float64 // absolute soft deadline
	Gradient float64 // ShapeLinear: value lost per second past the deadline
	Shape    Shape
	Window   float64 // ShapeStep/ShapeRenewal: post-deadline window width, seconds
	StepFrac float64 // ShapeStep: fraction of V retained during the window
	Renewals int     // ShapeRenewal: number of half-value windows
}

// At returns V(t).
func (f Fn) At(t float64) float64 {
	if t <= f.Deadline {
		return f.V
	}
	switch f.Shape {
	case ShapeCliff:
		return 0
	case ShapeStep:
		if f.Window > 0 && t <= f.Deadline+f.Window {
			return f.V * f.StepFrac
		}
		return 0
	case ShapeRenewal:
		if f.Window <= 0 {
			return 0
		}
		k := int((t - f.Deadline) / f.Window)
		if k < f.Renewals {
			return f.V * math.Pow(0.5, float64(k+1))
		}
		return 0
	}
	return f.V - (t-f.Deadline)*f.Gradient
}

// ZeroCrossing returns the earliest time from which the function stays
// <= 0 (where late work stops being worth scheduling), or +Inf for a
// non-critical function that never reaches zero.
func (f Fn) ZeroCrossing() float64 {
	switch f.Shape {
	case ShapeCliff:
		return f.Deadline
	case ShapeStep:
		if f.Window <= 0 || f.StepFrac <= 0 {
			return f.Deadline
		}
		return f.Deadline + f.Window
	case ShapeRenewal:
		if f.Window <= 0 {
			return f.Deadline
		}
		return f.Deadline + float64(f.Renewals)*f.Window
	}
	if f.Gradient <= 0 {
		return math.Inf(1)
	}
	return f.Deadline + f.V/f.Gradient
}

// ExecDist is the per-class execution-time distribution behind the paper's
// finish probability density F_u(x) = P[execution time > x] (Def. 3).
//
// We model total execution time as a normal truncated below at Min (a
// transaction cannot finish faster than its access list allows). Mean and
// Sigma come from class statistics "obtained off-line from the previous
// history of the system" (Sec. 3.2).
type ExecDist struct {
	Mean  float64
	Sigma float64
	Min   float64
}

// Survival returns F_u(x) = P[exec > x], the paper's finish probability
// density function, with the truncation renormalized.
func (d ExecDist) Survival(x float64) float64 {
	if x <= d.Min {
		return 1
	}
	if d.Sigma <= 0 {
		if x < d.Mean {
			return 1
		}
		return 0
	}
	denom := dist.NormalSurvival(d.Min, d.Mean, d.Sigma)
	if denom <= 0 {
		return 0
	}
	s := dist.NormalSurvival(x, d.Mean, d.Sigma) / denom
	if s > 1 {
		return 1
	}
	return s
}

// FinishBy returns the Def. 4 shadow finish probability: the probability
// that a shadow which has already executed for tau time units finishes
// within the next dt units,
//
//	P[E <= tau+dt | E > tau] = (F(tau) - F(tau+dt)) / F(tau).
//
// dt < 0 returns 0 (cannot have finished in the past).
func (d ExecDist) FinishBy(tau, dt float64) float64 {
	if dt < 0 {
		return 0
	}
	ft := d.Survival(tau)
	if ft <= 0 {
		// The shadow has outlived the modeled distribution; treat the
		// remaining time as memoryless-at-zero: it finishes immediately.
		return 1
	}
	return (ft - d.Survival(tau+dt)) / ft
}

// TailHorizon returns the smallest x (in execution-time units) with
// Survival(x) <= eps. SCC-DC uses it to bound the infinite V_now/V_later
// summations: past this horizon a transaction has finished with
// probability >= 1-eps (the paper's l_i bound).
func (d ExecDist) TailHorizon(eps float64) float64 {
	if d.Sigma <= 0 {
		return math.Max(d.Mean, d.Min)
	}
	// Survival is monotone decreasing; bisect on [Min, Mean+10*Sigma].
	lo, hi := d.Min, d.Mean+10*d.Sigma
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		if d.Survival(mid) > eps {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// ShadowState describes one shadow of a transaction for the expected-
// finish computation: how long it has executed and its adoption
// probability P_i_u(t) (Def. 5).
type ShadowState struct {
	Executed float64 // tau: accumulated execution time
	Adoption float64 // P_i_u(t)
	Finished bool    // a finished shadow contributes F=1 for any dt >= 0
}

// ExpectedFinish returns EF_u(now+dt) per Def. 6: the probability that
// some shadow of the transaction finishes within dt, as the adoption-
// weighted sum of per-shadow finish probabilities. Speculative shadows are
// assumed to resume immediately (paper footnote 6).
func ExpectedFinish(d ExecDist, shadows []ShadowState, dt float64) float64 {
	ef := 0.0
	for _, s := range shadows {
		if s.Finished {
			if dt >= 0 {
				ef += s.Adoption
			}
			continue
		}
		ef += s.Adoption * d.FinishBy(s.Executed, dt)
	}
	if ef > 1 {
		return 1
	}
	return ef
}

// ExpectedValue returns EV_u(x) = V_u(x) * EF_u(x) per Def. 7, where x is
// now+dt.
func ExpectedValue(f Fn, d ExecDist, shadows []ShadowState, now, dt float64) float64 {
	return f.At(now+dt) * ExpectedFinish(d, shadows, dt)
}

// Adoption computes the Def. 5 shadow adoption probabilities for a
// transaction u that conflicts with transactions r_1..r_m.
//
// vU is V_u(t); vConf[i] is V_{r_i}(t); pConf[i] is P_o_{r_i}(t), the
// adoption probability of each conflicting transaction's own optimistic
// shadow. It returns P_o_u(t) and P_i_u(t) for each conflict, which sum
// (with P_o_u) to at most 1.
//
// Negative values (transactions deep past their deadline) are clamped to a
// small positive floor first: the formula is a relative-worth weighting
// and breaks down with negative or all-zero weights.
func Adoption(vU float64, vConf, pConf []float64) (pOpt float64, pSpec []float64) {
	const floor = 1e-9
	clamp := func(v float64) float64 {
		if v < floor {
			return floor
		}
		return v
	}
	vU = clamp(vU)
	denom := vU
	for i := range vConf {
		denom += clamp(vConf[i]) * pConf[i]
	}
	pOpt = vU / denom
	pSpec = make([]float64, len(vConf))
	for i := range vConf {
		pSpec[i] = clamp(vConf[i]) * pConf[i] / denom
	}
	return pOpt, pSpec
}
