// Package workload generates the transaction streams of the paper's
// evaluation (Sec. 4): Poisson arrivals over a 1000-page database, 16
// uniformly chosen page accesses per transaction, 25% update probability,
// deadlines at slack factor 2, plus the one-class and two-class value
// configurations of Figs. 14-15.
package workload

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/model"
	"repro/internal/sim"
)

// Config describes a workload.
type Config struct {
	DBPages     int
	ArrivalRate float64 // transactions per second (Poisson)
	Classes     []model.Class
	Seed        int64
}

// Baseline returns the Sec. 4 baseline model: one class, 1000 pages, 16
// accesses of 15 ms each (E = 240 ms), 25% writes, slack factor 2. Value
// parameters follow Fig. 14(a): constant value before the deadline
// declining at "45 degrees" after, expressed as full value lost one
// relative deadline past D.
func Baseline(rate float64, seed int64) Config {
	return Config{
		DBPages:     1000,
		ArrivalRate: rate,
		Seed:        seed,
		Classes: []model.Class{{
			Name:            "base",
			NumOps:          16,
			WriteProb:       0.25,
			MeanOpTime:      0.015,
			ExecJitter:      0.2,
			SlackFactor:     2,
			Value:           100,
			PenaltyPerSlack: 1,
			Frequency:       1,
		}},
	}
}

// TwoClass returns the Fig. 14(b) mix: 10% of transactions are long,
// tight-deadline, high-value with steep penalty gradients; 90% are short,
// low-value with shallow gradients. Values are chosen so the
// frequency-weighted average value equals the one-class configuration
// (0.1*550 + 0.9*50 = 100).
func TwoClass(rate float64, seed int64) Config {
	return Config{
		DBPages:     1000,
		ArrivalRate: rate,
		Seed:        seed,
		Classes: []model.Class{
			{
				Name:            "critical",
				NumOps:          24, // long execution times
				WriteProb:       0.25,
				MeanOpTime:      0.015,
				ExecJitter:      0.2,
				SlackFactor:     1.5, // tight deadlines
				Value:           550, // high value-added
				PenaltyPerSlack: 2,   // large penalty gradient
				Frequency:       0.1,
			},
			{
				Name:            "routine",
				NumOps:          12, // short execution times
				WriteProb:       0.25,
				MeanOpTime:      0.015,
				ExecJitter:      0.2,
				SlackFactor:     2,
				Value:           50,  // lower value-added
				PenaltyPerSlack: 0.5, // smaller penalty gradient
				Frequency:       0.9,
			},
		},
	}
}

// Validate checks structural soundness of the configuration.
func (c Config) Validate() error {
	if c.DBPages <= 0 {
		return fmt.Errorf("workload: DBPages = %d", c.DBPages)
	}
	if c.ArrivalRate <= 0 {
		return fmt.Errorf("workload: ArrivalRate = %v", c.ArrivalRate)
	}
	if len(c.Classes) == 0 {
		return fmt.Errorf("workload: no classes")
	}
	total := 0.0
	for i := range c.Classes {
		cl := &c.Classes[i]
		if cl.NumOps <= 0 || cl.NumOps > c.DBPages {
			return fmt.Errorf("workload: class %q NumOps = %d with %d pages", cl.Name, cl.NumOps, c.DBPages)
		}
		if cl.MeanOpTime <= 0 {
			return fmt.Errorf("workload: class %q MeanOpTime = %v", cl.Name, cl.MeanOpTime)
		}
		if cl.SlackFactor <= 0 {
			return fmt.Errorf("workload: class %q SlackFactor = %v", cl.Name, cl.SlackFactor)
		}
		if cl.WriteProb < 0 || cl.WriteProb > 1 {
			return fmt.Errorf("workload: class %q WriteProb = %v", cl.Name, cl.WriteProb)
		}
		total += cl.Frequency
	}
	if total <= 0 {
		return fmt.Errorf("workload: class frequencies sum to %v", total)
	}
	return nil
}

// Generator produces a deterministic stream of transactions.
type Generator struct {
	cfg     Config
	rng     *dist.RNG
	next    sim.Time
	nextID  model.TxnID
	cumFreq []float64
}

// NewGenerator builds a generator; it panics on an invalid configuration
// (configurations are author-written, not user input).
func NewGenerator(cfg Config) *Generator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{cfg: cfg, rng: dist.NewRNG(cfg.Seed), nextID: 1}
	total := 0.0
	for _, cl := range cfg.Classes {
		total += cl.Frequency
	}
	cum := 0.0
	for _, cl := range cfg.Classes {
		cum += cl.Frequency / total
		g.cumFreq = append(g.cumFreq, cum)
	}
	return g
}

// pickClass selects a class index according to the frequency mix.
func (g *Generator) pickClass() int {
	u := g.rng.Float64()
	for i, c := range g.cumFreq {
		if u < c {
			return i
		}
	}
	return len(g.cumFreq) - 1
}

// Next returns the next transaction in arrival order. Arrival gaps are
// exponential with mean 1/rate; pages are chosen uniformly without
// replacement; each access is a write with the class's WriteProb; the
// actual per-op time is the class mean scaled by a truncated-normal jitter
// factor (the scheduler only ever sees the class mean).
func (g *Generator) Next() *model.Txn {
	g.next += sim.Time(g.rng.Exp(1 / g.cfg.ArrivalRate))
	cl := &g.cfg.Classes[g.pickClass()]

	pages := g.rng.SampleWithoutReplacement(g.cfg.DBPages, cl.NumOps)
	ops := make([]model.Op, cl.NumOps)
	for i, p := range pages {
		ops[i] = model.Op{Page: model.PageID(p), Write: g.rng.Float64() < cl.WriteProb}
	}

	jitter := 1.0
	if cl.ExecJitter > 0 {
		jitter = g.rng.TruncNormal(1, cl.ExecJitter, 0.4, 1.6)
	}

	t := &model.Txn{
		ID:      g.nextID,
		Class:   cl,
		Arrival: g.next,
		Ops:     ops,
		OpTime:  cl.MeanOpTime * jitter,
	}
	// Deadline from the class-mean estimate, not the actual draw: the
	// system does not know the true execution time in advance.
	t.Deadline = t.Arrival + sim.Time(cl.SlackFactor*cl.MeanExec())
	g.nextID++
	return t
}
