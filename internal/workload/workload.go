// Package workload generates the transaction streams of the paper's
// evaluation (Sec. 4): Poisson arrivals over a 1000-page database, 16
// uniformly chosen page accesses per transaction, 25% update probability,
// deadlines at slack factor 2, plus the one-class and two-class value
// configurations of Figs. 14-15.
package workload

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/model"
	"repro/internal/sim"
)

// Config describes a workload.
type Config struct {
	DBPages     int
	ArrivalRate float64 // transactions per second (Poisson)
	Classes     []model.Class
	Seed        int64

	// Keys selects how page accesses spread over the keyspace; the zero
	// value is the paper's uniform choice.
	Keys KeyDist
	// Think describes client think time between a session's operations;
	// the zero value is no think time. The simulator ignores it — it is
	// consumed by live-server session drivers via NextThink.
	Think ThinkTime
}

// Key-distribution kinds for KeyDist.Kind.
const (
	KeyUniform = "uniform"
	KeyZipf    = "zipf"
	KeyHot     = "hot"
)

// KeyDist selects the access skew over the DBPages keyspace.
type KeyDist struct {
	// Kind is "" or KeyUniform (uniform without replacement), KeyZipf
	// (Zipfian ranks, page 0 hottest), or KeyHot (a fixed hot set
	// absorbing a fixed fraction of accesses).
	Kind string
	// Theta is the Zipfian skew in [0, 1) (KeyZipf only; YCSB's default
	// contention setting is 0.99).
	Theta float64
	// HotKeys and HotFrac configure KeyHot: HotFrac of accesses land
	// uniformly in pages {0..HotKeys-1}, the rest uniformly in the cold
	// remainder.
	HotKeys int
	HotFrac float64
}

// Think-time kinds for ThinkTime.Kind.
const (
	ThinkNone  = "none"
	ThinkFixed = "fixed"
	ThinkExp   = "exp"
)

// ThinkTime describes the pause an interactive session takes between
// operations: none, a fixed Mean, or exponential with the given Mean
// (an open "user" keying in the next request).
type ThinkTime struct {
	Kind string
	Mean float64 // seconds
}

// Baseline returns the Sec. 4 baseline model: one class, 1000 pages, 16
// accesses of 15 ms each (E = 240 ms), 25% writes, slack factor 2. Value
// parameters follow Fig. 14(a): constant value before the deadline
// declining at "45 degrees" after, expressed as full value lost one
// relative deadline past D.
func Baseline(rate float64, seed int64) Config {
	return Config{
		DBPages:     1000,
		ArrivalRate: rate,
		Seed:        seed,
		Classes: []model.Class{{
			Name:            "base",
			NumOps:          16,
			WriteProb:       0.25,
			MeanOpTime:      0.015,
			ExecJitter:      0.2,
			SlackFactor:     2,
			Value:           100,
			PenaltyPerSlack: 1,
			Frequency:       1,
		}},
	}
}

// TwoClass returns the Fig. 14(b) mix: 10% of transactions are long,
// tight-deadline, high-value with steep penalty gradients; 90% are short,
// low-value with shallow gradients. Values are chosen so the
// frequency-weighted average value equals the one-class configuration
// (0.1*550 + 0.9*50 = 100).
func TwoClass(rate float64, seed int64) Config {
	return Config{
		DBPages:     1000,
		ArrivalRate: rate,
		Seed:        seed,
		Classes: []model.Class{
			{
				Name:            "critical",
				NumOps:          24, // long execution times
				WriteProb:       0.25,
				MeanOpTime:      0.015,
				ExecJitter:      0.2,
				SlackFactor:     1.5, // tight deadlines
				Value:           550, // high value-added
				PenaltyPerSlack: 2,   // large penalty gradient
				Frequency:       0.1,
			},
			{
				Name:            "routine",
				NumOps:          12, // short execution times
				WriteProb:       0.25,
				MeanOpTime:      0.015,
				ExecJitter:      0.2,
				SlackFactor:     2,
				Value:           50,  // lower value-added
				PenaltyPerSlack: 0.5, // smaller penalty gradient
				Frequency:       0.9,
			},
		},
	}
}

// Validate checks structural soundness of the configuration.
func (c Config) Validate() error {
	if c.DBPages <= 0 {
		return fmt.Errorf("workload: DBPages = %d", c.DBPages)
	}
	if c.ArrivalRate <= 0 {
		return fmt.Errorf("workload: ArrivalRate = %v", c.ArrivalRate)
	}
	if len(c.Classes) == 0 {
		return fmt.Errorf("workload: no classes")
	}
	total := 0.0
	for i := range c.Classes {
		cl := &c.Classes[i]
		if cl.NumOps <= 0 || cl.NumOps > c.DBPages {
			return fmt.Errorf("workload: class %q NumOps = %d with %d pages", cl.Name, cl.NumOps, c.DBPages)
		}
		if cl.MeanOpTime <= 0 {
			return fmt.Errorf("workload: class %q MeanOpTime = %v", cl.Name, cl.MeanOpTime)
		}
		if cl.SlackFactor <= 0 {
			return fmt.Errorf("workload: class %q SlackFactor = %v", cl.Name, cl.SlackFactor)
		}
		if cl.WriteProb < 0 || cl.WriteProb > 1 {
			return fmt.Errorf("workload: class %q WriteProb = %v", cl.Name, cl.WriteProb)
		}
		total += cl.Frequency
	}
	if total <= 0 {
		return fmt.Errorf("workload: class frequencies sum to %v", total)
	}
	switch c.Keys.Kind {
	case "", KeyUniform:
	case KeyZipf:
		if c.Keys.Theta < 0 || c.Keys.Theta >= 1 {
			return fmt.Errorf("workload: zipf theta = %v (want [0, 1))", c.Keys.Theta)
		}
	case KeyHot:
		if c.Keys.HotKeys <= 0 || c.Keys.HotKeys >= c.DBPages {
			return fmt.Errorf("workload: hot set %d of %d pages", c.Keys.HotKeys, c.DBPages)
		}
		if c.Keys.HotFrac < 0 || c.Keys.HotFrac > 1 {
			return fmt.Errorf("workload: hot fraction = %v", c.Keys.HotFrac)
		}
	default:
		return fmt.Errorf("workload: unknown key distribution %q", c.Keys.Kind)
	}
	switch c.Think.Kind {
	case "", ThinkNone, ThinkFixed, ThinkExp:
		if c.Think.Mean < 0 {
			return fmt.Errorf("workload: think mean = %v", c.Think.Mean)
		}
	default:
		return fmt.Errorf("workload: unknown think-time kind %q", c.Think.Kind)
	}
	return nil
}

// Generator produces a deterministic stream of transactions.
type Generator struct {
	cfg     Config
	rng     *dist.RNG
	zipf    *dist.Zipf
	next    sim.Time
	nextID  model.TxnID
	cumFreq []float64
}

// NewGenerator builds a generator; it panics on an invalid configuration
// (configurations are author-written, not user input).
func NewGenerator(cfg Config) *Generator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{cfg: cfg, rng: dist.NewRNG(cfg.Seed), nextID: 1}
	if cfg.Keys.Kind == KeyZipf {
		g.zipf = g.rng.Zipf(cfg.DBPages, cfg.Keys.Theta)
	}
	total := 0.0
	for _, cl := range cfg.Classes {
		total += cl.Frequency
	}
	cum := 0.0
	for _, cl := range cfg.Classes {
		cum += cl.Frequency / total
		g.cumFreq = append(g.cumFreq, cum)
	}
	return g
}

// pickClass selects a class index according to the frequency mix.
func (g *Generator) pickClass() int {
	u := g.rng.Float64()
	for i, c := range g.cumFreq {
		if u < c {
			return i
		}
	}
	return len(g.cumFreq) - 1
}

// drawPages returns k distinct pages per the configured key
// distribution. Skewed kinds draw with replacement and dedupe — a hot
// page re-drawn within one transaction is the same access — falling back
// to a deterministic upward probe if the skew is so extreme that fresh
// pages stop appearing (k <= DBPages is guaranteed by Validate).
func (g *Generator) drawPages(k int) []int {
	if g.cfg.Keys.Kind == "" || g.cfg.Keys.Kind == KeyUniform {
		return g.rng.SampleWithoutReplacement(g.cfg.DBPages, k)
	}
	n := g.cfg.DBPages
	drawOne := func() int {
		if g.zipf != nil {
			return g.zipf.Next()
		}
		// KeyHot.
		if g.rng.Float64() < g.cfg.Keys.HotFrac {
			return g.rng.Intn(g.cfg.Keys.HotKeys)
		}
		return g.cfg.Keys.HotKeys + g.rng.Intn(n-g.cfg.Keys.HotKeys)
	}
	out := make([]int, 0, k)
	seen := make(map[int]bool, k)
	for tries := 0; len(out) < k && tries < 32*k; tries++ {
		if p := drawOne(); !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for p := 0; len(out) < k; p = (p + 1) % n {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// NextThink draws one think-time pause in seconds from the configured
// distribution. It shares the generator's RNG, so a fixed seed fixes the
// interleaved arrival/page/think stream as one deterministic sequence.
func (g *Generator) NextThink() float64 {
	switch g.cfg.Think.Kind {
	case ThinkFixed:
		return g.cfg.Think.Mean
	case ThinkExp:
		if g.cfg.Think.Mean <= 0 {
			return 0
		}
		return g.rng.Exp(g.cfg.Think.Mean)
	}
	return 0
}

// Next returns the next transaction in arrival order. Arrival gaps are
// exponential with mean 1/rate; pages are chosen per the key
// distribution (uniform without replacement by default); each access is
// a write with the class's WriteProb; the actual per-op time is the
// class mean scaled by a truncated-normal jitter factor (the scheduler
// only ever sees the class mean).
func (g *Generator) Next() *model.Txn {
	g.next += sim.Time(g.rng.Exp(1 / g.cfg.ArrivalRate))
	cl := &g.cfg.Classes[g.pickClass()]

	pages := g.drawPages(cl.NumOps)
	ops := make([]model.Op, cl.NumOps)
	for i, p := range pages {
		ops[i] = model.Op{Page: model.PageID(p), Write: g.rng.Float64() < cl.WriteProb}
	}

	jitter := 1.0
	if cl.ExecJitter > 0 {
		jitter = g.rng.TruncNormal(1, cl.ExecJitter, 0.4, 1.6)
	}

	t := &model.Txn{
		ID:      g.nextID,
		Class:   cl,
		Arrival: g.next,
		Ops:     ops,
		OpTime:  cl.MeanOpTime * jitter,
	}
	// Deadline from the class-mean estimate, not the actual draw: the
	// system does not know the true execution time in advance.
	t.Deadline = t.Arrival + sim.Time(cl.SlackFactor*cl.MeanExec())
	g.nextID++
	return t
}
