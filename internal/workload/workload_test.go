package workload

import (
	"math"
	"testing"

	"repro/internal/model"
)

func TestBaselineMatchesPaperParameters(t *testing.T) {
	cfg := Baseline(100, 1)
	if cfg.DBPages != 1000 {
		t.Fatalf("DBPages = %d, want 1000", cfg.DBPages)
	}
	cl := cfg.Classes[0]
	if cl.NumOps != 16 {
		t.Fatalf("NumOps = %d, want 16", cl.NumOps)
	}
	if cl.WriteProb != 0.25 {
		t.Fatalf("WriteProb = %v, want 0.25", cl.WriteProb)
	}
	if cl.SlackFactor != 2 {
		t.Fatalf("SlackFactor = %v, want 2", cl.SlackFactor)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoClassAverageValueMatchesOneClass(t *testing.T) {
	cfg := TwoClass(100, 1)
	avg := 0.0
	for _, cl := range cfg.Classes {
		avg += cl.Frequency * cl.Value
	}
	if math.Abs(avg-100) > 1e-9 {
		t.Fatalf("frequency-weighted value = %v, want 100 (same as one-class)", avg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []Config{
		{DBPages: 0, ArrivalRate: 1, Classes: Baseline(1, 1).Classes},
		{DBPages: 10, ArrivalRate: 0, Classes: Baseline(1, 1).Classes},
		{DBPages: 10, ArrivalRate: 1},
		{DBPages: 10, ArrivalRate: 1, Classes: []model.Class{{NumOps: 16, MeanOpTime: 1, SlackFactor: 1, Frequency: 1}}},
		{DBPages: 10, ArrivalRate: 1, Classes: []model.Class{{NumOps: 4, MeanOpTime: 0, SlackFactor: 1, Frequency: 1}}},
		{DBPages: 10, ArrivalRate: 1, Classes: []model.Class{{NumOps: 4, MeanOpTime: 1, SlackFactor: 0, Frequency: 1}}},
		{DBPages: 10, ArrivalRate: 1, Classes: []model.Class{{NumOps: 4, MeanOpTime: 1, SlackFactor: 1, WriteProb: 1.5, Frequency: 1}}},
		{DBPages: 10, ArrivalRate: 1, Classes: []model.Class{{NumOps: 4, MeanOpTime: 1, SlackFactor: 1, Frequency: 0}}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(Baseline(50, 42))
	b := NewGenerator(Baseline(50, 42))
	for i := 0; i < 200; i++ {
		ta, tb := a.Next(), b.Next()
		if ta.Arrival != tb.Arrival || ta.OpTime != tb.OpTime || len(ta.Ops) != len(tb.Ops) {
			t.Fatalf("same seed diverged at txn %d", i)
		}
		for j := range ta.Ops {
			if ta.Ops[j] != tb.Ops[j] {
				t.Fatalf("ops diverge at txn %d op %d", i, j)
			}
		}
	}
}

func TestGeneratorStructure(t *testing.T) {
	g := NewGenerator(Baseline(100, 7))
	var prev float64
	for i := 0; i < 500; i++ {
		tx := g.Next()
		if tx.ID != model.TxnID(i+1) {
			t.Fatalf("IDs must be sequential: %d at %d", tx.ID, i)
		}
		if float64(tx.Arrival) < prev {
			t.Fatalf("arrivals must be nondecreasing")
		}
		prev = float64(tx.Arrival)
		if len(tx.Ops) != 16 {
			t.Fatalf("txn %d has %d ops", tx.ID, len(tx.Ops))
		}
		seen := map[model.PageID]bool{}
		for _, op := range tx.Ops {
			if op.Page < 0 || op.Page >= 1000 {
				t.Fatalf("page %d out of range", op.Page)
			}
			if seen[op.Page] {
				t.Fatalf("txn %d accesses page %d twice", tx.ID, op.Page)
			}
			seen[op.Page] = true
		}
		if tx.Deadline <= tx.Arrival {
			t.Fatal("deadline must be after arrival")
		}
		rel := float64(tx.Deadline - tx.Arrival)
		want := 2 * 16 * 0.015
		if math.Abs(rel-want) > 1e-9 {
			t.Fatalf("relative deadline %v, want slack*meanExec = %v", rel, want)
		}
		if tx.OpTime < 0.015*0.4 || tx.OpTime > 0.015*1.6 {
			t.Fatalf("jittered OpTime %v outside truncation window", tx.OpTime)
		}
	}
}

func TestArrivalRateMatches(t *testing.T) {
	g := NewGenerator(Baseline(100, 3))
	const n = 20000
	var last float64
	for i := 0; i < n; i++ {
		last = float64(g.Next().Arrival)
	}
	rate := n / last
	if math.Abs(rate-100) > 3 {
		t.Fatalf("empirical arrival rate = %v, want ~100", rate)
	}
}

func TestWriteProbMatches(t *testing.T) {
	g := NewGenerator(Baseline(100, 4))
	writes, total := 0, 0
	for i := 0; i < 2000; i++ {
		for _, op := range g.Next().Ops {
			total++
			if op.Write {
				writes++
			}
		}
	}
	frac := float64(writes) / float64(total)
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("write fraction = %v, want ~0.25", frac)
	}
}

func TestClassMixMatches(t *testing.T) {
	g := NewGenerator(TwoClass(100, 5))
	crit := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if g.Next().Class.Name == "critical" {
			crit++
		}
	}
	frac := float64(crit) / n
	if math.Abs(frac-0.1) > 0.01 {
		t.Fatalf("critical fraction = %v, want ~0.1", frac)
	}
}

func TestZipfKeySkewConcentratesAccesses(t *testing.T) {
	cfg := Baseline(100, 11)
	cfg.Keys = KeyDist{Kind: KeyZipf, Theta: 0.99}
	g := NewGenerator(cfg)
	counts := make(map[model.PageID]int)
	total := 0
	for i := 0; i < 3000; i++ {
		tx := g.Next()
		seen := map[model.PageID]bool{}
		for _, op := range tx.Ops {
			if seen[op.Page] {
				t.Fatalf("txn %d accesses page %d twice", tx.ID, op.Page)
			}
			seen[op.Page] = true
			counts[op.Page]++
			total++
		}
	}
	// The 10 hottest ranks must absorb far more than their uniform share
	// (10/1000 = 1%); with theta=0.99 and per-txn dedupe it is >> 10%.
	hot := 0
	for p := model.PageID(0); p < 10; p++ {
		hot += counts[p]
	}
	if frac := float64(hot) / float64(total); frac < 0.10 {
		t.Fatalf("hottest 10 pages absorb %v of accesses, want skewed >> 0.01", frac)
	}
	// And the ordering must be Zipfian: rank 0 strictly hotter than rank 50.
	if counts[0] <= counts[50] {
		t.Fatalf("rank 0 (%d draws) not hotter than rank 50 (%d draws)", counts[0], counts[50])
	}
}

func TestHotSetKeyDistribution(t *testing.T) {
	cfg := Baseline(100, 13)
	cfg.Keys = KeyDist{Kind: KeyHot, HotKeys: 20, HotFrac: 0.8}
	g := NewGenerator(cfg)
	hot, total := 0, 0
	for i := 0; i < 3000; i++ {
		for _, op := range g.Next().Ops {
			total++
			if op.Page < 20 {
				hot++
			}
		}
	}
	// Per-transaction dedupe trims repeats inside the tiny hot set, so
	// the realized hot fraction sits below the raw 0.8 draw probability;
	// it must still be far above the uniform 2%.
	if frac := float64(hot) / float64(total); frac < 0.5 {
		t.Fatalf("hot-set fraction = %v, want >> 0.02", frac)
	}
}

func TestThinkTimeMomentsAndDeterminism(t *testing.T) {
	const n = 100000
	// Fixed: every draw is exactly the mean.
	cfg := Baseline(100, 17)
	cfg.Think = ThinkTime{Kind: ThinkFixed, Mean: 0.25}
	g := NewGenerator(cfg)
	for i := 0; i < 100; i++ {
		if got := g.NextThink(); got != 0.25 {
			t.Fatalf("fixed think = %v, want 0.25", got)
		}
	}
	// Exponential: mean and second moment (E[X^2] = 2*mean^2 for exp).
	cfg.Think = ThinkTime{Kind: ThinkExp, Mean: 0.1}
	g = NewGenerator(cfg)
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := g.NextThink()
		if x < 0 {
			t.Fatalf("negative think time %v", x)
		}
		sum += x
		sum2 += x * x
	}
	if mean := sum / n; math.Abs(mean-0.1) > 0.005 {
		t.Fatalf("exp think mean = %v, want ~0.1", mean)
	}
	if m2 := sum2 / n; math.Abs(m2-0.02) > 0.003 {
		t.Fatalf("exp think second moment = %v, want ~2*mean^2 = 0.02", m2)
	}
	// None: always zero.
	cfg.Think = ThinkTime{}
	g = NewGenerator(cfg)
	if g.NextThink() != 0 {
		t.Fatal("zero-value think time must draw 0")
	}
	// Determinism: the interleaved Next/NextThink stream replays exactly
	// under a fixed seed.
	cfg = Baseline(50, 23)
	cfg.Keys = KeyDist{Kind: KeyZipf, Theta: 0.9}
	cfg.Think = ThinkTime{Kind: ThinkExp, Mean: 0.05}
	a, b := NewGenerator(cfg), NewGenerator(cfg)
	for i := 0; i < 500; i++ {
		ta, tb := a.Next(), b.Next()
		if ta.Arrival != tb.Arrival {
			t.Fatalf("arrivals diverged at %d", i)
		}
		for j := range ta.Ops {
			if ta.Ops[j] != tb.Ops[j] {
				t.Fatalf("ops diverged at txn %d op %d", i, j)
			}
		}
		if a.NextThink() != b.NextThink() {
			t.Fatalf("think stream diverged at %d", i)
		}
	}
}

func TestKeyAndThinkValidation(t *testing.T) {
	base := Baseline(100, 1)
	bad := []func(*Config){
		func(c *Config) { c.Keys = KeyDist{Kind: "weird"} },
		func(c *Config) { c.Keys = KeyDist{Kind: KeyZipf, Theta: 1} },
		func(c *Config) { c.Keys = KeyDist{Kind: KeyZipf, Theta: -0.5} },
		func(c *Config) { c.Keys = KeyDist{Kind: KeyHot, HotKeys: 0, HotFrac: 0.5} },
		func(c *Config) { c.Keys = KeyDist{Kind: KeyHot, HotKeys: 1000, HotFrac: 0.5} },
		func(c *Config) { c.Keys = KeyDist{Kind: KeyHot, HotKeys: 10, HotFrac: 1.5} },
		func(c *Config) { c.Think = ThinkTime{Kind: "sometimes"} },
		func(c *Config) { c.Think = ThinkTime{Kind: ThinkExp, Mean: -1} },
	}
	for i, mut := range bad {
		cfg := base
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid key/think config accepted", i)
		}
	}
	good := base
	good.Keys = KeyDist{Kind: KeyZipf, Theta: 0.99}
	good.Think = ThinkTime{Kind: ThinkExp, Mean: 0.01}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGenerator with invalid config did not panic")
		}
	}()
	NewGenerator(Config{})
}
