// Package durable gives the sharded SCC store crash durability: a
// per-shard write-ahead log fed by the engine's commit hook (wal.go),
// periodic whole-shard checkpoints at a recorded log index
// (checkpoint.go), and a recovery path that loads the newest valid
// checkpoint and replays the WAL suffix through the engine's ApplyLocked
// hook, truncating torn tails. A Hekaton-shaped design: main-memory
// state, sequential log, snapshot checkpoints — no in-place paging.
//
// Checkpointing is value-cognizant: the background checkpointer ranks
// shards by the summed transaction value committed since their last
// checkpoint (the engine's ValuedCommitLog hook carries it), so the
// highest-value working set becomes durable — and its log replay
// shortest — first. Recovery itself replays each shard in strict index
// order; value decides what is checkpointed when, never what is kept.
//
// The manager also owns log retention: after a checkpoint it advances
// the in-memory replication log's durability floor, letting repl.Log
// trim below min(checkpoint index, min acked subscriber index). Late
// joiners bootstrap from a snapshot (the SNAP verb) instead of a full
// replay. docs/ARCHITECTURE.md places the package in the system;
// docs/PROTOCOL.md documents the operator surface (CKPT, STATS keys).
package durable

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/shard"
)

// Options configures durability for one store.
type Options struct {
	// Dir is the data directory; one subdirectory per shard is created
	// under it. Empty disables durability.
	Dir string
	// Fsync selects when WAL appends reach stable storage (default
	// FsyncGroup: one fsync per commit batch, before the batch is
	// acknowledged).
	Fsync FsyncPolicy
	// CkptEvery checkpoints a shard automatically once this many records
	// accumulate in its WAL since the last checkpoint (0 = only on the
	// CKPT verb / explicit CheckpointAll).
	CkptEvery int
	// Metrics, when non-nil, receives durability observations (fsync and
	// checkpoint latency). All fields must be populated.
	Metrics *Metrics
}

// Metrics are the durability layer's instruments, registered by the
// serving layer and shared across shards.
type Metrics struct {
	// FsyncSeconds observes each WAL fsync — the stall every commit in a
	// batch waits out before its verdict under the group policy.
	FsyncSeconds *obs.Histogram
	// CheckpointSeconds observes whole-shard checkpoint passes: rotate,
	// latched snapshot, atomic file write, trim.
	CheckpointSeconds *obs.Histogram
}

// Stats are cumulative durability counters, summed over shards.
type Stats struct {
	WALAppends     int64  // records appended to WALs
	WALFsyncs      int64  // fsync calls issued by WALs
	Checkpoints    int64  // checkpoint files written
	RecoveredIndex uint64 // sum of per-shard commit-log indices restored at boot
	Errors         int64  // WAL append/sync failures (sticky per shard)
}

// Manager wires durability through a shard.Store: it recovers the store
// at Open, installs itself as every shard's commit log (feeding both the
// WAL and, when present, the replication feed), and runs the
// value-prioritized background checkpointer.
type Manager struct {
	opts  Options
	store *shard.Store
	feed  *repl.Feed // may be nil (durability without replication)

	shards    []*managedShard
	recovered uint64
	ckpts     atomic.Int64
	errs      atomic.Int64

	ckptMu sync.Mutex // serializes checkpoint passes
	kick   chan struct{}
	stop   chan struct{}
	done   chan struct{}
}

// managedShard is one shard's durability state. It implements
// engine.CommitLog, engine.ValuedCommitLog and engine.CommitSyncer: the
// engine hands it every installed write set under the shard latch and
// calls Sync at each commit-batch boundary.
//
// Sync-before-ship: a record reaches the in-memory replication log —
// and through it any live REPL subscriber — only after the WAL has it
// on stable storage (at Sync under the group policy, inside the append
// under always, after the write(2) under off). Shipping first would
// let a crash-and-recover primary disown a record a replica already
// applied, then reissue its index with different writes.
type managedShard struct {
	m       *Manager
	idx     int
	dir     string
	wal     *WAL
	replLog *repl.Log // nil without a feed

	mu           sync.Mutex
	next         uint64              // next commit-log index (lockstep with wal and replLog)
	unshipped    []map[string][]byte // WAL-written, not yet published to replLog
	appendsSince int                 // records since the last checkpoint
	pendingValue float64             // summed transaction value since the last checkpoint
	ckptIdx      uint64              // newest checkpoint's log index

	// shipMu serializes Sync end-to-end (capture → fsync → publish):
	// concurrent batch syncs would otherwise publish captured batches
	// out of order, and repl.Log assigns indices by publication order.
	shipMu sync.Mutex
}

// Open recovers the store from dir and wires durability into it. The
// store must be freshly opened, idle, and have no commit logs installed
// yet: recovery replays history through ApplyLocked, and the replay must
// not re-log itself — Open installs the commit-log sinks only after the
// replay, and resets the feed's per-shard log bases to the recovered
// indices so shipped indices stay in lockstep with the WAL.
func Open(opts Options, store *shard.Store, feed *repl.Feed) (*Manager, error) {
	if opts.Dir == "" {
		return nil, errors.New("durable: no data directory")
	}
	if feed != nil && feed.Shards() != store.NumShards() {
		return nil, fmt.Errorf("durable: feed has %d shards, store %d", feed.Shards(), store.NumShards())
	}
	m := &Manager{
		opts:  opts,
		store: store,
		feed:  feed,
		kick:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	// The shard count is baked into the directory layout AND the key
	// routing (FNV mod shards): reopening with a different count would
	// silently drop the extra shards' history and misroute every
	// recovered key. A META file pins it; mismatches fail fast.
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	metaPath := filepath.Join(opts.Dir, "META")
	if b, err := os.ReadFile(metaPath); err == nil {
		var shards int
		if _, err := fmt.Sscanf(string(b), "shards=%d", &shards); err != nil || shards <= 0 {
			return nil, fmt.Errorf("durable: unreadable META %q in %s", string(b), opts.Dir)
		}
		if shards != store.NumShards() {
			return nil, fmt.Errorf("durable: data directory %s is laid out for %d shards, server has %d (restart with -shards %d or use a fresh -data-dir)",
				opts.Dir, shards, store.NumShards(), shards)
		}
	} else if err := os.WriteFile(metaPath, []byte(fmt.Sprintf("shards=%d\n", store.NumShards())), 0o644); err != nil {
		return nil, err
	}
	// Recovery is parallel per shard: each shard's checkpoint load + WAL
	// scan + replay touches only its own directory and latches only its
	// own engine, so one goroutine per shard is safe. Results land in a
	// slice indexed by shard and all wiring happens after the join, in
	// shard order — the outcome is bit-identical to a sequential boot,
	// and on failure the error of the LOWEST shard index wins so repeated
	// boots of the same damaged directory report the same fault.
	boots := make([]shardBoot, store.NumShards())
	var wg sync.WaitGroup
	for i := 0; i < store.NumShards(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			boots[i].ms, boots[i].head, boots[i].err = m.bootShard(i)
		}(i)
	}
	wg.Wait()
	for i := range boots {
		if err := boots[i].err; err != nil {
			for _, b := range boots {
				if b.ms != nil {
					b.ms.wal.Close()
				}
			}
			return nil, err
		}
	}
	for i, b := range boots {
		ms := b.ms
		if feed != nil {
			log := feed.Log(i)
			log.ResetBase(b.head)
			if ms.ckptIdx > 0 {
				log.SetDurableFloor(ms.ckptIdx)
			}
			ms.replLog = log
		}
		m.shards = append(m.shards, ms)
		m.recovered += b.head
		store.Shard(i).SetCommitLog(ms)
	}
	go m.checkpointLoop()
	return m, nil
}

// shardBoot is one shard's parallel-recovery outcome.
type shardBoot struct {
	ms   *managedShard
	head uint64
	err  error
}

// bootShard recovers one shard's durable state: checkpoint, WAL suffix,
// replay. It is the per-goroutine unit of the parallel boot; the
// returned managedShard is not yet wired to the feed or the engine.
func (m *Manager) bootShard(i int) (*managedShard, uint64, error) {
	dir := filepath.Join(m.opts.Dir, fmt.Sprintf("shard-%04d", i))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, err
	}
	ckptIdx, kvs, err := loadCheckpoint(dir, i)
	if err != nil {
		return nil, 0, err
	}
	wal, recs, err := openWAL(dir, m.opts.Fsync, ckptIdx)
	if err != nil {
		return nil, 0, err
	}
	if m.opts.Metrics != nil {
		wal.fsyncObs = m.opts.Metrics.FsyncSeconds
	}
	head, err := m.replayShard(i, ckptIdx, kvs, recs)
	if err != nil {
		wal.Close()
		return nil, 0, err
	}
	ms := &managedShard{
		m:       m,
		idx:     i,
		dir:     dir,
		wal:     wal,
		next:    head + 1,
		ckptIdx: ckptIdx,
	}
	return ms, head, nil
}

// replayShard restores one shard: install the checkpoint, then the WAL
// suffix above it, in strict index order, all under one latch hold. It
// returns the recovered commit-log head.
func (m *Manager) replayShard(i int, ckptIdx uint64, kvs map[string][]byte, recs []repl.Record) (uint64, error) {
	eng := m.store.Shard(i)
	eng.LockCommit()
	defer eng.UnlockCommit()
	if len(kvs) > 0 {
		eng.ApplyLocked(kvs)
	}
	head := ckptIdx
	for _, rec := range recs {
		if rec.Index <= ckptIdx {
			continue // pre-checkpoint residue in the active segment
		}
		if rec.Index != head+1 {
			return 0, fmt.Errorf("durable: shard %d WAL gap: record %d after %d (checkpoint %d)",
				i, rec.Index, head, ckptIdx)
		}
		eng.ApplyLocked(rec.Writes)
		head = rec.Index
	}
	return head, nil
}

// Append implements engine.CommitLog (unvalued installs).
func (ms *managedShard) Append(writes map[string][]byte) { ms.AppendValued(writes, 0) }

// AppendValued implements engine.ValuedCommitLog: called under the shard
// latch for every install, it writes the WAL and accrues the shard's
// pending-value for checkpoint prioritization. Publication to the
// replication log is deferred to the Sync boundary (see the type
// comment), except under FsyncAlways where the append itself synced.
func (ms *managedShard) AppendValued(writes map[string][]byte, value float64) {
	ms.mu.Lock()
	idx := ms.next
	ms.next++
	ms.appendsSince++
	if value > 0 {
		ms.pendingValue += value
	}
	due := ms.m.opts.CkptEvery > 0 && ms.appendsSince >= ms.m.opts.CkptEvery
	walOK := ms.wal.Append(repl.Record{Index: idx, Writes: writes}) == nil
	if !walOK {
		ms.m.errs.Add(1)
	}
	if ms.replLog != nil && walOK {
		if ms.m.opts.Fsync == FsyncAlways {
			ms.replLog.Append(writes)
		} else {
			ms.unshipped = append(ms.unshipped, writes)
		}
	}
	ms.mu.Unlock()

	if due {
		select {
		case ms.m.kick <- struct{}{}:
		default:
		}
	}
}

// Sync implements engine.CommitSyncer: one WAL sync per commit batch,
// then publication of the batch's records to the replication log. The
// engine (and the cross-shard/replica apply paths) call it before any
// commit of the batch is acknowledged, so subscribers only ever stream
// records that are already durable here. The ship batch is captured
// BEFORE the fsync: a record appended concurrently (by the next batch,
// under the shard latch) after this fsync returned would otherwise be
// published without being durable yet — the exact disown-and-reissue
// hazard sync-before-ship exists to prevent.
func (ms *managedShard) Sync() error {
	ms.shipMu.Lock()
	defer ms.shipMu.Unlock()
	ms.mu.Lock()
	ship := ms.unshipped
	ms.unshipped = nil
	ms.mu.Unlock()
	if err := ms.wal.Sync(); err != nil {
		ms.m.errs.Add(1)
		// A broken WAL also stops shipping: replicas must not apply
		// records this primary can no longer recover. The captured
		// batch is dropped, not re-queued — the WAL is sticky-broken,
		// the operator policy is fail-stop.
		return err
	}
	for _, writes := range ship {
		ms.replLog.Append(writes)
	}
	return nil
}

// checkpointLoop runs automatic checkpoints: each kick checkpoints every
// shard whose WAL grew past CkptEvery since its last checkpoint, highest
// pending-value first. Failures are counted (dur_errors in STATS) and
// logged — once per distinct error message, since a persistently full
// disk would otherwise log on every kick.
func (m *Manager) checkpointLoop() {
	defer close(m.done)
	lastLogged := ""
	for {
		select {
		case <-m.stop:
			return
		case <-m.kick:
		}
		due := m.plan(func(ms *managedShard, appends int) bool {
			return m.opts.CkptEvery > 0 && appends >= m.opts.CkptEvery
		})
		for _, ms := range due {
			select {
			case <-m.stop:
				return
			default:
			}
			if err := m.checkpointShard(ms); err != nil {
				if msg := err.Error(); msg != lastLogged {
					lastLogged = msg
					slog.Warn("durable: checkpoint failed; will retry and WAL keeps growing",
						"shard", ms.idx, "err", err)
				}
			} else {
				lastLogged = ""
			}
		}
	}
}

// plan returns the shards selected by keep, ordered by pending value
// (descending; append count breaks ties) — the value-cognizant
// checkpoint order: the shard holding the most not-yet-durable value is
// captured first.
func (m *Manager) plan(keep func(ms *managedShard, appends int) bool) []*managedShard {
	type cand struct {
		ms      *managedShard
		value   float64
		appends int
	}
	var cands []cand
	for _, ms := range m.shards {
		ms.mu.Lock()
		v, n := ms.pendingValue, ms.appendsSince
		ms.mu.Unlock()
		if keep(ms, n) {
			cands = append(cands, cand{ms, v, n})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].value != cands[j].value {
			return cands[i].value > cands[j].value
		}
		return cands[i].appends > cands[j].appends
	})
	out := make([]*managedShard, len(cands))
	for i, c := range cands {
		out[i] = c.ms
	}
	return out
}

// CheckpointAll checkpoints every shard with records since its last
// checkpoint, highest pending-value first, and returns the shard indices
// in the order they were captured (the CKPT verb's work list). Shards
// whose state did not change are skipped.
func (m *Manager) CheckpointAll() ([]int, error) {
	var order []int
	var firstErr error
	for _, ms := range m.plan(func(_ *managedShard, appends int) bool { return appends > 0 }) {
		if err := m.checkpointShard(ms); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		order = append(order, ms.idx)
	}
	return order, firstErr
}

// checkpointShard captures one shard: rotate the WAL (so every earlier
// segment becomes trimmable as a whole file), snapshot the shard's state
// and its commit-log head under one latch hold, write the checkpoint
// atomically, then trim WAL segments and advance the in-memory log's
// durability floor.
func (m *Manager) checkpointShard(ms *managedShard) error {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	if met := m.opts.Metrics; met != nil {
		start := time.Now()
		defer func() { met.CheckpointSeconds.Observe(int64(time.Since(start))) }()
	}
	if err := ms.wal.Rotate(); err != nil {
		m.errs.Add(1)
		return err
	}
	eng := m.store.Shard(ms.idx)
	eng.LockCommit()
	ms.mu.Lock()
	head := ms.next - 1
	coveredAppends := ms.appendsSince
	coveredValue := ms.pendingValue
	ms.mu.Unlock()
	kvs := make(map[string][]byte)
	eng.RangeLocked(func(k string, v []byte) bool {
		kvs[k] = append([]byte(nil), v...)
		return true
	})
	eng.UnlockCommit()

	if err := writeCheckpoint(ms.dir, ms.idx, head, kvs); err != nil {
		m.errs.Add(1)
		return err
	}
	ms.mu.Lock()
	prev := ms.ckptIdx
	ms.ckptIdx = head
	// Subtract what this checkpoint covered rather than zeroing: commits
	// that landed during the (unlatched) file write are above head, so
	// their append counts and pending value must keep driving the next
	// checkpoint's timing and priority.
	ms.appendsSince -= coveredAppends
	ms.pendingValue -= coveredValue
	if ms.pendingValue < 0 {
		ms.pendingValue = 0
	}
	ms.mu.Unlock()
	// On-disk history is pruned only below the PREVIOUS checkpoint: the
	// newest-but-one checkpoint and the WAL suffix above it survive
	// until the next pass, so recovery can fall back if the newest file
	// is ever found corrupt. The in-memory log has no such constraint —
	// it serves joiners (who SNAP live state), never recovery — so its
	// durability floor advances to the new head.
	pruneCheckpoints(ms.dir, prev)
	ms.wal.TrimSegments(prev)
	if ms.replLog != nil {
		// Trimming advances to min(checkpoint, min acked subscriber,
		// retention window) — the log enforces the floors itself.
		ms.replLog.SetDurableFloor(head)
	}
	m.ckpts.Add(1)
	return nil
}

// CheckpointIndex returns shard's newest checkpoint log index (0 before
// the first checkpoint).
func (m *Manager) CheckpointIndex(shard int) uint64 {
	ms := m.shards[shard]
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.ckptIdx
}

// RecoveredIndex reports the sum of per-shard commit-log indices
// restored at Open — zero for a cold start, the total acknowledged
// commit count survived for a restart.
func (m *Manager) RecoveredIndex() uint64 { return m.recovered }

// Stats returns a snapshot of the durability counters.
func (m *Manager) Stats() Stats {
	s := Stats{
		RecoveredIndex: m.recovered,
		Checkpoints:    m.ckpts.Load(),
		Errors:         m.errs.Load(),
	}
	for _, ms := range m.shards {
		s.WALAppends += ms.wal.appends.Load()
		s.WALFsyncs += ms.wal.fsyncs.Load()
	}
	return s
}

// Err returns the first sticky WAL failure across shards, if any.
func (m *Manager) Err() error {
	for _, ms := range m.shards {
		if err := ms.wal.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Close stops the checkpointer and closes every WAL, syncing pending
// bytes. The store must be quiesced first (no in-flight commits).
func (m *Manager) Close() error {
	close(m.stop)
	<-m.done
	var firstErr error
	for _, ms := range m.shards {
		ms.Sync() // flush + ship any batch-tail records
		if err := ms.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
