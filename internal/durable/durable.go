// Package durable gives the sharded SCC store crash durability: a
// per-shard write-ahead log fed by the engine's commit hook (wal.go),
// periodic whole-shard checkpoints at a recorded log index
// (checkpoint.go), and a recovery path that loads the newest valid
// checkpoint and replays the WAL suffix through the engine's ApplyLocked
// hook, truncating torn tails. A Hekaton-shaped design: main-memory
// state, sequential log, snapshot checkpoints — no in-place paging.
//
// Checkpointing is value-cognizant: the background checkpointer ranks
// shards by the summed transaction value committed since their last
// checkpoint (the engine's ValuedCommitLog hook carries it), so the
// highest-value working set becomes durable — and its log replay
// shortest — first. Recovery itself replays each shard in strict index
// order; value decides what is checkpointed when, never what is kept.
//
// The manager also owns log retention: after a checkpoint it advances
// the in-memory replication log's durability floor, letting repl.Log
// trim below min(checkpoint index, min acked subscriber index). Late
// joiners bootstrap from a snapshot (the SNAP verb) instead of a full
// replay. docs/ARCHITECTURE.md places the package in the system;
// docs/PROTOCOL.md documents the operator surface (CKPT, STATS keys).
package durable

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/repl"
	"repro/internal/shard"
)

// Options configures durability for one store.
type Options struct {
	// Dir is the data directory; one subdirectory per shard is created
	// under it. Empty disables durability.
	Dir string
	// Fsync selects when WAL appends reach stable storage (default
	// FsyncGroup: one fsync per commit batch, before the batch is
	// acknowledged).
	Fsync FsyncPolicy
	// CkptEvery checkpoints a shard automatically once this many records
	// accumulate in its WAL since the last checkpoint (0 = only on the
	// CKPT verb / explicit CheckpointAll).
	CkptEvery int
	// Metrics, when non-nil, receives durability observations (fsync and
	// checkpoint latency). All fields must be populated.
	Metrics *Metrics
	// OnError, when non-nil, is invoked (once, from its own goroutine)
	// with the first sticky WAL failure. The serving layer uses it to
	// fail-stop the process the moment durability is lost, instead of
	// discovering it on a poll — no acknowledgement can race it, because
	// every install path also surfaces the same failure synchronously in
	// its verdict.
	OnError func(error)
	// Flight, when non-nil, receives durability events (fsync, intent,
	// decision, checkpoint, reconciliation) on its per-shard rings, and
	// is dumped to <Dir>/flight/ on the failure paths: the first sticky
	// WAL failure (before OnError fail-stops the process) and a boot
	// that discarded undecided cross-shard epochs.
	Flight *flight.Recorder
}

// Metrics are the durability layer's instruments, registered by the
// serving layer and shared across shards.
type Metrics struct {
	// FsyncSeconds observes each WAL fsync — the stall every commit in a
	// batch waits out before its verdict under the group policy.
	FsyncSeconds *obs.Histogram
	// CheckpointSeconds observes whole-shard checkpoint passes: rotate,
	// latched snapshot, atomic file write, trim.
	CheckpointSeconds *obs.Histogram
}

// Stats are cumulative durability counters, summed over shards.
type Stats struct {
	WALAppends     int64  // data records appended to WALs
	WALFsyncs      int64  // fsync calls issued by WALs
	Checkpoints    int64  // checkpoint files written
	RecoveredIndex uint64 // sum of per-shard commit-log indices restored at boot
	Errors         int64  // WAL append/sync failures (sticky per shard)
	Intents        int64  // cross-shard intent records appended to WALs
	Reconciled     int64  // undecided cross-shard epochs discarded at boot
}

// Manager wires durability through a shard.Store: it recovers the store
// at Open, installs itself as every shard's commit log (feeding both the
// WAL and, when present, the replication feed), and runs the
// value-prioritized background checkpointer.
type Manager struct {
	opts   Options
	store  *shard.Store
	feed   *repl.Feed // may be nil (durability without replication)
	epochs *engine.Epochs

	shards     []*managedShard
	recovered  uint64
	reconciled int64
	ckpts      atomic.Int64
	errs       atomic.Int64
	failOnce   sync.Once

	ckptMu sync.Mutex // serializes checkpoint passes
	kick   chan struct{}
	stop   chan struct{}
	done   chan struct{}
}

// fail reports a sticky WAL failure, once: the flight recorder is
// dumped (the black box survives the fail-stop), then the OnError hook
// runs. Both happen on their own goroutine — fail is called from under
// shard latches and WAL locks, and neither the dump's file I/O nor the
// hook (typically a fail-stop shutdown) may re-enter them; the dump
// strictly precedes the hook so it completes before any process exit.
func (m *Manager) fail(err error) {
	if err == nil {
		return
	}
	m.failOnce.Do(func() {
		fl, dir, hook := m.opts.Flight, filepath.Join(m.opts.Dir, "flight"), m.opts.OnError
		go func() {
			if _, derr := fl.DumpDir(dir, "walfail"); derr != nil {
				slog.Warn("durable: flight dump on WAL failure failed", "err", derr)
			}
			if hook != nil {
				hook(err)
			}
		}()
	})
}

// managedShard is one shard's durability state. It implements
// engine.CommitLog, engine.ValuedCommitLog and engine.CommitSyncer: the
// engine hands it every installed write set under the shard latch and
// calls Sync at each commit-batch boundary.
//
// Sync-before-ship: a record reaches the in-memory replication log —
// and through it any live REPL subscriber — only after the WAL has it
// on stable storage (at Sync under the group policy, inside the append
// under always, after the write(2) under off). Shipping first would
// let a crash-and-recover primary disown a record a replica already
// applied, then reissue its index with different writes. Cross-shard
// records are additionally gated on their decision: until ReleaseCross
// reports the epoch's decision record durable, the record — and, to
// preserve log order, everything appended behind it — stays unshipped;
// a crash in that window discards the epoch at recovery, so a replica
// must never have seen it.
type managedShard struct {
	m       *Manager
	idx     int
	dir     string
	wal     *WAL
	flight  *flight.Ring // this shard's flight ring (nil-safe)
	replLog *repl.Log    // nil without a feed

	mu           sync.Mutex
	next         uint64              // next commit-log index (lockstep with wal and replLog)
	synced       uint64              // highest index covered by a successful fsync (ship gate)
	maxEpoch     uint64              // highest epoch appended (the checkpoint watermark)
	unshipped    []shipEntry         // WAL-written, not yet published to replLog (in index order)
	gated        map[uint64]struct{} // cross epochs installed here whose decision is not yet durable
	appendsSince int                 // records since the last checkpoint
	pendingValue float64             // summed transaction value since the last checkpoint
	ckptIdx      uint64              // newest checkpoint's log index
}

// shipEntry is one appended record awaiting publication to the
// replication log: it ships only once fsync-covered and (for a
// cross-shard record) un-gated, and only from the queue's head.
type shipEntry struct {
	rec   repl.Record
	gated bool
}

// Open recovers the store from dir and wires durability into it. The
// store must be freshly opened, idle, and have no commit logs installed
// yet: recovery replays history through ApplyLocked, and the replay must
// not re-log itself — Open installs the commit-log sinks only after the
// replay, and resets the feed's per-shard log bases to the recovered
// indices so shipped indices stay in lockstep with the WAL.
func Open(opts Options, store *shard.Store, feed *repl.Feed) (*Manager, error) {
	if opts.Dir == "" {
		return nil, errors.New("durable: no data directory")
	}
	if feed != nil && feed.Shards() != store.NumShards() {
		return nil, fmt.Errorf("durable: feed has %d shards, store %d", feed.Shards(), store.NumShards())
	}
	m := &Manager{
		opts:  opts,
		store: store,
		feed:  feed,
		kick:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	// The shard count is baked into the directory layout AND the key
	// routing (FNV mod shards): reopening with a different count would
	// silently drop the extra shards' history and misroute every
	// recovered key. A META file pins it; mismatches fail fast.
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	metaPath := filepath.Join(opts.Dir, "META")
	if b, err := os.ReadFile(metaPath); err == nil {
		var shards int
		if _, err := fmt.Sscanf(string(b), "shards=%d", &shards); err != nil || shards <= 0 {
			return nil, fmt.Errorf("durable: unreadable META %q in %s", string(b), opts.Dir)
		}
		if shards != store.NumShards() {
			return nil, fmt.Errorf("durable: data directory %s is laid out for %d shards, server has %d (restart with -shards %d or use a fresh -data-dir)",
				opts.Dir, shards, store.NumShards(), shards)
		}
	} else if err := os.WriteFile(metaPath, []byte(fmt.Sprintf("shards=%d\n", store.NumShards())), 0o644); err != nil {
		return nil, err
	}
	// Recovery is parallel per shard with a global reconciliation barrier
	// in the middle. Phase one (parallel) collects each shard's durable
	// remains: checkpoint, scanned WAL entries. Then — serially, because
	// it needs every shard's evidence at once — the cross-shard epochs are
	// reconciled: an epoch with data records but no durable decision
	// anywhere (and no coordinator checkpoint covering it) was torn
	// mid-commit and is discarded on EVERY shard. Phase two (parallel
	// again) replays each shard, skipping discarded epochs. The outcome is
	// bit-identical to a sequential boot, and on failure the error of the
	// LOWEST shard index wins so repeated boots of the same damaged
	// directory report the same fault.
	boots := make([]shardBoot, store.NumShards())
	closeAll := func() {
		for i := range boots {
			if boots[i].wal != nil {
				boots[i].wal.Close()
			}
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < store.NumShards(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			boots[i].err = m.collectShard(i, &boots[i])
		}(i)
	}
	wg.Wait()
	for i := range boots {
		if err := boots[i].err; err != nil {
			closeAll()
			return nil, err
		}
	}
	discard, maxEpoch := reconcile(boots)
	m.reconciled = int64(len(discard))
	for epoch := range discard {
		slog.Warn("durable: discarding cross-shard commit with no durable decision (torn mid-commit)",
			"epoch", epoch)
	}
	for i := 0; i < store.NumShards(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			boots[i].err = m.replayShard(i, &boots[i], discard)
		}(i)
	}
	wg.Wait()
	for i := range boots {
		if err := boots[i].err; err != nil {
			closeAll()
			return nil, err
		}
	}
	// New epochs must allocate above everything ever stamped on disk —
	// including discarded epochs, whose dead data records may still sit in
	// the WAL: reusing such a number could pair them with a fresh decision
	// on the next boot and resurrect torn writes.
	m.epochs = store.Epochs()
	m.epochs.Observe(maxEpoch)
	for i := range boots {
		b := &boots[i]
		ms := &managedShard{
			m:        m,
			idx:      i,
			dir:      b.dir,
			wal:      b.wal,
			flight:   opts.Flight.Shard(i),
			next:     b.head + 1,
			synced:   b.head,
			maxEpoch: b.lastEpoch,
			gated:    make(map[uint64]struct{}),
			ckptIdx:  b.ckptIdx,
		}
		if feed != nil {
			log := feed.Log(i)
			log.ResetBase(b.head, b.lastEpoch)
			if ms.ckptIdx > 0 {
				log.SetDurableFloor(ms.ckptIdx)
			}
			ms.replLog = log
		}
		m.shards = append(m.shards, ms)
		m.recovered += b.head
		store.Shard(i).SetCommitLog(ms)
	}
	// A boot that discarded torn commits is itself a fault worth a black
	// box: the reconcile events recorded during replay (plus whatever the
	// rings already hold) are dumped so the merge tool can line the
	// discards up against the pre-crash primary's walfail dump by epoch.
	if len(discard) > 0 {
		if _, err := opts.Flight.DumpDir(filepath.Join(opts.Dir, "flight"), "reconcile"); err != nil {
			slog.Warn("durable: flight dump after reconciliation failed", "err", err)
		}
	}
	go m.checkpointLoop()
	return m, nil
}

// shardBoot is one shard's recovery state, filled by collectShard and
// replayShard.
type shardBoot struct {
	dir       string
	wal       *WAL
	ckptIdx   uint64            // newest checkpoint's log index
	ckptEpoch uint64            // its commit-epoch watermark
	kvs       map[string][]byte // its key/value pairs
	entries   []walEntry        // WAL entries above (and control records around) it
	head      uint64            // recovered commit-log head (set by replayShard)
	lastEpoch uint64            // newest applied epoch (set by replayShard)
	err       error
}

// collectShard gathers one shard's durable remains without touching the
// engine: checkpoint load + WAL scan. Replay waits for reconciliation.
func (m *Manager) collectShard(i int, b *shardBoot) error {
	b.dir = filepath.Join(m.opts.Dir, fmt.Sprintf("shard-%04d", i))
	if err := os.MkdirAll(b.dir, 0o755); err != nil {
		return err
	}
	var err error
	b.ckptIdx, b.ckptEpoch, b.kvs, err = loadCheckpoint(b.dir, i)
	if err != nil {
		return err
	}
	b.wal, b.entries, err = openWAL(b.dir, m.opts.Fsync, b.ckptIdx)
	if err != nil {
		return err
	}
	if m.opts.Metrics != nil {
		b.wal.fsyncObs = m.opts.Metrics.FsyncSeconds
	}
	return nil
}

// reconcile decides the fate of every cross-shard epoch found in the
// boots: keep it everywhere (a decision record survives on its
// coordinator, or the coordinator's checkpoint epoch covers it — the
// checkpoint never captures undecided epochs, see checkpointShard) or
// discard it everywhere. It also returns the highest epoch seen anywhere,
// the floor for new allocations.
func reconcile(boots []shardBoot) (discard map[uint64]bool, maxEpoch uint64) {
	decided := make(map[uint64]bool)
	see := func(e uint64) {
		if e > maxEpoch {
			maxEpoch = e
		}
	}
	for i := range boots {
		see(boots[i].ckptEpoch)
		for _, e := range boots[i].entries {
			switch e.kind {
			case walDecision:
				decided[e.epoch] = true
				see(e.epoch)
			case walIntent:
				see(e.epoch)
			case walData:
				see(e.rec.Epoch)
			}
		}
	}
	discard = make(map[uint64]bool)
	for i := range boots {
		for _, e := range boots[i].entries {
			if e.kind != walData || !e.rec.Cross() || e.rec.Index <= boots[i].ckptIdx {
				continue
			}
			epoch, coord := e.rec.Epoch, e.rec.Shards[0]
			if decided[epoch] {
				continue
			}
			if coord >= 0 && coord < len(boots) && boots[coord].ckptEpoch >= epoch {
				continue
			}
			discard[epoch] = true
		}
	}
	return discard, maxEpoch
}

// replayShard restores one shard: install the checkpoint, then the WAL
// suffix above it, in strict index order, all under one latch hold.
// Data records of discarded epochs consume their index — the log
// numbering is shared with surviving records — but their writes are not
// applied: the torn commit never happened, on any shard.
func (m *Manager) replayShard(i int, b *shardBoot, discard map[uint64]bool) error {
	eng := m.store.Shard(i)
	eng.LockCommit()
	defer eng.UnlockCommit()
	if len(b.kvs) > 0 {
		eng.ApplyLocked(b.kvs)
	}
	head, lastEpoch := b.ckptIdx, b.ckptEpoch
	for _, e := range b.entries {
		if e.kind != walData {
			continue
		}
		rec := e.rec
		if rec.Index <= b.ckptIdx {
			continue // pre-checkpoint residue in the active segment
		}
		if rec.Index != head+1 {
			return fmt.Errorf("durable: shard %d WAL gap: record %d after %d (checkpoint %d)",
				i, rec.Index, head, b.ckptIdx)
		}
		head = rec.Index
		if rec.Cross() && discard[rec.Epoch] {
			m.opts.Flight.Shard(i).Record(flight.EvReconcileDiscard, 0, i, rec.Epoch)
			continue
		}
		eng.ApplyLocked(rec.Writes)
		if rec.Epoch > lastEpoch {
			lastEpoch = rec.Epoch
		}
	}
	b.head, b.lastEpoch = head, lastEpoch
	return nil
}

// Append implements engine.CommitLog (unvalued installs).
func (ms *managedShard) Append(writes map[string][]byte) { ms.AppendValued(writes, 0) }

// AppendValued implements engine.ValuedCommitLog: called under the shard
// latch for every install, it writes the WAL and accrues the shard's
// pending-value for checkpoint prioritization. Publication to the
// replication log is deferred to the Sync boundary (see the type
// comment); under FsyncAlways the append itself synced, so the record
// ships immediately unless queued behind a gated cross-shard record.
func (ms *managedShard) AppendValued(writes map[string][]byte, value float64) {
	ms.appendRecord(writes, value, 0, nil)
}

// AppendCross implements engine.CrossCommitLog: one shard's part of a
// cross-shard commit, stamped with the combiner's pre-allocated epoch
// and participant set. The record is gated — it ships only after
// ReleaseCross reports the epoch's decision durable.
func (ms *managedShard) AppendCross(writes map[string][]byte, value float64, epoch uint64, shards []int) {
	ms.appendRecord(writes, value, epoch, shards)
}

func (ms *managedShard) appendRecord(writes map[string][]byte, value float64, epoch uint64, shards []int) {
	cross := len(shards) > 1
	ms.mu.Lock()
	idx := ms.next
	ms.next++
	if epoch == 0 {
		// Standalone commits stamp their epoch here, under the shard
		// latch, so per-shard epoch order matches log order; cross-shard
		// epochs were allocated by the combiner under every participant's
		// latch, which preserves the same invariant.
		epoch = ms.m.epochs.Next()
	}
	if epoch > ms.maxEpoch {
		ms.maxEpoch = epoch
	}
	ms.appendsSince++
	if value > 0 {
		ms.pendingValue += value
	}
	due := ms.m.opts.CkptEvery > 0 && ms.appendsSince >= ms.m.opts.CkptEvery
	rec := repl.Record{Index: idx, Epoch: epoch, Shards: shards, Writes: writes}
	err := ms.wal.Append(rec)
	if err != nil {
		ms.m.errs.Add(1)
		ms.flight.Record(flight.EvWalError, 0, ms.idx, epoch)
	} else {
		if cross {
			ms.gated[epoch] = struct{}{}
		}
		if ms.replLog != nil {
			if ms.m.opts.Fsync == FsyncAlways && idx > ms.synced {
				ms.synced = idx // Append synced inline
			}
			ms.unshipped = append(ms.unshipped, shipEntry{rec: rec, gated: cross})
			ms.shipLocked()
		}
	}
	ms.mu.Unlock()
	ms.m.fail(err)

	if due {
		select {
		case ms.m.kick <- struct{}{}:
		default:
		}
	}
}

// AppendIntent implements engine.IntentLogger: the INTENT record a
// cross-shard commit writes to every participant ahead of the epoch's
// data records, under this shard's commit latch.
func (ms *managedShard) AppendIntent(epoch uint64, shards []int) error {
	err := ms.wal.AppendIntent(epoch, shards)
	if err != nil {
		ms.m.errs.Add(1)
		ms.flight.Record(flight.EvWalError, 0, ms.idx, epoch)
		ms.m.fail(err)
		return err
	}
	ms.flight.Record(flight.EvIntent, 0, ms.idx, epoch)
	return nil
}

// AppendDecision writes the epoch's decision record — the cross-shard
// commit point. Called without the shard latch, strictly after round 1
// made every participant's intents and data durable; the caller syncs
// this WAL afterwards (round 2).
func (ms *managedShard) AppendDecision(epoch uint64) error {
	err := ms.wal.AppendDecision(epoch)
	if err != nil {
		ms.m.errs.Add(1)
		ms.flight.Record(flight.EvWalError, 0, ms.idx, epoch)
		ms.m.fail(err)
		return err
	}
	ms.flight.Record(flight.EvDecision, 0, ms.idx, epoch)
	return nil
}

// ReleaseCross un-gates the epoch's record for replication shipping: its
// decision is durable, so a crash can no longer discard it. Ships the
// newly eligible prefix.
func (ms *managedShard) ReleaseCross(epoch uint64) {
	ms.mu.Lock()
	delete(ms.gated, epoch)
	for i := range ms.unshipped {
		if ms.unshipped[i].rec.Epoch == epoch {
			ms.unshipped[i].gated = false
			break
		}
	}
	if ms.replLog != nil {
		ms.shipLocked()
	}
	ms.mu.Unlock()
}

// shipLocked publishes the head run of unshipped records that are both
// fsync-covered and un-gated. Order is the append order — a gated or
// unsynced record holds everything behind it, keeping replLog in index
// lockstep with the WAL. Caller holds ms.mu.
func (ms *managedShard) shipLocked() {
	n := 0
	for _, e := range ms.unshipped {
		if e.gated || e.rec.Index > ms.synced {
			break
		}
		ms.replLog.AppendStamped(e.rec.Writes, e.rec.Epoch, e.rec.Shards)
		n++
	}
	if n > 0 {
		ms.unshipped = ms.unshipped[n:]
		if len(ms.unshipped) == 0 {
			ms.unshipped = nil // release the backing array
		}
	}
}

// LastEpoch implements engine.EpochReporter: the newest commit epoch
// appended to this shard's WAL. The engine reads it under the shard
// latch right after an install, so for a standalone commit it is
// exactly the epoch appendRecord just allocated for that install.
func (ms *managedShard) LastEpoch() uint64 {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.maxEpoch
}

// Sync implements engine.CommitSyncer: one WAL sync per commit batch,
// then publication of the newly covered records to the replication log.
// The engine (and the cross-shard/replica apply paths) call it before
// any commit of the batch is acknowledged, so subscribers only ever
// stream records that are already durable here. The sync watermark is
// captured BEFORE the fsync: a record appended concurrently (by the next
// batch, under the shard latch) after this fsync returned would
// otherwise be published without being durable yet — the exact
// disown-and-reissue hazard sync-before-ship exists to prevent.
func (ms *managedShard) Sync() error {
	ms.mu.Lock()
	last := ms.next - 1
	watermark := ms.maxEpoch
	ms.mu.Unlock()
	if err := ms.wal.Sync(); err != nil {
		ms.m.errs.Add(1)
		// Tag the failing sync in the flight ring: once with the shard's
		// epoch watermark, then once per cross-shard epoch still gated
		// (undecided) here — exactly the epochs recovery will reconcile,
		// so the walfail dump names them before the fail-stop.
		ms.flight.Record(flight.EvFsyncError, 0, ms.idx, watermark)
		ms.mu.Lock()
		gated := make([]uint64, 0, len(ms.gated))
		for e := range ms.gated {
			gated = append(gated, e)
		}
		ms.mu.Unlock()
		sort.Slice(gated, func(i, j int) bool { return gated[i] < gated[j] })
		for _, e := range gated {
			ms.flight.Record(flight.EvFsyncError, 0, ms.idx, e)
		}
		// A broken WAL also stops shipping: replicas must not apply
		// records this primary can no longer recover. The queue is
		// simply never drained further — the WAL is sticky-broken, the
		// operator policy is fail-stop.
		ms.m.fail(err)
		return err
	}
	ms.flight.Record(flight.EvFsync, 0, ms.idx, watermark)
	ms.mu.Lock()
	if last > ms.synced {
		ms.synced = last
	}
	if ms.replLog != nil {
		ms.shipLocked()
	}
	ms.mu.Unlock()
	return nil
}

// checkpointLoop runs automatic checkpoints: each kick checkpoints every
// shard whose WAL grew past CkptEvery since its last checkpoint, highest
// pending-value first. Failures are counted (dur_errors in STATS) and
// logged — once per distinct error message, since a persistently full
// disk would otherwise log on every kick.
func (m *Manager) checkpointLoop() {
	defer close(m.done)
	lastLogged := ""
	for {
		select {
		case <-m.stop:
			return
		case <-m.kick:
		}
		due := m.plan(func(ms *managedShard, appends int) bool {
			return m.opts.CkptEvery > 0 && appends >= m.opts.CkptEvery
		})
		for _, ms := range due {
			select {
			case <-m.stop:
				return
			default:
			}
			if err := m.checkpointShard(ms); err != nil {
				if msg := err.Error(); msg != lastLogged {
					lastLogged = msg
					slog.Warn("durable: checkpoint failed; will retry and WAL keeps growing",
						"shard", ms.idx, "err", err)
				}
			} else {
				lastLogged = ""
			}
		}
	}
}

// plan returns the shards selected by keep, ordered by pending value
// (descending; append count breaks ties) — the value-cognizant
// checkpoint order: the shard holding the most not-yet-durable value is
// captured first.
func (m *Manager) plan(keep func(ms *managedShard, appends int) bool) []*managedShard {
	type cand struct {
		ms      *managedShard
		value   float64
		appends int
	}
	var cands []cand
	for _, ms := range m.shards {
		ms.mu.Lock()
		v, n := ms.pendingValue, ms.appendsSince
		ms.mu.Unlock()
		if keep(ms, n) {
			cands = append(cands, cand{ms, v, n})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].value != cands[j].value {
			return cands[i].value > cands[j].value
		}
		return cands[i].appends > cands[j].appends
	})
	out := make([]*managedShard, len(cands))
	for i, c := range cands {
		out[i] = c.ms
	}
	return out
}

// CheckpointAll checkpoints every shard with records since its last
// checkpoint, highest pending-value first, and returns the shard indices
// in the order they were captured (the CKPT verb's work list). Shards
// whose state did not change are skipped.
func (m *Manager) CheckpointAll() ([]int, error) {
	var order []int
	var firstErr error
	for _, ms := range m.plan(func(_ *managedShard, appends int) bool { return appends > 0 }) {
		if err := m.checkpointShard(ms); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		order = append(order, ms.idx)
	}
	return order, firstErr
}

// checkpointShard captures one shard: rotate the WAL (so every earlier
// segment becomes trimmable as a whole file), snapshot the shard's state
// and its commit-log head under one latch hold, write the checkpoint
// atomically, then trim WAL segments and advance the in-memory log's
// durability floor.
func (m *Manager) checkpointShard(ms *managedShard) error {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	if met := m.opts.Metrics; met != nil {
		start := time.Now()
		defer func() { met.CheckpointSeconds.Observe(int64(time.Since(start))) }()
	}
	if err := ms.wal.Rotate(); err != nil {
		m.errs.Add(1)
		return err
	}
	eng := m.store.Shard(ms.idx)
	eng.LockCommit()
	ms.mu.Lock()
	head := ms.next - 1
	epoch := ms.maxEpoch
	coveredAppends := ms.appendsSince
	coveredValue := ms.pendingValue
	gated := make([]uint64, 0, len(ms.gated))
	for e := range ms.gated {
		gated = append(gated, e)
	}
	ms.mu.Unlock()
	kvs := make(map[string][]byte)
	eng.RangeLocked(func(k string, v []byte) bool {
		kvs[k] = append([]byte(nil), v...)
		return true
	})
	eng.UnlockCommit()

	// The snapshot may include cross-shard installs whose decision is not
	// yet durable. Publishing a checkpoint (with epoch watermark >= their
	// epochs) before they decide would promote them to "decided" under
	// recovery's coordinator-checkpoint rule — tearing a commit the other
	// participants discard. Wait the captured undecided epochs out (they
	// are mid-protocol, at most two fsyncs away); if the WAL breaks they
	// never decide, and the checkpoint is abandoned with the failure.
	if err := ms.waitReleased(gated); err != nil {
		m.errs.Add(1)
		return err
	}
	if err := writeCheckpoint(ms.dir, ms.idx, head, epoch, kvs); err != nil {
		m.errs.Add(1)
		return err
	}
	ms.flight.Record(flight.EvCheckpoint, 0, ms.idx, epoch)
	ms.mu.Lock()
	prev := ms.ckptIdx
	ms.ckptIdx = head
	// Subtract what this checkpoint covered rather than zeroing: commits
	// that landed during the (unlatched) file write are above head, so
	// their append counts and pending value must keep driving the next
	// checkpoint's timing and priority.
	ms.appendsSince -= coveredAppends
	ms.pendingValue -= coveredValue
	if ms.pendingValue < 0 {
		ms.pendingValue = 0
	}
	ms.mu.Unlock()
	// On-disk history is pruned only below the PREVIOUS checkpoint: the
	// newest-but-one checkpoint and the WAL suffix above it survive
	// until the next pass, so recovery can fall back if the newest file
	// is ever found corrupt. The in-memory log has no such constraint —
	// it serves joiners (who SNAP live state), never recovery — so its
	// durability floor advances to the new head.
	pruneCheckpoints(ms.dir, prev)
	ms.wal.TrimSegments(prev)
	if ms.replLog != nil {
		// Trimming advances to min(checkpoint, min acked subscriber,
		// retention window) — the log enforces the floors itself.
		ms.replLog.SetDurableFloor(head)
	}
	m.ckpts.Add(1)
	return nil
}

// waitReleased blocks until none of the given cross-shard epochs is
// still gated on this shard (their decisions are durable), any WAL is
// sticky-broken (they never will be), or a timeout expires.
func (ms *managedShard) waitReleased(epochs []uint64) error {
	if len(epochs) == 0 {
		return nil
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		ms.mu.Lock()
		live := false
		for _, e := range epochs {
			if _, ok := ms.gated[e]; ok {
				live = true
				break
			}
		}
		ms.mu.Unlock()
		if !live {
			return nil
		}
		if err := ms.m.Err(); err != nil {
			return fmt.Errorf("durable: shard %d checkpoint abandoned, cross-shard commit cannot decide: %w", ms.idx, err)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("durable: shard %d checkpoint stalled on undecided cross-shard epochs %v", ms.idx, epochs)
		}
		time.Sleep(time.Millisecond)
	}
}

// CheckpointIndex returns shard's newest checkpoint log index (0 before
// the first checkpoint).
func (m *Manager) CheckpointIndex(shard int) uint64 {
	ms := m.shards[shard]
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.ckptIdx
}

// PendingValues returns each shard's summed transaction value since
// its last checkpoint — the same accounting the checkpoint scheduler
// ranks shards by. The cluster placement planner consumes it to rank
// shard moves by expected value at stake.
func (m *Manager) PendingValues() []float64 {
	out := make([]float64, len(m.shards))
	for i, ms := range m.shards {
		ms.mu.Lock()
		out[i] = ms.pendingValue
		ms.mu.Unlock()
	}
	return out
}

// RecoveredIndex reports the sum of per-shard commit-log indices
// restored at Open — zero for a cold start, the total acknowledged
// commit count survived for a restart.
func (m *Manager) RecoveredIndex() uint64 { return m.recovered }

// Stats returns a snapshot of the durability counters.
func (m *Manager) Stats() Stats {
	s := Stats{
		RecoveredIndex: m.recovered,
		Checkpoints:    m.ckpts.Load(),
		Errors:         m.errs.Load(),
		Reconciled:     m.reconciled,
	}
	for _, ms := range m.shards {
		s.WALAppends += ms.wal.appends.Load()
		s.WALFsyncs += ms.wal.fsyncs.Load()
		s.Intents += ms.wal.intents.Load()
	}
	return s
}

// Err returns the first sticky WAL failure across shards, if any.
func (m *Manager) Err() error {
	for _, ms := range m.shards {
		if err := ms.wal.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Close stops the checkpointer and closes every WAL, syncing pending
// bytes. The store must be quiesced first (no in-flight commits).
func (m *Manager) Close() error {
	close(m.stop)
	<-m.done
	var firstErr error
	for _, ms := range m.shards {
		ms.Sync() // flush + ship any batch-tail records
		if err := ms.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
