// Chaos fault injection. The e2e chaos harness (scripts/e2e_chaos.sh)
// needs to land crashes and I/O failures inside windows that are
// otherwise timing luck — mid-cross-shard-commit, between the two fsync
// rounds, during a replica's apply. These env-gated hooks widen and
// force those windows deterministically from outside the process:
//
//	SCC_FAULT_FSYNC_DELAY_MS   stretch every WAL fsync by this many
//	                           milliseconds (widens the intent-durable/
//	                           decision-durable window for kill -9)
//	SCC_FAULT_FSYNC_ERR_AFTER  after N successful fsyncs (counted across
//	                           every WAL in the process), every further
//	                           fsync fails with an injected error —
//	                           exercising the sync-gated verdict and
//	                           fail-stop paths without real disk faults
//
// The replica apply stall (SCC_FAULT_APPLY_DELAY_MS) lives in
// internal/repl next to the apply loop it delays. Unset variables are
// parsed once at init and cost one atomic add per fsync; production
// processes simply never set them.

package durable

import (
	"errors"
	"os"
	"strconv"
	"sync/atomic"
	"time"
)

var errInjectedFsync = errors.New("durable: injected fsync fault (SCC_FAULT_FSYNC_ERR_AFTER)")

var (
	faultFsyncDelay time.Duration
	faultFsyncArmed bool
	faultFsyncLeft  atomic.Int64
)

func init() {
	if ms, err := strconv.Atoi(os.Getenv("SCC_FAULT_FSYNC_DELAY_MS")); err == nil && ms > 0 {
		faultFsyncDelay = time.Duration(ms) * time.Millisecond
	}
	if n, err := strconv.Atoi(os.Getenv("SCC_FAULT_FSYNC_ERR_AFTER")); err == nil && n >= 0 {
		faultFsyncArmed = true
		faultFsyncLeft.Store(int64(n))
	}
}

// faultFsyncErr reports whether this fsync must fail: true once the
// process-wide countdown is spent. Called with the WAL lock held, right
// before the real fsync, so an injected failure is indistinguishable
// from a device error to everything above.
func faultFsyncErr() bool {
	return faultFsyncArmed && faultFsyncLeft.Add(-1) < 0
}
