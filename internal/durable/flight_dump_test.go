// Flight-recorder fault dumps, end to end: a cross-shard commit whose
// participant WAL fails must auto-dump the black box before the
// fail-stop hook fires, boot reconciliation of the resulting undecided
// epoch must dump again, and the merge tool's epoch-joined timeline over
// both dumps must tell the whole story — coordinator intent, failing
// participant, reconciliation discard — with no operator intervention.
package durable

import (
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs/flight"
	"repro/internal/shard"
)

// waitForDump polls for a dump file with the given reason suffix.
func waitForDump(t *testing.T, dir, reason string) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		entries, err := os.ReadDir(dir)
		if err == nil {
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), "-"+reason+".events") {
					return filepath.Join(dir, e.Name())
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no %s flight dump appeared in %s", reason, dir)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFlightDumpsAndMergedTimeline(t *testing.T) {
	k0, k1 := shardKeys(t)
	dir := t.TempDir()
	flightDir := filepath.Join(dir, "flight")

	// "Primary" process: a healthy cross commit, then a doomed one whose
	// participant WAL is broken (as a device fault would leave it).
	flA := flight.New(2, 0)
	flA.SetNode("primary")
	onErr := make(chan error, 4)
	st := shard.Open(shard.Config{Shards: 2})
	m, err := Open(Options{Dir: dir, Flight: flA, OnError: func(e error) { onErr <- e }}, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	transfer := func(v0, v1 string) error {
		return st.Update([]string{k0, k1}, func(tx shard.Tx) error {
			if err := tx.Set(k0, []byte(v0)); err != nil {
				return err
			}
			return tx.Set(k1, []byte(v1))
		})
	}
	if err := transfer("10", "10"); err != nil {
		t.Fatal(err)
	}
	breakWAL(m, 1, errors.New("injected device failure"))
	err = transfer("3", "17")
	var se *engine.SyncError
	if !errors.As(err, &se) {
		t.Fatalf("cross commit over broken WAL returned %v, want *engine.SyncError", err)
	}
	select {
	case <-onErr:
	case <-time.After(5 * time.Second):
		t.Fatal("OnError fail-stop hook never fired")
	}
	// The walfail dump strictly precedes the hook, so it exists by now.
	walfailPath := waitForDump(t, flightDir, "walfail")
	st.Close()
	m.Close() // the broken shard's close error is the fault itself

	// "Recovery" process: boot reconciliation must discard the undecided
	// epoch (coordinator holds intent + data, no decision) and dump.
	flB := flight.New(2, 0)
	flB.SetNode("recovery")
	st2 := shard.Open(shard.Config{Shards: 2})
	m2, err := Open(Options{Dir: dir, Flight: flB}, st2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	defer m2.Close()
	if got := m2.Stats().Reconciled; got != 1 {
		t.Fatalf("reconciled = %d, want 1", got)
	}
	if got := get(t, st2, k0); got != "10" {
		t.Errorf("%s = %q after recovery, want the pre-fault 10", k0, got)
	}
	reconcilePath := waitForDump(t, flightDir, "reconcile")

	// Merge the two dumps the way an operator (or sccload -events-merge)
	// would and read the failed epoch's causal story off the timeline.
	var dumps []flight.Dump
	for _, p := range []string{walfailPath, reconcilePath} {
		d, err := flight.ParseDumpFile(p)
		if err != nil {
			t.Fatalf("parse %s: %v", p, err)
		}
		dumps = append(dumps, d)
	}
	discarded := uint64(0)
	for _, e := range dumps[1].Events {
		if e.Name == flight.EvReconcileDiscard {
			discarded = e.Epoch
		}
	}
	if discarded == 0 {
		t.Fatalf("reconcile dump carries no %s event: %+v", flight.EvReconcileDiscard, dumps[1].Events)
	}

	var buf strings.Builder
	if err := flight.MergeTimeline(dumps, &buf); err != nil {
		t.Fatal(err)
	}
	timeline := buf.String()
	_, epochBlock, found := strings.Cut(timeline, "epoch "+strconv.FormatUint(discarded, 10)+"\n")
	if !found {
		t.Fatalf("merged timeline has no block for discarded epoch %d:\n%s", discarded, timeline)
	}
	if i := strings.Index(epochBlock, "\nepoch "); i >= 0 {
		epochBlock = epochBlock[:i]
	}
	for _, want := range []struct{ node, event string }{
		{"primary", flight.EvIntent},            // coordinator wrote its intent
		{"primary", flight.EvWalError},          // the participant's WAL failed
		{"recovery", flight.EvReconcileDiscard}, // reconciliation discarded the epoch
	} {
		found := false
		for _, line := range strings.Split(epochBlock, "\n") {
			if strings.Contains(line, want.node) && strings.Contains(line, want.event) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("epoch %d timeline is missing %s on %s:\n%s", discarded, want.event, want.node, epochBlock)
		}
	}
}
