package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/repl"
	"repro/internal/shard"
)

// openStore opens a bare sharded store plus a manager over dir. feed may
// be nil.
func openStore(t *testing.T, dir string, shards int, opts Options, withFeed bool) (*shard.Store, *repl.Feed, *Manager) {
	t.Helper()
	st := shard.Open(shard.Config{Shards: shards})
	var feed *repl.Feed
	if withFeed {
		feed = repl.NewFeed(shards, nil)
	}
	opts.Dir = dir
	m, err := Open(opts, st, feed)
	if err != nil {
		t.Fatal(err)
	}
	return st, feed, m
}

// put commits key=val with the given transaction value via the normal
// update path (so the commit flows through the commit-log sink).
func put(t *testing.T, st *shard.Store, key, val string, value float64) {
	t.Helper()
	err := st.UpdateValued(value, []string{key}, func(tx shard.Tx) error {
		return tx.Set(key, []byte(val))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func get(t *testing.T, st *shard.Store, key string) string {
	t.Helper()
	v, ok := st.Get(key)
	if !ok {
		return ""
	}
	return string(v)
}

// TestRecoverRoundTrip: commits survive a close-and-reopen via the WAL
// alone (no checkpoint), including cross-shard commits, and the restarted
// store's commit log resumes at the recovered index.
func TestRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, feed, m := openStore(t, dir, 4, Options{}, true)
	if m.RecoveredIndex() != 0 {
		t.Fatalf("cold start recovered %d, want 0", m.RecoveredIndex())
	}
	const n = 40
	for i := 0; i < n; i++ {
		put(t, st, "k"+strconv.Itoa(i), strconv.Itoa(i*i), 0)
	}
	// A cross-shard transfer exercises the ApplyValuedLocked log path.
	err := st.Update([]string{"k0", "k1", "k2", "k3"}, func(tx shard.Tx) error {
		for _, k := range []string{"k0", "k1", "k2", "k3"} {
			if err := tx.Set(k, []byte("777")); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	heads := feed.Heads()
	var total uint64
	for _, h := range heads {
		total += h
	}
	st.Close()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	st2, feed2, m2 := openStore(t, dir, 4, Options{}, true)
	defer m2.Close()
	if m2.RecoveredIndex() != total {
		t.Fatalf("recovered index %d, want %d", m2.RecoveredIndex(), total)
	}
	for i := 0; i < 4; i++ {
		if got := get(t, st2, "k"+strconv.Itoa(i)); got != "777" {
			t.Fatalf("k%d = %q after recovery, want 777", i, got)
		}
	}
	for i := 4; i < n; i++ {
		if got := get(t, st2, "k"+strconv.Itoa(i)); got != strconv.Itoa(i*i) {
			t.Fatalf("k%d = %q after recovery, want %d", i, got, i*i)
		}
	}
	// The replication log resumes at the recovered per-shard heads, and
	// new commits get the next indices — replicas subscribed above the
	// base stream seamlessly across the restart.
	for i, h := range feed2.Heads() {
		if h != heads[i] {
			t.Fatalf("shard %d log head after recovery = %d, want %d", i, h, heads[i])
		}
	}
	put(t, st2, "k0", "888", 0)
	sh := st2.ShardOf("k0")
	recs, _, err := feed2.Log(sh).From(heads[sh]+1, 0)
	if err != nil || len(recs) != 1 || recs[0].Index != heads[sh]+1 {
		t.Fatalf("post-recovery append: recs=%+v err=%v, want one record at %d", recs, err, heads[sh]+1)
	}
}

// TestCheckpointRecovery: state recovers from checkpoint + WAL suffix;
// pre-checkpoint WAL segments are gone from disk; recovery tolerates the
// trimmed prefix.
func TestCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	st, _, m := openStore(t, dir, 2, Options{}, true)
	for i := 0; i < 20; i++ {
		put(t, st, "a"+strconv.Itoa(i), "1", 0)
	}
	order, err := m.CheckpointAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Fatalf("CheckpointAll captured %d shards, want 2", len(order))
	}
	for i := 0; i < 2; i++ {
		if m.CheckpointIndex(i) == 0 {
			t.Fatalf("shard %d checkpoint index still 0", i)
		}
	}
	// Post-checkpoint commits land in the WAL suffix; a second pass makes
	// the first checkpoint "previous" — only history below IT is pruned,
	// so the newest-but-one checkpoint stays recoverable.
	for i := 0; i < 5; i++ {
		put(t, st, "b"+strconv.Itoa(i), "2", 0)
	}
	if _, err := m.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		put(t, st, "c"+strconv.Itoa(i), "3", 0)
	}
	st.Close()
	m.Close()

	// Per shard: one segment covering (ckpt1, ckpt2], one active — the
	// pre-ckpt1 segments are gone; and both checkpoint files survive.
	var segs, ckpts int
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			if _, ok := parseSegmentName(d.Name()); ok {
				segs++
			}
			if _, ok := parseCkptName(d.Name()); ok {
				ckpts++
			}
		}
		return nil
	})
	if segs != 4 {
		t.Fatalf("%d WAL segments on disk after two checkpoints, want 4 (previous checkpoint's suffix kept)", segs)
	}
	if ckpts != 4 {
		t.Fatalf("%d checkpoint files on disk, want 4 (newest two per shard)", ckpts)
	}

	st2, _, m2 := openStore(t, dir, 2, Options{}, true)
	m2.Close()
	if m2.RecoveredIndex() != 30 {
		t.Fatalf("recovered index %d, want 30", m2.RecoveredIndex())
	}
	check := func(st *shard.Store) {
		t.Helper()
		for i := 0; i < 20; i++ {
			if got := get(t, st, "a"+strconv.Itoa(i)); got != "1" {
				t.Fatalf("a%d = %q, want 1 (from checkpoint)", i, got)
			}
		}
		for i := 0; i < 5; i++ {
			if got := get(t, st, "b"+strconv.Itoa(i)); got != "2" {
				t.Fatalf("b%d = %q, want 2", i, got)
			}
			if got := get(t, st, "c"+strconv.Itoa(i)); got != "3" {
				t.Fatalf("c%d = %q, want 3 (from WAL suffix)", i, got)
			}
		}
	}
	check(st2)
	st2.Close()

	// Fallback oracle: corrupt every newest checkpoint file; recovery
	// must rebuild identical state from the previous checkpoint plus the
	// preserved WAL suffix — a bit-rotted checkpoint costs replay time,
	// never data.
	for s := 0; s < 2; s++ {
		sdir := filepath.Join(dir, fmt.Sprintf("shard-%04d", s))
		entries, err := os.ReadDir(sdir)
		if err != nil {
			t.Fatal(err)
		}
		newest, path := uint64(0), ""
		for _, e := range entries {
			if idx, ok := parseCkptName(e.Name()); ok && idx >= newest {
				newest, path = idx, filepath.Join(sdir, e.Name())
			}
		}
		if path == "" {
			t.Fatalf("shard %d has no checkpoint files", s)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0xFF // break the CRC
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st3, _, m3 := openStore(t, dir, 2, Options{}, true)
	defer m3.Close()
	if m3.RecoveredIndex() != 30 {
		t.Fatalf("recovered index with corrupt newest checkpoints = %d, want 30", m3.RecoveredIndex())
	}
	check(st3)
	st3.Close()
}

// TestCheckpointPriority pins the value-cognizant ordering: shards are
// captured highest pending-value first.
func TestCheckpointPriority(t *testing.T) {
	dir := t.TempDir()
	st, _, m := openStore(t, dir, 8, Options{}, false)
	defer m.Close()

	// One key per shard, committed with distinct values. Find a key for
	// each shard first.
	keyOf := make(map[int]string)
	for i := 0; len(keyOf) < 8 && i < 10000; i++ {
		k := "p" + strconv.Itoa(i)
		if _, ok := keyOf[st.ShardOf(k)]; !ok {
			keyOf[st.ShardOf(k)] = k
		}
	}
	// Shard s accrues pending value 10*s (+1 so shard 0 is nonzero).
	for s := 0; s < 8; s++ {
		put(t, st, keyOf[s], "1", float64(10*s+1))
	}
	order, err := m.CheckpointAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 8 {
		t.Fatalf("captured %d shards, want 8", len(order))
	}
	for i, s := range order {
		if want := 7 - i; s != want {
			t.Fatalf("checkpoint order %v: position %d is shard %d, want %d (descending pending value)", order, i, s, want)
		}
	}
	// Pending value is consumed by the pass: nothing left to capture.
	if order, _ := m.CheckpointAll(); len(order) != 0 {
		t.Fatalf("second CheckpointAll captured %v, want nothing", order)
	}
	st.Close()
}

// TestAutoCheckpoint: CkptEvery triggers the background checkpointer.
func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st, _, m := openStore(t, dir, 1, Options{CkptEvery: 8}, false)
	defer m.Close()
	for i := 0; i < 64; i++ {
		put(t, st, "k", strconv.Itoa(i), 0)
	}
	// Poll on the clock, not on more puts: on a single-CPU runner a
	// tight put loop can starve the background checkpointer goroutine.
	deadline := time.Now().Add(10 * time.Second)
	for m.Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background checkpointer never fired despite CkptEvery=8")
		}
		put(t, st, "k2", "1", 0) // keep re-kicking
		time.Sleep(time.Millisecond)
	}
	st.Close()
}

// TestStatsAndFsyncAccounting sanity-checks the counters the server
// exports.
func TestStatsAndFsyncAccounting(t *testing.T) {
	dir := t.TempDir()
	st, _, m := openStore(t, dir, 2, Options{Fsync: FsyncAlways}, false)
	for i := 0; i < 10; i++ {
		put(t, st, "k"+strconv.Itoa(i), "1", 0)
	}
	s := m.Stats()
	if s.WALAppends != 10 {
		t.Fatalf("wal_appends = %d, want 10", s.WALAppends)
	}
	if s.WALFsyncs < 10 {
		t.Fatalf("wal_fsyncs = %d, want >= 10 under FsyncAlways", s.WALFsyncs)
	}
	if s.Errors != 0 {
		t.Fatalf("errors = %d, want 0", s.Errors)
	}
	st.Close()
	m.Close()
}

// TestTrimSatelliteWiring: after a checkpoint, the in-memory replication
// log trims below min(checkpoint, min acked subscriber).
func TestTrimSatelliteWiring(t *testing.T) {
	dir := t.TempDir()
	st, feed, m := openStore(t, dir, 1, Options{}, true)
	defer m.Close()
	for i := 0; i < 10; i++ {
		put(t, st, "k", strconv.Itoa(i), 0)
	}
	sub := feed.Subscribe()
	sub.Track(0)
	sub.Ack(0, 6)
	if _, err := m.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	// Checkpoint at 10, min acked 6: the log trims to 6.
	if base := feed.Log(0).Base(); base != 6 {
		t.Fatalf("log base after checkpoint = %d, want 6 (min acked)", base)
	}
	if feed.Trimmed() != 6 {
		t.Fatalf("trimmed = %d, want 6", feed.Trimmed())
	}
	// Acking further releases up to the checkpoint, not past it.
	sub.Ack(0, 10)
	if base := feed.Log(0).Base(); base != 10 {
		t.Fatalf("log base after full ack = %d, want 10 (checkpoint floor)", base)
	}
	st.Close()
}

// TestCorruptFallbackSegmentKeepsSuffix: damage confined to a retained
// pre-checkpoint WAL segment must not cost the acknowledged
// post-checkpoint records in later segments — the checkpoint covers the
// damaged span.
func TestCorruptFallbackSegmentKeepsSuffix(t *testing.T) {
	dir := t.TempDir()
	st, _, m := openStore(t, dir, 1, Options{}, false)
	for i := 0; i < 10; i++ {
		put(t, st, "k"+strconv.Itoa(i), "1", 0)
	}
	if _, err := m.CheckpointAll(); err != nil { // ckpt at 10; wal-1 kept as fallback
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		put(t, st, "m"+strconv.Itoa(i), "2", 0)
	}
	st.Close()
	m.Close()

	// Bit-rot a record in the middle of the retained pre-checkpoint
	// segment (wal-1, records 1..10).
	seg := filepath.Join(dir, "shard-0000", segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, _, m2 := openStore(t, dir, 1, Options{}, false)
	defer m2.Close()
	if m2.RecoveredIndex() != 15 {
		t.Fatalf("recovered index %d, want 15 (checkpoint + post-checkpoint WAL suffix)", m2.RecoveredIndex())
	}
	for i := 0; i < 10; i++ {
		if got := get(t, st2, "k"+strconv.Itoa(i)); got != "1" {
			t.Fatalf("k%d = %q, want 1", i, got)
		}
	}
	for i := 0; i < 5; i++ {
		if got := get(t, st2, "m"+strconv.Itoa(i)); got != "2" {
			t.Fatalf("m%d = %q, want 2 (post-checkpoint record lost to pre-checkpoint damage)", i, got)
		}
	}
	// And the WAL accepts new appends contiguously after this recovery.
	put(t, st2, "n0", "3", 0)
	if m2.Err() != nil {
		t.Fatalf("WAL broke on post-recovery append: %v", m2.Err())
	}
	st2.Close()
}

// TestShardCountPinned: a data directory refuses to open under a
// different shard count instead of silently misrouting recovered keys.
func TestShardCountPinned(t *testing.T) {
	dir := t.TempDir()
	st, _, m := openStore(t, dir, 4, Options{}, false)
	put(t, st, "k", "1", 0)
	st.Close()
	m.Close()

	st2 := shard.Open(shard.Config{Shards: 8})
	defer st2.Close()
	if _, err := Open(Options{Dir: dir}, st2, nil); err == nil ||
		!strings.Contains(err.Error(), "laid out for 4 shards") {
		t.Fatalf("Open with wrong shard count = %v, want layout mismatch error", err)
	}

	// The right count still opens.
	st3, _, m3 := openStore(t, dir, 4, Options{}, false)
	if got := get(t, st3, "k"); got != "1" {
		t.Fatalf("k = %q after matched reopen, want 1", got)
	}
	st3.Close()
	m3.Close()
}

func TestOpenRejectsMismatchedFeed(t *testing.T) {
	st := shard.Open(shard.Config{Shards: 2})
	defer st.Close()
	if _, err := Open(Options{Dir: t.TempDir()}, st, repl.NewFeed(3, nil)); err == nil {
		t.Fatal("mismatched feed accepted")
	}
	if _, err := Open(Options{}, st, nil); err == nil {
		t.Fatal("empty dir accepted")
	}
}

// TestRecoveredStoreServesWhilePriorDataLarge is a smoke test that the
// recovery path scales past one segment and one batch: enough commits to
// span rotations and a checkpoint in the middle.
func TestRecoveredStoreServesWhilePriorDataLarge(t *testing.T) {
	dir := t.TempDir()
	st, _, m := openStore(t, dir, 4, Options{}, false)
	for i := 0; i < 300; i++ {
		put(t, st, fmt.Sprintf("n%d", i%50), strconv.Itoa(i), 0)
		if i == 150 {
			if _, err := m.CheckpointAll(); err != nil {
				t.Fatal(err)
			}
		}
	}
	snapshot := make(map[string]string)
	for i := 0; i < 50; i++ {
		snapshot["n"+strconv.Itoa(i)] = get(t, st, "n"+strconv.Itoa(i))
	}
	st.Close()
	m.Close()

	st2, _, m2 := openStore(t, dir, 4, Options{}, false)
	defer func() { st2.Close(); m2.Close() }()
	if m2.RecoveredIndex() != 300 {
		t.Fatalf("recovered %d records, want 300", m2.RecoveredIndex())
	}
	for k, v := range snapshot {
		if got := get(t, st2, k); got != v {
			t.Fatalf("%s = %q after recovery, want %q", k, got, v)
		}
	}
}
