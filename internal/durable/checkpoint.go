// Checkpoint files: a whole-shard snapshot of committed state at a
// recorded commit-log index, written tmp+rename so a crash mid-write
// leaves either the previous checkpoint or the new one, never a hybrid.
// The format is binary: a magic/version header, the shard and log index,
// the key count, length-prefixed key/value pairs, and a trailing CRC32
// over everything before it. Recovery loads the newest file whose CRC
// verifies and falls back to older ones (a half-renamed or bit-rotted
// checkpoint costs replay time, not correctness). For the fallback to be
// real, the previous checkpoint — and the WAL suffix above it — must
// outlive the new one: the manager prunes checkpoints below the
// *previous* index only, and trims WAL segments below it likewise, so
// at any instant the newest-but-one checkpoint plus surviving WAL can
// still rebuild the shard.

package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const ckptMagic = uint32(0x53434B32) // "SCK2": adds the commit-epoch watermark

func ckptName(index uint64) string { return fmt.Sprintf("ckpt-%020d.snap", index) }

func parseCkptName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".snap"), 10, 64)
	return n, err == nil
}

// writeCheckpoint atomically writes shard's snapshot at log index to
// dir. epoch is the shard's commit-epoch watermark at the capture: every
// record the checkpoint covers has epoch <= it, and (because the manager
// waits out undecided cross-shard epochs before writing) every covered
// cross-shard epoch is decided — which is what lets recovery treat
// "coordinator checkpoint epoch >= E" as a durable decision for E even
// after the decision record's segment is trimmed. It deliberately
// deletes nothing: pruning is pruneCheckpoints's job, under the
// manager's keep-the-previous policy.
func writeCheckpoint(dir string, shard int, index, epoch uint64, kvs map[string][]byte) error {
	buf := make([]byte, 0, 1024)
	buf = binary.LittleEndian.AppendUint32(buf, ckptMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(shard))
	buf = binary.LittleEndian.AppendUint64(buf, index)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(kvs)))
	for k, v := range kvs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(k)))
		buf = append(buf, k...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
		buf = append(buf, v...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))

	final := filepath.Join(dir, ckptName(index))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// The data must be stable before the rename publishes it: a renamed
	// checkpoint with unsynced contents could survive as a corrupt
	// "newest" file after an OS crash and shadow the older good one only
	// until the CRC check rejects it — sync anyway so the common case is
	// the clean one.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(dir)
	return nil
}

// pruneCheckpoints deletes checkpoint files below keepFrom. The manager
// passes the previous checkpoint's index, keeping the newest two files:
// if the newest turns out corrupt at recovery, its predecessor (whose
// WAL suffix was likewise preserved) still rebuilds the shard.
func pruneCheckpoints(dir string, keepFrom uint64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if idx, ok := parseCkptName(e.Name()); ok && idx < keepFrom {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// loadCheckpoint returns the newest valid checkpoint in dir: its log
// index, commit-epoch watermark, and key/value pairs. A missing
// checkpoint is (0, 0, nil, nil) — recovery then replays the WAL from
// index 1.
func loadCheckpoint(dir string, shard int) (uint64, uint64, map[string][]byte, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0, nil, err
	}
	var indices []uint64
	for _, e := range entries {
		if idx, ok := parseCkptName(e.Name()); ok && !e.IsDir() {
			indices = append(indices, idx)
		}
	}
	sort.Slice(indices, func(i, j int) bool { return indices[i] > indices[j] })
	for _, idx := range indices {
		epoch, kvs, err := readCheckpoint(filepath.Join(dir, ckptName(idx)), shard, idx)
		if err == nil {
			return idx, epoch, kvs, nil
		}
	}
	return 0, 0, nil, nil
}

func readCheckpoint(path string, shard int, index uint64) (uint64, map[string][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	if len(data) < 36 { // header 32 + crc 4
		return 0, nil, fmt.Errorf("durable: checkpoint %s too short", path)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return 0, nil, fmt.Errorf("durable: checkpoint %s CRC mismatch", path)
	}
	if binary.LittleEndian.Uint32(body) != ckptMagic {
		return 0, nil, fmt.Errorf("durable: checkpoint %s bad magic", path)
	}
	if got := binary.LittleEndian.Uint32(body[4:]); int(got) != shard {
		return 0, nil, fmt.Errorf("durable: checkpoint %s is for shard %d, not %d", path, got, shard)
	}
	if got := binary.LittleEndian.Uint64(body[8:]); got != index {
		return 0, nil, fmt.Errorf("durable: checkpoint %s carries index %d, name says %d", path, got, index)
	}
	epoch := binary.LittleEndian.Uint64(body[16:])
	n := binary.LittleEndian.Uint64(body[24:])
	payload := body[32:]
	kvs := make(map[string][]byte, n)
	for i := uint64(0); i < n; i++ {
		var k, v string
		var err error
		if k, payload, err = cutBytes(payload); err != nil {
			return 0, nil, err
		}
		if v, payload, err = cutBytes(payload); err != nil {
			return 0, nil, err
		}
		kvs[k] = []byte(v)
	}
	if len(payload) != 0 {
		return 0, nil, fmt.Errorf("durable: checkpoint %s has %d trailing bytes", path, len(payload))
	}
	return epoch, kvs, nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Best effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
