// Torn cross-shard commit recovery: the WAL is cut at every point of
// the two-round commit protocol (after each subset of per-shard intent
// and data appends, before and after the decision record), and boot
// reconciliation must recover all-or-nothing — a balanced transfer
// never surfaces half-applied, on any shard, under any cut. The
// companion sync-failure test pins the other half of the bugfix: a
// commit whose WAL sync failed must never return an OK verdict, on any
// install path.
package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/shard"
)

// crossPiece identifies one durable artifact of a 2-shard cross commit,
// in the order the protocol appends them: coordinator intent, then
// coordinator data (both under the latches), participant intent,
// participant data, and finally — after round 1 — the decision.
type crossPiece int

const (
	pieceIntent0 crossPiece = iota
	pieceData0
	pieceIntent1
	pieceData1
	pieceDecision
)

// shardKeys finds one key routing to each of two shards.
func shardKeys(t *testing.T) (k0, k1 string) {
	t.Helper()
	probe := shard.Open(shard.Config{Shards: 2})
	defer probe.Close()
	for i := 0; (k0 == "" || k1 == "") && i < 10000; i++ {
		k := fmt.Sprintf("tk%d", i)
		if probe.ShardOf(k) == 0 && k0 == "" {
			k0 = k
		} else if probe.ShardOf(k) == 1 && k1 == "" {
			k1 = k
		}
	}
	if k0 == "" || k1 == "" {
		t.Fatal("could not find keys for both shards")
	}
	return k0, k1
}

// sumKeys totals the integer values of keys (missing keys count 0).
func sumKeys(t *testing.T, st *shard.Store, keys ...string) int {
	t.Helper()
	total := 0
	for _, k := range keys {
		if v, ok := st.Get(k); ok {
			n, err := strconv.Atoi(string(v))
			if err != nil {
				t.Fatalf("non-integer value %q at %s", v, k)
			}
			total += n
		}
	}
	return total
}

func TestTornCrossShardRecovery(t *testing.T) {
	k0, k1 := shardKeys(t)
	const crossEpoch = 5
	crossShards := []int{0, 1}

	// The crash table: each case keeps a protocol-order prefix of the
	// cross commit's durable artifacts (a kill -9 cannot reorder
	// appends within one WAL). wantApplied: the transfer survived.
	cases := []struct {
		name        string
		pieces      []crossPiece
		wantApplied bool
		wantRecon   int64 // epochs boot reconciliation must discard
	}{
		{"crash-before-intents", nil, false, 0},
		{"crash-after-coord-intent", []crossPiece{pieceIntent0}, false, 0},
		{"crash-after-coord-data", []crossPiece{pieceIntent0, pieceData0}, false, 1},
		{"crash-after-part-intent", []crossPiece{pieceIntent0, pieceData0, pieceIntent1}, false, 1},
		{"crash-before-decision", []crossPiece{pieceIntent0, pieceData0, pieceIntent1, pieceData1}, false, 1},
		{"decision-durable", []crossPiece{pieceIntent0, pieceData0, pieceIntent1, pieceData1, pieceDecision}, true, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			has := make(map[crossPiece]bool, len(tc.pieces))
			for _, p := range tc.pieces {
				has[p] = true
			}
			// Baseline: one standalone record per shard (k0=10, k1=10),
			// then the surviving pieces of a transfer of 7 (k0=3, k1=17).
			buf0 := encodeRecord(nil, rec(1, k0, "10"))
			buf1 := encodeRecord(nil, rec(1, k1, "10"))
			if has[pieceIntent0] {
				buf0 = encodeIntent(buf0, crossEpoch, crossShards)
			}
			if has[pieceData0] {
				r := rec(2, k0, "3")
				r.Epoch, r.Shards = crossEpoch, crossShards
				buf0 = encodeRecord(buf0, r)
			}
			if has[pieceIntent1] {
				buf1 = encodeIntent(buf1, crossEpoch, crossShards)
			}
			if has[pieceData1] {
				r := rec(2, k1, "17")
				r.Epoch, r.Shards = crossEpoch, crossShards
				buf1 = encodeRecord(buf1, r)
			}
			if has[pieceDecision] {
				buf0 = encodeDecision(buf0, crossEpoch)
			}
			for s, buf := range map[int][]byte{0: buf0, 1: buf1} {
				sdir := filepath.Join(dir, fmt.Sprintf("shard-%04d", s))
				if err := os.MkdirAll(sdir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(sdir, segmentName(1)), buf, 0o644); err != nil {
					t.Fatal(err)
				}
			}

			st, _, m := openStore(t, dir, 2, Options{}, true)
			want0, want1 := "10", "10"
			if tc.wantApplied {
				want0, want1 = "3", "17"
			}
			if got := get(t, st, k0); got != want0 {
				t.Errorf("%s = %q after recovery, want %q", k0, got, want0)
			}
			if got := get(t, st, k1); got != want1 {
				t.Errorf("%s = %q after recovery, want %q", k1, got, want1)
			}
			// Conservation: the transfer was balanced, so any partial
			// apply shows up as a broken sum regardless of direction.
			if s := sumKeys(t, st, k0, k1); s != 20 {
				t.Errorf("sum(%s,%s) = %d after recovery, want 20 (half-applied cross commit)", k0, k1, s)
			}
			if got := m.Stats().Reconciled; got != tc.wantRecon {
				t.Errorf("reconciled = %d, want %d", got, tc.wantRecon)
			}

			// The store stays writable, and a fresh cross-shard commit
			// allocates above the torn epoch — its decision must not
			// adopt the discarded epoch's dead data records.
			err := st.Update([]string{k0, k1}, func(tx shard.Tx) error {
				if err := tx.Set(k0, []byte("6")); err != nil {
					return err
				}
				return tx.Set(k1, []byte("14"))
			})
			if err != nil {
				t.Fatal(err)
			}
			st.Close()
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}

			// Second run of the audit: the post-recovery commit survives
			// a clean restart intact, and nothing torn resurfaced.
			st2, _, m2 := openStore(t, dir, 2, Options{}, true)
			defer m2.Close()
			defer st2.Close()
			if got := get(t, st2, k0); got != "6" {
				t.Errorf("%s = %q after second recovery, want 6", k0, got)
			}
			if got := get(t, st2, k1); got != "14" {
				t.Errorf("%s = %q after second recovery, want 14", k1, got)
			}
			if s := sumKeys(t, st2, k0, k1); s != 20 {
				t.Errorf("sum after second recovery = %d, want 20", s)
			}
		})
	}
}

// breakWAL marks one shard's WAL sticky-broken, as a device error
// would; everything above must observe the failure synchronously.
func breakWAL(m *Manager, shard int, err error) {
	w := m.shards[shard].wal
	w.mu.Lock()
	w.broken = err
	w.mu.Unlock()
}

// TestFailedSyncNoOKVerdict: when the WAL cannot make a batch durable,
// every install path must surface the failure in the commit verdict
// itself — never an OK the log cannot back — and the OnError hook must
// fire exactly once for fail-stop.
func TestFailedSyncNoOKVerdict(t *testing.T) {
	k0, k1 := shardKeys(t)
	errDisk := errors.New("injected device failure")

	newStore := func(t *testing.T, gc engine.GroupCommit) (*shard.Store, *Manager, chan error) {
		t.Helper()
		onErr := make(chan error, 4)
		st := shard.Open(shard.Config{Shards: 2, Engine: engine.Config{GroupCommit: gc}})
		m, err := Open(Options{Dir: t.TempDir(), OnError: func(e error) { onErr <- e }}, st, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		return st, m, onErr
	}
	wantSyncErr := func(t *testing.T, path string, err error, onErr chan error) {
		t.Helper()
		var se *engine.SyncError
		if !errors.As(err, &se) {
			t.Fatalf("%s with broken WAL returned %v, want *engine.SyncError (an OK here is an acknowledged non-durable commit)", path, err)
		}
		select {
		case <-onErr:
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: OnError fail-stop hook never fired", path)
		}
	}

	t.Run("per-commit", func(t *testing.T) {
		st, m, onErr := newStore(t, engine.GroupCommit{})
		breakWAL(m, st.ShardOf(k0), errDisk)
		err := st.UpdateValued(1, []string{k0}, func(tx shard.Tx) error {
			return tx.Set(k0, []byte("1"))
		})
		wantSyncErr(t, "single-shard commit", err, onErr)
	})

	t.Run("group-flush", func(t *testing.T) {
		st, m, onErr := newStore(t, engine.GroupCommit{Enabled: true, Window: time.Millisecond, MaxBatch: 8})
		breakWAL(m, st.ShardOf(k0), errDisk)
		err := st.UpdateValued(1, []string{k0}, func(tx shard.Tx) error {
			return tx.Set(k0, []byte("1"))
		})
		wantSyncErr(t, "group-commit flush", err, onErr)
	})

	t.Run("cross-shard-combine", func(t *testing.T) {
		st, m, onErr := newStore(t, engine.GroupCommit{})
		// Break the non-coordinator participant: round 1 must catch it.
		breakWAL(m, 1, errDisk)
		err := st.Update([]string{k0, k1}, func(tx shard.Tx) error {
			if err := tx.Set(k0, []byte("2")); err != nil {
				return err
			}
			return tx.Set(k1, []byte("2"))
		})
		wantSyncErr(t, "cross-shard combine", err, onErr)
	})

	t.Run("replica-apply", func(t *testing.T) {
		st, m, onErr := newStore(t, engine.GroupCommit{})
		breakWAL(m, 0, errDisk)
		err := st.ApplyReplicated(0, []map[string][]byte{{k0: []byte("3")}})
		wantSyncErr(t, "replica standalone apply", err, onErr)
	})

	t.Run("replica-apply-cross", func(t *testing.T) {
		st, m, onErr := newStore(t, engine.GroupCommit{})
		breakWAL(m, 1, errDisk)
		err := st.ApplyReplicatedCross(map[int]map[string][]byte{
			0: {k0: []byte("4")},
			1: {k1: []byte("4")},
		})
		wantSyncErr(t, "replica cross apply", err, onErr)
	})
}
