package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/repl"
)

func rec(idx uint64, kvs ...string) repl.Record {
	r := repl.Record{Index: idx, Writes: make(map[string][]byte)}
	for i := 0; i+1 < len(kvs); i += 2 {
		r.Writes[kvs[i]] = []byte(kvs[i+1])
	}
	return r
}

// dataRecs projects recovered WAL entries down to their data records —
// the view these tests assert on; control records (intents, decisions)
// have their own coverage in recovery_test.go.
func dataRecs(entries []walEntry) []repl.Record {
	var out []repl.Record
	for _, e := range entries {
		if e.kind == walData {
			out = append(out, e.rec)
		}
	}
	return out
}

func appendAll(t *testing.T, w *WAL, recs ...repl.Record) {
	t.Helper()
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, recs, err := openWAL(dir, FsyncGroup, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || w.NextIndex() != 1 {
		t.Fatalf("fresh WAL: %d records, next %d; want 0, 1", len(recs), w.NextIndex())
	}
	want := []repl.Record{
		rec(1, "a", "1"),
		rec(2, "b", "-42", "c", "7"),
		rec(3), // empty write set records are legal framing
		rec(4, "key.with.dots", "100"),
	}
	appendAll(t, w, want...)
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, entries, err := openWAL(dir, FsyncGroup, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := dataRecs(entries); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %+v, want %+v", got, want)
	}
	if w2.NextIndex() != 5 {
		t.Fatalf("next after recovery = %d, want 5", w2.NextIndex())
	}
	// Appends resume where the log left off.
	appendAll(t, w2, rec(5, "d", "9"))
	if err := w2.Append(rec(99)); err == nil {
		t.Fatal("out-of-sequence append accepted")
	}
}

// TestWALTornTail is the torn-write recovery table: the segment file is
// truncated at every byte boundary, and recovery must yield exactly the
// records whose frames survived intact — never a partial record — and
// leave the file re-appendable.
func TestWALTornTail(t *testing.T) {
	master := t.TempDir()
	w, _, err := openWAL(master, FsyncGroup, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []repl.Record{
		rec(1, "a", "1"),
		rec(2, "bb", "22"),
		rec(3, "ccc", "-333", "d", "4"),
	}
	appendAll(t, w, want...)
	w.Close()
	segPath := filepath.Join(master, segmentName(1))
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries: offsets at which a prefix holds exactly k records.
	bounds := []int{0}
	off := 0
	for off < len(full) {
		length := int(full[off]) | int(full[off+1])<<8 | int(full[off+2])<<16 | int(full[off+3])<<24
		off += recHeaderLen + length
		bounds = append(bounds, off)
	}

	for cut := 0; cut <= len(full); cut++ {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, segmentName(1)), full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			w, entries, err := openWAL(dir, FsyncGroup, 0)
			if err != nil {
				t.Fatal(err)
			}
			got := dataRecs(entries)
			// The longest prefix of whole frames fitting in cut bytes.
			wantN := 0
			for i, b := range bounds {
				if b <= cut {
					wantN = i
				}
			}
			if len(got) != wantN {
				t.Fatalf("cut at %d recovered %d records, want %d", cut, len(got), wantN)
			}
			if wantN > 0 && !reflect.DeepEqual(got, want[:wantN]) {
				t.Fatalf("cut at %d recovered %+v, want %+v", cut, got, want[:wantN])
			}
			// The torn tail is truncated away on disk.
			if info, err := os.Stat(filepath.Join(dir, segmentName(1))); err != nil {
				t.Fatal(err)
			} else if info.Size() != int64(bounds[wantN]) {
				t.Fatalf("cut at %d left %d bytes, want %d", cut, info.Size(), bounds[wantN])
			}
			// The WAL accepts the next record and a re-open sees it.
			next := uint64(wantN) + 1
			appendAll(t, w, rec(next, "x", "8"))
			w.Close()
			_, reEntries, err := openWAL(dir, FsyncGroup, 0)
			if err != nil {
				t.Fatal(err)
			}
			if again := dataRecs(reEntries); len(again) != wantN+1 || again[wantN].Index != next {
				t.Fatalf("cut at %d: post-recovery append lost (%d records)", cut, len(again))
			}
		})
	}
}

// TestWALCorruptTail flips each byte of the final record in turn:
// recovery must stop before the corrupt record (CRC or framing check)
// and keep everything prior.
func TestWALCorruptTail(t *testing.T) {
	master := t.TempDir()
	w, _, err := openWAL(master, FsyncGroup, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, rec(1, "a", "1"), rec(2, "b", "2"), rec(3, "c", "3"))
	w.Close()
	full, err := os.ReadFile(filepath.Join(master, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Locate the last record's frame start.
	off, last := 0, 0
	for off < len(full) {
		last = off
		length := int(full[off]) | int(full[off+1])<<8 | int(full[off+2])<<16 | int(full[off+3])<<24
		off += recHeaderLen + length
	}

	for i := last; i < len(full); i++ {
		dir := t.TempDir()
		mut := append([]byte(nil), full...)
		mut[i] ^= 0xFF
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		w, entries, err := openWAL(dir, FsyncGroup, 0)
		if err != nil {
			t.Fatalf("byte %d: %v", i, err)
		}
		w.Close()
		got := dataRecs(entries)
		// Either the corruption is detected (2 records survive) or the
		// flip hit the length field such that the frame reads as torn —
		// never may a wrong record surface.
		if len(got) > 2 {
			t.Fatalf("byte %d: corrupt record surfaced (%d records: %+v)", i, len(got), got)
		}
		if len(got) == 2 && (got[0].Index != 1 || got[1].Index != 2) {
			t.Fatalf("byte %d: wrong surviving records %+v", i, got)
		}
	}
}

func TestWALRotateTrim(t *testing.T) {
	dir := t.TempDir()
	w, _, err := openWAL(dir, FsyncGroup, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, rec(1, "a", "1"), rec(2, "a", "2"))
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, rec(3, "a", "3"))
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, rec(4, "a", "4"))

	// Segment layout: wal-1 (recs 1-2), wal-3 (rec 3), wal-4 (active).
	// Trimming at 2 deletes only the first.
	if n := w.TrimSegments(2); n != 1 {
		t.Fatalf("TrimSegments(2) removed %d segments, want 1", n)
	}
	// Trimming at 3 deletes wal-3; the active segment always survives.
	if n := w.TrimSegments(99); n != 1 {
		t.Fatalf("TrimSegments(99) removed %d segments, want 1 (active kept)", n)
	}
	w.Close()

	// Recovery over the remaining segments, seeded past the trim point.
	_, entries, err := openWAL(dir, FsyncGroup, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := dataRecs(entries); len(got) != 1 || got[0].Index != 4 {
		t.Fatalf("recovered %+v, want record 4 only", got)
	}
}

// TestWALSegmentGapRecovery: a tail segment whose records don't follow
// the recovered sequence (external damage) is rejected — but the repair
// must not create a misnamed append target that a second recovery would
// destroy. Records appended after the first recovery must survive the
// second.
func TestWALSegmentGapRecovery(t *testing.T) {
	dir := t.TempDir()
	w, _, err := openWAL(dir, FsyncGroup, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, rec(1, "a", "1"), rec(2, "a", "2"), rec(3, "a", "3"))
	w.Close()
	// Craft a gapped later segment: record index 10 in a file named wal-10.
	buf := encodeRecord(nil, rec(10, "z", "9"))
	if err := os.WriteFile(filepath.Join(dir, segmentName(10)), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, entries, err := openWAL(dir, FsyncGroup, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := dataRecs(entries); len(got) != 3 {
		t.Fatalf("recovered %d records past a segment gap, want 3", len(got))
	}
	// The gapped file must not survive as an empty misnamed append target.
	appendAll(t, w2, rec(4, "a", "4"))
	w2.Close()
	_, reEntries, err := openWAL(dir, FsyncGroup, 0)
	if err != nil {
		t.Fatal(err)
	}
	if again := dataRecs(reEntries); len(again) != 4 || again[3].Index != 4 {
		t.Fatalf("second recovery lost post-gap appends: %+v", again)
	}
}

// TestWALMisnamedSegmentContents: recovery trusts record indices, not
// filenames — a renamed segment (or one inherited from an interrupted
// repair) whose contents continue the sequence is read in full.
func TestWALMisnamedSegmentContents(t *testing.T) {
	dir := t.TempDir()
	w, _, err := openWAL(dir, FsyncGroup, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, rec(1, "a", "1"), rec(2, "a", "2"))
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, rec(3, "a", "3"))
	w.Close()
	// The second segment (records from 3) masquerades under a high name.
	if err := os.Rename(filepath.Join(dir, segmentName(3)), filepath.Join(dir, segmentName(10))); err != nil {
		t.Fatal(err)
	}
	_, entries, err := openWAL(dir, FsyncGroup, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := dataRecs(entries); len(got) != 3 || got[2].Index != 3 {
		t.Fatalf("recovered %+v, want records 1..3 despite the misnamed segment", got)
	}
}

func TestFsyncPolicyCounts(t *testing.T) {
	if _, err := ParseFsyncPolicy("bogus"); err == nil {
		t.Fatal("bogus fsync policy accepted")
	}
	for _, tc := range []struct {
		policy        FsyncPolicy
		wantAfterApp  int64 // fsyncs after 3 appends
		wantAfterSync int64 // fsyncs after an explicit Sync
	}{
		{FsyncAlways, 3, 3}, // synced per append; Sync is then a no-op
		{FsyncGroup, 0, 1},  // synced per batch boundary only
		{FsyncOff, 0, 0},    // never synced
	} {
		w, _, err := openWAL(t.TempDir(), tc.policy, 0)
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, w, rec(1, "a", "1"), rec(2, "a", "2"), rec(3, "a", "3"))
		if got := w.fsyncs.Load(); got != tc.wantAfterApp {
			t.Errorf("%v: %d fsyncs after appends, want %d", tc.policy, got, tc.wantAfterApp)
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		if got := w.fsyncs.Load(); got != tc.wantAfterSync {
			t.Errorf("%v: %d fsyncs after Sync, want %d", tc.policy, got, tc.wantAfterSync)
		}
		w.Close()
	}
}
