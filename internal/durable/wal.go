// Per-shard write-ahead log: the durable twin of the in-memory commit
// log (repl.Log). Records are length-prefixed, CRC32-framed binary
// encodings of the same (index, writes) pairs the engine's CommitLog
// hook emits, appended to segment files named by their first record
// index. A torn or corrupt tail — the expected debris of a crash — is
// detected by the CRC/length framing and truncated away on open;
// everything before it replays exactly.
//
// Fsync policy decides when appended bytes are forced to stable storage:
// FsyncAlways syncs inside every Append (before the commit is
// acknowledged, under the shard latch), FsyncGroup syncs once per commit
// batch via the engine's CommitSyncer hook (durability rides the
// group-commit boundary: one fsync covers the whole flush, and verdicts
// are delivered only after it), FsyncOff never syncs (the OS page cache
// is the only durability — survives process death, not machine crash).

package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/repl"
)

// FsyncPolicy selects when WAL appends are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncGroup syncs once per commit batch (the engine's CommitSyncer
	// hook), before the batch's commits are acknowledged. The default.
	FsyncGroup FsyncPolicy = iota
	// FsyncAlways syncs inside every append, before the commit is
	// acknowledged — one fsync per committed transaction.
	FsyncAlways
	// FsyncOff never syncs. Appends still hit the file via write(2), so
	// a killed process loses nothing; an OS crash can lose the tail.
	FsyncOff
)

// ParseFsyncPolicy maps the -fsync flag values.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "group", "":
		return FsyncGroup, nil
	case "always":
		return FsyncAlways, nil
	case "off", "none":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, group, or off)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncOff:
		return "off"
	}
	return "group"
}

// Record framing: a 4-byte little-endian payload length, a 4-byte CRC32
// (IEEE) of the payload, then the payload. The payload begins with a
// kind byte:
//
//	data (1):     index (8), epoch (8), participant count (2) and shard
//	              ids (4 each; 0 for a standalone commit), the write
//	              count (4), then length-prefixed key and value bytes
//	              per write
//	intent (2):   epoch (8), participant count (2), shard ids (4 each) —
//	              a cross-shard commit announcing itself before its data
//	              records
//	decision (3): epoch (8) — the cross-shard commit point, written to
//	              the coordinator's log only after every participant's
//	              intent and data records are durable
//
// Data records carry the shard's contiguous commit indices; intent and
// decision records are control metadata and consume no index. Recovery
// reconciles: a cross-shard epoch whose decision never became durable
// (and is not covered by the coordinator's checkpoint) is discarded on
// every shard — all-or-nothing, never half a commit.
const (
	recHeaderLen = 8
	maxRecordLen = 64 << 20 // sanity bound; a "length" past this is framing debris

	walData     = byte(1)
	walIntent   = byte(2)
	walDecision = byte(3)
)

// walEntry is one decoded WAL record: a data record (rec populated) or a
// control record (epoch, and for intents the participant set).
type walEntry struct {
	kind   byte
	rec    repl.Record // walData only
	epoch  uint64      // walIntent, walDecision
	shards []int       // walIntent
}

var crcTable = crc32.IEEETable

// frame backfills the length/CRC header over the payload appended after
// start.
func frame(buf []byte, start int) []byte {
	payload := buf[start+recHeaderLen:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return buf
}

func appendShards(buf []byte, shards []int) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(shards)))
	for _, s := range shards {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s))
	}
	return buf
}

func encodeRecord(buf []byte, r repl.Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // header backfilled below
	buf = append(buf, walData)
	buf = binary.LittleEndian.AppendUint64(buf, r.Index)
	buf = binary.LittleEndian.AppendUint64(buf, r.Epoch)
	buf = appendShards(buf, r.Shards)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Writes)))
	for k, v := range r.Writes {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(k)))
		buf = append(buf, k...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
		buf = append(buf, v...)
	}
	return frame(buf, start)
}

func encodeIntent(buf []byte, epoch uint64, shards []int) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = append(buf, walIntent)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	buf = appendShards(buf, shards)
	return frame(buf, start)
}

func encodeDecision(buf []byte, epoch uint64) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = append(buf, walDecision)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	return frame(buf, start)
}

func cutShards(payload []byte) ([]int, []byte, error) {
	if len(payload) < 2 {
		return nil, nil, fmt.Errorf("durable: truncated shard set")
	}
	n := binary.LittleEndian.Uint16(payload)
	payload = payload[2:]
	if len(payload) < 4*int(n) {
		return nil, nil, fmt.Errorf("durable: shard set count %d exceeds payload", n)
	}
	var shards []int
	for i := 0; i < int(n); i++ {
		shards = append(shards, int(binary.LittleEndian.Uint32(payload)))
		payload = payload[4:]
	}
	return shards, payload, nil
}

func decodeEntry(payload []byte) (walEntry, error) {
	var e walEntry
	if len(payload) < 1 {
		return e, fmt.Errorf("durable: empty record payload")
	}
	e.kind = payload[0]
	payload = payload[1:]
	switch e.kind {
	case walData:
		if len(payload) < 16 {
			return e, fmt.Errorf("durable: short data record payload (%d bytes)", len(payload))
		}
		e.rec.Index = binary.LittleEndian.Uint64(payload)
		e.rec.Epoch = binary.LittleEndian.Uint64(payload[8:])
		payload = payload[16:]
		var err error
		if e.rec.Shards, payload, err = cutShards(payload); err != nil {
			return e, err
		}
		if len(payload) < 4 {
			return e, fmt.Errorf("durable: truncated write count")
		}
		n := binary.LittleEndian.Uint32(payload)
		payload = payload[4:]
		e.rec.Writes = make(map[string][]byte, n)
		for i := uint32(0); i < n; i++ {
			var k string
			var err error
			if k, payload, err = cutBytes(payload); err != nil {
				return e, err
			}
			var v string
			if v, payload, err = cutBytes(payload); err != nil {
				return e, err
			}
			e.rec.Writes[k] = []byte(v)
		}
	case walIntent:
		if len(payload) < 8 {
			return e, fmt.Errorf("durable: short intent record payload")
		}
		e.epoch = binary.LittleEndian.Uint64(payload)
		payload = payload[8:]
		var err error
		if e.shards, payload, err = cutShards(payload); err != nil {
			return e, err
		}
	case walDecision:
		if len(payload) < 8 {
			return e, fmt.Errorf("durable: short decision record payload")
		}
		e.epoch = binary.LittleEndian.Uint64(payload)
		payload = payload[8:]
	default:
		return e, fmt.Errorf("durable: unknown record kind %d", e.kind)
	}
	if len(payload) != 0 {
		return e, fmt.Errorf("durable: %d trailing bytes in record payload", len(payload))
	}
	return e, nil
}

func cutBytes(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, fmt.Errorf("durable: truncated record field")
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if uint64(n) > uint64(len(b)) {
		return "", nil, fmt.Errorf("durable: record field length %d exceeds payload", n)
	}
	return string(b[:n]), b[n:], nil
}

// segment is one WAL file; first is the index of its first record.
type segment struct {
	first uint64
	path  string
}

func segmentName(first uint64) string { return fmt.Sprintf("wal-%020d.log", first) }

func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
	return n, err == nil
}

// WAL is one shard's write-ahead log.
type WAL struct {
	dir    string
	policy FsyncPolicy

	mu       sync.Mutex
	f        *os.File  // active segment
	segments []segment // ascending by first; the last one is active
	next     uint64    // index the next Append must carry
	dirty    bool      // unsynced bytes in the active segment
	broken   error     // sticky first append/sync failure; see Err
	buf      []byte    // reused encode buffer

	appends atomic.Int64
	fsyncs  atomic.Int64
	intents atomic.Int64

	// fsyncObs, when non-nil, observes each fsync's duration (set by the
	// durability manager before the WAL sees traffic).
	fsyncObs *obs.Histogram
}

// openWAL opens (creating if needed) a shard's WAL in dir, scanning the
// existing segments and stitching the recoverable record sequence:
// within each segment records must be contiguous (a torn or corrupt
// tail is truncated in place), and across segments the stitch accepts
// exactly the records continuing the sequence — records already covered
// by the checkpoint (index <= afterIdx) or by an earlier segment are
// skipped, so damage confined to discardable history never costs
// needed records in later segments. A segment whose first usable record
// does not continue the sequence is unreachable history (a real hole):
// it and everything after it are removed. afterIdx seeds the numbering
// for an empty WAL (records resume at afterIdx+1, the newest
// checkpoint's index).
func openWAL(dir string, policy FsyncPolicy, afterIdx uint64) (*WAL, []walEntry, error) {
	w := &WAL{dir: dir, policy: policy}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if first, ok := parseSegmentName(e.Name()); ok && !e.IsDir() {
			w.segments = append(w.segments, segment{first: first, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(w.segments, func(i, j int) bool { return w.segments[i].first < w.segments[j].first })

	var out []walEntry
	// The stitch needs records above the checkpoint only; without a
	// checkpoint, the first record seen sets the sequence start.
	next := uint64(0)
	if afterIdx > 0 {
		next = afterIdx + 1
	}
	kept := w.segments[:0]
	broken := false // a needed record was missing: later segments are unreachable
	// The last kept segment's scan is retained for the reuse decision
	// below, so the (potentially large) active segment is read once.
	var lastEntries []walEntry
	var lastValidLen int
	for _, seg := range w.segments {
		if broken {
			slog.Warn("durable: WAL segment unreachable past a missing record; discarding",
				"segment", seg.path, "want", next)
			os.Remove(seg.path)
			continue
		}
		segEntries, validLen, clean, err := scanSegment(seg.path)
		if err != nil {
			return nil, nil, err
		}
		if !clean {
			// Torn or corrupt tail: cut it off. Harmless even below the
			// checkpoint — the records after the damage are unreadable
			// regardless, and the file stays consistent for future scans.
			if err := os.Truncate(seg.path, int64(validLen)); err != nil {
				return nil, nil, err
			}
		}
		mark := len(out)
		took := false
		for _, e := range segEntries {
			if e.kind != walData {
				// Control records ride along in stream order; duplicates
				// below the checkpoint are harmless (recovery treats
				// decisions as a set).
				out = append(out, e)
				continue
			}
			rec := e.rec
			if next == 0 {
				next = rec.Index
			}
			if rec.Index < next {
				continue // covered by the checkpoint or an earlier segment
			}
			if rec.Index > next {
				// Within-segment contiguity is enforced by scanSegment, so
				// a jump can only appear at the segment's first usable
				// record: nothing here (or later) can ever stitch.
				broken = true
				break
			}
			out = append(out, e)
			next++
			took = true
		}
		if broken && !took {
			out = out[:mark] // a removed segment's control records go with it
			slog.Warn("durable: WAL segment unreachable past a missing record; discarding",
				"segment", seg.path, "want", next)
			os.Remove(seg.path)
			continue
		}
		kept = append(kept, seg)
		lastEntries, lastValidLen = segEntries, validLen
	}
	w.segments = kept

	w.next = afterIdx + 1
	if next > w.next {
		w.next = next
	}
	// Reuse the newest kept segment for appends only if the sequence
	// continues exactly where its contents end — a data-free segment named
	// for w.next, or one whose last data record is w.next-1. Anything else
	// (e.g. a fallback segment wholly below the checkpoint) must not be
	// appended to: the next scan would read a hole. Start a fresh,
	// correctly named segment instead; zero-byte rejects are deleted.
	if n := len(w.segments); n > 0 {
		last := w.segments[n-1]
		lastIdx := uint64(0) // newest data index in the last kept segment
		for _, e := range lastEntries {
			if e.kind == walData {
				lastIdx = e.rec.Index
			}
		}
		reusable := (lastIdx == 0 && last.first == w.next) || (lastIdx > 0 && lastIdx == w.next-1)
		if reusable {
			w.f, err = os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, nil, err
			}
			return w, out, nil
		}
		if lastValidLen == 0 {
			os.Remove(last.path)
			w.segments = w.segments[:n-1]
		}
	}
	if err := w.startSegmentLocked(); err != nil {
		return nil, nil, err
	}
	return w, out, nil
}

// scanSegment reads one segment's records: the contiguous run of data
// records starting at whatever index its first data record carries, with
// intent/decision control records interleaved in stream order. It returns
// the entries, the byte length of the valid prefix, and whether the file
// ended cleanly (false = torn, corrupt, or discontinuous tail that must
// be truncated to validLen). Contiguity is judged by the record indices
// themselves, never the segment's filename: a file can legitimately
// carry records below its name after an interrupted recovery, and
// trusting the name would re-truncate acknowledged records on the next
// boot.
func scanSegment(path string) ([]walEntry, int, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false, err
	}
	var want uint64 // 0 = first data record sets it
	var out []walEntry
	off := 0
	for {
		if off == len(data) {
			return out, off, true, nil // clean end
		}
		if len(data)-off < recHeaderLen {
			return out, off, false, nil // torn header
		}
		length := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if uint64(length) > maxRecordLen || len(data)-off-recHeaderLen < int(length) {
			return out, off, false, nil // torn payload (or garbage length)
		}
		payload := data[off+recHeaderLen : off+recHeaderLen+int(length)]
		if crc32.Checksum(payload, crcTable) != crc {
			return out, off, false, nil // corrupt payload
		}
		e, err := decodeEntry(payload)
		if err != nil {
			return out, off, false, nil // framing valid but payload malformed: same treatment
		}
		if e.kind == walData {
			if want == 0 {
				want = e.rec.Index
			}
			if e.rec.Index != want {
				// A hole or a backwards index within one file: ascending
				// appends produce neither, so this is damage.
				return out, off, false, nil
			}
			want++
		}
		out = append(out, e)
		off += recHeaderLen + int(length)
	}
}

// Append writes one record. r.Index must be the WAL's next index — the
// caller (the commit-log sink) assigns indices in commit order under the
// shard latch, so a mismatch is a wiring bug, not a runtime condition.
// With FsyncAlways the record is on stable storage when Append returns.
// A failed WAL is sticky-broken: every later Append fails fast without
// writing, so the on-disk log ends at the failure instead of growing a
// hole (recovery stops at the last contiguous record either way).
func (w *WAL) Append(r repl.Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return w.broken
	}
	if r.Index != w.next {
		w.broken = fmt.Errorf("durable: WAL append index %d, want %d", r.Index, w.next)
		return w.broken
	}
	w.buf = encodeRecord(w.buf[:0], r)
	if _, err := w.f.Write(w.buf); err != nil {
		w.broken = err
		return err
	}
	w.next++
	w.dirty = true
	w.appends.Add(1)
	if w.policy == FsyncAlways {
		return w.syncLocked()
	}
	return nil
}

// AppendIntent writes a cross-shard intent control record (no commit
// index consumed). It is never synced eagerly, even under FsyncAlways:
// nothing depends on an intent being durable before the epoch's data
// records, which are synced (covering the intent, appended before them)
// ahead of the decision.
func (w *WAL) AppendIntent(epoch uint64, shards []int) error {
	return w.appendControl(encodeIntent(nil, epoch, shards), &w.intents)
}

// AppendDecision writes a cross-shard decision control record — the
// commit point of epoch, appended to the coordinator's WAL only after
// round 1 made every participant's intent and data records durable. The
// caller syncs afterwards (round 2); the decision is not durable until
// then.
func (w *WAL) AppendDecision(epoch uint64) error {
	return w.appendControl(encodeDecision(nil, epoch), nil)
}

func (w *WAL) appendControl(framed []byte, counter *atomic.Int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return w.broken
	}
	if _, err := w.f.Write(framed); err != nil {
		w.broken = err
		return err
	}
	w.dirty = true
	if counter != nil {
		counter.Add(1)
	}
	return nil
}

// Sync forces appended records to stable storage under the group policy
// (no-op when clean, always-synced, or off). The engine calls it once
// per commit batch before acknowledging the batch.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.policy == FsyncOff || !w.dirty || w.broken != nil {
		return w.broken
	}
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	var start time.Time
	if w.fsyncObs != nil {
		start = time.Now()
	}
	if faultFsyncDelay > 0 {
		time.Sleep(faultFsyncDelay)
	}
	if faultFsyncErr() {
		w.broken = errInjectedFsync
		return w.broken
	}
	if err := w.f.Sync(); err != nil {
		w.broken = err
		return err
	}
	w.dirty = false
	w.fsyncs.Add(1)
	if w.fsyncObs != nil {
		w.fsyncObs.Observe(int64(time.Since(start)))
	}
	return nil
}

// Rotate closes the active segment and starts a new one at the next
// index. Checkpointing rotates first, so every earlier segment holds
// only records at or below the checkpoint index about to be captured —
// making TrimSegments a whole-file delete, never a rewrite. An empty
// active segment is kept as-is: rotating it would only accrete
// zero-byte files (e.g. under repeated checkpoint attempts on a full
// disk).
func (w *WAL) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return w.broken
	}
	if len(w.segments) > 0 && w.segments[len(w.segments)-1].first == w.next {
		return nil // active segment is empty; it already starts at next
	}
	if w.dirty && w.policy != FsyncOff {
		if err := w.syncLocked(); err != nil {
			return err
		}
	}
	w.f.Close()
	return w.startSegmentLocked()
}

func (w *WAL) startSegmentLocked() error {
	seg := segment{first: w.next, path: filepath.Join(w.dir, segmentName(w.next))}
	f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		w.broken = err
		return err
	}
	w.f = f
	w.dirty = false
	w.segments = append(w.segments, seg)
	return nil
}

// TrimSegments deletes inactive segments whose every record is at or
// below idx (their range ends where the next segment starts). The active
// segment is never deleted.
func (w *WAL) TrimSegments(idx uint64) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	removed := 0
	for len(w.segments) > 1 && w.segments[1].first <= idx+1 {
		os.Remove(w.segments[0].path)
		w.segments = w.segments[1:]
		removed++
	}
	return removed
}

// NextIndex returns the index the next append will carry.
func (w *WAL) NextIndex() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.next
}

// Err returns the sticky failure that broke the WAL, if any.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.broken
}

// Close syncs (regardless of policy — a graceful shutdown should leave
// nothing to the page cache) and closes the active segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	var err error
	if w.dirty && w.broken == nil {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
