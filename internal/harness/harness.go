// Package harness defines and runs the paper's experiments: one
// Experiment per figure of Sec. 4, sweeping arrival rates over a set of
// protocols with replicated seeds, and formatting the results as tables
// and ASCII charts next to the paper's reported shapes.
package harness

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/occ"
	"repro/internal/pcc"
	"repro/internal/plot"
	"repro/internal/rtdbs"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Delta is the Termination Rule period used by the value-cognizant
// protocols: a quarter of the baseline mean execution time.
const Delta = 0.06

// ProtocolSpec names a protocol and builds fresh CCM instances.
type ProtocolSpec struct {
	Name string
	New  func() rtdbs.CCM
}

// Protocol returns the named protocol's spec. Valid names: 2PL-PA, OCC-BC,
// WAIT-50, SCC-2S, SCC-CB, SCC-VW, SCC-DC, SCC-kS(<k>), SCC-kS-FIFO(<k>).
func Protocol(name string) ProtocolSpec {
	mk := func(f func() rtdbs.CCM) ProtocolSpec { return ProtocolSpec{Name: name, New: f} }
	switch {
	case name == "2PL-PA":
		return mk(func() rtdbs.CCM { return pcc.New() })
	case name == "OCC-BC":
		return mk(func() rtdbs.CCM { return occ.NewBC() })
	case name == "WAIT-50":
		return mk(func() rtdbs.CCM { return occ.NewWait50() })
	case name == "SCC-2S":
		return mk(func() rtdbs.CCM { return core.NewTwoShadow() })
	case name == "SCC-CB":
		return mk(func() rtdbs.CCM { return core.NewCB() })
	case name == "SCC-AK":
		// Ration redundancy by worth: high-value classes get 4 shadows,
		// routine ones 2 (Sec. 2.1's proposal).
		return mk(func() rtdbs.CCM {
			return core.NewAdaptive(core.ValueRationedK(200, 4, 2), core.LBFO)
		})
	case name == "SCC-VW":
		return mk(func() rtdbs.CCM { return core.NewVW(2, Delta) })
	case name == "SCC-DC":
		return mk(func() rtdbs.CCM { return core.NewDC(2, Delta) })
	default:
		var k int
		if _, err := fmt.Sscanf(name, "SCC-kS(%d)", &k); err == nil && k >= 1 {
			return mk(func() rtdbs.CCM { return core.NewKS(k, core.LBFO) })
		}
		if _, err := fmt.Sscanf(name, "SCC-kS-FIFO(%d)", &k); err == nil && k >= 1 {
			return mk(func() rtdbs.CCM { return core.NewKS(k, core.FIFO) })
		}
		if _, err := fmt.Sscanf(name, "SCC-kS-PRIO(%d)", &k); err == nil && k >= 1 {
			return mk(func() rtdbs.CCM { return core.NewKS(k, core.Priority) })
		}
		panic(fmt.Sprintf("harness: unknown protocol %q", name))
	}
}

// Experiment is one figure-style sweep: metric vs arrival rate per
// protocol.
type Experiment struct {
	ID       string
	Title    string
	Paper    string // the paper's reported shape, for the report
	Rates    []float64
	Workload func(rate float64, seed int64) workload.Config
	Protos   []ProtocolSpec
	Metric   func(*stats.Metrics) float64
	YLabel   string
	YMin     float64
	YMax     float64

	Target    int
	Warmup    int
	Seeds     int
	MaxActive int
}

// Point is one (rate, estimate) sample of a series.
type Point struct {
	Rate      float64
	Est       stats.Estimate
	Truncated bool // some seed hit the population cap (saturated regime)
}

// SeriesResult is one protocol's curve.
type SeriesResult struct {
	Protocol string
	Points   []Point
}

// Result is a completed experiment.
type Result struct {
	Exp    *Experiment
	Series []SeriesResult
}

// Run executes the sweep. quick scales the run down for tests and smoke
// benchmarks (fewer commits, seeds and rates) while keeping the shape.
func (e *Experiment) Run(quick bool) Result {
	target, warmup, seeds, rates := e.Target, e.Warmup, e.Seeds, e.Rates
	if quick {
		target, warmup, seeds = 250, 25, 2
		if len(rates) > 5 {
			idx := []int{0, len(rates) / 4, len(rates) / 2, 3 * len(rates) / 4, len(rates) - 1}
			var rs []float64
			for _, i := range idx {
				rs = append(rs, rates[i])
			}
			rates = rs
		}
	}
	maxActive := e.MaxActive
	if maxActive == 0 {
		maxActive = 4000
	}

	type job struct{ pi, ri, si int }
	type outcome struct {
		job
		metric    float64
		truncated bool
	}
	var jobs []job
	for pi := range e.Protos {
		for ri := range rates {
			for si := 0; si < seeds; si++ {
				jobs = append(jobs, job{pi, ri, si})
			}
		}
	}
	results := make([]outcome, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for ji, j := range jobs {
		wg.Add(1)
		go func(ji int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := rtdbs.Config{
				Workload:  e.Workload(rates[j.ri], int64(j.si)+1),
				Target:    target,
				Warmup:    warmup,
				MaxActive: maxActive,
			}
			res := rtdbs.Run(cfg, e.Protos[j.pi].New())
			results[ji] = outcome{job: j, metric: e.Metric(res.Metrics), truncated: res.Truncated}
		}(ji, j)
	}
	wg.Wait()

	out := Result{Exp: e}
	for pi, p := range e.Protos {
		sr := SeriesResult{Protocol: p.Name}
		for ri, rate := range rates {
			var xs []float64
			trunc := false
			for _, oc := range results {
				if oc.pi == pi && oc.ri == ri {
					xs = append(xs, oc.metric)
					trunc = trunc || oc.truncated
				}
			}
			sort.Float64s(xs)
			sr.Points = append(sr.Points, Point{Rate: rate, Est: stats.Aggregate(xs), Truncated: trunc})
		}
		out.Series = append(out.Series, sr)
	}
	return out
}

// Table renders the result as an aligned text table (one row per rate, one
// column per protocol; saturated points are marked with †).
func (r Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s)\n", r.Exp.ID, r.Exp.Title, r.Exp.YLabel)
	fmt.Fprintf(&b, "%-8s", "rate")
	for _, s := range r.Series {
		fmt.Fprintf(&b, " %16s", s.Protocol)
	}
	b.WriteByte('\n')
	for ri := range r.Series[0].Points {
		fmt.Fprintf(&b, "%-8.0f", r.Series[0].Points[ri].Rate)
		for _, s := range r.Series {
			p := s.Points[ri]
			cell := p.Est.String()
			if p.Truncated {
				cell += "†"
			}
			fmt.Fprintf(&b, " %16s", cell)
		}
		b.WriteByte('\n')
	}
	if anyTruncated(r) {
		b.WriteString("† saturated: arrival rate exceeded sustainable throughput; metric taken over the commits before the population cap\n")
	}
	return b.String()
}

func anyTruncated(r Result) bool {
	for _, s := range r.Series {
		for _, p := range s.Points {
			if p.Truncated {
				return true
			}
		}
	}
	return false
}

// Chart renders the result as an ASCII chart.
func (r Result) Chart() string {
	c := plot.Chart{
		Title:  fmt.Sprintf("%s — %s", r.Exp.ID, r.Exp.Title),
		XLabel: "arrival rate (txn/s)",
		YLabel: r.Exp.YLabel,
		YMin:   r.Exp.YMin,
		YMax:   r.Exp.YMax,
	}
	for _, s := range r.Series {
		var xs, ys []float64
		for _, p := range s.Points {
			xs = append(xs, p.Rate)
			ys = append(ys, p.Est.Mean)
		}
		c.Series = append(c.Series, plot.Series{Label: s.Protocol, X: xs, Y: ys})
	}
	return c.Render()
}
