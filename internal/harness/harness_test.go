package harness

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestProtocolRegistry(t *testing.T) {
	for _, name := range []string{"2PL-PA", "OCC-BC", "WAIT-50", "SCC-2S", "SCC-VW", "SCC-DC", "SCC-kS(3)", "SCC-kS-FIFO(2)"} {
		p := Protocol(name)
		if p.New() == nil {
			t.Fatalf("%s: nil CCM", name)
		}
		// Fresh instances each call.
		if p.New() == p.New() {
			t.Fatalf("%s: New returned a shared instance", name)
		}
	}
}

func TestUnknownProtocolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown protocol did not panic")
		}
	}()
	Protocol("MVCC")
}

func TestExperimentRegistryComplete(t *testing.T) {
	reg := Experiments()
	for _, id := range ExperimentIDs() {
		e, ok := reg[id]
		if !ok {
			t.Fatalf("experiment %s missing from registry", id)
		}
		if e.ID != id {
			t.Fatalf("experiment %s has ID %s", id, e.ID)
		}
		if e.Metric == nil || len(e.Protos) == 0 || len(e.Rates) == 0 {
			t.Fatalf("experiment %s incomplete", id)
		}
		if e.Target < 1000 {
			t.Fatalf("experiment %s full-scale target %d too small", id, e.Target)
		}
		if e.Paper == "" {
			t.Fatalf("experiment %s lacks the paper's expected shape", id)
		}
	}
}

// TestQuickSweepShape runs a scaled-down fig13a and checks the structural
// properties of the output: all series present, all rates sampled, and the
// headline ordering (SCC-2S <= OCC-BC missed ratio at the top rate).
func TestQuickSweepShape(t *testing.T) {
	e := Experiments()["fig13a"]
	// Shrink further than quick mode for test speed.
	e.Rates = []float64{20, 120}
	e.Target, e.Warmup, e.Seeds = 250, 25, 2
	res := e.Run(false)

	if len(res.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(res.Series))
	}
	byName := map[string][]Point{}
	for _, s := range res.Series {
		if len(s.Points) != 2 {
			t.Fatalf("%s has %d points", s.Protocol, len(s.Points))
		}
		byName[s.Protocol] = s.Points
	}
	scc := byName["SCC-2S"][1].Est.Mean
	occb := byName["OCC-BC"][1].Est.Mean
	if scc > occb {
		t.Fatalf("SCC-2S missed %.1f%% > OCC-BC %.1f%% at 120 txn/s", scc, occb)
	}
	// Missed ratios grow with load for every protocol.
	for name, pts := range byName {
		if pts[1].Est.Mean+1e-9 < pts[0].Est.Mean {
			t.Fatalf("%s: missed ratio fell with load (%.2f -> %.2f)", name, pts[0].Est.Mean, pts[1].Est.Mean)
		}
	}

	tbl := res.Table()
	for _, want := range []string{"fig13a", "SCC-2S", "2PL-PA", "120"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
	chart := res.Chart()
	if !strings.Contains(chart, "Missed Ratio") {
		t.Fatalf("chart missing y label:\n%s", chart)
	}
}

func TestSecondaryQuick(t *testing.T) {
	rows := Secondary(100, 2000, true)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	var sccRow, occRow, pccRow SecondaryRow
	for _, r := range rows {
		switch r.Protocol {
		case "SCC-2S":
			sccRow = r
		case "OCC-BC":
			occRow = r
		case "2PL-PA":
			pccRow = r
		}
	}
	if sccRow.Promotions == 0 || sccRow.ShadowForks == 0 {
		t.Fatalf("SCC-2S secondary counters empty: %+v", sccRow)
	}
	if occRow.RestartsPerCommit <= sccRow.RestartsPerCommit {
		t.Fatalf("OCC-BC restarts/commit %.3f not above SCC-2S %.3f",
			occRow.RestartsPerCommit, sccRow.RestartsPerCommit)
	}
	if pccRow.PriorityAborts == 0 {
		t.Fatalf("2PL-PA priority aborts missing: %+v", pccRow)
	}
	tbl := SecondaryTable(rows, 100)
	if !strings.Contains(tbl, "SCC-2S") || !strings.Contains(tbl, "p-aborts") {
		t.Fatalf("secondary table malformed:\n%s", tbl)
	}
}

func TestAggregatePointEstimates(t *testing.T) {
	e := stats.Aggregate([]float64{4, 6})
	if e.Mean != 5 {
		t.Fatalf("mean %v", e.Mean)
	}
}
