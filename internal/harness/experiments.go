// This file holds the experiment registry: one entry per figure of the
// paper's Sec. 4 plus the ablations DESIGN.md calls out.

package harness

import (
	"fmt"
	"strings"

	"repro/internal/rtdbs"
	"repro/internal/stats"
	"repro/internal/workload"
)

// paperRates are the arrival-rate sweep points of Figs. 13-15 (0..200
// transactions per second).
var paperRates = []float64{10, 25, 50, 75, 100, 125, 150, 175, 200}

func specs(names ...string) []ProtocolSpec {
	out := make([]ProtocolSpec, len(names))
	for i, n := range names {
		out[i] = Protocol(n)
	}
	return out
}

func missedRatio(m *stats.Metrics) float64  { return m.MissedRatio() }
func avgTardiness(m *stats.Metrics) float64 { return m.AvgTardiness() }
func systemValue(m *stats.Metrics) float64  { return m.SystemValuePct() }

// Experiments returns the full registry keyed by experiment id.
func Experiments() map[string]*Experiment {
	full := func(e *Experiment) *Experiment {
		if e.Target == 0 {
			e.Target = 4000 // "each simulation runs until at least 4000 transactions had completed"
		}
		if e.Warmup == 0 {
			e.Warmup = 200
		}
		if e.Seeds == 0 {
			e.Seeds = 3 // replications for the 90% confidence intervals
		}
		if e.Rates == nil {
			e.Rates = paperRates
		}
		if e.Workload == nil {
			e.Workload = workload.Baseline
		}
		return e
	}
	reg := map[string]*Experiment{
		"fig13a": full(&Experiment{
			ID: "fig13a", Title: "Baseline Missed Ratio",
			Paper:  "SCC-2S lowest at all loads (≈1% @70, ≈30% @150); WAIT-50 collapses past ~125 (92% @150) above OCC-BC (78% @150); 2PL-PA worst, degrading earliest and steepest",
			Protos: specs("SCC-2S", "OCC-BC", "WAIT-50", "2PL-PA"),
			Metric: missedRatio, YLabel: "Missed Ratio (%)", YMin: 0, YMax: 100,
		}),
		"fig13b": full(&Experiment{
			ID: "fig13b", Title: "Baseline Average Tardiness",
			Paper:  "SCC-2S beats OCC-BC at every load; WAIT-50 has the best tardiness at low loads and loses it above ~125 txn/s; 2PL-PA worst (up to ~48s)",
			Protos: specs("SCC-2S", "OCC-BC", "WAIT-50", "2PL-PA"),
			Metric: avgTardiness, YLabel: "Average Tardiness (s)",
		}),
		"fig14a": full(&Experiment{
			ID: "fig14a", Title: "System Value, one class",
			Paper:  "SCC-VW only marginally above SCC-2S (speculation shrinks the payoff of deferment); both above OCC-BC and WAIT-50",
			Protos: specs("SCC-VW", "SCC-2S", "OCC-BC", "WAIT-50"),
			Metric: systemValue, YLabel: "System Value (%)", YMin: -100, YMax: 100,
		}),
		"fig14b": full(&Experiment{
			ID: "fig14b", Title: "System Value, two classes",
			Paper:    "with 10% long/tight/high-value transactions, SCC-VW clearly best: value cognizance pays off with heterogeneous classes",
			Workload: workload.TwoClass,
			Protos:   specs("SCC-VW", "SCC-2S", "OCC-BC", "WAIT-50"),
			Metric:   systemValue, YLabel: "System Value (%)", YMin: -100, YMax: 100,
		}),
		"fig15a": full(&Experiment{
			ID: "fig15a", Title: "SCC-VW Missed Ratio",
			Paper:  "SCC-VW misses MORE deadlines than SCC-2S (it maximizes value, not deadline satisfaction)",
			Protos: specs("SCC-VW", "SCC-2S", "OCC-BC", "WAIT-50"),
			Metric: missedRatio, YLabel: "Missed Ratio (%)", YMin: 0, YMax: 100,
		}),
		"fig15b": full(&Experiment{
			ID: "fig15b", Title: "SCC-VW Average Tardiness",
			Paper:  "but SCC-VW misses them by a SMALLER margin: lower average tardiness than SCC-2S",
			Protos: specs("SCC-VW", "SCC-2S", "OCC-BC", "WAIT-50"),
			Metric: avgTardiness, YLabel: "Average Tardiness (s)",
		}),
		"ablk": full(&Experiment{
			ID: "ablk", Title: "Ablation: shadow budget k (SCC-kS)",
			Paper:  "Sec. 2.1: k rations redundancy for timeliness; k=1 degenerates to OCC-BC, returns diminish with k",
			Protos: specs("SCC-kS(1)", "SCC-kS(2)", "SCC-kS(3)", "SCC-kS(5)"),
			Metric: missedRatio, YLabel: "Missed Ratio (%)", YMin: 0, YMax: 100,
		}),
		"ablpolicy": full(&Experiment{
			ID: "ablpolicy", Title: "Ablation: shadow replacement policy (LBFO / FIFO / Priority)",
			Paper:  "Sec. 2.1: LBFO covers the earliest conflicts; alternatives can use deadline/priority information to cover the most probable serialization orders",
			Protos: specs("SCC-kS(2)", "SCC-kS-FIFO(2)", "SCC-kS-PRIO(2)", "SCC-kS(3)", "SCC-kS-FIFO(3)", "SCC-kS-PRIO(3)"),
			Metric: missedRatio, YLabel: "Missed Ratio (%)", YMin: 0, YMax: 100,
		}),
		"ablak": full(&Experiment{
			ID: "ablak", Title: "Ablation: adaptive shadow budgets (SCC-AK) on two classes",
			Paper:    "Sec. 2.1: k rations redundancy by urgency/criticalness; giving high-value transactions more shadows should buy system value cheaper than raising k uniformly",
			Workload: workload.TwoClass,
			Protos:   specs("SCC-AK", "SCC-2S", "SCC-kS(4)", "SCC-CB"),
			Metric:   systemValue, YLabel: "System Value (%)", YMin: -100, YMax: 100,
		}),
		"abldelta": full(&Experiment{
			ID: "abldelta", Title: "Ablation: SCC-DC vs SCC-VW vs SCC-2S (system value)",
			Paper: "Sec. 3.2-3.3: DC is the exact (expensive) rule, VW its cheap approximation",
			// SCC-DC is evaluated in its stable region: at high load its
			// deferral bias inflates the active set and the O(active^2)
			// expected-value computation becomes impractical — which is
			// precisely why the paper introduces SCC-VW as "an
			// approximation heuristic to reduce the computational
			// complexity of SCC-DC" (Sec. 3.3).
			Rates:     []float64{25, 50, 75, 100},
			Target:    1200,
			Warmup:    100,
			MaxActive: 800,
			Protos:    specs("SCC-DC", "SCC-VW", "SCC-2S"),
			Metric:    systemValue, YLabel: "System Value (%)", YMin: -100, YMax: 100,
		}),
	}
	return reg
}

// ExperimentIDs returns the registry keys in report order.
func ExperimentIDs() []string {
	return []string{"fig13a", "fig13b", "fig14a", "fig14b", "fig15a", "fig15b", "ablk", "ablpolicy", "ablak", "abldelta"}
}

// SecondaryRow is one protocol's secondary measures (Sec. 4: restarts,
// wasted computation, and the SCC-specific counters that explain them).
type SecondaryRow struct {
	Protocol          string
	MissedRatio       float64
	AvgTardiness      float64
	RestartsPerCommit float64
	WastedFraction    float64
	Promotions        int
	ShadowForks       int
	CommitWaits       int
	PriorityAborts    int
}

// Secondary runs the secondary-measures table at a single contended rate.
func Secondary(rate float64, target int, quick bool) []SecondaryRow {
	if quick {
		target = 300
	}
	names := []string{"SCC-2S", "SCC-VW", "OCC-BC", "WAIT-50", "2PL-PA"}
	rows := make([]SecondaryRow, len(names))
	for i, n := range names {
		cfg := rtdbs.Config{
			Workload:  workload.Baseline(rate, 1),
			Target:    target,
			Warmup:    target / 10,
			MaxActive: 4000,
		}
		res := rtdbs.Run(cfg, Protocol(n).New())
		m := res.Metrics
		rows[i] = SecondaryRow{
			Protocol:          n,
			MissedRatio:       m.MissedRatio(),
			AvgTardiness:      m.AvgTardiness(),
			RestartsPerCommit: m.RestartsPerCommit(),
			WastedFraction:    m.WastedFraction(),
			Promotions:        m.Promotions,
			ShadowForks:       m.ShadowForks,
			CommitWaits:       m.CommitWaits,
			PriorityAborts:    m.DeadlockAvert,
		}
	}
	return rows
}

// SecondaryTable formats the secondary measures.
func SecondaryTable(rows []SecondaryRow, rate float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "secondary measures at %.0f txn/s (baseline workload)\n", rate)
	fmt.Fprintf(&b, "%-10s %10s %10s %12s %10s %10s %10s %10s %10s\n",
		"protocol", "missed%", "tardy(s)", "restarts/c", "wasted", "promos", "forks", "waits", "p-aborts")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10.2f %10.3f %12.3f %10.3f %10d %10d %10d %10d\n",
			r.Protocol, r.MissedRatio, r.AvgTardiness, r.RestartsPerCommit,
			r.WastedFraction, r.Promotions, r.ShadowForks, r.CommitWaits, r.PriorityAborts)
	}
	return b.String()
}

// ResourceRow is one (protocol, servers) sample of the resource ablation.
type ResourceRow struct {
	Protocol    string
	Servers     int // 0 = infinite
	MissedRatio float64
	Truncated   bool
}

// ResourceAblation tests the paper's Sec. 1 claim that SCC (like OCC)
// targets resource-rich systems: with operations queueing for a finite
// server pool, speculative shadows consume capacity that 2PL-PA's blocking
// conserves, so SCC's advantage should shrink as servers get scarce and
// grow as they abound.
func ResourceAblation(rate float64, servers []int, quick bool) []ResourceRow {
	target := 2000
	if quick {
		target = 300
	}
	var rows []ResourceRow
	for _, n := range servers {
		for _, p := range []string{"SCC-2S", "OCC-BC", "2PL-PA"} {
			res := rtdbs.Run(rtdbs.Config{
				Workload:  workload.Baseline(rate, 1),
				Target:    target,
				Warmup:    target / 10,
				MaxActive: 3000,
				Servers:   n,
			}, Protocol(p).New())
			rows = append(rows, ResourceRow{
				Protocol: p, Servers: n,
				MissedRatio: res.Metrics.MissedRatio(),
				Truncated:   res.Truncated,
			})
		}
	}
	return rows
}

// ResourceTable formats the resource ablation.
func ResourceTable(rows []ResourceRow, rate float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "resource ablation at %.0f txn/s: missed ratio %% by server-pool size\n", rate)
	fmt.Fprintf(&b, "%-10s", "servers")
	protos := []string{"SCC-2S", "OCC-BC", "2PL-PA"}
	for _, p := range protos {
		fmt.Fprintf(&b, " %12s", p)
	}
	b.WriteByte('\n')
	byKey := map[string]ResourceRow{}
	seen := map[int]bool{}
	var order []int
	for _, r := range rows {
		byKey[fmt.Sprintf("%s/%d", r.Protocol, r.Servers)] = r
		if !seen[r.Servers] {
			seen[r.Servers] = true
			order = append(order, r.Servers)
		}
	}
	for _, n := range order {
		label := fmt.Sprintf("%d", n)
		if n == 0 {
			label = "inf"
		}
		fmt.Fprintf(&b, "%-10s", label)
		for _, p := range protos {
			r := byKey[fmt.Sprintf("%s/%d", p, n)]
			cell := fmt.Sprintf("%.1f", r.MissedRatio)
			if r.Truncated {
				cell += "†"
			}
			fmt.Fprintf(&b, " %12s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
