package pcc

// Lock-table-level scenarios driven through hand-built transactions: grant
// sharing, priority abort, EDF wake order, and queue hygiene on restarts.

import (
	"testing"

	"repro/internal/model"
	"repro/internal/rtdbs"
	"repro/internal/sim"
	"repro/internal/workload"
)

type scenario struct {
	c  *TwoPLPA
	rt *rtdbs.Runtime
}

func newScenario() *scenario {
	c := New()
	rt := rtdbs.New(rtdbs.Config{
		Workload:      workload.Baseline(1, 1),
		Target:        100,
		CheckReads:    true,
		RecordHistory: true,
	}, c)
	return &scenario{c: c, rt: rt}
}

func (s *scenario) admitAt(at float64, id model.TxnID, deadline float64, opTime float64, ops []model.Op) *model.Txn {
	cl := &model.Class{
		Name: "lock", NumOps: len(ops), MeanOpTime: opTime,
		SlackFactor: 2, Value: 100, PenaltyPerSlack: 1, Frequency: 1,
	}
	tx := &model.Txn{
		ID: id, Class: cl, Arrival: sim.Time(at), Deadline: sim.Time(deadline),
		Ops: ops, OpTime: opTime,
	}
	s.rt.K.At(sim.Time(at), func() { s.rt.Admit(tx) })
	return tx
}

func rd(p model.PageID) model.Op { return model.Op{Page: p} }
func wr(p model.PageID) model.Op { return model.Op{Page: p, Write: true} }

func TestSharedReadersProceedTogether(t *testing.T) {
	s := newScenario()
	// Three readers of page 1 overlap fully; none may block.
	s.admitAt(0, 1, 100, 1.0, []model.Op{rd(1), rd(2)})
	s.admitAt(0, 2, 100, 1.0, []model.Op{rd(1), rd(3)})
	s.admitAt(0, 3, 100, 1.0, []model.Op{rd(1), rd(4)})
	s.rt.K.Run()
	if s.rt.Metrics.BlockedWaits != 0 {
		t.Fatalf("S-locks blocked each other: %d waits", s.rt.Metrics.BlockedWaits)
	}
	if s.rt.Metrics.Committed != 3 {
		t.Fatalf("committed %d", s.rt.Metrics.Committed)
	}
}

func TestWriterBlocksBehindHigherPriorityReader(t *testing.T) {
	s := newScenario()
	// Reader (deadline 10, higher priority) holds S on page 1; writer
	// (deadline 50) must block, not abort it.
	s.admitAt(0, 1, 10, 1.0, []model.Op{rd(1), rd(2), rd(3)})
	s.admitAt(0.5, 2, 50, 1.0, []model.Op{wr(1), wr(4)})
	s.rt.K.Run()
	m := s.rt.Metrics
	if m.DeadlockAvert != 0 {
		t.Fatalf("lower-priority writer aborted the reader (%d aborts)", m.DeadlockAvert)
	}
	if m.BlockedWaits == 0 {
		t.Fatal("writer never blocked")
	}
	if m.Committed != 2 {
		t.Fatalf("committed %d", m.Committed)
	}
	// Serialization: reader first.
	recs := s.rt.History().Records()
	if recs[0].ID != 1 {
		t.Fatalf("first commit txn %d, want the reader", recs[0].ID)
	}
}

func TestHigherPriorityWriterAbortsReader(t *testing.T) {
	s := newScenario()
	// Reader with loose deadline holds S on page 1; a tighter-deadline
	// writer arrives: priority abort, reader restarts.
	s.admitAt(0, 1, 100, 1.0, []model.Op{rd(1), rd(2), rd(3), rd(4)})
	s.admitAt(0.5, 2, 5, 1.0, []model.Op{wr(1), wr(5)})
	s.rt.K.Run()
	m := s.rt.Metrics
	if m.DeadlockAvert == 0 {
		t.Fatal("no priority abort")
	}
	if m.Restarts == 0 {
		t.Fatal("victim not restarted")
	}
	if m.Committed != 2 {
		t.Fatalf("committed %d", m.Committed)
	}
	if err := s.rt.History().Check(); err != nil {
		t.Fatal(err)
	}
}

func TestEDFWakeOrder(t *testing.T) {
	s := newScenario()
	// Writer holds X on page 1 (highest priority). Two more writers queue
	// behind it; the earlier-deadline one must win the lock on release.
	s.admitAt(0, 1, 3, 1.0, []model.Op{wr(1), wr(2)})
	s.admitAt(0.2, 2, 50, 1.0, []model.Op{wr(1), wr(3)}) // loose deadline
	s.admitAt(0.4, 3, 10, 1.0, []model.Op{wr(1), wr(4)}) // tight deadline
	s.rt.K.Run()
	recs := s.rt.History().Records()
	if len(recs) != 3 {
		t.Fatalf("committed %d", len(recs))
	}
	if recs[0].ID != 1 || recs[1].ID != 3 || recs[2].ID != 2 {
		order := []model.TxnID{recs[0].ID, recs[1].ID, recs[2].ID}
		t.Fatalf("commit order %v, want [1 3 2] (EDF wake)", order)
	}
}

func TestChainedPriorityAborts(t *testing.T) {
	s := newScenario()
	// Ever-tighter writers on the same page: each aborts its predecessor.
	s.admitAt(0, 1, 100, 2.0, []model.Op{wr(1), wr(2)})
	s.admitAt(0.5, 2, 50, 2.0, []model.Op{wr(1), wr(3)})
	s.admitAt(1.0, 3, 20, 2.0, []model.Op{wr(1), wr(4)})
	s.rt.K.Run()
	m := s.rt.Metrics
	if m.DeadlockAvert < 2 {
		t.Fatalf("priority aborts = %d, want a chain of at least 2", m.DeadlockAvert)
	}
	if m.Committed != 3 {
		t.Fatalf("committed %d", m.Committed)
	}
	if err := s.rt.History().Check(); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeFreeSharedThenExclusiveOtherPage(t *testing.T) {
	s := newScenario()
	// A transaction reading then writing different pages holds both lock
	// kinds simultaneously; commits release everything for the successor.
	s.admitAt(0, 1, 100, 1.0, []model.Op{rd(1), wr(2), rd(3)})
	s.admitAt(0.2, 2, 200, 1.0, []model.Op{rd(2), rd(1)})
	s.rt.K.Run()
	if s.rt.Metrics.Committed != 2 {
		t.Fatalf("committed %d", s.rt.Metrics.Committed)
	}
	if err := s.rt.History().Check(); err != nil {
		t.Fatal(err)
	}
}
