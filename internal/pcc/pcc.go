// Package pcc implements the pessimistic baseline of the paper's
// evaluation: 2PL with Priority Abort (2PL-PA) [Abbo88]. Transactions
// acquire S/X page locks before each access and hold them until commit; a
// requester that conflicts only with lower-priority (EDF) holders aborts
// them and takes the lock, otherwise it blocks. Because a transaction only
// ever waits behind strictly higher-priority holders and priority is a
// static total order, waits-for cycles — and therefore deadlocks — are
// impossible.
package pcc

import (
	"repro/internal/model"
	"repro/internal/rtdbs"
)

type lockMode int

const (
	lockS lockMode = iota
	lockX
)

func needMode(op model.Op) lockMode {
	if op.Write {
		return lockX
	}
	return lockS
}

type lockState struct {
	holders map[model.TxnID]lockMode
	queue   []*rtdbs.Shadow // waiting shadows, granted in EDF order
}

// TwoPLPA is the 2PL-PA concurrency control manager.
type TwoPLPA struct {
	rt    *rtdbs.Runtime
	locks map[model.PageID]*lockState
	held  map[model.TxnID]map[model.PageID]lockMode
	// queuedAt tracks the single page a transaction is waiting on, so
	// aborts can purge queue entries without scanning every lock.
	queuedAt map[model.TxnID]model.PageID
}

// New returns a 2PL-PA concurrency control manager.
func New() *TwoPLPA {
	return &TwoPLPA{
		locks:    make(map[model.PageID]*lockState),
		held:     make(map[model.TxnID]map[model.PageID]lockMode),
		queuedAt: make(map[model.TxnID]model.PageID),
	}
}

// Name implements rtdbs.CCM.
func (c *TwoPLPA) Name() string { return "2PL-PA" }

// Attach implements rtdbs.CCM.
func (c *TwoPLPA) Attach(rt *rtdbs.Runtime) { c.rt = rt }

// OnArrival spawns the transaction's single execution.
func (c *TwoPLPA) OnArrival(t *model.Txn) { c.rt.Kick(c.rt.Spawn(t, 0, nil)) }

func (c *TwoPLPA) lock(p model.PageID) *lockState {
	l := c.locks[p]
	if l == nil {
		l = &lockState{holders: make(map[model.TxnID]lockMode)}
		c.locks[p] = l
	}
	return l
}

func (c *TwoPLPA) holds(id model.TxnID, p model.PageID, m lockMode) bool {
	got, ok := c.held[id][p]
	return ok && (got == lockX || got == m)
}

// conflictingHolders returns the holders of p incompatible with id
// acquiring mode m, in ascending TxnID order for determinism.
func (c *TwoPLPA) conflictingHolders(p model.PageID, id model.TxnID, m lockMode) []model.TxnID {
	l := c.lock(p)
	var out []model.TxnID
	for hid, hm := range l.holders {
		if hid == id {
			continue
		}
		if m == lockX || hm == lockX {
			out = append(out, hid)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// CanProceed requests the lock for the shadow's next operation: grant,
// priority-abort lower-priority holders, or block.
func (c *TwoPLPA) CanProceed(sh *rtdbs.Shadow) bool {
	t := sh.Txn
	op := t.Ops[sh.NextOp]
	m := needMode(op)
	if c.holds(t.ID, op.Page, m) {
		return true
	}
	conf := c.conflictingHolders(op.Page, t.ID, m)
	if len(conf) == 0 {
		c.grant(t.ID, op.Page, m)
		return true
	}
	for _, hid := range conf {
		holder := c.rt.State(hid)
		if holder == nil || !t.HigherPriority(holder.Txn) {
			// Some conflicting holder outranks the requester: block.
			c.enqueue(sh, op.Page)
			return false
		}
	}
	// The requester outranks every conflicting holder: abort them all.
	// Grant to the requester BEFORE releasing the victims: releaseAll
	// wakes queues on every page a victim held — including this one — and
	// could otherwise hand the contested lock to a queued third party,
	// leaving two incompatible holders.
	victims := make([]*model.Txn, 0, len(conf))
	for _, hid := range conf {
		victims = append(victims, c.rt.State(hid).Txn)
	}
	c.grant(t.ID, op.Page, m)
	for _, v := range victims {
		c.releaseAll(v.ID)
		c.rt.Metrics.DeadlockAvert++
	}
	for _, v := range victims {
		c.rt.Restart(v)
	}
	return true
}

func (c *TwoPLPA) grant(id model.TxnID, p model.PageID, m lockMode) {
	l := c.lock(p)
	if cur, ok := l.holders[id]; !ok || m == lockX && cur == lockS {
		l.holders[id] = m
	}
	h := c.held[id]
	if h == nil {
		h = make(map[model.PageID]lockMode)
		c.held[id] = h
	}
	h[p] = m
	if at, ok := c.queuedAt[id]; ok && at == p {
		delete(c.queuedAt, id)
	}
}

func (c *TwoPLPA) enqueue(sh *rtdbs.Shadow, p model.PageID) {
	id := sh.Txn.ID
	if at, ok := c.queuedAt[id]; ok {
		if at == p {
			return // already waiting here
		}
		c.dequeue(id, at)
	}
	l := c.lock(p)
	l.queue = append(l.queue, sh)
	c.queuedAt[id] = p
}

func (c *TwoPLPA) dequeue(id model.TxnID, p model.PageID) {
	l := c.lock(p)
	for i, sh := range l.queue {
		if sh.Txn.ID == id {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			break
		}
	}
	delete(c.queuedAt, id)
}

// releaseAll drops every lock and queue entry of id and wakes waiters.
func (c *TwoPLPA) releaseAll(id model.TxnID) {
	if at, ok := c.queuedAt[id]; ok {
		c.dequeue(id, at)
	}
	pages := c.held[id]
	delete(c.held, id)
	// Deterministic order: sort the released pages.
	sorted := make([]model.PageID, 0, len(pages))
	for p := range pages {
		sorted = append(sorted, p)
	}
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for _, p := range sorted {
		delete(c.lock(p).holders, id)
		c.wake(p)
	}
}

// wake grants queued requests on p in EDF priority order, stopping at the
// first waiter whose request is still incompatible.
func (c *TwoPLPA) wake(p model.PageID) {
	l := c.lock(p)
	for len(l.queue) > 0 {
		// Select the highest-priority waiter.
		best := 0
		for i := 1; i < len(l.queue); i++ {
			if l.queue[i].Txn.HigherPriority(l.queue[best].Txn) {
				best = i
			}
		}
		sh := l.queue[best]
		if sh.Aborted() {
			// Stale entry from a restarted transaction.
			l.queue = append(l.queue[:best], l.queue[best+1:]...)
			delete(c.queuedAt, sh.Txn.ID)
			continue
		}
		op := sh.Txn.Ops[sh.NextOp]
		m := needMode(op)
		if len(c.conflictingHolders(p, sh.Txn.ID, m)) > 0 {
			return
		}
		l.queue = append(l.queue[:best], l.queue[best+1:]...)
		delete(c.queuedAt, sh.Txn.ID)
		c.grant(sh.Txn.ID, p, m)
		c.rt.Kick(sh)
	}
}

// OnOpDone implements rtdbs.CCM: 2PL does its work at lock-request time.
func (c *TwoPLPA) OnOpDone(*rtdbs.Shadow) {}

// OnFinish commits immediately: all locks are held, so validation is
// trivially satisfied.
func (c *TwoPLPA) OnFinish(sh *rtdbs.Shadow) { c.rt.Commit(sh) }

// OnCommitted releases the committer's locks and wakes waiters.
func (c *TwoPLPA) OnCommitted(t *model.Txn, _ *rtdbs.Shadow) {
	c.releaseAll(t.ID)
}
