package pcc

import (
	"testing"

	"repro/internal/rtdbs"
	"repro/internal/workload"
)

func cfg(rate float64, seed int64, target int) rtdbs.Config {
	return rtdbs.Config{
		Workload:      workload.Baseline(rate, seed),
		Target:        target,
		Warmup:        20,
		CheckReads:    true,
		RecordHistory: true,
	}
}

func TestSerializable(t *testing.T) {
	for _, rate := range []float64{20, 45} {
		res := rtdbs.Run(cfg(rate, 1, 400), New())
		if res.Truncated {
			t.Fatalf("rate %v: truncated", rate)
		}
		if err := res.History.Check(); err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		if res.Metrics.Committed != 400 {
			t.Fatalf("rate %v: committed %d", rate, res.Metrics.Committed)
		}
	}
}

// TestSaturatedRegimeStillSerializable: past ~60-90 tps, 2PL-PA's
// throughput falls below the arrival rate (the paper's Fig. 13: 2PL-PA
// degrades "at much lower system loads and with a much higher slope").
// With soft deadlines nothing is shed, so the active population grows
// until the run truncates. Whatever committed must still be serializable,
// and commits must keep flowing (saturation, not livelock).
func TestSaturatedRegimeStillSerializable(t *testing.T) {
	c := cfg(120, 1, 4000)
	c.MaxActive = 1500
	res := rtdbs.Run(c, New())
	if res.Metrics.Committed < 50 {
		t.Fatalf("only %d commits before truncation: livelock?", res.Metrics.Committed)
	}
	if err := res.History.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministic(t *testing.T) {
	a := rtdbs.Run(cfg(50, 2, 300), New())
	b := rtdbs.Run(cfg(50, 2, 300), New())
	if *a.Metrics != *b.Metrics {
		t.Fatalf("nondeterministic 2PL-PA:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
}

func TestBlockingHappens(t *testing.T) {
	res := rtdbs.Run(cfg(50, 3, 400), New())
	if res.Metrics.BlockedWaits == 0 {
		t.Fatal("2PL never blocked under contention")
	}
}

func TestPriorityAbortsHappen(t *testing.T) {
	res := rtdbs.Run(cfg(50, 4, 400), New())
	if res.Metrics.DeadlockAvert == 0 {
		t.Fatal("no priority aborts at high contention")
	}
	if res.Metrics.Restarts == 0 {
		t.Fatal("priority aborts must restart victims")
	}
}

func TestNoDeadlockAtSustainedLoad(t *testing.T) {
	// Priority abort makes waits-for cycles impossible; at a load the
	// protocol can sustain, the run must complete without wedging.
	res := rtdbs.Run(cfg(45, 5, 300), New())
	if res.Truncated {
		t.Fatal("2PL-PA wedged (possible deadlock)")
	}
	if res.Metrics.Committed != 300 {
		t.Fatalf("committed %d", res.Metrics.Committed)
	}
}

func TestLowLoadFewMisses(t *testing.T) {
	res := rtdbs.Run(cfg(10, 6, 300), New())
	if mr := res.Metrics.MissedRatio(); mr > 5 {
		t.Fatalf("missed ratio at 10 tps = %v%%, want near zero", mr)
	}
}

func TestNoShadowMachinery(t *testing.T) {
	res := rtdbs.Run(cfg(40, 7, 200), New())
	if res.Metrics.Promotions != 0 || res.Metrics.ShadowForks != 0 {
		t.Fatal("2PL-PA must not use speculative shadows")
	}
}

// TestHotspot drives every transaction through a tiny database so nearly
// every pair conflicts; the protocol must still produce serializable
// histories and finish.
func TestHotspot(t *testing.T) {
	wl := workload.Baseline(30, 8)
	wl.DBPages = 20
	wl.Classes[0].NumOps = 4
	res := rtdbs.Run(rtdbs.Config{
		Workload: wl, Target: 300, Warmup: 10,
		CheckReads: true, RecordHistory: true,
	}, New())
	if res.Truncated {
		t.Fatal("hotspot run truncated")
	}
	if err := res.History.Check(); err != nil {
		t.Fatal(err)
	}
}
