package plot

import (
	"strings"
	"testing"
)

func sample() Chart {
	return Chart{
		Title:  "Missed Ratio",
		XLabel: "Arrival Rate",
		YLabel: "%",
		Series: []Series{
			{Label: "SCC-2S", X: []float64{10, 100, 200}, Y: []float64{0, 10, 40}},
			{Label: "OCC-BC", X: []float64{10, 100, 200}, Y: []float64{0, 25, 80}},
		},
	}
}

func TestRenderContainsEverything(t *testing.T) {
	out := sample().Render()
	for _, want := range []string{"Missed Ratio", "SCC-2S", "OCC-BC", "Arrival Rate", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Chart{Title: "t"}.Render()
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart: %q", out)
	}
}

func TestRenderSinglePoint(t *testing.T) {
	c := Chart{Series: []Series{{Label: "p", X: []float64{5}, Y: []float64{7}}}}
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestClampedAxis(t *testing.T) {
	c := sample()
	c.YMin, c.YMax = 0, 100
	out := c.Render()
	if !strings.Contains(out, "100.00") {
		t.Fatalf("clamped axis label missing:\n%s", out)
	}
}

func TestDimensions(t *testing.T) {
	c := sample()
	c.Width, c.Height = 30, 8
	out := c.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 8 rows + axis + xlabels + labels line + 2 legend lines
	if len(lines) != 1+8+1+1+1+2 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	for _, ln := range lines[1:9] {
		if !strings.Contains(ln, "|") {
			t.Fatalf("plot row without frame: %q", ln)
		}
	}
}

func TestCustomMarker(t *testing.T) {
	c := Chart{Series: []Series{{Label: "q", Marker: '$', X: []float64{1, 2}, Y: []float64{1, 2}}}}
	if out := c.Render(); !strings.Contains(out, "$") {
		t.Fatalf("custom marker missing:\n%s", out)
	}
}

func TestOutOfRangeValuesClamped(t *testing.T) {
	c := Chart{
		YMin: 0, YMax: 10,
		Series: []Series{{Label: "v", X: []float64{0, 1}, Y: []float64{-50, 500}}},
	}
	// Must not panic; points clamp to the frame.
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Fatalf("clamped points vanished:\n%s", out)
	}
}
