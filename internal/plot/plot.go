// Package plot renders experiment series as ASCII line charts, so the
// reproduction's figures can be eyeballed directly in a terminal next to
// the paper's.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one labeled curve.
type Series struct {
	Label  string
	X      []float64
	Y      []float64
	Marker byte
}

// Chart is a set of series over a shared axis.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Width  int // plot area columns (default 64)
	Height int // plot area rows (default 20)
	// YMin/YMax clamp the axis when set (YMax > YMin); otherwise the
	// range fits the data.
	YMin, YMax float64
}

var defaultMarkers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart.
func (c Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 20
	}
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			xMin = math.Min(xMin, s.X[i])
			xMax = math.Max(xMax, s.X[i])
			yMin = math.Min(yMin, s.Y[i])
			yMax = math.Max(yMax, s.Y[i])
		}
	}
	if math.IsInf(xMin, 1) {
		return c.Title + "\n(no data)\n"
	}
	if c.YMax > c.YMin {
		yMin, yMax = c.YMin, c.YMax
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	if xMax == xMin {
		xMax = xMin + 1
	}

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.Series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		for i := range s.X {
			col := int(math.Round((s.X[i] - xMin) / (xMax - xMin) * float64(w-1)))
			y := math.Min(math.Max(s.Y[i], yMin), yMax)
			row := h - 1 - int(math.Round((y-yMin)/(yMax-yMin)*float64(h-1)))
			if row >= 0 && row < h && col >= 0 && col < w {
				grid[row][col] = marker
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for i, row := range grid {
		yVal := yMax - (yMax-yMin)*float64(i)/float64(h-1)
		fmt.Fprintf(&b, "%9.2f |%s|\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "%9s +%s+\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%9s  %-*.2f%*.2f\n", "", w/2, xMin, w-w/2, xMax)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%9s  x: %s   y: %s\n", "", c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		fmt.Fprintf(&b, "%9s  %c %s\n", "", marker, s.Label)
	}
	return b.String()
}
