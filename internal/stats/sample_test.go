package stats

import (
	"math"
	"testing"
)

func TestSamplePercentile(t *testing.T) {
	s := NewSample(0, 1)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	for _, tc := range []struct{ p, want float64 }{
		{0, 1}, {100, 100}, {50, 50.5}, {99, 99.01},
	} {
		if got := s.Percentile(tc.p); math.Abs(got-tc.want) > 0.02 {
			t.Errorf("P%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if s.N() != 100 {
		t.Errorf("N = %d", s.N())
	}
	if got := s.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Mean = %v", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	s := NewSample(0, 1)
	if !math.IsNaN(s.Percentile(50)) {
		t.Error("empty percentile should be NaN")
	}
	if s.Mean() != 0 {
		t.Error("empty mean should be 0")
	}
}

func TestSampleReservoir(t *testing.T) {
	s := NewSample(100, 7)
	const n = 100000
	for i := 0; i < n; i++ {
		s.Add(float64(i % 1000))
	}
	if s.N() != n {
		t.Errorf("N = %d, want %d", s.N(), n)
	}
	if len(s.Raw()) != 100 {
		t.Errorf("reservoir size = %d, want 100", len(s.Raw()))
	}
	// The exact mean is unaffected by the reservoir.
	if got := s.Mean(); math.Abs(got-499.5) > 1e-9 {
		t.Errorf("Mean = %v, want 499.5", got)
	}
	// The reservoir median of a uniform 0..999 stream should be near 500;
	// a reservoir of 100 has standard error ~ 29, so ±150 is generous but
	// catches a broken (biased) reservoir.
	if med := s.Percentile(50); med < 350 || med > 650 {
		t.Errorf("reservoir median = %v, want ~500", med)
	}
}
