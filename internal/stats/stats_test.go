package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMetricsRatios(t *testing.T) {
	m := &Metrics{Committed: 200, Missed: 30, TardinessSum: 10, ValueSum: 5000, MaxValueSum: 20000}
	if got := m.MissedRatio(); got != 15 {
		t.Fatalf("MissedRatio = %v, want 15", got)
	}
	if got := m.AvgTardiness(); got != 0.05 {
		t.Fatalf("AvgTardiness = %v, want 0.05", got)
	}
	if got := m.SystemValuePct(); got != 25 {
		t.Fatalf("SystemValuePct = %v, want 25", got)
	}
}

func TestMetricsEmpty(t *testing.T) {
	m := &Metrics{}
	if m.MissedRatio() != 0 || m.AvgTardiness() != 0 || m.SystemValuePct() != 0 ||
		m.WastedFraction() != 0 || m.RestartsPerCommit() != 0 {
		t.Fatal("empty metrics must return zeros, not NaN")
	}
}

func TestSystemValueClamp(t *testing.T) {
	m := &Metrics{ValueSum: -1e9, MaxValueSum: 1000}
	if got := m.SystemValuePct(); got != -100 {
		t.Fatalf("SystemValuePct = %v, want clamp at -100", got)
	}
}

func TestWastedFraction(t *testing.T) {
	m := &Metrics{WastedTime: 1, UsefulTime: 3}
	if got := m.WastedFraction(); got != 0.25 {
		t.Fatalf("WastedFraction = %v, want 0.25", got)
	}
}

func TestWelfordAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	var w Welford
	sum := 0.0
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		w.Add(xs[i])
		sum += xs[i]
	}
	mean := sum / float64(len(xs))
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Fatalf("Welford mean %v, direct %v", w.Mean(), mean)
	}
	varSum := 0.0
	for _, x := range xs {
		varSum += (x - mean) * (x - mean)
	}
	direct := varSum / float64(len(xs)-1)
	if math.Abs(w.Var()-direct) > 1e-9 {
		t.Fatalf("Welford var %v, direct %v", w.Var(), direct)
	}
}

func TestWelfordSmallN(t *testing.T) {
	var w Welford
	if w.Var() != 0 {
		t.Fatal("variance of empty accumulator must be 0")
	}
	w.Add(5)
	if w.Var() != 0 || w.Mean() != 5 {
		t.Fatal("single observation: var 0, mean x")
	}
	if !math.IsInf(w.CI90(), 1) {
		t.Fatal("CI with n<2 must be infinite")
	}
}

func TestTCrit90(t *testing.T) {
	if got := TCrit90(1); got != 6.314 {
		t.Fatalf("TCrit90(1) = %v", got)
	}
	if got := TCrit90(4); got != 2.132 {
		t.Fatalf("TCrit90(4) = %v", got)
	}
	if got := TCrit90(100); got != 1.645 {
		t.Fatalf("TCrit90(100) = %v", got)
	}
	if !math.IsInf(TCrit90(0), 1) {
		t.Fatal("TCrit90(0) must be infinite")
	}
}

func TestCI90CoversTrueMean(t *testing.T) {
	// With normally distributed seeds, the 90% CI should cover the true
	// mean about 90% of the time. Allow generous slack: this is a sanity
	// check of the formula, not a calibration experiment.
	rng := rand.New(rand.NewSource(7))
	covered := 0
	const trials = 2000
	for trial := 0; trial < trials; trial++ {
		var w Welford
		for i := 0; i < 8; i++ {
			w.Add(rng.NormFloat64()*2 + 50)
		}
		if math.Abs(w.Mean()-50) <= w.CI90() {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("90%% CI covered true mean %.1f%% of the time", 100*frac)
	}
}

func TestAggregate(t *testing.T) {
	e := Aggregate([]float64{10, 12, 14})
	if e.Mean != 12 || e.N != 3 {
		t.Fatalf("Aggregate = %+v", e)
	}
	if e.CI <= 0 {
		t.Fatalf("CI = %v, want positive", e.CI)
	}
	s := e.String()
	if s == "" {
		t.Fatal("empty String")
	}
	single := Aggregate([]float64{5})
	if single.String() != "5.00" {
		t.Fatalf("single-run String = %q, want bare mean", single.String())
	}
}

func TestMerge(t *testing.T) {
	a := &Metrics{Committed: 1, Missed: 1, TardinessSum: 2, ValueSum: 3, MaxValueSum: 4,
		Restarts: 5, Promotions: 6, ShadowForks: 7, ShadowAborts: 8,
		WastedTime: 9, UsefulTime: 10, CommitWaits: 11, BlockedWaits: 12, DeadlockAvert: 13}
	b := &Metrics{}
	b.Merge(a)
	b.Merge(a)
	if b.Committed != 2 || b.DeadlockAvert != 26 || b.WastedTime != 18 {
		t.Fatalf("Merge result wrong: %+v", b)
	}
}

// Property: Welford mean is always within [min, max] of inputs.
func TestWelfordMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		var w Welford
		lo, hi := math.Inf(1), math.Inf(-1)
		ok := false
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				continue
			}
			ok = true
			w.Add(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if !ok {
			return true
		}
		return w.Mean() >= lo-1e-6 && w.Mean() <= hi+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is never negative.
func TestWelfordVarNonNegative(t *testing.T) {
	f := func(xs []float32) bool {
		var w Welford
		for _, x := range xs {
			w.Add(float64(x))
		}
		return w.Var() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
