// Package stats collects the performance measures of Sec. 4: Missed Ratio,
// Average Tardiness and System Value as primary measures, plus the
// secondary measures (restarts, wasted computation) the paper uses to
// explain protocol behaviour, and Student-t confidence intervals across
// replicated runs.
package stats

import (
	"fmt"
	"math"
)

// Metrics accumulates the outcome of one simulation run.
type Metrics struct {
	Committed    int     // transactions committed
	Missed       int     // committed after their deadline
	TardinessSum float64 // sum over committed of max(0, commit - deadline)
	ValueSum     float64 // sum of V_u(commit time)
	MaxValueSum  float64 // sum of v_u (value if everything committed on time)

	Restarts      int     // from-scratch restarts (OCC aborts, 2PL-PA aborts)
	Promotions    int     // SCC shadow promotions (aborts avoided)
	ShadowForks   int     // speculative shadows created
	ShadowAborts  int     // speculative shadows aborted before promotion
	WastedTime    float64 // execution time of aborted shadows/runs
	UsefulTime    float64 // execution time of committed shadows
	CommitWaits   int     // commits deferred at least once (WAIT-50, DC, VW)
	BlockedWaits  int     // times a shadow blocked (2PL queue or SCC block point)
	DeadlockAvert int     // 2PL-PA priority aborts issued
}

// MissedRatio returns the percentage of committed transactions that missed
// their deadline.
func (m *Metrics) MissedRatio() float64 {
	if m.Committed == 0 {
		return 0
	}
	return 100 * float64(m.Missed) / float64(m.Committed)
}

// AvgTardiness returns the mean tardiness in seconds over committed
// transactions (on-time transactions contribute zero, matching the paper's
// definition).
func (m *Metrics) AvgTardiness() float64 {
	if m.Committed == 0 {
		return 0
	}
	return m.TardinessSum / float64(m.Committed)
}

// SystemValuePct returns accrued value as a percentage of the maximum
// attainable value, clamped below at -100 to match the paper's Fig. 14
// axis (value losses beyond one full workload's worth saturate the plot).
func (m *Metrics) SystemValuePct() float64 {
	if m.MaxValueSum == 0 {
		return 0
	}
	v := 100 * m.ValueSum / m.MaxValueSum
	if v < -100 {
		return -100
	}
	return v
}

// WastedFraction returns wasted execution time as a fraction of all
// execution time spent.
func (m *Metrics) WastedFraction() float64 {
	total := m.WastedTime + m.UsefulTime
	if total == 0 {
		return 0
	}
	return m.WastedTime / total
}

// RestartsPerCommit returns the average number of from-scratch restarts
// per committed transaction.
func (m *Metrics) RestartsPerCommit() float64 {
	if m.Committed == 0 {
		return 0
	}
	return float64(m.Restarts) / float64(m.Committed)
}

// Welford is an online mean/variance accumulator.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add accumulates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Var()) }

// tTable90 holds two-sided 90% Student-t critical values by degrees of
// freedom (index = df); df > 30 uses the normal approximation 1.645.
var tTable90 = []float64{
	0, 6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833,
	1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729,
	1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
}

// TCrit90 returns the two-sided 90% critical value for df degrees of
// freedom.
func TCrit90(df int) float64 {
	if df <= 0 {
		return math.Inf(1)
	}
	if df < len(tTable90) {
		return tTable90[df]
	}
	return 1.645
}

// CI90 returns the half-width of the 90% confidence interval of the mean.
func (w *Welford) CI90() float64 {
	if w.n < 2 {
		return math.Inf(1)
	}
	return TCrit90(w.n-1) * w.StdDev() / math.Sqrt(float64(w.n))
}

// Estimate is a mean with a 90% confidence half-width, produced by
// aggregating one measure across seeds.
type Estimate struct {
	Mean float64
	CI   float64
	N    int
}

func (e Estimate) String() string {
	if math.IsInf(e.CI, 1) {
		return fmt.Sprintf("%.2f", e.Mean)
	}
	return fmt.Sprintf("%.2f±%.2f", e.Mean, e.CI)
}

// Aggregate reduces per-seed observations to an Estimate.
func Aggregate(xs []float64) Estimate {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return Estimate{Mean: w.Mean(), CI: w.CI90(), N: w.N()}
}

// Merge adds other's counters into m (used to pool warm-up-trimmed
// segments or shard results).
func (m *Metrics) Merge(other *Metrics) {
	m.Committed += other.Committed
	m.Missed += other.Missed
	m.TardinessSum += other.TardinessSum
	m.ValueSum += other.ValueSum
	m.MaxValueSum += other.MaxValueSum
	m.Restarts += other.Restarts
	m.Promotions += other.Promotions
	m.ShadowForks += other.ShadowForks
	m.ShadowAborts += other.ShadowAborts
	m.WastedTime += other.WastedTime
	m.UsefulTime += other.UsefulTime
	m.CommitWaits += other.CommitWaits
	m.BlockedWaits += other.BlockedWaits
	m.DeadlockAvert += other.DeadlockAvert
}
