package stats

import (
	"math"
	"sort"

	"repro/internal/dist"
)

// Sample accumulates scalar observations (latencies, queue depths) for
// quantile reporting. With cap <= 0 it keeps everything; with a positive
// cap it keeps a uniform reservoir (Vitter's Algorithm R), so a
// long-running server can report percentiles in bounded memory.
type Sample struct {
	cap int
	n   int64
	xs  []float64
	sum float64
	rng *dist.RNG
}

// NewSample returns a sample; cap <= 0 keeps every observation.
func NewSample(cap int, seed int64) *Sample {
	return &Sample{cap: cap, rng: dist.NewRNG(seed)}
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.n++
	s.sum += x
	if s.cap <= 0 || len(s.xs) < s.cap {
		s.xs = append(s.xs, x)
		return
	}
	// Reservoir: keep x with probability cap/n, replacing a uniform victim.
	if j := int64(s.rng.Float64() * float64(s.n)); j < int64(s.cap) {
		s.xs[j] = x
	}
}

// N returns the number of observations recorded.
func (s *Sample) N() int64 { return s.n }

// Mean returns the exact mean over all observations (not just the
// reservoir).
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Raw returns the retained observations (everything with cap <= 0, the
// reservoir otherwise). The slice is shared; callers must not mutate it.
func (s *Sample) Raw() []float64 { return s.xs }

// Percentile returns the p-th percentile (p in [0, 100]) of the retained
// observations by linear interpolation between order statistics. NaN with
// no observations.
func (s *Sample) Percentile(p float64) float64 {
	return s.Percentiles(p)[0]
}

// Percentiles computes several percentiles with a single copy-and-sort of
// the retained observations. NaN entries with no observations.
func (s *Sample) Percentiles(ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(s.xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := make([]float64, len(s.xs))
	copy(sorted, s.xs)
	sort.Float64s(sorted)
	for i, p := range ps {
		switch {
		case p <= 0:
			out[i] = sorted[0]
		case p >= 100:
			out[i] = sorted[len(sorted)-1]
		default:
			rank := p / 100 * float64(len(sorted)-1)
			lo := int(rank)
			frac := rank - float64(lo)
			if lo+1 >= len(sorted) {
				out[i] = sorted[len(sorted)-1]
			} else {
				out[i] = sorted[lo]*(1-frac) + sorted[lo+1]*frac
			}
		}
	}
	return out
}
