package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestOrdering(t *testing.T) {
	k := New()
	var got []int
	k.At(3, func() { got = append(got, 3) })
	k.At(1, func() { got = append(got, 1) })
	k.At(2, func() { got = append(got, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 3 {
		t.Fatalf("Now = %v, want 3", k.Now())
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	k := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	k.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant order = %v, want scheduling order", got)
		}
	}
}

func TestAfter(t *testing.T) {
	k := New()
	var at Time
	k.After(2, func() {
		k.After(3, func() { at = k.Now() })
	})
	k.Run()
	if at != 5 {
		t.Fatalf("nested After fired at %v, want 5", at)
	}
}

func TestCancel(t *testing.T) {
	k := New()
	fired := false
	e := k.At(1, func() { fired = true })
	k.Cancel(e)
	k.Cancel(e) // double cancel is a no-op
	k.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestCancelDuringRun(t *testing.T) {
	k := New()
	fired := false
	var e *Event
	e = k.At(2, func() { fired = true })
	k.At(1, func() { k.Cancel(e) })
	k.Run()
	if fired {
		t.Fatal("event fired after being canceled by an earlier event")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := New()
	k.At(5, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.At(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	k := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	k.After(-1, func() {})
}

func TestStop(t *testing.T) {
	k := New()
	count := 0
	for i := 0; i < 10; i++ {
		k.At(Time(i), func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 3 {
		t.Fatalf("fired %d events after Stop at 3", count)
	}
	k.Run() // resumes
	if count != 10 {
		t.Fatalf("fired %d events total, want 10", count)
	}
}

func TestRunUntil(t *testing.T) {
	k := New()
	var got []Time
	for _, at := range []Time{1, 2, 3, 4} {
		at := at
		k.At(at, func() { got = append(got, at) })
	}
	k.RunUntil(2.5)
	if len(got) != 2 || k.Now() != 2.5 {
		t.Fatalf("RunUntil(2.5): fired %v, now %v", got, k.Now())
	}
	k.RunUntil(10)
	if len(got) != 4 || k.Now() != 10 {
		t.Fatalf("RunUntil(10): fired %v, now %v", got, k.Now())
	}
}

func TestStepEmpty(t *testing.T) {
	k := New()
	if k.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

// TestRandomizedOrdering schedules many events at random times and checks
// they fire in nondecreasing time order with FIFO tie-breaking.
func TestRandomizedOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	k := New()
	type stamp struct {
		at  Time
		seq int
	}
	var fired []stamp
	n := 2000
	for i := 0; i < n; i++ {
		at := Time(rng.Intn(100))
		seq := i
		k.At(at, func() { fired = append(fired, stamp{at, seq}) })
	}
	k.Run()
	if len(fired) != n {
		t.Fatalf("fired %d, want %d", len(fired), n)
	}
	if !sort.SliceIsSorted(fired, func(i, j int) bool {
		if fired[i].at != fired[j].at {
			return fired[i].at < fired[j].at
		}
		return fired[i].seq < fired[j].seq
	}) {
		t.Fatal("events fired out of (time, seq) order")
	}
}

// TestDeterminism verifies identical schedules replay identically.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		k := New()
		var trace []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			trace = append(trace, k.Now())
			if depth < 4 {
				for i := 0; i < 3; i++ {
					k.After(Time(rng.Float64()), func() { spawn(depth + 1) })
				}
			}
		}
		k.At(0, func() { spawn(0) })
		k.Run()
		return trace
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCancelAlreadyFired(t *testing.T) {
	k := New()
	e := k.At(1, func() {})
	k.Run()
	k.Cancel(e) // must not panic
}

func BenchmarkScheduleAndFire(b *testing.B) {
	k := New()
	for i := 0; i < b.N; i++ {
		k.After(1, func() {})
		k.Step()
	}
}
