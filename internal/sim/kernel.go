// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order, which
// makes every simulation replayable: the same seed and inputs produce the
// same event trace.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is virtual time in seconds.
type Time float64

// Event is a scheduled callback. It is returned by At/After so callers can
// cancel it before it fires.
type Event struct {
	at       Time
	seq      int64
	fn       func()
	canceled bool
	index    int // heap index, -1 when popped
}

// At reports the virtual time this event is scheduled for.
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is a single-threaded discrete-event simulator.
type Kernel struct {
	now     Time
	q       eventHeap
	seq     int64
	stopped bool
	steps   int64
}

// New returns a kernel with the clock at zero.
func New() *Kernel { return &Kernel{} }

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Steps returns the number of events fired so far.
func (k *Kernel) Steps() int64 { return k.steps }

// Pending returns the number of events in the queue, including canceled
// events that have not been reaped yet.
func (k *Kernel) Pending() int { return len(k.q) }

// At schedules fn at absolute time t. Scheduling in the past panics: it is
// always a model bug and silently reordering time corrupts results.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	e := &Event{at: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.q, e)
	return e
}

// After schedules fn d seconds after the current time.
func (k *Kernel) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now+d, fn)
}

// Cancel prevents e from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	if e.index >= 0 {
		heap.Remove(&k.q, e.index)
	}
}

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Step fires the next event. It reports false when the queue is empty.
func (k *Kernel) Step() bool {
	for len(k.q) > 0 {
		e := heap.Pop(&k.q).(*Event)
		if e.canceled {
			continue
		}
		k.now = e.at
		k.steps++
		e.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or Stop is called.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then sets the clock to t.
func (k *Kernel) RunUntil(t Time) {
	k.stopped = false
	for !k.stopped {
		if len(k.q) == 0 || k.peek().at > t {
			break
		}
		k.Step()
	}
	if t > k.now {
		k.now = t
	}
}

func (k *Kernel) peek() *Event {
	for len(k.q) > 0 && k.q[0].canceled {
		heap.Pop(&k.q)
	}
	if len(k.q) == 0 {
		return nil
	}
	return k.q[0]
}
