// Package occ implements the optimistic baselines of the paper's
// evaluation: OCC-BC (broadcast commit / forward validation, [Mena82,
// Robi82], the variant Haritsa showed superior for firm-deadline RTDBS)
// and WAIT-50 (Haritsa's dynamic wait control: a validating transaction
// waits while at least half of the transactions it would abort have higher
// priority).
package occ

import (
	"repro/internal/model"
	"repro/internal/rtdbs"
)

// BC is broadcast-commit OCC: transactions run free; when one validates it
// commits immediately and every concurrently running transaction that read
// a page it wrote is restarted at once (rather than at its own validation,
// as in classical OCC).
type BC struct {
	rt     *rtdbs.Runtime
	shadow map[model.TxnID]*rtdbs.Shadow
}

// NewBC returns an OCC-BC concurrency control manager.
func NewBC() *BC { return &BC{shadow: make(map[model.TxnID]*rtdbs.Shadow)} }

// Name implements rtdbs.CCM.
func (c *BC) Name() string { return "OCC-BC" }

// Attach implements rtdbs.CCM.
func (c *BC) Attach(rt *rtdbs.Runtime) { c.rt = rt }

// OnArrival spawns the single optimistic execution.
func (c *BC) OnArrival(t *model.Txn) {
	sh := c.rt.Spawn(t, 0, nil)
	c.shadow[t.ID] = sh
	c.rt.Kick(sh)
}

// CanProceed implements rtdbs.CCM: optimistic execution never blocks.
func (c *BC) CanProceed(*rtdbs.Shadow) bool { return true }

// OnOpDone implements rtdbs.CCM: conflicts are ignored until commit.
func (c *BC) OnOpDone(*rtdbs.Shadow) {}

// OnFinish validates and commits immediately (forward validation always
// succeeds: the committer wins every conflict).
func (c *BC) OnFinish(sh *rtdbs.Shadow) { c.rt.Commit(sh) }

// OnCommitted broadcasts the commit: restart every active transaction
// whose execution read a page the committer wrote.
func (c *BC) OnCommitted(t *model.Txn, _ *rtdbs.Shadow) {
	delete(c.shadow, t.ID)
	for _, id := range c.rt.ActiveIDs() {
		sh := c.shadow[id]
		if sh == nil {
			continue
		}
		if stale(c.rt, sh) {
			c.shadow[id] = c.rt.Restart(sh.Txn)
		}
	}
}

// stale reports whether any of sh's reads no longer matches the committed
// version, i.e. the transaction read something a committed transaction
// overwrote.
func stale(rt *rtdbs.Runtime, sh *rtdbs.Shadow) bool {
	for _, obs := range sh.Log.Reads() {
		if rt.Version(obs.Page) != obs.Version {
			return true
		}
	}
	return false
}

// Wait50 is OCC-BC plus Haritsa's 50% rule wait control [Hari90a]: when a
// transaction finishes, it checks the set of transactions its commit would
// restart; while at least half of them have higher priority (EDF), the
// validator waits instead of committing. While it waits it remains
// vulnerable: a higher-priority transaction that validates first restarts
// it like any other conflicter.
type Wait50 struct {
	rt      *rtdbs.Runtime
	shadow  map[model.TxnID]*rtdbs.Shadow
	waiting map[model.TxnID]*rtdbs.Shadow
	// evaluating guards against re-entrant evaluation: committing one
	// waiter triggers OnCommitted which would otherwise recurse into
	// another evaluation sweep.
	evaluating bool
}

// NewWait50 returns a WAIT-50 concurrency control manager.
func NewWait50() *Wait50 {
	return &Wait50{
		shadow:  make(map[model.TxnID]*rtdbs.Shadow),
		waiting: make(map[model.TxnID]*rtdbs.Shadow),
	}
}

// Name implements rtdbs.CCM.
func (c *Wait50) Name() string { return "WAIT-50" }

// Attach implements rtdbs.CCM.
func (c *Wait50) Attach(rt *rtdbs.Runtime) { c.rt = rt }

// OnArrival spawns the single optimistic execution.
func (c *Wait50) OnArrival(t *model.Txn) {
	sh := c.rt.Spawn(t, 0, nil)
	c.shadow[t.ID] = sh
	c.rt.Kick(sh)
}

// CanProceed implements rtdbs.CCM: execution never blocks; only commits wait.
func (c *Wait50) CanProceed(*rtdbs.Shadow) bool { return true }

// OnOpDone implements rtdbs.CCM.
func (c *Wait50) OnOpDone(*rtdbs.Shadow) {}

// OnFinish applies the 50% rule; if the validator must wait it is parked
// and re-evaluated after every subsequent commit.
func (c *Wait50) OnFinish(sh *rtdbs.Shadow) {
	if c.shouldWait(sh) {
		if _, already := c.waiting[sh.Txn.ID]; !already {
			c.waiting[sh.Txn.ID] = sh
			c.rt.Metrics.CommitWaits++
		}
		return
	}
	c.rt.Commit(sh)
}

// conflictSet returns the IDs of active transactions that would be
// restarted if sh committed: those whose execution read a page sh wrote.
func (c *Wait50) conflictSet(sh *rtdbs.Shadow) []model.TxnID {
	var out []model.TxnID
	ws := sh.Log.WritePages()
	if len(ws) == 0 {
		return nil
	}
	for _, id := range c.rt.ActiveIDs() {
		if id == sh.Txn.ID {
			continue
		}
		other := c.shadow[id]
		if other == nil {
			continue
		}
		if other.Log.FirstReadOfAny(ws) >= 0 {
			out = append(out, id)
		}
	}
	return out
}

// shouldWait implements the 50% rule.
func (c *Wait50) shouldWait(sh *rtdbs.Shadow) bool {
	conf := c.conflictSet(sh)
	if len(conf) == 0 {
		return false
	}
	higher := 0
	for _, id := range conf {
		if other := c.rt.State(id); other != nil && other.Txn.HigherPriority(sh.Txn) {
			higher++
		}
	}
	return 2*higher >= len(conf)
}

// OnCommitted restarts stale readers (a waiting validator that read the
// committer's writes loses its finished work and restarts from scratch),
// then re-evaluates the waiting set until no more waiters can commit.
func (c *Wait50) OnCommitted(t *model.Txn, _ *rtdbs.Shadow) {
	delete(c.shadow, t.ID)
	delete(c.waiting, t.ID)
	for _, id := range c.rt.ActiveIDs() {
		sh := c.shadow[id]
		if sh == nil {
			continue
		}
		if stale(c.rt, sh) {
			delete(c.waiting, id)
			c.shadow[id] = c.rt.Restart(sh.Txn)
		}
	}
	c.evaluateWaiters()
}

// evaluateWaiters commits every waiter whose wait condition has cleared,
// iterating to a fixpoint (a commit can clear or trigger other waits).
func (c *Wait50) evaluateWaiters() {
	if c.evaluating {
		return
	}
	c.evaluating = true
	defer func() { c.evaluating = false }()
	for {
		var ready *rtdbs.Shadow
		for _, id := range c.rt.ActiveIDs() {
			sh, ok := c.waiting[id]
			if !ok {
				continue
			}
			if !c.shouldWait(sh) {
				ready = sh
				break
			}
		}
		if ready == nil {
			return
		}
		delete(c.waiting, ready.Txn.ID)
		// Commit triggers OnCommitted, which restarts stale readers and
		// prunes the waiting set before the next scan.
		c.rt.Commit(ready)
	}
}
