package occ

// Hand-built schedules for the WAIT-50 rule and OCC-BC broadcast commit,
// mirroring the paper's Fig. 1(b) and Haritsa's wait-control examples.

import (
	"testing"

	"repro/internal/model"
	"repro/internal/rtdbs"
	"repro/internal/sim"
	"repro/internal/workload"
)

type scenario struct {
	rt *rtdbs.Runtime
}

func newScenario(ccm rtdbs.CCM) *scenario {
	return &scenario{rt: rtdbs.New(rtdbs.Config{
		Workload:      workload.Baseline(1, 1),
		Target:        100,
		CheckReads:    true,
		RecordHistory: true,
	}, ccm)}
}

func (s *scenario) admitAt(at float64, id model.TxnID, deadline float64, opTime float64, ops []model.Op) {
	cl := &model.Class{
		Name: "occ", NumOps: len(ops), MeanOpTime: opTime,
		SlackFactor: 2, Value: 100, PenaltyPerSlack: 1, Frequency: 1,
	}
	tx := &model.Txn{
		ID: id, Class: cl, Arrival: sim.Time(at), Deadline: sim.Time(deadline),
		Ops: ops, OpTime: opTime,
	}
	s.rt.K.At(sim.Time(at), func() { s.rt.Admit(tx) })
}

func rd(p model.PageID) model.Op { return model.Op{Page: p} }
func wr(p model.PageID) model.Op { return model.Op{Page: p, Write: true} }

// TestFig1bBroadcastRestart: the paper's Fig. 1(b): T2 read x before T1's
// commit; when T1 commits, T2 is restarted IMMEDIATELY (not at its own
// validation) and re-reads the new version.
func TestFig1bBroadcastRestart(t *testing.T) {
	s := newScenario(NewBC())
	s.admitAt(0, 1, 100, 1.0, []model.Op{wr(1), wr(2)})        // commits at 2.0
	s.admitAt(0, 2, 100, 1.5, []model.Op{rd(1), rd(3), rd(4)}) // reads x at 1.5
	s.rt.K.Run()
	m := s.rt.Metrics
	if m.Restarts != 1 {
		t.Fatalf("restarts = %d, want exactly 1 (broadcast at T1's commit)", m.Restarts)
	}
	if m.Committed != 2 {
		t.Fatalf("committed %d", m.Committed)
	}
	// T2's committed read of page 1 observed T1's version.
	recs := s.rt.History().Records()
	for _, rec := range recs {
		if rec.ID != 2 {
			continue
		}
		for _, obs := range rec.Reads {
			if obs.Page == 1 && obs.Version != 1 {
				t.Fatalf("T2 committed reading version %d of page 1, want T1's", obs.Version)
			}
		}
	}
	if err := s.rt.History().Check(); err != nil {
		t.Fatal(err)
	}
}

// TestWait50DefersForHigherPriorityMajority: the validator's entire
// conflict set has higher priority, so it waits; when the conflicting
// transaction commits first, the waiter (stale) restarts.
func TestWait50DefersForHigherPriorityMajority(t *testing.T) {
	s := newScenario(NewWait50())
	// T1: loose deadline, writes page 1, finishes first (at 2.0).
	s.admitAt(0, 1, 100, 1.0, []model.Op{wr(1), wr(2)})
	// T2: tight deadline (higher priority), READS page 1 at 1.5, still
	// running when T1 validates -> T1's conflict set = {T2}, 100% higher
	// priority -> T1 waits.
	s.admitAt(0, 2, 8, 1.5, []model.Op{rd(1), rd(3), rd(4)})
	s.rt.K.Run()
	m := s.rt.Metrics
	if m.CommitWaits != 1 {
		t.Fatalf("commit waits = %d, want 1 (T1 deferred)", m.CommitWaits)
	}
	// T2 commits first; T1 then commits with no restart for T2.
	recs := s.rt.History().Records()
	if recs[0].ID != 2 || recs[1].ID != 1 {
		t.Fatalf("commit order [%d %d], want [2 1]", recs[0].ID, recs[1].ID)
	}
	if m.Restarts != 0 {
		t.Fatalf("restarts = %d: waiting should have avoided the restart", m.Restarts)
	}
	if err := s.rt.History().Check(); err != nil {
		t.Fatal(err)
	}
}

// TestWait50CommitsAgainstLowerPriorityMinority: conflicters are lower
// priority, so the validator commits at once and restarts them.
func TestWait50CommitsAgainstLowerPriorityMinority(t *testing.T) {
	s := newScenario(NewWait50())
	// T1: TIGHT deadline, writes page 1, finishes at 2.0.
	s.admitAt(0, 1, 5, 1.0, []model.Op{wr(1), wr(2)})
	// T2: loose deadline, reads page 1 before T1 commits.
	s.admitAt(0, 2, 100, 1.5, []model.Op{rd(1), rd(3), rd(4)})
	s.rt.K.Run()
	m := s.rt.Metrics
	if m.CommitWaits != 0 {
		t.Fatalf("commit waits = %d, want 0 (validator outranks its conflict set)", m.CommitWaits)
	}
	if m.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1 (T2 restarted by the broadcast)", m.Restarts)
	}
	recs := s.rt.History().Records()
	if recs[0].ID != 1 {
		t.Fatalf("first commit %d, want the validator", recs[0].ID)
	}
	if err := s.rt.History().Check(); err != nil {
		t.Fatal(err)
	}
}

// TestWait50NoConflictCommitsImmediately: an unconflicted validator never
// waits regardless of priorities.
func TestWait50NoConflictCommitsImmediately(t *testing.T) {
	s := newScenario(NewWait50())
	s.admitAt(0, 1, 100, 1.0, []model.Op{wr(1)})
	s.admitAt(0, 2, 5, 1.0, []model.Op{rd(2), rd(3)})
	s.rt.K.Run()
	if s.rt.Metrics.CommitWaits != 0 {
		t.Fatalf("unconflicted validator waited")
	}
	if s.rt.Metrics.Committed != 2 {
		t.Fatalf("committed %d", s.rt.Metrics.Committed)
	}
}
