package occ

import (
	"testing"

	"repro/internal/rtdbs"
	"repro/internal/workload"
)

func cfg(rate float64, seed int64, target int) rtdbs.Config {
	return rtdbs.Config{
		Workload:      workload.Baseline(rate, seed),
		Target:        target,
		Warmup:        20,
		CheckReads:    true,
		RecordHistory: true,
	}
}

func TestBCSerializable(t *testing.T) {
	for _, rate := range []float64{40, 120} {
		res := rtdbs.Run(cfg(rate, 1, 400), NewBC())
		if res.Truncated {
			t.Fatalf("rate %v: truncated", rate)
		}
		if err := res.History.Check(); err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		if res.Metrics.Committed != 400 {
			t.Fatalf("rate %v: committed %d", rate, res.Metrics.Committed)
		}
	}
}

func TestBCDeterministic(t *testing.T) {
	a := rtdbs.Run(cfg(80, 3, 300), NewBC())
	b := rtdbs.Run(cfg(80, 3, 300), NewBC())
	if *a.Metrics != *b.Metrics {
		t.Fatalf("nondeterministic OCC-BC:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
}

func TestBCRestartsUnderContention(t *testing.T) {
	res := rtdbs.Run(cfg(150, 2, 300), NewBC())
	if res.Metrics.Restarts == 0 {
		t.Fatal("expected restarts at high load")
	}
	if res.Metrics.Promotions != 0 || res.Metrics.ShadowForks != 0 {
		t.Fatal("OCC-BC must not fork or promote shadows")
	}
}

func TestBCLowLoadFewMisses(t *testing.T) {
	res := rtdbs.Run(cfg(10, 4, 300), NewBC())
	if mr := res.Metrics.MissedRatio(); mr > 5 {
		t.Fatalf("missed ratio at 10 tps = %v%%, want near zero", mr)
	}
}

func TestWait50Serializable(t *testing.T) {
	for _, rate := range []float64{40, 120} {
		res := rtdbs.Run(cfg(rate, 5, 400), NewWait50())
		if res.Truncated {
			t.Fatalf("rate %v: truncated", rate)
		}
		if err := res.History.Check(); err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
	}
}

func TestWait50Deterministic(t *testing.T) {
	a := rtdbs.Run(cfg(90, 6, 300), NewWait50())
	b := rtdbs.Run(cfg(90, 6, 300), NewWait50())
	if *a.Metrics != *b.Metrics {
		t.Fatalf("nondeterministic WAIT-50:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
}

func TestWait50ActuallyWaits(t *testing.T) {
	res := rtdbs.Run(cfg(130, 7, 400), NewWait50())
	if res.Metrics.CommitWaits == 0 {
		t.Fatal("WAIT-50 never deferred a commit under high contention")
	}
}

func TestWait50CompletesAtHighLoad(t *testing.T) {
	// The waiting rule must never wedge the system.
	res := rtdbs.Run(cfg(180, 8, 300), NewWait50())
	if res.Truncated {
		t.Fatal("WAIT-50 wedged at high load")
	}
	if res.Metrics.Committed != 300 {
		t.Fatalf("committed %d", res.Metrics.Committed)
	}
}

func TestWait50TardinessBeatsBCAtModerateLoad(t *testing.T) {
	// The paper's Fig. 13-b: WAIT-50's deadline cognizance gives it better
	// tardiness than OCC-BC at low/moderate loads. Use matched seeds.
	var bcT, wT float64
	for seed := int64(1); seed <= 3; seed++ {
		bc := rtdbs.Run(cfg(100, seed, 400), NewBC())
		w50 := rtdbs.Run(cfg(100, seed, 400), NewWait50())
		bcT += bc.Metrics.AvgTardiness()
		wT += w50.Metrics.AvgTardiness()
	}
	if wT > bcT*1.5 {
		t.Fatalf("WAIT-50 tardiness %v much worse than OCC-BC %v at moderate load", wT/3, bcT/3)
	}
}
