package obs

import (
	"strconv"
	"strings"
	"sync"
	"time"
)

// Canonical lifecycle stage names. The trace timeline, the per-stage
// latency histograms, and docs/PROTOCOL.md all use these spellings; a
// stage string appearing anywhere else is a bug the conformance test
// should catch.
const (
	StageEnqueue   = "enqueue"   // entered the admission queue
	StageAdmit     = "admit"     // dispatched by admission control
	StageFork      = "fork"      // speculative shadow forked (Read/Write Rule)
	StagePark      = "park"      // speculative shadow parked at its gate
	StageResume    = "resume"    // gate opened; shadow re-reads and continues
	StagePromotion = "promotion" // speculative shadow committed the transaction
	StageRestart   = "restart"   // from-scratch re-execution (OCC-BC / give-up path)
	StageDefer     = "defer"     // yielded to a higher-value conflicter (VW rule)
	StageDeferred  = "deferred"  // session fell back to the deferred overlay path
	StageInstall   = "install"   // writes installed under the commit latch
	StageCommit    = "commit"    // verdict delivered (post WAL sync)
	StageAbort     = "abort"     // transaction aborted
	StageShed      = "shed"      // refused or evicted by admission control
	StageReap      = "reap"      // session reaped (value zero-crossed or idle)
)

// Lost-value attribution stages: where realized value fell short of the
// value at submission. These label scc_lost_value_total.
const (
	LossExecution     = "execution"      // decay between submit and commit (queueing included)
	LossSession       = "session"        // decay across an interactive session's round trips
	LossAdmissionShed = "admission_shed" // remaining value destroyed by a shed
	LossCrossShed     = "cross_shed"     // shed at re-admission of a cross-shard retry
	LossConflictAbort = "conflict_abort" // attempt budget exhausted under contention
	LossClientAbort   = "client_abort"   // client issued TXN ABORT
	LossReap          = "reap"           // session reaped server-side
	LossError         = "error"          // transaction failed with an error
	LossReplicaLag    = "replica_lag"    // replica read shed by the lag gate
	LossWALError      = "wal_error"      // verdict converted to ERR by a failed WAL sync
	LossTenantBudget  = "tenant_budget"  // shed because the tenant is over its value budget
)

// TraceEvent is one timestamped lifecycle stage.
type TraceEvent struct {
	Stage string
	At    time.Duration // since the trace started
}

// Trace is a per-transaction lifecycle timeline. All methods are
// nil-safe: untraced requests carry a nil *Trace and every Event call
// on it is a no-op branch, which is what keeps tracing opt-in free.
// Shadows run on other goroutines, so appends are mutex-guarded — a
// traced transaction already pays for channels and goroutine wakeups,
// so the lock is noise.
type Trace struct {
	start time.Time
	mu    sync.Mutex
	ev    []TraceEvent
}

// NewTrace starts a trace at start (the request's submit instant).
func NewTrace(start time.Time) *Trace {
	return &Trace{start: start, ev: make([]TraceEvent, 0, 8)}
}

// Event appends a stage stamped now. No-op on a nil trace.
func (t *Trace) Event(stage string) {
	if t == nil {
		return
	}
	t.EventAt(stage, time.Now())
}

// EventAt appends a stage stamped at. No-op on a nil trace.
func (t *Trace) EventAt(stage string, at time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ev = append(t.ev, TraceEvent{Stage: stage, At: at.Sub(t.start)})
	t.mu.Unlock()
}

// Snapshot returns a copy of the events recorded so far (nil-safe).
func (t *Trace) Snapshot() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, len(t.ev))
	copy(out, t.ev)
	return out
}

// String renders the timeline as the wire token payload:
// "stage:ns,stage:ns,..." — offsets in integer nanoseconds since the
// trace start, no spaces, stages in record order. Empty for a nil or
// eventless trace.
func (t *Trace) String() string {
	events := t.Snapshot()
	if len(events) == 0 {
		return ""
	}
	var b strings.Builder
	for i, e := range events {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(e.Stage)
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(e.At.Nanoseconds(), 10))
	}
	return b.String()
}

// ParseTrace decodes a String()-rendered timeline; it is the client
// half of the trace= reply token. Malformed input returns nil.
func ParseTrace(s string) []TraceEvent {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]TraceEvent, 0, len(parts))
	for _, p := range parts {
		stage, nsStr, ok := strings.Cut(p, ":")
		if !ok || stage == "" {
			return nil
		}
		ns, err := strconv.ParseInt(nsStr, 10, 64)
		if err != nil || ns < 0 {
			return nil
		}
		out = append(out, TraceEvent{Stage: stage, At: time.Duration(ns)})
	}
	return out
}
