package obs

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs/flight"
)

// Canonical lifecycle stage names. The trace timeline, the per-stage
// latency histograms, and docs/PROTOCOL.md all use these spellings; a
// stage string appearing anywhere else is a bug the conformance test
// should catch.
const (
	StageEnqueue   = "enqueue"   // entered the admission queue
	StageAdmit     = "admit"     // dispatched by admission control
	StageFork      = "fork"      // speculative shadow forked (Read/Write Rule)
	StagePark      = "park"      // speculative shadow parked at its gate
	StageResume    = "resume"    // gate opened; shadow re-reads and continues
	StagePromotion = "promotion" // speculative shadow committed the transaction
	StageRestart   = "restart"   // from-scratch re-execution (OCC-BC / give-up path)
	StageDefer     = "defer"     // yielded to a higher-value conflicter (VW rule)
	StageDeferred  = "deferred"  // session fell back to the deferred overlay path
	StageInstall   = "install"   // writes installed under the commit latch
	StageCommit    = "commit"    // verdict delivered (post WAL sync)
	StageAbort     = "abort"     // transaction aborted
	StageShed      = "shed"      // refused or evicted by admission control
	StageReap      = "reap"      // session reaped (value zero-crossed or idle)
)

// Lost-value attribution stages: where realized value fell short of the
// value at submission. These label scc_lost_value_total.
const (
	LossExecution     = "execution"      // decay between submit and commit (queueing included)
	LossSession       = "session"        // decay across an interactive session's round trips
	LossAdmissionShed = "admission_shed" // remaining value destroyed by a shed
	LossCrossShed     = "cross_shed"     // shed at re-admission of a cross-shard retry
	LossConflictAbort = "conflict_abort" // attempt budget exhausted under contention
	LossClientAbort   = "client_abort"   // client issued TXN ABORT
	LossReap          = "reap"           // session reaped server-side
	LossError         = "error"          // transaction failed with an error
	LossReplicaLag    = "replica_lag"    // replica read shed by the lag gate
	LossWALError      = "wal_error"      // verdict converted to ERR by a failed WAL sync
	LossTenantBudget  = "tenant_budget"  // shed because the tenant is over its value budget
)

// TraceEvent is one timestamped lifecycle stage.
type TraceEvent struct {
	Stage string
	At    time.Duration // since the trace started
}

// Trace is a per-transaction lifecycle timeline. All methods are
// nil-safe: untraced requests carry a nil *Trace and every Event call
// on it is a no-op branch, which is what keeps tracing opt-in free.
// Shadows run on other goroutines, so appends are mutex-guarded — a
// traced transaction already pays for channels and goroutine wakeups,
// so the lock is noise.
//
// A trace built with NewRecordedTrace additionally feeds a
// flight-recorder ring (internal/obs/flight) — the always-on black-box
// feed — and may skip retaining events for the reply (retain=false)
// when the client did not ask for a trace= token: the serving layer
// creates one of these for EVERY request, so the flight rings see the
// full lifecycle stream while the reply token stays opt-in. To keep
// the per-stage cost to a monotonic clock read and a slice append,
// stages are buffered in the trace and pushed to the ring in one
// batched write when the serving layer calls Flush at request
// completion (or when the buffer fills mid-request). Flushed events
// carry the commit epoch known at flush time, so a committed
// transaction's whole lifecycle joins the cross-node timeline.
type Trace struct {
	start     time.Time
	startNano int64        // start.UnixNano(), precomputed for flush
	sink      *flight.Ring // nil = no flight recording
	txn       uint64       // serving-layer request/session id for flight events
	retain    bool         // keep events for Snapshot/String
	epoch     atomic.Uint64

	mu      sync.Mutex
	ev      []TraceEvent
	flushed int                    // prefix of ev already pushed to the sink
	evbuf   [flushEvery]TraceEvent // ev's initial backing store: common lifecycles never reallocate
}

// flushEvery bounds the unflushed buffer: a long session (or a restart
// storm) pushes to the ring mid-flight instead of growing without
// limit.
const flushEvery = 12

// NewTrace starts a retained trace at start (the request's submit
// instant) with no flight sink.
func NewTrace(start time.Time) *Trace {
	t := &Trace{start: start, retain: true}
	t.ev = t.evbuf[:0]
	return t
}

// NewRecordedTrace starts a trace whose stages are forwarded to sink
// (nil-safe: a nil ring records nothing) tagged with the request id
// txn. retain selects whether events are also kept for the trace=
// reply; the flight feed is unconditional.
func NewRecordedTrace(start time.Time, sink *flight.Ring, txn uint64, retain bool) *Trace {
	t := &Trace{start: start, startNano: start.UnixNano(), sink: sink, txn: txn, retain: retain}
	t.ev = t.evbuf[:0]
	return t
}

// SetEpoch stamps the transaction's global commit epoch once it is
// known (at install time, under the commit latch). Later stages' flight
// events and the trace= token carry it — the causal join between a
// client-held trace and a merged flight timeline. No-op on a nil trace.
func (t *Trace) SetEpoch(epoch uint64) {
	if t == nil || epoch == 0 {
		return
	}
	t.epoch.Store(epoch)
}

// Epoch returns the stamped commit epoch (0 until SetEpoch; nil-safe).
func (t *Trace) Epoch() uint64 {
	if t == nil {
		return 0
	}
	return t.epoch.Load()
}

// Txn returns the request id flight events are tagged with (nil-safe).
func (t *Trace) Txn() uint64 {
	if t == nil {
		return 0
	}
	return t.txn
}

// Retained reports whether the trace keeps events for the trace= reply
// (false for flight-only traces; nil-safe).
func (t *Trace) Retained() bool { return t != nil && t.retain }

// Event appends a stage stamped now. No-op on a nil trace. The stamp is
// a monotonic clock read (cheaper than a wall read; the wall time is
// reconstructed from the start instant at flush).
func (t *Trace) Event(stage string) {
	if t == nil {
		return
	}
	t.eventOff(stage, time.Since(t.start))
}

// EventAt appends a stage stamped at — call sites that already hold a
// fresh clock reading use it to avoid a second read. No-op on a nil
// trace.
func (t *Trace) EventAt(stage string, at time.Time) {
	if t == nil {
		return
	}
	t.eventOff(stage, at.Sub(t.start))
}

// EventOff appends a stage at a known offset since the trace start —
// EventOff(stage, 0) stamps the submit instant with no clock read at
// all. No-op on a nil trace.
func (t *Trace) EventOff(stage string, sinceStart time.Duration) {
	if t == nil {
		return
	}
	t.eventOff(stage, sinceStart)
}

func (t *Trace) eventOff(stage string, d time.Duration) {
	t.mu.Lock()
	t.ev = append(t.ev, TraceEvent{Stage: stage, At: d})
	full := t.sink != nil && len(t.ev)-t.flushed >= flushEvery
	t.mu.Unlock()
	if full {
		t.Flush()
	}
}

// Flush pushes buffered stages to the flight ring as one batched write
// (contiguous sequence numbers, single lock hold), stamped with the
// commit epoch known now. The serving layer calls it at request
// completion; mid-request flushes happen when the buffer fills. No-op
// on a nil trace, a sink-less trace, or an empty buffer.
func (t *Trace) Flush() {
	if t == nil || t.sink == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pend := t.ev[t.flushed:]
	if len(pend) == 0 {
		return
	}
	epoch := t.epoch.Load()
	b := t.sink.Batch(len(pend))
	for _, e := range pend {
		b.Add(t.startNano+e.At.Nanoseconds(), e.Stage, t.txn, -1, epoch)
	}
	b.Done()
	if t.retain {
		t.flushed = len(t.ev)
	} else {
		// Untraced requests keep nothing: recycle the buffer.
		t.ev = t.ev[:0]
		t.flushed = 0
	}
}

// Snapshot returns a copy of the events recorded so far. Only retained
// traces keep events to snapshot (nil-safe).
func (t *Trace) Snapshot() []TraceEvent {
	if t == nil || !t.retain {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, len(t.ev))
	copy(out, t.ev)
	return out
}

// String renders the timeline as the wire token payload:
// "stage:ns,stage:ns,..." — offsets in integer nanoseconds since the
// trace start, no spaces, stages in record order. When the commit epoch
// is known it is prefixed as "e<epoch>;" (still space-free), so a
// client-held trace can be joined against a merged flight timeline by
// epoch. Empty for a nil or eventless trace.
func (t *Trace) String() string {
	events := t.Snapshot()
	if len(events) == 0 {
		return ""
	}
	var b strings.Builder
	if e := t.Epoch(); e != 0 {
		b.WriteByte('e')
		b.WriteString(strconv.FormatUint(e, 10))
		b.WriteByte(';')
	}
	for i, e := range events {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(e.Stage)
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(e.At.Nanoseconds(), 10))
	}
	return b.String()
}

// ParseTrace decodes a String()-rendered timeline, accepting (and
// discarding) the optional "e<epoch>;" prefix; it is the client half of
// the trace= reply token. Malformed input returns nil.
func ParseTrace(s string) []TraceEvent {
	events, _ := ParseTraceEpoch(s)
	return events
}

// ParseTraceEpoch is ParseTrace also returning the commit epoch carried
// by the token's "e<epoch>;" prefix (0 when absent). Malformed input —
// including a present-but-unparsable epoch prefix — returns (nil, 0).
func ParseTraceEpoch(s string) ([]TraceEvent, uint64) {
	if s == "" {
		return nil, 0
	}
	var epoch uint64
	if i := strings.IndexByte(s, ';'); i >= 0 {
		head := s[:i]
		if len(head) < 2 || head[0] != 'e' {
			return nil, 0
		}
		e, err := strconv.ParseUint(head[1:], 10, 64)
		if err != nil || e == 0 {
			return nil, 0
		}
		epoch = e
		s = s[i+1:]
		if s == "" {
			return nil, 0
		}
	}
	parts := strings.Split(s, ",")
	out := make([]TraceEvent, 0, len(parts))
	for _, p := range parts {
		stage, nsStr, ok := strings.Cut(p, ":")
		if !ok || stage == "" {
			return nil, 0
		}
		ns, err := strconv.ParseInt(nsStr, 10, 64)
		if err != nil || ns < 0 {
			return nil, 0
		}
		out = append(out, TraceEvent{Stage: stage, At: time.Duration(ns)})
	}
	return out, epoch
}
