package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("scc_test_total", "test counter")
	c.Inc()
	c.Add(2)
	v := r.CounterVec("scc_test_by_verb_total", "labeled", "verb")
	v.With("GET").Add(5)
	v.With("PUT").Inc()
	var b strings.Builder
	r.Expose(&b)
	want := "# HELP scc_test_total test counter\n" +
		"# TYPE scc_test_total counter\n" +
		"scc_test_total 3\n" +
		"# HELP scc_test_by_verb_total labeled\n" +
		"# TYPE scc_test_by_verb_total counter\n" +
		"scc_test_by_verb_total{verb=\"GET\"} 5\n" +
		"scc_test_by_verb_total{verb=\"PUT\"} 1\n"
	if b.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestFloatCounter(t *testing.T) {
	var f FloatCounter
	f.Add(1.5)
	f.Add(2.25)
	f.Add(-3)          // dropped: counters only go up
	f.Add(math.NaN())  // dropped
	f.Add(math.Inf(1)) // dropped
	if got := f.Value(); got != 3.75 {
		t.Errorf("FloatCounter.Value = %v, want 3.75", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("scc_test_seconds", "test", 10, 12, 1e-9)
	// Buckets: le=1024ns, 2048ns, 4096ns, +Inf.
	for _, v := range []int64{0, 1, 1024} { // all ≤ 2^10
		h.Observe(v)
	}
	h.Observe(1025) // (2^10, 2^11]
	h.Observe(2048) // still (2^10, 2^11]: exact powers belong down
	h.Observe(4097) // above 2^12 → +Inf
	h.Observe(1 << 40)

	var b strings.Builder
	r.Expose(&b)
	out := b.String()
	for _, line := range []string{
		`scc_test_seconds_bucket{le="1.024e-06"} 3`,
		`scc_test_seconds_bucket{le="2.048e-06"} 5`,
		`scc_test_seconds_bucket{le="4.096e-06"} 5`,
		`scc_test_seconds_bucket{le="+Inf"} 7`,
		`scc_test_seconds_count 7`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
	if h.Count() != 7 {
		t.Errorf("Count = %d, want 7", h.Count())
	}
}

func TestHistogramVecSharesLayout(t *testing.T) {
	r := NewRegistry()
	v := r.NsHistogramVec("scc_test_stage_seconds", "per stage", "stage")
	v.With("park").Observe(int64(50 * time.Microsecond))
	v.With("commit").Observe(int64(2 * time.Millisecond))
	var b strings.Builder
	r.Expose(&b)
	out := b.String()
	if !strings.Contains(out, `scc_test_stage_seconds_bucket{stage="park",le="`) {
		t.Errorf("missing park series:\n%s", out)
	}
	if !strings.Contains(out, `scc_test_stage_seconds_count{stage="commit"} 1`) {
		t.Errorf("missing commit count:\n%s", out)
	}
}

func TestGaugeAndCounterFunc(t *testing.T) {
	r := NewRegistry()
	n := 7.5
	r.GaugeFunc("scc_test_depth", "sampled", func() float64 { return n })
	r.CounterFunc("scc_test_func_total", "sampled", func() float64 { return 42 })
	var b strings.Builder
	r.Expose(&b)
	out := b.String()
	if !strings.Contains(out, "scc_test_depth 7.5\n") {
		t.Errorf("gauge func missing:\n%s", out)
	}
	if !strings.Contains(out, "scc_test_func_total 42\n") {
		t.Errorf("counter func missing:\n%s", out)
	}
}

func TestDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("scc_dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("scc_dup_total", "x")
}

func TestTraceRoundTrip(t *testing.T) {
	start := time.Now()
	tr := NewTrace(start)
	tr.EventAt(StageEnqueue, start)
	tr.EventAt(StageAdmit, start.Add(15*time.Microsecond))
	tr.EventAt(StageCommit, start.Add(2*time.Millisecond))
	s := tr.String()
	want := "enqueue:0,admit:15000,commit:2000000"
	if s != want {
		t.Fatalf("String = %q, want %q", s, want)
	}
	ev := ParseTrace(s)
	if len(ev) != 3 || ev[1].Stage != StageAdmit || ev[1].At != 15*time.Microsecond {
		t.Errorf("ParseTrace = %+v", ev)
	}
	if got := ParseTrace("garbage"); got != nil {
		t.Errorf("ParseTrace(garbage) = %v, want nil", got)
	}
	if strings.ContainsAny(s, " \t\n") {
		t.Errorf("wire form contains whitespace: %q", s)
	}
}

func TestNilTraceIsNoop(t *testing.T) {
	var tr *Trace
	tr.Event(StagePark) // must not panic
	if tr.Snapshot() != nil || tr.String() != "" {
		t.Error("nil trace not inert")
	}
}

// TestConcurrentRegistry hammers every metric kind from many goroutines
// while exposition runs — the unit-level half of the -race stress
// satellite (the wire-level half lives in internal/server).
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("scc_conc_total", "x")
	fv := r.FloatCounterVec("scc_conc_value_total", "x", "stage")
	hv := r.NsHistogramVec("scc_conc_seconds", "x", "stage")
	stages := []string{StagePark, StageCommit, StageAbort, StageShed}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c.Inc()
				st := stages[(g+i)%len(stages)]
				fv.With(st).Add(0.5)
				hv.With(st).Observe(int64(i))
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		r.Expose(&b)
	}
	wg.Wait()
	if c.Value() != 8*2000 {
		t.Errorf("counter = %d, want %d", c.Value(), 8*2000)
	}
	var total float64
	for _, st := range stages {
		total += fv.With(st).Value()
	}
	if total != 8*2000*0.5 {
		t.Errorf("float total = %v, want %v", total, 8*2000*0.5)
	}
}
