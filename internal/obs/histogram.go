package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram is a log-scale (power-of-two bucket) histogram. Bucket i
// covers raw values in (2^(minExp+i-1), 2^(minExp+i)]; values at or
// below 2^minExp land in the first bucket, values above 2^maxExp in the
// +Inf bucket. Observe costs one bits.Len64 and two uncontended atomic
// adds — no floating point, no locks — which is what makes it safe on
// the per-operation hot path. Order-of-magnitude resolution is the
// point: latency regressions worth acting on move buckets, not
// percentage points within one.
//
// Raw values are integers in the caller's unit (nanoseconds for
// latencies, counts for sizes); Scale converts them to the exported
// unit at exposition time (1e-9 for ns→seconds, 1 for counts), so the
// hot path never multiplies floats.
type Histogram struct {
	minExp, maxExp int
	scale          float64
	counts         []atomic.Uint64 // len = maxExp-minExp+2; last is +Inf
	sum            atomic.Int64    // raw units
}

func newHistogram(minExp, maxExp int, scale float64) *Histogram {
	if minExp < 0 || maxExp > 62 || minExp > maxExp {
		panic("obs: bad histogram exponent range")
	}
	if scale == 0 {
		scale = 1
	}
	return &Histogram{
		minExp: minExp,
		maxExp: maxExp,
		scale:  scale,
		counts: make([]atomic.Uint64, maxExp-minExp+2),
	}
}

// Observe records one raw value (negative values clamp to zero).
func (h *Histogram) Observe(v int64) {
	var e int
	if v > 0 {
		// bits.Len64(v-1) maps (2^(e-1), 2^e] to e: exact powers of two
		// belong to their own bucket, matching the exported le bounds.
		e = bits.Len64(uint64(v - 1))
	} else {
		v = 0
	}
	idx := e - h.minExp
	switch {
	case idx < 0:
		idx = 0
	case idx >= len(h.counts):
		idx = len(h.counts) - 1
	}
	h.counts[idx].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

func (h *Histogram) expose(w io.Writer, fam *family, label string) {
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		var le string
		if i == len(h.counts)-1 {
			le = "+Inf"
		} else {
			le = formatFloat(h.scale * math.Ldexp(1, h.minExp+i))
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name, bucketLabels(fam, label, le), cum)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, labelPart(fam, label),
		formatFloat(h.scale*float64(h.sum.Load())))
	fmt.Fprintf(w, "%s_count%s %d\n", fam.name, labelPart(fam, label), cum)
}

func bucketLabels(fam *family, label, le string) string {
	if fam.labelKey == "" {
		return `{le="` + le + `"}`
	}
	return "{" + fam.labelKey + "=" + fmt.Sprintf("%q", label) + `,le="` + le + `"}`
}

// Histogram registers an unlabeled histogram with buckets 2^minExp ..
// 2^maxExp in raw units, exported multiplied by scale (0 = 1).
func (r *Registry) Histogram(name, help string, minExp, maxExp int, scale float64) *Histogram {
	h := newHistogram(minExp, maxExp, scale)
	r.register(name, help, "histogram", "").add("", h)
	return h
}

// HistogramVec is a family of histograms keyed by one label.
type HistogramVec struct {
	fam            *family
	minExp, maxExp int
	scale          float64
}

// HistogramVec registers a histogram family with one label key; every
// series shares the bucket layout.
func (r *Registry) HistogramVec(name, help, labelKey string, minExp, maxExp int, scale float64) *HistogramVec {
	if minExp < 0 || maxExp > 62 || minExp > maxExp {
		panic("obs: bad histogram exponent range")
	}
	return &HistogramVec{
		fam:    r.register(name, help, "histogram", labelKey),
		minExp: minExp, maxExp: maxExp, scale: scale,
	}
}

// With returns the histogram for the given label value; hot paths
// should cache the result.
func (v *HistogramVec) With(label string) *Histogram {
	return v.fam.get(label, func() series {
		return newHistogram(v.minExp, v.maxExp, v.scale)
	}).(*Histogram)
}

// NsHistogram registers a latency histogram observing nanoseconds and
// exporting seconds, with buckets from ~1µs (2^10 ns) to ~17s (2^34 ns)
// — the standard layout shared by every latency metric in the system.
func (r *Registry) NsHistogram(name, help string) *Histogram {
	return r.Histogram(name, help, NsMinExp, NsMaxExp, 1e-9)
}

// NsHistogramVec is NsHistogram with one label key.
func (r *Registry) NsHistogramVec(name, help, labelKey string) *HistogramVec {
	return r.HistogramVec(name, help, labelKey, NsMinExp, NsMaxExp, 1e-9)
}

// Standard nanosecond-histogram bucket range: 2^10 ns ≈ 1µs up to
// 2^34 ns ≈ 17s, 26 buckets including +Inf.
const (
	NsMinExp = 10
	NsMaxExp = 34
)
