// Package obs is the telemetry substrate: a zero-dependency metrics
// registry (atomic counters, gauges, and log-scale latency histograms)
// plus the per-transaction lifecycle trace (trace.go). Everything here
// is built to be cheap enough for the engine's per-operation hot path —
// an observation is one or two uncontended atomic adds, no maps, no
// locks, no allocation — following the main-memory-OLTP rule that
// instrumentation must be near-free or it distorts exactly the
// latencies it measures.
//
// The registry renders in Prometheus text exposition format; the server
// surfaces it over the wire (METRICS verb) and optionally over HTTP
// (sccserve -metrics-addr). Metric families expose in registration
// order, labeled series within a family in first-use order, so output
// is deterministic for the conformance tests. docs/ARCHITECTURE.md
// ("Observability") describes the design; docs/PROTOCOL.md lists every
// exported family normatively.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them. Registration is
// expected at startup (it takes a lock and panics on a duplicate name);
// observations on the returned handles are lock-free.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one exposition block: # HELP / # TYPE plus its series.
type family struct {
	name, help, kind string
	labelKey         string

	mu     sync.Mutex
	order  []string          // label values, first-use order
	series map[string]series // by label value ("" for unlabeled)
}

// series is one time series (or histogram) inside a family.
type series interface {
	expose(w io.Writer, fam *family, label string)
}

func (r *Registry) register(name, help, kind, labelKey string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	f := &family{name: name, help: help, kind: kind, labelKey: labelKey,
		series: make(map[string]series)}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

func (f *family) add(label string, s series) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.series[label]; dup {
		panic("obs: duplicate series " + f.name + "{" + f.labelKey + "=" + label + "}")
	}
	f.order = append(f.order, label)
	f.series[label] = s
}

// get returns the series for label, creating it with mk on first use.
func (f *family) get(label string, mk func() series) series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[label]; ok {
		return s
	}
	s := mk()
	f.order = append(f.order, label)
	f.series[label] = s
	return s
}

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) expose(w io.Writer, fam *family, label string) {
	fmt.Fprintf(w, "%s%s %d\n", fam.name, labelPart(fam, label), c.Value())
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", "").add("", c)
	return c
}

// CounterVec is a family of counters keyed by one label.
type CounterVec struct{ fam *family }

// CounterVec registers a counter family with one label key. Series are
// created on first With; hot paths should cache the returned *Counter.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, "counter", labelKey)}
}

// With returns the counter for the given label value.
func (v *CounterVec) With(label string) *Counter {
	return v.fam.get(label, func() series { return &Counter{} }).(*Counter)
}

// FloatCounter is a monotonically increasing float64 (value accounting
// is in value units, not integers). Add is a CAS loop on the bit
// pattern — wait-free in practice at our update rates.
type FloatCounter struct{ bits atomic.Uint64 }

// Add adds v; negative or non-finite contributions are dropped
// (counters only go up, and one NaN must not poison the series).
func (f *FloatCounter) Add(v float64) {
	if !(v > 0) || math.IsInf(v, 0) {
		return
	}
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the accumulated total.
func (f *FloatCounter) Value() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *FloatCounter) expose(w io.Writer, fam *family, label string) {
	fmt.Fprintf(w, "%s%s %s\n", fam.name, labelPart(fam, label), formatFloat(f.Value()))
}

// FloatCounterVec is a family of float counters keyed by one label —
// the shape of per-stage lost-value accounting.
type FloatCounterVec struct{ fam *family }

// FloatCounterVec registers a float counter family with one label key.
func (r *Registry) FloatCounterVec(name, help, labelKey string) *FloatCounterVec {
	return &FloatCounterVec{fam: r.register(name, help, "counter", labelKey)}
}

// With returns the float counter for the given label value.
func (v *FloatCounterVec) With(label string) *FloatCounter {
	return v.fam.get(label, func() series { return &FloatCounter{} }).(*FloatCounter)
}

// FloatCounter registers an unlabeled float counter.
func (r *Registry) FloatCounter(name, help string) *FloatCounter {
	c := &FloatCounter{}
	r.register(name, help, "counter", "").add("", c)
	return c
}

// funcSeries samples fn at exposition time — the bridge from existing
// mutex-guarded stats structs (engine, durable, admission) into the
// registry without double-counting on the hot path.
type funcSeries struct{ fn func() float64 }

func (s funcSeries) expose(w io.Writer, fam *family, label string) {
	fmt.Fprintf(w, "%s%s %s\n", fam.name, labelPart(fam, label), formatFloat(s.fn()))
}

// CounterFunc registers a counter whose value is sampled from fn at
// exposition time. fn must be monotonic (it mirrors an existing
// cumulative stat) and safe to call from any goroutine.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, "counter", "").add("", funcSeries{fn})
}

// GaugeFunc registers a gauge sampled from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", "").add("", funcSeries{fn})
}

// Expose renders every family in Prometheus text exposition format
// (version 0.0.4): registration order, series in first-use order.
func (r *Registry) Expose(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		f.mu.Lock()
		order := make([]string, len(f.order))
		copy(order, f.order)
		f.mu.Unlock()
		for _, label := range order {
			f.mu.Lock()
			s := f.series[label]
			f.mu.Unlock()
			s.expose(w, f, label)
		}
	}
}

// Names returns every registered family name, sorted — the conformance
// test's view of the metrics surface.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.fams))
	for _, f := range r.fams {
		names = append(names, f.name)
	}
	sort.Strings(names)
	return names
}

func labelPart(fam *family, label string) string {
	if fam.labelKey == "" {
		return ""
	}
	return "{" + fam.labelKey + "=" + strconv.Quote(label) + "}"
}

// formatFloat renders a sample the way Prometheus clients do: shortest
// round-trip representation, integral values without an exponent.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
