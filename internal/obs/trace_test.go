package obs

import (
	"testing"
	"time"

	"repro/internal/obs/flight"
)

func TestTraceEpochToken(t *testing.T) {
	tr := NewTrace(time.Now())
	tr.Event(StageEnqueue)
	tr.Event(StageCommit)
	if s := tr.String(); len(ParseTrace(s)) != 2 {
		t.Fatalf("plain token %q did not round-trip", s)
	}
	tr.SetEpoch(42)
	s := tr.String()
	if s[0] != 'e' {
		t.Fatalf("epoch-stamped token %q missing e-prefix", s)
	}
	events, epoch := ParseTraceEpoch(s)
	if epoch != 42 || len(events) != 2 || events[0].Stage != StageEnqueue {
		t.Fatalf("ParseTraceEpoch(%q) = (%v, %d), want 2 events at epoch 42", s, events, epoch)
	}
	// ParseTrace accepts the extended grammar transparently.
	if got := ParseTrace(s); len(got) != 2 {
		t.Fatalf("ParseTrace(%q) = %v, want 2 events", s, got)
	}
	// SetEpoch(0) and nil traces are inert.
	tr.SetEpoch(0)
	if tr.Epoch() != 42 {
		t.Fatal("SetEpoch(0) must not clear the stamped epoch")
	}
	var nilTr *Trace
	nilTr.SetEpoch(7)
	if nilTr.Epoch() != 0 || nilTr.Retained() || nilTr.Txn() != 0 {
		t.Fatal("nil trace accessors must return zero values")
	}
}

func TestParseTraceMalformed(t *testing.T) {
	for _, in := range []string{
		"",
		"admit",                         // no offset
		"admit:",                        // empty offset
		":5",                            // empty stage
		"admit:x",                       // non-numeric offset
		"admit:-1",                      // negative offset
		"admit:5,,",                     // empty element
		";admit:5",                      // empty epoch prefix
		"e;admit:5",                     // epoch prefix with no digits
		"e0;admit:5",                    // epoch 0 is never allocated
		"ex7;admit:5",                   // non-numeric epoch
		"5;admit:5",                     // prefix missing the e marker
		"e7;",                           // epoch with no events
		"e7;admit",                      // valid prefix, malformed tail
		"e18446744073709551616;admit:5", // epoch overflows uint64
	} {
		ev, epoch := ParseTraceEpoch(in)
		if ev != nil || epoch != 0 {
			t.Fatalf("ParseTraceEpoch(%q) = (%v, %d), want rejection", in, ev, epoch)
		}
	}
}

func TestRecordedTraceFeedsFlightRing(t *testing.T) {
	rec := flight.New(1, 8)
	tr := NewRecordedTrace(time.Now(), rec.Server(), 99, false)
	tr.Event(StageEnqueue)
	tr.SetEpoch(5)
	tr.Event(StageInstall)
	if tr.String() != "" || tr.Retained() {
		t.Fatal("retain=false trace must not keep events for the reply token")
	}
	if evs := rec.Snapshot(0); len(evs) != 0 {
		t.Fatalf("flight ring saw %d events before Flush, want 0", len(evs))
	}
	tr.Flush()
	evs := rec.Snapshot(0)
	if len(evs) != 2 {
		t.Fatalf("flight ring saw %d events, want 2", len(evs))
	}
	// The whole buffered lifecycle carries the epoch known at flush
	// time, and the batch's sequence numbers are contiguous.
	if evs[0].Txn != 99 || evs[0].Name != StageEnqueue || evs[0].Epoch != 5 {
		t.Fatalf("first flight event wrong: %+v", evs[0])
	}
	if evs[1].Name != StageInstall || evs[1].Epoch != 5 || evs[1].Seq != evs[0].Seq+1 {
		t.Fatalf("post-SetEpoch flight event wrong: %+v", evs[1])
	}
	tr.Flush() // idempotent: nothing pending
	if evs := rec.Snapshot(0); len(evs) != 2 {
		t.Fatalf("re-Flush re-recorded events: %d", len(evs))
	}

	// retain=true keeps both surfaces: the reply snapshot survives the
	// flush that feeds the ring.
	tr2 := NewRecordedTrace(time.Now(), rec.Server(), 100, true)
	tr2.Event(StageAdmit)
	tr2.Flush()
	tr2.Flush()
	if len(tr2.Snapshot()) != 1 || !tr2.Retained() {
		t.Fatal("retain=true trace must keep events across Flush")
	}
	if evs := rec.Snapshot(0); len(evs) != 3 {
		t.Fatalf("flight ring saw %d events, want 3", len(evs))
	}
}

// FuzzParseTrace holds the epoch-extended grammar to its contract:
// never panic, and accept-then-roundtrip anything String() can emit.
func FuzzParseTrace(f *testing.F) {
	for _, seed := range []string{
		"enqueue:0,admit:1200,commit:88000",
		"e42;enqueue:0,install:500",
		"e1;park:3",
		"admit:-1",
		"e0;admit:5",
		"e;x:1",
		";;",
		"e18446744073709551615;a:0",
		"stage:9223372036854775807",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		events, epoch := ParseTraceEpoch(s)
		if events == nil {
			if epoch != 0 {
				t.Fatalf("rejected input %q returned epoch %d", s, epoch)
			}
			return
		}
		for _, e := range events {
			if e.Stage == "" || e.At < 0 {
				t.Fatalf("accepted malformed event %+v from %q", e, s)
			}
		}
		if got := ParseTrace(s); len(got) != len(events) {
			t.Fatalf("ParseTrace/ParseTraceEpoch disagree on %q: %d vs %d", s, len(got), len(events))
		}
	})
}
