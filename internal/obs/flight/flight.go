// Package flight is the always-on flight recorder: fixed-size ring
// buffers of recent lifecycle and durability events, cheap enough to
// leave running in production (ring slots are pointer-free so the
// buffers are GC-noscan, and the serving layer batches a request's
// lifecycle stamps into one ring write). When something goes
// wrong — a sticky WAL failure, a boot-time reconciliation, an operator
// SIGQUIT — the rings are dumped as a textual post-mortem artifact, the
// black-box record of what the process did just before the fault.
//
// Every event carries a node-wide monotonic sequence number (one shared
// counter across all rings, so a dump merges into a single total order)
// and the global commit epoch when one is in hand (0 otherwise). The
// epoch is what joins events causally ACROSS nodes: a cross-shard
// commit's intent, fsync, decision, and replica-apply events all carry
// the same epoch, so dumps from a primary and its replicas merge into
// one causal timeline (see MergeTimeline and `sccload -events-merge`).
//
// The recorder keeps one ring per shard (durability events: WAL fsync,
// intent, decision, checkpoint, reconciliation) plus three named rings:
// "server" (per-request lifecycle stamps via obs.Trace), "admission"
// (shed decisions), and "repl" (replica apply batches). Rings are
// independently mutex-guarded — writers to different rings never
// contend, and a dump racing a writer is safe — and bounded: an idle
// ring costs its fixed buffer, a hot one overwrites its oldest events.
package flight

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Event names recorded directly by the durability and replication
// layers (lifecycle stages arriving via obs.Trace use the obs.Stage*
// names). docs/PROTOCOL.md lists every name normatively; the
// conformance test in internal/server keeps the two in sync.
const (
	// EvFsync is one successful WAL fsync on a shard; the epoch is the
	// shard's high-water commit epoch covered by the sync.
	EvFsync = "wal_fsync"
	// EvFsyncError is a failed WAL fsync — recorded once with the
	// shard's epoch watermark and once per cross-shard epoch still
	// gated (undecided) on the shard, since those are exactly the
	// epochs boot recovery will reconcile.
	EvFsyncError = "wal_fsync_error"
	// EvWalError is a failed WAL append (non-fsync failure).
	EvWalError = "wal_error"
	// EvIntent is a cross-shard intent record append (one per
	// participant shard, before the epoch's data records).
	EvIntent = "intent"
	// EvDecision is the cross-shard decision append on the coordinator
	// — durable after the following fsync, which is the commit point.
	EvDecision = "decision"
	// EvCheckpoint is a completed shard checkpoint; the epoch is the
	// shard's watermark at capture.
	EvCheckpoint = "checkpoint"
	// EvReconcileDiscard is boot recovery discarding an undecided
	// cross-shard epoch (intents without a durable decision).
	EvReconcileDiscard = "reconcile_discard"
	// EvReplApply is one replica apply batch; the epoch is the newest
	// epoch installed by the batch, the shard its (first) shard.
	EvReplApply = "repl_apply"
	// EvReplShed is a replica read shed by the lag gate.
	EvReplShed = "repl_shed"
	// EvPromote is a replica promoting itself to primary; the epoch is
	// the fencing epoch the promotion minted.
	EvPromote = "promote"
	// EvDemote is a primary fencing itself after discovering a higher
	// fencing epoch (a newer primary exists); the epoch is the deposing
	// epoch. Operator binaries dump the flight ring on this event, like
	// the walfail path.
	EvDemote = "demote"
	// EvFenceReject is traffic refused because it reached a node that is
	// not the primary under the current fencing epoch: a write on a
	// demoted or fenced node, or a commit whose verdict was failed by the
	// fence because the node was deposed mid-flight.
	EvFenceReject = "fence_reject"
)

// DefaultSize is the per-ring capacity used when New is given size <= 0.
// The server ring holds 4x this (it carries every request's lifecycle
// stamps; the others see one event per batch-scale operation).
const DefaultSize = 1024

// Event is one recorded occurrence.
type Event struct {
	Seq   uint64 // node-wide monotonic sequence (shared across rings)
	At    int64  // wall clock, unix nanoseconds
	Ring  string // ring name: "server", "admission", "repl", "shardN"
	Name  string // event name (obs stage or Ev* constant)
	Txn   uint64 // serving-layer request/session id; 0 when not request-scoped
	Shard int    // owning shard; -1 when not shard-scoped
	Epoch uint64 // global commit epoch; 0 = standalone or not yet known
}

// packed is the in-ring event representation: same fields as Event but
// pointer-free (the name interned to a code, the ring name implied by
// the owning ring). A recorder's rings hold tens of thousands of slots;
// pointer-free buffers live in noscan spans the GC never walks, which
// is what keeps an always-on multi-megabyte black box free even at
// benchmark heap sizes.
type packed struct {
	seq   uint64
	at    int64
	txn   uint64
	epoch uint64
	name  uint32
	shard int32
}

// names interns event-name strings to packed codes. The live table is
// an immutable snapshot behind an atomic pointer, so the record path
// pays one atomic load and a map read — no lock. Registering a NEW name
// clones the snapshot under namesMu (the set is a couple dozen protocol
// constants, preregistered below, so the clone path runs ~never).
type nameTable struct {
	idx  map[string]uint32
	list []string
}

var (
	names   atomic.Pointer[nameTable]
	namesMu sync.Mutex
)

func init() {
	// The canonical set: the Ev* constants plus the obs.Stage* lifecycle
	// names (spelled out — obs imports this package, not the reverse;
	// the doc-conformance test in internal/server keeps the spellings
	// honest). Preregistration is not required for correctness, it just
	// keeps the steady state on the lock-free path.
	names.Store(&nameTable{idx: make(map[string]uint32)})
	for _, n := range []string{
		EvFsync, EvFsyncError, EvWalError, EvIntent, EvDecision,
		EvCheckpoint, EvReconcileDiscard, EvReplApply, EvReplShed,
		EvPromote, EvDemote, EvFenceReject,
		"enqueue", "admit", "fork", "park", "resume", "promotion",
		"restart", "defer", "deferred", "install", "commit", "abort",
		"shed", "reap",
	} {
		nameCode(n)
	}
}

func nameCode(name string) uint32 {
	if c, ok := names.Load().idx[name]; ok {
		return c
	}
	namesMu.Lock()
	defer namesMu.Unlock()
	old := names.Load()
	if c, ok := old.idx[name]; ok {
		return c
	}
	next := &nameTable{idx: make(map[string]uint32, len(old.idx)+1), list: make([]string, len(old.list), len(old.list)+1)}
	for k, v := range old.idx {
		next.idx[k] = v
	}
	copy(next.list, old.list)
	c := uint32(len(next.list))
	next.list = append(next.list, name)
	next.idx[name] = c
	names.Store(next)
	return c
}

func nameOf(code uint32) string {
	t := names.Load()
	if int(code) >= len(t.list) {
		return "?"
	}
	return t.list[code]
}

// Ring is one bounded event buffer. A nil *Ring records nothing, so
// layers take an optional ring with no branches at the call sites.
type Ring struct {
	name string
	seq  *atomic.Uint64

	mu  sync.Mutex
	buf []packed
	n   uint64 // events ever recorded (write cursor = n % len(buf))
}

// Record appends one event, overwriting the oldest when full.
func (g *Ring) Record(name string, txn uint64, shard int, epoch uint64) {
	g.RecordAt(time.Now().UnixNano(), name, txn, shard, epoch)
}

// RecordAt is Record with the caller's timestamp — the obs.Trace sink
// uses it so a stamped stage and its flight event share one clock read.
func (g *Ring) RecordAt(at int64, name string, txn uint64, shard int, epoch uint64) {
	if g == nil {
		return
	}
	code := nameCode(name)
	seq := g.seq.Add(1)
	g.mu.Lock()
	g.buf[int(g.n%uint64(len(g.buf)))] = packed{
		seq: seq, at: at, name: code, txn: txn, shard: int32(shard), epoch: epoch,
	}
	g.n++
	g.mu.Unlock()
}

// Batch is an open reservation on a ring: up to the reserved count of
// events written under a single lock hold, with contiguous sequence
// numbers. The obs.Trace flush uses it so a request's buffered
// lifecycle stages cost one lock and one sequence reservation instead
// of one each. The ring stays locked until Done.
type Batch struct {
	g    *Ring
	seq  uint64 // next sequence number to assign
	left int
}

// Batch reserves n sequence numbers and locks the ring. Returns an
// inert batch on a nil ring or n <= 0 (Add and Done are then no-ops).
func (g *Ring) Batch(n int) Batch {
	if g == nil || n <= 0 {
		return Batch{}
	}
	last := g.seq.Add(uint64(n))
	g.mu.Lock()
	return Batch{g: g, seq: last - uint64(n) + 1, left: n}
}

// Add appends one event with the batch's next sequence number. Calls
// past the reserved count are dropped.
func (b *Batch) Add(at int64, name string, txn uint64, shard int, epoch uint64) {
	if b.g == nil || b.left == 0 {
		return
	}
	g := b.g
	g.buf[int(g.n%uint64(len(g.buf)))] = packed{
		seq: b.seq, at: at, name: nameCode(name), txn: txn, shard: int32(shard), epoch: epoch,
	}
	g.n++
	b.seq++
	b.left--
}

// Done unlocks the ring. The batch must not be used afterwards.
func (b *Batch) Done() {
	if b.g == nil {
		return
	}
	b.g.mu.Unlock()
	b.g = nil
}

// snapshot copies the ring's retained events in record order.
func (g *Ring) snapshot() []Event {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	size := uint64(len(g.buf))
	kept := g.n
	if kept > size {
		kept = size
	}
	out := make([]Event, 0, kept)
	for i := g.n - kept; i < g.n; i++ {
		p := g.buf[int(i%size)]
		out = append(out, Event{
			Seq: p.seq, At: p.at, Ring: g.name, Name: nameOf(p.name),
			Txn: p.txn, Shard: int(p.shard), Epoch: p.epoch,
		})
	}
	return out
}

// Recorder owns the rings and the shared sequence counter. A nil
// *Recorder is inert: every accessor returns a nil ring or zero value.
type Recorder struct {
	seq    atomic.Uint64
	nodeMu sync.Mutex
	node   string

	server    *Ring
	admission *Ring
	repl      *Ring
	shards    []*Ring
}

// New returns a recorder with one ring per shard plus the server,
// admission, and repl rings. size <= 0 uses DefaultSize.
func New(shards, size int) *Recorder {
	if size <= 0 {
		size = DefaultSize
	}
	if shards < 0 {
		shards = 0
	}
	r := &Recorder{node: "node"}
	mk := func(name string, n int) *Ring {
		return &Ring{name: name, seq: &r.seq, buf: make([]packed, n)}
	}
	r.server = mk("server", 4*size)
	r.admission = mk("admission", size)
	r.repl = mk("repl", size)
	r.shards = make([]*Ring, shards)
	for i := range r.shards {
		r.shards[i] = mk("shard"+strconv.Itoa(i), size)
	}
	return r
}

// SetNode names the recorder's node in dump headers (an address, a
// role) so merged timelines attribute events. Must be one token.
func (r *Recorder) SetNode(name string) {
	if r == nil || strings.ContainsAny(name, " \t\n") || name == "" {
		return
	}
	r.nodeMu.Lock()
	r.node = name
	r.nodeMu.Unlock()
}

// Node returns the node name ("node" until SetNode).
func (r *Recorder) Node() string {
	if r == nil {
		return "node"
	}
	r.nodeMu.Lock()
	defer r.nodeMu.Unlock()
	return r.node
}

// Server returns the per-request lifecycle ring.
func (r *Recorder) Server() *Ring {
	if r == nil {
		return nil
	}
	return r.server
}

// Admission returns the shed-decision ring.
func (r *Recorder) Admission() *Ring {
	if r == nil {
		return nil
	}
	return r.admission
}

// Repl returns the replication ring.
func (r *Recorder) Repl() *Ring {
	if r == nil {
		return nil
	}
	return r.repl
}

// Shard returns shard i's durability ring (nil when out of range).
func (r *Recorder) Shard(i int) *Ring {
	if r == nil || i < 0 || i >= len(r.shards) {
		return nil
	}
	return r.shards[i]
}

// Seq returns how many events have been recorded since start — the
// scc_flight_events_total bridge.
func (r *Recorder) Seq() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Snapshot merges every ring's retained events into one slice ordered
// by sequence. max > 0 keeps only the newest max events.
func (r *Recorder) Snapshot(max int) []Event {
	if r == nil {
		return nil
	}
	var all []Event
	all = append(all, r.server.snapshot()...)
	all = append(all, r.admission.snapshot()...)
	all = append(all, r.repl.snapshot()...)
	for _, g := range r.shards {
		all = append(all, g.snapshot()...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	if max > 0 && len(all) > max {
		all = all[len(all)-max:]
	}
	return all
}

// Line renders one event in the dump line format (no trailing newline):
//
//	<seq> <at> <ring> <name> txn=<id> shard=<n> epoch=<n>
func (e Event) Line() string {
	return fmt.Sprintf("%d %d %s %s txn=%d shard=%d epoch=%d",
		e.Seq, e.At, e.Ring, e.Name, e.Txn, e.Shard, e.Epoch)
}

// WriteTo writes a full dump: one header line
//
//	scc-flight/v1 node=<node> reason=<reason> at=<unixnano> events=<n>
//
// then one Line per event in sequence order.
func (r *Recorder) WriteTo(w io.Writer, reason string) error {
	events := r.Snapshot(0)
	if _, err := fmt.Fprintf(w, "scc-flight/v1 node=%s reason=%s at=%d events=%d\n",
		r.Node(), reason, time.Now().UnixNano(), len(events)); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := io.WriteString(w, e.Line()+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// DumpDir writes a dump file <dir>/<unixnano>-<reason>.events (creating
// dir) and returns its path. Failure paths call this with the process
// about to die, so it does its best and reports rather than panics.
func (r *Recorder) DumpDir(dir, reason string) (string, error) {
	if r == nil {
		return "", nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("%d-%s.events", time.Now().UnixNano(), reason))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := r.WriteTo(f, reason); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// Dump is one parsed dump file.
type Dump struct {
	Node   string
	Reason string
	At     int64
	Events []Event
}

// ParseDump reads one dump in the WriteTo format.
func ParseDump(rd io.Reader) (Dump, error) {
	var d Dump
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return d, err
		}
		return d, fmt.Errorf("flight: empty dump")
	}
	header := strings.Fields(sc.Text())
	if len(header) == 0 || header[0] != "scc-flight/v1" {
		return d, fmt.Errorf("flight: not a scc-flight/v1 dump: %q", sc.Text())
	}
	for _, f := range header[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		switch k {
		case "node":
			d.Node = v
		case "reason":
			d.Reason = v
		case "at":
			d.At, _ = strconv.ParseInt(v, 10, 64)
		}
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		e, err := parseEventLine(line)
		if err != nil {
			return d, err
		}
		d.Events = append(d.Events, e)
	}
	return d, sc.Err()
}

func parseEventLine(line string) (Event, error) {
	var e Event
	fields := strings.Fields(line)
	if len(fields) != 7 {
		return e, fmt.Errorf("flight: malformed event line %q", line)
	}
	var err error
	if e.Seq, err = strconv.ParseUint(fields[0], 10, 64); err != nil {
		return e, fmt.Errorf("flight: bad seq in %q", line)
	}
	if e.At, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
		return e, fmt.Errorf("flight: bad timestamp in %q", line)
	}
	e.Ring, e.Name = fields[2], fields[3]
	for i, want := range []string{"txn=", "shard=", "epoch="} {
		v, ok := strings.CutPrefix(fields[4+i], want)
		if !ok {
			return e, fmt.Errorf("flight: missing %s in %q", want, line)
		}
		switch i {
		case 0:
			if e.Txn, err = strconv.ParseUint(v, 10, 64); err != nil {
				return e, fmt.Errorf("flight: bad txn in %q", line)
			}
		case 1:
			if e.Shard, err = strconv.Atoi(v); err != nil {
				return e, fmt.Errorf("flight: bad shard in %q", line)
			}
		case 2:
			if e.Epoch, err = strconv.ParseUint(v, 10, 64); err != nil {
				return e, fmt.Errorf("flight: bad epoch in %q", line)
			}
		}
	}
	return e, nil
}

// ParseDumpFile reads and parses one dump file.
func ParseDumpFile(path string) (Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return Dump{}, err
	}
	defer f.Close()
	d, err := ParseDump(f)
	if err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// mergedEvent is one event attributed to its dump's node.
type mergedEvent struct {
	node string
	ev   Event
}

// MergeTimeline joins dumps (from the primary and any replicas, or from
// before and after a restart) into one textual causal timeline, grouped
// by commit epoch: for each epoch seen in any dump, the events carrying
// it print in wall-clock order — coordinator intent, per-participant
// fsync, decision, replica apply, or the reconciliation that discarded
// it. Events with no epoch are summarized, not listed (the rings hold
// thousands; the epoch-joined view is the post-mortem's spine).
func MergeTimeline(dumps []Dump, w io.Writer) error {
	byEpoch := make(map[uint64][]mergedEvent)
	unepoched := 0
	for _, d := range dumps {
		node := d.Node
		if node == "" {
			node = "node"
		}
		if _, err := fmt.Fprintf(w, "dump node=%s reason=%s events=%d\n",
			node, d.Reason, len(d.Events)); err != nil {
			return err
		}
		for _, e := range d.Events {
			if e.Epoch == 0 {
				unepoched++
				continue
			}
			byEpoch[e.Epoch] = append(byEpoch[e.Epoch], mergedEvent{node: node, ev: e})
		}
	}
	epochs := make([]uint64, 0, len(byEpoch))
	for e := range byEpoch {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	if _, err := fmt.Fprintf(w, "epochs=%d unepoched_events=%d\n", len(epochs), unepoched); err != nil {
		return err
	}
	for _, epoch := range epochs {
		evs := byEpoch[epoch]
		sort.Slice(evs, func(i, j int) bool {
			a, b := evs[i], evs[j]
			if a.ev.At != b.ev.At {
				return a.ev.At < b.ev.At
			}
			if a.node != b.node {
				return a.node < b.node
			}
			return a.ev.Seq < b.ev.Seq
		})
		if _, err := fmt.Fprintf(w, "epoch %d\n", epoch); err != nil {
			return err
		}
		t0 := evs[0].ev.At
		for _, me := range evs {
			if _, err := fmt.Fprintf(w, "  +%-9s %-12s %-18s shard=%d txn=%d seq=%d\n",
				time.Duration(me.ev.At-t0).Round(time.Microsecond), me.node, me.ev.Name,
				me.ev.Shard, me.ev.Txn, me.ev.Seq); err != nil {
				return err
			}
		}
	}
	return nil
}
