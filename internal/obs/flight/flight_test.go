package flight

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestRingWraparound(t *testing.T) {
	r := New(2, 8) // shard rings of 8, server ring of 32
	g := r.Shard(0)
	for i := 0; i < 50; i++ {
		g.Record("install", uint64(i+1), 0, 0)
	}
	evs := g.snapshot()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want ring size 8", len(evs))
	}
	// The newest 8 records survive, in order, with monotone sequences.
	for i, e := range evs {
		if want := uint64(43 + i); e.Txn != want {
			t.Fatalf("event %d: txn %d, want %d", i, e.Txn, want)
		}
		if i > 0 && evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("sequence not monotone: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if got := r.Seq(); got != 50 {
		t.Fatalf("Seq() = %d, want 50", got)
	}
}

func TestSnapshotMergesAcrossRings(t *testing.T) {
	r := New(2, 16)
	r.Server().Record("enqueue", 1, -1, 0)
	r.Shard(1).Record(EvFsync, 0, 1, 7)
	r.Server().Record("commit", 1, -1, 7)
	all := r.Snapshot(0)
	if len(all) != 3 {
		t.Fatalf("snapshot has %d events, want 3", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Fatalf("merged snapshot out of order at %d", i)
		}
	}
	if capped := r.Snapshot(2); len(capped) != 2 || capped[0].Name != EvFsync {
		t.Fatalf("Snapshot(2) = %v, want newest 2 events", capped)
	}
}

// TestConcurrentRecordAndDump races writers on every ring against
// repeated dumps; run under -race this is the lock-correctness proof,
// and the size assertions bound memory regardless of write volume.
func TestConcurrentRecordAndDump(t *testing.T) {
	const size = 32
	r := New(4, size)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Server().Record("admit", uint64(i), -1, 0)
				r.Shard(w).Record(EvFsync, 0, w, uint64(i))
				r.Admission().Record("shed", uint64(i), -1, 0)
				r.Repl().Record(EvReplApply, 0, w, uint64(i))
			}
		}(w)
	}
	for i := 0; i < 100; i++ {
		var buf bytes.Buffer
		if err := r.WriteTo(&buf, "test"); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		if n := len(r.Snapshot(0)); n > 4*size+size*4+size+size {
			t.Fatalf("snapshot retained %d events, exceeds ring bounds", n)
		}
	}
	close(stop)
	wg.Wait()
}

func TestNilRecorderAndRing(t *testing.T) {
	var r *Recorder
	r.Server().Record("admit", 1, -1, 0) // must not panic
	var g *Ring
	g.Record("admit", 1, -1, 0)
	if r.Snapshot(0) != nil || r.Seq() != 0 || r.Shard(3) != nil {
		t.Fatal("nil recorder must be inert")
	}
	if p, err := r.DumpDir(t.TempDir(), "x"); err != nil || p != "" {
		t.Fatalf("nil recorder DumpDir = (%q, %v), want empty no-op", p, err)
	}
}

func TestDumpParseRoundTrip(t *testing.T) {
	r := New(2, 16)
	r.SetNode("127.0.0.1:7400")
	r.Server().Record("enqueue", 42, -1, 0)
	r.Shard(1).Record(EvIntent, 0, 1, 9)
	r.Shard(0).Record(EvDecision, 0, 0, 9)

	var buf bytes.Buffer
	if err := r.WriteTo(&buf, "walfail"); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	d, err := ParseDump(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseDump: %v", err)
	}
	if d.Node != "127.0.0.1:7400" || d.Reason != "walfail" || len(d.Events) != 3 {
		t.Fatalf("round trip lost header or events: %+v", d)
	}
	if e := d.Events[1]; e.Name != EvIntent || e.Shard != 1 || e.Epoch != 9 {
		t.Fatalf("event 1 round-tripped wrong: %+v", e)
	}
}

func TestParseDumpRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"not a dump\n",
		"scc-flight/v1 node=a reason=b at=1 events=1\nbogus line\n",
		"scc-flight/v1 node=a reason=b at=1 events=1\n1 2 ring name txn=x shard=0 epoch=0\n",
	} {
		if _, err := ParseDump(strings.NewReader(in)); err == nil {
			t.Fatalf("ParseDump(%q) accepted garbage", in)
		}
	}
}

func TestMergeTimeline(t *testing.T) {
	primary := Dump{Node: "primary", Reason: "walfail", Events: []Event{
		{Seq: 1, At: 100, Ring: "shard0", Name: EvIntent, Shard: 0, Epoch: 5},
		{Seq: 2, At: 110, Ring: "shard1", Name: EvIntent, Shard: 1, Epoch: 5},
		{Seq: 3, At: 150, Ring: "shard0", Name: EvFsyncError, Shard: 0, Epoch: 5},
		{Seq: 4, At: 90, Ring: "server", Name: "admit", Txn: 7},
	}}
	restart := Dump{Node: "primary", Reason: "reconcile", Events: []Event{
		{Seq: 1, At: 900, Ring: "shard0", Name: EvReconcileDiscard, Shard: 0, Epoch: 5},
	}}
	var buf bytes.Buffer
	if err := MergeTimeline([]Dump{primary, restart}, &buf); err != nil {
		t.Fatalf("MergeTimeline: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "epoch 5") {
		t.Fatalf("timeline missing epoch block:\n%s", out)
	}
	for _, name := range []string{EvIntent, EvFsyncError, EvReconcileDiscard} {
		if !strings.Contains(out, name) {
			t.Fatalf("timeline missing %s:\n%s", name, out)
		}
	}
	// Causal order within the epoch: intent before fsync error before
	// the reconciliation decision.
	if i, j := strings.Index(out, EvIntent), strings.Index(out, EvReconcileDiscard); i > j {
		t.Fatalf("timeline out of order:\n%s", out)
	}
	if !strings.Contains(out, "unepoched_events=1") {
		t.Fatalf("unepoched summary missing:\n%s", out)
	}
}
