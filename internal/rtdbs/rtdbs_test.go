package rtdbs

import (
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

// testOCC is a minimal broadcast-commit OCC used to exercise the runtime
// mechanics; the real protocol lives in internal/occ.
type testOCC struct {
	rt     *Runtime
	shadow map[model.TxnID]*Shadow
}

func newTestOCC() *testOCC { return &testOCC{shadow: make(map[model.TxnID]*Shadow)} }

func (c *testOCC) Name() string       { return "test-occ" }
func (c *testOCC) Attach(rt *Runtime) { c.rt = rt }
func (c *testOCC) OnArrival(t *model.Txn) {
	sh := c.rt.Spawn(t, 0, nil)
	c.shadow[t.ID] = sh
	c.rt.Kick(sh)
}
func (c *testOCC) CanProceed(*Shadow) bool { return true }
func (c *testOCC) OnOpDone(*Shadow)        {}
func (c *testOCC) OnFinish(sh *Shadow)     { c.rt.Commit(sh) }
func (c *testOCC) OnCommitted(t *model.Txn, _ *Shadow) {
	delete(c.shadow, t.ID)
	ws := make([]model.PageID, 0, 8)
	// The committed transaction's writes are already installed; find
	// survivors that read any of those pages and restart them.
	for _, id := range c.rt.ActiveIDs() {
		st := c.rt.State(id)
		sh := c.shadow[id]
		if sh == nil || sh.Aborted() {
			continue
		}
		_ = st
		stale := false
		for _, obs := range sh.Log.Reads() {
			if c.rt.Version(obs.Page) != obs.Version {
				stale = true
				break
			}
		}
		_ = ws
		if stale {
			c.shadow[id] = c.rt.Restart(st.Txn)
		}
	}
}

func smallCfg(rate float64, seed int64, target int) Config {
	wl := workload.Baseline(rate, seed)
	return Config{
		Workload:      wl,
		Target:        target,
		Warmup:        10,
		CheckReads:    true,
		RecordHistory: true,
	}
}

func TestRunCommitsTarget(t *testing.T) {
	res := Run(smallCfg(30, 1, 300), newTestOCC())
	if res.Truncated {
		t.Fatal("run truncated")
	}
	if res.Metrics.Committed != 300 {
		t.Fatalf("Committed = %d, want 300", res.Metrics.Committed)
	}
	if res.Protocol != "test-occ" {
		t.Fatalf("Protocol = %q", res.Protocol)
	}
	if res.SimTime <= 0 {
		t.Fatal("sim time did not advance")
	}
}

func TestHistorySerializable(t *testing.T) {
	res := Run(smallCfg(80, 2, 400), newTestOCC())
	if err := res.History.Check(); err != nil {
		t.Fatal(err)
	}
	// Warmup commits are recorded too.
	if res.History.Len() != 400+10 {
		t.Fatalf("history has %d records, want 410", res.History.Len())
	}
}

func TestDeterministicReplay(t *testing.T) {
	a := Run(smallCfg(60, 7, 200), newTestOCC())
	b := Run(smallCfg(60, 7, 200), newTestOCC())
	if *a.Metrics != *b.Metrics {
		t.Fatalf("same seed, different metrics:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
	if a.SimTime != b.SimTime {
		t.Fatalf("sim times differ: %v vs %v", a.SimTime, b.SimTime)
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := Run(smallCfg(60, 1, 200), newTestOCC())
	b := Run(smallCfg(60, 2, 200), newTestOCC())
	if a.SimTime == b.SimTime {
		t.Fatal("different seeds produced identical sim times (suspicious)")
	}
}

func TestTardinessAndMissedConsistency(t *testing.T) {
	res := Run(smallCfg(120, 3, 400), newTestOCC())
	m := res.Metrics
	if m.Missed > m.Committed {
		t.Fatalf("Missed %d > Committed %d", m.Missed, m.Committed)
	}
	if m.Missed == 0 && m.TardinessSum > 0 {
		t.Fatal("tardiness without misses")
	}
	if m.Missed > 0 && m.TardinessSum <= 0 {
		t.Fatal("misses without tardiness")
	}
	if m.MissedRatio() < 0 || m.MissedRatio() > 100 {
		t.Fatalf("MissedRatio = %v", m.MissedRatio())
	}
}

func TestValueAccounting(t *testing.T) {
	res := Run(smallCfg(30, 4, 200), newTestOCC())
	m := res.Metrics
	if m.MaxValueSum != float64(m.Committed)*100 {
		t.Fatalf("MaxValueSum = %v, want committed*100", m.MaxValueSum)
	}
	if m.ValueSum > m.MaxValueSum {
		t.Fatal("accrued value exceeds maximum")
	}
}

func TestRestartsCountedUnderContention(t *testing.T) {
	res := Run(smallCfg(150, 5, 300), newTestOCC())
	if res.Metrics.Restarts == 0 {
		t.Fatal("expected restarts at high load under broadcast-commit OCC")
	}
	if res.Metrics.WastedTime <= 0 {
		t.Fatal("restarts must account wasted time")
	}
}

func TestForkPrefixSemantics(t *testing.T) {
	// Build a tiny runtime manually to test fork mechanics.
	cfg := smallCfg(10, 6, 5)
	rt := New(cfg, newTestOCC())
	tx := &model.Txn{
		ID:    999,
		Class: &cfg.Workload.Classes[0],
		Ops: []model.Op{
			{Page: 1}, {Page: 2}, {Page: 3, Write: true}, {Page: 4},
		},
		OpTime: 0.01,
	}
	tx.Deadline = 1
	rt.active[tx.ID] = &TxnState{Txn: tx}
	sh := rt.Spawn(tx, 0, nil)
	rt.Kick(sh)
	// Execute three ops.
	for i := 0; i < 3; i++ {
		rt.K.Step()
	}
	if sh.NextOp != 3 {
		t.Fatalf("NextOp = %d, want 3", sh.NextOp)
	}
	f := rt.ForkPrefix(sh, 2)
	if f.StartOp != 2 || f.NextOp != 2 {
		t.Fatalf("fork Start/Next = %d/%d, want 2/2", f.StartOp, f.NextOp)
	}
	if !f.Log.ReadPage(1) || !f.Log.ReadPage(2) {
		t.Fatal("fork missing inherited prefix reads")
	}
	if f.Log.Wrote(3) {
		t.Fatal("fork inherited an access past the cut")
	}
	if f.OwnExecTime() != 0 {
		t.Fatalf("fresh fork OwnExecTime = %v, want 0", f.OwnExecTime())
	}
	full := rt.Fork(sh)
	if full.NextOp != 3 || !full.Log.Wrote(3) {
		t.Fatal("Fork must clone donor's full progress")
	}
}

func TestForkPrefixBeyondProgressPanics(t *testing.T) {
	cfg := smallCfg(10, 6, 5)
	rt := New(cfg, newTestOCC())
	tx := &model.Txn{ID: 1000, Class: &cfg.Workload.Classes[0],
		Ops: []model.Op{{Page: 1}}, OpTime: 0.01}
	rt.active[tx.ID] = &TxnState{Txn: tx}
	sh := rt.Spawn(tx, 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("ForkPrefix beyond progress did not panic")
		}
	}()
	rt.ForkPrefix(sh, 1)
}

func TestAbortShadowIdempotent(t *testing.T) {
	cfg := smallCfg(10, 6, 5)
	rt := New(cfg, newTestOCC())
	tx := &model.Txn{ID: 1001, Class: &cfg.Workload.Classes[0],
		Ops: []model.Op{{Page: 1}, {Page: 2}}, OpTime: 0.01}
	rt.active[tx.ID] = &TxnState{Txn: tx}
	sh := rt.Spawn(tx, 0, nil)
	rt.Kick(sh)
	rt.K.Step()
	rt.AbortShadow(sh)
	w := rt.Metrics.WastedTime
	rt.AbortShadow(sh)
	if rt.Metrics.WastedTime != w {
		t.Fatal("double abort double-counted wasted time")
	}
	if len(rt.active[tx.ID].Shadows) != 0 {
		t.Fatal("aborted shadow still registered")
	}
}

func TestActiveIDsSorted(t *testing.T) {
	cfg := smallCfg(10, 6, 5)
	rt := New(cfg, newTestOCC())
	for _, id := range []model.TxnID{5, 3, 9, 1} {
		rt.active[id] = &TxnState{}
	}
	ids := rt.ActiveIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			t.Fatalf("ActiveIDs not sorted: %v", ids)
		}
	}
	if len(ids) != 4 {
		t.Fatalf("ActiveIDs len = %d", len(ids))
	}
}

func TestMaxActiveTruncates(t *testing.T) {
	cfg := smallCfg(200, 8, 100000)
	cfg.MaxActive = 20
	res := Run(cfg, &stallCCM{})
	if !res.Truncated {
		t.Fatal("run with stalled CCM must truncate on MaxActive")
	}
}

// stallCCM admits transactions but never lets them run: the active set
// grows without bound.
type stallCCM struct{ rt *Runtime }

func (c *stallCCM) Name() string                    { return "stall" }
func (c *stallCCM) Attach(rt *Runtime)              { c.rt = rt }
func (c *stallCCM) OnArrival(t *model.Txn)          { c.rt.Kick(c.rt.Spawn(t, 0, nil)) }
func (c *stallCCM) CanProceed(*Shadow) bool         { return false }
func (c *stallCCM) OnOpDone(*Shadow)                {}
func (c *stallCCM) OnFinish(sh *Shadow)             {}
func (c *stallCCM) OnCommitted(*model.Txn, *Shadow) {}

func TestBlockedWaitsCounted(t *testing.T) {
	cfg := smallCfg(50, 9, 10)
	cfg.MaxActive = 30
	res := Run(cfg, &stallCCM{})
	if res.Metrics.BlockedWaits == 0 {
		t.Fatal("stalled shadows must count blocked waits")
	}
}

func TestCommitPanicsOnUnfinished(t *testing.T) {
	cfg := smallCfg(10, 6, 5)
	rt := New(cfg, newTestOCC())
	tx := &model.Txn{ID: 1002, Class: &cfg.Workload.Classes[0],
		Ops: []model.Op{{Page: 1}}, OpTime: 0.01}
	rt.active[tx.ID] = &TxnState{Txn: tx}
	sh := rt.Spawn(tx, 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Commit of unfinished shadow did not panic")
		}
	}()
	rt.Commit(sh)
}

func TestWarmupExcluded(t *testing.T) {
	cfg := smallCfg(30, 10, 50)
	cfg.Warmup = 25
	res := Run(cfg, newTestOCC())
	if res.Metrics.Committed != 50 {
		t.Fatalf("Committed = %d, want 50 measured", res.Metrics.Committed)
	}
	if res.History.Len() != 75 {
		t.Fatalf("history %d, want warmup+target = 75", res.History.Len())
	}
}

func TestFiniteServersStillCorrect(t *testing.T) {
	cfg := smallCfg(40, 11, 300)
	cfg.Servers = 12 // offered load ~9.6 server-seconds/s: stable but queueing
	res := Run(cfg, newTestOCC())
	if res.Truncated {
		t.Fatal("truncated")
	}
	if err := res.History.Check(); err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Committed != 300 {
		t.Fatalf("committed %d", res.Metrics.Committed)
	}
}

func TestFiniteServersSlowDownExecution(t *testing.T) {
	// The same workload must take longer in simulated time when ops queue
	// for a small server pool.
	base := smallCfg(60, 12, 300)
	inf := Run(base, newTestOCC())
	scarce := base
	scarce.Servers = 16 // offered load ~14.4: stable, yet ops queue
	fin := Run(scarce, newTestOCC())
	if fin.SimTime <= inf.SimTime {
		t.Fatalf("finite servers (%v) not slower than infinite (%v)", fin.SimTime, inf.SimTime)
	}
	if fin.Metrics.MissedRatio() <= inf.Metrics.MissedRatio() {
		t.Fatalf("resource contention should raise missed ratio (%v vs %v)",
			fin.Metrics.MissedRatio(), inf.Metrics.MissedRatio())
	}
}

func TestFiniteServersDeterministic(t *testing.T) {
	cfg := smallCfg(50, 13, 200)
	cfg.Servers = 13
	a := Run(cfg, newTestOCC())
	b := Run(cfg, newTestOCC())
	if *a.Metrics != *b.Metrics {
		t.Fatalf("nondeterministic under finite servers:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
}
