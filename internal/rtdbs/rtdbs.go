// Package rtdbs implements the paper's logical system model (Fig. 12): a
// transaction pool fed by Poisson arrivals, a transaction manager that
// executes page accesses, a resource manager with infinite resources (each
// access takes its service time with no queueing), a pluggable concurrency
// control manager (CCM), and a sink collecting statistics.
//
// The unit of execution is the Shadow: a (possibly speculative) run of a
// transaction's operation list. PCC and OCC protocols use exactly one
// shadow per transaction; SCC protocols fork, block and promote several.
// The runtime provides the mechanics (spawn, fork-with-prefix, block,
// abort, commit-with-validation); protocols supply the policy through the
// CCM interface.
package rtdbs

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// CCM is a concurrency control manager. The runtime invokes it at every
// scheduling decision point; the CCM drives shadows through the runtime's
// primitives (Spawn, AbortShadow, Commit, Kick).
type CCM interface {
	// Name identifies the protocol in reports.
	Name() string
	// Attach hands the CCM its runtime before the simulation starts.
	Attach(rt *Runtime)
	// OnArrival admits a transaction; the CCM must spawn its initial
	// shadow(s).
	OnArrival(t *model.Txn)
	// CanProceed is consulted before each operation is scheduled. False
	// parks the shadow; the CCM must Kick it when conditions change.
	CanProceed(sh *Shadow) bool
	// OnOpDone fires after an operation's access has been recorded in the
	// shadow's log. Conflict detection lives here.
	OnOpDone(sh *Shadow)
	// OnFinish fires when a shadow has executed its whole operation list.
	// The CCM decides whether to Commit now or defer.
	OnFinish(sh *Shadow)
	// OnCommitted fires after a transaction's writes are installed and it
	// left the active set; sh is the shadow that committed (its log holds
	// the installed write set). Broadcast-commit handling (restarts,
	// promotions) lives here.
	OnCommitted(t *model.Txn, sh *Shadow)
}

// Shadow is one executing copy of a transaction.
type Shadow struct {
	Txn *model.Txn
	SID int // unique per runtime, for deterministic ordering and traces
	// StartOp is the operation index this shadow began executing from
	// (inherited prefix accesses before StartOp cost it nothing).
	StartOp int
	// NextOp is the next operation index to execute; ops in [StartOp,
	// NextOp) were executed by this shadow itself.
	NextOp int
	// Log records the shadow's accesses, including any inherited prefix.
	Log *model.AccessLog
	// Blocked is set while CanProceed holds the shadow parked.
	Blocked bool
	// Queued is set while the shadow waits for a resource server.
	Queued bool

	holdsServer bool
	// Finished is set once every op has executed.
	Finished bool
	// PD is protocol-private data.
	PD any

	aborted bool
	pending *sim.Event
}

// Aborted reports whether the shadow has been aborted.
func (s *Shadow) Aborted() bool { return s.aborted }

// OwnExecTime returns the execution time this shadow itself consumed.
func (s *Shadow) OwnExecTime() float64 {
	return float64(s.NextOp-s.StartOp) * s.Txn.OpTime
}

// EstExecutedTime returns the class-mean-scaled execution time embodied in
// the shadow (inherited prefix included): the tau of SCC-DC's finish
// probabilities, which works from class statistics, not actual op times.
func (s *Shadow) EstExecutedTime() float64 {
	return float64(s.NextOp) * s.Txn.Class.MeanOpTime
}

// TxnState tracks one active transaction and its live shadows.
type TxnState struct {
	Txn     *model.Txn
	Shadows []*Shadow
	// Restarts counts from-scratch restarts of this transaction.
	Restarts int
	// PD is protocol-private per-transaction data.
	PD any
}

// Config configures one simulation run.
type Config struct {
	Workload workload.Config
	// Target is the number of measured commits to collect.
	Target int
	// Warmup commits are excluded from metrics (history still records
	// them so serializability checking covers the whole run).
	Warmup int
	// CheckReads validates, at every commit, that each read observed the
	// currently committed version. A failure panics: it is a protocol
	// implementation bug, never a workload condition.
	CheckReads bool
	// RecordHistory keeps per-commit footprints for the offline
	// serializability checker (memory-proportional to commits).
	RecordHistory bool
	// MaxSteps aborts runaway simulations (0 = default 200M events).
	MaxSteps int64
	// MaxActive stops the run if the live transaction population exceeds
	// this bound, marking the result truncated (0 = default 20000).
	MaxActive int
	// Servers, when positive, bounds the number of operations in service
	// simultaneously (a finite resource pool; each op occupies one server
	// for its service time, excess ops queue FCFS). Zero is the paper's
	// infinite-resources assumption. Shadows consume servers like any
	// execution, so speculation stops being free — the ablation behind
	// the paper's Sec. 1 argument that SCC targets resource-rich systems.
	Servers int
}

// Result is the outcome of a run.
type Result struct {
	Metrics   *stats.Metrics
	History   *history.Recorder
	Truncated bool // stopped on MaxSteps/MaxActive before Target commits
	SimTime   sim.Time
	Protocol  string
}

// Runtime is the simulated RTDBS.
type Runtime struct {
	K       *sim.Kernel
	Metrics *stats.Metrics
	// Trace, when set, receives a line for every runtime event (spawn,
	// access, block, abort, restart, commit); used by cmd/scctrace.
	Trace func(at sim.Time, format string, args ...any)

	cfg       Config
	gen       *workload.Generator
	ccm       CCM
	version   map[model.PageID]model.TxnID
	active    map[model.TxnID]*TxnState
	rec       *history.Recorder
	commitSeq int
	nextSID   int
	truncated bool

	// finite resource pool (nil under infinite resources)
	rmFree  int
	rmQueue []*Shadow
	rmOn    bool
}

// New builds a runtime for one run.
func New(cfg Config, ccm CCM) *Runtime {
	if cfg.Target <= 0 {
		panic("rtdbs: Target must be positive")
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 200_000_000
	}
	if cfg.MaxActive == 0 {
		cfg.MaxActive = 20000
	}
	rt := &Runtime{
		K:       sim.New(),
		Metrics: &stats.Metrics{},
		cfg:     cfg,
		gen:     workload.NewGenerator(cfg.Workload),
		ccm:     ccm,
		version: make(map[model.PageID]model.TxnID),
		active:  make(map[model.TxnID]*TxnState),
	}
	if cfg.RecordHistory {
		rt.rec = &history.Recorder{}
	}
	if cfg.Servers > 0 {
		rt.rmOn = true
		rt.rmFree = cfg.Servers
	}
	ccm.Attach(rt)
	return rt
}

// Run executes the simulation to completion and returns its result.
func Run(cfg Config, ccm CCM) Result {
	rt := New(cfg, ccm)
	rt.scheduleArrival()
	rt.K.Run()
	return Result{
		Metrics:   rt.Metrics,
		History:   rt.rec,
		Truncated: rt.truncated,
		SimTime:   rt.K.Now(),
		Protocol:  ccm.Name(),
	}
}

func (rt *Runtime) scheduleArrival() {
	t := rt.gen.Next()
	rt.K.At(t.Arrival, func() {
		if rt.K.Steps() > rt.cfg.MaxSteps || len(rt.active) > rt.cfg.MaxActive {
			rt.stopTruncated()
			return
		}
		rt.active[t.ID] = &TxnState{Txn: t}
		rt.ccm.OnArrival(t)
		rt.scheduleArrival()
	})
}

// stopTruncated ends a saturated run. Transactions still active past
// their deadlines are certain to commit late; folding them into the missed
// counts (with their tardiness-so-far as a lower bound) keeps the missed
// ratio of a saturated point honest instead of sampling only the commits
// of the startup transient.
func (rt *Runtime) stopTruncated() {
	rt.truncated = true
	now := rt.K.Now()
	m := rt.Metrics
	for _, id := range rt.ActiveIDs() {
		t := rt.active[id].Txn
		if now > t.Deadline {
			m.Committed++
			m.Missed++
			m.TardinessSum += float64(now - t.Deadline)
			m.ValueSum += t.Value(now)
			m.MaxValueSum += t.Class.Value
		}
	}
	rt.K.Stop()
}

// Admit inserts a hand-built transaction into the active set and hands it
// to the CCM, bypassing the workload generator. Tests use it to replay the
// paper's illustrative schedules; the regular arrival process does the
// same thing internally.
func (rt *Runtime) Admit(t *model.Txn) {
	if _, dup := rt.active[t.ID]; dup {
		panic(fmt.Sprintf("rtdbs: Admit of duplicate txn %d", t.ID))
	}
	rt.active[t.ID] = &TxnState{Txn: t}
	rt.ccm.OnArrival(t)
}

// History returns the commit recorder (nil unless RecordHistory was set).
func (rt *Runtime) History() *history.Recorder { return rt.rec }

// State returns the active-transaction state for id, or nil.
func (rt *Runtime) State(id model.TxnID) *TxnState { return rt.active[id] }

// ActiveIDs returns the IDs of active transactions in ascending order, the
// deterministic iteration order CCMs must use.
func (rt *Runtime) ActiveIDs() []model.TxnID {
	ids := make([]model.TxnID, 0, len(rt.active))
	for id := range rt.active {
		ids = append(ids, id)
	}
	// Insertion sort: active sets are small and nearly sorted.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// NumActive returns the size of the active set.
func (rt *Runtime) NumActive() int { return len(rt.active) }

// Version returns the committed version (last committed writer) of a page.
func (rt *Runtime) Version(p model.PageID) model.TxnID { return rt.version[p] }

// Spawn creates a shadow for t starting at op index startOp with the given
// inherited access log (nil for an empty log). The shadow is created
// parked so the CCM can attach protocol data (e.g. a block point) first;
// the caller must Kick it to start execution.
func (rt *Runtime) Spawn(t *model.Txn, startOp int, log *model.AccessLog) *Shadow {
	st := rt.active[t.ID]
	if st == nil {
		panic(fmt.Sprintf("rtdbs: Spawn for inactive txn %d", t.ID))
	}
	if log == nil {
		log = model.NewAccessLog()
	}
	sh := &Shadow{Txn: t, SID: rt.nextSID, StartOp: startOp, NextOp: startOp, Log: log}
	rt.nextSID++
	st.Shadows = append(st.Shadows, sh)
	rt.trace("spawn   txn %d shadow %d from op %d", t.ID, sh.SID, startOp)
	return sh
}

func (rt *Runtime) trace(format string, args ...any) {
	if rt.Trace != nil {
		rt.Trace(rt.K.Now(), format, args...)
	}
}

// Fork clones donor from its current progress: the new shadow inherits the
// donor's access log as a zero-cost prefix and will execute from
// donor.NextOp onward. The donor keeps running.
func (rt *Runtime) Fork(donor *Shadow) *Shadow {
	return rt.Spawn(donor.Txn, donor.NextOp, donor.Log.Prefix(donor.NextOp))
}

// ForkPrefix clones donor's state as of operation index upto <= NextOp,
// i.e. the process image just before op upto was consumed. This implements
// the Read Rule's "forked off T_o_r" at the conflicting read.
func (rt *Runtime) ForkPrefix(donor *Shadow, upto int) *Shadow {
	if upto > donor.NextOp {
		panic(fmt.Sprintf("rtdbs: ForkPrefix beyond donor progress (%d > %d)", upto, donor.NextOp))
	}
	return rt.Spawn(donor.Txn, upto, donor.Log.Prefix(upto))
}

// Kick re-evaluates a parked shadow (after a lock grant, a promotion, or
// any CCM state change that may unblock it).
func (rt *Runtime) Kick(sh *Shadow) { rt.maybeRun(sh) }

// Park cancels sh's in-flight operation, if any. The operation is not
// recorded; a later Kick re-executes it from scratch. CCMs use this when a
// scheduling decision (e.g. a shadow promotion) retracts the conditions
// under which the operation was issued.
func (rt *Runtime) Park(sh *Shadow) {
	if sh.pending != nil {
		rt.K.Cancel(sh.pending)
		sh.pending = nil
		rt.releaseServer(sh)
	}
}

func (rt *Runtime) maybeRun(sh *Shadow) {
	if sh.aborted || sh.Finished || sh.pending != nil {
		return
	}
	if sh.NextOp >= len(sh.Txn.Ops) {
		sh.Finished = true
		sh.Blocked = false
		rt.ccm.OnFinish(sh)
		return
	}
	if !rt.ccm.CanProceed(sh) {
		if !sh.Blocked {
			sh.Blocked = true
			rt.Metrics.BlockedWaits++
			rt.trace("block   txn %d shadow %d before op %d", sh.Txn.ID, sh.SID, sh.NextOp)
		}
		return
	}
	sh.Blocked = false
	if rt.rmOn && !sh.holdsServer {
		if rt.rmFree == 0 {
			if !sh.Queued {
				sh.Queued = true
				rt.rmQueue = append(rt.rmQueue, sh)
			}
			return
		}
		rt.rmFree--
		sh.holdsServer = true
	}
	sh.Queued = false
	sh.pending = rt.K.After(sim.Time(sh.Txn.OpTime), func() { rt.opDone(sh) })
}

// releaseServer returns sh's server (if held) to the pool and dispatches
// queued shadows until the pool or the queue drains.
func (rt *Runtime) releaseServer(sh *Shadow) {
	if !rt.rmOn || !sh.holdsServer {
		return
	}
	sh.holdsServer = false
	rt.rmFree++
	for rt.rmFree > 0 && len(rt.rmQueue) > 0 {
		head := rt.rmQueue[0]
		rt.rmQueue = rt.rmQueue[1:]
		if head.aborted || !head.Queued {
			continue
		}
		head.Queued = false
		free := rt.rmFree
		rt.maybeRun(head)
		if rt.rmFree == free {
			// The shadow did not take the server (blocked by the CCM);
			// keep dispatching.
			continue
		}
	}
}

func (rt *Runtime) opDone(sh *Shadow) {
	sh.pending = nil
	rt.releaseServer(sh)
	if sh.aborted {
		return
	}
	op := sh.Txn.Ops[sh.NextOp]
	if op.Write {
		sh.Log.AddWrite(op.Page, sh.NextOp)
		rt.trace("write   txn %d shadow %d op %d page %d", sh.Txn.ID, sh.SID, sh.NextOp, op.Page)
	} else {
		sh.Log.AddRead(op.Page, sh.NextOp, rt.version[op.Page])
		rt.trace("read    txn %d shadow %d op %d page %d (version %d)", sh.Txn.ID, sh.SID, sh.NextOp, op.Page, rt.version[op.Page])
	}
	sh.NextOp++
	rt.ccm.OnOpDone(sh)
	if sh.aborted {
		return
	}
	if rt.K.Steps() > rt.cfg.MaxSteps {
		rt.stopTruncated()
		return
	}
	rt.maybeRun(sh)
}

// AbortShadow stops sh and accounts its own executed time as wasted work.
// Aborting an already-aborted shadow is a no-op.
func (rt *Runtime) AbortShadow(sh *Shadow) {
	if sh.aborted {
		return
	}
	sh.aborted = true
	rt.K.Cancel(sh.pending)
	sh.pending = nil
	rt.releaseServer(sh)
	rt.trace("abort   txn %d shadow %d at op %d", sh.Txn.ID, sh.SID, sh.NextOp)
	rt.Metrics.WastedTime += sh.OwnExecTime()
	if st := rt.active[sh.Txn.ID]; st != nil {
		for i, s := range st.Shadows {
			if s == sh {
				st.Shadows = append(st.Shadows[:i], st.Shadows[i+1:]...)
				break
			}
		}
	}
}

// Restart aborts every shadow of t and spawns a fresh one from scratch,
// bumping the restart counters. It returns the new shadow.
func (rt *Runtime) Restart(t *model.Txn) *Shadow {
	st := rt.active[t.ID]
	if st == nil {
		panic(fmt.Sprintf("rtdbs: Restart for inactive txn %d", t.ID))
	}
	for len(st.Shadows) > 0 {
		rt.AbortShadow(st.Shadows[0])
	}
	st.Restarts++
	rt.Metrics.Restarts++
	rt.trace("restart txn %d (from scratch)", t.ID)
	sh := rt.Spawn(t, 0, nil)
	rt.maybeRun(sh)
	return sh
}

// Commit validates sh's reads, installs its writes, finalizes statistics,
// removes the transaction from the active set (aborting sibling shadows),
// and broadcasts OnCommitted.
func (rt *Runtime) Commit(sh *Shadow) {
	t := sh.Txn
	st := rt.active[t.ID]
	switch {
	case st == nil:
		panic(fmt.Sprintf("rtdbs: Commit of inactive txn %d", t.ID))
	case sh.aborted:
		panic(fmt.Sprintf("rtdbs: Commit of aborted shadow %d of txn %d", sh.SID, t.ID))
	case !sh.Finished:
		panic(fmt.Sprintf("rtdbs: Commit of unfinished shadow %d of txn %d", sh.SID, t.ID))
	}
	now := rt.K.Now()

	if rt.cfg.CheckReads {
		for _, obs := range sh.Log.Reads() {
			if got := rt.version[obs.Page]; got != obs.Version {
				panic(fmt.Sprintf("rtdbs: %s: txn %d commits having read page %d version %d, committed version is %d",
					rt.ccm.Name(), t.ID, obs.Page, obs.Version, got))
			}
		}
	}
	for _, p := range sh.Log.WritePages() {
		rt.version[p] = t.ID
	}
	rt.commitSeq++
	if rt.rec != nil {
		reads := make([]model.ReadObs, len(sh.Log.Reads()))
		copy(reads, sh.Log.Reads())
		writes := make([]model.PageID, len(sh.Log.WritePages()))
		copy(writes, sh.Log.WritePages())
		rt.rec.Add(history.CommitRecord{ID: t.ID, Seq: rt.commitSeq, Commit: float64(now), Reads: reads, Writes: writes})
	}

	// Sibling shadows are obsolete (Commit Rule: "all other shadows of
	// T_r become obsolete and are aborted").
	sh.aborted = true // guard against reuse; not wasted work
	rt.K.Cancel(sh.pending)
	sh.pending = nil
	rt.releaseServer(sh)
	for len(st.Shadows) > 0 {
		other := st.Shadows[0]
		if other == sh {
			st.Shadows = st.Shadows[1:]
			continue
		}
		rt.AbortShadow(other)
	}
	delete(rt.active, t.ID)

	if rt.commitSeq > rt.cfg.Warmup {
		m := rt.Metrics
		m.Committed++
		m.UsefulTime += sh.OwnExecTime()
		if now > t.Deadline {
			m.Missed++
			m.TardinessSum += float64(now - t.Deadline)
		}
		m.ValueSum += t.Value(now)
		m.MaxValueSum += t.Class.Value
	}

	rt.trace("commit  txn %d via shadow %d (tardiness %.2f)", t.ID, sh.SID, max(0, float64(now-t.Deadline)))
	rt.ccm.OnCommitted(t, sh)

	if rt.commitSeq >= rt.cfg.Warmup+rt.cfg.Target {
		rt.K.Stop()
	}
}
