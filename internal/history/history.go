// Package history verifies serializability of committed executions.
//
// The simulator records, for every committed transaction, the versions it
// observed on reads (the TxnID of the last committed writer at the moment
// of the read) and the pages it wrote. From those observations this
// package builds the version-order conflict graph over committed
// transactions and checks it is acyclic — an execution is (conflict)
// serializable iff the graph has no cycle.
//
// This is a test oracle: it is independent of every protocol's own
// validation logic, so a protocol bug that commits a non-serializable
// schedule is caught even if the protocol's internal bookkeeping agrees
// with itself.
package history

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// CommitRecord is the footprint of one committed transaction.
type CommitRecord struct {
	ID model.TxnID
	// Seq is the version-install order. Several commits can share a
	// virtual timestamp (commit cascades within one event), so replay
	// must follow Seq, not Commit.
	Seq    int
	Commit float64 // commit timestamp, for reporting
	Reads  []model.ReadObs
	Writes []model.PageID
}

// Recorder accumulates commit records.
type Recorder struct {
	records []CommitRecord
}

// Add appends one committed transaction's footprint.
func (r *Recorder) Add(rec CommitRecord) { r.records = append(r.records, rec) }

// Len returns the number of recorded commits.
func (r *Recorder) Len() int { return len(r.records) }

// Records returns the recorded commits in commit order.
func (r *Recorder) Records() []CommitRecord { return r.records }

// Check verifies the recorded history is conflict-serializable and that
// every read observed a version actually produced by a committed
// transaction (or the initial version 0). It returns an error describing
// the first violation found.
func (r *Recorder) Check() error {
	// Replay in version-install order.
	recs := make([]CommitRecord, len(r.records))
	copy(recs, r.records)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })

	idx := make(map[model.TxnID]int, len(recs))
	for i, rec := range recs {
		if _, dup := idx[rec.ID]; dup {
			return fmt.Errorf("history: transaction %d committed twice", rec.ID)
		}
		idx[rec.ID] = i
	}

	// Replay version history per page to validate observations.
	ver := make(map[model.PageID]model.TxnID)
	for i := range recs {
		for _, obs := range recs[i].Reads {
			cur := ver[obs.Page]
			if obs.Version != cur {
				return fmt.Errorf("history: txn %d read page %d version %d, but committed version at its commit was %d",
					recs[i].ID, obs.Page, obs.Version, cur)
			}
		}
		for _, p := range recs[i].Writes {
			ver[p] = recs[i].ID
		}
	}

	// Conflict graph: edge u -> v when v must follow u in any equivalent
	// serial order. With the version check above, commit order is itself
	// a valid serial order, but build the graph and check acyclicity
	// anyway: it validates the checker against protocols that might
	// commit "fresh-read" yet order-inconsistent histories if the version
	// replay were ever weakened.
	n := len(recs)
	adj := make([][]int, n)
	addEdge := func(u, v int) {
		if u != v {
			adj[u] = append(adj[u], v)
		}
	}
	writers := make(map[model.PageID][]int) // page -> committing writer indices in order
	readers := make(map[model.PageID][]int)
	for i, rec := range recs {
		for _, obs := range rec.Reads {
			if obs.Version != 0 {
				w, ok := idx[obs.Version]
				if !ok {
					return fmt.Errorf("history: txn %d read version %d of page %d from an uncommitted writer",
						rec.ID, obs.Version, obs.Page)
				}
				addEdge(w, i) // wr dependency: writer before reader
			}
			readers[obs.Page] = append(readers[obs.Page], i)
		}
		for _, p := range rec.Writes {
			writers[p] = append(writers[p], i)
		}
	}
	// ww edges in version-install order; rw anti-dependency edges: a
	// reader of version v precedes the writer that overwrote v.
	for p, ws := range writers {
		for k := 1; k < len(ws); k++ {
			addEdge(ws[k-1], ws[k])
		}
		for _, rd := range readers[p] {
			// Find the version rd observed and the next writer after it.
			var obsVer model.TxnID
			for _, o := range recs[rd].Reads {
				if o.Page == p {
					obsVer = o.Version
				}
			}
			for k, w := range ws {
				if recs[w].ID == obsVer {
					if k+1 < len(ws) {
						addEdge(rd, ws[k+1])
					}
					break
				}
				if obsVer == 0 && k == 0 {
					addEdge(rd, w)
					break
				}
			}
		}
	}

	if cyc := findCycle(adj); cyc != nil {
		ids := make([]model.TxnID, len(cyc))
		for i, v := range cyc {
			ids[i] = recs[v].ID
		}
		return fmt.Errorf("history: conflict cycle %v", ids)
	}
	return nil
}

// findCycle returns the vertices of some cycle, or nil if the graph is a
// DAG. Iterative DFS with three-color marking.
func findCycle(adj [][]int) []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	n := len(adj)
	color := make([]int, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	for start := 0; start < n; start++ {
		if color[start] != white {
			continue
		}
		type frame struct{ v, ei int }
		stack := []frame{{start, 0}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.ei < len(adj[f.v]) {
				u := adj[f.v][f.ei]
				f.ei++
				switch color[u] {
				case white:
					color[u] = gray
					parent[u] = f.v
					stack = append(stack, frame{u, 0})
				case gray:
					// Back edge f.v -> u closes a cycle.
					cyc := []int{u}
					for v := f.v; v != u && v != -1; v = parent[v] {
						cyc = append(cyc, v)
					}
					return cyc
				}
			} else {
				color[f.v] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}
