package history

import (
	"strings"
	"testing"

	"repro/internal/model"
)

func rd(p model.PageID, ver model.TxnID) model.ReadObs {
	return model.ReadObs{Page: p, Version: ver}
}

func TestEmptyHistory(t *testing.T) {
	var r Recorder
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSerialHistoryOK(t *testing.T) {
	var r Recorder
	// T1 writes x; T2 reads T1's x and writes y; T3 reads both.
	r.Add(CommitRecord{ID: 1, Seq: 1, Commit: 1, Writes: []model.PageID{10}})
	r.Add(CommitRecord{ID: 2, Seq: 2, Commit: 2, Reads: []model.ReadObs{rd(10, 1)}, Writes: []model.PageID{20}})
	r.Add(CommitRecord{ID: 3, Seq: 3, Commit: 3, Reads: []model.ReadObs{rd(10, 1), rd(20, 2)}})
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestStaleReadDetected(t *testing.T) {
	var r Recorder
	r.Add(CommitRecord{ID: 1, Seq: 1, Commit: 1, Writes: []model.PageID{10}})
	// T2 commits after T1 but claims it observed the initial version of
	// page 10: a stale read the validation should have prevented.
	r.Add(CommitRecord{ID: 2, Seq: 2, Commit: 2, Reads: []model.ReadObs{rd(10, 0)}})
	err := r.Check()
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("stale read not detected: %v", err)
	}
}

func TestReadFromUncommittedDetected(t *testing.T) {
	var r Recorder
	r.Add(CommitRecord{ID: 2, Seq: 1, Commit: 1, Reads: []model.ReadObs{rd(10, 99)}})
	if err := r.Check(); err == nil {
		t.Fatal("read of uncommitted version not detected")
	}
}

func TestDoubleCommitDetected(t *testing.T) {
	var r Recorder
	r.Add(CommitRecord{ID: 1, Seq: 1, Commit: 1})
	r.Add(CommitRecord{ID: 1, Seq: 2, Commit: 2})
	err := r.Check()
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("double commit not detected: %v", err)
	}
}

func TestWriteSkewStyleCycleDetected(t *testing.T) {
	// Classic non-serializable pattern: T1 reads x then writes y; T2
	// reads y then writes x; both read initial versions. The version
	// replay catches T2's read of y (T1 already overwrote it); any
	// history that passes the replay is provably acyclic, so the graph
	// check is a defense-in-depth validation of the checker itself.
	var r Recorder
	r.Add(CommitRecord{ID: 1, Seq: 1, Commit: 1, Reads: []model.ReadObs{rd(1, 0)}, Writes: []model.PageID{2}})
	r.Add(CommitRecord{ID: 2, Seq: 2, Commit: 2, Reads: []model.ReadObs{rd(2, 0)}, Writes: []model.PageID{1}})
	if err := r.Check(); err == nil {
		t.Fatal("write-skew history not detected")
	}
}

func TestAntiDependencyOrderOK(t *testing.T) {
	// T1 reads initial x; T2 overwrites x and commits first... order:
	// T2 commits at 1 writing x; T1 commits at 2 having read version 0 of
	// x — that is a stale read (committed version at T1's commit is 2).
	var r Recorder
	r.Add(CommitRecord{ID: 2, Seq: 1, Commit: 1, Writes: []model.PageID{1}})
	r.Add(CommitRecord{ID: 1, Seq: 2, Commit: 2, Reads: []model.ReadObs{rd(1, 0)}})
	if err := r.Check(); err == nil {
		t.Fatal("stale read after overwrite not detected")
	}
}

func TestBlindWritesAnyOrderOK(t *testing.T) {
	var r Recorder
	r.Add(CommitRecord{ID: 1, Seq: 1, Commit: 1, Writes: []model.PageID{5}})
	r.Add(CommitRecord{ID: 2, Seq: 2, Commit: 2, Writes: []model.PageID{5}})
	r.Add(CommitRecord{ID: 3, Seq: 3, Commit: 3, Reads: []model.ReadObs{rd(5, 2)}})
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestLongChainOK(t *testing.T) {
	var r Recorder
	var prev model.TxnID
	for i := 1; i <= 200; i++ {
		id := model.TxnID(i)
		r.Add(CommitRecord{
			ID: id, Seq: i, Commit: float64(i),
			Reads:  []model.ReadObs{rd(7, prev)},
			Writes: []model.PageID{7},
		})
		prev = id
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 200 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestFindCycleDirect(t *testing.T) {
	// 0 -> 1 -> 2 -> 0
	adj := [][]int{{1}, {2}, {0}}
	if findCycle(adj) == nil {
		t.Fatal("3-cycle not found")
	}
	// DAG
	dag := [][]int{{1, 2}, {2}, {}}
	if c := findCycle(dag); c != nil {
		t.Fatalf("false cycle in DAG: %v", c)
	}
	// Self loops are filtered by addEdge, but findCycle should handle.
	self := [][]int{{0}}
	if findCycle(self) == nil {
		t.Fatal("self loop not found")
	}
	// Disconnected components.
	multi := [][]int{{}, {2}, {1}}
	if findCycle(multi) == nil {
		t.Fatal("cycle in second component not found")
	}
}

func TestRecordsAccessor(t *testing.T) {
	var r Recorder
	r.Add(CommitRecord{ID: 1, Seq: 1, Commit: 1})
	if got := r.Records(); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("Records = %+v", got)
	}
}
