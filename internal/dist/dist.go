// Package dist provides the probability and sampling primitives shared by
// the value machinery (internal/value) and the workload generators
// (internal/workload): the normal survival function behind the paper's
// Def. 3 finish-probability density, and a deterministic seeded RNG with
// the exponential / truncated-normal / without-replacement draws the
// Sec. 4 workload model needs.
package dist

import (
	"math"
	"math/rand"
)

// NormalSurvival returns P[X > x] for X ~ N(mean, sigma^2). A zero or
// negative sigma degenerates to a point mass at mean.
func NormalSurvival(x, mean, sigma float64) float64 {
	if sigma <= 0 {
		if x < mean {
			return 1
		}
		return 0
	}
	return 0.5 * math.Erfc((x-mean)/(sigma*math.Sqrt2))
}

// RNG is a deterministic pseudo-random source: the same seed always yields
// the same draw sequence, which is what makes workload runs replayable
// across protocols (each protocol sees the identical transaction stream).
type RNG struct {
	r *rand.Rand
}

// NewRNG returns an RNG seeded deterministically from seed. Seeds are
// passed through a SplitMix64 finalizer first so that adjacent seeds
// (0, 1, 2, ... as replication indices) produce decorrelated streams.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(int64(splitmix64(uint64(seed)))))}
}

// splitmix64 is the SplitMix64 finalizer (Steele et al.), a bijective
// avalanche mix.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform draw from [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw from {0, ..., n-1}.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Exp returns an exponential draw with the given mean (inter-arrival gaps
// of a Poisson process with rate 1/mean).
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Norm returns a normal draw with the given mean and standard deviation.
func (g *RNG) Norm(mean, sigma float64) float64 {
	return g.r.NormFloat64()*sigma + mean
}

// TruncNormal returns a normal draw with the given mean and relative
// standard deviation, truncated by rejection to [lo, hi]. It is used for
// the per-transaction execution-rate jitter factor, where sigma is
// expressed relative to the mean.
func (g *RNG) TruncNormal(mean, relSigma, lo, hi float64) float64 {
	sigma := relSigma * mean
	for i := 0; i < 64; i++ {
		x := g.r.NormFloat64()*sigma + mean
		if x >= lo && x <= hi {
			return x
		}
	}
	// Pathological bounds (mean far outside [lo, hi]); clamp rather than
	// spin forever.
	return math.Max(lo, math.Min(hi, mean))
}

// Zipf draws ranks from {0, ..., n-1} with P(rank r) proportional to
// 1/(r+1)^theta — the Gray et al. / YCSB skewed-access generator. Rank 0
// is the hottest key. theta must be in [0, 1); theta = 0 degenerates to
// uniform, and theta -> 1 approaches the classic 1/r harmonic skew
// (YCSB's default is 0.99). Draws come from the owning RNG, so the
// sequence is deterministic under a fixed seed.
type Zipf struct {
	g     *RNG
	n     int
	theta float64
	// Precomputed constants of the inverse-CDF approximation.
	alpha, zetan, eta float64
}

// Zipf returns a generator over n ranks with skew theta. It panics on
// n < 1 or theta outside [0, 1): callers (workload.Config.Validate)
// are expected to range-check user input first.
func (g *RNG) Zipf(n int, theta float64) *Zipf {
	if n < 1 || theta < 0 || theta >= 1 {
		panic("dist: Zipf needs n >= 1 and theta in [0, 1)")
	}
	z := &Zipf{g: g, n: n, theta: theta}
	if theta > 0 {
		z.zetan = zeta(n, theta)
		z.alpha = 1 / (1 - theta)
		z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	}
	return z
}

// zeta returns the generalized harmonic number H_{n,theta}.
func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next rank.
func (z *Zipf) Next() int {
	if z.theta == 0 {
		return z.g.Intn(z.n)
	}
	u := z.g.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	r := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

// SampleWithoutReplacement returns k distinct integers drawn uniformly
// from {0, ..., n-1}, in draw order. It runs a sparse partial
// Fisher-Yates shuffle: O(k) time and space regardless of n.
func (g *RNG) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		k = n
	}
	moved := make(map[int]int, k)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + g.r.Intn(n-i)
		vj, ok := moved[j]
		if !ok {
			vj = j
		}
		vi, ok := moved[i]
		if !ok {
			vi = i
		}
		out[i] = vj
		moved[j] = vi
	}
	return out
}
