package dist

import (
	"math"
	"testing"
)

func TestNormalSurvival(t *testing.T) {
	if got := NormalSurvival(10, 10, 2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Survival at mean = %v, want 0.5", got)
	}
	// Symmetry: S(mean-d) + S(mean+d) = 1.
	if a, b := NormalSurvival(8, 10, 2), NormalSurvival(12, 10, 2); math.Abs(a+b-1) > 1e-12 {
		t.Errorf("symmetry violated: S(8)+S(12) = %v", a+b)
	}
	// Monotone decreasing.
	prev := 1.0
	for x := -5.0; x <= 25; x += 0.5 {
		s := NormalSurvival(x, 10, 2)
		if s > prev+1e-15 {
			t.Fatalf("survival not monotone at x=%v: %v > %v", x, s, prev)
		}
		prev = s
	}
	// One-sigma point matches the standard normal table.
	if got := NormalSurvival(12, 10, 2); math.Abs(got-0.158655) > 1e-4 {
		t.Errorf("S(mean+sigma) = %v, want ~0.1587", got)
	}
	// Degenerate sigma: a point mass at mean.
	if NormalSurvival(9, 10, 0) != 1 || NormalSurvival(11, 10, 0) != 0 {
		t.Error("sigma=0 should degenerate to a step at mean")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give the same stream")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() == c.Float64() {
			same++
		}
	}
	if same > 1 {
		t.Errorf("seeds 42 and 43 coincide on %d of 100 draws", same)
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(7)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += g.Exp(0.25)
	}
	if mean := sum / n; math.Abs(mean-0.25) > 0.005 {
		t.Errorf("Exp(0.25) empirical mean = %v", mean)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	g := NewRNG(11)
	for i := 0; i < 10000; i++ {
		x := g.TruncNormal(1, 0.2, 0.4, 1.6)
		if x < 0.4 || x > 1.6 {
			t.Fatalf("TruncNormal out of bounds: %v", x)
		}
	}
	// Mean far outside the window still terminates and lands inside.
	if x := g.TruncNormal(100, 0.001, 0, 1); x < 0 || x > 1 {
		t.Errorf("clamped draw out of bounds: %v", x)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	g := NewRNG(3)
	for trial := 0; trial < 100; trial++ {
		s := g.SampleWithoutReplacement(1000, 16)
		if len(s) != 16 {
			t.Fatalf("len = %d", len(s))
		}
		seen := make(map[int]bool)
		for _, v := range s {
			if v < 0 || v >= 1000 {
				t.Fatalf("out of range: %d", v)
			}
			if seen[v] {
				t.Fatalf("duplicate: %d", v)
			}
			seen[v] = true
		}
	}
	// k >= n returns a full permutation.
	s := g.SampleWithoutReplacement(5, 10)
	if len(s) != 5 {
		t.Fatalf("k>n: len = %d", len(s))
	}
	seen := make(map[int]bool)
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Error("k>n: not a permutation")
	}
}

func TestZipfFrequencyRankOrder(t *testing.T) {
	// With theta = 0.99 over 100 ranks, empirical frequencies must be
	// rank-ordered and the head must match P(r) ~ 1/(r+1)^theta: the
	// rank-0/rank-1 ratio is 2^0.99 ~ 1.99.
	g := NewRNG(9)
	z := g.Zipf(100, 0.99)
	counts := make([]int, 100)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for _, r := range []struct{ a, b int }{{0, 1}, {1, 4}, {4, 20}, {20, 80}} {
		if counts[r.a] <= counts[r.b] {
			t.Fatalf("rank %d drawn %d times, rank %d %d times: not rank-ordered",
				r.a, counts[r.a], r.b, counts[r.b])
		}
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("rank0/rank1 ratio = %v, want ~2^0.99 = 1.99", ratio)
	}
	// theta = 0 degenerates to uniform.
	z0 := g.Zipf(50, 0)
	c0 := make([]int, 50)
	for i := 0; i < n; i++ {
		c0[z0.Next()]++
	}
	for r, c := range c0 {
		p := float64(c) / n
		if math.Abs(p-0.02) > 0.005 {
			t.Errorf("theta=0 rank %d drawn with p = %v, want 0.02", r, p)
		}
	}
}

func TestZipfDeterministicAndInRange(t *testing.T) {
	a := NewRNG(21).Zipf(1000, 0.8)
	b := NewRNG(21).Zipf(1000, 0.8)
	for i := 0; i < 5000; i++ {
		ra, rb := a.Next(), b.Next()
		if ra != rb {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, ra, rb)
		}
		if ra < 0 || ra >= 1000 {
			t.Fatalf("rank out of range: %d", ra)
		}
	}
}

func TestZipfRejectsBadParameters(t *testing.T) {
	for _, c := range []struct {
		n     int
		theta float64
	}{{0, 0.5}, {10, -0.1}, {10, 1}, {10, 1.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Zipf(%d, %v) did not panic", c.n, c.theta)
				}
			}()
			NewRNG(1).Zipf(c.n, c.theta)
		}()
	}
}

func TestSampleUniformity(t *testing.T) {
	// Each element of {0..9} should appear in a 3-sample with p = 0.3.
	g := NewRNG(5)
	counts := make([]int, 10)
	const trials = 30000
	for i := 0; i < trials; i++ {
		for _, v := range g.SampleWithoutReplacement(10, 3) {
			counts[v]++
		}
	}
	for v, c := range counts {
		p := float64(c) / trials
		if math.Abs(p-0.3) > 0.01 {
			t.Errorf("element %d drawn with p = %v, want 0.3", v, p)
		}
	}
}
