package dist

import (
	"math"
	"testing"
)

func TestNormalSurvival(t *testing.T) {
	if got := NormalSurvival(10, 10, 2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Survival at mean = %v, want 0.5", got)
	}
	// Symmetry: S(mean-d) + S(mean+d) = 1.
	if a, b := NormalSurvival(8, 10, 2), NormalSurvival(12, 10, 2); math.Abs(a+b-1) > 1e-12 {
		t.Errorf("symmetry violated: S(8)+S(12) = %v", a+b)
	}
	// Monotone decreasing.
	prev := 1.0
	for x := -5.0; x <= 25; x += 0.5 {
		s := NormalSurvival(x, 10, 2)
		if s > prev+1e-15 {
			t.Fatalf("survival not monotone at x=%v: %v > %v", x, s, prev)
		}
		prev = s
	}
	// One-sigma point matches the standard normal table.
	if got := NormalSurvival(12, 10, 2); math.Abs(got-0.158655) > 1e-4 {
		t.Errorf("S(mean+sigma) = %v, want ~0.1587", got)
	}
	// Degenerate sigma: a point mass at mean.
	if NormalSurvival(9, 10, 0) != 1 || NormalSurvival(11, 10, 0) != 0 {
		t.Error("sigma=0 should degenerate to a step at mean")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give the same stream")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() == c.Float64() {
			same++
		}
	}
	if same > 1 {
		t.Errorf("seeds 42 and 43 coincide on %d of 100 draws", same)
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(7)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += g.Exp(0.25)
	}
	if mean := sum / n; math.Abs(mean-0.25) > 0.005 {
		t.Errorf("Exp(0.25) empirical mean = %v", mean)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	g := NewRNG(11)
	for i := 0; i < 10000; i++ {
		x := g.TruncNormal(1, 0.2, 0.4, 1.6)
		if x < 0.4 || x > 1.6 {
			t.Fatalf("TruncNormal out of bounds: %v", x)
		}
	}
	// Mean far outside the window still terminates and lands inside.
	if x := g.TruncNormal(100, 0.001, 0, 1); x < 0 || x > 1 {
		t.Errorf("clamped draw out of bounds: %v", x)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	g := NewRNG(3)
	for trial := 0; trial < 100; trial++ {
		s := g.SampleWithoutReplacement(1000, 16)
		if len(s) != 16 {
			t.Fatalf("len = %d", len(s))
		}
		seen := make(map[int]bool)
		for _, v := range s {
			if v < 0 || v >= 1000 {
				t.Fatalf("out of range: %d", v)
			}
			if seen[v] {
				t.Fatalf("duplicate: %d", v)
			}
			seen[v] = true
		}
	}
	// k >= n returns a full permutation.
	s := g.SampleWithoutReplacement(5, 10)
	if len(s) != 5 {
		t.Fatalf("k>n: len = %d", len(s))
	}
	seen := make(map[int]bool)
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Error("k>n: not a permutation")
	}
}

func TestSampleUniformity(t *testing.T) {
	// Each element of {0..9} should appear in a 3-sample with p = 0.3.
	g := NewRNG(5)
	counts := make([]int, 10)
	const trials = 30000
	for i := 0; i < trials; i++ {
		for _, v := range g.SampleWithoutReplacement(10, 3) {
			counts[v]++
		}
	}
	for v, c := range counts {
		p := float64(c) / trials
		if math.Abs(p-0.3) > 0.01 {
			t.Errorf("element %d drawn with p = %v, want 0.3", v, p)
		}
	}
}
