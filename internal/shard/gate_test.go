package shard

import (
	"errors"
	"fmt"
	"strconv"
	"testing"

	"repro/internal/engine"
)

// crossKeys returns two keys guaranteed to live on different shards.
func crossKeys(t *testing.T, s *Store) (string, string) {
	t.Helper()
	a := "gate-a"
	for i := 0; i < 10000; i++ {
		b := fmt.Sprintf("gate-b%d", i)
		if s.ShardOf(b) != s.ShardOf(a) {
			return a, b
		}
	}
	t.Fatal("no cross-shard key pair found")
	return "", ""
}

// TestRetryGateInvoked forces a cross-shard validation failure and checks
// the gate sees the retry (1-based) and can abandon the transaction with
// its own error.
func TestRetryGateInvoked(t *testing.T) {
	s := Open(Config{Shards: 8, Engine: engine.Config{Mode: engine.SCC2S}})
	defer s.Close()
	a, b := crossKeys(t, s)
	keys := []string{a, b}
	if err := s.Update(keys, func(tx Tx) error {
		if err := tx.Set(a, []byte("0")); err != nil {
			return err
		}
		return tx.Set(b, []byte("0"))
	}); err != nil {
		t.Fatal(err)
	}

	shed := errors.New("shed: value crossed zero")
	var gateCalls []int
	execs := 0
	_, err := s.UpdateGatedResult(1, keys, func(attempt int) error {
		gateCalls = append(gateCalls, attempt)
		return shed
	}, func(tx Tx) error {
		execs++
		if _, err := tx.Get(a); err != nil {
			return err
		}
		if execs == 1 {
			// Invalidate our own read from the side: a single-shard
			// commit on the read key bumps its version, so validation
			// of this cross-shard attempt must fail and trigger the gate.
			if err := s.Update([]string{a}, func(tx2 Tx) error {
				return tx2.Set(a, []byte("99"))
			}); err != nil {
				return err
			}
		}
		if _, err := tx.Get(b); err != nil {
			return err
		}
		return tx.Set(b, []byte("1"))
	})
	if !errors.Is(err, shed) {
		t.Fatalf("err = %v, want the gate's error", err)
	}
	if len(gateCalls) != 1 || gateCalls[0] != 1 {
		t.Fatalf("gate calls = %v, want [1]", gateCalls)
	}
	if st := s.Stats(); st.CrossRestarts == 0 {
		t.Fatalf("no cross restart recorded: %+v", st)
	}
}

// TestRetryGateGrantsRetry: a gate that admits the retry lets the
// transaction commit on its second execution.
func TestRetryGateGrantsRetry(t *testing.T) {
	s := Open(Config{Shards: 8, Engine: engine.Config{Mode: engine.SCC2S}})
	defer s.Close()
	a, b := crossKeys(t, s)
	keys := []string{a, b}

	grants := 0
	execs := 0
	res, err := s.UpdateGatedResult(1, keys, func(int) error {
		grants++
		return nil
	}, func(tx Tx) error {
		execs++
		if _, err := tx.Get(a); err != nil {
			return err
		}
		if execs == 1 {
			if err := s.Update([]string{a}, func(tx2 Tx) error {
				return tx2.Set(a, []byte("7"))
			}); err != nil {
				return err
			}
		}
		v, err := tx.Get(b)
		if err != nil {
			return err
		}
		if err := tx.Set(b, append(v, 'x')); err != nil {
			return err
		}
		tx.Stash(execs)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if grants != 1 {
		t.Fatalf("gate grants = %d, want 1", grants)
	}
	if res != 2 {
		t.Fatalf("committed execution = %v, want 2 (the retry)", res)
	}
}

// TestNilGateKeepsBound: without a gate the loop still honours
// MaxAttempts, surfacing the bound as an error under perpetual conflict.
func TestNilGateKeepsBound(t *testing.T) {
	s := Open(Config{Shards: 8, MaxAttempts: 3, Engine: engine.Config{Mode: engine.SCC2S}})
	defer s.Close()
	a, b := crossKeys(t, s)
	keys := []string{a, b}

	execs := 0
	_, err := s.UpdateGatedResult(0, keys, nil, func(tx Tx) error {
		execs++
		if _, err := tx.Get(a); err != nil {
			return err
		}
		// Every execution invalidates itself: the bound must trip.
		if err := s.Update([]string{a}, func(tx2 Tx) error {
			return tx2.Set(a, []byte(strconv.Itoa(execs)))
		}); err != nil {
			return err
		}
		return tx.Set(b, []byte("1"))
	})
	if err == nil || execs != 3 {
		t.Fatalf("err = %v after %d executions, want attempt-bound error after 3", err, execs)
	}
}
