// Package shard partitions the SCC engine horizontally: keys are
// hash-partitioned across N independent engine.Store shards behind one
// Update/Get transactional API. Transactions declare the keys they may
// touch (the paper fixes access lists at arrival, Sec. 2); the router
// uses the declaration purely for placement. All declared keys on one
// shard is the fast path: the closure runs natively on that shard's
// engine with the full SCC machinery and zero coordination. Keys on
// several shards run against a cross-shard optimistic view (committed
// reads with recorded versions, buffered writes) and commit atomically
// through a flat-combining committer per shard set (crosscommit.go):
// involved shards are latched in ascending index order — deadlock-free —
// and every read is validated and every write installed under that hold.
// Because every install, native or cross-shard, happens under its shard's
// commit latch, each shard has a single total commit order, which
// Config.CommitLogFor exposes as a replication log (internal/repl).
//
// See docs/ARCHITECTURE.md for where this layer sits in the system and
// docs/PROTOCOL.md for the serving protocol above it.
package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/obs"
)

// Tx is the transactional view a closure operates on. engine.Tx satisfies
// it, so the same closure runs unchanged on the single-shard fast path and
// on the cross-shard path. Stash is the race-free way to return data from
// a transaction: a closure may execute several times concurrently (engine
// shadows), so it must not mutate captured variables — it stashes a
// freshly built value instead, and the committed execution's stash is
// what UpdateResult returns.
type Tx interface {
	Get(key string) ([]byte, error)
	Set(key string, val []byte) error
	Stash(v any)
}

// ErrKeyNotDeclared is returned when a closure touches a key on a shard
// outside its declared key set. (Undeclared keys on an involved shard are
// harmless and allowed; a key on a foreign shard cannot be routed after
// the fact.)
var ErrKeyNotDeclared = errors.New("shard: access to key outside declared shard set")

// ErrReadOnly is returned by Set inside a View.
var ErrReadOnly = errors.New("shard: Set inside read-only View")

// AttemptsError reports a cross-shard transaction that exhausted its
// validation-retry budget — the multi-shard counterpart of
// engine.AttemptsError, kept a distinct type for the same reason:
// callers classify it as a retryable conflict, not a protocol error.
type AttemptsError struct{ Attempts int }

func (e *AttemptsError) Error() string {
	return fmt.Sprintf("shard: cross-shard transaction exceeded %d attempts", e.Attempts)
}

// RetryGate decides whether a cross-shard transaction may re-execute
// after a validation failure. It is called with the 1-based retry number
// before each re-execution; returning a non-nil error abandons the
// transaction with that error. This is the hook the serving layer uses to
// make cross-shard retries value-cognizant: shed transactions whose value
// functions crossed zero and re-queue the rest by expected value, instead
// of retrying blindly until the attempt bound.
type RetryGate func(attempt int) error

// DefaultShards is the partition count used when Config.Shards is unset.
const DefaultShards = 16

// Config configures a sharded store.
type Config struct {
	// Shards is the number of partitions (default DefaultShards).
	Shards int
	// Engine configures every shard's engine identically.
	Engine engine.Config
	// MaxAttempts bounds cross-shard validation retries (0 = 100).
	MaxAttempts int
	// CommitLogFor, when non-nil, gives each shard's engine a commit log
	// (shard index -> log): every install on that shard, native or
	// cross-shard, is appended under its commit latch, yielding the
	// per-shard total order replication ships (see internal/repl).
	CommitLogFor func(shard int) engine.CommitLog
	// Epochs is the global commit-epoch counter cross-shard commits
	// allocate from; it must be the same instance the commit-log sinks
	// stamp standalone records with. Nil gets a private counter (fine
	// for stores without replication or durability).
	Epochs *engine.Epochs
}

// Stats aggregates per-shard engine counters and adds the router's own.
type Stats struct {
	// Engine is the sum of all shards' counters. Commits counts
	// single-shard (fast-path) commits only; cross-shard commits are
	// counted once in CrossCommits, not once per shard.
	Engine engine.Stats

	FastPath      int64 // transactions routed to a single shard
	CrossCommits  int64 // multi-shard transactions committed
	CrossRestarts int64 // multi-shard validation failures (re-executions)
	CrossBatches  int64 // latch-acquisition rounds spent on cross-shard commits
	Views         int64 // read-only multi-shard snapshots served
}

// TotalCommits returns all committed transactions regardless of path.
func (s Stats) TotalCommits() int64 { return s.Engine.Commits + s.CrossCommits }

// Store is a sharded engine.
type Store struct {
	shards      []*engine.Store
	epochs      *engine.Epochs
	maxAttempts int
	closed      atomic.Bool
	cross       crossFC

	fastPath      atomic.Int64
	crossCommits  atomic.Int64
	crossRestarts atomic.Int64
	crossBatches  atomic.Int64
	views         atomic.Int64
}

// Open returns an empty sharded store.
func Open(cfg Config) *Store {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 100
	}
	if cfg.Epochs == nil {
		cfg.Epochs = &engine.Epochs{}
	}
	s := &Store{
		shards:      make([]*engine.Store, cfg.Shards),
		epochs:      cfg.Epochs,
		maxAttempts: cfg.MaxAttempts,
		cross:       crossFC{queues: make(map[string]*crossQueue)},
	}
	for i := range s.shards {
		ecfg := cfg.Engine
		if cfg.CommitLogFor != nil {
			ecfg.CommitLog = cfg.CommitLogFor(i)
		}
		s.shards[i] = engine.Open(ecfg)
	}
	return s
}

// NumShards returns the partition count.
func (s *Store) NumShards() int { return len(s.shards) }

// Epochs returns the store's global commit-epoch counter — the one
// instance every commit-log sink must stamp from (the durability layer
// reads it here so recovery can advance it past recovered epochs).
func (s *Store) Epochs() *engine.Epochs { return s.epochs }

// Shard returns one partition's engine. It exists for the layers that
// operate per shard — recovery wiring (SetCommitLog after replay),
// checkpoint/snapshot capture (LockCommit + RangeLocked) — not for
// routing reads or writes around the partitioner.
func (s *Store) Shard(i int) *engine.Store { return s.shards[i] }

// ShardOf returns the partition that owns key. The hash is FNV-1a
// inlined (identical values to hash/fnv.New32a) because this sits on
// every routed operation and the stdlib hasher heap-allocates.
func (s *Store) ShardOf(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(len(s.shards)))
}

// Get reads a committed value outside any transaction.
func (s *Store) Get(key string) ([]byte, bool) {
	return s.shards[s.ShardOf(key)].Get(key)
}

// Stats returns aggregated counters.
func (s *Store) Stats() Stats {
	var out Stats
	for _, sh := range s.shards {
		out.Engine.Add(sh.Stats())
	}
	out.FastPath = s.fastPath.Load()
	out.CrossCommits = s.crossCommits.Load()
	out.CrossRestarts = s.crossRestarts.Load()
	out.CrossBatches = s.crossBatches.Load()
	out.Views = s.views.Load()
	return out
}

// Close marks the store closed (mutating transactions on every path fail
// afterwards; reads and in-flight transactions drain normally) and closes
// every shard.
func (s *Store) Close() {
	s.closed.Store(true)
	for _, sh := range s.shards {
		sh.Close()
	}
}

// shardSet returns the sorted distinct shard indices owning keys.
func (s *Store) shardSet(keys []string) []int {
	seen := make(map[int]struct{}, 4)
	for _, k := range keys {
		seen[s.ShardOf(k)] = struct{}{}
	}
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// Update executes fn transactionally over the declared keys and blocks
// until it commits. keys must cover every key the closure may touch (extra
// keys are harmless); see UpdateValued for the value-cognizant variant.
func (s *Store) Update(keys []string, fn func(Tx) error) error {
	_, err := s.UpdateValuedResult(0, keys, fn)
	return err
}

// UpdateValued is Update with a transaction value. On the single-shard
// fast path the value feeds the engine's VW-style commit deferment; on the
// cross-shard path it is currently advisory (cross-shard commits validate
// optimistically and do not defer).
func (s *Store) UpdateValued(value float64, keys []string, fn func(Tx) error) error {
	_, err := s.UpdateValuedResult(value, keys, fn)
	return err
}

// UpdateValuedResult is UpdateValued returning the committed execution's
// Tx.Stash value (nil if it never stashed).
func (s *Store) UpdateValuedResult(value float64, keys []string, fn func(Tx) error) (any, error) {
	return s.UpdateGatedResult(value, keys, nil, fn)
}

// UpdateGatedResult is UpdateValuedResult with a cross-shard retry gate:
// after a cross-shard validation failure, gate is consulted before the
// re-execution and can abandon the transaction (value crossed zero) or
// delay it (re-queue through admission by expected value). A nil gate
// retries immediately; either way MaxAttempts still bounds the loop. The
// gate plays no part on the single-shard fast path, whose conflicts the
// engine resolves internally with shadows.
func (s *Store) UpdateGatedResult(value float64, keys []string, gate RetryGate, fn func(Tx) error) (any, error) {
	return s.UpdateTracedResult(value, keys, gate, nil, fn)
}

// UpdateTracedResult is UpdateGatedResult with a lifecycle trace: a
// non-nil tr is threaded into the fast-path engine (which stamps fork/
// park/resume/promotion/restart/install) and stamped by the cross-shard
// loop's own restarts and install. nil means untraced, at the cost of
// one branch per stage site.
func (s *Store) UpdateTracedResult(value float64, keys []string, gate RetryGate, tr *obs.Trace, fn func(Tx) error) (any, error) {
	if len(keys) == 0 {
		return nil, errors.New("shard: transaction declared no keys")
	}
	// Allocation-free routing for the common case: all declared keys on
	// one shard (always true for single-key transactions, the serving
	// layer's hottest path).
	idx := s.ShardOf(keys[0])
	single := true
	for _, k := range keys[1:] {
		if s.ShardOf(k) != idx {
			single = false
			break
		}
	}
	if single {
		s.fastPath.Add(1)
		return s.shards[idx].UpdateTracedResult(value, tr, func(etx *engine.Tx) error {
			return fn(guardTx{tx: etx, s: s, shard: idx})
		})
	}
	return s.updateCross(value, s.shardSet(keys), gate, tr, fn)
}

// guardTx wraps the native engine transaction on the fast path, verifying
// that every touched key routes to the declared shard. The check is what
// turns a mis-declared key set into a clean error instead of a silent read
// of the wrong partition.
type guardTx struct {
	tx    *engine.Tx
	s     *Store
	shard int
}

func (g guardTx) Get(key string) ([]byte, error) {
	if g.s.ShardOf(key) != g.shard {
		return nil, fmt.Errorf("%w: %q", ErrKeyNotDeclared, key)
	}
	return g.tx.Get(key)
}

func (g guardTx) Set(key string, val []byte) error {
	if g.s.ShardOf(key) != g.shard {
		return fmt.Errorf("%w: %q", ErrKeyNotDeclared, key)
	}
	return g.tx.Set(key, val)
}

func (g guardTx) Stash(v any) { g.tx.Stash(v) }

// crossTx is the optimistic cross-shard view: reads observe committed
// values (first-read versions recorded per key), writes buffer privately.
type crossTx struct {
	s        *Store
	involved map[int]struct{}
	value    float64
	reads    map[string]uint64
	writes   map[string][]byte
	result   any
}

func (c *crossTx) Stash(v any) { c.result = v }

func (c *crossTx) Get(key string) ([]byte, error) {
	if w, ok := c.writes[key]; ok {
		out := make([]byte, len(w))
		copy(out, w)
		return out, nil
	}
	idx := c.s.ShardOf(key)
	if _, ok := c.involved[idx]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrKeyNotDeclared, key)
	}
	val, ver := c.s.shards[idx].SnapshotRead(key)
	if _, seen := c.reads[key]; !seen {
		c.reads[key] = ver
	}
	return val, nil
}

func (c *crossTx) Set(key string, val []byte) error {
	idx := c.s.ShardOf(key)
	if _, ok := c.involved[idx]; !ok {
		return fmt.Errorf("%w: %q", ErrKeyNotDeclared, key)
	}
	buf := make([]byte, len(val))
	copy(buf, val)
	c.writes[key] = buf
	return nil
}

// updateCross runs the OCC execute/validate/apply loop for a multi-shard
// transaction, consulting gate (if any) before each re-execution. value
// rides along to the shards' commit logs (pending-value accounting for
// the durability layer); cross-shard conflict resolution itself stays
// optimistic.
func (s *Store) updateCross(value float64, involved []int, gate RetryGate, tr *obs.Trace, fn func(Tx) error) (any, error) {
	invSet := make(map[int]struct{}, len(involved))
	for _, i := range involved {
		invSet[i] = struct{}{}
	}
	for attempt := 0; attempt < s.maxAttempts; attempt++ {
		// Mirror the engine's Close semantics, which only the fast path
		// would otherwise enforce: no new cross-shard commits either.
		if s.closed.Load() {
			return nil, errors.New("shard: store closed")
		}
		if attempt > 0 {
			tr.Event(obs.StageRestart)
			if gate != nil {
				if err := gate(attempt); err != nil {
					return nil, err
				}
			}
		}
		c := &crossTx{
			s:        s,
			involved: invSet,
			value:    value,
			reads:    make(map[string]uint64),
			writes:   make(map[string][]byte),
		}
		if err := fn(c); err != nil {
			// The closure may have decided to error off an inconsistent
			// cross-shard cut (reads of different shards interleaved with
			// a concurrent commit). Surface the error only if the reads
			// still validate — i.e. a serializable execution really
			// produced it; otherwise retry like any validation failure.
			// (A validate-only pass installs nothing, so it cannot fail
			// durability.)
			if ok, _ := s.commitCross(involved, c, false, nil); len(c.reads) > 0 && !ok {
				s.crossRestarts.Add(1)
				continue
			}
			return nil, err
		}
		ok, cerr := s.commitCross(involved, c, true, tr)
		if cerr != nil {
			// Installed but never decided durable: the verdict is an
			// error, and the transaction must not be retried — its writes
			// are already in memory.
			return nil, cerr
		}
		if ok {
			s.crossCommits.Add(1)
			tr.Event(obs.StageInstall)
			return c.result, nil
		}
		s.crossRestarts.Add(1)
	}
	return nil, &AttemptsError{Attempts: s.maxAttempts}
}

// groupReads splits a transaction's read set by owning shard.
func (s *Store) groupReads(reads map[string]uint64) map[int]map[string]uint64 {
	out := make(map[int]map[string]uint64)
	for key, ver := range reads {
		idx := s.ShardOf(key)
		m := out[idx]
		if m == nil {
			m = make(map[string]uint64)
			out[idx] = m
		}
		m[key] = ver
	}
	return out
}

// ApplyReplicated installs a batch of replicated commit records on one
// shard: the shard is latched once and each record's writes are applied
// in slice order through the same ApplyLocked path cross-shard commits
// use, so replicated installs bump versions and broadcast-abort exactly
// like native ones. This is the replica side of log shipping
// (internal/repl); records must arrive in log order.
func (s *Store) ApplyReplicated(shard int, records []map[string][]byte) error {
	if shard < 0 || shard >= len(s.shards) {
		return fmt.Errorf("shard: ApplyReplicated to unknown shard %d of %d", shard, len(s.shards))
	}
	sh := s.shards[shard]
	sh.LockCommit()
	for _, writes := range records {
		sh.ApplyLocked(writes)
	}
	sh.UnlockCommit()
	// One durability sync per applied batch (a no-op without a syncing
	// commit log): the replica's ACK covering these records follows this
	// call, so an acked record is a durable one on a durable replica — and
	// a failed sync must therefore fail the apply before any ACK is cut.
	if len(records) > 0 {
		return sh.SyncCommitLog()
	}
	return nil
}

// ApplyReplicatedCross installs one replicated cross-shard commit: parts
// maps each participant shard to its writes, and every part is applied
// under a single hold of all the participants' latches — the replica-side
// apply barrier, making the commit visible all-shards-at-once exactly as
// it committed on the primary. On a durable replica the install runs the
// same intent/decision protocol as a native cross-shard commit (with a
// locally allocated epoch), so a replica crash mid-apply also recovers
// all-or-nothing. Records must arrive in per-shard log order; the caller
// (internal/repl's replica loop) holds them until every participant's
// part is next in line.
func (s *Store) ApplyReplicatedCross(parts map[int]map[string][]byte) error {
	involved := make([]int, 0, len(parts))
	for idx := range parts {
		if idx < 0 || idx >= len(s.shards) {
			return fmt.Errorf("shard: ApplyReplicatedCross to unknown shard %d of %d", idx, len(s.shards))
		}
		involved = append(involved, idx)
	}
	sort.Ints(involved)
	for _, idx := range involved {
		s.shards[idx].LockCommit()
	}
	epoch := s.epochs.Next()
	for _, idx := range involved {
		s.shards[idx].AppendIntentLocked(epoch, involved)
	}
	for _, idx := range involved {
		s.shards[idx].ApplyCrossLocked(parts[idx], 0, epoch, involved)
	}
	for _, idx := range involved {
		s.shards[idx].UnlockCommit()
	}
	return s.finishCross(involved, []crossInstall{{epoch: epoch, parts: involved}})
}

// View runs fn as a serializable read-only transaction over the declared
// keys: the involved shards are latched in ascending order for the
// duration, so fn observes a consistent cut across partitions. It never
// retries and never fails validation — the latches are the snapshot.
func (s *Store) View(keys []string, fn func(Tx) error) error {
	involved := s.shardSet(keys)
	if len(involved) == 0 {
		return errors.New("shard: view declared no keys")
	}
	invSet := make(map[int]struct{}, len(involved))
	for _, i := range involved {
		invSet[i] = struct{}{}
	}
	for _, idx := range involved {
		s.shards[idx].LockCommit()
	}
	defer func() {
		for _, idx := range involved {
			s.shards[idx].UnlockCommit()
		}
	}()
	s.views.Add(1)
	return fn(viewTx{s: s, involved: invSet})
}

// viewTx reads committed state under held latches.
type viewTx struct {
	s        *Store
	involved map[int]struct{}
}

func (v viewTx) Get(key string) ([]byte, error) {
	idx := v.s.ShardOf(key)
	if _, ok := v.involved[idx]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrKeyNotDeclared, key)
	}
	val, _ := v.s.shards[idx].GetLocked(key)
	return val, nil
}

func (v viewTx) Set(string, []byte) error { return ErrReadOnly }

// Stash is a no-op: a View closure runs exactly once in the caller's
// goroutine (no shadows, no retries), so mutating captured variables is
// already safe there.
func (v viewTx) Stash(any) {}
