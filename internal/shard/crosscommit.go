// Flat-combining cross-shard commits. Before this existed, every
// multi-shard transaction latched its involved shards itself — one
// latch-acquisition round per validate+apply, the cross-shard analogue of
// the per-commit path the engine's group commit already removed for
// single-shard transactions. Here, commits with the same involved-shard
// set (the overwhelmingly common case under a fixed mix: the same shard
// pairs recur) queue per shard-set signature; the first enqueuer becomes
// the combiner, latches the set once, and validates+applies every queued
// request under that single hold, draining requests that arrive while it
// works. Validation semantics are unchanged — each request validates
// against the state left by the ones processed before it, exactly as if
// each had latched in turn — and the latch order (ascending shard index)
// is preserved, so combiners of overlapping sets cannot deadlock. A side
// effect that replication relies on: all installs into a shard, native or
// cross-shard, happen under that shard's commit latch, so the shard's
// commit log (engine.Config.CommitLog) is a single total order.
//
// Crash atomicity. A commit whose writes span several shards spans
// several WALs, so durability is a two-round presumed-abort protocol
// keyed by a global commit epoch:
//
//	under the latches: allocate an epoch, append INTENT(epoch, shards)
//	    to every participant's log, then the epoch-stamped data records
//	round 1: fsync every participant — intents and data are durable,
//	    but the commit is not yet decided
//	append DECISION(epoch) to the coordinator (lowest participant
//	    shard) — strictly after round 1, so the decision can never be
//	    durable before the data it decides
//	round 2: fsync the coordinator — this is the commit point
//	release the epoch's records for replication shipping
//
// Recovery reconciles: an epoch with intents but no durable decision is
// discarded on every shard; one with a decision is kept on every shard.
// Either way the commit is all-or-nothing — a crash between the fsyncs
// can lose an unacknowledged commit but can never tear one. Verdicts are
// delivered only after round 2; any failure along the way converts every
// installed verdict of the batch to an error (the writes are in memory
// but were never decided durable, so they must not be acknowledged).

package shard

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
)

// crossVerdict is one request's outcome: ok reports validation, err (only
// ever set alongside ok for an installing request) reports a durability
// failure — installed but not durable, which the caller must surface as
// an error and must not retry.
type crossVerdict struct {
	ok  bool
	err error
}

// crossReq is one cross-shard validate(+apply) awaiting its verdict.
type crossReq struct {
	reads  map[int]map[string]uint64 // read versions, grouped by shard
	writes map[int]map[string][]byte // writes, grouped by shard (nil = validate only)
	value  float64                   // transaction value, forwarded to the shards' commit logs
	tr     *obs.Trace                // epoch-stamped by the combiner (nil-safe)
	done   chan crossVerdict
}

// crossInstall records one installed multi-shard commit of a batch: the
// epoch allocated under the latches and its ascending participant set
// (the shards that received writes — the intent/decision scope).
type crossInstall struct {
	epoch uint64
	parts []int
}

// crossQueue is the pending work for one involved-shard signature.
type crossQueue struct {
	involved []int // ascending shard indices, shared by every queued request
	pending  []crossReq
	leading  bool // a combiner is draining this queue
}

// crossFC is the per-store registry of combining queues.
type crossFC struct {
	mu     sync.Mutex
	queues map[string]*crossQueue
}

// signature keys a shard set; involved is sorted, so the key is canonical.
func signature(involved []int) string {
	var b strings.Builder
	for i, idx := range involved {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(idx))
	}
	return b.String()
}

// commitCross atomically validates (and, when apply is set, installs) a
// cross-shard transaction through the combining queue of its shard set.
// With apply false it is a pure validation pass — used to decide whether
// a closure error came from a serializable read cut. Blocks until a
// combiner (possibly the caller) delivers the verdict. A non-nil error
// means the transaction was installed but could not be made durable; the
// caller must fail it and must not retry.
func (s *Store) commitCross(involved []int, c *crossTx, apply bool, tr *obs.Trace) (bool, error) {
	req := crossReq{reads: s.groupReads(c.reads), value: c.value, tr: tr, done: make(chan crossVerdict, 1)}
	if apply {
		req.writes = make(map[int]map[string][]byte)
		for key, val := range c.writes {
			idx := s.ShardOf(key)
			m := req.writes[idx]
			if m == nil {
				m = make(map[string][]byte)
				req.writes[idx] = m
			}
			m[key] = val
		}
	}

	sig := signature(involved)
	s.cross.mu.Lock()
	q := s.cross.queues[sig]
	if q == nil {
		own := make([]int, len(involved))
		copy(own, involved)
		q = &crossQueue{involved: own}
		s.cross.queues[sig] = q
	}
	q.pending = append(q.pending, req)
	lead := !q.leading
	if lead {
		q.leading = true
	}
	s.cross.mu.Unlock()
	if lead {
		s.combineCross(q)
	}
	v := <-req.done
	return v.ok, v.err
}

// combineCross serves q's pending batch: latch the shard set once, serve
// every queued request under that hold, unlatch. Requests that arrived
// while the combiner held the latches are handed to a detached goroutine
// rather than drained inline: the combiner is an ordinary transaction
// whose verdict was delivered in its own batch, and under sustained
// same-signature load an inline drain would hold its caller hostage for
// as long as new work keeps arriving — unbounded tail latency for a
// deadline-priced request. Leadership is cleared only in the critical
// section that observes an empty queue, so no request is ever orphaned.
func (s *Store) combineCross(q *crossQueue) {
	s.cross.mu.Lock()
	batch := q.pending
	q.pending = nil
	if len(batch) == 0 {
		q.leading = false
		s.cross.mu.Unlock()
		return
	}
	s.cross.mu.Unlock()

	for _, idx := range q.involved {
		s.shards[idx].LockCommit()
	}
	s.crossBatches.Add(1)
	verdicts := make([]bool, len(batch))
	applied := make([]bool, len(batch)) // installed writes (needs the durability boundary)
	var installs []crossInstall
	for i, req := range batch {
		ok := true
		for idx, reads := range req.reads {
			if !s.shards[idx].ValidateLocked(reads) {
				ok = false
				break
			}
		}
		if ok && len(req.writes) > 0 {
			applied[i] = true
			parts := make([]int, 0, len(req.writes))
			for idx := range req.writes {
				parts = append(parts, idx)
			}
			sort.Ints(parts)
			if len(parts) == 1 {
				// All writes landed on one shard: an ordinary valued
				// install — single-WAL, needs no intent/decision dance.
				s.shards[parts[0]].ApplyValuedLocked(req.writes[parts[0]], req.value)
			} else {
				// Intents first, then the epoch-stamped data records, on
				// every participant, all under the held latches — so each
				// WAL sees INTENT before its data and no other commit
				// interleaves.
				epoch := s.epochs.Next()
				req.tr.SetEpoch(epoch)
				for _, idx := range parts {
					s.shards[idx].AppendIntentLocked(epoch, parts)
				}
				for _, idx := range parts {
					s.shards[idx].ApplyCrossLocked(req.writes[idx], req.value, epoch, parts)
				}
				installs = append(installs, crossInstall{epoch: epoch, parts: parts})
			}
		}
		verdicts[i] = ok
	}
	installed := false
	for _, a := range applied {
		installed = installed || a
	}
	for _, idx := range q.involved {
		s.shards[idx].UnlockCommit()
	}
	// Durability boundary (outside the latches; the logs have their own
	// ordering): round 1 syncs every involved shard — after it, all the
	// batch's intents and data are durable; then each multi-shard install's
	// decision record lands on its coordinator and round 2 syncs it — the
	// commit point. Only then do verdicts go out and the epochs' records
	// un-gate for replication shipping. Any failure fails every installed
	// verdict of the batch: without a durable decision, recovery discards
	// the writes.
	var syncErr error
	if installed {
		syncErr = s.finishCross(q.involved, installs)
	}
	for i, req := range batch {
		v := crossVerdict{ok: verdicts[i]}
		if applied[i] {
			v.err = syncErr
		}
		req.done <- v
	}

	s.cross.mu.Lock()
	more := len(q.pending) > 0
	if !more {
		q.leading = false
	}
	s.cross.mu.Unlock()
	if more {
		go s.combineCross(q)
	}
}

// finishCross drives the post-latch durability boundary for one batch:
// round-1 sync of every involved shard, decision records, round-2 sync of
// the coordinators, then replication release. installs may be empty (the
// batch only had single-shard valued installs), in which case round 1 is
// the whole boundary. Returns the first error; on error the un-decided
// epochs stay gated — the WAL is sticky-broken at that point and the
// server fail-stops, so the gate never starves a healthy pipeline.
func (s *Store) finishCross(involved []int, installs []crossInstall) error {
	if err := s.syncShards(involved); err != nil {
		return err
	}
	if len(installs) == 0 {
		return nil
	}
	coordSet := make(map[int]struct{}, 1)
	for _, in := range installs {
		coord := in.parts[0]
		if err := s.shards[coord].AppendCrossDecision(in.epoch); err != nil {
			return err
		}
		coordSet[coord] = struct{}{}
	}
	coords := make([]int, 0, len(coordSet))
	for idx := range coordSet {
		coords = append(coords, idx)
	}
	sort.Ints(coords)
	if err := s.syncShards(coords); err != nil {
		return err
	}
	for _, in := range installs {
		for _, idx := range in.parts {
			s.shards[idx].ReleaseCross(in.epoch)
		}
	}
	return nil
}

// syncShards syncs the commit logs of idxs and returns the first error.
// Shards without a sync hook are skipped up front — the in-memory path
// pays nothing — and multiple syncs target independent WAL files, so they
// run concurrently: the caller waits one fsync, not len(idxs) of them.
func (s *Store) syncShards(idxs []int) error {
	var toSync []int
	for _, idx := range idxs {
		if s.shards[idx].NeedsCommitSync() {
			toSync = append(toSync, idx)
		}
	}
	switch len(toSync) {
	case 0:
		return nil
	case 1:
		return s.shards[toSync[0]].SyncCommitLog()
	}
	errs := make([]error, len(toSync))
	var syncs sync.WaitGroup
	for i, idx := range toSync {
		syncs.Add(1)
		go func(i, idx int) {
			defer syncs.Done()
			errs[i] = s.shards[idx].SyncCommitLog()
		}(i, idx)
	}
	syncs.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
