// Flat-combining cross-shard commits. Before this existed, every
// multi-shard transaction latched its involved shards itself — one
// latch-acquisition round per validate+apply, the cross-shard analogue of
// the per-commit path the engine's group commit already removed for
// single-shard transactions. Here, commits with the same involved-shard
// set (the overwhelmingly common case under a fixed mix: the same shard
// pairs recur) queue per shard-set signature; the first enqueuer becomes
// the combiner, latches the set once, and validates+applies every queued
// request under that single hold, draining requests that arrive while it
// works. Validation semantics are unchanged — each request validates
// against the state left by the ones processed before it, exactly as if
// each had latched in turn — and the latch order (ascending shard index)
// is preserved, so combiners of overlapping sets cannot deadlock. A side
// effect that replication relies on: all installs into a shard, native or
// cross-shard, happen under that shard's commit latch, so the shard's
// commit log (engine.Config.CommitLog) is a single total order.

package shard

import (
	"strconv"
	"strings"
	"sync"
)

// crossReq is one cross-shard validate(+apply) awaiting its verdict.
type crossReq struct {
	reads  map[int]map[string]uint64 // read versions, grouped by shard
	writes map[int]map[string][]byte // writes, grouped by shard (nil = validate only)
	value  float64                   // transaction value, forwarded to the shards' commit logs
	done   chan bool
}

// crossQueue is the pending work for one involved-shard signature.
type crossQueue struct {
	involved []int // ascending shard indices, shared by every queued request
	pending  []crossReq
	leading  bool // a combiner is draining this queue
}

// crossFC is the per-store registry of combining queues.
type crossFC struct {
	mu     sync.Mutex
	queues map[string]*crossQueue
}

// signature keys a shard set; involved is sorted, so the key is canonical.
func signature(involved []int) string {
	var b strings.Builder
	for i, idx := range involved {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(idx))
	}
	return b.String()
}

// commitCross atomically validates (and, when c carries writes grouped
// for apply, installs) a cross-shard transaction through the combining
// queue of its shard set. With apply false it is a pure validation pass —
// used to decide whether a closure error came from a serializable read
// cut. Blocks until a combiner (possibly the caller) delivers the verdict.
func (s *Store) commitCross(involved []int, c *crossTx, apply bool) bool {
	req := crossReq{reads: s.groupReads(c.reads), value: c.value, done: make(chan bool, 1)}
	if apply {
		req.writes = make(map[int]map[string][]byte)
		for key, val := range c.writes {
			idx := s.ShardOf(key)
			m := req.writes[idx]
			if m == nil {
				m = make(map[string][]byte)
				req.writes[idx] = m
			}
			m[key] = val
		}
	}

	sig := signature(involved)
	s.cross.mu.Lock()
	q := s.cross.queues[sig]
	if q == nil {
		own := make([]int, len(involved))
		copy(own, involved)
		q = &crossQueue{involved: own}
		s.cross.queues[sig] = q
	}
	q.pending = append(q.pending, req)
	lead := !q.leading
	if lead {
		q.leading = true
	}
	s.cross.mu.Unlock()
	if lead {
		s.combineCross(q)
	}
	return <-req.done
}

// combineCross serves q's pending batch: latch the shard set once, serve
// every queued request under that hold, unlatch. Requests that arrived
// while the combiner held the latches are handed to a detached goroutine
// rather than drained inline: the combiner is an ordinary transaction
// whose verdict was delivered in its own batch, and under sustained
// same-signature load an inline drain would hold its caller hostage for
// as long as new work keeps arriving — unbounded tail latency for a
// deadline-priced request. Leadership is cleared only in the critical
// section that observes an empty queue, so no request is ever orphaned.
func (s *Store) combineCross(q *crossQueue) {
	s.cross.mu.Lock()
	batch := q.pending
	q.pending = nil
	if len(batch) == 0 {
		q.leading = false
		s.cross.mu.Unlock()
		return
	}
	s.cross.mu.Unlock()

	for _, idx := range q.involved {
		s.shards[idx].LockCommit()
	}
	s.crossBatches.Add(1)
	verdicts := make([]bool, len(batch))
	installed := false
	for i, req := range batch {
		ok := true
		for idx, reads := range req.reads {
			if !s.shards[idx].ValidateLocked(reads) {
				ok = false
				break
			}
		}
		if ok {
			for idx, writes := range req.writes {
				s.shards[idx].ApplyValuedLocked(writes, req.value)
			}
			installed = installed || len(req.writes) > 0
		}
		verdicts[i] = ok
	}
	for _, idx := range q.involved {
		s.shards[idx].UnlockCommit()
	}
	// Durability boundary: every shard the batch wrote is synced before
	// any verdict is delivered, so a cross-shard ack implies the record
	// is durable on each involved shard. Shards without a sync hook are
	// skipped up front — the in-memory path pays nothing — and multiple
	// syncs target independent WAL files, so they run concurrently: the
	// batch waits one fsync, not len(involved) of them.
	if installed {
		var toSync []int
		for _, idx := range q.involved {
			if s.shards[idx].NeedsCommitSync() {
				toSync = append(toSync, idx)
			}
		}
		if len(toSync) == 1 {
			s.shards[toSync[0]].SyncCommitLog()
		} else if len(toSync) > 1 {
			var syncs sync.WaitGroup
			for _, idx := range toSync {
				syncs.Add(1)
				go func(idx int) {
					defer syncs.Done()
					s.shards[idx].SyncCommitLog()
				}(idx)
			}
			syncs.Wait()
		}
	}
	for i, req := range batch {
		req.done <- verdicts[i]
	}

	s.cross.mu.Lock()
	more := len(q.pending) > 0
	if !more {
		q.leading = false
	}
	s.cross.mu.Unlock()
	if more {
		go s.combineCross(q)
	}
}
