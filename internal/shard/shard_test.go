package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"testing"

	"repro/internal/engine"
)

func num(v []byte) int64 {
	if len(v) != 8 {
		return 0
	}
	return int64(binary.BigEndian.Uint64(v))
}

func bytes8(n int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(n))
	return b[:]
}

func TestFastPathRouting(t *testing.T) {
	s := Open(Config{Shards: 8})
	defer s.Close()
	if err := s.Update([]string{"a"}, func(tx Tx) error {
		return tx.Set("a", bytes8(7))
	}); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("a"); !ok || num(v) != 7 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	st := s.Stats()
	if st.FastPath != 1 || st.CrossCommits != 0 {
		t.Errorf("stats = %+v, want 1 fast-path, 0 cross", st)
	}
	if st.Engine.Commits != 1 {
		t.Errorf("engine commits = %d, want 1", st.Engine.Commits)
	}
}

// twoShardKeys returns two keys guaranteed to live on different shards.
func twoShardKeys(t *testing.T, s *Store) (string, string) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		a := fmt.Sprintf("k%d", i)
		for j := i + 1; j < 1000; j++ {
			b := fmt.Sprintf("k%d", j)
			if s.ShardOf(a) != s.ShardOf(b) {
				return a, b
			}
		}
	}
	t.Fatal("could not find keys on distinct shards")
	return "", ""
}

func TestCrossShardCommit(t *testing.T) {
	s := Open(Config{Shards: 8})
	defer s.Close()
	a, b := twoShardKeys(t, s)
	if err := s.Update([]string{a, b}, func(tx Tx) error {
		if err := tx.Set(a, bytes8(1)); err != nil {
			return err
		}
		return tx.Set(b, bytes8(2))
	}); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get(a); num(v) != 1 {
		t.Errorf("%s = %d", a, num(v))
	}
	if v, _ := s.Get(b); num(v) != 2 {
		t.Errorf("%s = %d", b, num(v))
	}
	st := s.Stats()
	if st.CrossCommits != 1 {
		t.Errorf("cross commits = %d, want 1", st.CrossCommits)
	}
	if st.TotalCommits() != 1 {
		t.Errorf("total commits = %d, want 1", st.TotalCommits())
	}
}

func TestUndeclaredKeyRejected(t *testing.T) {
	s := Open(Config{Shards: 8})
	defer s.Close()
	a, b := twoShardKeys(t, s)
	// Fast path: closure reaches for a key on another shard.
	err := s.Update([]string{a}, func(tx Tx) error {
		_, err := tx.Get(b)
		return err
	})
	if !errors.Is(err, ErrKeyNotDeclared) {
		t.Errorf("fast path: err = %v, want ErrKeyNotDeclared", err)
	}
	// Cross path: find a third key on a shard outside {shard(a), shard(b)}.
	var c string
	for i := 0; ; i++ {
		c = fmt.Sprintf("x%d", i)
		if s.ShardOf(c) != s.ShardOf(a) && s.ShardOf(c) != s.ShardOf(b) {
			break
		}
	}
	err = s.Update([]string{a, b}, func(tx Tx) error {
		return tx.Set(c, bytes8(1))
	})
	if !errors.Is(err, ErrKeyNotDeclared) {
		t.Errorf("cross path: err = %v, want ErrKeyNotDeclared", err)
	}
}

// TestCrossShardAtomicity hammers transfers between two accounts on
// different shards while a View repeatedly checks that the total is
// conserved — a torn (non-atomic) cross-shard commit would surface as an
// intermediate sum.
func TestCrossShardAtomicity(t *testing.T) {
	s := Open(Config{Shards: 8})
	defer s.Close()
	a, b := twoShardKeys(t, s)
	keys := []string{a, b}
	const initial = 1000
	for _, k := range keys {
		k := k
		if err := s.Update([]string{k}, func(tx Tx) error {
			return tx.Set(k, bytes8(initial))
		}); err != nil {
			t.Fatal(err)
		}
	}

	const workers, transfers = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	checkerDone := make(chan error, 1)
	go func() {
		checks := 0
		for {
			select {
			case <-stop:
				checkerDone <- nil
				return
			default:
			}
			err := s.View(keys, func(tx Tx) error {
				va, _ := tx.Get(a)
				vb, _ := tx.Get(b)
				if got := num(va) + num(vb); got != 2*initial {
					return fmt.Errorf("conservation violated after %d checks: %d", checks, got)
				}
				return nil
			})
			if err != nil {
				checkerDone <- err
				return
			}
			checks++
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			from, to := a, b
			if w%2 == 1 {
				from, to = b, a
			}
			for i := 0; i < transfers; i++ {
				err := s.Update(keys, func(tx Tx) error {
					vf, err := tx.Get(from)
					if err != nil {
						return err
					}
					vt, err := tx.Get(to)
					if err != nil {
						return err
					}
					if err := tx.Set(from, bytes8(num(vf)-1)); err != nil {
						return err
					}
					return tx.Set(to, bytes8(num(vt)+1))
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < workers/2; w++ {
		// Waves of single-shard traffic on the same keys, so the cross
		// path must also be atomic against native engine commits.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				err := s.Update([]string{a}, func(tx Tx) error {
					v, err := tx.Get(a)
					if err != nil {
						return err
					}
					return tx.Set(a, bytes8(num(v))) // identity write
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	if err := <-checkerDone; err != nil {
		t.Fatal(err)
	}
	var total int64
	if err := s.View(keys, func(tx Tx) error {
		for _, k := range keys {
			v, _ := tx.Get(k)
			total += num(v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total != 2*initial {
		t.Fatalf("final sum = %d, want %d", total, 2*initial)
	}
	st := s.Stats()
	if st.CrossCommits < workers*transfers {
		t.Errorf("cross commits = %d, want >= %d", st.CrossCommits, workers*transfers)
	}
}

// TestCrossShardErrorOnStaleCutRetries pins the serializability of
// closure errors: a business-logic error decided off an inconsistent
// cross-shard read cut (a concurrent commit landed between the two shard
// reads) must trigger a retry, not surface to the caller. Only errors
// whose read sets still validate are real.
func TestCrossShardErrorOnStaleCutRetries(t *testing.T) {
	s := Open(Config{Shards: 8})
	defer s.Close()
	a, b := twoShardKeys(t, s)
	for _, k := range []string{a, b} {
		k := k
		if err := s.Update([]string{k}, func(tx Tx) error {
			return tx.Set(k, bytes8(1))
		}); err != nil {
			t.Fatal(err)
		}
	}
	errBiz := errors.New("insufficient funds")
	attempts := 0
	err := s.Update([]string{a, b}, func(tx Tx) error {
		attempts++
		va, err := tx.Get(a)
		if err != nil {
			return err
		}
		if attempts == 1 {
			// A concurrent transaction commits to a between this
			// transaction's reads of shard(a) and shard(b).
			if err := s.Update([]string{a}, func(tx2 Tx) error {
				return tx2.Set(a, bytes8(2))
			}); err != nil {
				return err
			}
		}
		if _, err := tx.Get(b); err != nil {
			return err
		}
		if num(va) == 1 {
			return errBiz // decision made off the now-stale value of a
		}
		return nil
	})
	if err != nil {
		t.Fatalf("stale-cut error surfaced instead of retrying: %v", err)
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2", attempts)
	}

	// An error decided off a cut that still validates is real and must
	// surface unchanged.
	err = s.Update([]string{a, b}, func(tx Tx) error {
		if _, err := tx.Get(a); err != nil {
			return err
		}
		return errBiz
	})
	if !errors.Is(err, errBiz) {
		t.Errorf("valid-cut error = %v, want errBiz", err)
	}
}

func TestViewReadOnly(t *testing.T) {
	s := Open(Config{Shards: 4})
	defer s.Close()
	err := s.View([]string{"a"}, func(tx Tx) error {
		return tx.Set("a", bytes8(1))
	})
	if !errors.Is(err, ErrReadOnly) {
		t.Errorf("err = %v, want ErrReadOnly", err)
	}
}

func TestSingleShardDegeneratesToEngine(t *testing.T) {
	// With one shard every transaction is fast-path and the engine's SCC
	// machinery is fully in play.
	s := Open(Config{Shards: 1, Engine: engine.Config{Mode: engine.SCC2S}})
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = s.Update([]string{"hot"}, func(tx Tx) error {
					v, err := tx.Get("hot")
					if err != nil {
						return err
					}
					return tx.Set("hot", bytes8(num(v)+1))
				})
			}
		}()
	}
	wg.Wait()
	if v, _ := s.Get("hot"); num(v) != 800 {
		t.Fatalf("hot = %d, want 800 (lost updates)", num(v))
	}
	st := s.Stats()
	if st.FastPath != 800 || st.CrossCommits != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestShardOfMatchesStdlibFNV pins the inlined hash to hash/fnv's
// FNV-1a: changing the routing function would silently re-partition
// every existing deployment's keyspace.
func TestShardOfMatchesStdlibFNV(t *testing.T) {
	s := Open(Config{Shards: 16})
	defer s.Close()
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("some/key-%d", i)
		h := fnv.New32a()
		h.Write([]byte(k))
		if want := int(h.Sum32() % 16); s.ShardOf(k) != want {
			t.Fatalf("ShardOf(%q) = %d, want %d", k, s.ShardOf(k), want)
		}
	}
}

func TestStashAcrossPaths(t *testing.T) {
	s := Open(Config{Shards: 8})
	defer s.Close()
	// Fast path.
	res, err := s.UpdateValuedResult(0, []string{"a"}, func(tx Tx) error {
		if err := tx.Set("a", bytes8(1)); err != nil {
			return err
		}
		tx.Stash("fast")
		return nil
	})
	if err != nil || res != "fast" {
		t.Fatalf("fast path stash = %v, %v", res, err)
	}
	// Cross path.
	a, b := twoShardKeys(t, s)
	res, err = s.UpdateValuedResult(0, []string{a, b}, func(tx Tx) error {
		if err := tx.Set(a, bytes8(1)); err != nil {
			return err
		}
		if err := tx.Set(b, bytes8(2)); err != nil {
			return err
		}
		tx.Stash("cross")
		return nil
	})
	if err != nil || res != "cross" {
		t.Fatalf("cross path stash = %v, %v", res, err)
	}
}

func TestShardOfStable(t *testing.T) {
	s := Open(Config{Shards: 16})
	defer s.Close()
	spread := make(map[int]int)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if s.ShardOf(k) != s.ShardOf(k) {
			t.Fatal("ShardOf not deterministic")
		}
		spread[s.ShardOf(k)]++
	}
	if len(spread) != 16 {
		t.Errorf("1000 keys hit only %d of 16 shards", len(spread))
	}
}
