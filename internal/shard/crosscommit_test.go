package shard

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
)

// keysOnDistinctShards returns n keys that all land on different shards,
// so transactions over them are guaranteed cross-shard.
func keysOnDistinctShards(t *testing.T, s *Store, n int) []string {
	t.Helper()
	seen := make(map[int]string)
	for i := 0; len(seen) < n && i < 100000; i++ {
		k := "ck" + strconv.Itoa(i)
		if _, ok := seen[s.ShardOf(k)]; !ok {
			seen[s.ShardOf(k)] = k
		}
	}
	if len(seen) < n {
		t.Fatalf("could not find %d keys on distinct shards", n)
	}
	out := make([]string, 0, n)
	for _, k := range seen {
		out = append(out, k)
		if len(out) == n {
			break
		}
	}
	return out
}

// TestCrossCombinerSequential: with no concurrency there is nothing to
// combine — every cross-shard commit is its own latch round, so the
// batch counter tracks the commit counter exactly.
func TestCrossCombinerSequential(t *testing.T) {
	s := Open(Config{Shards: 8})
	defer s.Close()
	keys := keysOnDistinctShards(t, s, 2)
	for i := 0; i < 10; i++ {
		err := s.Update(keys, func(tx Tx) error {
			for _, k := range keys {
				if err := tx.Set(k, []byte(strconv.Itoa(i))); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.CrossCommits != 10 {
		t.Fatalf("cross commits = %d, want 10", st.CrossCommits)
	}
	if st.CrossBatches != 10 {
		t.Fatalf("sequential cross batches = %d, want 10 (one per commit)", st.CrossBatches)
	}
}

// TestCrossCombinerConcurrent drives many concurrent transfers over one
// shard pair: every commit must be atomic (total conserved), and the
// flat-combining committer must not lose or duplicate any verdict.
func TestCrossCombinerConcurrent(t *testing.T) {
	s := Open(Config{Shards: 8})
	defer s.Close()
	keys := keysOnDistinctShards(t, s, 2)
	a, b := keys[0], keys[1]
	if err := s.Update(keys, func(tx Tx) error {
		if err := tx.Set(a, []byte("1000")); err != nil {
			return err
		}
		return tx.Set(b, []byte("0"))
	}); err != nil {
		t.Fatal(err)
	}

	const workers, transfers = 16, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				err := s.Update(keys, func(tx Tx) error {
					av, err := tx.Get(a)
					if err != nil {
						return err
					}
					bv, err := tx.Get(b)
					if err != nil {
						return err
					}
					an, _ := strconv.Atoi(string(av))
					bn, _ := strconv.Atoi(string(bv))
					if err := tx.Set(a, []byte(strconv.Itoa(an-1))); err != nil {
						return err
					}
					return tx.Set(b, []byte(strconv.Itoa(bn+1)))
				})
				if err != nil {
					panic(fmt.Sprintf("transfer: %v", err))
				}
			}
		}()
	}
	wg.Wait()

	av, _ := s.Get(a)
	bv, _ := s.Get(b)
	an, _ := strconv.Atoi(string(av))
	bn, _ := strconv.Atoi(string(bv))
	if an+bn != 1000 {
		t.Fatalf("total = %d + %d = %d, want 1000 (torn cross-shard commit)", an, bn, an+bn)
	}
	if bn != workers*transfers {
		t.Fatalf("b = %d, want %d (lost transfer)", bn, workers*transfers)
	}
	st := s.Stats()
	// Every validate (commit or restart) passes through a batch; batches
	// can serve several, so the counter is bounded by the round count.
	rounds := st.CrossCommits + st.CrossRestarts
	if st.CrossBatches == 0 || st.CrossBatches > rounds {
		t.Fatalf("cross batches = %d, want in [1, %d]", st.CrossBatches, rounds)
	}
	t.Logf("commits=%d restarts=%d batches=%d (combining win %.2fx)",
		st.CrossCommits, st.CrossRestarts, st.CrossBatches,
		float64(rounds)/float64(st.CrossBatches))
}
