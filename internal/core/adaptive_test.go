package core

// Tests for the Sec. 2.1 extensions: per-transaction shadow budgets
// (SCC-AK) and priority-based shadow replacement.

import (
	"testing"

	"repro/internal/model"
	"repro/internal/rtdbs"
	"repro/internal/workload"
)

func TestValueRationedK(t *testing.T) {
	kf := ValueRationedK(200, 4, 2)
	hi := &model.Txn{Class: &model.Class{Value: 550}}
	lo := &model.Txn{Class: &model.Class{Value: 50}}
	if kf(hi) != 4 || kf(lo) != 2 {
		t.Fatalf("budget split wrong: hi=%d lo=%d", kf(hi), kf(lo))
	}
}

func TestAdaptiveSerializable(t *testing.T) {
	res := rtdbs.Run(rtdbs.Config{
		Workload: workload.TwoClass(110, 1), Target: 400, Warmup: 20,
		CheckReads: true, RecordHistory: true,
	}, newChecked(func() *SCC { return NewAdaptive(ValueRationedK(200, 4, 2), LBFO) }))
	if res.Truncated {
		t.Fatal("truncated")
	}
	if err := res.History.Check(); err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Promotions == 0 {
		t.Fatal("adaptive SCC never promoted")
	}
}

func TestAdaptiveBudgetEnforcedPerClass(t *testing.T) {
	// With a hotspot, high-value transactions may hold up to 3 spec
	// shadows, low-value ones at most 1; the invariant checker (budget())
	// enforces exactly that on every event via SelfCheck.
	wl := workload.TwoClass(70, 2)
	wl.DBPages = 40
	res := rtdbs.Run(rtdbs.Config{
		Workload: wl, Target: 300, Warmup: 10,
		CheckReads: true, RecordHistory: true,
	}, newChecked(func() *SCC { return NewAdaptive(ValueRationedK(200, 4, 2), LBFO) }))
	if err := res.History.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveDegenerateBudgetClamped(t *testing.T) {
	// A budget function returning nonsense must clamp to k=1, not crash.
	res := rtdbs.Run(rtdbs.Config{
		Workload: workload.Baseline(80, 3), Target: 200, Warmup: 10,
		CheckReads: true, RecordHistory: true,
	}, newChecked(func() *SCC { return NewAdaptive(func(*model.Txn) int { return -5 }, LBFO) }))
	if err := res.History.Check(); err != nil {
		t.Fatal(err)
	}
	if res.Metrics.ShadowForks != 0 {
		t.Fatal("k clamped to 1 must fork nothing")
	}
}

func TestPriorityPolicySerializable(t *testing.T) {
	res := rtdbs.Run(rtdbs.Config{
		Workload: workload.Baseline(120, 4), Target: 400, Warmup: 20,
		CheckReads: true, RecordHistory: true,
	}, newChecked(func() *SCC { return NewKS(2, Priority) }))
	if res.Truncated {
		t.Fatal("truncated")
	}
	if err := res.History.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestPriorityPolicyKeepsUrgentConflict builds the choice explicitly: the
// only shadow slot is held for a loose-deadline conflicter; a
// tight-deadline conflicter arrives and must take the slot under the
// Priority policy but not under FIFO.
func TestPriorityPolicyKeepsUrgentConflict(t *testing.T) {
	build := func(policy Policy) (sFIFO *scenario) {
		s := newScenario(t, 2, policy) // one speculative slot
		// T1 reads x,y + filler.
		ops := []model.Op{r(pX), r(pY)}
		for pg := 40; pg <= 47; pg++ {
			ops = append(ops, r(model.PageID(pg)))
		}
		s.admitAt(0, 1, 1.0, ops)
		// T3: loose deadline, writes x at 2.4 -> takes the slot.
		t3 := s.admitAt(0, 3, 2.4, []model.Op{w(pX), w(model.PageID(60)), w(model.PageID(61))})
		t3.Deadline = 1000
		// T2: tight deadline, writes y at 3.4.
		t2 := s.admitAt(0.2, 2, 3.2, []model.Op{w(pY), w(model.PageID(70)), w(model.PageID(71))})
		t2.Deadline = 5
		s.rt.K.RunUntil(4.0)
		return s
	}

	prio := build(Priority)
	if sp := prio.specOf(1, 2); sp == nil {
		t.Fatal("Priority policy did not cover the tight-deadline conflicter")
	}
	if sp := prio.specOf(1, 3); sp != nil {
		t.Fatal("Priority policy kept the loose-deadline shadow")
	}

	fifo := build(FIFO)
	if sp := fifo.specOf(1, 3); sp == nil {
		t.Fatal("FIFO must keep the first conflict")
	}
	if sp := fifo.specOf(1, 2); sp != nil {
		t.Fatal("FIFO must ignore the later conflict")
	}
}
