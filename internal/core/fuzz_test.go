package core

// Randomized cross-protocol schedules: testing/quick generates small
// transaction sets (op lists, timings) and every protocol must produce a
// serializable history with intact invariants. This complements the
// workload-driven tests with adversarial shapes the generator would rarely
// produce (tiny page universes, blind-write-only transactions, wildly
// mixed op times).

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/rtdbs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// rawTxn is the quick-generated seed of one transaction.
type rawTxn struct {
	Pages   []uint8 // page per op (mod 6: a tiny, hot universe)
	Writes  uint16  // bitmask: op i is a write
	Arrival uint8   // tenths of a second
	Speed   uint8   // op time: 0.05s + Speed/255 * 0.3s
}

func (r rawTxn) ops() []model.Op {
	n := len(r.Pages)
	if n > 12 {
		n = 12
	}
	ops := make([]model.Op, 0, n)
	seen := map[model.PageID]bool{}
	for i := 0; i < n; i++ {
		p := model.PageID(r.Pages[i] % 6)
		if seen[p] {
			continue // the model accesses each page once
		}
		seen[p] = true
		ops = append(ops, model.Op{Page: p, Write: r.Writes&(1<<i) != 0})
	}
	return ops
}

func runRandomSchedule(t *testing.T, mk func() *SCC, txns []rawTxn) bool {
	c := mk()
	c.SelfCheck = true
	rt := rtdbs.New(rtdbs.Config{
		Workload:      workload.Baseline(1, 1),
		Target:        1000,
		CheckReads:    true,
		RecordHistory: true,
	}, c)
	admitted := 0
	for i, r := range txns {
		ops := r.ops()
		if len(ops) == 0 {
			continue
		}
		opTime := 0.05 + float64(r.Speed)/255*0.3
		cl := &model.Class{
			Name: "fuzz", NumOps: len(ops), MeanOpTime: opTime,
			SlackFactor: 2, Value: 100, PenaltyPerSlack: 1, Frequency: 1,
		}
		tx := &model.Txn{
			ID: model.TxnID(i + 1), Class: cl,
			Arrival:  sim.Time(float64(r.Arrival) / 10),
			Deadline: sim.Time(float64(r.Arrival)/10 + 10),
			Ops:      ops, OpTime: opTime,
		}
		rt.K.At(tx.Arrival, func() { rt.Admit(tx) })
		admitted++
	}
	// RunUntil, not Run: the deferred protocols' Termination-Rule tick
	// loops keep the event queue nonempty forever.
	rt.K.RunUntil(500)
	if rt.NumActive() != 0 {
		t.Logf("schedule wedged: %d transactions never finished", rt.NumActive())
		return false
	}
	if rt.History().Len() != admitted {
		t.Logf("committed %d of %d", rt.History().Len(), admitted)
		return false
	}
	if err := rt.History().Check(); err != nil {
		t.Log(err)
		return false
	}
	return true
}

func TestRandomSchedulesAllProtocolVariants(t *testing.T) {
	variants := []struct {
		name string
		mk   func() *SCC
	}{
		{"SCC-1S", func() *SCC { return NewKS(1, LBFO) }},
		{"SCC-2S", NewTwoShadow},
		{"SCC-3S", func() *SCC { return NewKS(3, LBFO) }},
		{"SCC-CB", NewCB},
		{"SCC-3S-FIFO", func() *SCC { return NewKS(3, FIFO) }},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			f := func(txns []rawTxn) bool {
				if len(txns) > 6 {
					txns = txns[:6]
				}
				return runRandomSchedule(t, v.mk, txns)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRandomSchedulesDeferredVariants(t *testing.T) {
	variants := []struct {
		name string
		mk   func() *SCC
	}{
		{"SCC-VW", func() *SCC { return NewVW(2, 0.1) }},
		{"SCC-DC", func() *SCC { return NewDC(2, 0.1) }},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			f := func(txns []rawTxn) bool {
				if len(txns) > 5 {
					txns = txns[:5]
				}
				return runRandomSchedule(t, v.mk, txns)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
