// This file covers SCC-OB (Order-Based SCC, Sec. 2), the most general
// member of the family. SCC-OB maintains one shadow per Speculated Order
// of Serialization (SOS): for a transaction in a set of n pairwise
// conflicting transactions that is sum over i of (n-1)!/(n-i)! shadows —
// O((n-1)!) — which is why the paper analyzes it but never simulates it,
// and why SCC-CB (NewCB) exists: one shadow can cover many serialization
// orders, reducing the bound to n live shadows (at most n(n-1)/2 ever
// created). We follow the paper: the combinatorics are implemented and
// verified here, the practical protocols (CB, kS) are the executable ones.

package core

// OBShadowCount returns the number of shadows SCC-OB maintains for one
// transaction in a set of n pairwise conflicting transactions:
//
//	sum_{i=1..n} (n-1)! / (n-i)!
//
// (the paper's formula in Sec. 2). n must be >= 1.
func OBShadowCount(n int) int {
	if n < 1 {
		panic("core: OBShadowCount needs n >= 1")
	}
	total := 0
	for i := 1; i <= n; i++ {
		// (n-1)! / (n-i)! = (n-1)(n-2)...(n-i+1), a falling product of
		// i-1 terms.
		term := 1
		for k := 0; k < i-1; k++ {
			term *= n - 1 - k
		}
		total += term
	}
	return total
}

// CBLiveShadowBound returns SCC-CB's bound on simultaneously live shadows
// per transaction with n pairwise conflicting transactions: n (the
// optimistic shadow plus one speculative shadow per conflicting
// transaction covers every serialization order).
func CBLiveShadowBound(n int) int { return n }

// CBTotalShadowBound returns SCC-CB's bound on shadows ever created over
// a transaction's lifetime: sum_{i=1..n} (n-i) = n(n-1)/2.
func CBTotalShadowBound(n int) int { return n * (n - 1) / 2 }
