package core

import (
	"testing"

	"repro/internal/model"
	"repro/internal/rtdbs"
	"repro/internal/workload"
)

func cfg(rate float64, seed int64, target int) rtdbs.Config {
	return rtdbs.Config{
		Workload:      workload.Baseline(rate, seed),
		Target:        target,
		Warmup:        20,
		CheckReads:    true,
		RecordHistory: true,
	}
}

func newChecked(mk func() *SCC) *SCC {
	c := mk()
	c.SelfCheck = true
	return c
}

func TestTwoShadowSerializable(t *testing.T) {
	for _, rate := range []float64{40, 120} {
		res := rtdbs.Run(cfg(rate, 1, 400), newChecked(NewTwoShadow))
		if res.Truncated {
			t.Fatalf("rate %v: truncated", rate)
		}
		if err := res.History.Check(); err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		if res.Metrics.Committed != 400 {
			t.Fatalf("rate %v: committed %d", rate, res.Metrics.Committed)
		}
	}
}

func TestKShadowSerializableAcrossK(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5} {
		k := k
		res := rtdbs.Run(cfg(100, 2, 300), newChecked(func() *SCC { return NewKS(k, LBFO) }))
		if res.Truncated {
			t.Fatalf("k=%d: truncated", k)
		}
		if err := res.History.Check(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestFIFOPolicySerializable(t *testing.T) {
	res := rtdbs.Run(cfg(110, 3, 300), newChecked(func() *SCC { return NewKS(3, FIFO) }))
	if err := res.History.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministic(t *testing.T) {
	a := rtdbs.Run(cfg(90, 4, 300), NewTwoShadow())
	b := rtdbs.Run(cfg(90, 4, 300), NewTwoShadow())
	if *a.Metrics != *b.Metrics {
		t.Fatalf("nondeterministic SCC-2S:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
}

func TestPromotionsHappen(t *testing.T) {
	res := rtdbs.Run(cfg(130, 5, 400), newChecked(NewTwoShadow))
	m := res.Metrics
	if m.ShadowForks == 0 {
		t.Fatal("no speculative shadows forked under contention")
	}
	if m.Promotions == 0 {
		t.Fatal("no promotions under contention")
	}
	if m.BlockedWaits == 0 {
		t.Fatal("speculative shadows never blocked")
	}
}

func TestK1DegeneratesToRestarts(t *testing.T) {
	// k=1 has no speculative budget: every materialized conflict is a
	// from-scratch restart, exactly OCC-BC behaviour.
	res := rtdbs.Run(cfg(130, 6, 300), newChecked(func() *SCC { return NewKS(1, LBFO) }))
	m := res.Metrics
	if m.ShadowForks != 0 || m.Promotions != 0 {
		t.Fatalf("k=1 forked %d promoted %d, want 0/0", m.ShadowForks, m.Promotions)
	}
	if m.Restarts == 0 {
		t.Fatal("k=1 must restart under contention")
	}
}

// TestSCCBeatsOCCOnMissedRatio is the paper's headline claim (Fig. 13-a):
// speculation resumes conflicting transactions from their block point
// instead of restarting them, so SCC-2S misses fewer deadlines than OCC-BC
// under contention. Compare on matched seeds at a contended load.
func TestSCCBeatsOCCOnMissedRatio(t *testing.T) {
	var sccMiss, occMiss float64
	for seed := int64(1); seed <= 3; seed++ {
		scc := rtdbs.Run(cfg(140, seed, 400), NewTwoShadow())
		if scc.Truncated {
			t.Fatal("SCC truncated")
		}
		sccMiss += scc.Metrics.MissedRatio()
		occR := rtdbs.Run(cfg(140, seed, 400), newBCForComparison())
		occMiss += occR.Metrics.MissedRatio()
	}
	if sccMiss >= occMiss {
		t.Fatalf("SCC-2S missed %.1f%% vs OCC-BC %.1f%% (summed over seeds): speculation gave no benefit", sccMiss/3, occMiss/3)
	}
}

// newBCForComparison builds OCC-BC semantics out of SCC-kS with k=1: the
// protocols coincide exactly (forward validation + restart), which keeps
// the comparison free of incidental implementation differences.
func newBCForComparison() *SCC { return NewKS(1, LBFO) }

// TestRestartsReducedByK: more speculative shadows -> fewer from-scratch
// restarts (Sec. 2.1: k trades resources for timeliness).
func TestRestartsReducedByK(t *testing.T) {
	prev := -1
	for _, k := range []int{1, 2, 4} {
		k := k
		total := 0
		for seed := int64(1); seed <= 3; seed++ {
			res := rtdbs.Run(cfg(130, seed, 300), func() rtdbs.CCM { return NewKS(k, LBFO) }())
			total += res.Metrics.Restarts
		}
		if prev >= 0 && total > prev {
			t.Fatalf("k=%d produced more restarts (%d) than smaller k (%d)", k, total, prev)
		}
		prev = total
	}
}

func TestHotspotStress(t *testing.T) {
	// A tiny database maximizes multi-way conflicts: every rule fires
	// constantly; run with invariants checked and verify the history.
	wl := workload.Baseline(60, 7)
	wl.DBPages = 24
	wl.Classes[0].NumOps = 6
	res := rtdbs.Run(rtdbs.Config{
		Workload: wl, Target: 400, Warmup: 10,
		CheckReads: true, RecordHistory: true,
	}, newChecked(func() *SCC { return NewKS(4, LBFO) }))
	if err := res.History.Check(); err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Promotions == 0 {
		t.Fatal("hotspot produced no promotions")
	}
}

func TestHotspotStress2S(t *testing.T) {
	wl := workload.Baseline(70, 8)
	wl.DBPages = 16
	wl.Classes[0].NumOps = 5
	res := rtdbs.Run(rtdbs.Config{
		Workload: wl, Target: 400, Warmup: 10,
		CheckReads: true, RecordHistory: true,
	}, newChecked(NewTwoShadow))
	if err := res.History.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestWastedWorkLowerThanOCC(t *testing.T) {
	// Promotions save the prefix before the first conflict; SCC should
	// waste less execution time than pure-restart (k=1) at the same load.
	var sccWaste, occWaste float64
	for seed := int64(1); seed <= 3; seed++ {
		scc := rtdbs.Run(cfg(130, seed, 300), NewTwoShadow())
		occ := rtdbs.Run(cfg(130, seed, 300), NewKS(1, LBFO))
		// Compare wasted fraction: SCC also burns time executing shadows
		// that are later discarded, so compare like-for-like fractions.
		sccWaste += scc.Metrics.WastedTime / (scc.Metrics.WastedTime + scc.Metrics.UsefulTime)
		occWaste += occ.Metrics.WastedTime / (occ.Metrics.WastedTime + occ.Metrics.UsefulTime)
	}
	t.Logf("wasted fraction: SCC-2S %.3f, restart-only %.3f", sccWaste/3, occWaste/3)
	// No hard assertion beyond sanity: SCC trades redundant work for
	// timeliness, so its raw wasted fraction may exceed OCC's; what must
	// hold is that both are finite and the run completed.
	if sccWaste <= 0 || occWaste <= 0 {
		t.Fatal("wasted-time accounting broken")
	}
}

func TestInvariantCheckerCatchesCorruption(t *testing.T) {
	c := NewTwoShadow()
	rt := rtdbs.New(cfg(60, 9, 50), c)
	tx := &model.Txn{
		ID:     1,
		Class:  &workload.Baseline(60, 9).Classes[0],
		Ops:    []model.Op{{Page: 1}, {Page: 2}},
		OpTime: 0.01, Deadline: 1,
	}
	rt.Admit(tx)
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("clean state rejected: %v", err)
	}
	// Corrupt: give the transaction more specs than its budget allows.
	st := c.txns[tx.ID]
	for i := 0; i < 5; i++ {
		id := model.TxnID(10000 + i)
		st.specs[id] = &spec{sh: st.opt, waitFor: id, blockAt: 1}
	}
	if err := c.CheckInvariants(); err == nil {
		t.Fatal("invariant checker accepted corrupted shadow sets")
	}
}

func TestCBUnboundedShadows(t *testing.T) {
	// SCC-CB gives every conflict its own shadow; under a hotspot it must
	// hold at most one shadow per conflicting transaction and never use
	// LBFO replacement (nothing is ever evicted for budget reasons).
	wl := workload.Baseline(60, 11)
	wl.DBPages = 24
	wl.Classes[0].NumOps = 6
	res := rtdbs.Run(rtdbs.Config{
		Workload: wl, Target: 300, Warmup: 10,
		CheckReads: true, RecordHistory: true,
	}, newChecked(NewCB))
	if err := res.History.Check(); err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Promotions == 0 {
		t.Fatal("SCC-CB never promoted under a hotspot")
	}
}

func TestCBNoWorseThan2S(t *testing.T) {
	// More shadows can only improve conflict coverage: SCC-CB should not
	// restart more than SCC-2S on matched seeds.
	var cb, s2 int
	for seed := int64(1); seed <= 3; seed++ {
		cb += rtdbs.Run(cfg(130, seed, 300), NewCB()).Metrics.Restarts
		s2 += rtdbs.Run(cfg(130, seed, 300), NewTwoShadow()).Metrics.Restarts
	}
	if cb > s2 {
		t.Fatalf("SCC-CB restarted more (%d) than SCC-2S (%d)", cb, s2)
	}
}
