package core

import (
	"testing"
	"testing/quick"

	"repro/internal/rtdbs"
	"repro/internal/workload"
)

func TestOBShadowCountPaperExample(t *testing.T) {
	// The paper's Fig. 3: three pairwise conflicting transactions require
	// five shadows per transaction under SCC-OB (T_3^0, T_3^1..T_3^4).
	if got := OBShadowCount(3); got != 5 {
		t.Fatalf("OBShadowCount(3) = %d, want 5 (Fig. 3)", got)
	}
}

func TestOBShadowCountSmall(t *testing.T) {
	// n=1: only the optimistic shadow. n=2: optimistic + one speculative.
	cases := map[int]int{1: 1, 2: 2, 4: 16, 5: 65}
	for n, want := range cases {
		if got := OBShadowCount(n); got != want {
			t.Fatalf("OBShadowCount(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestOBFactorialGrowth: the count grows faster than any fixed polynomial
// — the paper's argument for why SCC-OB is impractical.
func TestOBFactorialGrowth(t *testing.T) {
	prevRatio := 0.0
	for n := 3; n <= 9; n++ {
		ratio := float64(OBShadowCount(n)) / float64(OBShadowCount(n-1))
		if ratio <= prevRatio {
			t.Fatalf("growth ratio not increasing at n=%d (%.2f <= %.2f): not superexponential", n, ratio, prevRatio)
		}
		prevRatio = ratio
	}
}

func TestCBBoundsLinearAndQuadratic(t *testing.T) {
	if CBLiveShadowBound(7) != 7 {
		t.Fatal("CB live bound must be n")
	}
	if CBTotalShadowBound(7) != 21 {
		t.Fatal("CB total bound must be n(n-1)/2")
	}
	// CB's bound is exponentially below OB's from modest n.
	if OBShadowCount(8) <= 100*CBTotalShadowBound(8) {
		t.Fatalf("OB (%d) should dwarf CB (%d) at n=8", OBShadowCount(8), CBTotalShadowBound(8))
	}
}

// Property: OBShadowCount dominates CB's bounds for every n >= 3, and all
// counts are positive.
func TestOBvsCBProperty(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw%8) + 3 // 3..10
		ob := OBShadowCount(n)
		return ob > 0 && ob >= CBTotalShadowBound(n) && CBTotalShadowBound(n) >= CBLiveShadowBound(n)-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCBRespectsLiveBound verifies the executable SCC-CB never holds more
// live shadows for a transaction than it has conflicting transactions
// (the paper's "no more than n shadows per transaction"). The invariant
// checker runs on every event; here we additionally sample live states.
func TestCBRespectsLiveBound(t *testing.T) {
	c := NewCB()
	c.SelfCheck = true
	wl := workload.Baseline(60, 21)
	wl.DBPages = 30
	wl.Classes[0].NumOps = 5
	rt := rtdbs.New(rtdbs.Config{
		Workload: wl, Target: 200, Warmup: 0,
		CheckReads: true,
	}, c)
	// Drive manually so we can sample mid-run.
	type starter interface{ Start() }
	_ = starter(nil)
	res := rtdbs.Run(rtdbs.Config{
		Workload: wl, Target: 200, Warmup: 0, CheckReads: true,
	}, c2forBoundCheck(t))
	_ = rt
	if res.Metrics.Committed < 200 {
		t.Fatalf("committed %d", res.Metrics.Committed)
	}
}

// c2forBoundCheck wraps SCC-CB with a per-event live-bound assertion.
type boundCheckCCM struct {
	*SCC
	t *testing.T
}

func c2forBoundCheck(t *testing.T) rtdbs.CCM {
	c := NewCB()
	c.SelfCheck = true
	return &boundCheckCCM{SCC: c, t: t}
}

func (b *boundCheckCCM) OnOpDone(sh *rtdbs.Shadow) {
	b.SCC.OnOpDone(sh)
	// The paper's bound: at any time at most n shadows per transaction,
	// n = number of conflicting (hence active) transactions. A shadow may
	// briefly outlive its conflict's evidence (the writer rolled back to
	// an earlier prefix) but never the conflicting transaction itself, so
	// the active population bounds the shadow set.
	nActive := b.SCC.rt.NumActive()
	for id, st := range b.SCC.txns {
		if len(st.specs) > nActive-1 {
			b.t.Fatalf("txn %d holds %d speculative shadows with only %d other active transactions",
				id, len(st.specs), nActive-1)
		}
	}
}
