// This file implements SCC-DC and SCC-VW (Sec. 3): value-cognizant commit
// deferment on top of SCC-kS. Finished optimistic shadows do not commit
// immediately; a Termination Rule weighs the value-added of committing now
// against deferring, using transaction value functions and (for SCC-DC)
// the shadow finish and adoption probabilities of Defs. 3-7.

package core

import (
	"sort"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/value"
)

// deferral is the hook set a commit-deferment policy plugs into SCC.
type deferral interface {
	name() string
	attach(c *SCC)
	// onFinish is invoked when an optimistic shadow finishes; the policy
	// decides when it commits.
	onFinish(st *txnState)
	// onCommitted is invoked after any commit (waiters may now proceed).
	onCommitted(id model.TxnID)
	// cancel is invoked when a finished shadow is aborted by a
	// higher-value commit: its transaction resumed executing.
	cancel(st *txnState)
}

// execDist returns the Def. 3 execution-time distribution of a class. The
// workload draws per-transaction execution rates from a truncated normal
// around the class mean, which is exactly what this models.
func execDist(cl *model.Class) value.ExecDist {
	mean := cl.MeanExec()
	return value.ExecDist{
		Mean:  mean,
		Sigma: cl.ExecJitter * mean,
		Min:   0.4 * mean,
	}
}

// conflictSet returns the IDs of active transactions conflicting with st
// in either direction (they read st's writes, or st read theirs), sorted.
func (c *SCC) conflictSet(st *txnState) []model.TxnID {
	r := st.t.ID
	seen := map[model.TxnID]struct{}{}
	for _, p := range c.regWrites[r] {
		for id := range c.readers[p] {
			if id != r && c.txns[id] != nil {
				seen[id] = struct{}{}
			}
		}
	}
	for _, p := range c.regReads[r] {
		for id := range c.writers[p] {
			if id != r && c.txns[id] != nil {
				seen[id] = struct{}{}
			}
		}
	}
	return sortedIDs(seen)
}

// ---------------------------------------------------------------------------
// SCC-DC
// ---------------------------------------------------------------------------

// DC implements SCC with Deferred Commit. Every Delta seconds the
// Termination Rule examines each finished shadow T_o_u: commit now if the
// expected value-added V_now is at least the expected value-added V_later
// of deferring, computed from expected-finish probabilities (Def. 6) and
// value functions (Def. 7).
//
// Following the paper, the infinite sums are truncated at the horizon l_i
// where the finish probability reaches 1-eps. The per-tick contribution
// uses the probability mass of finishing in that tick (EF(k) - EF(k-1));
// the cumulative form printed in the paper double-counts ticks and would
// make deferring always win.
type DC struct {
	c       *SCC
	Delta   float64 // Termination Rule period (seconds)
	Eps     float64 // horizon tolerance (default 0.01)
	pending map[model.TxnID]*txnState
}

// NewDC returns SCC-kS extended with the SCC-DC Termination Rule.
func NewDC(k int, delta float64) *SCC {
	c := NewKS(k, LBFO)
	c.defr = &DC{Delta: delta, Eps: 0.01, pending: make(map[model.TxnID]*txnState)}
	c.name = "SCC-DC"
	return c
}

func (d *DC) name() string { return "SCC-DC" }

func (d *DC) attach(c *SCC) {
	d.c = c
	d.tickLoop()
}

func (d *DC) tickLoop() {
	d.c.rt.K.After(sim.Time(d.Delta), func() {
		d.terminationRule()
		d.tickLoop()
	})
}

func (d *DC) onFinish(st *txnState) {
	d.pending[st.t.ID] = st
	d.c.rt.Metrics.CommitWaits++
	// Commits happen only at clock ticks ("they wait at least until the
	// next periodic invocation of the Termination Rule").
}

func (d *DC) onCommitted(id model.TxnID) { delete(d.pending, id) }
func (d *DC) cancel(st *txnState)        { delete(d.pending, st.t.ID) }

// terminationRule is invoked at each tick.
func (d *DC) terminationRule() {
	now := float64(d.c.rt.K.Now())
	for {
		committed := false
		// Adoption probabilities and conflict sets are recomputed once
		// per sweep, not once per pending transaction: the fixed point is
		// global and the sweep restarts after every commit anyway.
		confCache := make(map[model.TxnID][]model.TxnID)
		confOf := func(id model.TxnID) []model.TxnID {
			if c, ok := confCache[id]; ok {
				return c
			}
			c := d.c.conflictSet(d.c.txns[id])
			confCache[id] = c
			return c
		}
		pO := d.adoptionForCached(now, confOf)
		// Stall safety (documented in DESIGN.md): in a cluster of finished
		// transactions all deferring to each other, the V_now/V_later
		// comparison can stay on "defer" indefinitely while every value
		// function decays in lockstep. If a pending transaction's conflict
		// set has no transaction still executing, waiting cannot produce
		// the commit V_later assumes; commit the most valuable such
		// transaction.
		var stalled *txnState
		for _, id := range sortedKeys(d.pending) {
			st, ok := d.pending[id]
			if !ok || !st.finished {
				delete(d.pending, id)
				continue
			}
			conf := confOf(id)
			if len(conf) == 0 || d.commitNowWins(st, conf, pO, confOf, now) {
				delete(d.pending, id)
				d.c.rt.Commit(st.opt)
				committed = true
				break // commit reshapes every conflict set; rescan
			}
			allFinished := true
			for _, cid := range conf {
				if !d.c.txns[cid].finished {
					allFinished = false
					break
				}
			}
			if allFinished && (stalled == nil ||
				st.t.Value(d.c.rt.K.Now()) > stalled.t.Value(d.c.rt.K.Now())) {
				stalled = st
			}
		}
		if !committed && stalled != nil {
			delete(d.pending, stalled.t.ID)
			d.c.rt.Commit(stalled.opt)
			committed = true
		}
		if !committed {
			return
		}
	}
}

// adoptionForCached computes Def. 5 adoption probabilities for all active
// transactions by fixed-point iteration (the definition is mutually
// recursive through the conflicting transactions' P_o), reusing the
// caller's conflict-set cache.
func (d *DC) adoptionForCached(now float64, confOf func(model.TxnID) []model.TxnID) map[model.TxnID]float64 {
	pOpt := make(map[model.TxnID]float64)
	ids := d.c.rt.ActiveIDs()
	for _, id := range ids {
		pOpt[id] = 1
	}
	for iter := 0; iter < 3; iter++ {
		for _, id := range ids {
			st := d.c.txns[id]
			if st == nil {
				continue
			}
			conf := confOf(id)
			vs := make([]float64, len(conf))
			ps := make([]float64, len(conf))
			for i, cid := range conf {
				vs[i] = d.c.txns[cid].t.Value(sim.Time(now))
				ps[i] = pOpt[cid]
			}
			po, _ := value.Adoption(st.t.Value(sim.Time(now)), vs, ps)
			pOpt[id] = po
		}
	}
	return pOpt
}

// shadowStates assembles the Def. 6 shadow list of transaction st. The
// optimistic shadow carries pO adoption mass; speculative shadows split
// the rest proportionally to the value-weight of the conflict they cover
// (Def. 5's P_i_u).
func (d *DC) shadowStates(st *txnState, pO map[model.TxnID]float64, confOf func(model.TxnID) []model.TxnID, now float64) []value.ShadowState {
	conf := confOf(st.t.ID)
	vs := make([]float64, len(conf))
	ps := make([]float64, len(conf))
	for i, cid := range conf {
		vs[i] = d.c.txns[cid].t.Value(sim.Time(now))
		ps[i] = pO[cid]
	}
	po, pSpec := value.Adoption(st.t.Value(sim.Time(now)), vs, ps)
	out := []value.ShadowState{{
		Executed: st.opt.EstExecutedTime(),
		Adoption: po,
		Finished: st.finished,
	}}
	for i, cid := range conf {
		sp := st.specs[cid]
		if sp == nil {
			continue // unaccounted conflict: no shadow carries its mass
		}
		out = append(out, value.ShadowState{
			Executed: sp.sh.EstExecutedTime(),
			Adoption: pSpec[i],
		})
	}
	return out
}

// expectedDeferredValue returns sum_k V(t+k*Delta) * P[finish in tick k]
// truncated at the 1-eps horizon.
func (d *DC) expectedDeferredValue(t *model.Txn, shadows []value.ShadowState, now float64) float64 {
	dist := execDist(t.Class)
	horizon := dist.TailHorizon(d.Eps)
	kMax := int(horizon/d.Delta) + 2
	if kMax > 200 {
		kMax = 200
	}
	total, prev := 0.0, 0.0
	for k := 1; k <= kMax; k++ {
		dt := float64(k) * d.Delta
		ef := value.ExpectedFinish(dist, shadows, dt)
		mass := ef - prev
		prev = ef
		if mass <= 0 {
			continue
		}
		total += t.Value(sim.Time(now+dt)) * mass
	}
	return total
}

// commitNowWins evaluates the Termination Rule comparison for finished st.
//
// V_now  = V_u(t) + sum_i EV_i(after u commits)
// V_later = sum_k EV_u(t+k*Delta) + sum_i EV_i(current shadows)
//
// The EV_i terms differ between the two sides through T_i's shadow
// configuration: committing u now aborts each conflicting T_i's exposed
// optimistic shadow, leaving its speculative shadow (or a restart) to
// carry on.
func (d *DC) commitNowWins(st *txnState, conf []model.TxnID, pO map[model.TxnID]float64, confOf func(model.TxnID) []model.TxnID, now float64) bool {
	u := st.t

	vNow := u.Value(sim.Time(now))
	vLater := d.expectedDeferredValue(u, d.shadowStates(st, pO, confOf, now), now)

	ws := st.opt.Log.WritePages()
	for _, cid := range conf {
		ist := d.c.txns[cid]
		// Later: T_i continues with its current shadows.
		vLater += d.expectedDeferredValue(ist.t, d.shadowStates(ist, pO, confOf, now), now)
		// Now: if T_i read u's writes its optimistic shadow dies; the
		// shadow waiting for u (or a scratch restart) carries on alone.
		f := ist.opt.Log.FirstReadOfAny(ws)
		var after []value.ShadowState
		if f < 0 {
			after = d.shadowStates(ist, pO, confOf, now)
		} else if sp := ist.specs[u.ID]; sp != nil && sp.sh.NextOp <= f {
			after = []value.ShadowState{{Executed: sp.sh.EstExecutedTime(), Adoption: 1}}
		} else {
			after = []value.ShadowState{{Executed: 0, Adoption: 1}}
		}
		vNow += d.expectedDeferredValue(ist.t, after, now)
	}
	return vNow >= vLater
}

// ---------------------------------------------------------------------------
// SCC-VW
// ---------------------------------------------------------------------------

// VW implements SCC with Voted Waiting (Sec. 3.3), the cheap approximation
// of SCC-DC: each executing transaction conflicting with a finished shadow
// votes for or against committing it by comparing two value estimates
// built from class-mean remaining execution times; votes are weighed by
// relative transaction value and the shadow commits iff the weighted
// commit indicator exceeds 50%.
type VW struct {
	c       *SCC
	Delta   float64 // re-evaluation period for parked waiters
	pending map[model.TxnID]*txnState
	// evaluating guards against re-entrant sweeps: a commit inside
	// evaluateAll triggers onCommitted, which calls evaluateAll again.
	evaluating bool
}

// NewVW returns SCC-kS extended with the SCC-VW Termination Rule.
func NewVW(k int, delta float64) *SCC {
	c := NewKS(k, LBFO)
	c.defr = &VW{Delta: delta, pending: make(map[model.TxnID]*txnState)}
	c.name = "SCC-VW"
	return c
}

func (v *VW) name() string { return "SCC-VW" }

func (v *VW) attach(c *SCC) {
	v.c = c
	v.tickLoop()
}

func (v *VW) tickLoop() {
	v.c.rt.K.After(sim.Time(v.Delta), func() {
		v.evaluateAll()
		v.tickLoop()
	})
}

// onFinish evaluates the finished shadow immediately (the paper's
// Termination Rule fires "whenever an optimistic shadow finishes").
func (v *VW) onFinish(st *txnState) {
	if v.shouldCommit(st) {
		v.c.rt.Commit(st.opt)
		return
	}
	v.pending[st.t.ID] = st
	v.c.rt.Metrics.CommitWaits++
}

func (v *VW) onCommitted(id model.TxnID) {
	delete(v.pending, id)
	v.evaluateAll()
}

func (v *VW) cancel(st *txnState) { delete(v.pending, st.t.ID) }

// evaluateAll re-runs the vote for every parked waiter until none can
// commit (each commit changes the conflict sets of the rest).
func (v *VW) evaluateAll() {
	if v.evaluating {
		return
	}
	v.evaluating = true
	defer func() { v.evaluating = false }()
	for {
		committed := false
		for _, id := range sortedKeys(v.pending) {
			st, ok := v.pending[id]
			if !ok || !st.finished {
				delete(v.pending, id)
				continue
			}
			if v.shouldCommit(st) {
				delete(v.pending, id)
				v.c.rt.Commit(st.opt)
				committed = true
				break
			}
		}
		if !committed {
			return
		}
	}
}

// shouldCommit computes the commit indicator CI_u (Defs. 8-10).
func (v *VW) shouldCommit(st *txnState) bool {
	now := float64(v.c.rt.K.Now())
	conf := v.c.conflictSet(st)
	if len(conf) == 0 {
		return true
	}
	// Stall safety (engineering addition, documented in DESIGN.md): if no
	// conflicting transaction is still executing, waiting cannot help —
	// the V_later estimates assumed a conflicter would finish and commit.
	anyRunning := false
	for _, cid := range conf {
		if !v.c.txns[cid].finished {
			anyRunning = true
			break
		}
	}
	if !anyRunning {
		return true
	}

	u := st.t
	vU := u.Value(sim.Time(now))
	// Relative weights w_i(t) with a small positive floor so transactions
	// deep past their deadlines cannot produce negative weights.
	weight := make(map[model.TxnID]float64, len(conf))
	totalW := 0.0
	for _, cid := range conf {
		w := v.c.txns[cid].t.Value(sim.Time(now))
		if w < 1e-9 {
			w = 1e-9
		}
		weight[cid] = w
		totalW += w
	}

	ci := 0.0
	ws := st.opt.Log.WritePages()
	for _, cid := range conf {
		ist := v.c.txns[cid]
		ti := ist.t
		eci := ti.Class.MeanExec()

		// sigma_u_i: executed time of T_i's shadow that accounts for the
		// conflict with u — the shadow T_i falls back on if u commits now.
		var sigmaUI float64
		f := ist.opt.Log.FirstReadOfAny(ws)
		switch {
		case f < 0:
			// T_i did not read u's writes; its optimistic shadow survives.
			sigmaUI = ist.opt.EstExecutedTime()
		case ist.specs[u.ID] != nil && ist.specs[u.ID].sh.NextOp <= f:
			sigmaUI = ist.specs[u.ID].sh.EstExecutedTime()
		default:
			sigmaUI = 0 // restart from scratch
		}
		vNow := vU + ti.Value(sim.Time(now+eci-sigmaUI))

		// later: when T_i's own optimistic shadow is expected to finish.
		sigmaOI := ist.opt.EstExecutedTime()
		later := now + eci - sigmaOI
		if later < now {
			later = now
		}
		var vLater float64
		if sp := st.specs[cid]; sp != nil {
			// u has a shadow for the conflict with T_i: T_i's commit
			// aborts u's finished shadow; u resumes from the fork.
			ecu := u.Class.MeanExec()
			sigmaIU := sp.sh.EstExecutedTime()
			vLater = ti.Value(sim.Time(later)) + u.Value(sim.Time(later+ecu-sigmaIU))
		} else {
			// No shadow: u's finished shadow survives T_i's commit only
			// if u never read T_i's writes; it commits right after.
			vLater = ti.Value(sim.Time(later)) + u.Value(sim.Time(later))
		}
		if vNow >= vLater {
			ci += weight[cid] / totalW
		}
	}
	return ci > 0.5
}

func sortedKeys(m map[model.TxnID]*txnState) []model.TxnID {
	ids := make([]model.TxnID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
