package core

import (
	"testing"

	"repro/internal/rtdbs"
	"repro/internal/workload"
)

// delta is a Termination Rule period of a quarter of the baseline mean
// execution time (240 ms), the granularity the paper's discrete commit
// clock suggests.
const delta = 0.06

func valueCfg(rate float64, seed int64, target int) rtdbs.Config {
	return rtdbs.Config{
		Workload:      workload.Baseline(rate, seed),
		Target:        target,
		Warmup:        20,
		CheckReads:    true,
		RecordHistory: true,
	}
}

func TestVWSerializable(t *testing.T) {
	for _, rate := range []float64{40, 120} {
		res := rtdbs.Run(valueCfg(rate, 1, 400), newChecked(func() *SCC { return NewVW(2, delta) }))
		if res.Truncated {
			t.Fatalf("rate %v: truncated", rate)
		}
		if err := res.History.Check(); err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		if res.Metrics.Committed < 400 {
			t.Fatalf("rate %v: committed %d", rate, res.Metrics.Committed)
		}
	}
}

func TestDCSerializable(t *testing.T) {
	for _, rate := range []float64{40, 100} {
		res := rtdbs.Run(valueCfg(rate, 2, 300), newChecked(func() *SCC { return NewDC(2, delta) }))
		if res.Truncated {
			t.Fatalf("rate %v: truncated", rate)
		}
		if err := res.History.Check(); err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		// Commit cascades within one Termination-Rule tick may overshoot
		// the target by a few.
		if res.Metrics.Committed < 300 {
			t.Fatalf("rate %v: committed %d", rate, res.Metrics.Committed)
		}
	}
}

func TestVWDeterministic(t *testing.T) {
	a := rtdbs.Run(valueCfg(100, 3, 300), NewVW(2, delta))
	b := rtdbs.Run(valueCfg(100, 3, 300), NewVW(2, delta))
	if *a.Metrics != *b.Metrics {
		t.Fatalf("nondeterministic SCC-VW:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
}

func TestDCDeterministic(t *testing.T) {
	a := rtdbs.Run(valueCfg(90, 4, 200), NewDC(2, delta))
	b := rtdbs.Run(valueCfg(90, 4, 200), NewDC(2, delta))
	if *a.Metrics != *b.Metrics {
		t.Fatalf("nondeterministic SCC-DC:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
}

func TestVWActuallyDefers(t *testing.T) {
	res := rtdbs.Run(valueCfg(130, 5, 400), NewVW(2, delta))
	if res.Metrics.CommitWaits == 0 {
		t.Fatal("SCC-VW never deferred a commit under contention")
	}
}

func TestDCAlwaysWaitsForTick(t *testing.T) {
	// Under SCC-DC every finished shadow waits at least until the next
	// tick, so with any contention at all CommitWaits must be large.
	res := rtdbs.Run(valueCfg(100, 6, 300), NewDC(2, delta))
	if res.Metrics.CommitWaits < res.Metrics.Committed {
		t.Fatalf("CommitWaits %d < Committed %d: DC must park every finish",
			res.Metrics.CommitWaits, res.Metrics.Committed)
	}
}

func TestVWNoWedgeAtHighLoad(t *testing.T) {
	res := rtdbs.Run(valueCfg(170, 7, 300), NewVW(2, delta))
	if res.Truncated {
		t.Fatal("SCC-VW wedged at high load")
	}
}

func TestDCNoWedgeAtHighLoad(t *testing.T) {
	res := rtdbs.Run(valueCfg(150, 8, 200), NewDC(2, delta))
	if res.Truncated {
		t.Fatal("SCC-DC wedged at high load")
	}
}

func TestVWTwoClassWorkload(t *testing.T) {
	res := rtdbs.Run(rtdbs.Config{
		Workload: workload.TwoClass(100, 9), Target: 400, Warmup: 20,
		CheckReads: true, RecordHistory: true,
	}, newChecked(func() *SCC { return NewVW(2, delta) }))
	if res.Truncated {
		t.Fatal("truncated")
	}
	if err := res.History.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestVWImprovesSystemValueTwoClass reproduces the Fig. 14-b claim: with
// heterogeneous value classes, SCC-VW's value-cognizant deferment adds
// system value over value-blind SCC-2S. Summed over matched seeds at a
// contended load.
func TestVWImprovesSystemValueTwoClass(t *testing.T) {
	var vw, scc float64
	for seed := int64(1); seed <= 4; seed++ {
		cfgv := rtdbs.Config{Workload: workload.TwoClass(130, seed), Target: 400, Warmup: 20}
		a := rtdbs.Run(cfgv, NewVW(2, delta))
		b := rtdbs.Run(cfgv, NewTwoShadow())
		vw += a.Metrics.SystemValuePct()
		scc += b.Metrics.SystemValuePct()
	}
	t.Logf("two-class system value: SCC-VW %.1f%%, SCC-2S %.1f%%", vw/4, scc/4)
	// Allow a small tolerance: the claim is "no worse, usually better".
	if vw < scc-8 {
		t.Fatalf("SCC-VW system value %.1f%% much worse than SCC-2S %.1f%%", vw/4, scc/4)
	}
}

// TestVWvsSCC2SOneClass reproduces Fig. 14-a / Fig. 15: with a single
// value class, SCC-VW's improvement is minor (speculation already caps the
// penalty of ill-timed commits).
func TestVWvsSCC2SOneClass(t *testing.T) {
	var vw, scc float64
	for seed := int64(1); seed <= 3; seed++ {
		a := rtdbs.Run(valueCfg(120, seed, 400), NewVW(2, delta))
		b := rtdbs.Run(valueCfg(120, seed, 400), NewTwoShadow())
		vw += a.Metrics.SystemValuePct()
		scc += b.Metrics.SystemValuePct()
	}
	t.Logf("one-class system value: SCC-VW %.1f%%, SCC-2S %.1f%%", vw/3, scc/3)
	if vw < scc-10 {
		t.Fatalf("SCC-VW one-class system value %.1f%% collapsed vs SCC-2S %.1f%%", vw/3, scc/3)
	}
}
