// Package core implements the paper's primary contribution: Speculative
// Concurrency Control.
//
// SCC-kS (Sec. 2.1) maintains, for every uncommitted transaction, one
// optimistic shadow that executes as under OCC-BC plus up to k-1
// speculative shadows. A speculative shadow accounts for one detected
// read-write conflict with one other uncommitted transaction: it is a fork
// of the transaction's execution blocked just before the first read of a
// page that transaction wrote, ready to resume — rather than restart —
// should the conflict materialize (the other transaction commits first).
//
// The protocol is expressed as the paper's five rules: Start (OnArrival),
// Read and Write (conflict detection in OnOpDone), Blocking (CanProceed),
// and Commit (OnCommitted). SCC-2S is the k=2 member whose single
// speculative shadow, under the LBFO replacement policy, ends up blocked
// at the earliest detected conflict — the paper's pessimistic shadow.
//
// SCC-DC and SCC-VW (Sec. 3) plug in as deferral policies: finished
// optimistic shadows wait for a value-cognizant Termination Rule instead
// of committing immediately; see defer.go.
package core

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/rtdbs"
)

// Policy selects which detected conflicts the limited speculative shadows
// cover once the k-1 budget is exhausted.
type Policy int

const (
	// LBFO (Latest-Blocked-First-Out, the paper's policy) replaces the
	// shadow with the latest block point when a new conflict has an
	// earlier one, so the shadows cover the l earliest conflicts.
	LBFO Policy = iota
	// FIFO keeps the first k-1 detected conflicts regardless of block
	// points (an ablation baseline).
	FIFO
	// Priority replaces the shadow covering the lowest-priority (EDF)
	// conflicting transaction when the new conflict's transaction has
	// higher priority: under EDF the tighter-deadline conflicter is the
	// more probable earlier committer, so its serialization order is the
	// one most worth covering (the paper's Sec. 2.1 suggestion that
	// "deadlines and priorities of the conflicting transactions can be
	// utilized so as to account for the most probable serialization
	// orders").
	Priority
)

// spec is one speculative shadow: a fork blocked at blockAt, speculating
// that transaction waitFor commits before us.
type spec struct {
	sh      *rtdbs.Shadow
	st      *txnState
	waitFor model.TxnID
	blockAt int
}

// txnState is the protocol state of one active transaction.
type txnState struct {
	t     *model.Txn
	opt   *rtdbs.Shadow
	specs map[model.TxnID]*spec
	// finished marks an optimistic shadow awaiting a deferred commit
	// (SCC-DC / SCC-VW).
	finished bool
}

// sortedSpecs returns the transaction's speculative shadows ordered by the
// transaction they wait for (deterministic iteration).
func (st *txnState) sortedSpecs() []*spec {
	out := make([]*spec, 0, len(st.specs))
	for _, sp := range st.specs {
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].waitFor < out[j].waitFor })
	return out
}

// SCC is the SCC-kS concurrency control manager, optionally extended with
// a value-cognizant commit deferral (SCC-DC, SCC-VW).
type SCC struct {
	rt     *rtdbs.Runtime
	k      int
	kFunc  func(*model.Txn) int // per-transaction budget override (SCC-AK)
	policy Policy
	defr   deferral
	name   string

	txns map[model.TxnID]*txnState
	// readers/writers index the pages read/written by current optimistic
	// shadows of uncommitted transactions.
	readers   map[model.PageID]map[model.TxnID]struct{}
	writers   map[model.PageID]map[model.TxnID]struct{}
	regReads  map[model.TxnID][]model.PageID
	regWrites map[model.TxnID][]model.PageID

	// SelfCheck enables protocol invariant verification after every hook;
	// a violation panics. Used by tests.
	SelfCheck bool
}

// NewKS returns an SCC-kS manager allowing at most k shadows per
// transaction (one optimistic + k-1 speculative). k must be >= 1; k = 1
// degenerates to OCC-BC with restarts.
func NewKS(k int, policy Policy) *SCC {
	if k < 1 {
		panic("core: k must be >= 1")
	}
	name := fmt.Sprintf("SCC-%dS", k)
	if policy == FIFO {
		name += "-FIFO"
	}
	return &SCC{
		k: k, policy: policy, name: name,
		txns:      make(map[model.TxnID]*txnState),
		readers:   make(map[model.PageID]map[model.TxnID]struct{}),
		writers:   make(map[model.PageID]map[model.TxnID]struct{}),
		regReads:  make(map[model.TxnID][]model.PageID),
		regWrites: make(map[model.TxnID][]model.PageID),
	}
}

// NewTwoShadow returns SCC-2S (Sec. 2.2): one optimistic plus one
// pessimistic shadow blocked at the earliest detected conflict.
func NewTwoShadow() *SCC {
	c := NewKS(2, LBFO)
	c.name = "SCC-2S"
	return c
}

// NewCB returns Conflict-Based SCC (SCC-CB, Sec. 2): the shadow budget is
// effectively unbounded, so every detected conflict gets its own
// speculative shadow — at most one per conflicting transaction, the
// paper's "no more than n shadows per transaction" bound.
func NewCB() *SCC {
	c := NewKS(1<<30, LBFO)
	c.name = "SCC-CB"
	return c
}

// Name implements rtdbs.CCM.
func (c *SCC) Name() string { return c.name }

// Attach implements rtdbs.CCM.
func (c *SCC) Attach(rt *rtdbs.Runtime) {
	c.rt = rt
	if c.defr != nil {
		c.defr.attach(c)
	}
}

// K returns the shadow budget.
func (c *SCC) K() int { return c.k }

// budget returns the shadow budget of one transaction: the fixed k, or the
// adaptive per-transaction budget when configured.
func (c *SCC) budget(t *model.Txn) int {
	if c.kFunc != nil {
		if k := c.kFunc(t); k >= 1 {
			return k
		}
		return 1
	}
	return c.k
}

// NewAdaptive returns SCC with a per-transaction shadow budget: kFunc maps
// each transaction to its k, realizing Sec. 2.1's rationing of redundancy
// by urgency and criticalness ("the value of k for a particular
// transaction reflects the amount of speculation that this transaction is
// allowed to perform").
func NewAdaptive(kFunc func(*model.Txn) int, policy Policy) *SCC {
	c := NewKS(2, policy)
	c.kFunc = kFunc
	c.name = "SCC-AK"
	return c
}

// ValueRationedK returns a budget function that splits a shadow pool by
// transaction class worth: transactions at or above the value threshold
// get kHigh shadows, the rest kLow.
func ValueRationedK(threshold float64, kHigh, kLow int) func(*model.Txn) int {
	return func(t *model.Txn) int {
		if t.Class.Value >= threshold {
			return kHigh
		}
		return kLow
	}
}

// Start Rule: create the optimistic shadow.
func (c *SCC) OnArrival(t *model.Txn) {
	st := &txnState{t: t, specs: make(map[model.TxnID]*spec)}
	c.txns[t.ID] = st
	st.opt = c.rt.Spawn(t, 0, nil)
	c.rt.Kick(st.opt)
}

// Blocking Rule: a speculative shadow proceeds only up to its block point.
// It also never runs ahead of its transaction's optimistic shadow: the
// fork REPLAYS operations the optimistic execution has already performed
// (Fig. 4's re-execution); letting it race ahead would let it observe
// page versions the optimistic shadow never saw, which the Commit Rule's
// exposure analysis (computed over the optimistic log) could then miss.
func (c *SCC) CanProceed(sh *rtdbs.Shadow) bool {
	if sp, ok := sh.PD.(*spec); ok {
		return sh.NextOp < sp.blockAt && sh.NextOp < sp.st.opt.NextOp
	}
	return true
}

// OnOpDone performs conflict detection (Read and Write rules). Only the
// current optimistic shadow of a transaction drives detection: speculative
// shadows execute prefixes whose conflicts were already detected (or are
// re-detected after a promotion, when the promoted shadow re-executes).
func (c *SCC) OnOpDone(sh *rtdbs.Shadow) {
	st := c.txns[sh.Txn.ID]
	if st == nil || st.opt != sh {
		return
	}
	r := sh.Txn.ID
	op := sh.Txn.Ops[sh.NextOp-1]
	idx := sh.NextOp - 1
	if op.Write {
		c.registerWrite(r, op.Page)
		// Write Rule: a write-after-read conflict develops for every
		// uncommitted transaction whose optimistic shadow read this page.
		for _, rid := range sortedIDs(c.readers[op.Page]) {
			if rid == r {
				continue
			}
			rst := c.txns[rid]
			if rst == nil {
				continue
			}
			if i := rst.opt.Log.FirstReadIndex(op.Page); i >= 0 {
				c.newConflict(rst, r, i, false)
			}
		}
	} else {
		c.registerRead(r, op.Page)
		// Read Rule: a read-after-write conflict develops with every
		// uncommitted transaction that wrote this page.
		for _, wid := range sortedIDs(c.writers[op.Page]) {
			if wid == r {
				continue
			}
			if c.txns[wid] != nil {
				c.newConflict(st, wid, idx, true)
			}
		}
	}
	// The optimistic shadow advanced: parked speculative shadows may now
	// replay one more operation.
	for _, sp := range st.sortedSpecs() {
		c.rt.Kick(sp.sh)
	}
	c.selfCheck()
}

// newConflict updates the speculative shadow set of st for a detected
// conflict with u whose first conflicting read is at op index i. fromRead
// marks Read Rule detections, where the conflicting read is the operation
// that just completed and the optimistic shadow's pre-read state is still
// available as a zero-cost fork point.
func (c *SCC) newConflict(st *txnState, u model.TxnID, i int, fromRead bool) {
	if sp := st.specs[u]; sp != nil {
		if sp.blockAt <= i {
			return // an earlier block point already covers this conflict
		}
		// The new conflict precedes the shadow's assumption (Fig. 5):
		// replace it with one blocked before the earlier read.
		c.abortSpec(st, sp)
		c.createSpec(st, u, i, fromRead)
		return
	}
	k := c.budget(st.t)
	if len(st.specs) < k-1 {
		c.createSpec(st, u, i, fromRead)
		return
	}
	if c.policy == FIFO || k <= 1 {
		return // budget exhausted; handled suboptimally at commit time
	}
	if c.policy == Priority {
		// Replace the shadow covering the lowest-priority conflicting
		// transaction if the new conflicter outranks it.
		uTxn := c.txns[u]
		if uTxn == nil {
			return
		}
		var lowest *spec
		for _, sp := range st.sortedSpecs() {
			wst := c.txns[sp.waitFor]
			if wst == nil {
				continue
			}
			if lowest == nil || c.txns[lowest.waitFor].t.HigherPriority(wst.t) {
				lowest = sp
			}
		}
		if lowest != nil && uTxn.t.HigherPriority(c.txns[lowest.waitFor].t) {
			c.abortSpec(st, lowest)
			c.createSpec(st, u, i, fromRead)
		}
		return
	}
	// LBFO (Fig. 6): replace the shadow with the latest block point if the
	// new conflict blocks earlier.
	var latest *spec
	for _, sp := range st.sortedSpecs() {
		if latest == nil || sp.blockAt > latest.blockAt {
			latest = sp
		}
	}
	if latest != nil && latest.blockAt > i {
		c.abortSpec(st, latest)
		c.createSpec(st, u, i, fromRead)
	}
}

// createSpec forks a speculative shadow for the conflict (u, block point i)
// following the paper's donor rules: a read-after-write conflict detected
// at the optimistic shadow's current read forks its state just before that
// read at zero cost; otherwise (Fig. 4) the fork comes from the latest
// speculative shadow that has not yet read past i and must re-execute up
// to the block point; with no donor it starts from scratch.
func (c *SCC) createSpec(st *txnState, u model.TxnID, i int, fromRead bool) {
	var sh *rtdbs.Shadow
	if fromRead && st.opt.NextOp == i+1 && !st.finished {
		sh = c.rt.ForkPrefix(st.opt, i)
	} else {
		var donor *spec
		for _, sp := range st.sortedSpecs() {
			if sp.sh.NextOp <= i && (donor == nil || sp.sh.NextOp > donor.sh.NextOp) {
				donor = sp
			}
		}
		if donor != nil {
			sh = c.rt.Fork(donor.sh)
		} else {
			sh = c.rt.Spawn(st.t, 0, nil)
		}
	}
	sp := &spec{sh: sh, st: st, waitFor: u, blockAt: i}
	sh.PD = sp
	st.specs[u] = sp
	if c.SelfCheck && sh.NextOp > st.opt.NextOp {
		panic(fmt.Sprintf("core: createSpec txn %d waitFor %d: new spec NextOp %d > opt NextOp %d (i=%d, opt sid %d)",
			st.t.ID, u, sh.NextOp, st.opt.NextOp, i, st.opt.SID))
	}
	c.rt.Metrics.ShadowForks++
	// The fork may need to run up to its block point (or is parked there);
	// schedule it.
	c.rt.Kick(sh)
}

func (c *SCC) abortSpec(st *txnState, sp *spec) {
	c.rt.AbortShadow(sp.sh)
	delete(st.specs, sp.waitFor)
	c.rt.Metrics.ShadowAborts++
}

// OnFinish: without a deferral policy the optimistic shadow validates and
// commits immediately (forward validation always succeeds).
func (c *SCC) OnFinish(sh *rtdbs.Shadow) {
	st := c.txns[sh.Txn.ID]
	if st == nil || st.opt != sh {
		panic(fmt.Sprintf("core: non-optimistic shadow %d of txn %d finished", sh.SID, sh.Txn.ID))
	}
	if c.defr != nil {
		if !st.finished {
			st.finished = true
			c.defr.onFinish(st)
		}
		return
	}
	c.rt.Commit(sh)
}

// Commit Rule (OnCommitted): for every transaction conflicting with the
// committer, abort its exposed shadows and adopt the best valid
// speculative shadow — resuming from its block point — or restart from
// scratch if none survives.
func (c *SCC) OnCommitted(t *model.Txn, committed *rtdbs.Shadow) {
	u := t.ID
	c.unregister(u)
	delete(c.txns, u)
	ws := committed.Log.WritePages()

	for _, rid := range c.rt.ActiveIDs() {
		st := c.txns[rid]
		if st == nil {
			continue
		}
		f := st.opt.Log.FirstReadOfAny(ws)
		if f < 0 {
			// No materialized conflict. A shadow speculating on u's
			// commit is now pointless: the optimistic shadow already
			// embodies the serialization order u -> r.
			if sp := st.specs[u]; sp != nil {
				c.abortSpec(st, sp)
			}
			continue
		}
		c.adoptOrRestart(st, u, ws, f)
	}
	if c.defr != nil {
		c.defr.onCommitted(u)
	}
	c.selfCheck()
}

// adoptOrRestart replaces st's invalidated optimistic shadow after the
// commit of u, whose write set ws was first read by the optimistic shadow
// at op index f.
func (c *SCC) adoptOrRestart(st *txnState, u model.TxnID, ws []model.PageID, f int) {
	// A shadow is valid iff its executed prefix read none of ws. f is the
	// first read of any ws page in the optimistic log, every live shadow
	// executes the same op list, and the optimistic shadow has the
	// furthest progress — so validity is exactly NextOp <= f.
	var best *spec
	for _, sp := range st.sortedSpecs() {
		if sp.sh.NextOp > f {
			continue
		}
		if best == nil ||
			sp.sh.NextOp > best.sh.NextOp ||
			sp.sh.NextOp == best.sh.NextOp && sp.waitFor == u {
			best = sp
		}
	}
	wasFinished := st.finished
	st.finished = false
	if c.defr != nil && wasFinished {
		c.defr.cancel(st)
	}

	if best == nil {
		// Commit Rule, degenerate case: no valid shadow (the conflict was
		// unaccounted and everything is exposed) — restart from scratch.
		for len(st.specs) > 0 {
			c.abortSpec(st, st.sortedSpecs()[0])
		}
		c.unregister(st.t.ID)
		st.opt = c.rt.Restart(st.t)
		return
	}

	// Promotion (Commit Rule cases 1 and 2): the best valid shadow
	// becomes the new optimistic shadow and resumes from its block point.
	c.rt.Metrics.Promotions++
	delete(st.specs, best.waitFor)
	best.sh.PD = nil
	c.rt.AbortShadow(st.opt)
	st.opt = best.sh

	// Shadows that read past f exposed themselves to ws; abort them. A
	// surviving shadow waiting for the committed u is obsolete as well.
	// Survivors may hold an in-flight operation issued while the old
	// (further-along) optimistic shadow was current; park them so they
	// re-gate against the promoted shadow's progress.
	for _, sp := range st.sortedSpecs() {
		if sp.sh.NextOp > f || sp.waitFor == u {
			c.abortSpec(st, sp)
			continue
		}
		c.rt.Park(sp.sh)
		c.rt.Kick(sp.sh)
	}

	// Reindex from the new optimistic log and re-run conflict detection
	// over its inherited prefix: conflicts past the promoted shadow's
	// progress evaporated with the old optimistic shadow; conflicts within
	// the prefix may need (re-)covering.
	c.reindex(st)
	c.rebuildConflicts(st)
	c.rt.Kick(st.opt)
	if c.SelfCheck {
		for _, sp := range st.sortedSpecs() {
			if sp.sh.NextOp > st.opt.NextOp {
				panic(fmt.Sprintf("core: post-promotion txn %d: spec for %d NextOp %d > opt NextOp %d (f=%d, best sid %d)",
					st.t.ID, sp.waitFor, sp.sh.NextOp, st.opt.NextOp, f, st.opt.SID))
			}
		}
	}
}

// registerRead/registerWrite/unregister maintain the page access indexes.
func (c *SCC) registerRead(id model.TxnID, p model.PageID) {
	m := c.readers[p]
	if m == nil {
		m = make(map[model.TxnID]struct{})
		c.readers[p] = m
	}
	if _, ok := m[id]; !ok {
		m[id] = struct{}{}
		c.regReads[id] = append(c.regReads[id], p)
	}
}

func (c *SCC) registerWrite(id model.TxnID, p model.PageID) {
	m := c.writers[p]
	if m == nil {
		m = make(map[model.TxnID]struct{})
		c.writers[p] = m
	}
	if _, ok := m[id]; !ok {
		m[id] = struct{}{}
		c.regWrites[id] = append(c.regWrites[id], p)
	}
}

func (c *SCC) unregister(id model.TxnID) {
	for _, p := range c.regReads[id] {
		delete(c.readers[p], id)
	}
	for _, p := range c.regWrites[id] {
		delete(c.writers[p], id)
	}
	delete(c.regReads, id)
	delete(c.regWrites, id)
}

// reindex rebuilds the page indexes for st from its (new) optimistic log.
func (c *SCC) reindex(st *txnState) {
	id := st.t.ID
	c.unregister(id)
	for _, obs := range st.opt.Log.Reads() {
		c.registerRead(id, obs.Page)
	}
	for _, p := range st.opt.Log.WritePages() {
		c.registerWrite(id, p)
	}
}

// rebuildConflicts re-detects conflicts covered by the new optimistic
// shadow's inherited prefix (both directions), re-forking speculative
// shadows where the budget allows.
func (c *SCC) rebuildConflicts(st *txnState) {
	r := st.t.ID
	// Reads in our prefix against others' writes.
	for _, obs := range st.opt.Log.Reads() {
		for _, wid := range sortedIDs(c.writers[obs.Page]) {
			if wid == r || c.txns[wid] == nil {
				continue
			}
			if i := st.opt.Log.FirstReadIndex(obs.Page); i >= 0 {
				c.newConflict(st, wid, i, false)
			}
		}
	}
}

func sortedIDs(m map[model.TxnID]struct{}) []model.TxnID {
	ids := make([]model.TxnID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// selfCheck verifies the protocol invariants (used under SelfCheck).
func (c *SCC) selfCheck() {
	if !c.SelfCheck {
		return
	}
	if err := c.CheckInvariants(); err != nil {
		panic(err)
	}
}

// CheckInvariants validates the structural invariants of the shadow sets:
// at most k-1 speculative shadows per transaction, live shadows only, the
// optimistic shadow is always furthest along, speculative shadows never
// run past their block point, and no speculative shadow has read a page
// written by the transaction it waits for.
func (c *SCC) CheckInvariants() error {
	for _, id := range c.rt.ActiveIDs() {
		st := c.txns[id]
		if st == nil {
			return fmt.Errorf("core: active txn %d has no protocol state", id)
		}
		if st.opt == nil || st.opt.Aborted() {
			return fmt.Errorf("core: txn %d optimistic shadow dead", id)
		}
		if k := c.budget(st.t); len(st.specs) > k-1 {
			return fmt.Errorf("core: txn %d has %d speculative shadows, budget %d", id, len(st.specs), k-1)
		}
		for _, sp := range st.sortedSpecs() {
			if sp.sh.Aborted() {
				return fmt.Errorf("core: txn %d keeps aborted spec shadow (waitFor %d)", id, sp.waitFor)
			}
			if sp.sh.NextOp > sp.blockAt {
				return fmt.Errorf("core: txn %d spec for %d ran past block point (%d > %d)",
					id, sp.waitFor, sp.sh.NextOp, sp.blockAt)
			}
			if sp.sh.NextOp > st.opt.NextOp {
				return fmt.Errorf("core: txn %d spec for %d ahead of optimistic (%d > %d; spec sid %d start %d blockAt %d; opt sid %d start %d finished %v)",
					id, sp.waitFor, sp.sh.NextOp, st.opt.NextOp, sp.sh.SID, sp.sh.StartOp, sp.blockAt, st.opt.SID, st.opt.StartOp, st.opt.Finished)
			}
			if wst := c.txns[sp.waitFor]; wst != nil {
				if i := sp.sh.Log.FirstReadOfAny(wst.opt.Log.WritePages()); i >= 0 {
					return fmt.Errorf("core: txn %d spec for %d read page written by %d at index %d",
						id, sp.waitFor, sp.waitFor, i)
				}
			} else {
				return fmt.Errorf("core: txn %d spec waits for inactive txn %d", id, sp.waitFor)
			}
		}
	}
	return nil
}
