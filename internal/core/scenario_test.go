package core

// Scenario tests replaying the paper's illustrative schedules (Figs. 2 and
// 4-8) against hand-built transactions with exact timing, asserting the
// protocol produces the shadow structures the figures depict.

import (
	"testing"

	"repro/internal/model"
	"repro/internal/rtdbs"
	"repro/internal/sim"
	"repro/internal/workload"
)

type scenario struct {
	t  *testing.T
	c  *SCC
	rt *rtdbs.Runtime
}

func newScenario(t *testing.T, k int, policy Policy) *scenario {
	c := NewKS(k, policy)
	c.SelfCheck = true
	cfg := rtdbs.Config{
		Workload:      workload.Baseline(1, 1),
		Target:        100,
		CheckReads:    true,
		RecordHistory: true,
	}
	return &scenario{t: t, c: c, rt: rtdbs.New(cfg, c)}
}

// admitAt schedules a hand-built transaction.
func (s *scenario) admitAt(at float64, id model.TxnID, opTime float64, ops []model.Op) *model.Txn {
	cl := &model.Class{
		Name: "scenario", NumOps: len(ops), MeanOpTime: opTime,
		SlackFactor: 2, Value: 100, PenaltyPerSlack: 1, Frequency: 1,
	}
	tx := &model.Txn{
		ID: id, Class: cl, Arrival: sim.Time(at),
		Deadline: sim.Time(at + 1000),
		Ops:      ops, OpTime: opTime,
	}
	s.rt.K.At(sim.Time(at), func() { s.rt.Admit(tx) })
	return tx
}

func (s *scenario) specOf(r, u model.TxnID) *spec {
	st := s.c.txns[r]
	if st == nil {
		return nil
	}
	return st.specs[u]
}

func (s *scenario) finish() {
	s.rt.K.Run()
	if err := s.c.CheckInvariants(); err != nil {
		s.t.Fatal(err)
	}
}

const (
	pX model.PageID = 3
	pY model.PageID = 1
	pZ model.PageID = 2
	pA model.PageID = 4
	pB model.PageID = 5
	pC model.PageID = 6
	pP model.PageID = 7
	pQ model.PageID = 8
)

func r(p model.PageID) model.Op { return model.Op{Page: p} }
func w(p model.PageID) model.Op { return model.Op{Page: p, Write: true} }

// TestFig2aUndevelopedConflict: T2 reads x that T1 wrote (uncommitted), but
// T2 validates first. T2 commits undisturbed; its speculative shadow is
// simply discarded (Fig. 2-a).
func TestFig2aUndevelopedConflict(t *testing.T) {
	s := newScenario(t, 2, LBFO)
	// T1 writes x at 1.0, finishes at 3.0.
	s.admitAt(0, 1, 1.0, []model.Op{w(pX), w(pA), w(pB)})
	// T2 reads x at 1.5 (after T1's uncommitted write), finishes at 1.5*3=...
	t2 := s.admitAt(0, 2, 0.5, []model.Op{r(pX), r(pQ), r(pC)})
	s.finish()

	m := s.rt.Metrics
	if m.Committed != 2 {
		t.Fatalf("committed %d, want 2", m.Committed)
	}
	if m.ShadowForks != 1 {
		t.Fatalf("forks = %d, want 1 (T2's shadow for the x conflict)", m.ShadowForks)
	}
	if m.Promotions != 0 || m.Restarts != 0 {
		t.Fatalf("promotions %d restarts %d, want 0/0", m.Promotions, m.Restarts)
	}
	// T2 committed before T1, reading the initial version of x.
	recs := s.rt.History().Records()
	if recs[0].ID != t2.ID {
		t.Fatalf("first commit was txn %d, want T2", recs[0].ID)
	}
	for _, obs := range recs[0].Reads {
		if obs.Page == pX && obs.Version != 0 {
			t.Fatalf("T2 read x version %d, want initial", obs.Version)
		}
	}
	if err := s.rt.History().Check(); err != nil {
		t.Fatal(err)
	}
}

// TestFig2bDevelopedConflict: T1 validates first; T2's optimistic shadow is
// aborted and its speculative shadow is promoted, resuming from the
// conflicting read instead of restarting (Fig. 2-b).
func TestFig2bDevelopedConflict(t *testing.T) {
	s := newScenario(t, 2, LBFO)
	// T1: Wx at 1.0, finishes and commits at 2.0.
	s.admitAt(0, 1, 1.0, []model.Op{w(pX), w(pA)})
	// T2: Rx at 1.0 (same instant, after T1's write event), Rq at 2.0;
	// T1's commit at 2.0 fires first (earlier scheduling order).
	s.admitAt(0, 2, 1.0, []model.Op{r(pX), r(pQ)})
	s.finish()

	m := s.rt.Metrics
	if m.Committed != 2 {
		t.Fatalf("committed %d, want 2", m.Committed)
	}
	if m.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", m.Promotions)
	}
	if m.Restarts != 0 {
		t.Fatalf("restarts = %d, want 0: SCC resumes, never restarts here", m.Restarts)
	}
	if err := s.rt.History().Check(); err != nil {
		t.Fatal(err)
	}
}

// TestFig4DonorFork: a write-after-read conflict cannot fork off the
// optimistic shadow (it already read the object); the fork comes from the
// latest speculative shadow before the conflict point and re-executes up
// to the new block point.
func TestFig4DonorFork(t *testing.T) {
	s := newScenario(t, 4, LBFO)
	// T1 reads y,z,x,a,b,c at 1..6.
	s.admitAt(0, 1, 1.0, []model.Op{r(pY), r(pZ), r(pX), r(pA), r(pB), r(pC)})
	// T2 writes z at 2.3 (after T1's read of z at 2.0): conflict at idx 1.
	s.admitAt(0, 2, 2.3, []model.Op{w(pZ), w(pP)})
	// T3 writes x at 3.4 (after T1's read of x at 3.0): conflict at idx 2.
	s.admitAt(1.6, 3, 1.8, []model.Op{w(pX), w(pQ)})

	s.rt.K.RunUntil(4.5)
	spA := s.specOf(1, 2)
	spB := s.specOf(1, 3)
	if spA == nil || spB == nil {
		t.Fatalf("expected shadows for both conflicts, got %v %v", spA, spB)
	}
	if spA.blockAt != 1 || spA.sh.StartOp != 0 {
		t.Fatalf("T2-shadow blockAt %d StartOp %d, want 1/0 (scratch fork)", spA.blockAt, spA.sh.StartOp)
	}
	if spB.blockAt != 2 || spB.sh.StartOp != 1 {
		t.Fatalf("T3-shadow blockAt %d StartOp %d, want 2/1 (forked off the T2-shadow)", spB.blockAt, spB.sh.StartOp)
	}
	if spB.sh.NextOp != 2 {
		t.Fatalf("T3-shadow re-executed to %d, want block point 2", spB.sh.NextOp)
	}
	if !spB.sh.Log.ReadPage(pY) {
		t.Fatal("T3-shadow missing inherited read of y")
	}

	// T2 commits at 4.6: the T2-shadow (valid) is promoted; the T3-shadow
	// read z (exposed) and is aborted.
	s.rt.K.RunUntil(4.7)
	st := s.c.txns[1]
	if st == nil {
		t.Fatal("T1 vanished")
	}
	if st.opt != spA.sh {
		t.Fatal("promoted optimistic is not the T2-shadow")
	}
	if !spB.sh.Aborted() {
		t.Fatal("exposed T3-shadow was not aborted")
	}
	if s.rt.Metrics.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", s.rt.Metrics.Promotions)
	}
	s.finish()
	if s.rt.Metrics.Restarts != 0 {
		t.Fatalf("restarts = %d, want 0", s.rt.Metrics.Restarts)
	}
	if err := s.rt.History().Check(); err != nil {
		t.Fatal(err)
	}
}

// TestFig5EarlierConflictReplacesShadow: a second conflict with the same
// transaction at an earlier read replaces the existing shadow with one
// blocked before the earlier read.
func TestFig5EarlierConflictReplacesShadow(t *testing.T) {
	s := newScenario(t, 3, LBFO)
	// T1 reads x,y,z then filler; reads at 1,2,3,...
	s.admitAt(0, 1, 1.0, []model.Op{r(pX), r(pY), r(pZ), r(pA), r(pB), r(pC), r(pP), r(pQ)})
	// T2 writes z at 3.2 then x at 6.4.
	s.admitAt(0, 2, 3.2, []model.Op{w(pZ), w(pX), w(pP)})

	s.rt.K.RunUntil(5.0)
	sp := s.specOf(1, 2)
	if sp == nil || sp.blockAt != 2 {
		t.Fatalf("after Wz: shadow blockAt = %v, want 2", sp)
	}
	s.rt.K.RunUntil(7.0)
	sp2 := s.specOf(1, 2)
	if sp2 == nil || sp2.blockAt != 0 {
		t.Fatalf("after Wx: shadow blockAt = %v, want replacement at 0", sp2)
	}
	if sp2 == sp {
		t.Fatal("shadow was not replaced")
	}
	if !sp.sh.Aborted() {
		t.Fatal("old shadow not aborted")
	}
	if s.rt.Metrics.ShadowAborts < 1 {
		t.Fatal("shadow abort not counted")
	}
	s.finish()
	if err := s.rt.History().Check(); err != nil {
		t.Fatal(err)
	}
}

// TestFig6LBFOReplacement: with the budget exhausted, a new conflict with
// an earlier block point replaces the shadow with the latest block point.
func TestFig6LBFOReplacement(t *testing.T) {
	s := newScenario(t, 3, LBFO) // 2 speculative shadows
	// T1 reads x,y,z + filler at 1,2,3,...
	s.admitAt(0, 1, 1.0, []model.Op{r(pX), r(pY), r(pZ), r(pA), r(pB), r(pC), r(pP), r(pQ)})
	// T3 writes y at 2.5 -> conflict at idx 1. Commits late (10.0).
	s.admitAt(0, 3, 2.5, []model.Op{w(pY), w(model.PageID(60)), w(model.PageID(61)), w(model.PageID(62))})
	// T4 writes z at 3.5 -> conflict at idx 2 (budget now full).
	s.admitAt(0.4, 4, 3.1, []model.Op{w(pZ), w(model.PageID(71)), w(model.PageID(72))})
	// T2 writes x at 4.5 -> conflict at idx 0: LBFO replaces the idx-2 shadow.
	s.admitAt(0.5, 2, 4.0, []model.Op{w(pX), w(model.PageID(73))})

	s.rt.K.RunUntil(5.0)
	if sp := s.specOf(1, 3); sp == nil || sp.blockAt != 1 {
		t.Fatalf("T3 shadow = %v, want kept at blockAt 1", sp)
	}
	if sp := s.specOf(1, 4); sp != nil {
		t.Fatalf("T4 shadow still present (blockAt %d), want LBFO-replaced", sp.blockAt)
	}
	if sp := s.specOf(1, 2); sp == nil || sp.blockAt != 0 {
		t.Fatalf("T2 shadow = %v, want created at blockAt 0", sp)
	}
	s.finish()
	if err := s.rt.History().Check(); err != nil {
		t.Fatal(err)
	}
}

// TestFig6FIFOIgnoresNewConflict: under the FIFO ablation policy the new
// conflict is ignored instead.
func TestFig6FIFOIgnoresNewConflict(t *testing.T) {
	s := newScenario(t, 3, FIFO)
	s.admitAt(0, 1, 1.0, []model.Op{r(pX), r(pY), r(pZ), r(pA), r(pB), r(pC), r(pP), r(pQ)})
	s.admitAt(0, 3, 2.5, []model.Op{w(pY), w(model.PageID(60)), w(model.PageID(61)), w(model.PageID(62))})
	s.admitAt(0.4, 4, 3.1, []model.Op{w(pZ), w(model.PageID(71)), w(model.PageID(72))})
	s.admitAt(0.5, 2, 4.0, []model.Op{w(pX), w(model.PageID(73))})

	s.rt.K.RunUntil(5.0)
	if sp := s.specOf(1, 3); sp == nil {
		t.Fatal("T3 shadow missing")
	}
	if sp := s.specOf(1, 4); sp == nil {
		t.Fatal("T4 shadow missing (FIFO must keep it)")
	}
	if sp := s.specOf(1, 2); sp != nil {
		t.Fatal("T2 shadow created despite exhausted FIFO budget")
	}
	s.finish()
}

// TestFig7CommitRuleCase1: on T2's commit, T1's shadow waiting for T2 is
// promoted; a shadow blocked before the conflict survives; exposed shadows
// abort.
func TestFig7CommitRuleCase1(t *testing.T) {
	s := newScenario(t, 4, LBFO)
	// T1 reads x,y,z then filler pages 40..50; one op per second.
	ops := []model.Op{r(pX), r(pY), r(pZ)}
	for pg := 40; pg <= 50; pg++ {
		ops = append(ops, r(model.PageID(pg)))
	}
	s.admitAt(0, 1, 1.0, ops) // finishes at 14.0 if undisturbed
	// T3 writes x at 4.5 -> conflict at idx 0; T3 commits late (18.0).
	s.admitAt(0, 3, 4.5, []model.Op{w(pX), w(model.PageID(60)), w(model.PageID(61)), w(model.PageID(62))})
	// T2 writes z at 5.5 -> conflict at idx 2; T2 commits at 11.0.
	s.admitAt(0, 2, 5.5, []model.Op{w(pZ), w(model.PageID(70))})

	s.rt.K.RunUntil(10.9)
	spT3 := s.specOf(1, 3)
	spT2 := s.specOf(1, 2)
	if spT3 == nil || spT3.blockAt != 0 {
		t.Fatalf("T3 shadow = %v, want blockAt 0", spT3)
	}
	if spT2 == nil || spT2.blockAt != 2 {
		t.Fatalf("T2 shadow = %v, want blockAt 2", spT2)
	}
	s.rt.K.RunUntil(11.1) // T2 commits at 11.0
	st := s.c.txns[1]
	if st == nil {
		t.Fatal("T1 vanished")
	}
	if st.opt != spT2.sh {
		t.Fatal("shadow waiting for T2 was not promoted")
	}
	if sp := s.specOf(1, 3); sp == nil || sp.sh.Aborted() {
		t.Fatal("unexposed T3 shadow must survive the promotion")
	}
	s.finish()
	if s.rt.Metrics.Restarts != 0 {
		t.Fatalf("restarts = %d, want 0", s.rt.Metrics.Restarts)
	}
	if err := s.rt.History().Check(); err != nil {
		t.Fatal(err)
	}
}

// TestFig8CommitRuleCase2: the committing transaction's conflict was never
// assigned a shadow (budget exhausted); the shadow with the latest valid
// block point is promoted even though it waited for someone else.
func TestFig8CommitRuleCase2(t *testing.T) {
	s := newScenario(t, 2, LBFO) // only 1 speculative shadow
	ops := []model.Op{r(pX), r(pY), r(pZ)}
	for pg := 40; pg <= 48; pg++ {
		ops = append(ops, r(model.PageID(pg)))
	}
	s.admitAt(0, 1, 1.0, ops) // finishes at 12.0 if undisturbed
	// T3 writes y at 2.5 -> conflict at idx 1 takes the only shadow slot;
	// T3 commits late (12.5).
	s.admitAt(0, 3, 2.5, []model.Op{w(pY), w(model.PageID(60)), w(model.PageID(61)), w(model.PageID(62)), w(model.PageID(63))})
	// T2 writes z at 4.1 -> conflict at idx 2; LBFO: 2 > 1, ignored.
	// T2 commits at 8.2.
	s.admitAt(0, 2, 4.1, []model.Op{w(pZ), w(model.PageID(70))})

	s.rt.K.RunUntil(8.0)
	if sp := s.specOf(1, 2); sp != nil {
		t.Fatal("T2 conflict should be unaccounted (budget exhausted)")
	}
	spT3 := s.specOf(1, 3)
	if spT3 == nil || spT3.blockAt != 1 {
		t.Fatalf("T3 shadow = %v, want blockAt 1", spT3)
	}
	s.rt.K.RunUntil(8.3) // T2 commits at 8.2
	st := s.c.txns[1]
	if st == nil {
		t.Fatal("T1 vanished")
	}
	if st.opt != spT3.sh {
		t.Fatal("latest valid shadow (waiting for T3) was not promoted")
	}
	if s.rt.Metrics.Restarts != 0 {
		t.Fatal("case 2 must promote, not restart")
	}
	s.finish()
	if err := s.rt.History().Check(); err != nil {
		t.Fatal(err)
	}
}

// TestRestartWhenNothingSurvives: with k=1 (no speculative shadows) a
// materialized conflict forces a from-scratch restart — the OCC-BC
// degenerate case.
func TestRestartWhenNothingSurvives(t *testing.T) {
	s := newScenario(t, 1, LBFO)
	s.admitAt(0, 1, 1.0, []model.Op{r(pX), r(pY), r(pZ), r(pA)})
	s.admitAt(0, 2, 1.5, []model.Op{w(pX), w(pQ)})
	s.finish()
	if s.rt.Metrics.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", s.rt.Metrics.Restarts)
	}
	if s.rt.Metrics.Promotions != 0 {
		t.Fatal("k=1 cannot promote")
	}
	if err := s.rt.History().Check(); err != nil {
		t.Fatal(err)
	}
}
