package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// Move is one planned shard relocation, ranked by the pending value it
// carries — the same expected-value currency the admission queue and
// checkpoint scheduler already spend. Higher-value moves come first in
// a plan: rebalancing the hottest shard buys the most before the next
// decision point, exactly as admitting the highest-value transaction
// does.
type Move struct {
	Shard int
	From  string
	To    string
	Value float64 // pending value riding on the shard when planned
}

// PlanPlacement balances shards across nodes by pending value. values
// is the per-shard pending-value accounting (durable.Manager
// .PendingValues, or any proxy for expected value at stake); assign is
// the current owner of each shard; nodes is the member set to balance
// over. The planner is greedy and deterministic: it repeatedly takes
// the highest-value shard on the most loaded node and offers it to the
// least loaded node, accepting the move only if it strictly shrinks
// the value spread. Ties break by shard index then address so every
// node plans the identical sequence.
//
// The returned moves are ordered most-valuable first and are a *plan*:
// applying them is the Assignment's job, fenced by epoch, and the data
// plane follows via SNAP bootstrap on the receiving node.
func PlanPlacement(values []float64, assign []string, nodes []string) []Move {
	if len(values) != len(assign) || len(nodes) < 2 {
		return nil
	}
	owner := append([]string(nil), assign...)
	nodeSet := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		nodeSet[n] = true
	}
	load := func() map[string]float64 {
		l := make(map[string]float64, len(nodes))
		for _, n := range nodes {
			l[n] = 0
		}
		for i, o := range owner {
			if nodeSet[o] {
				l[o] += values[i]
			}
		}
		return l
	}
	extremes := func(l map[string]float64) (hi, lo string) {
		ns := append([]string(nil), nodes...)
		sort.Strings(ns)
		hi, lo = ns[0], ns[0]
		for _, n := range ns[1:] {
			if l[n] > l[hi] {
				hi = n
			}
			if l[n] < l[lo] {
				lo = n
			}
		}
		return hi, lo
	}
	var moves []Move
	for range owner { // at most one move per shard terminates the loop
		l := load()
		hi, lo := extremes(l)
		spread := l[hi] - l[lo]
		if spread <= 0 {
			break
		}
		// Highest-value shard on the hot node whose transfer shrinks
		// the spread: moving v flips the gap to |spread - 2v|.
		best, bestVal := -1, 0.0
		for i, o := range owner {
			if o != hi || values[i] <= 0 {
				continue
			}
			if values[i] > bestVal && 2*values[i] < 2*spread {
				best, bestVal = i, values[i]
			}
		}
		if best < 0 {
			break
		}
		moves = append(moves, Move{Shard: best, From: hi, To: lo, Value: bestVal})
		owner[best] = lo
	}
	sort.SliceStable(moves, func(i, j int) bool { return moves[i].Value > moves[j].Value })
	return moves
}

// Assignment is the epoch-fenced shard-ownership table. Ownership
// changes carry the fencing epoch that authorised them; a move stamped
// with a deposed epoch is refused, so a zombie primary's leftover
// rebalancing plan can never flip ownership after a failover.
type Assignment struct {
	mu    sync.Mutex
	owner []string
	epoch uint64 // epoch of the last applied change
}

// NewAssignment starts with every shard owned by def.
func NewAssignment(shards int, def string) *Assignment {
	owner := make([]string, shards)
	for i := range owner {
		owner[i] = def
	}
	return &Assignment{owner: owner}
}

// Owner returns the current owner of shard ("" if out of range).
func (a *Assignment) Owner(shard int) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	if shard < 0 || shard >= len(a.owner) {
		return ""
	}
	return a.owner[shard]
}

// Table returns a copy of the full ownership table and the epoch of
// the last applied change.
func (a *Assignment) Table() ([]string, uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.owner...), a.epoch
}

// Apply installs one move under the given fencing epoch. Moves stamped
// with an epoch older than one already applied are refused — the
// deposed-plan fence. A stale From (the shard moved since planning)
// is refused too, so plans can't clobber each other.
func (a *Assignment) Apply(m Move, epoch uint64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if epoch < a.epoch {
		return fmt.Errorf("cluster: placement move for shard %d stamped with deposed epoch %d (current %d)", m.Shard, epoch, a.epoch)
	}
	if m.Shard < 0 || m.Shard >= len(a.owner) {
		return fmt.Errorf("cluster: placement move for unknown shard %d", m.Shard)
	}
	if a.owner[m.Shard] != m.From {
		return fmt.Errorf("cluster: placement move for shard %d expects owner %s, have %s", m.Shard, m.From, a.owner[m.Shard])
	}
	a.owner[m.Shard] = m.To
	a.epoch = epoch
	return nil
}
