package cluster

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TopoReply is the parsed payload of a TOPO verb reply. The server
// formats it; the Node parses it from peers; sccload parses it when
// hunting for the primary. Keeping both ends on one struct keeps the
// grammar from drifting.
type TopoReply struct {
	Role      string
	Epoch     uint64
	Primary   string
	Self      string
	Watermark uint64
	Applied   uint64
}

// Format renders the reply line (without the trailing newline):
//
//	OK role=<role> epoch=<n> primary=<addr> self=<addr> watermark=<n> applied=<n>
func (t TopoReply) Format() string {
	primary := t.Primary
	if primary == "" {
		primary = "-"
	}
	return fmt.Sprintf("OK role=%s epoch=%d primary=%s self=%s watermark=%d applied=%d",
		t.Role, t.Epoch, primary, t.Self, t.Watermark, t.Applied)
}

// ParseTopoReply parses a TOPO reply line. Unknown k=v pairs are
// ignored so the grammar can grow.
func ParseTopoReply(line string) (TopoReply, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 2 || fields[0] != "OK" {
		return TopoReply{}, fmt.Errorf("cluster: not a TOPO reply: %q", line)
	}
	var t TopoReply
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		switch k {
		case "role":
			t.Role = v
		case "epoch":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return TopoReply{}, fmt.Errorf("cluster: bad epoch in TOPO reply %q: %v", line, err)
			}
			t.Epoch = n
		case "primary":
			if v != "-" {
				t.Primary = v
			}
		case "self":
			t.Self = v
		case "watermark":
			t.Watermark, _ = strconv.ParseUint(v, 10, 64)
		case "applied":
			t.Applied, _ = strconv.ParseUint(v, 10, 64)
		}
	}
	if t.Role == "" {
		return TopoReply{}, fmt.Errorf("cluster: TOPO reply missing role: %q", line)
	}
	return t, nil
}

// candidate is one node's election standing.
type candidate struct {
	addr      string
	watermark uint64
	applied   uint64
}

// electLeader ranks candidates by catch-up position — epoch watermark
// first (a replica that has seen a later commit epoch holds strictly
// more history), then total applied records, then address ascending as
// the deterministic tiebreak. Returns the winner's address; "" if the
// slate is empty. Deterministic so every replica running the same
// election over the same slate picks the same winner without a vote.
func electLeader(cands []candidate) string {
	if len(cands) == 0 {
		return ""
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.watermark != best.watermark {
			if c.watermark > best.watermark {
				best = c
			}
			continue
		}
		if c.applied != best.applied {
			if c.applied > best.applied {
				best = c
			}
			continue
		}
		if c.addr < best.addr {
			best = c
		}
	}
	return best.addr
}

// Hooks are the Node's levers into the server. All run on the Node's
// monitor goroutine; they must not call back into the Node.
type Hooks struct {
	// Promote turns this node into the primary under the freshly minted
	// fencing epoch: drain the apply barrier, replay to the watermark,
	// lift the lag gate, install the fenced commit log, and claim the
	// state. An error aborts the takeover (the node stays a replica and
	// re-runs the election after the next lease period).
	Promote func(epoch uint64) error
	// Follow re-points this replica at a newly discovered primary
	// (restart replication from the local position). Optional.
	Follow func(primary string) error
	// Demote fires when a primary discovers it was deposed by a higher
	// fencing epoch: dump the flight ring, log loudly. The State is
	// already RoleFenced when this runs. Optional.
	Demote func(epoch uint64, primary string)
	// Logf receives monitor diagnostics. Optional.
	Logf func(format string, args ...any)
}

// Config parameterises a Node.
type Config struct {
	State *State
	Hooks Hooks
	// Lease is how long the primary may go unreachable before replicas
	// start an election (default 750ms).
	Lease time.Duration
	// Interval is the probe cadence (default Lease/3).
	Interval time.Duration
	// DialTimeout bounds each peer probe (default Interval).
	DialTimeout time.Duration
}

// Node runs the failover monitor for one server: replicas heartbeat
// the primary and elect on lease expiry; primaries probe peers to
// discover their own deposition. Best-effort, non-quorum — see the
// package comment for the exact guarantee.
type Node struct {
	cfg   Config
	state *State

	mu     sync.Mutex
	seen   time.Time // last successful primary contact
	closed chan struct{}
	done   chan struct{}
	once   sync.Once
}

// NewNode builds a Node around st. Call Start to begin monitoring.
func NewNode(cfg Config) *Node {
	if cfg.Lease <= 0 {
		cfg.Lease = 750 * time.Millisecond
	}
	if cfg.Interval <= 0 {
		cfg.Interval = cfg.Lease / 3
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = cfg.Interval
	}
	return &Node{
		cfg:    cfg,
		state:  cfg.State,
		seen:   time.Now(),
		closed: make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Start performs one synchronous probe round — so a restarted old
// primary discovers a higher fencing epoch before serving a single
// write — then launches the monitor goroutine.
func (n *Node) Start() {
	n.probeRound()
	go n.run()
}

// Close stops the monitor and waits for it to exit.
func (n *Node) Close() {
	n.once.Do(func() { close(n.closed) })
	<-n.done
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Hooks.Logf != nil {
		n.cfg.Hooks.Logf(format, args...)
	}
}

func (n *Node) run() {
	defer close(n.done)
	tick := time.NewTicker(n.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-n.closed:
			return
		case <-tick.C:
		}
		switch n.state.Role() {
		case RolePrimary:
			n.probeRound()
		case RoleReplica:
			n.heartbeat()
		case RoleFenced:
			// Nothing to monitor: a fenced node only redirects.
		}
	}
}

// probe asks one peer for its topology. Nil error means the peer
// answered a well-formed TOPO reply.
func (n *Node) probe(addr string) (TopoReply, error) {
	conn, err := net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
	if err != nil {
		return TopoReply{}, err
	}
	defer conn.Close()
	deadline := time.Now().Add(n.cfg.DialTimeout)
	_ = conn.SetDeadline(deadline)
	if _, err := fmt.Fprintf(conn, "TOPO\n"); err != nil {
		return TopoReply{}, err
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return TopoReply{}, err
	}
	return ParseTopoReply(line)
}

// fold integrates a peer reply into local state, firing Demote/Follow
// when the reply changes our world.
func (n *Node) fold(t TopoReply) {
	claim := t.Primary
	if t.Role == "primary" {
		claim = t.Self
	}
	if claim == "" || t.Epoch == 0 {
		return
	}
	prevPrimary := n.state.Primary()
	if deposed := n.state.Observe(t.Epoch, claim); deposed {
		n.logf("cluster: deposed by %s at epoch %d, fencing self", claim, t.Epoch)
		if n.cfg.Hooks.Demote != nil {
			n.cfg.Hooks.Demote(t.Epoch, claim)
		}
		return
	}
	if n.state.Role() == RoleReplica && claim != prevPrimary && n.state.Primary() == claim {
		n.logf("cluster: following new primary %s at epoch %d", claim, t.Epoch)
		if n.cfg.Hooks.Follow != nil {
			if err := n.cfg.Hooks.Follow(claim); err != nil {
				n.logf("cluster: follow %s: %v", claim, err)
			}
		}
	}
}

// probeRound polls every peer once and folds in whatever it learns.
// Used at boot (fence a restarted old primary) and by primaries (find
// out they are a zombie before the next client does).
func (n *Node) probeRound() {
	for _, p := range n.state.Peers() {
		t, err := n.probe(p)
		if err != nil {
			continue
		}
		n.fold(t)
	}
}

// heartbeat is one replica monitor step: renew the lease off the
// primary, or run an election once it expires.
func (n *Node) heartbeat() {
	primary := n.state.Primary()
	if primary != "" {
		if t, err := n.probe(primary); err == nil {
			n.mu.Lock()
			n.seen = time.Now()
			n.mu.Unlock()
			n.fold(t)
			return
		}
	}
	n.mu.Lock()
	expired := time.Since(n.seen) >= n.cfg.Lease
	n.mu.Unlock()
	if !expired {
		return
	}
	n.elect()
}

// elect runs one leaderless election round: poll the peers, rank every
// live replica (including self) by catch-up position, and promote only
// if self wins. Losing candidates renew half a lease and wait for the
// winner's claim to arrive via fold; if the winner dies too, the next
// expiry re-runs the election without it.
func (n *Node) elect() {
	watermark, applied := n.state.Progress()
	maxEpoch := n.state.Epoch()
	cands := []candidate{{addr: n.state.Self(), watermark: watermark, applied: applied}}
	for _, p := range n.state.Peers() {
		t, err := n.probe(p)
		if err != nil {
			continue
		}
		if t.Epoch > maxEpoch {
			maxEpoch = t.Epoch
		}
		if t.Role == "primary" {
			// A live primary answered: no election needed after all.
			n.fold(t)
			n.mu.Lock()
			n.seen = time.Now()
			n.mu.Unlock()
			return
		}
		if t.Role == "replica" {
			cands = append(cands, candidate{addr: t.Self, watermark: t.Watermark, applied: t.Applied})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].addr < cands[j].addr })
	winner := electLeader(cands)
	if winner != n.state.Self() {
		n.logf("cluster: election defers to %s (self watermark=%d applied=%d)", winner, watermark, applied)
		n.mu.Lock()
		n.seen = time.Now().Add(-n.cfg.Lease / 2)
		n.mu.Unlock()
		return
	}
	epoch := maxEpoch + 1
	n.logf("cluster: lease expired, promoting self at epoch %d (watermark=%d applied=%d)", epoch, watermark, applied)
	if n.cfg.Hooks.Promote == nil {
		return
	}
	if err := n.cfg.Hooks.Promote(epoch); err != nil {
		n.logf("cluster: promote failed: %v", err)
		n.mu.Lock()
		n.seen = time.Now().Add(-n.cfg.Lease / 2)
		n.mu.Unlock()
	}
}
