package cluster

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

func TestElectLeaderRanking(t *testing.T) {
	cases := []struct {
		name  string
		cands []candidate
		want  string
	}{
		{"empty", nil, ""},
		{"watermark wins over applied",
			[]candidate{{"a", 1, 999}, {"b", 2, 1}}, "b"},
		{"applied breaks watermark tie",
			[]candidate{{"a", 2, 10}, {"b", 2, 20}}, "b"},
		{"address breaks full tie",
			[]candidate{{"b", 2, 20}, {"a", 2, 20}}, "a"},
		{"single", []candidate{{"only", 0, 0}}, "only"},
	}
	for _, c := range cases {
		if got := electLeader(c.cands); got != c.want {
			t.Errorf("%s: electLeader = %q, want %q", c.name, got, c.want)
		}
	}
	// Determinism across input order: every permutation of a slate
	// elects the same leader.
	slate := []candidate{{"n1", 3, 5}, {"n2", 3, 9}, {"n3", 2, 100}}
	perms := [][]candidate{
		{slate[0], slate[1], slate[2]},
		{slate[2], slate[1], slate[0]},
		{slate[1], slate[0], slate[2]},
	}
	for i, p := range perms {
		if got := electLeader(p); got != "n2" {
			t.Errorf("perm %d: electLeader = %q, want n2", i, got)
		}
	}
}

func TestStateObserveAndFence(t *testing.T) {
	st := NewState("n1:7070", []string{"n2:7070", "n1:7070"})
	if got := st.Peers(); len(got) != 1 || got[0] != "n2:7070" {
		t.Fatalf("peers = %v, want self filtered out", got)
	}
	if err := st.BecomePrimary(1); err != nil {
		t.Fatalf("BecomePrimary(1): %v", err)
	}
	if st.Observe(1, "n2:7070") {
		t.Fatal("equal epoch must not depose")
	}
	if !st.Observe(2, "n2:7070") {
		t.Fatal("higher epoch must depose a primary")
	}
	if e, r, p := st.Snapshot(); e != 2 || r != RoleFenced || p != "n2:7070" {
		t.Fatalf("after deposition: epoch=%d role=%v primary=%q", e, r, p)
	}
	// A fenced node stays fenced on further observations and cannot
	// reclaim with a stale epoch.
	st.Observe(3, "n2:7070")
	if st.Role() != RoleFenced {
		t.Fatal("fenced node must stay fenced")
	}
	if err := st.BecomePrimary(2); err == nil {
		t.Fatal("BecomePrimary with deposed epoch must be refused")
	}
	if err := st.BecomePrimary(4); err != nil {
		t.Fatalf("BecomePrimary(4): %v", err)
	}
}

func TestTopoReplyRoundTrip(t *testing.T) {
	in := TopoReply{Role: "replica", Epoch: 7, Primary: "n1:7070", Self: "n2:7070", Watermark: 6, Applied: 1234}
	got, err := ParseTopoReply(in.Format())
	if err != nil {
		t.Fatalf("ParseTopoReply: %v", err)
	}
	if got != in {
		t.Fatalf("round trip: got %+v, want %+v", got, in)
	}
	noPrimary := TopoReply{Role: "replica", Epoch: 1, Self: "n2:7070"}
	if !strings.Contains(noPrimary.Format(), "primary=-") {
		t.Fatalf("empty primary must render as '-': %q", noPrimary.Format())
	}
	back, err := ParseTopoReply(noPrimary.Format())
	if err != nil || back.Primary != "" {
		t.Fatalf("primary=- must parse to empty, got %+v err=%v", back, err)
	}
	if _, err := ParseTopoReply("ERR not clustered"); err == nil {
		t.Fatal("ERR line must not parse as a TOPO reply")
	}
}

func TestPlanPlacementDeterministicAndBalancing(t *testing.T) {
	values := []float64{90, 10, 5, 5, 40, 30}
	assign := []string{"a", "a", "a", "a", "a", "b"}
	nodes := []string{"a", "b"}
	plan := PlanPlacement(values, assign, nodes)
	if len(plan) == 0 {
		t.Fatal("imbalanced cluster must yield moves")
	}
	// Plans are ranked most-valuable first.
	for i := 1; i < len(plan); i++ {
		if plan[i].Value > plan[i-1].Value {
			t.Fatalf("plan not ranked by value: %+v", plan)
		}
	}
	// Applying the plan strictly shrinks the value spread.
	load := func(owner []string) (la, lb float64) {
		for i, o := range owner {
			if o == "a" {
				la += values[i]
			} else {
				lb += values[i]
			}
		}
		return
	}
	owner := append([]string(nil), assign...)
	la0, lb0 := load(owner)
	for _, m := range plan {
		if owner[m.Shard] != m.From {
			t.Fatalf("move %+v from wrong owner %s", m, owner[m.Shard])
		}
		owner[m.Shard] = m.To
	}
	la1, lb1 := load(owner)
	spread0, spread1 := la0-lb0, la1-lb1
	if spread0 < 0 {
		spread0 = -spread0
	}
	if spread1 < 0 {
		spread1 = -spread1
	}
	if spread1 >= spread0 {
		t.Fatalf("plan did not shrink spread: %v -> %v", spread0, spread1)
	}
	// Determinism: identical inputs plan the identical sequence.
	again := PlanPlacement(values, assign, nodes)
	if len(again) != len(plan) {
		t.Fatalf("plan not deterministic: %v vs %v", plan, again)
	}
	for i := range plan {
		if plan[i] != again[i] {
			t.Fatalf("plan not deterministic at %d: %+v vs %+v", i, plan[i], again[i])
		}
	}
	// Balanced input plans nothing.
	if p := PlanPlacement([]float64{10, 10}, []string{"a", "b"}, nodes); len(p) != 0 {
		t.Fatalf("balanced cluster planned %v", p)
	}
	// Single node cannot rebalance.
	if p := PlanPlacement(values, assign, []string{"a"}); p != nil {
		t.Fatalf("single node planned %v", p)
	}
}

func TestAssignmentEpochFence(t *testing.T) {
	a := NewAssignment(4, "n1")
	m := Move{Shard: 2, From: "n1", To: "n2", Value: 5}
	if err := a.Apply(m, 3); err != nil {
		t.Fatalf("Apply epoch 3: %v", err)
	}
	if a.Owner(2) != "n2" {
		t.Fatalf("owner = %q, want n2", a.Owner(2))
	}
	// A move stamped with a deposed epoch is refused: the zombie
	// primary's leftover plan can never flip ownership.
	stale := Move{Shard: 1, From: "n1", To: "n3", Value: 1}
	if err := a.Apply(stale, 2); err == nil {
		t.Fatal("deposed-epoch move must be refused")
	}
	if a.Owner(1) != "n1" {
		t.Fatalf("refused move mutated table: owner = %q", a.Owner(1))
	}
	// Stale From (shard moved since planning) is refused as well.
	if err := a.Apply(Move{Shard: 2, From: "n1", To: "n3"}, 4); err == nil {
		t.Fatal("stale-From move must be refused")
	}
	table, epoch := a.Table()
	if epoch != 3 || table[2] != "n2" {
		t.Fatalf("table = %v epoch = %d", table, epoch)
	}
}

// fakePeer answers TOPO with a fixed reply, counting probes.
func fakePeer(t *testing.T, reply TopoReply) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				r := bufio.NewReader(c)
				for {
					line, err := r.ReadString('\n')
					if err != nil {
						return
					}
					if strings.TrimSpace(line) == "TOPO" {
						fmt.Fprintf(c, "%s\n", reply.Format())
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

func TestNodeBootProbeFencesRestartedPrimary(t *testing.T) {
	// A peer advertises itself as primary at epoch 2. A restarted old
	// primary booting at epoch 1 must discover it during the
	// synchronous boot probe and fence itself before serving anything.
	addr, stop := fakePeer(t, TopoReply{Role: "primary", Epoch: 2, Self: "new-primary", Watermark: 9, Applied: 9})
	defer stop()
	st := NewState("127.0.0.1:1", []string{addr})
	if err := st.BecomePrimary(1); err != nil {
		t.Fatal(err)
	}
	demoted := make(chan uint64, 1)
	n := NewNode(Config{
		State: st,
		Lease: 200 * time.Millisecond,
		Hooks: Hooks{Demote: func(epoch uint64, primary string) { demoted <- epoch }},
	})
	n.Start() // synchronous boot probe
	defer n.Close()
	select {
	case e := <-demoted:
		if e != 2 {
			t.Fatalf("demoted at epoch %d, want 2", e)
		}
	default:
		t.Fatal("boot probe did not demote the restarted old primary")
	}
	if st.Role() != RoleFenced {
		t.Fatalf("role = %v, want fenced", st.Role())
	}
}

func TestNodeElectsSelfWhenPrimaryDies(t *testing.T) {
	// Single replica, primary address points nowhere: the lease expires
	// and the lone candidate promotes itself at epoch 2.
	st := NewState("127.0.0.1:9", nil)
	st.SetReplica("127.0.0.1:1") // unreachable
	st.SetProgress(func() (uint64, uint64) { return 1, 42 })
	promoted := make(chan uint64, 1)
	n := NewNode(Config{
		State:    st,
		Lease:    100 * time.Millisecond,
		Interval: 25 * time.Millisecond,
		Hooks: Hooks{Promote: func(epoch uint64) error {
			select {
			case promoted <- epoch:
			default:
			}
			return st.BecomePrimary(epoch)
		}},
	})
	n.Start()
	defer n.Close()
	select {
	case e := <-promoted:
		if e != 2 {
			t.Fatalf("promoted at epoch %d, want 2", e)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("lease expiry did not trigger promotion")
	}
	if !st.IsPrimary() {
		t.Fatal("state not primary after promotion")
	}
}

func TestNodeElectionDefersToMoreCaughtUpPeer(t *testing.T) {
	// A peer replica with a higher watermark exists: self must NOT
	// promote; it defers and waits for the peer's claim.
	addr, stop := fakePeer(t, TopoReply{Role: "replica", Epoch: 1, Self: "zz-but-more-caught-up", Watermark: 5, Applied: 500})
	defer stop()
	st := NewState("127.0.0.1:9", []string{addr})
	st.SetReplica("127.0.0.1:1") // unreachable primary
	st.SetProgress(func() (uint64, uint64) { return 1, 42 })
	promoted := make(chan struct{}, 1)
	n := NewNode(Config{
		State:    st,
		Lease:    100 * time.Millisecond,
		Interval: 25 * time.Millisecond,
		Hooks: Hooks{Promote: func(epoch uint64) error {
			select {
			case promoted <- struct{}{}:
			default:
			}
			return st.BecomePrimary(epoch)
		}},
	})
	n.Start()
	defer n.Close()
	select {
	case <-promoted:
		t.Fatal("promoted despite a more caught-up peer")
	case <-time.After(600 * time.Millisecond):
	}
	if st.IsPrimary() {
		t.Fatal("state flipped primary despite deferring")
	}
}
