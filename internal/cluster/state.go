// Package cluster is the multi-node topology layer: lease-based
// failover with fencing epochs, and value-cognizant shard placement.
//
// The design extends the paper's economics from admission to topology.
// Admission decides which transaction deserves a slot by expected
// value; placement decides which node deserves a shard by the same
// ranking, using the per-shard pending-value accounting the checkpoint
// scheduler already maintains. Failover is the liveness half: replicas
// heartbeat the primary over the same control-connection machinery the
// lag gate's HEAD polling uses, and when the lease expires the
// most-caught-up replica promotes itself under a freshly minted
// *fencing epoch*. Every write path compares fencing epochs, so a
// zombie primary — alive but deposed — can install nothing that gets
// acknowledged: its verdicts fail at the commit-sync fence exactly like
// a failed WAL sync ("installed but never acknowledged").
//
// The protocol is deliberately not a quorum consensus: with the
// repository's single-primary chains there is no membership to agree
// on, only a total order of fencing epochs, and ties (two replicas
// electing in the same epoch) break deterministically by address. The
// cost of that simplicity is a documented window: a network-partitioned
// primary keeps serving reads (never writes that ack) until its first
// peer probe finds the higher epoch. docs/ARCHITECTURE.md ("Cluster")
// states the invariants; internal/server enforces them on the wire.
package cluster

import (
	"fmt"
	"sync"
)

// Role is a node's position in the topology.
type Role int

const (
	// RoleReplica follows a primary read-only (promotable).
	RoleReplica Role = iota
	// RolePrimary owns writes under the current fencing epoch.
	RolePrimary
	// RoleFenced is a deposed primary: a node that discovered a higher
	// fencing epoch than the one it served under. It rejects writes and
	// replication subscriptions and redirects clients to the new
	// primary. A fenced node never promotes itself again; restart it as
	// a replica of the new primary to rejoin.
	RoleFenced
)

// String renders the role as the TOPO verb spells it.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleFenced:
		return "fenced"
	default:
		return "replica"
	}
}

// State is one node's view of the cluster: its fencing epoch, role, and
// best-known primary address. The server consults it on every write
// (entry fence), at every commit verdict (sync fence), and in the TOPO
// reply; the Node (node.go) transitions it. A nil *State means the
// server is not clustered and all fencing is off.
type State struct {
	self  string
	peers []string

	mu       sync.Mutex
	epoch    uint64
	role     Role
	primary  string
	progress func() (watermark, applied uint64)
}

// NewState returns a replica-role state at fencing epoch 1 with an
// unknown primary. self is this node's client address as peers should
// dial it; peers are the other nodes' client addresses.
func NewState(self string, peers []string) *State {
	ps := make([]string, 0, len(peers))
	for _, p := range peers {
		if p != "" && p != self {
			ps = append(ps, p)
		}
	}
	return &State{self: self, peers: ps, epoch: 1, role: RoleReplica}
}

// Self returns this node's advertised client address.
func (s *State) Self() string { return s.self }

// Peers returns the other nodes' client addresses.
func (s *State) Peers() []string { return s.peers }

// Members returns every known node address, self first — the node set
// the placement planner balances over.
func (s *State) Members() []string {
	return append([]string{s.self}, s.peers...)
}

// Epoch returns the current fencing epoch.
func (s *State) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Role returns the node's current role.
func (s *State) Role() Role {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.role
}

// IsPrimary reports whether the node currently owns writes.
func (s *State) IsPrimary() bool { return s.Role() == RolePrimary }

// Primary returns the best-known primary address ("" if unknown).
func (s *State) Primary() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.primary
}

// Snapshot returns epoch, role, and primary as one consistent read.
func (s *State) Snapshot() (uint64, Role, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch, s.role, s.primary
}

// BecomePrimary installs this node as primary under epoch. The epoch
// must not regress: a caller trying to claim with a stale epoch (it
// lost an election race it didn't see) is refused so the higher fence
// stands.
func (s *State) BecomePrimary(epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch < s.epoch {
		return fmt.Errorf("cluster: cannot claim primary under deposed epoch %d (current %d)", epoch, s.epoch)
	}
	s.epoch = epoch
	s.role = RolePrimary
	s.primary = s.self
	return nil
}

// SetReplica marks the node a replica following primary (boot wiring
// for -replica-of servers).
func (s *State) SetReplica(primary string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.role = RoleReplica
	s.primary = primary
}

// Observe folds in another node's claim: a higher fencing epoch always
// wins. If this node was primary, it is deposed to RoleFenced and the
// return value is true — the caller must dump its flight ring and stop
// acknowledging. A replica just re-points at the new primary. Equal or
// lower epochs change nothing (the deterministic same-epoch tiebreak
// happens at election time, before anyone claims).
func (s *State) Observe(epoch uint64, primary string) (deposed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch <= s.epoch || primary == s.self {
		return false
	}
	s.epoch = epoch
	s.primary = primary
	if s.role == RolePrimary {
		s.role = RoleFenced
		return true
	}
	if s.role != RoleFenced {
		s.role = RoleReplica
	}
	return false
}

// SetProgress installs the node's catch-up reporter: the replica's
// epoch watermark (max over shards) and total applied records. The TOPO
// verb and elections rank candidates by it. Safe to call any time; a
// nil fn reports zeros.
func (s *State) SetProgress(fn func() (watermark, applied uint64)) {
	s.mu.Lock()
	s.progress = fn
	s.mu.Unlock()
}

// Progress returns the node's current catch-up position (zeros without
// a reporter).
func (s *State) Progress() (watermark, applied uint64) {
	s.mu.Lock()
	fn := s.progress
	s.mu.Unlock()
	if fn == nil {
		return 0, 0
	}
	return fn()
}
