package engine

// Tests for UpdateValued: the live engine's VW-style commit deferment.

import (
	"fmt"
	"sync"
	"testing"
)

// TestLowValueDefersToHighValue forces the paper's Fig. 10 situation: a
// low-value transaction finishes first but its commit would abort a
// high-value transaction that already read the contended key. With
// deferment the high-value transaction commits first and keeps its work.
func TestLowValueDefersToHighValue(t *testing.T) {
	s := Open(Config{Mode: SCC2S})
	if err := s.Update(func(tx *Tx) error { return setInt(tx, "pos", 1) }); err != nil {
		t.Fatal(err)
	}

	hiRead := make(chan struct{})
	hiMayFinish := make(chan struct{})
	hiDone := make(chan error, 1)
	var once sync.Once
	// High-value transaction: reads "pos", then (after the low-value one
	// finished and is deferring) writes its result.
	go func() {
		hiDone <- s.UpdateValued(100, func(tx *Tx) error {
			v, err := getInt(tx, "pos")
			if err != nil {
				return err
			}
			once.Do(func() { close(hiRead); <-hiMayFinish })
			return setInt(tx, "hi-result", v)
		})
	}()
	<-hiRead

	// Low-value transaction: writes "pos" (conflicting with the reader)
	// and finishes while the high-value one is still running. It must
	// defer; release the high-value transaction once the deferral is
	// observable, then check commit order.
	loDone := make(chan error, 1)
	go func() {
		loDone <- s.UpdateValued(1, func(tx *Tx) error {
			return setInt(tx, "pos", 999)
		})
	}()
	// Wait until the low-value transaction registers its deferral.
	for {
		if s.Stats().Deferrals > 0 {
			break
		}
	}
	close(hiMayFinish)
	if err := <-hiDone; err != nil {
		t.Fatal(err)
	}
	if err := <-loDone; err != nil {
		t.Fatal(err)
	}

	// The high-value transaction read "pos" BEFORE the low-value write
	// committed: its snapshot must be the original value.
	b, _ := s.Get("hi-result")
	if got := btoi(b); got != 1 {
		t.Fatalf("hi-result = %d, want 1 (high-value work destroyed by an undeferred commit)", got)
	}
	b, _ = s.Get("pos")
	if got := btoi(b); got != 999 {
		t.Fatalf("pos = %d, want the low-value write to land afterwards", got)
	}
	if s.Stats().Deferrals == 0 {
		t.Fatal("no deferral recorded")
	}
}

// TestEqualValuesNeverDefer: plain Update transactions (value 0) must not
// pay any deferral cost.
func TestEqualValuesNeverDefer(t *testing.T) {
	s := Open(Config{Mode: SCC2S})
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.Update(func(tx *Tx) error {
				v, err := getInt(tx, "c")
				if err != nil {
					return err
				}
				return setInt(tx, "c", v+1)
			})
		}()
	}
	wg.Wait()
	if d := s.Stats().Deferrals; d != 0 {
		t.Fatalf("equal-value transactions deferred %d times", d)
	}
}

// TestValuedMixedLoadConserves: heavy mixed-value contention still
// produces serializable outcomes (no lost updates).
func TestValuedMixedLoadConserves(t *testing.T) {
	s := Open(Config{Mode: SCC2S})
	const n = 120
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		val := float64(i % 5)
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := s.UpdateValued(val, func(tx *Tx) error {
				v, err := getInt(tx, "total")
				if err != nil {
					return err
				}
				return setInt(tx, "total", v+1)
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	b, _ := s.Get("total")
	if got := btoi(b); got != n {
		t.Fatalf("total = %d, want %d", got, n)
	}
}

// TestNoDeferralCycle: two valued transactions conflicting both ways must
// not deadlock (strict value dominance is acyclic; equal values skip).
func TestNoDeferralCycle(t *testing.T) {
	s := Open(Config{Mode: SCC2S})
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		v := float64(i % 3)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.UpdateValued(v, func(tx *Tx) error {
				a, err := getInt(tx, "x")
				if err != nil {
					return err
				}
				b, err := getInt(tx, "y")
				if err != nil {
					return err
				}
				if err := setInt(tx, "x", b+1); err != nil {
					return err
				}
				return setInt(tx, "y", a+1)
			})
		}()
	}
	wg.Wait() // completing at all is the assertion
	if _, ok := s.Get("x"); !ok {
		t.Fatal("no writes landed")
	}
	_ = fmt.Sprintf
}
