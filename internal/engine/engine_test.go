package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func itob(v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

func btoi(b []byte) int64 {
	if len(b) != 8 {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}

func getInt(tx *Tx, key string) (int64, error) {
	b, err := tx.Get(key)
	if err != nil {
		return 0, err
	}
	return btoi(b), nil
}

func setInt(tx *Tx, key string, v int64) error { return tx.Set(key, itob(v)) }

func modes(t *testing.T, f func(t *testing.T, mode Mode)) {
	for _, m := range []Mode{SCC2S, OCCBC} {
		m := m
		t.Run(m.String(), func(t *testing.T) { f(t, m) })
	}
}

func TestBasicReadWrite(t *testing.T) {
	modes(t, func(t *testing.T, mode Mode) {
		s := Open(Config{Mode: mode})
		if err := s.Update(func(tx *Tx) error { return setInt(tx, "a", 41) }); err != nil {
			t.Fatal(err)
		}
		if err := s.Update(func(tx *Tx) error {
			v, err := getInt(tx, "a")
			if err != nil {
				return err
			}
			return setInt(tx, "a", v+1)
		}); err != nil {
			t.Fatal(err)
		}
		b, ok := s.Get("a")
		if !ok || btoi(b) != 42 {
			t.Fatalf("a = %v %v, want 42", b, ok)
		}
	})
}

func TestReadYourWrites(t *testing.T) {
	s := Open(Config{})
	err := s.Update(func(tx *Tx) error {
		if err := setInt(tx, "k", 7); err != nil {
			return err
		}
		v, err := getInt(tx, "k")
		if err != nil {
			return err
		}
		if v != 7 {
			return fmt.Errorf("read-your-writes got %d", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMissingKeyReadsZero(t *testing.T) {
	s := Open(Config{})
	if err := s.Update(func(tx *Tx) error {
		v, err := getInt(tx, "nope")
		if err != nil {
			return err
		}
		if v != 0 {
			return fmt.Errorf("missing key = %d", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("missing key present outside txn")
	}
}

func TestUserErrorPropagates(t *testing.T) {
	s := Open(Config{})
	boom := errors.New("boom")
	if err := s.Update(func(tx *Tx) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestConcurrentCounter: N goroutines increment one counter; no lost
// updates under either protocol.
func TestConcurrentCounter(t *testing.T) {
	modes(t, func(t *testing.T, mode Mode) {
		s := Open(Config{Mode: mode})
		const n = 200
		var wg sync.WaitGroup
		errs := make(chan error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs <- s.Update(func(tx *Tx) error {
					v, err := getInt(tx, "counter")
					if err != nil {
						return err
					}
					return setInt(tx, "counter", v+1)
				})
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		b, _ := s.Get("counter")
		if got := btoi(b); got != n {
			t.Fatalf("counter = %d, want %d (lost updates)", got, n)
		}
		st := s.Stats()
		if st.Commits != n {
			t.Fatalf("commits = %d, want %d", st.Commits, n)
		}
	})
}

// TestBankTransfers: concurrent transfers conserve the total balance
// (serializability under write skew pressure would break this).
func TestBankTransfers(t *testing.T) {
	modes(t, func(t *testing.T, mode Mode) {
		s := Open(Config{Mode: mode})
		const accounts = 8
		const initial = 1000
		for i := 0; i < accounts; i++ {
			acc := fmt.Sprintf("acct%d", i)
			if err := s.Update(func(tx *Tx) error { return setInt(tx, acc, initial) }); err != nil {
				t.Fatal(err)
			}
		}
		const transfers = 300
		var wg sync.WaitGroup
		for i := 0; i < transfers; i++ {
			from := fmt.Sprintf("acct%d", i%accounts)
			to := fmt.Sprintf("acct%d", (i+3)%accounts)
			if from == to {
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				err := s.Update(func(tx *Tx) error {
					fv, err := getInt(tx, from)
					if err != nil {
						return err
					}
					tv, err := getInt(tx, to)
					if err != nil {
						return err
					}
					if err := setInt(tx, from, fv-10); err != nil {
						return err
					}
					return setInt(tx, to, tv+10)
				})
				if err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
		total := int64(0)
		for i := 0; i < accounts; i++ {
			b, _ := s.Get(fmt.Sprintf("acct%d", i))
			total += btoi(b)
		}
		if total != accounts*initial {
			t.Fatalf("total = %d, want %d (money created/destroyed)", total, accounts*initial)
		}
	})
}

// TestShadowsActuallyPromote forces a conflict with explicit coordination:
// A reads the key, B overwrites and commits, A's optimistic run dies and
// its speculative shadow (gated on B) must finish the transaction.
func TestShadowsActuallyPromote(t *testing.T) {
	s := Open(Config{Mode: SCC2S})
	if err := s.Update(func(tx *Tx) error { return setInt(tx, "hot", 1) }); err != nil {
		t.Fatal(err)
	}
	aRead := make(chan struct{})
	bDone := make(chan struct{})
	aFinished := make(chan error, 1)
	var once sync.Once
	go func() {
		aFinished <- s.Update(func(tx *Tx) error {
			v, err := getInt(tx, "hot")
			if err != nil {
				return err
			}
			once.Do(func() { close(aRead); <-bDone })
			return setInt(tx, "hot", v+10)
		})
	}()
	<-aRead
	if err := s.Update(func(tx *Tx) error {
		v, err := getInt(tx, "hot")
		if err != nil {
			return err
		}
		return setInt(tx, "hot", v+100)
	}); err != nil {
		t.Fatal(err)
	}
	close(bDone)
	if err := <-aFinished; err != nil {
		t.Fatal(err)
	}
	b, _ := s.Get("hot")
	if got := btoi(b); got != 111 {
		t.Fatalf("hot = %d, want 111 (1 + B's 100 + A's 10 on top)", got)
	}
	st := s.Stats()
	if st.Forks == 0 {
		t.Fatal("no speculative shadow forked")
	}
	if st.Promotions == 0 {
		t.Fatalf("shadow did not finish the transaction: %+v", st)
	}
	if st.Restarts != 0 {
		t.Fatalf("SCC resolved the conflict by restart, not promotion: %+v", st)
	}
}

// TestOCCModeNeverForks confirms the baseline really is shadow-free.
func TestOCCModeNeverForks(t *testing.T) {
	s := Open(Config{Mode: OCCBC})
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.Update(func(tx *Tx) error {
				v, err := getInt(tx, "k")
				if err != nil {
					return err
				}
				return setInt(tx, "k", v+1)
			})
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Forks != 0 || st.Promotions != 0 {
		t.Fatalf("OCC-BC used shadows: %+v", st)
	}
}

// TestSerializableHistory: record per-transaction read versions and verify
// an equivalent serial order exists (monotone versions on a single key).
func TestSerializableHistory(t *testing.T) {
	s := Open(Config{Mode: SCC2S})
	const n = 150
	var mu sync.Mutex
	seen := make(map[int64]bool)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var observed int64
			err := s.Update(func(tx *Tx) error {
				v, err := getInt(tx, "seq")
				if err != nil {
					return err
				}
				observed = v
				return setInt(tx, "seq", v+1)
			})
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if seen[observed] {
				t.Errorf("two transactions observed the same value %d: not serializable", observed)
			}
			seen[observed] = true
		}()
	}
	wg.Wait()
	b, _ := s.Get("seq")
	if btoi(b) != n {
		t.Fatalf("seq = %d, want %d", btoi(b), n)
	}
}

func TestDisjointTransactionsDontConflict(t *testing.T) {
	s := Open(Config{Mode: SCC2S})
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("k%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Update(func(tx *Tx) error { return setInt(tx, key, 1) }); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Restarts != 0 {
		t.Fatalf("disjoint writers restarted %d times", st.Restarts)
	}
}

func TestValueIsolation(t *testing.T) {
	// Mutating the returned slice must not corrupt the store.
	s := Open(Config{})
	if err := s.Update(func(tx *Tx) error { return tx.Set("k", []byte{1, 2, 3}) }); err != nil {
		t.Fatal(err)
	}
	b, _ := s.Get("k")
	b[0] = 99
	b2, _ := s.Get("k")
	if b2[0] != 1 {
		t.Fatal("store value aliased caller slice")
	}
}

func TestClosedStore(t *testing.T) {
	s := Open(Config{})
	s.Close()
	if err := s.Update(func(tx *Tx) error { return nil }); err == nil {
		t.Fatal("Update on closed store succeeded")
	}
}
