// Commit epochs: a store-group-wide monotone counter stamped on every
// commit-log record. Within one shard's log, epochs are strictly
// increasing (every allocation happens under that shard's commit latch),
// and a cross-shard commit carries ONE epoch on all of its per-shard
// records — which is what lets a replica apply the commit on all shards
// at once (the apply barrier in internal/repl) and lets boot recovery
// reconcile a torn cross-shard write by epoch (internal/durable).
//
// The type lives in package engine, the bottom of the serving dependency
// chain, so repl, shard, durable and server can all share one instance.

package engine

import "sync/atomic"

// Epochs allocates global commit epochs. The zero value is ready to use;
// epoch 0 is never allocated and means "standalone record, sink-stamped"
// throughout the serving stack.
type Epochs struct{ n atomic.Uint64 }

// Next allocates the next epoch (1, 2, ...). Callers on the commit path
// hold the latches of every shard the epoch's record(s) will land on, so
// per-shard log order agrees with epoch order.
func (e *Epochs) Next() uint64 { return e.n.Add(1) }

// Current returns the most recently allocated epoch (0 if none).
func (e *Epochs) Current() uint64 { return e.n.Load() }

// Observe raises the counter to at least n. Recovery calls it with the
// largest epoch found on disk so fresh allocations never collide with
// history.
func (e *Epochs) Observe(n uint64) {
	for {
		cur := e.n.Load()
		if n <= cur || e.n.CompareAndSwap(cur, n) {
			return
		}
	}
}
